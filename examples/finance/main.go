// Finance: the paper's Section 2 asset-management narrative, literally —
// "a query spanning a long period needs to cover a number of stages and
// milestones for some company C, such as its inception, being privately
// held, having an IPO event, being listed on stock exchange(s), being
// acquired by a company D, being sold to another company E, and E going
// bankrupt. All these changes impact the topology of the graph … these
// stages reflect distinct properties, such as daily stock prices for
// publicly listed companies."
//
// The example builds that lifecycle as a HyGraph: companies and exchanges
// as PG vertices with validity intervals, listings and acquisitions as PG
// edges, stock prices as TS vertices that exist only while the company is
// public. It then asks the hybrid questions the paper motivates.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"

	"hygraph/internal/core"
	"hygraph/internal/hyql"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// The timeline, in days since founding.
const (
	ipoC        = 365  // C's IPO: stock starts trading
	acquisition = 1200 // D acquires C; C delists
	saleToE     = 1800 // D sells C to E
	bankruptcy  = 2400 // E (and its subsidiaries) go under
	horizon     = 2600
)

func day(d int) ts.Time { return ts.Time(d) * ts.Day }

func main() {
	h := core.New()
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Companies with lifecycle validity (ρ).
	companyC, err := h.AddVertex(tpg.Between(0, day(bankruptcy)), "Company")
	check(err)
	check(h.SetVertexProp(companyC, "name", lpg.Str("C")))
	companyD, err := h.AddVertex(tpg.Always, "Company")
	check(err)
	check(h.SetVertexProp(companyD, "name", lpg.Str("D")))
	companyE, err := h.AddVertex(tpg.Between(0, day(bankruptcy)), "Company")
	check(err)
	check(h.SetVertexProp(companyE, "name", lpg.Str("E")))
	exchange, err := h.AddVertex(tpg.Always, "Exchange")
	check(err)
	check(h.SetVertexProp(exchange, "name", lpg.Str("NYSE")))

	// Topology milestones as interval-stamped edges.
	_, err = h.AddEdge(companyC, exchange, "LISTED_ON", tpg.Between(day(ipoC), day(acquisition)))
	check(err)
	_, err = h.AddEdge(companyD, companyC, "OWNS", tpg.Between(day(acquisition), day(saleToE)))
	check(err)
	_, err = h.AddEdge(companyE, companyC, "OWNS", tpg.Between(day(saleToE), day(bankruptcy)))
	check(err)

	// Daily stock price: a TS vertex that exists exactly while C is listed.
	price := ts.New("close")
	level := 20.0
	for d := ipoC; d < acquisition; d++ {
		level *= 1 + 0.0008*osc(d) // deterministic drift + wobble
		price.MustAppend(day(d), level)
	}
	stock, err := h.AddTSVertexUni(price, "StockPrice")
	check(err)
	check(h.SetVertexProp(stock, "ticker", lpg.Str("C")))
	_, err = h.AddEdge(companyC, stock, "PRICED_BY", tpg.Between(day(ipoC), day(acquisition)))
	check(err)

	fmt.Println("instance:", h)

	// --- Temporal topology questions. --------------------------------------
	eng := hyql.NewEngine(h)
	ask := func(label string, q string, at ts.Time) {
		res, err := eng.Query(q, at)
		check(err)
		fmt.Printf("%-34s (day %4d): ", label, int(at/ts.Day))
		if len(res.Rows) == 0 {
			fmt.Println("—")
			return
		}
		for i, row := range res.Rows {
			if i > 0 {
				fmt.Print("; ")
			}
			for j, v := range row {
				if j > 0 {
					fmt.Print(", ")
				}
				fmt.Print(v)
			}
		}
		fmt.Println()
	}
	const owner = `MATCH (o:Company)-[:OWNS]->(c:Company) WHERE c.name = 'C' RETURN o.name`
	ask("owner of C", owner, day(100))
	ask("owner of C", owner, day(1500))
	ask("owner of C", owner, day(2000))
	const listed = `MATCH (c:Company)-[:LISTED_ON]->(x:Exchange) RETURN c.name, x.name`
	ask("listings", listed, day(800))
	ask("listings", listed, day(2000))

	// --- Hybrid question: price behaviour while public. --------------------
	res, err := eng.Query(`
		MATCH (c:Company)-[:PRICED_BY]->(p:StockPrice)
		RETURN c.name, ts.first(p) AS ipo_price, ts.last(p) AS exit_price,
		       ts.max(p) AS peak, ts.slope(p) * 365 AS drift_per_year`,
		day(800))
	check(err)
	row := res.Rows[0]
	fmt.Printf("\npublic era of %s: IPO %.2f → exit %.2f (peak %.2f, drift %+.2f/yr)\n",
		row[0], f(row[1]), f(row[2]), f(row[3]), f(row[4]))

	// --- Backtesting view: snapshots at the milestones. ---------------------
	fmt.Println("\ntopology through the milestones:")
	for _, d := range []int{100, 800, 1500, 2000, 2500} {
		view := h.SnapshotAt(day(d))
		fmt.Printf("  day %4d: %s\n", d, view.Graph)
	}

	// --- The acquisition in the diff. ---------------------------------------
	g, _ := h.ToTPG()
	diff := g.DiffBetween(day(800), day(1500))
	fmt.Printf("\nbetween day 800 and day 1500: +%d edges, -%d edges (the acquisition flips LISTED_ON to OWNS)\n",
		len(diff.AddedEdges), len(diff.RemovedEdges))
}

// osc is a deterministic wobble in [-1, 1].
func osc(d int) float64 { return float64((d*37)%200-100) / 100 }

func f(v hyql.Value) float64 {
	x, _ := v.AsFloat()
	return x
}

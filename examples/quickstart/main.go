// Quickstart: build a tiny HyGraph by hand, exercise the model's three
// operator interfaces and run a HyQL query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hygraph/internal/core"
	"hygraph/internal/hyql"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

func main() {
	// --- <X>ToHyGraph: build an instance with both kinds of citizens. -----
	h := core.New()

	// PG vertices: two rooms.
	kitchen, err := h.AddVertex(tpg.Always, "Room")
	check(err)
	check(h.SetVertexProp(kitchen, "name", lpg.Str("kitchen")))
	hall, err := h.AddVertex(tpg.Always, "Room")
	check(err)
	check(h.SetVertexProp(hall, "name", lpg.Str("hall")))

	// TS vertices: each room's temperature is a first-class citizen.
	mk := func(base float64) *ts.Series {
		s := ts.New("temperature")
		for i := 0; i < 48; i++ {
			s.MustAppend(ts.Time(i)*ts.Hour, base+float64(i%24)/4)
		}
		return s
	}
	kTemp, err := h.AddTSVertexUni(mk(19), "Temperature")
	check(err)
	hTemp, err := h.AddTSVertexUni(mk(17), "Temperature")
	check(err)

	// PG edges wire rooms to their series; a PG edge links the rooms.
	_, err = h.AddEdge(kitchen, kTemp, "MEASURES", tpg.Always)
	check(err)
	_, err = h.AddEdge(hall, hTemp, "MEASURES", tpg.Always)
	check(err)
	_, err = h.AddEdge(kitchen, hall, "ADJACENT", tpg.Always)
	check(err)

	fmt.Println("instance:", h)

	// --- HyGraphToHyGraph: a hybrid operator. -----------------------------
	// Correlated temperatures get a SIMILAR TS edge (time-varying similarity).
	n, err := h.CorrelationEdges(0.9, ts.Hour, 12)
	check(err)
	fmt.Printf("correlation edges added: %d\n", n)

	// --- HyGraphTo<X>: extract classic views back out. --------------------
	view := h.SnapshotAt(24 * ts.Hour)
	fmt.Println("LPG view at t=24h:", view.Graph)
	g, _ := h.ToTPG()
	fmt.Printf("TPG view: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// --- HyQL: one query over structure AND series. -----------------------
	res, err := hyql.NewEngine(h).Query(`
		MATCH (r:Room)-[:MEASURES]->(t:Temperature)
		WHERE ts.mean(t) > 18
		RETURN r.name AS room, ts.mean(t) AS avg_temp, ts.max(t) AS peak
		ORDER BY avg_temp DESC`, 24*ts.Hour)
	check(err)
	fmt.Println("\nrooms with mean temperature above 18°:")
	for _, row := range res.Rows {
		fmt.Printf("  %s: mean %.2f, peak %.2f\n", row[0], f(row[1]), f(row[2]))
	}
}

func f(v hyql.Value) float64 {
	x, _ := v.AsFloat()
	return x
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

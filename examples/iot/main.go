// IoT: smart-manufacturing analytics — the paper's Section 2 IoT use case.
// A plant of production lines, machines and sensors (TS vertices) is
// analyzed with the hybrid operators: anomaly×community detection (Table 2,
// D) localizes faulty machines, motif mining (PM) finds shared duty cycles,
// and hybrid pattern matching (Q1) pinpoints sensors with a planted shape.
//
//	go run ./examples/iot
package main

import (
	"fmt"
	"sort"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/hybridar"
	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

func main() {
	cfg := dataset.DefaultIoT()
	d := dataset.GenerateIoT(cfg)
	fmt.Println("plant:", d.H)
	var faulty []int
	for m := range d.Faulty {
		faulty = append(faulty, m)
	}
	sort.Ints(faulty)
	fmt.Printf("planted faulty machines (hidden from the detectors): %v\n\n", faulty)

	// --- Anomalies × communities (Table 2, D). ----------------------------
	mid := ts.Time(cfg.Hours/2) * ts.Hour
	res := d.H.AnomalyCommunities(mid, 24, 6, 1)
	fmt.Println("community anomaly scores (top 3):")
	for i, c := range res {
		if i >= 3 {
			break
		}
		fmt.Printf("  community %d: score %.2f, %d members\n", c.Community, c.Score, len(c.Members))
		// Which machines own the anomalous sensors?
		owners := map[string]bool{}
		for member, score := range c.MemberScore {
			if score <= 0 {
				continue
			}
			if owner, ok := d.SensorOwner(member); ok {
				owners[d.H.Vertex(owner).Prop("name").String()] = true
			}
		}
		if len(owners) > 0 {
			names := make([]string, 0, len(owners))
			for n := range owners {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("    anomalous sensors belong to: %v\n", names)
		}
	}

	// --- Motif mining (Table 2, PM). ---------------------------------------
	groups := d.H.MotifPatterns(8, 4, 3)
	fmt.Printf("\nmotif groups (sensors sharing a duty-cycle shape): %d\n", len(groups))
	for i, g := range groups {
		if i >= 3 {
			break
		}
		fmt.Printf("  %q: %d sensors, %d induced edges\n", g.Word, len(g.Members), g.InducedEdges)
	}

	// --- Hybrid pattern matching (Table 2, Q1). ----------------------------
	// Find machines whose sensor contains a spike-like subsequence.
	spike := ts.FromSamples("spike", 0, ts.Hour, []float64{0, 0, 40, 0, 0})
	p := lpg.NewPattern().
		V("m", "Machine", nil).
		V("s", "Sensor", core.SeriesWhere(core.SubsequencePred("", spike, 0.8))).
		E("m", "s", "HAS_SENSOR", nil)
	matches := d.H.HybridMatch(mid, p, 0)
	seen := map[string]bool{}
	for _, b := range matches {
		seen[d.H.Vertex(b["m"]).Prop("name").String()] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\nmachines matching the structural+spike hybrid pattern: %v\n", names)

	// --- Forecast a healthy sensor's next shift. ----------------------------
	for i := range d.Machines {
		if d.Faulty[i] {
			continue
		}
		sid := d.Sensors[i*cfg.SensorsPerMach]
		s, _ := d.H.Vertex(sid).SeriesVar("")
		train := s.Slice(0, s.End()-8*ts.Hour)
		f, err := train.ARForecast(16, 8, ts.Hour)
		if err != nil {
			break
		}
		actual := s.Slice(s.End()-8*ts.Hour, s.End()+1)
		fmt.Printf("\nforecast next shift of %s: MAE %.2f (signal std %.2f)\n",
			d.H.Vertex(sid).Prop("name").String(), ts.MAE(f, actual), s.Std())
		break
	}

	// --- Graph-coupled forecasting (Section 6, "HyGraph and AI"). -----------
	// On a line whose machines influence each other, a forecaster that reads
	// neighbor sensors through the topology beats per-series AR.
	ccfg := cfg
	ccfg.Hours = 24 * 21
	ccfg.FaultyMachines = 0
	ccfg.Coupling = 0.9
	ccfg.CouplingLag = 1
	coupled := dataset.GenerateIoT(ccfg)
	mcfg := hybridar.DefaultConfig(ts.Hour)
	mcfg.NeighborHops = 3
	split := ts.Time(ccfg.Hours-12) * ts.Hour
	end := ts.Time(ccfg.Hours) * ts.Hour
	hy, iso, err := hybridar.Evaluate(coupled.H, mcfg, 0, split, end)
	if err != nil {
		fmt.Println("graph-coupled forecast:", err)
		return
	}
	sensors := make([]core.VID, 0, len(hy))
	for v := range hy {
		sensors = append(sensors, v)
	}
	sort.Slice(sensors, func(i, j int) bool { return sensors[i] < sensors[j] })
	var hySum, isoSum float64
	for _, v := range sensors {
		hySum += hy[v]
		isoSum += iso[v]
	}
	n := float64(len(hy))
	fmt.Printf("\ngraph-coupled forecasting over %d sensors (12h horizon):\n", len(hy))
	fmt.Printf("  hybrid (own + neighbor lags) MAE: %.2f\n", hySum/n)
	fmt.Printf("  isolated per-series AR MAE:       %.2f\n", isoSum/n)
}

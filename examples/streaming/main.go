// Streaming: requirement R3 live. Observations and structural changes
// stream into a HyGraph instance while a continuous HyQL query re-evaluates
// on tumbling windows — an online version of the fraud watchlist: "users
// whose card balance collapsed within the current window".
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hygraph/internal/core"
	"hygraph/internal/hyql"
	"hygraph/internal/lpg"
	"hygraph/internal/stream"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

func main() {
	h := core.New()
	rng := rand.New(rand.NewSource(1))

	// Three users with cards; card-2 will be drained mid-stream.
	var cards []core.VID
	for i := 0; i < 3; i++ {
		u, err := h.AddVertex(tpg.Always, "User")
		check(err)
		check(h.SetVertexProp(u, "name", lpg.Str(fmt.Sprintf("user-%d", i))))
		seed := ts.New("balance")
		seed.MustAppend(0, 1000)
		c, err := h.AddTSVertexUni(seed, "CreditCard")
		check(err)
		check(h.SetVertexProp(c, "name", lpg.Str(fmt.Sprintf("card-%d", i))))
		_, err = h.AddEdge(u, c, "USES", tpg.Always)
		check(err)
		cards = append(cards, c)
	}

	in := stream.NewIngestor(h)
	watch := &stream.Continuous{
		Query: `
			MATCH (u:User)-[:USES]->(c:CreditCard)
			WHERE ts.min(c) < 0.2 * ts.mean(c)
			RETURN u.name AS drained`,
		Slide: 6 * ts.Hour,
		Emit: func(at ts.Time, res *hyql.Result) {
			if len(res.Rows) == 0 {
				fmt.Printf("window %-22v ok (no drained balances)\n", at)
				return
			}
			for _, row := range res.Rows {
				fmt.Printf("window %-22v ALERT: %s balance collapsed\n", at, row[0])
			}
		},
	}
	check(in.Register(watch, 0))

	// Stream 48 hours of balances; card-2 drains during hours 20-24.
	for hh := 1; hh <= 48; hh++ {
		at := ts.Time(hh) * ts.Hour
		for i, c := range cards {
			v := 1000 + rng.NormFloat64()*20
			if i == 2 && hh >= 20 && hh < 24 {
				v = 40
			}
			if err := in.Apply(stream.Update{Kind: stream.Append, At: at, Vertex: c, Value: v}); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := in.Stats()
	fmt.Printf("\ningested %d appends across %d series; %d continuous evaluations\n",
		st.Appended, len(cards), watch.Fires())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

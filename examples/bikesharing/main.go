// Bikesharing: micromobility analytics over the synthetic NYC-style
// network — the paper's urban-micromobility use case (Section 2) and the
// substrate of its Table 1. Demonstrates hybrid aggregation (Q2),
// correlation edges + correlated reachability (Q3), segmentation-driven
// snapshots (Q4) and demand forecasting on a HyGraph instance.
//
//	go run ./examples/bikesharing
package main

import (
	"fmt"
	"log"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/ts"
)

func main() {
	cfg := dataset.DefaultBike()
	data := dataset.GenerateBike(cfg)
	h, stations := data.ToHyGraph()
	fmt.Println("network:", h)

	// --- Hybrid aggregation (Table 2, Q2): districts as super-vertices, ---
	// availability downsampled hourly → daily and summed across stations.
	agg, groups, err := h.HybridAggregate(core.AggregateSpec{
		GroupKey:  func(v *core.Vertex) string { return v.Prop("district").String() },
		Bucket:    ts.Day,
		SeriesAgg: ts.AggMean,
		Combine:   ts.AggSum,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistrict-level summary: %s (%d districts)\n", agg, len(groups))
	for name, sv := range groups {
		for _, e := range agg.OutEdges(sv) {
			if e.Label != "HAS_SERIES" {
				continue
			}
			if s, ok := agg.Vertex(e.To).SeriesVar(""); ok {
				fmt.Printf("  %-12s daily availability: mean %.0f bikes\n", name, s.Mean())
			}
		}
	}

	// --- Correlation edges + reachability (Table 2, Q3). ------------------
	added, err := h.CorrelationEdges(0.8, ts.Hour, 48)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimilarity edges between correlated stations: %d\n", added)
	// Demand at one station reachable from another through correlated hops?
	sa := seriesVertexOf(h, stations[0])
	sb := seriesVertexOf(h, stations[1])
	if sa >= 0 && sb >= 0 {
		ok := h.CorrelatedReachable(sa, sb, 0.9, ts.Hour, 4)
		fmt.Printf("stations 0 and 1 connected through ≥0.9-correlated hops: %v\n", ok)
	}

	// --- Segmentation-driven snapshots (Table 2, Q4). ---------------------
	// Segment the city-wide availability (weekday/weekend regimes) and
	// snapshot the network at each regime boundary.
	start, end := data.Span()
	var cityWide *ts.Series
	for i, st := range data.Stations {
		daily := st.Availability.Resample(ts.Day, ts.AggMean)
		if i == 0 {
			cityWide = daily
		} else {
			for j := 0; j < daily.Len(); j++ {
				if v, ok := cityWide.Lookup(daily.TimeAt(j)); ok {
					cityWide.Upsert(daily.TimeAt(j), v+daily.ValueAt(j))
				}
			}
		}
	}
	cityWide.SetName("citywide_availability")
	snaps := h.SegmentSnapshots(cityWide, 5, 0.05)
	fmt.Printf("\ncity-wide availability regimes: %d\n", len(snaps))
	for _, s := range snaps {
		fmt.Printf("  from %v (day %2d): mean %.0f bikes, snapshot %s\n",
			s.Segment.Start, int(s.Segment.Start/ts.Day), s.Segment.Mean, s.View.Graph)
	}
	_ = start

	// --- Forecast tomorrow's availability for the busiest station. --------
	top := busiest(data)
	s := data.Stations[top].Availability
	train := s.Slice(start, end-ts.Day)
	forecast, err := train.ARForecast(24, 24, ts.Hour)
	if err != nil {
		log.Fatal(err)
	}
	actual := s.Slice(end-ts.Day, end)
	fmt.Printf("\nforecast for %s (last day, AR(24)): MAE %.2f bikes (series std %.2f)\n",
		data.Stations[top].Name, ts.MAE(forecast, actual), s.Std())
}

// seriesVertexOf returns the TS vertex linked to a station by HAS_SERIES.
func seriesVertexOf(h *core.HyGraph, station core.VID) core.VID {
	for _, e := range h.OutEdges(station) {
		if e.Label == "HAS_SERIES" {
			return e.To
		}
	}
	return -1
}

// busiest returns the station index with the highest mean availability.
func busiest(d *dataset.BikeData) int {
	best, bi := -1.0, 0
	for i, st := range d.Stations {
		if m := st.Availability.Mean(); m > best {
			best = m
			bi = i
		}
	}
	return bi
}

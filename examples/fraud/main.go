// Fraud: the paper's running example end-to-end. Generates the planted
// credit-card workload, shows the graph-only query (Listing 1) and the
// series-only detector (Listing 2) each flagging false positives, then runs
// the Figure-4 HyGraph pipeline that flags exactly the planted fraudsters —
// and demonstrates the same discrimination in a single HyQL query.
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"

	"hygraph/internal/dataset"
	"hygraph/internal/hyql"
	"hygraph/internal/pipeline"
	"hygraph/internal/ts"
)

func main() {
	d := dataset.GenerateFraud(dataset.DefaultFraud())
	fmt.Println("workload:", d.H)

	r := pipeline.Run(d, pipeline.DefaultParams())
	fmt.Println()
	fmt.Print(pipeline.FormatReport(d, r))

	// The same discrimination expressed declaratively: structure (three
	// high-amount TX flows) AND series evidence (balance drain) in one
	// HyQL query. TX_FLOW edges are TS edges; their max is a series
	// aggregate, and c's drain is a series predicate.
	query := `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX_FLOW]->(m:Merchant)
		WHERE ts.max(t) > 1000 AND ts.min(c) < 0.25 * ts.mean(c)
		RETURN u.name AS suspicious, count(m) AS merchants
		ORDER BY suspicious`
	mid := ts.Time(d.Config.Hours/2) * ts.Hour
	res, err := hyql.NewEngine(d.H).Query(query, mid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHyQL hybrid query verdicts:")
	for _, row := range res.Rows {
		cnt, _ := row[1].AsFloat()
		if cnt >= 3 {
			fmt.Printf("  %s (%v high-amount merchants)\n", row[0], row[1])
		}
	}
}

// Package hygraph is a Go reproduction of "Towards Hybrid Graphs: Unifying
// Property Graphs and Time Series" (EDBT 2025): the HyGraph data model
// (internal/core), its substrates (internal/ts, internal/lpg, internal/tpg),
// the HyQL query language (internal/hyql), the Table 1 storage study
// (internal/storage/..., internal/bench) and the Figure 4 fraud pipeline
// (internal/pipeline). See README.md for a tour and EXPERIMENTS.md for the
// paper-vs-measured record.
package hygraph

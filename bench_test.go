// Benchmarks regenerating every table and figure of the paper. One bench
// per experiment; EXPERIMENTS.md maps each to the corresponding table or
// figure and records the measured shape.
//
// The Table 1 benches here run a reduced workload so `go test -bench=.`
// stays fast; cmd/hybench runs the full harness with MRS/CV reporting.
package hygraph_test

import (
	"sync"
	"testing"

	"hygraph/internal/bench"
	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/embed"
	"hygraph/internal/hybridar"
	"hygraph/internal/hyql"
	"hygraph/internal/lpg"
	"hygraph/internal/ml"
	"hygraph/internal/pipeline"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// ---------------------------------------------------------------------------
// Shared fixtures, built once.

var (
	onceBike sync.Once
	bikeData *dataset.BikeData
	neoEng   *ttdb.AllInGraph
	pgEng    *ttdb.Polyglot
	neoIDs   []ttdb.StationID
	pgIDs    []ttdb.StationID

	onceFraud sync.Once
	fraudData *dataset.FraudData

	onceBikeHG sync.Once
	bikeHG     *core.HyGraph
	bikeVIDs   []core.VID

	onceIoT sync.Once
	iotData *dataset.IoTData
)

func bikeFixture() {
	onceBike.Do(func() {
		cfg := dataset.BikeConfig{Stations: 60, Districts: 6, Days: 60,
			StepMinutes: 60, TripsPerSt: 4, Seed: 7}
		bikeData = dataset.GenerateBike(cfg)
		neoEng = ttdb.NewAllInGraph()
		pgEng = ttdb.NewPolyglot(ts.Week)
		var err error
		if neoIDs, err = bikeData.LoadEngine(neoEng); err != nil {
			panic(err)
		}
		if pgIDs, err = bikeData.LoadEngine(pgEng); err != nil {
			panic(err)
		}
	})
}

func fraudFixture() {
	onceFraud.Do(func() { fraudData = dataset.GenerateFraud(dataset.DefaultFraud()) })
}

func bikeHGFixture() {
	onceBikeHG.Do(func() {
		cfg := dataset.BikeConfig{Stations: 30, Districts: 5, Days: 14,
			StepMinutes: 60, TripsPerSt: 3, Seed: 7}
		bikeHG, bikeVIDs = dataset.GenerateBike(cfg).ToHyGraph()
	})
}

func iotFixture() {
	onceIoT.Do(func() { iotData = dataset.GenerateIoT(dataset.DefaultIoT()) })
}

// ---------------------------------------------------------------------------
// Table 1 — storage benchmark (paper's headline table). One sub-benchmark
// per (query, engine); the paper's "who wins" per query is visible directly
// in the ns/op columns.

func BenchmarkTable1(b *testing.B) {
	bikeFixture()
	start, end := bikeData.Span()
	qs, qe := start+(end-start)/4, start+3*(end-start)/4
	type eng struct {
		name string
		e    ttdb.Engine
		ids  []ttdb.StationID
	}
	engines := []eng{{"Neo4jSim", neoEng, neoIDs}, {"TTDB", pgEng, pgIDs}}
	for _, en := range engines {
		e, ids := en.e, en.ids
		st0, st1 := ids[0], ids[len(ids)/2]
		b.Run("Q1_TimeRange/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q1TimeRange(st0, qs, qs+2*ts.Day)
			}
		})
		b.Run("Q2_FilteredRange/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q2FilteredRange(st0, qs, qe, 10)
			}
		})
		b.Run("Q3_StationMean/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q3StationMean(st0, qs, qe)
			}
		})
		b.Run("Q4_AllStationMeans/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q4AllStationMeans(qs, qe)
			}
		})
		b.Run("Q5_DistrictSums/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q5DistrictSums(qs, qe)
			}
		})
		b.Run("Q6_TopK/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q6TopKStations(qs, qe, 10)
			}
		})
		b.Run("Q7_Correlation/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q7Correlation(st0, st1, qs, qe, ts.Hour)
			}
		})
		b.Run("Q8_NeighborMeans/"+en.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Q8NeighborMeans(st0, qs, qe)
			}
		})
	}
}

// BenchmarkTable1_Harness runs the full MRS/CV harness once per iteration at
// reduced scale — the programmatic version of cmd/hybench.
func BenchmarkTable1_Harness(b *testing.B) {
	cfg := bench.Config{
		Bike: dataset.BikeConfig{Stations: 20, Districts: 4, Days: 30,
			StepMinutes: 60, TripsPerSt: 3, Seed: 7},
		Reps: 3,
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("expected 8 rows")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 1 — all-in-graph (red) vs polyglot (green) write path: the paper's
// "high write overhead" of storing every observation as a property.

func BenchmarkFig1_StorageApproaches(b *testing.B) {
	s := ts.New(ttdb.Metric)
	for i := 0; i < 24*30; i++ {
		s.MustAppend(ts.Time(i)*ts.Hour, float64(i%24))
	}
	b.Run("LoadSeries/AllInGraph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ttdb.NewAllInGraph()
			st, err := e.AddStation("s", "d")
			if err != nil {
				b.Fatal(err)
			}
			if err := e.LoadSeries(st, s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LoadSeries/Polyglot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := ttdb.NewPolyglot(ts.Week)
			st, err := e.AddStation("s", "d")
			if err != nil {
				b.Fatal(err)
			}
			if err := e.LoadSeries(st, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Table 2 — one bench per hybrid operator family.

func BenchmarkTable2_Q1_HybridMatch(b *testing.B) {
	fraudFixture()
	drain := ts.New("drain")
	for i, v := range []float64{1000, 50, 50, 50, 50, 1000} {
		drain.MustAppend(ts.Time(i)*ts.Hour, v)
	}
	p := lpg.NewPattern().
		V("u", "User", nil).
		V("c", "CreditCard", core.SeriesWhere(core.SubsequencePred("", drain, 1.5))).
		E("u", "c", "USES", nil)
	mid := ts.Time(fraudData.Config.Hours/2) * ts.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fraudData.H.HybridMatch(mid, p, 0)
	}
}

func BenchmarkTable2_Q2_HybridAggregate(b *testing.B) {
	bikeHGFixture()
	spec := core.AggregateSpec{
		GroupKey:  func(v *core.Vertex) string { return v.Prop("district").String() },
		Bucket:    ts.Day,
		SeriesAgg: ts.AggMean,
		Combine:   ts.AggSum,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bikeHG.HybridAggregate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_Q3_CorrelationReachability(b *testing.B) {
	bikeHGFixture()
	// Reachability over the raw graph with the correlation constraint.
	sa, sb := bikeVIDs[0], bikeVIDs[len(bikeVIDs)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bikeHG.CorrelatedReachable(sa, sb, 0.8, ts.Hour, 6)
	}
}

func BenchmarkTable2_Q3_CorrelationEdges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, _ := dataset.GenerateBike(dataset.BikeConfig{Stations: 20, Districts: 4,
			Days: 7, StepMinutes: 60, TripsPerSt: 2, Seed: 7}).ToHyGraph()
		b.StartTimer()
		if _, err := h.CorrelationEdges(0.8, ts.Hour, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_Q4_SegmentSnapshots(b *testing.B) {
	bikeHGFixture()
	driver := bikeHG.ActivitySeries(0, 14*ts.Day, ts.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bikeHG.SegmentSnapshots(driver, 4, 0.02)
	}
}

func BenchmarkTable2_D_AnomalyCommunities(b *testing.B) {
	iotFixture()
	mid := ts.Time(iotData.Config.Hours/2) * ts.Hour
	for i := 0; i < b.N; i++ {
		iotData.H.AnomalyCommunities(mid, 24, 6, 1)
	}
}

func BenchmarkTable2_PM_Motifs(b *testing.B) {
	iotFixture()
	for i := 0; i < b.N; i++ {
		iotData.H.MotifPatterns(8, 4, 2)
	}
}

func BenchmarkTable2_PM_MatrixProfile(b *testing.B) {
	iotFixture()
	s, _ := iotData.H.Vertex(iotData.Sensors[0]).SeriesVar("")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatrixProfile(24)
	}
}

func BenchmarkTable2_E_Embeddings(b *testing.B) {
	bikeHGFixture()
	view := bikeHG.SnapshotAt(7 * ts.Day)
	b.Run("FastRP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			embed.FastRP(view.Graph, embed.DefaultFastRP())
		}
	})
	b.Run("RandomWalk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			embed.RandomWalkEmbedding(view.Graph, embed.DefaultWalks())
		}
	})
	b.Run("SeriesFeatures", func(b *testing.B) {
		var series []*ts.Series
		bikeHG.Vertices(func(v *core.Vertex) bool {
			if v.Kind == core.TS {
				if s, ok := v.SeriesVar(""); ok {
					series = append(series, s)
				}
			}
			return true
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			embed.SeriesFeatures(series)
		}
	})
}

func BenchmarkTable2_C1_Classification(b *testing.B) {
	fraudFixture()
	var rows [][]float64
	var labels []int
	for u := range fraudData.Users {
		s, _ := fraudData.H.Vertex(fraudData.Cards[u]).SeriesVar("")
		rows = append(rows, s.Features())
		if fraudData.Truth[u] == dataset.Fraudster {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ml.TrainLogReg(rows, labels, 0.05, 1e-4, 20, 1)
		for _, r := range rows {
			m.Predict(r)
		}
	}
}

func BenchmarkTable2_C2_Clustering(b *testing.B) {
	fraudFixture()
	var rows [][]float64
	for u := range fraudData.Users {
		s, _ := fraudData.H.Vertex(fraudData.Cards[u]).SeriesVar("")
		rows = append(rows, s.Features())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.KMeans(rows, 4, 50, 1)
	}
}

// ---------------------------------------------------------------------------
// Figure 2 — the two single-model detectors of the running example.

func BenchmarkFig2_Listing1_GraphOnly(b *testing.B) {
	fraudFixture()
	p := pipeline.DefaultParams()
	for i := 0; i < b.N; i++ {
		pipeline.GraphOnly(fraudData, p)
	}
}

func BenchmarkFig2_Listing1_HyQL(b *testing.B) {
	fraudFixture()
	eng := hyql.NewEngine(fraudData.H)
	mid := ts.Time(fraudData.Config.Hours/2) * ts.Hour
	const q = `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX_FLOW]->(m:Merchant)
		WHERE ts.max(t) > 1000
		RETURN u.name AS suspicious, count(m) AS merchants`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q, mid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_Listing2_TSOnly(b *testing.B) {
	fraudFixture()
	p := pipeline.DefaultParams()
	for i := 0; i < b.N; i++ {
		pipeline.SeriesOnly(fraudData, p)
	}
}

// ---------------------------------------------------------------------------
// Figure 3 — the transformation lattice between the model worlds.

func BenchmarkFig3_Transforms(b *testing.B) {
	fraudFixture()
	b.Run("TPGToHyGraph", func(b *testing.B) {
		g, _ := fraudData.H.ToTPG()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.FromTPG(g)
		}
	})
	b.Run("HyGraphToTPG", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fraudData.H.ToTPG()
		}
	})
	b.Run("GraphToSeries_MetricEvolution", func(b *testing.B) {
		bikeHGFixture()
		for i := 0; i < b.N; i++ {
			if err := bikeHG.DegreeEvolution(0, 14*ts.Day, ts.Day); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SeriesToGraph_SAXGroups", func(b *testing.B) {
		iotFixture()
		for i := 0; i < b.N; i++ {
			iotData.H.MotifPatterns(8, 4, 2)
		}
	})
	b.Run("SnapshotProjection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fraudData.H.SnapshotAt(100 * ts.Hour)
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 4 — the full hybrid pipeline. Each iteration regenerates the
// workload because the pipeline enriches the instance in place.

func BenchmarkFig4_Pipeline(b *testing.B) {
	cfg := dataset.DefaultFraud()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := dataset.GenerateFraud(cfg)
		b.StartTimer()
		r := pipeline.Run(d, pipeline.DefaultParams())
		if r.HybridMetrics.Recall() != 1 {
			b.Fatalf("pipeline lost a fraudster: %+v", r.HybridMetrics)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 6, "HyGraph and AI" — graph-coupled forecasting (the GC-LSTM idea
// in closed form). The bench reports the hybrid and isolated mean MAEs as
// custom metrics so the "hybrid wins" shape is visible in bench output.

func BenchmarkRoadmap_AI_GraphCoupledForecast(b *testing.B) {
	cfg := dataset.DefaultIoT()
	cfg.Hours = 24 * 14
	cfg.FaultyMachines = 0
	cfg.Coupling = 0.9
	cfg.CouplingLag = 1
	d := dataset.GenerateIoT(cfg)
	mcfg := hybridar.DefaultConfig(ts.Hour)
	mcfg.NeighborHops = 3
	split := ts.Time(cfg.Hours-12) * ts.Hour
	end := ts.Time(cfg.Hours) * ts.Hour
	var hyMean, isoMean float64
	for i := 0; i < b.N; i++ {
		hy, iso, err := hybridar.Evaluate(d.H, mcfg, 0, split, end)
		if err != nil {
			b.Fatal(err)
		}
		hyMean, isoMean = 0, 0
		for v, m := range hy {
			hyMean += m
			isoMean += iso[v]
		}
		n := float64(len(hy))
		hyMean /= n
		isoMean /= n
	}
	b.ReportMetric(hyMean, "hybridMAE")
	b.ReportMetric(isoMean, "isolatedMAE")
}

package obs

import (
	"sync"
	"time"
)

// maxRecentSpans bounds the ring of finished span records kept for the
// snapshot, so long-lived processes don't grow without bound.
const maxRecentSpans = 256

// Tracer records span-style timed regions with parent/child nesting. It keeps
// two views: per-name totals (count + total duration, unbounded in name count
// but O(names) in memory) and a bounded ring of the most recent finished
// spans with their parent links, which is enough to reconstruct recent trees.
// A nil *Tracer hands out nil *Spans, and all *Span methods are nil-safe, so
// traced code pays nothing when tracing is disabled.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64
	totals map[string]*spanTotal
	recent []SpanRecord
	head   int  // next write position in recent once full
	full   bool // recent has wrapped
}

type spanTotal struct {
	count   int64
	totalNS int64
}

func newTracer() *Tracer {
	return &Tracer{totals: map[string]*spanTotal{}}
}

// Span is one in-flight timed region. End it exactly once.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	t0     time.Time
}

// Start opens a root span. Returns nil (an inert span) on a nil receiver.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, name: name, t0: time.Now()}
}

// Child opens a span nested under s. On a nil receiver it returns nil, so
// chains like root.Child("x").Child("y") stay safe when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: s.id, name: name, t0: time.Now()}
}

// End finishes the span, recording its duration under its name and appending
// it to the recent ring. Returns the elapsed time (0 on a nil receiver).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.tr.record(SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		DurationNS: d.Nanoseconds(),
	})
	return d
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tot, ok := t.totals[rec.Name]
	if !ok {
		tot = &spanTotal{}
		t.totals[rec.Name] = tot
	}
	tot.count++
	tot.totalNS += rec.DurationNS
	if !t.full {
		t.recent = append(t.recent, rec)
		if len(t.recent) == maxRecentSpans {
			t.full = true
		}
		return
	}
	t.recent[t.head] = rec
	t.head = (t.head + 1) % maxRecentSpans
}

// SpanRecord is one finished span. Parent is 0 for root spans; IDs are unique
// within a Tracer, so (ID, Parent) links reconstruct the nesting.
type SpanRecord struct {
	ID         uint64 `json:"id"`
	Parent     uint64 `json:"parent,omitempty"`
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// SpanTotal aggregates all finished spans sharing a name.
type SpanTotal struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// TraceSnapshot is the JSON view of a Tracer: per-name totals plus the most
// recent finished spans in completion order.
type TraceSnapshot struct {
	Totals map[string]SpanTotal `json:"totals,omitempty"`
	Recent []SpanRecord         `json:"recent,omitempty"`
}

// Snapshot captures the tracer state; nil when the tracer is nil or has
// recorded nothing.
func (t *Tracer) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.totals) == 0 {
		return nil
	}
	ts := &TraceSnapshot{Totals: make(map[string]SpanTotal, len(t.totals))}
	for name, tot := range t.totals {
		ts.Totals[name] = SpanTotal{Count: tot.count, TotalNS: tot.totalNS}
	}
	if t.full {
		ts.Recent = make([]SpanRecord, 0, maxRecentSpans)
		ts.Recent = append(ts.Recent, t.recent[t.head:]...)
		ts.Recent = append(ts.Recent, t.recent[:t.head]...)
	} else {
		ts.Recent = append([]SpanRecord(nil), t.recent...)
	}
	return ts
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same handle")
	}

	g := r.Gauge("g")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.High() != 5 {
		t.Fatalf("gauge = (%d, high %d), want (1, 5)", g.Value(), g.High())
	}
	g.Set(10)
	if g.Value() != 10 || g.High() != 10 {
		t.Fatalf("after Set: (%d, high %d), want (10, 10)", g.Value(), g.High())
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	tr := r.Tracer()
	c.Inc()
	c.Add(7)
	g.Add(1)
	g.Set(2)
	h.Observe(time.Second)
	sw := h.Start()
	if d := sw.Stop(); d != 0 {
		t.Fatalf("inert stopwatch returned %v, want 0", d)
	}
	sp := tr.Start("root")
	sp.Child("nested").End()
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || g.High() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must stay at zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Trace != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	// 90 fast observations, 10 slow: p50 lands in the fast bucket, p99 in
	// the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond)
	}
	st := h.stat()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.MaxNS != int64(3*time.Millisecond) {
		t.Fatalf("max = %d", st.MaxNS)
	}
	if st.P50MS >= 1 {
		t.Fatalf("p50 = %vms, want sub-millisecond", st.P50MS)
	}
	if st.P99MS < 3 {
		t.Fatalf("p99 = %vms, want >= 3ms", st.P99MS)
	}
	if st.MeanMS <= 0 {
		t.Fatalf("mean = %v, want > 0", st.MeanMS)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{999, 0},
		{1000, 0},
		{1999, 0},
		{2000, 1},
		{1 << 62, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestStopwatchRecords(t *testing.T) {
	r := New()
	h := r.Histogram("sw")
	sw := h.Start()
	time.Sleep(time.Millisecond)
	d := sw.Stop()
	if d < time.Millisecond {
		t.Fatalf("stopwatch measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
}

func TestTracerNestingAndSnapshot(t *testing.T) {
	r := New()
	tr := r.Tracer()
	root := tr.Start("recover")
	child := root.Child("graph.replay")
	child.End()
	grand := root.Child("ts.replay")
	grand.End()
	root.End()

	snap := tr.Snapshot()
	if snap == nil {
		t.Fatal("snapshot nil after recording spans")
	}
	if snap.Totals["recover"].Count != 1 || snap.Totals["graph.replay"].Count != 1 {
		t.Fatalf("totals = %+v", snap.Totals)
	}
	if len(snap.Recent) != 3 {
		t.Fatalf("recent = %d records, want 3", len(snap.Recent))
	}
	// Children must link to the root's id.
	var rootID uint64
	for _, rec := range snap.Recent {
		if rec.Name == "recover" {
			rootID = rec.ID
		}
	}
	for _, rec := range snap.Recent {
		if rec.Name != "recover" && rec.Parent != rootID {
			t.Fatalf("span %q parent = %d, want %d", rec.Name, rec.Parent, rootID)
		}
	}
}

func TestTracerRingBounded(t *testing.T) {
	r := New()
	tr := r.Tracer()
	for i := 0; i < maxRecentSpans*2; i++ {
		tr.Start(fmt.Sprintf("s%d", i%4)).End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != maxRecentSpans {
		t.Fatalf("ring holds %d, want %d", len(snap.Recent), maxRecentSpans)
	}
	var total int64
	for _, tot := range snap.Totals {
		total += tot.Count
	}
	if total != maxRecentSpans*2 {
		t.Fatalf("totals count %d spans, want %d", total, maxRecentSpans*2)
	}
	// Ring is in completion order: ids strictly increase.
	for i := 1; i < len(snap.Recent); i++ {
		if snap.Recent[i].ID <= snap.Recent[i-1].ID {
			t.Fatalf("ring out of order at %d: %d then %d", i, snap.Recent[i-1].ID, snap.Recent[i].ID)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("wal.appends").Add(12)
	r.Gauge("workers.active").Set(4)
	r.Histogram("q1").Observe(5 * time.Microsecond)
	sp := r.Tracer().Start("recover")
	sp.Child("journal").End()
	sp.End()

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["wal.appends"] != 12 {
		t.Fatalf("counter lost in round trip: %+v", back.Counters)
	}
	if back.Gauges["workers.active"].Value != 4 {
		t.Fatalf("gauge lost: %+v", back.Gauges)
	}
	if back.Durations["q1"].Count != 1 {
		t.Fatalf("histogram lost: %+v", back.Durations)
	}
	if back.Trace == nil || back.Trace.Totals["recover"].Count != 1 {
		t.Fatalf("trace lost: %+v", back.Trace)
	}
}

func TestConcurrentUpdatesRaceClean(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tr := r.Tracer()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i) * time.Microsecond)
				sp := tr.Start("w")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	// Snapshot concurrently with the writers.
	for i := 0; i < 20; i++ {
		if _, err := json.Marshal(r.Snapshot()); err != nil {
			t.Fatalf("snapshot under load: %v", err)
		}
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != 0 || g.High() < 1 {
		t.Fatalf("gauge = (%d, high %d)", g.Value(), g.High())
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int64{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	ln, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/debug/obs")), &snap); err != nil {
		t.Fatalf("/debug/obs not JSON: %v", err)
	}
	if snap.Counters["hits"] != 3 {
		t.Fatalf("/debug/obs counters = %+v", snap.Counters)
	}
	if !strings.Contains(get("/debug/vars"), "hygraph_obs") {
		t.Fatal("/debug/vars missing hygraph_obs")
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("/debug/pprof/ missing profile index")
	}

	// Graceful stop: Shutdown returns only after the serve loop exits, and
	// the port no longer accepts connections.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ln.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/debug/obs"); err == nil {
		t.Fatal("debug server still serving after Shutdown")
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar name is published at most once per process (expvar.Publish
// panics on duplicates); the pointer it reads is swappable so the last
// registry handed to PublishExpvar wins.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes r's snapshot under the "hygraph_obs" expvar. Calling
// it again rebinds the variable to the new registry.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("hygraph_obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/   net/http/pprof profiles
//	/debug/vars     expvar (includes the hygraph_obs snapshot)
//	/debug/obs      the registry snapshot as plain JSON
//
// It binds its own mux (nothing leaks onto http.DefaultServeMux), returns the
// live listener so callers can report the bound address (useful with ":0")
// and close it, and serves until the listener is closed. A nil registry
// serves empty snapshots.
func ServeDebug(addr string, r *Registry) (net.Listener, error) {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar name is published at most once per process (expvar.Publish
// panics on duplicates); the pointer it reads is swappable so the last
// registry handed to PublishExpvar wins.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes r's snapshot under the "hygraph_obs" expvar. Calling
// it again rebinds the variable to the new registry.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("hygraph_obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// DebugServer is a running debug endpoint started by ServeDebug. Unlike a
// bare listener, it owns the http.Server, so stopping it can drain in-flight
// scrapes (Shutdown) or cut them off (Close) instead of only refusing new
// connections.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when Serve returns
}

// Addr reports the bound address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Shutdown stops accepting connections and waits, bounded by ctx, for
// in-flight debug requests (a pprof profile mid-capture, a snapshot scrape)
// to finish.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	err := d.srv.Shutdown(ctx)
	<-d.done
	return err
}

// Close stops the server immediately, aborting in-flight requests. It
// satisfies io.Closer so a DebugServer drops in where the old listener-only
// API was deferred-closed.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/   net/http/pprof profiles
//	/debug/vars     expvar (includes the hygraph_obs snapshot)
//	/debug/obs      the registry snapshot as plain JSON
//
// It binds its own mux (nothing leaks onto http.DefaultServeMux) and serves
// until the returned DebugServer is shut down or closed. A nil registry
// serves empty snapshots.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Package obs is the engine's stdlib-only observability layer: atomic
// counters, high-watermark gauges, exponential-bucket latency histograms,
// span-style timed regions with parent/child nesting, and a JSON-serializable
// snapshot of everything. It exists so the polyglot engine can attribute time
// to graph-store vs ts-store vs WAL vs resample-cache instead of reporting a
// single end-to-end number (docs/OBSERVABILITY.md).
//
// Two properties shape the design:
//
//   - Allocation-light hot path. Instrumented code holds preallocated
//     *Counter/*Gauge/*Histogram handles obtained once from a Registry; a
//     point increment is a single atomic add with no map lookup and no
//     allocation.
//
//   - Zero overhead when disabled. Every handle method is nil-safe: code
//     instrumented against a nil Registry gets nil handles, and Inc/Add/
//     Observe/Start/Stop on nil handles are cheap no-ops that never read the
//     clock. Stores that were never Instrument()ed pay only a nil check.
//
// All mutating methods on handles are safe for concurrent use. Registry
// lookups take a mutex but are meant for setup, not the hot path.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks an instantaneous level plus its high watermark — e.g. the
// number of in-flight worker-pool items and the peak fan-out width reached.
// A nil *Gauge is a no-op sink.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Add moves the level by delta and updates the high watermark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	cur := g.v.Add(delta)
	for {
		h := g.high.Load()
		if cur <= h || g.high.CompareAndSwap(h, cur) {
			return
		}
	}
}

// Set forces the level to v and updates the high watermark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high watermark (0 on a nil receiver).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// numBuckets covers 1µs..~34s in powers of two, with a final overflow bucket.
const numBuckets = 26

// bucketFloorNS is the lower bound of bucket i in nanoseconds: 1µs << i.
// Bucket 0 also absorbs everything below 1µs.
func bucketFloorNS(i int) int64 { return 1000 << uint(i) }

// bucketIndex maps a duration in ns to its histogram bucket.
func bucketIndex(ns int64) int {
	if ns < 1000 {
		return 0
	}
	i := bits.Len64(uint64(ns/1000)) - 1
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Histogram is a fixed-size exponential-bucket latency histogram. All fields
// are atomics, so concurrent Observe calls never contend on a lock. A nil
// *Histogram is a no-op sink whose Start never reads the clock.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		m := h.maxNS.Load()
		if ns <= m || h.maxNS.CompareAndSwap(m, ns) {
			break
		}
	}
	h.buckets[bucketIndex(ns)].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Stopwatch times one region for a Histogram. The zero value (and the value
// returned by a nil Histogram's Start) is inert: Stop returns 0 without
// touching the clock, which is the zero-overhead disabled path.
type Stopwatch struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing a region. On a nil receiver it returns an inert
// Stopwatch and does not read the clock.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, t0: time.Now()}
}

// Stop records the elapsed time and returns it (0 when inert).
func (sw Stopwatch) Stop() time.Duration {
	if sw.h == nil {
		return 0
	}
	d := time.Since(sw.t0)
	sw.h.Observe(d)
	return d
}

// Registry is a named collection of metric handles. Lookups are idempotent:
// asking for the same name twice returns the same handle, so independent
// components can share a counter. A nil *Registry hands out nil handles,
// which is how instrumentation is disabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		tracer:   newTracer(),
	}
}

// Counter returns the named counter handle, creating it on first use.
// Returns nil on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge handle, creating it on first use. Returns
// nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram handle, creating it on first
// use. Returns nil on a nil receiver.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's span tracer (nil on a nil receiver).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// GaugeStat is the snapshot of one gauge.
type GaugeStat struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// HistStat is the snapshot of one latency histogram. P50/P99 are upper-bound
// estimates from the exponential buckets, reported in milliseconds.
type HistStat struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MaxNS   int64   `json:"max_ns"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// Snapshot is a point-in-time, JSON-serializable view of a Registry.
type Snapshot struct {
	Counters  map[string]int64     `json:"counters,omitempty"`
	Gauges    map[string]GaugeStat `json:"gauges,omitempty"`
	Durations map[string]HistStat  `json:"durations,omitempty"`
	Trace     *TraceSnapshot       `json:"trace,omitempty"`
}

// Snapshot captures every registered metric. Safe to call concurrently with
// hot-path updates (values are read atomically, so a snapshot taken mid-run
// is a consistent-enough view: each individual value is exact at its own read
// time). On a nil receiver it returns an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	tr := r.tracer
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for name, c := range counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]GaugeStat, len(gauges))
		for name, g := range gauges {
			s.Gauges[name] = GaugeStat{Value: g.Value(), High: g.High()}
		}
	}
	if len(hists) > 0 {
		s.Durations = make(map[string]HistStat, len(hists))
		for name, h := range hists {
			s.Durations[name] = h.stat()
		}
	}
	if t := tr.Snapshot(); t != nil {
		s.Trace = t
	}
	return s
}

// stat reduces a histogram to its snapshot form.
func (h *Histogram) stat() HistStat {
	st := HistStat{
		Count:   h.count.Load(),
		TotalNS: h.sumNS.Load(),
		MaxNS:   h.maxNS.Load(),
	}
	if st.Count > 0 {
		st.MeanMS = float64(st.TotalNS) / float64(st.Count) / 1e6
		var counts [numBuckets]int64
		var total int64
		for i := range h.buckets {
			counts[i] = h.buckets[i].Load()
			total += counts[i]
		}
		st.P50MS = quantileMS(counts[:], total, 0.50)
		st.P99MS = quantileMS(counts[:], total, 0.99)
	}
	return st
}

// quantileMS returns the upper bound (in ms) of the bucket containing the
// q-quantile observation.
func quantileMS(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum > rank {
			// Upper bound of bucket i is the floor of bucket i+1.
			return float64(bucketFloorNS(i+1)) / 1e6
		}
	}
	return float64(bucketFloorNS(len(counts))) / 1e6
}

// SortedKeys returns the keys of a snapshot map in sorted order; a helper for
// deterministic console rendering.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"hygraph/internal/faults"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// maxBody bounds request bodies; a station ingest with a year of minutely
// points fits comfortably, a hostile body does not.
const maxBody = 8 << 20

// apiError is the JSON error envelope. Code is machine-readable and stable
// (docs/SERVICE.md); Message is for humans.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// response is what a handler body produces: a status plus a JSON-encodable
// payload. The wrapper owns the actual write so the response-drop fault
// point can abort after the handler has committed its work.
type response struct {
	status int
	body   any
}

func okJSON(body any) response { return response{http.StatusOK, body} }

func errJSON(status int, code, msg string) response {
	return response{status, errorBody{apiError{code, msg}}}
}

// handlerFunc is a request body running under an admitted slot and a live
// deadline context.
type handlerFunc func(ctx context.Context, r *http.Request, t *tenant) response

// routes mounts the API (Go 1.22 ServeMux patterns).
func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.Handle("POST /v1/tenants/{tenant}/stations", s.wrap(s.handleStations))
	s.mux.Handle("POST /v1/tenants/{tenant}/points", s.wrap(s.handlePoints))
	s.mux.Handle("POST /v1/tenants/{tenant}/trips", s.wrap(s.handleTrips))
	s.mux.Handle("GET /v1/tenants/{tenant}/query", s.wrap(s.handleQuery))
	s.mux.Handle("POST /v1/tenants/{tenant}/hyql", s.wrap(s.handleHyQL))
	s.mux.Handle("GET /v1/tenants/{tenant}/stats", s.wrap(s.handleStats))
}

// handleHealth bypasses admission: load balancers must see drain state even
// when the server is saturated.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status})
}

// handleMetrics dumps the obs registry snapshot (404 when uninstrumented).
// It bypasses admission for the same reason health does: metrics must stay
// readable under overload, when they matter most.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeJSON(w, http.StatusNotFound, errorBody{apiError{"no_metrics", "server runs uninstrumented"}})
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// wrap is the request spine every tenant endpoint runs through: fault
// points, drain shedding, deadline assignment, admission, execution, and
// the single response write. The order is load-bearing and documented in
// docs/SERVICE.md.
func (s *Server) wrap(h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.o.requests.Inc()

		// 1. Accept-path fault: the request dies before it is even a request.
		if err := faults.Check(FaultAccept); err != nil {
			s.o.acceptFail.Inc()
			s.finish(w, r, nil, t0, errJSON(http.StatusInternalServerError, "accept_failed", err.Error()))
			return
		}

		// 2. Draining servers shed everything new immediately.
		if s.draining.Load() {
			s.o.shedDraining.Inc()
			s.shed(w, r, nil, t0, &shedError{
				Status: http.StatusServiceUnavailable, Reason: "draining", RetryAfter: time.Second})
			return
		}

		// 3. Resolve the tenant (opens the engine on first use).
		name := r.PathValue("tenant")
		if !validTenant(name) {
			s.finish(w, r, nil, t0, errJSON(http.StatusBadRequest, "bad_tenant", "invalid tenant name"))
			return
		}
		ten, err := s.tenant(name)
		if err != nil {
			s.finish(w, r, nil, t0, errJSON(http.StatusInternalServerError, "tenant_open_failed", err.Error()))
			return
		}

		// 4. Assign the request budget. It covers queueing AND execution:
		// time spent waiting for a slot is time the client is also waiting.
		budget, resp := s.budget(r)
		if resp != nil {
			s.finish(w, r, ten, t0, *resp)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()

		// 5. Admission. Refusals carry Retry-After; a budget that expires
		// while queued is a deadline miss, not a shed.
		release, err := s.adm.admit(ctx, ten)
		if err != nil {
			var se *shedError
			if errors.As(err, &se) {
				s.shed(w, r, ten, t0, se)
				return
			}
			s.o.deadlineMiss.Inc()
			s.finish(w, r, ten, t0, errJSON(http.StatusGatewayTimeout, "deadline_exceeded",
				"request budget exhausted while queued"))
			return
		}
		defer release()

		// 6. Handler fault point: injected latency waits under the request
		// deadline (CheckCtx), injected errors crash the handler.
		if err := faults.CheckCtx(ctx, FaultHandler); err != nil {
			s.finish(w, r, ten, t0, s.asTimeout(err, "handler_failed"))
			return
		}

		// 7. The handler body.
		resp2 := h(ctx, r, ten)
		if resp2.status == http.StatusGatewayTimeout {
			s.o.deadlineMiss.Inc()
		}
		s.finish(w, r, ten, t0, resp2)
	})
}

// budget resolves the request's deadline budget from X-Timeout-MS (or the
// timeout_ms query parameter), clamped to (0, MaxTimeout].
func (s *Server) budget(r *http.Request) (time.Duration, *response) {
	raw := r.Header.Get("X-Timeout-MS")
	if raw == "" {
		raw = r.URL.Query().Get("timeout_ms")
	}
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		resp := errJSON(http.StatusBadRequest, "bad_timeout", "timeout_ms must be a positive integer")
		return 0, &resp
	}
	budget := time.Duration(ms) * time.Millisecond
	if budget > s.cfg.MaxTimeout {
		budget = s.cfg.MaxTimeout
	}
	return budget, nil
}

// asTimeout maps a context deadline error to 504 (accounting the miss);
// anything else to 500 under the given code.
func (s *Server) asTimeout(err error, code string) response {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.o.deadlineMiss.Inc()
		return errJSON(http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
	}
	return errJSON(http.StatusInternalServerError, code, err.Error())
}

// shed writes an admission refusal: status + Retry-After (whole seconds,
// rounded up, floor 1 — the HTTP header cannot say "25ms") and
// X-Retry-After-MS with the precise hint for clients that can.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, t *tenant, t0 time.Time, se *shedError) {
	if se.RetryAfter > 0 {
		secs := int64(math.Ceil(se.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("X-Retry-After-MS", strconv.FormatInt(se.RetryAfter.Milliseconds(), 10))
	}
	s.finish(w, r, t, t0, errJSON(se.Status, se.Reason, se.Error()))
}

// finish is the single response write: response-drop fault, status
// accounting, latency recording, JSON body.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, t *tenant, t0 time.Time, resp response) {
	if err := faults.Check(FaultDropResponse); err != nil {
		s.o.dropped.Inc()
		// ErrAbortHandler kills the connection without a response — the
		// client sees io.EOF for work that may already be durable.
		panic(http.ErrAbortHandler)
	}
	switch {
	case resp.status < 300:
		s.o.ok.Inc()
	case resp.status < 500:
		s.o.clientErr.Inc()
	default:
		s.o.serverErr.Inc()
	}
	d := time.Since(t0)
	s.o.latency.Observe(d)
	if t != nil {
		t.lat.Observe(d)
	}
	writeJSON(w, resp.status, resp.body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// decode reads a JSON body with the size cap.
func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// ---------------------------------------------------------------------------
// Ingest endpoints

// pointJSON is one (t, v) sample on the wire.
type pointJSON struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

type stationReq struct {
	Name     string      `json:"name"`
	District string      `json:"district"`
	Points   []pointJSON `json:"points"`
}

// handleStations ingests one station through the two-store durable
// protocol. Station ingest allocates an id, so it is NOT idempotent; the
// X-Idempotency-Key header makes retries safe (same key → same station id,
// executed once).
func (s *Server) handleStations(ctx context.Context, r *http.Request, t *tenant) response {
	var req stationReq
	if err := decode(r, &req); err != nil {
		return errJSON(http.StatusBadRequest, "bad_body", err.Error())
	}
	if req.Name == "" {
		return errJSON(http.StatusBadRequest, "bad_body", "station name is required")
	}
	series := ts.New(ttdb.Metric)
	for _, p := range req.Points {
		series.Upsert(ts.Time(p.T), p.V)
	}
	id, err := t.ingestStation(r.Header.Get("X-Idempotency-Key"), req.Name, req.District, series)
	if err != nil {
		return s.writeErr(err, "ingest_failed")
	}
	return okJSON(map[string]any{"station": id})
}

type pointReq struct {
	Station uint32  `json:"station"`
	T       int64   `json:"t"`
	V       float64 `json:"v"`
}

// handlePoints appends one sample. AppendPoint upserts by timestamp, so the
// operation is naturally idempotent and retries need no key.
func (s *Server) handlePoints(ctx context.Context, r *http.Request, t *tenant) response {
	var req pointReq
	if err := decode(r, &req); err != nil {
		return errJSON(http.StatusBadRequest, "bad_body", err.Error())
	}
	if err := t.db.AppendPoint(ttdb.StationID(req.Station), ts.Time(req.T), req.V); err != nil {
		return s.writeErr(err, "append_failed")
	}
	t.version.Add(1)
	return okJSON(map[string]any{"ok": true})
}

type tripReq struct {
	From  uint32 `json:"from"`
	To    uint32 `json:"to"`
	Count int    `json:"count"`
}

// handleTrips upserts a TRIP edge. AddTrip sets the count property to the
// given value (not +=), so retries are idempotent.
func (s *Server) handleTrips(ctx context.Context, r *http.Request, t *tenant) response {
	var req tripReq
	if err := decode(r, &req); err != nil {
		return errJSON(http.StatusBadRequest, "bad_body", err.Error())
	}
	if err := t.db.AddTrip(ttdb.StationID(req.From), ttdb.StationID(req.To), req.Count); err != nil {
		return s.writeErr(err, "trip_failed")
	}
	t.version.Add(1)
	return okJSON(map[string]any{"ok": true})
}

// writeErr maps a storage-side error: deadline → 504, anything else → 500.
func (s *Server) writeErr(err error, code string) response {
	return s.asTimeout(err, code)
}

// ---------------------------------------------------------------------------
// Query endpoints

// handleQuery dispatches the Table 1 queries Q1–Q8 by name, threading the
// request context through the engine (ttdb *Ctx variants) so the deadline
// cancels mid-fan-out. A degraded time-series store yields HTTP 200 with
// "degraded": true and the graph-derivable partial result.
func (s *Server) handleQuery(ctx context.Context, r *http.Request, t *tenant) response {
	q := r.URL.Query()
	name := q.Get("name")
	getI := func(key string, def int64) int64 {
		raw := q.Get(key)
		if raw == "" {
			return def
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return def
		}
		return v
	}
	st := ttdb.StationID(getI("station", 0))
	start := ts.Time(getI("start", 0))
	end := ts.Time(getI("end", int64(ts.MaxTime)))

	var result any
	var err error
	switch name {
	case "Q1":
		result, err = t.db.Q1TimeRangeCtx(ctx, st, start, end)
	case "Q2":
		below, perr := strconv.ParseFloat(q.Get("below"), 64)
		if perr != nil {
			return errJSON(http.StatusBadRequest, "bad_query", "Q2 needs below=<float>")
		}
		result, err = t.db.Q2FilteredRangeCtx(ctx, st, start, end, below)
	case "Q3":
		result, err = t.db.Q3StationMeanCtx(ctx, st, start, end)
	case "Q4":
		result, err = t.db.Q4AllStationMeansCtx(ctx, start, end)
	case "Q5":
		result, err = t.db.Q5DistrictSumsCtx(ctx, start, end)
	case "Q6":
		result, err = t.db.Q6TopKStationsCtx(ctx, start, end, int(getI("k", 3)))
	case "Q7":
		x := ttdb.StationID(getI("x", 0))
		y := ttdb.StationID(getI("y", 0))
		bucket := ts.Time(getI("bucket", int64(ts.Hour)))
		result, err = t.db.Q7CorrelationCtx(ctx, x, y, start, end, bucket)
	case "Q8":
		result, err = t.db.Q8NeighborMeansCtx(ctx, st, start, end)
	case "downsample":
		agg, perr := ts.ParseAggFunc(q.Get("agg"))
		if perr != nil {
			return errJSON(http.StatusBadRequest, "bad_query", perr.Error())
		}
		bucket := ts.Time(getI("bucket", int64(ts.Hour)))
		if bucket <= 0 {
			return errJSON(http.StatusBadRequest, "bad_query", "downsample needs bucket > 0")
		}
		result, err = t.db.DownsampleCtx(ctx, st, start, end, bucket, agg)
	default:
		return errJSON(http.StatusBadRequest, "bad_query",
			fmt.Sprintf("unknown query %q (want Q1..Q8 or downsample)", name))
	}
	if err != nil {
		if errors.Is(err, ttdb.ErrDegraded) {
			return okJSON(map[string]any{"query": name, "result": result, "degraded": true})
		}
		return s.asTimeout(err, "query_failed")
	}
	return okJSON(map[string]any{"query": name, "result": result})
}

type hyqlReq struct {
	Query string `json:"query"`
	At    int64  `json:"at"`
}

// handleHyQL executes a HyQL query against the tenant's materialized view.
func (s *Server) handleHyQL(ctx context.Context, r *http.Request, t *tenant) response {
	var req hyqlReq
	if err := decode(r, &req); err != nil {
		return errJSON(http.StatusBadRequest, "bad_body", err.Error())
	}
	if err := ctx.Err(); err != nil {
		return s.asTimeout(err, "hyql_failed")
	}
	res, err := t.hyqlQuery(req.Query, ts.Time(req.At))
	if err != nil {
		return errJSON(http.StatusBadRequest, "hyql_error", err.Error())
	}
	rows := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		out := make([]string, len(row))
		for j, v := range row {
			out[j] = fmt.Sprint(v)
		}
		rows[i] = out
	}
	return okJSON(map[string]any{"columns": res.Columns, "rows": rows})
}

// handleStats reports tenant shape: station count and the write version
// (clients use it to detect missed writes after torn responses).
func (s *Server) handleStats(ctx context.Context, r *http.Request, t *tenant) response {
	return okJSON(map[string]any{
		"tenant":   t.name,
		"stations": t.db.NumStations(),
		"version":  t.version.Load(),
	})
}

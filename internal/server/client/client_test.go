package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func newClient(t *testing.T, base string, maxAttempts int) *Client {
	t.Helper()
	c, err := New(Config{
		Base:        base,
		MaxAttempts: maxAttempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestRetriesShedsUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Retry-After-MS", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"shed"}}`))
			return
		}
		w.Write([]byte(`{"tenant":"a","stations":3,"version":7}`))
	}))
	defer hs.Close()

	c := newClient(t, hs.URL, 4)
	st, err := c.TenantStats(context.Background(), "a")
	if err != nil {
		t.Fatalf("TenantStats: %v", err)
	}
	if st.Stations != 3 || st.Version != 7 {
		t.Fatalf("stats = %+v", st)
	}
	s := c.Stats()
	if s.Attempts != 3 || s.Retries != 2 || s.Sheds != 2 || s.GiveUps != 0 {
		t.Fatalf("stats = %+v, want attempts=3 retries=2 sheds=2", s)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"rate_limited","message":"slow down"}}`))
	}))
	defer hs.Close()

	c := newClient(t, hs.URL, 3)
	_, err := c.TenantStats(context.Background(), "a")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (MaxAttempts)", got)
	}
	s := c.Stats()
	if s.GiveUps != 1 || s.Sheds != 3 {
		t.Fatalf("stats = %+v, want giveups=1 sheds=3", s)
	}
}

func TestStationIngestWithoutKeyNeverRetries(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"queue_full","message":"shed"}}`))
	}))
	defer hs.Close()

	c := newClient(t, hs.URL, 5)
	_, err := c.IngestStation(context.Background(), "a", "s", "d", nil, "")
	if !errors.Is(err, ErrNotRetried) {
		t.Fatalf("err = %v, want ErrNotRetried in chain", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("keyless station ingest was attempted %d times, want exactly 1", got)
	}

	// The same ingest with a key IS retried.
	calls.Store(0)
	_, err = c.IngestStation(context.Background(), "a", "s", "d", nil, "key-1")
	if err == nil {
		t.Fatalf("expected failure from an always-shedding server")
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("keyed station ingest attempted %d times, want 5", got)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"bad_query","message":"no"}}`))
	}))
	defer hs.Close()

	c := newClient(t, hs.URL, 5)
	_, err := c.Query(context.Background(), "a", "Q99", nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "bad_query" {
		t.Fatalf("err = %v, want bad_query APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 retried: %d calls", got)
	}
}

func TestNetworkErrorsRetryIdempotentRequests(t *testing.T) {
	// A listener that is already closed: every attempt is a transport error.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	hs.Close()

	c := newClient(t, hs.URL, 3)
	_, err := c.TenantStats(context.Background(), "a")
	if err == nil {
		t.Fatalf("expected transport error")
	}
	s := c.Stats()
	if s.Attempts != 3 || s.NetErrors != 3 || s.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 3 net errors / 2 retries", s)
	}
}

func TestBackoffHonorsHintAndCap(t *testing.T) {
	c := newClient(t, "http://x", 4)
	if got := c.backoff(1, 42*time.Millisecond); got != 42*time.Millisecond {
		t.Fatalf("hint ignored: %v", got)
	}
	for n := 1; n <= 10; n++ {
		d := c.backoff(n, 0)
		if d <= 0 || d > c.cfg.MaxDelay {
			t.Fatalf("backoff(%d) = %v outside (0, %v]", n, d, c.cfg.MaxDelay)
		}
	}
	// Jitter must actually vary.
	seen := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		seen[c.backoff(1, 0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("backoff shows no jitter: %v", seen)
	}
}

func TestDeadlineStopsRetryLoop(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Retry-After-MS", "250")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"queue_full","message":"shed"}}`))
	}))
	defer hs.Close()

	c := newClient(t, hs.URL, 100)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.TenantStats(ctx, "a")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatalf("retry loop outlived its context")
	}
}

// Package client is the retrying HTTP client for the hygraph query service
// (internal/server). It encodes the retry discipline docs/SERVICE.md
// requires of well-behaved clients:
//
//   - capped exponential backoff with jitter between attempts, so a shed
//     fleet does not retry in lockstep;
//   - server Retry-After hints (X-Retry-After-MS when present, else the
//     Retry-After header) override the computed backoff — the server knows
//     its backlog better than the client's exponent does;
//   - only safe requests are retried: reads, naturally idempotent writes
//     (point upserts, trip upserts), and keyed station ingest. A station
//     ingest WITHOUT an idempotency key is never retried — after a torn
//     response the client cannot know whether the server committed, and a
//     blind retry would duplicate the station.
//
// Every attempt, retry, shed and giveup is counted in Stats, which the
// chaos harness reconciles against the server's own admission counters.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Point is one (t, v) sample on the wire.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Stats counts client-side outcomes across all requests.
type Stats struct {
	Attempts  int64 // HTTP round trips issued
	Retries   int64 // attempts beyond the first
	Sheds     int64 // 429/503 responses observed
	Timeouts  int64 // 504 responses observed
	NetErrors int64 // transport-level failures observed
	GiveUps   int64 // requests that exhausted their attempts
}

// statCell is the atomic backing for Stats.
type statCell struct {
	attempts, retries, sheds, timeouts, netErrors, giveUps atomic.Int64
}

func (c *statCell) snapshot() Stats {
	return Stats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Sheds:     c.sheds.Load(),
		Timeouts:  c.timeouts.Load(),
		NetErrors: c.netErrors.Load(),
		GiveUps:   c.giveUps.Load(),
	}
}

// Config parameterizes a Client. Zero fields select defaults.
type Config struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080". Required.
	Base string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds round trips per request, first try included
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 25ms); MaxDelay
	// caps it (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Timeout, when > 0, is sent as the per-request X-Timeout-MS budget.
	Timeout time.Duration
	// Seed makes the jitter sequence reproducible; 0 derives one from the
	// clock (fine outside tests).
	Seed int64
}

// Client issues requests against one server with the retry discipline
// applied. Safe for concurrent use.
type Client struct {
	cfg   Config
	stats statCell

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client. It fails only on a missing Base.
func New(cfg Config) (*Client, error) {
	if cfg.Base == "" {
		return nil, errors.New("client: config needs a Base URL")
	}
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 25 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Stats returns a snapshot of the outcome counters.
func (c *Client) Stats() Stats { return c.stats.snapshot() }

// APIError is a non-2xx JSON response from the server.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's backoff hint on sheds (0 = none given).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Code, e.Message)
}

// retryable reports whether a failed attempt may be retried at all
// (independent of the request's own idempotency).
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
			return true
		default:
			// Other 4xx are misuse and other 5xx ambiguous server state;
			// both would fail identically on replay or risk duplication.
			return false
		}
	}
	// Anything that is not an APIError is transport-level: conn refused,
	// reset, torn response. Retryable for idempotent requests only.
	return true
}

// backoff computes the wait before attempt n (1-based retry index),
// honoring a server hint when present.
func (c *Client) backoff(n int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	d := c.cfg.BaseDelay << (n - 1)
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	// Jitter in [0.5, 1.5): desynchronizes a shed fleet.
	c.mu.Lock()
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	d = time.Duration(float64(d) * f)
	if d > c.cfg.MaxDelay {
		d = c.cfg.MaxDelay
	}
	return d
}

// do runs one request with retries. idempotent=false disables ALL retries:
// the caller's request may have committed server-side on an ambiguous
// failure. Body is re-sent from bytes on every attempt.
func (c *Client) do(ctx context.Context, method, path string, hdr map[string]string, body []byte, idempotent bool, out any) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.stats.attempts.Add(1)
		err := c.once(ctx, method, path, hdr, body, out)
		if err == nil {
			return nil
		}
		lastErr = err

		var ae *APIError
		var hint time.Duration
		if errors.As(err, &ae) {
			switch ae.Status {
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				c.stats.sheds.Add(1)
			case http.StatusGatewayTimeout:
				c.stats.timeouts.Add(1)
			}
			hint = ae.RetryAfter
		} else {
			c.stats.netErrors.Add(1)
		}

		if !idempotent || !retryable(err) || attempt >= c.cfg.MaxAttempts {
			if idempotent && retryable(err) {
				c.stats.giveUps.Add(1)
			}
			return lastErr
		}
		c.stats.retries.Add(1)
		t := time.NewTimer(c.backoff(attempt, hint))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// once is a single HTTP round trip plus JSON decode.
func (c *Client) once(ctx context.Context, method, path string, hdr map[string]string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.cfg.Timeout > 0 {
		req.Header.Set("X-Timeout-MS", strconv.FormatInt(c.cfg.Timeout.Milliseconds(), 10))
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		ae := &APIError{Status: resp.StatusCode, RetryAfter: retryAfter(resp.Header)}
		var eb struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &eb) == nil {
			ae.Code, ae.Message = eb.Error.Code, eb.Error.Message
		}
		return ae
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return nil
}

// retryAfter extracts the server's backoff hint, preferring the precise
// millisecond header over the whole-second standard one.
func retryAfter(h http.Header) time.Duration {
	if ms := h.Get("X-Retry-After-MS"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if s := h.Get("Retry-After"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Second
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// API surface

// Health reports the server's health status string ("ok" or "draining").
func (c *Client) Health(ctx context.Context) (string, error) {
	var out struct {
		Status string `json:"status"`
	}
	// Health is read-only but deliberately not retried: callers poll it.
	if err := c.once(ctx, http.MethodGet, "/v1/health", nil, nil, &out); err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable {
			return "draining", nil
		}
		return "", err
	}
	return out.Status, nil
}

// IngestStation creates a station. With a non-empty idempotency key the
// request is retried like any idempotent call; with an empty key it is
// attempted exactly once and any ambiguous failure is returned as-is,
// wrapped in ErrNotRetried.
func (c *Client) IngestStation(ctx context.Context, tenant, name, district string, pts []Point, idemKey string) (uint32, error) {
	body, err := json.Marshal(map[string]any{"name": name, "district": district, "points": pts})
	if err != nil {
		return 0, err
	}
	var hdr map[string]string
	if idemKey != "" {
		hdr = map[string]string{"X-Idempotency-Key": idemKey}
	}
	var out struct {
		Station uint32 `json:"station"`
	}
	err = c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/stations", hdr, body, idemKey != "", &out)
	if err != nil && idemKey == "" && retryable(err) {
		err = fmt.Errorf("%w: %w", ErrNotRetried, err)
	}
	return out.Station, err
}

// ErrNotRetried wraps a retryable failure the client refused to retry
// because the request carried no idempotency key.
var ErrNotRetried = errors.New("client: not retried (no idempotency key)")

// AppendPoint upserts one sample (idempotent by timestamp, always retried).
func (c *Client) AppendPoint(ctx context.Context, tenant string, station uint32, t int64, v float64) error {
	body, err := json.Marshal(map[string]any{"station": station, "t": t, "v": v})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/points", nil, body, true, nil)
}

// AddTrip upserts a trip edge (idempotent, always retried).
func (c *Client) AddTrip(ctx context.Context, tenant string, from, to uint32, count int) error {
	body, err := json.Marshal(map[string]any{"from": from, "to": to, "count": count})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/trips", nil, body, true, nil)
}

// QueryResult is a Table 1 query response. Result's concrete shape depends
// on the query (points, scalar, maps).
type QueryResult struct {
	Query    string          `json:"query"`
	Result   json.RawMessage `json:"result"`
	Degraded bool            `json:"degraded"`
}

// Query runs one of Q1..Q8 with the given parameters.
func (c *Client) Query(ctx context.Context, tenant, name string, params url.Values) (*QueryResult, error) {
	if params == nil {
		params = url.Values{}
	}
	params.Set("name", name)
	var out QueryResult
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+tenant+"/query?"+params.Encode(), nil, nil, true, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// HyQLResult is a HyQL response: column names plus stringified rows.
type HyQLResult struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// HyQL executes a HyQL query at the given valid-time instant.
func (c *Client) HyQL(ctx context.Context, tenant, query string, at int64) (*HyQLResult, error) {
	body, err := json.Marshal(map[string]any{"query": query, "at": at})
	if err != nil {
		return nil, err
	}
	var out HyQLResult
	if err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/hyql", nil, body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantStats is the server's per-tenant shape report.
type TenantStats struct {
	Tenant   string `json:"tenant"`
	Stations int    `json:"stations"`
	Version  uint64 `json:"version"`
}

// TenantStats fetches the tenant's station count and write version.
func (c *Client) TenantStats(ctx context.Context, tenant string) (*TenantStats, error) {
	var out TenantStats
	if err := c.do(ctx, http.MethodGet, "/v1/tenants/"+tenant+"/stats", nil, nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"testing"
	"time"

	"hygraph/internal/faults"
	"hygraph/internal/obs"
	"hygraph/internal/server/client"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// The chaos hammer: many retrying clients against a small-limit server with
// fault points firing on the accept path, the handler path, the response
// path and the storage layer — then a graceful stop and a recovery from the
// surviving WAL bytes. It proves the headline robustness claims:
//
//  1. no acknowledged write is lost (recovery check),
//  2. no deadlock and no goroutine leak,
//  3. gauges stay inside the configured bounds (bounded memory),
//  4. every request is accounted exactly once (requests = responses+drops),
//  5. client-observed sheds reconcile with the server's shed counters.

// ackPoint is one client-acknowledged sample. Station ids are per-tenant
// (each tenant is its own engine), so the tenant is part of the identity.
type ackPoint struct {
	tenant  string
	station uint32
	t       int64
	v       float64
}

func TestChaosHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos hammer is a long test")
	}
	defer faults.Reset()
	faults.Seed(20260808)

	before := runtime.NumGoroutine()

	be := NewMemBackend()
	reg := obs.New()
	limits := Limits{MaxConcurrent: 4, MaxQueue: 4, TenantConcurrent: 4}
	s, err := New(Config{Limits: limits, Backend: be, Obs: reg, DefaultTimeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())

	// Fault schedule: rare accept failures and torn responses, occasional
	// transient storage errors (retried inside the engine's RetryPolicy),
	// and a little handler latency to force real queueing. All
	// probabilistic draws are seeded — the schedule is reproducible.
	faults.Enable(FaultAccept, faults.Spec{P: 0.02})
	faults.Enable(FaultDropResponse, faults.Spec{P: 0.02})
	faults.Enable(FaultHandler, faults.Spec{Delay: 2 * time.Millisecond, Nth: 1 << 30})
	faults.Enable(ttdb.FaultIngestTS, faults.Spec{P: 0.05, Transient: true})
	faults.Enable(ttdb.FaultIngestGraph, faults.Spec{P: 0.05, Transient: true})

	const (
		workers = 8
		ops     = 40
	)
	var (
		mu          sync.Mutex
		ackStations = map[string]uint32{} // acknowledged name -> id
		ackPoints   []ackPoint
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenantName := fmt.Sprintf("t%d", w%2) // two tenants share the server
			cl, err := client.New(client.Config{
				Base:        hs.URL,
				MaxAttempts: 6,
				BaseDelay:   time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				Seed:        int64(w + 1),
			})
			if err != nil {
				t.Errorf("client.New: %v", err)
				return
			}
			ctx := context.Background()
			var myStation uint32
			haveStation := false
			for i := 0; i < ops; i++ {
				switch i % 4 {
				case 0: // keyed station ingest — retried safely
					name := fmt.Sprintf("w%d-s%d", w, i)
					key := "idem-" + name
					id, err := cl.IngestStation(ctx, tenantName, name, "d", []client.Point{{T: 0, V: 1}}, key)
					if err == nil {
						myStation, haveStation = id, true
						mu.Lock()
						ackStations[tenantName+"/"+name] = id
						mu.Unlock()
					}
				case 1: // idempotent point append
					if haveStation {
						tm := int64(60 * (i + 1))
						v := float64(w*100 + i)
						if err := cl.AppendPoint(ctx, tenantName, myStation, tm, v); err == nil {
							mu.Lock()
							ackPoints = append(ackPoints, ackPoint{tenantName, myStation, tm, v})
							mu.Unlock()
						}
					}
				case 2: // reads across the query surface
					q := []string{"Q1", "Q3", "Q4", "Q5", "Q6", "Q8"}[i%6]
					params := url.Values{"station": {fmt.Sprint(myStation)}}
					_, _ = cl.Query(ctx, tenantName, q, params)
				case 3: // trips + an occasional short-deadline query
					if haveStation {
						_ = cl.AddTrip(ctx, tenantName, myStation, myStation, 1)
					}
					if i%8 == 3 {
						short, err := client.New(client.Config{
							Base: hs.URL, MaxAttempts: 1, Timeout: time.Millisecond, Seed: int64(i)})
						if err == nil {
							_, _ = short.Query(ctx, tenantName, "Q4", nil)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Storage faults off before drain: shutdown's flush must not be
	// sabotaged by the test harness itself.
	faults.Reset()

	// Graceful stop: drain, flush, close.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	hs.Close()

	snap := reg.Snapshot()
	c := snap.Counters

	// (4) Exact accounting: every request produced exactly one response or
	// one deliberate drop. Nothing vanished.
	requests := c["server.requests"]
	accounted := c["server.resp.ok"] + c["server.resp.client_error"] +
		c["server.resp.server_error"] + c["server.fault.response_drop"]
	if requests == 0 {
		t.Fatalf("hammer issued no requests")
	}
	if requests != accounted {
		t.Fatalf("request accounting broken: requests=%d accounted=%d (ok=%d 4xx=%d 5xx=%d dropped=%d)",
			requests, accounted, c["server.resp.ok"], c["server.resp.client_error"],
			c["server.resp.server_error"], c["server.fault.response_drop"])
	}
	// Admitted requests are a subset, and sheds+admitted+accept-failures
	// never exceed the request count.
	if c["server.admitted"] > requests {
		t.Fatalf("admitted=%d > requests=%d", c["server.admitted"], requests)
	}

	// (3) Bounded memory: the gauges' high-water marks respect the limits.
	if hi := snap.Gauges["server.inflight"].High; hi > int64(limits.MaxConcurrent) {
		t.Fatalf("inflight high-water %d exceeds MaxConcurrent %d", hi, limits.MaxConcurrent)
	}
	if hi := snap.Gauges["server.queue.depth"].High; hi > int64(limits.MaxQueue) {
		t.Fatalf("queue depth high-water %d exceeds MaxQueue %d", hi, limits.MaxQueue)
	}
	if v := snap.Gauges["server.inflight"].Value; v != 0 {
		t.Fatalf("inflight gauge = %d after drain, want 0", v)
	}
	if v := snap.Gauges["server.queue.depth"].Value; v != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", v)
	}

	// (1) Zero acknowledged-write loss: recover both tenants from the
	// retained WAL bytes and check every acknowledged station and point.
	for tn := 0; tn < 2; tn++ {
		tenantName := fmt.Sprintf("t%d", tn)
		eng, rec, err := be.Recover(tenantName)
		if err != nil {
			t.Fatalf("recover %s: %v", tenantName, err)
		}
		if rec.RolledBack != 0 {
			t.Fatalf("%s: clean shutdown left %d rolled-back txns", tenantName, rec.RolledBack)
		}
		recovered := map[string]bool{}
		for _, st := range eng.G.NodesByLabel("Station") {
			if v, ok := eng.G.NodeProp(st, "name"); ok {
				recovered[v.S] = true
			}
		}
		mu.Lock()
		for key := range ackStations {
			tn2, name, _ := cut(key)
			if tn2 != tenantName {
				continue
			}
			if !recovered[name] {
				mu.Unlock()
				t.Fatalf("%s: acknowledged station %q lost after recovery", tenantName, name)
			}
		}
		mu.Unlock()
	}
	// Points: check each against its owning tenant's recovered engine.
	mu.Lock()
	pts := append([]ackPoint(nil), ackPoints...)
	mu.Unlock()
	engines := map[string]*ttdb.Polyglot{}
	for tn := 0; tn < 2; tn++ {
		name := fmt.Sprintf("t%d", tn)
		eng, _, err := be.Recover(name)
		if err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
		engines[name] = eng
	}
	for _, p := range pts {
		found := false
		// The range is half-open; [t, t+1) isolates the exact sample.
		for _, q := range engines[p.tenant].Q1TimeRange(ttdb.StationID(p.station), ts.Time(p.t), ts.Time(p.t)+1) {
			if q.V == p.v {
				found = true
			}
		}
		if !found {
			t.Fatalf("acknowledged point (%s station=%d t=%d v=%v) lost after recovery",
				p.tenant, p.station, p.t, p.v)
		}
	}

	// (2) No goroutine leak: the worker fleet, the server and its tenants
	// are gone. Allow the runtime a moment to reap netpoll goroutines.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+4 || time.Now().After(deadline) {
			if g > before+4 {
				t.Fatalf("goroutine leak: %d before, %d after", before, g)
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// cut splits "tenant/name".
func cut(key string) (tenant, name string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:], true
		}
	}
	return "", key, false
}

// TestChaosShedAccounting runs a deterministic (no-drop) overload phase and
// reconciles the client-side shed count with the server's shed counters —
// the "correct shed/retry accounting" acceptance check, kept separate from
// the fault phase because a dropped shed response reaches the client as a
// transport error, not a shed.
func TestChaosShedAccounting(t *testing.T) {
	defer faults.Reset()
	be := NewMemBackend()
	reg := obs.New()
	s, err := New(Config{
		Limits:  Limits{MaxConcurrent: 1, MaxQueue: 1, TenantConcurrent: 8},
		Backend: be, Obs: reg, DefaultTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// Seed one station, then stall handlers so concurrent queries shed.
	seed, err := client.New(client.Config{Base: hs.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.IngestStation(context.Background(), "a", "s", "d",
		[]client.Point{{T: 0, V: 1}}, "seed"); err != nil {
		t.Fatalf("seed ingest: %v", err)
	}
	faults.Enable(FaultHandler, faults.Spec{Delay: 50 * time.Millisecond, Nth: 1 << 30})
	defer faults.Disable(FaultHandler)

	base := reg.Snapshot().Counters
	const fleet = 6
	var wg sync.WaitGroup
	clients := make([]*client.Client, fleet)
	for i := range clients {
		cl, err := client.New(client.Config{
			Base: hs.URL, MaxAttempts: 3, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				_, _ = cl.Query(context.Background(), "a", "Q4", nil)
			}
		}(cl)
	}
	wg.Wait()

	snap := reg.Snapshot().Counters
	serverSheds := snap["server.shed.queue_full"] - base["server.shed.queue_full"]
	var clientSheds, clientRetries int64
	for _, cl := range clients {
		st := cl.Stats()
		clientSheds += st.Sheds
		clientRetries += st.Retries
	}
	// Every shed the server recorded was delivered to exactly one client
	// (no drop faults armed), and vice versa.
	if clientSheds != serverSheds {
		t.Fatalf("shed accounting: clients saw %d, server recorded %d", clientSheds, serverSheds)
	}
	// Every retry was provoked by a shed (the server is otherwise healthy),
	// so retries can never exceed sheds.
	if clientRetries > clientSheds {
		t.Fatalf("retry accounting: %d retries but only %d sheds", clientRetries, clientSheds)
	}
}

package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hygraph/internal/obs"
)

// newPartitionedServer builds a Server whose tenants are partitioned over
// the shared MemBackend — sub-tenants <name>.pI hold the per-partition WALs,
// so a second server over the same backend is the reopen path.
func newPartitionedServer(t *testing.T, be *MemBackend, parts int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Backend:        &PartitionedBackend{Inner: be, Parts: parts},
		Obs:            obs.New(),
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs
}

// TestPartitionedBackendServesAndReopens drives the full service surface
// (ingest, trips, Q1–Q8, HyQL, stats) against a 3-partition tenant, then
// shuts the server down and reopens the same tenant from the retained
// per-partition WALs — the answers must survive the round-trip.
func TestPartitionedBackendServesAndReopens(t *testing.T) {
	be := NewMemBackend()
	s1, hs1 := newPartitionedServer(t, be, 3)
	base := hs1.URL

	pts := func(base float64) []map[string]any {
		var p []map[string]any
		for i := 0; i < 8; i++ {
			p = append(p, map[string]any{"t": i * 60, "v": base + float64(i%4)})
		}
		return p
	}
	var ids []float64
	for i := 0; i < 6; i++ {
		ids = append(ids, ingestStation(t, base, "acme", fmt.Sprintf("st-%d", i),
			fmt.Sprintf("d-%d", i%2), pts(float64(2*i)), ""))
	}
	for i := 0; i < len(ids); i++ {
		code, body, _ := doJSON(t, "POST", base+"/v1/tenants/acme/trips",
			map[string]any{"from": ids[i], "to": ids[(i+1)%len(ids)], "count": i + 1}, nil)
		if code != http.StatusOK {
			t.Fatalf("trip %d: %d %v", i, code, body)
		}
	}

	snapshot := func(hsBase string) map[string]any {
		out := map[string]any{}
		for _, q := range []string{
			"query?name=Q3&station=" + fmt.Sprint(ids[0]),
			"query?name=Q4",
			"query?name=Q5",
			"query?name=Q6&k=3",
			"query?name=Q8&station=" + fmt.Sprint(ids[0]),
		} {
			code, body, _ := doJSON(t, "GET", hsBase+"/v1/tenants/acme/"+q, nil, nil)
			if code != http.StatusOK {
				t.Fatalf("%s: %d %v", q, code, body)
			}
			out[q] = fmt.Sprint(body["result"])
		}
		code, body, _ := doJSON(t, "POST", hsBase+"/v1/tenants/acme/hyql",
			map[string]any{"query": `MATCH (st:Station)-[:HAS_SERIES]->(a) RETURN st.name, ts.mean(a, 0, 100000000) ORDER BY st.name`}, nil)
		if code != http.StatusOK {
			t.Fatalf("hyql: %d %v", code, body)
		}
		out["hyql"] = fmt.Sprint(body["rows"])
		code, body, _ = doJSON(t, "GET", hsBase+"/v1/tenants/acme/stats", nil, nil)
		if code != http.StatusOK {
			t.Fatalf("stats: %d %v", code, body)
		}
		if got := body["stations"].(float64); got != float64(len(ids)) {
			t.Fatalf("stats.stations = %v, want %d (boundary replicas must not count)", got, len(ids))
		}
		return out
	}
	before := snapshot(base)

	// Graceful stop flushes every partition's WAL group writers.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs1.Close()

	// Reopen over the same retained logs: Attach rebuilds the placement map
	// from the gid tags, and every answer must be identical.
	_, hs2 := newPartitionedServer(t, be, 3)
	after := snapshot(hs2.URL)
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("%s changed across reopen:\n before %v\n after  %v", k, v, after[k])
		}
	}

	// The per-partition sub-tenants really exist in the inner backend (the
	// unit a multi-process deployment would split out).
	for i := 0; i < 3; i++ {
		if _, _, err := be.Recover(fmt.Sprintf("acme.p%d", i)); err != nil {
			t.Fatalf("partition sub-tenant missing: %v", err)
		}
	}
}

// TestPartitionedDownsampleReadYourWrites checks read-your-writes aggregates
// through the scatter-gather coordinator: AppendPoint routes to the owner
// partition and patches its continuous-aggregate cache before acknowledging,
// so the next downsample read through the same coordinator sees the write.
func TestPartitionedDownsampleReadYourWrites(t *testing.T) {
	be := NewMemBackend()
	_, hs := newPartitionedServer(t, be, 3)
	base := hs.URL

	var ids []float64
	for i := 0; i < 4; i++ {
		pts := []map[string]any{{"t": 0, "v": float64(i)}, {"t": 30, "v": float64(i + 2)}}
		ids = append(ids, ingestStation(t, base, "acme", fmt.Sprintf("st-%d", i), "d", pts, ""))
	}
	ds := func(id float64) []any {
		code, body, _ := doJSON(t, "GET",
			fmt.Sprintf("%s/v1/tenants/acme/query?name=downsample&station=%.0f&start=0&end=600&bucket=60&agg=sum", base, id), nil, nil)
		if code != http.StatusOK {
			t.Fatalf("downsample: %d %v", code, body)
		}
		return body["result"].([]any)
	}
	for i, id := range ids {
		buckets := ds(id) // warm the owner's cache
		if len(buckets) != 1 {
			t.Fatalf("station %d: buckets = %v, want 1", i, buckets)
		}
		if got := buckets[0].(map[string]any)["V"].(float64); got != float64(2*i+2) {
			t.Fatalf("station %d: sum = %v, want %d", i, got, 2*i+2)
		}
		code, body, _ := doJSON(t, "POST", base+"/v1/tenants/acme/points",
			map[string]any{"station": id, "t": 45, "v": 10}, nil)
		if code != http.StatusOK {
			t.Fatalf("point: %d %v", code, body)
		}
		buckets = ds(id)
		if got := buckets[0].(map[string]any)["V"].(float64); got != float64(2*i+12) {
			t.Fatalf("station %d post-append: sum = %v, want %d", i, got, 2*i+12)
		}
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hygraph/internal/faults"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
)

// newTestServer builds a Server over a MemBackend with the given limits and
// an httptest front end. Callers get the base URL, the backend (for recovery
// checks) and the registry (for counter assertions).
func newTestServer(t *testing.T, l Limits) (*Server, *httptest.Server, *MemBackend, *obs.Registry) {
	t.Helper()
	be := NewMemBackend()
	reg := obs.New()
	s, err := New(Config{Limits: l, Backend: be, Obs: reg, DefaultTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs, be, reg
}

// doJSON posts (or gets) and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any, hdr map[string]string) (int, map[string]any, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, out, resp.Header
}

// ingestStation is the test-side station ingest helper.
func ingestStation(t *testing.T, base, tenant, name, district string, pts []map[string]any, key string) float64 {
	t.Helper()
	hdr := map[string]string{}
	if key != "" {
		hdr["X-Idempotency-Key"] = key
	}
	code, body, _ := doJSON(t, "POST", base+"/v1/tenants/"+tenant+"/stations",
		map[string]any{"name": name, "district": district, "points": pts}, hdr)
	if code != http.StatusOK {
		t.Fatalf("ingest %s: status %d body %v", name, code, body)
	}
	return body["station"].(float64)
}

func TestServeEndToEnd(t *testing.T) {
	_, hs, _, _ := newTestServer(t, Limits{})
	base := hs.URL

	pts := []map[string]any{{"t": 0, "v": 4}, {"t": 60, "v": 6}, {"t": 120, "v": 8}}
	a := ingestStation(t, base, "acme", "alpha", "north", pts, "")
	b := ingestStation(t, base, "acme", "beta", "south", pts, "")

	code, body, _ := doJSON(t, "POST", base+"/v1/tenants/acme/trips",
		map[string]any{"from": a, "to": b, "count": 7}, nil)
	if code != http.StatusOK {
		t.Fatalf("trip: %d %v", code, body)
	}
	code, body, _ = doJSON(t, "POST", base+"/v1/tenants/acme/points",
		map[string]any{"station": a, "t": 180, "v": 10}, nil)
	if code != http.StatusOK {
		t.Fatalf("point: %d %v", code, body)
	}

	// Q3 mean over station a: (4+6+8+10)/4 = 7.
	code, body, _ = doJSON(t, "GET",
		fmt.Sprintf("%s/v1/tenants/acme/query?name=Q3&station=%.0f&start=0&end=1000", base, a), nil, nil)
	if code != http.StatusOK {
		t.Fatalf("Q3: %d %v", code, body)
	}
	if got := body["result"].(float64); got != 7 {
		t.Fatalf("Q3 mean = %v, want 7", got)
	}

	// Q8 neighbors of a must include b.
	code, body, _ = doJSON(t, "GET",
		fmt.Sprintf("%s/v1/tenants/acme/query?name=Q8&station=%.0f", base, a), nil, nil)
	if code != http.StatusOK {
		t.Fatalf("Q8: %d %v", code, body)
	}
	res := body["result"].(map[string]any)
	if _, ok := res[fmt.Sprintf("%.0f", b)]; !ok {
		t.Fatalf("Q8 result %v misses neighbor %v", res, b)
	}

	// Every remaining query answers 200.
	for _, q := range []string{"Q1", "Q4", "Q5", "Q6"} {
		code, body, _ = doJSON(t, "GET",
			fmt.Sprintf("%s/v1/tenants/acme/query?name=%s&station=%.0f", base, q, a), nil, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %v", q, code, body)
		}
	}
	code, body, _ = doJSON(t, "GET",
		fmt.Sprintf("%s/v1/tenants/acme/query?name=Q2&station=%.0f&below=7", base, a), nil, nil)
	if code != http.StatusOK {
		t.Fatalf("Q2: %d %v", code, body)
	}
	code, body, _ = doJSON(t, "GET",
		fmt.Sprintf("%s/v1/tenants/acme/query?name=Q7&x=%.0f&y=%.0f&bucket=60", base, a, b), nil, nil)
	if code != http.StatusOK {
		t.Fatalf("Q7: %d %v", code, body)
	}

	// HyQL over the materialized view.
	code, body, _ = doJSON(t, "POST", base+"/v1/tenants/acme/hyql",
		map[string]any{"query": "MATCH (s:Station) WHERE s.district = 'north' RETURN s.name", "at": 0}, nil)
	if code != http.StatusOK {
		t.Fatalf("hyql: %d %v", code, body)
	}
	rows := body["rows"].([]any)
	if len(rows) != 1 || !strings.Contains(fmt.Sprint(rows[0]), "alpha") {
		t.Fatalf("hyql rows = %v, want one row containing alpha", rows)
	}

	// Stats reflect both stations.
	code, body, _ = doJSON(t, "GET", base+"/v1/tenants/acme/stats", nil, nil)
	if code != http.StatusOK || body["stations"].(float64) != 2 {
		t.Fatalf("stats: %d %v", code, body)
	}

	// Unknown query name and invalid tenant are client errors.
	code, _, _ = doJSON(t, "GET", base+"/v1/tenants/acme/query?name=Q99", nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("Q99 status = %d, want 400", code)
	}
	code, _, _ = doJSON(t, "GET", base+"/v1/tenants/..%2Fetc/query?name=Q1", nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad tenant status = %d, want 400", code)
	}
}

// TestDownsampleReadYourWrites checks the windowed-aggregate endpoint sees
// an acknowledged append immediately: the engine's continuous-aggregate
// cache is patched in place before AppendPoint returns, so the very next
// read reflects the write without a recompute.
func TestDownsampleReadYourWrites(t *testing.T) {
	_, hs, _, _ := newTestServer(t, Limits{})
	base := hs.URL

	pts := []map[string]any{{"t": 0, "v": 4}, {"t": 10, "v": 6}, {"t": 70, "v": 8}}
	a := ingestStation(t, base, "acme", "alpha", "north", pts, "")

	ds := func() []any {
		code, body, _ := doJSON(t, "GET",
			fmt.Sprintf("%s/v1/tenants/acme/query?name=downsample&station=%.0f&start=0&end=600&bucket=60&agg=mean", base, a), nil, nil)
		if code != http.StatusOK {
			t.Fatalf("downsample: %d %v", code, body)
		}
		return body["result"].([]any)
	}
	buckets := ds()
	if len(buckets) != 2 {
		t.Fatalf("buckets = %v, want 2", buckets)
	}
	first := buckets[0].(map[string]any)
	if first["T"].(float64) != 0 || first["V"].(float64) != 5 {
		t.Fatalf("bucket 0 = %v, want mean 5 at t=0", first)
	}

	// Append into bucket 0 (acknowledged), then read again: mean over
	// {4, 6, 20} must be visible immediately.
	code, body, _ := doJSON(t, "POST", base+"/v1/tenants/acme/points",
		map[string]any{"station": a, "t": 20, "v": 20}, nil)
	if code != http.StatusOK {
		t.Fatalf("point: %d %v", code, body)
	}
	buckets = ds()
	first = buckets[0].(map[string]any)
	if got := first["V"].(float64); got != 10 {
		t.Fatalf("post-append bucket 0 mean = %v, want 10", got)
	}

	// Bad aggregate names and non-positive buckets are client errors.
	code, _, _ = doJSON(t, "GET",
		fmt.Sprintf("%s/v1/tenants/acme/query?name=downsample&station=%.0f&bucket=60&agg=nope", base, a), nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad agg status = %d, want 400", code)
	}
	code, _, _ = doJSON(t, "GET",
		fmt.Sprintf("%s/v1/tenants/acme/query?name=downsample&station=%.0f&bucket=0&agg=mean", base, a), nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("zero bucket status = %d, want 400", code)
	}
}

func TestIdempotentStationIngest(t *testing.T) {
	_, hs, _, _ := newTestServer(t, Limits{})
	base := hs.URL
	pts := []map[string]any{{"t": 0, "v": 1}}
	id1 := ingestStation(t, base, "acme", "gamma", "east", pts, "key-1")
	id2 := ingestStation(t, base, "acme", "gamma", "east", pts, "key-1")
	if id1 != id2 {
		t.Fatalf("same idempotency key allocated two stations: %v vs %v", id1, id2)
	}
	code, body, _ := doJSON(t, "GET", base+"/v1/tenants/acme/stats", nil, nil)
	if code != http.StatusOK || body["stations"].(float64) != 1 {
		t.Fatalf("stats after duplicate-keyed ingest: %d %v", code, body)
	}
	// A different key is a different station.
	id3 := ingestStation(t, base, "acme", "gamma2", "east", pts, "key-2")
	if id3 == id1 {
		t.Fatalf("distinct keys shared a station id")
	}
}

func TestQueueFullShedsWithRetryAfter(t *testing.T) {
	defer faults.Reset()
	_, hs, _, reg := newTestServer(t, Limits{MaxConcurrent: 1, MaxQueue: 1, TenantConcurrent: 8})
	base := hs.URL
	ingestStation(t, base, "acme", "s", "d", []map[string]any{{"t": 0, "v": 1}}, "")

	// Stall every handler long enough to pile up: 1 executing + 1 queued +
	// N shed.
	faults.Enable(FaultHandler, faults.Spec{Delay: 300 * time.Millisecond, Nth: 1 << 30})
	defer faults.Disable(FaultHandler)

	const n = 6
	codes := make(chan int, n)
	hdrs := make(chan http.Header, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/tenants/acme/query?name=Q4")
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
			hdrs <- resp.Header
		}()
	}
	wg.Wait()
	close(codes)
	close(hdrs)

	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok != 2 || shed != n-2 {
		t.Fatalf("ok=%d shed=%d, want 2 executed (1 running + 1 queued) and %d shed", ok, shed, n-2)
	}
	sawRetry := false
	for h := range hdrs {
		if h.Get("Retry-After") != "" && h.Get("X-Retry-After-MS") != "" {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("no shed response carried Retry-After headers")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["server.shed.queue_full"]; got != int64(n-2) {
		t.Fatalf("shed.queue_full = %d, want %d", got, n-2)
	}
	// Identity: requests = ok responses + sheds (ingest ran before arming).
	req := snap.Counters["server.requests"]
	acc := snap.Counters["server.resp.ok"] + snap.Counters["server.shed.queue_full"]
	if req != acc {
		t.Fatalf("request accounting broken: requests=%d ok+shed=%d", req, acc)
	}
}

func TestTenantRateLimitSheds(t *testing.T) {
	_, hs, _, reg := newTestServer(t, Limits{TenantRate: 0.001, TenantBurst: 1})
	base := hs.URL
	// First request consumes the lone token.
	code, _, _ := doJSON(t, "GET", base+"/v1/tenants/acme/stats", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("first request: %d", code)
	}
	code, body, hdr := doJSON(t, "GET", base+"/v1/tenants/acme/stats", nil, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	errObj := body["error"].(map[string]any)
	if errObj["code"] != "rate_limited" {
		t.Fatalf("shed code = %v, want rate_limited", errObj["code"])
	}
	if reg.Snapshot().Counters["server.shed.rate_limited"] != 1 {
		t.Fatalf("rate_limited counter not incremented")
	}
	// An unrelated tenant still flows: the bucket is per tenant.
	code, _, _ = doJSON(t, "GET", base+"/v1/tenants/other/stats", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("other tenant was rate limited too: %d", code)
	}
}

func TestTenantConcurrencyCapSheds(t *testing.T) {
	defer faults.Reset()
	_, hs, _, reg := newTestServer(t, Limits{MaxConcurrent: 8, MaxQueue: 8, TenantConcurrent: 1})
	base := hs.URL
	ingestStation(t, base, "acme", "s", "d", []map[string]any{{"t": 0, "v": 1}}, "")

	faults.Enable(FaultHandler, faults.Spec{Delay: 200 * time.Millisecond, Nth: 1 << 30})
	defer faults.Disable(FaultHandler)

	results := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/tenants/acme/query?name=Q4")
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(results)
	var ok, busy int
	for c := range results {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			busy++
		}
	}
	if ok != 1 || busy != 2 {
		t.Fatalf("ok=%d busy=%d, want 1 executed and 2 tenant_busy", ok, busy)
	}
	if reg.Snapshot().Counters["server.shed.tenant_busy"] != 2 {
		t.Fatalf("tenant_busy counter = %d, want 2", reg.Snapshot().Counters["server.shed.tenant_busy"])
	}
}

func TestDeadlineExceeded(t *testing.T) {
	defer faults.Reset()
	_, hs, _, reg := newTestServer(t, Limits{})
	base := hs.URL
	ingestStation(t, base, "acme", "s", "d", []map[string]any{{"t": 0, "v": 1}}, "")

	// The injected handler latency dwarfs the 20ms budget; CheckCtx must
	// give up at the deadline, not sleep through.
	faults.Enable(FaultHandler, faults.Spec{Delay: 2 * time.Second, Nth: 1 << 30})
	defer faults.Disable(FaultHandler)

	t0 := time.Now()
	code, body, _ := doJSON(t, "GET", base+"/v1/tenants/acme/query?name=Q4", nil,
		map[string]string{"X-Timeout-MS": "20"})
	elapsed := time.Since(t0)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d %v, want 504", code, body)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline not honored: request took %v with a 20ms budget", elapsed)
	}
	if reg.Snapshot().Counters["server.deadline_miss"] != 1 {
		t.Fatalf("deadline_miss not counted")
	}
}

func TestDegradedQueryReturnsPartialResult(t *testing.T) {
	defer faults.Reset()
	_, hs, _, _ := newTestServer(t, Limits{})
	base := hs.URL
	s1 := ingestStation(t, base, "acme", "s1", "north", []map[string]any{{"t": 0, "v": 1}}, "")
	ingestStation(t, base, "acme", "s2", "south", []map[string]any{{"t": 0, "v": 2}}, "")

	// A permanent (non-transient) TS failure on append latches degradation.
	faults.Enable(ttdb.FaultIngestTS, faults.Spec{Err: errors.New("disk gone")})
	code, _, _ := doJSON(t, "POST", base+"/v1/tenants/acme/points",
		map[string]any{"station": s1, "t": 60, "v": 3}, nil)
	faults.Disable(ttdb.FaultIngestTS)
	if code != http.StatusInternalServerError {
		t.Fatalf("append under TS fault: %d, want 500", code)
	}

	code, body, _ := doJSON(t, "GET", base+"/v1/tenants/acme/query?name=Q5", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("degraded Q5: %d %v", code, body)
	}
	if body["degraded"] != true {
		t.Fatalf("degraded flag missing: %v", body)
	}
	res := body["result"].(map[string]any)
	if _, ok := res["north"]; !ok {
		t.Fatalf("degraded Q5 lost the district partition: %v", res)
	}
}

func TestAcceptFaultAndResponseDrop(t *testing.T) {
	defer faults.Reset()
	_, hs, _, reg := newTestServer(t, Limits{})
	base := hs.URL

	faults.Enable(FaultAccept, faults.Spec{Count: 1})
	code, _, _ := doJSON(t, "GET", base+"/v1/tenants/acme/stats", nil, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("accept fault: %d, want 500", code)
	}
	faults.Disable(FaultAccept)

	// A dedicated non-keep-alive client: Go's transport transparently
	// retries idempotent GETs that die on a REUSED connection, which would
	// hide the drop.
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	faults.Enable(FaultDropResponse, faults.Spec{Count: 1})
	resp, err := c.Get(base + "/v1/tenants/acme/stats")
	faults.Disable(FaultDropResponse)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatalf("dropped response still reached the client: %d", resp.StatusCode)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.fault.accept"] != 1 || snap.Counters["server.fault.response_drop"] != 1 {
		t.Fatalf("fault counters: accept=%d drop=%d, want 1/1",
			snap.Counters["server.fault.accept"], snap.Counters["server.fault.response_drop"])
	}
}

func TestGracefulShutdownFlushesAndSheds(t *testing.T) {
	s, hs, be, reg := newTestServer(t, Limits{})
	base := hs.URL
	id := ingestStation(t, base, "acme", "alpha", "north", []map[string]any{{"t": 0, "v": 5}}, "")
	code, _, _ := doJSON(t, "POST", base+"/v1/tenants/acme/points",
		map[string]any{"station": id, "t": 60, "v": 6}, nil)
	if code != http.StatusOK {
		t.Fatalf("point: %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatalf("server not draining after Shutdown")
	}

	// New requests are shed with the draining reason.
	code, body, hdr := doJSON(t, "GET", base+"/v1/tenants/acme/stats", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: %d %v, want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("draining shed without Retry-After")
	}
	if reg.Snapshot().Counters["server.shed.draining"] == 0 {
		t.Fatalf("draining shed not counted")
	}

	// Health reports draining without admission.
	code, body, _ = doJSON(t, "GET", base+"/v1/health", nil, nil)
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("health during drain: %d %v", code, body)
	}

	// Everything acknowledged is recoverable from the flushed logs.
	eng, rec, err := be.Recover("acme")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.RolledBack != 0 {
		t.Fatalf("clean shutdown rolled back %d txns", rec.RolledBack)
	}
	if got := len(eng.G.NodesByLabel("Station")); got != 1 {
		t.Fatalf("recovered %d stations, want 1", got)
	}
	pts := eng.Q1TimeRange(ttdb.StationID(id), 0, 1000)
	if len(pts) != 2 {
		t.Fatalf("recovered series = %v, want the 2 acknowledged points", pts)
	}
}

func TestBucketRefill(t *testing.T) {
	b := newBucket(10, 2) // 10 tokens/s, burst 2
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, wait := b.take(now)
	if ok {
		t.Fatalf("empty bucket granted a token")
	}
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("refill hint = %v, want ~100ms", wait)
	}
	if ok, _ := b.take(now.Add(wait + time.Millisecond)); !ok {
		t.Fatalf("token not granted after the hinted wait")
	}
	if nil != newBucket(0, 5) {
		t.Fatalf("rate 0 must mean unlimited (nil bucket)")
	}
}

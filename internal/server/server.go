// Package server is the network query service over the durable polyglot
// engine: a stdlib net/http JSON API exposing the Table 1 queries Q1–Q8,
// HyQL, and durable ingest per tenant namespace (ROADMAP open item 1; the
// upstream authors serve the same surface over AGE+TimescaleDB).
//
// The robustness model, not the transport, is the point:
//
//   - Admission control. Every request passes an admission controller with
//     a global in-flight cap, a bounded wait queue, a per-tenant in-flight
//     cap, and a per-tenant token-bucket rate limit. Requests beyond the
//     queue bound are shed immediately with 503/429 and a Retry-After hint
//     instead of accumulating unbounded goroutines — overload degrades
//     throughput, never memory.
//
//   - Deadlines. Each request runs under a server-assigned context budget
//     (client-requestable, capped) that is threaded through the engine's
//     worker pool and store reads (ttdb *Ctx variants), so a slow Q8 is
//     cancelled mid-fan-out. Queries against a degraded time-series store
//     return the graph-derivable partial result marked degraded, exactly
//     like the embedded engine.
//
//   - Graceful shutdown. Shutdown stops accepting, sheds new requests with
//     Retry-After, drains in-flight handlers, then flushes every tenant's
//     WAL group writers (DurablePolyglot.SyncAll) before returning, so an
//     acknowledged write is never lost to a clean stop.
//
//   - Fault points. server.accept, server.handler and server.response.drop
//     (internal/faults) let the chaos harness fail admission, slow handlers
//     under their deadlines, and kill connections mid-response against a
//     live server.
//
// Every admission decision, shed, deadline miss, queue depth and drain
// duration is wired through internal/obs. docs/SERVICE.md specifies the
// API and the admission/backpressure/drain contracts; internal/server/client
// is the matching retry client.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hygraph/internal/obs"
)

// Fault points consulted by the service layer (see internal/faults and
// docs/DURABILITY.md). They model the failure modes a deployed server meets
// that the storage fault points cannot: the listener/accept path erroring,
// a handler stalling under load, and the network dying mid-response.
const (
	// FaultAccept fires at the top of request handling, before admission —
	// the moment accept(2)/TLS handshake would fail. The request is
	// answered 500 without touching the engine.
	FaultAccept = "server.accept"
	// FaultHandler fires after admission, before the handler body runs. A
	// Spec.Delay models a slow handler (the wait respects the request's
	// deadline via faults.CheckCtx); an error models a handler crash.
	FaultHandler = "server.handler"
	// FaultDropResponse fires after the handler body completes, before the
	// response is written. When it fires the connection is aborted, so the
	// client sees a torn response for work the engine already committed —
	// the classic "acknowledged or not?" ambiguity retry clients must
	// handle with idempotency keys.
	FaultDropResponse = "server.response.drop"
)

// Limits bounds the admission controller. The zero value of any field
// selects its default.
type Limits struct {
	// MaxConcurrent caps requests executing at once across all tenants
	// (default 4×GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue caps requests waiting for an execution slot; arrivals
	// beyond it are shed with 503 (default 4×MaxConcurrent).
	MaxQueue int
	// TenantConcurrent caps one tenant's in-flight requests so a single
	// tenant cannot occupy every slot (default MaxConcurrent).
	TenantConcurrent int
	// TenantRate is the per-tenant token-bucket refill rate in requests
	// per second; 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket capacity (default max(1, TenantRate)).
	TenantBurst float64
}

// Resolved returns the limits with every zero field replaced by its
// default — what a Server built from l actually enforces. Reporting code
// (hybench -serve) uses it to record effective limits in baselines.
func (l Limits) Resolved() Limits { return l.withDefaults() }

// withDefaults resolves zero fields.
func (l Limits) withDefaults() Limits {
	if l.MaxConcurrent <= 0 {
		l.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = 4 * l.MaxConcurrent
	}
	if l.TenantConcurrent <= 0 {
		l.TenantConcurrent = l.MaxConcurrent
	}
	if l.TenantRate > 0 && l.TenantBurst <= 0 {
		l.TenantBurst = l.TenantRate
		if l.TenantBurst < 1 {
			l.TenantBurst = 1
		}
	}
	return l
}

// Config scopes one Server.
type Config struct {
	Limits Limits
	// DefaultTimeout is the per-request budget when the client does not
	// request one (default 2s). MaxTimeout caps client-requested budgets
	// (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// GroupCommit is the WAL group-commit batch bound applied to every
	// tenant engine (default 64).
	GroupCommit int
	// Workers is the engine fan-out width (default GOMAXPROCS).
	Workers int
	// Backend opens tenant engines; required.
	Backend Backend
	// Obs receives admission/shed/deadline/drain metrics; nil disables
	// instrumentation (every handle below is nil-safe).
	Obs *obs.Registry
}

// serverObs holds the server's preallocated metric handles. Zero value =
// instrumentation off.
type serverObs struct {
	requests     *obs.Counter   // requests reaching the service (all outcomes)
	admitted     *obs.Counter   // requests that won an execution slot
	ok           *obs.Counter   // 2xx responses
	clientErr    *obs.Counter   // 4xx responses other than sheds
	serverErr    *obs.Counter   // 5xx responses other than sheds
	shedQueue    *obs.Counter   // shed: wait queue full
	shedRate     *obs.Counter   // shed: tenant token bucket empty
	shedTenant   *obs.Counter   // shed: tenant concurrency cap
	shedDraining *obs.Counter   // shed: server draining
	acceptFail   *obs.Counter   // injected accept failures (server.accept)
	dropped      *obs.Counter   // responses aborted by server.response.drop
	deadlineMiss *obs.Counter   // requests that exhausted their budget
	inflight     *obs.Gauge     // executing requests; High() proves the cap
	queueDepth   *obs.Gauge     // waiting requests; High() proves the bound
	latency      *obs.Histogram // end-to-end request latency
	drainMS      *obs.Gauge     // duration of the last drain, milliseconds
}

func newServerObs(r *obs.Registry) serverObs {
	if r == nil {
		return serverObs{}
	}
	return serverObs{
		requests:     r.Counter("server.requests"),
		admitted:     r.Counter("server.admitted"),
		ok:           r.Counter("server.resp.ok"),
		clientErr:    r.Counter("server.resp.client_error"),
		serverErr:    r.Counter("server.resp.server_error"),
		shedQueue:    r.Counter("server.shed.queue_full"),
		shedRate:     r.Counter("server.shed.rate_limited"),
		shedTenant:   r.Counter("server.shed.tenant_busy"),
		shedDraining: r.Counter("server.shed.draining"),
		acceptFail:   r.Counter("server.fault.accept"),
		dropped:      r.Counter("server.fault.response_drop"),
		deadlineMiss: r.Counter("server.deadline_miss"),
		inflight:     r.Gauge("server.inflight"),
		queueDepth:   r.Gauge("server.queue.depth"),
		latency:      r.Histogram("server.latency"),
		drainMS:      r.Gauge("server.drain_ms"),
	}
}

// Server is the hardened query service. Construct with New, attach to a
// listener with Serve (or mount Handler), stop with Shutdown.
type Server struct {
	cfg Config
	adm *admission
	o   serverObs
	reg *obs.Registry

	mux  *http.ServeMux
	hsrv *http.Server

	draining atomic.Bool

	mu      sync.Mutex
	tenants map[string]*tenant
}

// New builds a Server from the config. It panics only on a programming
// error (nil backend); everything at run time is an error or a shed.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: config needs a Backend")
	}
	cfg.Limits = cfg.Limits.withDefaults()
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.GroupCommit <= 0 {
		cfg.GroupCommit = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		o:       newServerObs(cfg.Obs),
		reg:     cfg.Obs,
		tenants: map[string]*tenant{},
	}
	s.adm = newAdmission(cfg.Limits, &s.o)
	s.mux = http.NewServeMux()
	s.routes()
	s.hsrv = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler exposes the service mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Limits reports the resolved admission limits the server enforces.
func (s *Server) Limits() Limits { return s.cfg.Limits }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, mirroring net/http.
func (s *Server) Serve(ln net.Listener) error { return s.hsrv.Serve(ln) }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown performs the graceful-stop contract (docs/SERVICE.md):
//
//  1. mark draining — new requests are shed with 503 + Retry-After;
//  2. stop accepting and drain in-flight requests, bounded by ctx;
//  3. flush every tenant's WAL group writers (SyncAll), so everything
//     acknowledged is durable;
//  4. close tenant backends.
//
// The WAL flush runs even when the drain deadline expires — abandoned
// handlers may have committed writes that still deserve durability. The
// first error is returned, but later steps still run: a failed flush on one
// tenant must not leave every other tenant unflushed.
func (s *Server) Shutdown(ctx context.Context) error {
	t0 := time.Now()
	s.draining.Store(true)
	err := s.hsrv.Shutdown(ctx)

	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	for _, t := range tenants {
		if serr := t.db.SyncAll(); serr != nil && err == nil {
			err = fmt.Errorf("server: drain flush tenant %s: %w", t.name, serr)
		}
	}
	for _, t := range tenants {
		if t.closer != nil {
			if cerr := t.closer.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("server: close tenant %s: %w", t.name, cerr)
			}
		}
	}
	s.o.drainMS.Set(time.Since(t0).Milliseconds())
	return err
}

// tenant returns the named tenant, opening it through the backend on first
// use. Concurrent first requests for the same tenant open it once.
func (s *Server) tenant(name string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, nil
	}
	db, closer, err := s.cfg.Backend.Open(name)
	if err != nil {
		return nil, fmt.Errorf("server: opening tenant %s: %w", name, err)
	}
	db.SetGroupCommit(s.cfg.GroupCommit)
	db.SetWorkers(s.cfg.Workers)
	db.Instrument(s.reg)
	t := newTenant(name, db, closer, s.cfg.Limits, s.reg)
	s.tenants[name] = t
	return t, nil
}

package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// Backend opens the durable engine for a tenant namespace on first use. The
// returned closer (which may be nil) releases whatever the open acquired —
// file handles for DirBackend — and is called during Shutdown after the
// final WAL flush.
type Backend interface {
	Open(name string) (*ttdb.DurablePolyglot, io.Closer, error)
}

// tenantName validates tenant path segments: the namespace doubles as a
// directory name under DirBackend, so it must not smuggle separators or
// dot-segments.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

func validTenant(name string) bool {
	return tenantName.MatchString(name) && name != "." && name != ".."
}

// ---------------------------------------------------------------------------
// MemBackend

// memLogs is one tenant's retained log bytes. The chaos harness reads them
// back to prove no acknowledged write was lost.
type memLogs struct {
	mu                  sync.Mutex
	graph, tsl, journal bytes.Buffer
}

// lockedBuf serializes writes to one buffer; the WAL group writers flush
// from whichever rider becomes leader, so the sink must be self-synchronized.
type lockedBuf struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// MemBackend keeps every tenant's WAL bytes in memory. It exists for tests:
// the retained logs make "kill the server, recover from its logs, compare"
// possible without a filesystem.
type MemBackend struct {
	ChunkWidth ts.Time // series chunk width; 0 selects ts.Week

	mu   sync.Mutex
	logs map[string]*memLogs
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{logs: map[string]*memLogs{}} }

func (b *MemBackend) width() ts.Time {
	if b.ChunkWidth > 0 {
		return b.ChunkWidth
	}
	return ts.Week
}

// Open creates the tenant on first open; reopening an existing tenant
// recovers from its retained logs and appends to them — the same resume
// contract a file-backed deployment has.
func (b *MemBackend) Open(name string) (*ttdb.DurablePolyglot, io.Closer, error) {
	b.mu.Lock()
	l, ok := b.logs[name]
	if !ok {
		l = &memLogs{}
		b.logs[name] = l
	}
	b.mu.Unlock()

	l.mu.Lock()
	graph := append([]byte(nil), l.graph.Bytes()...)
	tsl := append([]byte(nil), l.tsl.Bytes()...)
	journal := append([]byte(nil), l.journal.Bytes()...)
	l.mu.Unlock()

	eng, rec, err := ttdb.RecoverPolyglot(nil, bytes.NewReader(graph), nil,
		bytes.NewReader(tsl), bytes.NewReader(journal), b.width())
	if err != nil {
		return nil, nil, fmt.Errorf("membackend: recovering %s: %w", name, err)
	}
	d := ttdb.ResumeDurable(eng,
		lockedBuf{&l.mu, &l.graph}, lockedBuf{&l.mu, &l.tsl}, lockedBuf{&l.mu, &l.journal},
		rec.NextTxn)
	return d, nil, nil
}

// Recover rebuilds a tenant's engine from the retained logs without going
// through a server — the post-crash/post-shutdown verification step of the
// chaos harness. The logs are snapshotted under the tenant lock, so calling
// it against a live server observes some consistent prefix.
func (b *MemBackend) Recover(name string) (*ttdb.Polyglot, ttdb.PolyglotRecovery, error) {
	b.mu.Lock()
	l, ok := b.logs[name]
	b.mu.Unlock()
	if !ok {
		return nil, ttdb.PolyglotRecovery{}, fmt.Errorf("membackend: unknown tenant %s", name)
	}
	l.mu.Lock()
	graph := append([]byte(nil), l.graph.Bytes()...)
	tsl := append([]byte(nil), l.tsl.Bytes()...)
	journal := append([]byte(nil), l.journal.Bytes()...)
	l.mu.Unlock()
	return ttdb.RecoverPolyglot(nil, bytes.NewReader(graph), nil,
		bytes.NewReader(tsl), bytes.NewReader(journal), b.width())
}

// ---------------------------------------------------------------------------
// DirBackend

// DirBackend stores each tenant as a directory Root/<tenant>/ holding the
// standard five store files (graph.snap, graph.wal, ts.snap, ts.wal,
// ingest.journal — the cmd/hygraph layout). Opening a tenant recovers from
// whatever the directory holds, then appends.
type DirBackend struct {
	Root       string
	ChunkWidth ts.Time // 0 selects ts.Week
}

// storeFiles is the on-disk layout shared with cmd/hygraph.
var storeFiles = struct {
	graphSnap, graphLog, tsSnap, tsLog, journal string
}{"graph.snap", "graph.wal", "ts.snap", "ts.wal", "ingest.journal"}

// multiCloser closes all parts, keeping the first error.
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func openMaybe(dir, name string, closers *[]io.Closer) (io.Reader, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	*closers = append(*closers, f)
	return f, nil
}

// Open recovers the tenant from its directory (created if absent) and opens
// the three logs for append. The returned closer syncs and closes the log
// files.
func (b *DirBackend) Open(name string) (*ttdb.DurablePolyglot, io.Closer, error) {
	if !validTenant(name) {
		return nil, nil, fmt.Errorf("dirbackend: invalid tenant name %q", name)
	}
	dir := filepath.Join(b.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	width := b.ChunkWidth
	if width <= 0 {
		width = ts.Week
	}

	var readers []io.Closer
	fail := func(err error) (*ttdb.DurablePolyglot, io.Closer, error) {
		multiCloser(readers).Close()
		return nil, nil, err
	}
	var srcs [5]io.Reader
	for i, fname := range []string{storeFiles.graphSnap, storeFiles.graphLog,
		storeFiles.tsSnap, storeFiles.tsLog, storeFiles.journal} {
		r, err := openMaybe(dir, fname, &readers)
		if err != nil {
			return fail(err)
		}
		srcs[i] = r
	}
	eng, rec, err := ttdb.RecoverPolyglot(srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], width)
	multiCloser(readers).Close()
	if err != nil {
		return nil, nil, fmt.Errorf("dirbackend: recovering %s: %w", name, err)
	}

	var logs []io.Closer
	openAppend := func(fname string) (*os.File, error) {
		f, err := os.OpenFile(filepath.Join(dir, fname), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			multiCloser(logs).Close()
			return nil, err
		}
		logs = append(logs, f)
		return f, nil
	}
	gf, err := openAppend(storeFiles.graphLog)
	if err != nil {
		return nil, nil, err
	}
	tf, err := openAppend(storeFiles.tsLog)
	if err != nil {
		return nil, nil, err
	}
	jf, err := openAppend(storeFiles.journal)
	if err != nil {
		return nil, nil, err
	}
	d := ttdb.ResumeDurable(eng, gf, tf, jf, rec.NextTxn)
	return d, multiCloser(logs), nil
}

package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"hygraph/internal/coord"
	"hygraph/internal/core"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// Conn is what the server needs from a tenant's storage: durable writes,
// the deadline-threaded Q1–Q8, a HyQL view, and shutdown flushing. Both a
// single DurablePolyglot (engineConn) and the scatter-gather coordinator
// over N partitions (coord.Coordinator) satisfy it, so the serving layer is
// partition-agnostic.
type Conn interface {
	IngestStation(name, district string, s *ts.Series) (ttdb.StationID, error)
	AppendPoint(st ttdb.StationID, t ts.Time, v float64) error
	AddTrip(from, to ttdb.StationID, count int) error

	Q1TimeRangeCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time) ([]ts.Point, error)
	Q2FilteredRangeCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time, below float64) ([]ts.Point, error)
	Q3StationMeanCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time) (float64, error)
	Q4AllStationMeansCtx(ctx context.Context, start, end ts.Time) (map[ttdb.StationID]float64, error)
	Q5DistrictSumsCtx(ctx context.Context, start, end ts.Time) (map[string]float64, error)
	Q6TopKStationsCtx(ctx context.Context, start, end ts.Time, k int) ([]ttdb.StationID, error)
	Q7CorrelationCtx(ctx context.Context, x, y ttdb.StationID, start, end, bucket ts.Time) (float64, error)
	Q8NeighborMeansCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time) (map[ttdb.StationID]float64, error)

	// DownsampleCtx reads a station's windowed aggregate from the engine's
	// continuous-aggregate cache (write-through delta maintenance), with
	// read-your-writes semantics relative to acknowledged AppendPoints.
	DownsampleCtx(ctx context.Context, st ttdb.StationID, start, end, bucket ts.Time, agg ts.AggFunc) ([]ts.Point, error)

	// View materializes the HyQL-queryable hybrid graph of current state.
	View() *core.HyGraph
	// NumStations reports the logical station count (never boundary replicas).
	NumStations() int
	Instrument(reg *obs.Registry)
	SetGroupCommit(n int)
	SetWorkers(n int)
	SyncAll() error
}

// Backend opens the durable connection for a tenant namespace on first use.
// The returned closer (which may be nil) releases whatever the open acquired
// — file handles for DirBackend — and is called during Shutdown after the
// final WAL flush.
type Backend interface {
	Open(name string) (Conn, io.Closer, error)
}

// EngineBackend is the single-engine contract MemBackend and DirBackend
// implement; PartitionedBackend composes over it to open one engine per
// partition.
type EngineBackend interface {
	OpenEngine(name string) (*ttdb.DurablePolyglot, io.Closer, error)
}

// engineConn adapts one DurablePolyglot to the Conn surface.
type engineConn struct {
	*ttdb.DurablePolyglot
}

func (c engineConn) View() *core.HyGraph { return buildView(c.Engine()) }

func (c engineConn) NumStations() int {
	return len(c.Engine().G.NodesByLabel("Station"))
}

// tenantName validates tenant path segments: the namespace doubles as a
// directory name under DirBackend, so it must not smuggle separators or
// dot-segments.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

func validTenant(name string) bool {
	return tenantName.MatchString(name) && name != "." && name != ".."
}

// ---------------------------------------------------------------------------
// MemBackend

// memLogs is one tenant's retained log bytes. The chaos harness reads them
// back to prove no acknowledged write was lost.
type memLogs struct {
	mu                  sync.Mutex
	graph, tsl, journal bytes.Buffer
}

// lockedBuf serializes writes to one buffer; the WAL group writers flush
// from whichever rider becomes leader, so the sink must be self-synchronized.
type lockedBuf struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// MemBackend keeps every tenant's WAL bytes in memory. It exists for tests:
// the retained logs make "kill the server, recover from its logs, compare"
// possible without a filesystem.
type MemBackend struct {
	ChunkWidth ts.Time // series chunk width; 0 selects ts.Week

	mu   sync.Mutex
	logs map[string]*memLogs
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{logs: map[string]*memLogs{}} }

func (b *MemBackend) width() ts.Time {
	if b.ChunkWidth > 0 {
		return b.ChunkWidth
	}
	return ts.Week
}

// Open adapts OpenEngine to the Backend contract.
func (b *MemBackend) Open(name string) (Conn, io.Closer, error) {
	d, c, err := b.OpenEngine(name)
	if err != nil {
		return nil, nil, err
	}
	return engineConn{d}, c, nil
}

// OpenEngine creates the tenant on first open; reopening an existing tenant
// recovers from its retained logs and appends to them — the same resume
// contract a file-backed deployment has.
func (b *MemBackend) OpenEngine(name string) (*ttdb.DurablePolyglot, io.Closer, error) {
	b.mu.Lock()
	l, ok := b.logs[name]
	if !ok {
		l = &memLogs{}
		b.logs[name] = l
	}
	b.mu.Unlock()

	l.mu.Lock()
	graph := append([]byte(nil), l.graph.Bytes()...)
	tsl := append([]byte(nil), l.tsl.Bytes()...)
	journal := append([]byte(nil), l.journal.Bytes()...)
	l.mu.Unlock()

	eng, rec, err := ttdb.RecoverPolyglot(nil, bytes.NewReader(graph), nil,
		bytes.NewReader(tsl), bytes.NewReader(journal), b.width())
	if err != nil {
		return nil, nil, fmt.Errorf("membackend: recovering %s: %w", name, err)
	}
	d := ttdb.ResumeDurable(eng,
		lockedBuf{&l.mu, &l.graph}, lockedBuf{&l.mu, &l.tsl}, lockedBuf{&l.mu, &l.journal},
		rec.NextTxn)
	return d, nil, nil
}

// Recover rebuilds a tenant's engine from the retained logs without going
// through a server — the post-crash/post-shutdown verification step of the
// chaos harness. The logs are snapshotted under the tenant lock, so calling
// it against a live server observes some consistent prefix.
func (b *MemBackend) Recover(name string) (*ttdb.Polyglot, ttdb.PolyglotRecovery, error) {
	b.mu.Lock()
	l, ok := b.logs[name]
	b.mu.Unlock()
	if !ok {
		return nil, ttdb.PolyglotRecovery{}, fmt.Errorf("membackend: unknown tenant %s", name)
	}
	l.mu.Lock()
	graph := append([]byte(nil), l.graph.Bytes()...)
	tsl := append([]byte(nil), l.tsl.Bytes()...)
	journal := append([]byte(nil), l.journal.Bytes()...)
	l.mu.Unlock()
	return ttdb.RecoverPolyglot(nil, bytes.NewReader(graph), nil,
		bytes.NewReader(tsl), bytes.NewReader(journal), b.width())
}

// ---------------------------------------------------------------------------
// DirBackend

// DirBackend stores each tenant as a directory Root/<tenant>/ holding the
// standard five store files (graph.snap, graph.wal, ts.snap, ts.wal,
// ingest.journal — the cmd/hygraph layout). Opening a tenant recovers from
// whatever the directory holds, then appends.
type DirBackend struct {
	Root       string
	ChunkWidth ts.Time // 0 selects ts.Week
}

// storeFiles is the on-disk layout shared with cmd/hygraph.
var storeFiles = struct {
	graphSnap, graphLog, tsSnap, tsLog, journal string
}{"graph.snap", "graph.wal", "ts.snap", "ts.wal", "ingest.journal"}

// multiCloser closes all parts, keeping the first error.
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func openMaybe(dir, name string, closers *[]io.Closer) (io.Reader, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	*closers = append(*closers, f)
	return f, nil
}

// Open adapts OpenEngine to the Backend contract.
func (b *DirBackend) Open(name string) (Conn, io.Closer, error) {
	d, c, err := b.OpenEngine(name)
	if err != nil {
		return nil, nil, err
	}
	return engineConn{d}, c, nil
}

// OpenEngine recovers the tenant from its directory (created if absent) and
// opens the three logs for append. The returned closer syncs and closes the
// log files.
func (b *DirBackend) OpenEngine(name string) (*ttdb.DurablePolyglot, io.Closer, error) {
	if !validTenant(name) {
		return nil, nil, fmt.Errorf("dirbackend: invalid tenant name %q", name)
	}
	dir := filepath.Join(b.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	width := b.ChunkWidth
	if width <= 0 {
		width = ts.Week
	}

	var readers []io.Closer
	fail := func(err error) (*ttdb.DurablePolyglot, io.Closer, error) {
		multiCloser(readers).Close()
		return nil, nil, err
	}
	var srcs [5]io.Reader
	for i, fname := range []string{storeFiles.graphSnap, storeFiles.graphLog,
		storeFiles.tsSnap, storeFiles.tsLog, storeFiles.journal} {
		r, err := openMaybe(dir, fname, &readers)
		if err != nil {
			return fail(err)
		}
		srcs[i] = r
	}
	eng, rec, err := ttdb.RecoverPolyglot(srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], width)
	multiCloser(readers).Close()
	if err != nil {
		return nil, nil, fmt.Errorf("dirbackend: recovering %s: %w", name, err)
	}

	var logs []io.Closer
	openAppend := func(fname string) (*os.File, error) {
		f, err := os.OpenFile(filepath.Join(dir, fname), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			multiCloser(logs).Close()
			return nil, err
		}
		logs = append(logs, f)
		return f, nil
	}
	gf, err := openAppend(storeFiles.graphLog)
	if err != nil {
		return nil, nil, err
	}
	tf, err := openAppend(storeFiles.tsLog)
	if err != nil {
		return nil, nil, err
	}
	jf, err := openAppend(storeFiles.journal)
	if err != nil {
		return nil, nil, err
	}
	d := ttdb.ResumeDurable(eng, gf, tf, jf, rec.NextTxn)
	return d, multiCloser(logs), nil
}

// ---------------------------------------------------------------------------
// PartitionedBackend

// PartitionedBackend opens each tenant as Parts independent engines behind a
// scatter-gather coordinator: tenant "name" becomes sub-tenants "name.p0" …
// "name.p{N-1}" of the inner backend (one WAL set each — the unit a future
// multi-process deployment would move to its own process), reattached
// through the gid tags the coordinator persists in every partition's graph.
type PartitionedBackend struct {
	Inner EngineBackend
	Parts int // partition count; < 1 selects 1
}

// Open opens every partition sub-tenant and reconstructs the coordinator
// from their self-describing state. Reopening a tenant therefore recovers
// all partitions AND the placement map in one step.
func (b *PartitionedBackend) Open(name string) (Conn, io.Closer, error) {
	if !validTenant(name) {
		return nil, nil, fmt.Errorf("partitionedbackend: invalid tenant name %q", name)
	}
	n := b.Parts
	if n < 1 {
		n = 1
	}
	var closers []io.Closer
	fail := func(err error) (Conn, io.Closer, error) {
		multiCloser(closers).Close()
		return nil, nil, err
	}
	parts := make([]*ttdb.DurablePolyglot, n)
	for i := 0; i < n; i++ {
		d, c, err := b.Inner.OpenEngine(fmt.Sprintf("%s.p%d", name, i))
		if err != nil {
			return fail(fmt.Errorf("partitionedbackend: partition %d of %s: %w", i, name, err))
		}
		if c != nil {
			closers = append(closers, c)
		}
		parts[i] = d
	}
	co, err := coord.Attach(parts, nil)
	if err != nil {
		return fail(fmt.Errorf("partitionedbackend: attaching %s: %w", name, err))
	}
	return co, multiCloser(closers), nil
}

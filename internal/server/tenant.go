package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hygraph/internal/core"
	"hygraph/internal/hyql"
	"hygraph/internal/lpg"
	"hygraph/internal/obs"
	"hygraph/internal/storage/graphstore"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// idemCap bounds the per-tenant idempotency table; at the cap an arbitrary
// completed entry is evicted, so memory stays bounded under key churn while
// recent keys (the ones a retrying client actually resends) stay resolvable.
const idemCap = 4096

// idemEntry is one idempotency-key slot. done closes when the owning
// request finishes; a successful owner leaves the committed station id
// behind, a failed owner removes the entry so a retry re-executes.
type idemEntry struct {
	done    chan struct{}
	station ttdb.StationID
	ok      bool
}

// tenant is one namespace: a durable engine plus the per-tenant admission
// state (concurrency slots, token bucket), the idempotency table, and the
// cached HyQL view.
type tenant struct {
	name   string
	db     Conn
	closer interface{ Close() error }
	sem    chan struct{}
	bucket *bucket
	lat    *obs.Histogram // per-tenant end-to-end latency

	version atomic.Uint64 // bumped on every committed write; invalidates the view

	mu          sync.Mutex
	idem        map[string]*idemEntry
	view        *hyql.Engine
	viewVersion uint64
}

func newTenant(name string, db Conn, closer interface{ Close() error }, l Limits, reg *obs.Registry) *tenant {
	return &tenant{
		name:   name,
		db:     db,
		closer: closer,
		sem:    make(chan struct{}, l.TenantConcurrent),
		bucket: newBucket(l.TenantRate, l.TenantBurst),
		lat:    reg.Histogram("server.tenant." + name + ".latency"),
		idem:   map[string]*idemEntry{},
	}
}

// ingestStation runs one idempotency-keyed station ingest. With an empty
// key it executes unconditionally (the caller accepted at-most-once ⇒ maybe
// duplicated semantics). With a key, exactly one in-flight request executes
// per key; concurrent and later holders of the same key wait for it and
// share its committed id, and a failed execution clears the key so a retry
// re-executes.
func (t *tenant) ingestStation(key, name, district string, s *ts.Series) (ttdb.StationID, error) {
	if key == "" {
		id, err := t.db.IngestStation(name, district, s)
		if err == nil {
			t.version.Add(1)
		}
		return id, err
	}
	for {
		t.mu.Lock()
		if e, ok := t.idem[key]; ok {
			t.mu.Unlock()
			<-e.done
			if e.ok {
				return e.station, nil
			}
			// The owning attempt failed and removed the entry; race for
			// ownership of the retry.
			continue
		}
		e := &idemEntry{done: make(chan struct{})}
		if len(t.idem) >= idemCap {
			t.evictIdemLocked()
		}
		t.idem[key] = e
		t.mu.Unlock()

		id, err := t.db.IngestStation(name, district, s)
		t.mu.Lock()
		if err != nil {
			delete(t.idem, key)
		} else {
			e.station, e.ok = id, true
		}
		t.mu.Unlock()
		close(e.done)
		if err == nil {
			t.version.Add(1)
		}
		return id, err
	}
}

// evictIdemLocked drops one completed entry (never an in-flight one, whose
// waiters would dangle). Called with t.mu held.
func (t *tenant) evictIdemLocked() {
	for k, e := range t.idem {
		select {
		case <-e.done:
			delete(t.idem, k)
			return
		default:
		}
	}
}

// hyqlQuery executes a HyQL query against a materialized view of the
// tenant's engine state as of the write version at build time. The view is
// cached and rebuilt only after writes; HyQL execution is serialized per
// tenant because the hyql engine's snapshot cache is single-threaded —
// cross-tenant queries still run concurrently, and the per-tenant
// concurrency cap bounds the queue behind the lock.
func (t *tenant) hyqlQuery(src string, at ts.Time) (*hyql.Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	if t.view == nil || t.viewVersion != v {
		t.view = hyql.NewEngine(t.db.View())
		t.viewVersion = v
	}
	return t.view.Query(src, at)
}

// buildView materializes a core.HyGraph from the polyglot stores in the
// same shape dataset.BikeData.ToHyGraph produces: Station PG vertices with
// name/district properties, their availability series as first-class TS
// vertices linked by HAS_SERIES, and TRIP edges carrying count. HyQL
// queries written against generated datasets therefore run unchanged
// against served tenants.
func buildView(eng *ttdb.Polyglot) *core.HyGraph {
	h := core.New()
	stations := eng.G.NodesByLabel("Station")
	vids := make(map[ttdb.StationID]core.VID, len(stations))
	for _, st := range stations {
		v, err := h.AddVertex(tpg.Always, "Station")
		if err != nil {
			continue
		}
		for _, prop := range []string{"name", "district"} {
			if pv, ok := eng.G.NodeProp(st, prop); ok {
				h.SetVertexProp(v, prop, lpg.Str(pv.S))
			}
		}
		vids[st] = v
		series := eng.T.RangeSeries(tsstore.SeriesKey{Entity: uint32(st), Metric: ttdb.Metric}, 0, ts.MaxTime)
		if series == nil || series.Empty() {
			continue
		}
		series.SetName(ttdb.Metric)
		if tsv, err := h.AddTSVertexUni(series, "Availability"); err == nil {
			_, _ = h.AddEdge(v, tsv, "HAS_SERIES", tpg.Always)
		}
	}
	seen := map[graphstore.RelID]bool{}
	for _, st := range stations {
		eng.G.Rels(st, func(r graphstore.Rel) bool {
			if r.Type != "TRIP" || seen[r.ID] {
				return true
			}
			seen[r.ID] = true
			from, okF := vids[r.From]
			to, okT := vids[r.To]
			if !okF || !okT {
				return true
			}
			e, err := h.AddEdge(from, to, "TRIP", tpg.Always)
			if err != nil {
				return true
			}
			if cv, ok := eng.G.RelProp(r.ID, "count"); ok {
				h.SetEdgeProp(e, "count", lpg.Int(cv.I))
			}
			return true
		})
	}
	return h
}

// String identifies the tenant in errors.
func (t *tenant) String() string { return fmt.Sprintf("tenant(%s)", t.name) }

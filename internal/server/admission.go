package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// shedError is an admission refusal: the request was not executed and the
// client should retry after the hint (or not at all for Status 4xx misuse).
// It is surfaced to clients as Status + Retry-After headers.
type shedError struct {
	Status     int           // 429 or 503
	Reason     string        // machine-readable code ("queue_full", ...)
	RetryAfter time.Duration // backoff hint; 0 means "no hint"
}

func (e *shedError) Error() string {
	return fmt.Sprintf("server: shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// admission is the controller: a global slot semaphore, a bounded wait
// queue in front of it, and per-tenant caps consulted before the global
// queue so one tenant's burst cannot fill the shared queue with requests
// that would only be refused later.
type admission struct {
	limits Limits
	slots  chan struct{} // MaxConcurrent execution slots
	o      *serverObs

	mu     sync.Mutex
	queued int // requests currently waiting for a slot
}

func newAdmission(l Limits, o *serverObs) *admission {
	return &admission{limits: l, slots: make(chan struct{}, l.MaxConcurrent), o: o}
}

// admit runs the admission sequence for one request of tenant t under the
// request context. On success it returns a release func that must be called
// exactly once when the request finishes. On refusal it returns a
// *shedError; on a context expiring while queued it returns the context
// error (accounted as a deadline miss by the caller).
func (a *admission) admit(ctx context.Context, t *tenant) (func(), error) {
	// Per-tenant token bucket first: rate refusals are the cheapest and
	// should never consume queue capacity.
	if ok, wait := t.bucket.take(time.Now()); !ok {
		a.o.shedRate.Inc()
		return nil, &shedError{Status: http.StatusTooManyRequests, Reason: "rate_limited", RetryAfter: wait}
	}
	// Per-tenant concurrency cap: refuse rather than queue, so a stalled
	// tenant backs its own clients off while others keep flowing.
	select {
	case t.sem <- struct{}{}:
	default:
		a.o.shedTenant.Inc()
		return nil, &shedError{Status: http.StatusTooManyRequests, Reason: "tenant_busy", RetryAfter: 20 * time.Millisecond}
	}
	releaseTenant := func() { <-t.sem }

	// Global slot, with a bounded wait queue in front.
	select {
	case a.slots <- struct{}{}:
	default:
		a.mu.Lock()
		if a.queued >= a.limits.MaxQueue {
			depth := a.queued
			a.mu.Unlock()
			releaseTenant()
			a.o.shedQueue.Inc()
			// The hint scales with the backlog: a deeper queue means a
			// longer wait before capacity frees up.
			hint := 25*time.Millisecond + time.Duration(depth)*2*time.Millisecond
			return nil, &shedError{Status: http.StatusServiceUnavailable, Reason: "queue_full", RetryAfter: hint}
		}
		a.queued++
		a.o.queueDepth.Add(1)
		a.mu.Unlock()

		select {
		case a.slots <- struct{}{}:
			a.unqueue()
		case <-ctx.Done():
			a.unqueue()
			releaseTenant()
			return nil, ctx.Err()
		}
	}

	a.o.admitted.Inc()
	a.o.inflight.Add(1)
	return func() {
		a.o.inflight.Add(-1)
		<-a.slots
		releaseTenant()
	}, nil
}

func (a *admission) unqueue() {
	a.mu.Lock()
	a.queued--
	a.mu.Unlock()
	a.o.queueDepth.Add(-1)
}

// bucket is a token-bucket rate limiter. A nil bucket never refuses —
// the unlimited configuration.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

// newBucket returns a limiter at rate req/s with the given burst, or nil
// (unlimited) when rate <= 0. The bucket starts full.
func newBucket(rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// take consumes one token if available; otherwise it reports how long until
// one accrues — the Retry-After hint.
func (b *bucket) take(now time.Time) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

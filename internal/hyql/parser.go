package hyql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a HyQL query string.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("hyql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// at reports whether the current token has the kind and (optionally) text.
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// eat consumes the current token when it matches.
func (p *parser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.eat(kind, text) {
		return p.errf("expected %q, found %s", text, p.peek())
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if err := p.expect(tokKeyword, "MATCH"); err != nil {
		return nil, err
	}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
		if !p.eat(tokSymbol, ",") {
			break
		}
	}
	if p.eat(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.eat(tokKeyword, "WITH") {
		for {
			item, err := p.parseReturnItem()
			if err != nil {
				return nil, err
			}
			if item.Alias == "" {
				if _, ok := item.Expr.(Ident); !ok {
					return nil, p.errf("WITH item %q needs an alias (AS name)", ExprText(item.Expr))
				}
			}
			q.With = append(q.With, item)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
		if p.eat(tokKeyword, "WHERE") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.WithWhere = e
		}
	}
	if err := p.expect(tokKeyword, "RETURN"); err != nil {
		return nil, err
	}
	q.Distinct = p.eat(tokKeyword, "DISTINCT")
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		q.Return = append(q.Return, item)
		if !p.eat(tokSymbol, ",") {
			break
		}
	}
	if p.eat(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.eat(tokKeyword, "DESC") {
				it.Desc = true
			} else {
				p.eat(tokKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, it)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}
	if p.eat(tokKeyword, "LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("LIMIT expects a number, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.text)
		}
		p.next()
		q.Limit = n
	}
	return q, nil
}

// parsePattern parses "(a:L)-[e:T]->(b)...".
func (p *parser) parsePattern() (*PatternPath, error) {
	pat := &PatternPath{}
	node, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	pat.Nodes = append(pat.Nodes, node)
	for {
		dirLeft := false
		switch {
		case p.eat(tokSymbol, "<-"):
			dirLeft = true
		case p.eat(tokSymbol, "-"):
		default:
			return pat, nil
		}
		edge := EdgePattern{MinHops: 1, MaxHops: 1}
		if p.eat(tokSymbol, "[") {
			if p.at(tokIdent, "") {
				edge.Name = p.next().text
			}
			if p.eat(tokSymbol, ":") {
				if !p.at(tokIdent, "") {
					return nil, p.errf("expected edge label, found %s", p.peek())
				}
				edge.Label = p.next().text
			}
			if p.eat(tokSymbol, "*") {
				// *min..max, *..max, *min.., or bare *
				edge.MinHops, edge.MaxHops = 1, 8 // default bound keeps search finite
				if p.at(tokNumber, "") {
					v, _ := strconv.Atoi(p.next().text)
					edge.MinHops = v
					edge.MaxHops = v
				}
				if p.eat(tokSymbol, "..") {
					edge.MaxHops = 8
					if p.at(tokNumber, "") {
						v, _ := strconv.Atoi(p.next().text)
						edge.MaxHops = v
					}
				}
			}
			if err := p.expect(tokSymbol, "]"); err != nil {
				return nil, err
			}
		}
		switch {
		case dirLeft:
			edge.Dir = DirLeft
			if err := p.expect(tokSymbol, "-"); err != nil {
				return nil, err
			}
		case p.eat(tokSymbol, "->"):
			edge.Dir = DirRight
		case p.eat(tokSymbol, "-"):
			edge.Dir = DirBoth
		default:
			return nil, p.errf("expected '->' or '-' after edge, found %s", p.peek())
		}
		node, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		pat.Edges = append(pat.Edges, edge)
		pat.Nodes = append(pat.Nodes, node)
	}
}

func (p *parser) parseNode() (NodePattern, error) {
	var n NodePattern
	if err := p.expect(tokSymbol, "("); err != nil {
		return n, err
	}
	if p.at(tokIdent, "") {
		n.Name = p.next().text
	}
	if p.eat(tokSymbol, ":") {
		if !p.at(tokIdent, "") {
			return n, p.errf("expected label, found %s", p.peek())
		}
		n.Label = p.next().text
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return n, err
	}
	return n, nil
}

func (p *parser) parseReturnItem() (ReturnItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return ReturnItem{}, err
	}
	item := ReturnItem{Expr: e}
	if p.eat(tokKeyword, "AS") {
		if !p.at(tokIdent, "") {
			return item, p.errf("expected alias, found %s", p.peek())
		}
		item.Alias = p.next().text
	}
	return item, nil
}

// Expression grammar (precedence climbing):
//   or   := and (OR and)*
//   and  := not (AND not)*
//   not  := NOT not | cmp
//   cmp  := add ((= | <> | != | < | <= | > | >=) add)?
//   add  := mul ((+|-) mul)*
//   mul  := unary ((*|/|%) unary)*
//   unary:= - unary | primary
//   primary := literal | call | ident(.prop)? | ( expr )

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{"OR", l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{"AND", l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eat(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{"NOT", x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.eat(tokSymbol, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return Binary{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eat(tokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Binary{"+", l, r}
		case p.eat(tokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Binary{"-", l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.eat(tokSymbol, "*"):
			op = "*"
		case p.eat(tokSymbol, "/"):
			op = "/"
		case p.eat(tokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.eat(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{"-", x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return Lit{Num: &f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return Lit{Int: &i}, nil
	case tokString:
		p.next()
		s := t.text
		return Lit{Str: &s}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE", "FALSE":
			p.next()
			b := t.text == "TRUE"
			return Lit{Bool: &b}, nil
		case "NULL":
			p.next()
			return Lit{IsNull: true}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t)
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case tokIdent:
		p.next()
		name := t.text
		// namespace.call or binding.prop or bare call or bare binding.
		if p.eat(tokSymbol, ".") {
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected identifier after '.', found %s", p.peek())
			}
			second := p.next().text
			if p.at(tokSymbol, "(") {
				return p.parseCallArgs(name, strings.ToLower(second))
			}
			return PropAccess{On: name, Key: second}, nil
		}
		if p.at(tokSymbol, "(") {
			return p.parseCallArgs("", strings.ToLower(name))
		}
		return Ident{Name: name}, nil
	}
	return nil, p.errf("unexpected %s", t)
}

func (p *parser) parseCallArgs(ns, name string) (Expr, error) {
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	call := Call{Namespace: ns, Name: name}
	if p.eat(tokSymbol, "*") {
		call.Star = true
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.eat(tokSymbol, ")") {
		return call, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if !p.eat(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}

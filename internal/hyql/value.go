package hyql

import (
	"fmt"
	"strings"

	"hygraph/internal/lpg"
)

// VKind enumerates runtime value kinds.
type VKind int

// Runtime value kinds: scalars, graph entities, paths and lists.
const (
	VScalar VKind = iota
	VNode
	VEdge
	VPath
	VList
)

// Value is a HyQL runtime value.
type Value struct {
	kind   VKind
	scalar lpg.Value
	node   *lpg.Vertex
	edge   *lpg.Edge
	path   []lpg.EdgeID
	list   []Value
}

// Scalar wraps an lpg scalar.
func Scalar(v lpg.Value) Value { return Value{kind: VScalar, scalar: v} }

// NullValue is the null scalar.
var NullValue = Scalar(lpg.Null)

// NodeValue wraps a bound vertex.
func NodeValue(v *lpg.Vertex) Value { return Value{kind: VNode, node: v} }

// EdgeValue wraps a bound edge.
func EdgeValue(e *lpg.Edge) Value { return Value{kind: VEdge, edge: e} }

// PathValue wraps a variable-length path binding.
func PathValue(p []lpg.EdgeID) Value { return Value{kind: VPath, path: p} }

// ListValue wraps a list (collect results).
func ListValue(vs []Value) Value { return Value{kind: VList, list: vs} }

// Kind returns the value kind.
func (v Value) Kind() VKind { return v.kind }

// AsScalar returns the scalar payload (Null for non-scalars).
func (v Value) AsScalar() lpg.Value {
	if v.kind == VScalar {
		return v.scalar
	}
	return lpg.Null
}

// List returns the list payload.
func (v Value) List() []Value { return v.list }

// Node returns the bound vertex (nil otherwise).
func (v Value) Node() *lpg.Vertex {
	if v.kind == VNode {
		return v.node
	}
	return nil
}

// Edge returns the bound edge (nil otherwise).
func (v Value) Edge() *lpg.Edge {
	if v.kind == VEdge {
		return v.edge
	}
	return nil
}

// IsNull reports whether the value is the null scalar.
func (v Value) IsNull() bool { return v.kind == VScalar && v.scalar.IsNull() }

// Truthy reports whether the value counts as true in WHERE.
func (v Value) Truthy() bool {
	if v.kind != VScalar {
		return false
	}
	b, ok := v.scalar.AsBool()
	return ok && b
}

// AsFloat widens a numeric scalar.
func (v Value) AsFloat() (float64, bool) {
	if v.kind != VScalar {
		return 0, false
	}
	return v.scalar.AsFloat()
}

// String renders the value for result tables.
func (v Value) String() string {
	switch v.kind {
	case VScalar:
		return v.scalar.String()
	case VNode:
		return fmt.Sprintf("(#%d)", v.node.ID)
	case VEdge:
		return fmt.Sprintf("[#%d:%s]", v.edge.ID, v.edge.Label)
	case VPath:
		return fmt.Sprintf("path(len=%d)", len(v.path))
	case VList:
		parts := make([]string, len(v.list))
		for i, x := range v.list {
			parts[i] = x.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// key returns a canonical string usable as a grouping / DISTINCT key.
func (v Value) key() string {
	switch v.kind {
	case VScalar:
		return "s:" + v.scalar.Kind().String() + ":" + v.scalar.String()
	case VNode:
		return fmt.Sprintf("n:%d", v.node.ID)
	case VEdge:
		return fmt.Sprintf("e:%d", v.edge.ID)
	case VPath:
		return fmt.Sprintf("p:%v", v.path)
	case VList:
		parts := make([]string, len(v.list))
		for i, x := range v.list {
			parts[i] = x.key()
		}
		return "l:[" + strings.Join(parts, "|") + "]"
	}
	return "?"
}

// compare orders two values for ORDER BY: scalars by lpg.Value.Compare,
// entities by id, mixed kinds by kind.
func (v Value) compare(o Value) int {
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case VScalar:
		return v.scalar.Compare(o.scalar)
	case VNode:
		return int(v.node.ID - o.node.ID)
	case VEdge:
		return int(v.edge.ID - o.edge.ID)
	case VPath:
		return len(v.path) - len(o.path)
	case VList:
		if d := len(v.list) - len(o.list); d != 0 {
			return d
		}
		for i := range v.list {
			if d := v.list[i].compare(o.list[i]); d != 0 {
				return d
			}
		}
	}
	return 0
}

package hyql

import (
	"math"
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// fraudHG builds the running-example HyGraph: 3 users, cards (TS vertices),
// merchants, USES edges, TX edges with amounts. User u1 is the planted
// fraudster (bursty balance + 3 high TXs), u3 a benign heavy spender
// (high TXs, steady balance), u2 ordinary.
func fraudHG(t *testing.T) *core.HyGraph {
	t.Helper()
	h := core.New()
	addPG := func(name, label string) core.VID {
		id, err := h.AddVertex(tpg.Always, label)
		if err != nil {
			t.Fatal(err)
		}
		h.SetVertexProp(id, "name", lpg.Str(name))
		return id
	}
	u1 := addPG("u1", "User")
	u2 := addPG("u2", "User")
	u3 := addPG("u3", "User")
	m1 := addPG("m1", "Merchant")
	m2 := addPG("m2", "Merchant")
	m3 := addPG("m3", "Merchant")

	balance := func(bursty bool) *ts.Series {
		s := ts.New("balance")
		for i := 0; i < 96; i++ {
			v := 1000.0
			if bursty && i >= 40 && i < 44 {
				v = 50
			}
			s.MustAppend(ts.Time(i)*ts.Hour, v+float64(i%5))
		}
		return s
	}
	mkCard := func(name string, bursty bool) core.VID {
		id, err := h.AddTSVertexUni(balance(bursty), "CreditCard")
		if err != nil {
			t.Fatal(err)
		}
		h.SetVertexProp(id, "name", lpg.Str(name))
		return id
	}
	c1 := mkCard("c1", true)
	c2 := mkCard("c2", false)
	c3 := mkCard("c3", false)
	h.AddEdge(u1, c1, "USES", tpg.Always)
	h.AddEdge(u2, c2, "USES", tpg.Always)
	h.AddEdge(u3, c3, "USES", tpg.Always)

	tx := func(c, m core.VID, amount float64) {
		id, err := h.AddEdge(c, m, "TX", tpg.Always)
		if err != nil {
			t.Fatal(err)
		}
		h.SetEdgeProp(id, "amount", lpg.Float(amount))
	}
	// u1: 3 high TXs; u3: 3 high TXs; u2: one small.
	tx(c1, m1, 2000)
	tx(c1, m2, 1800)
	tx(c1, m3, 2500)
	tx(c3, m1, 1500)
	tx(c3, m2, 1600)
	tx(c3, m3, 1700)
	tx(c2, m1, 25)
	return h
}

func query(t *testing.T, h *core.HyGraph, src string) *Result {
	t.Helper()
	res, err := NewEngine(h).Query(src, 10*ts.Hour)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res
}

func col(t *testing.T, res *Result, name string) int {
	t.Helper()
	for i, c := range res.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, res.Columns)
	return -1
}

func TestBasicMatchReturn(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, "MATCH (u:User) RETURN u.name ORDER BY u.name")
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	names := []string{}
	for _, r := range res.Rows {
		names = append(names, r[0].String())
	}
	if names[0] != "u1" || names[1] != "u2" || names[2] != "u3" {
		t.Fatalf("names=%v", names)
	}
}

func TestWhereEdgeProps(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE t.amount > 1000
		RETURN u.name AS user, count(m) AS merchants
		ORDER BY user`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].String() != "u1" || res.Rows[0][1].String() != "3" {
		t.Fatalf("row0=%v", res.Rows[0])
	}
	if res.Rows[1][0].String() != "u3" || res.Rows[1][1].String() != "3" {
		t.Fatalf("row1=%v", res.Rows[1])
	}
}

func TestListing1GraphOnlyFlagsFalsePositive(t *testing.T) {
	// The graph-only fraud query (paper Listing 1): flags u1 AND u3 — u3 is
	// the false positive the hybrid pipeline later clears.
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE t.amount > 1000
		RETURN u.name AS suspicious, count(m) AS cnt
		ORDER BY suspicious`)
	users := map[string]bool{}
	for _, r := range res.Rows {
		if v, _ := r[col(t, res, "cnt")].AsFloat(); v >= 3 {
			users[r[0].String()] = true
		}
	}
	if !users["u1"] || !users["u3"] || users["u2"] {
		t.Fatalf("graph-only flags=%v", users)
	}
}

func TestHybridQueryClearsFalsePositive(t *testing.T) {
	// One HyQL query joining structure AND series behaviour: only u1 has
	// both >2 high TX merchants and a balance drain (min far below mean).
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE t.amount > 1000 AND ts.min(c) < ts.mean(c) - 3 * ts.std(c)
		RETURN u.name AS suspicious, count(m) AS cnt
		ORDER BY suspicious`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "u1" {
		t.Fatalf("hybrid result=%v", res.Rows)
	}
	if res.Rows[0][1].String() != "3" {
		t.Fatalf("count=%v", res.Rows[0][1])
	}
}

func TestTSFunctionsOverRange(t *testing.T) {
	h := fraudHG(t)
	// Balance during the drain window for c1.
	res := query(t, h, `
		MATCH (c:CreditCard)
		WHERE c.name = 'c1'
		RETURN ts.min(c, 144000000, 158400000) AS lo, ts.count(c) AS n`)
	// 40h..44h in ms: 40*3600e3 = 144000000.
	if len(res.Rows) != 1 {
		t.Fatalf("rows=%v", res.Rows)
	}
	lo, _ := res.Rows[0][0].AsFloat()
	if lo > 60 {
		t.Fatalf("lo=%v", lo)
	}
	if res.Rows[0][1].String() != "96" {
		t.Fatalf("n=%v", res.Rows[0][1])
	}
}

func TestTSCorr(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (a:CreditCard), (b:CreditCard)
		WHERE a.name = 'c2' AND b.name = 'c3'
		RETURN ts.corr(a, b, 3600000) AS r`)
	r, ok := res.Rows[0][0].AsFloat()
	if !ok || math.Abs(r-1) > 1e-6 {
		t.Fatalf("r=%v ok=%v", r, ok)
	}
}

func TestCollectAndDistinct(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard)-[t:TX]->(m:Merchant)
		RETURN m.name AS merchant, collect(c.name) AS cards
		ORDER BY merchant`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].String() != "m1" {
		t.Fatalf("merchant=%v", res.Rows[0][0])
	}
	cards := res.Rows[0][1].List()
	if len(cards) != 3 { // c1, c3, c2 all hit m1
		t.Fatalf("cards=%v", cards)
	}
	res = query(t, h, `
		MATCH (c:CreditCard)-[:TX]->(m:Merchant)
		RETURN DISTINCT label(m) AS l`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "Merchant" {
		t.Fatalf("distinct=%v", res.Rows)
	}
}

func TestVarLengthPath(t *testing.T) {
	h := fraudHG(t)
	// u -USES-> c -TX-> m is a 2-hop path with mixed labels.
	res := query(t, h, `
		MATCH (u:User)-[p*1..2]->(m:Merchant)
		WHERE u.name = 'u1'
		RETURN u.name, length(p) AS hops, m.name AS merchant
		ORDER BY merchant`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].String() != "2" {
			t.Fatalf("hops=%v", r[1])
		}
	}
}

func TestUndirectedEdge(t *testing.T) {
	h := fraudHG(t)
	// USES points user->card; the undirected pattern finds it from the card.
	res := query(t, h, `
		MATCH (c:CreditCard)-[:USES]-(u:User)
		WHERE c.name = 'c1'
		RETURN u.name`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "u1" {
		t.Fatalf("undirected=%v", res.Rows)
	}
}

func TestCountStarOnEmptyMatch(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `MATCH (x:Nothing) RETURN count(*) AS n`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "0" {
		t.Fatalf("empty count=%v", res.Rows)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE c.name = 'c1'
		RETURN sum(t.amount) AS total, avg(t.amount) AS mean, min(t.amount) AS lo, max(t.amount) AS hi`)
	r := res.Rows[0]
	if r[0].String() != "6300" {
		t.Fatalf("total=%v", r[0])
	}
	if r[1].String() != "2100" {
		t.Fatalf("mean=%v", r[1])
	}
	if r[2].String() != "1800" || r[3].String() != "2500" {
		t.Fatalf("lo/hi=%v/%v", r[2], r[3])
	}
}

func TestSnapshotSemantics(t *testing.T) {
	// An edge valid only in [0, 10) must be invisible at t=20.
	h := core.New()
	a, _ := h.AddVertex(tpg.Always, "A")
	b, _ := h.AddVertex(tpg.Always, "B")
	h.AddEdge(a, b, "R", tpg.Between(0, 10))
	eng := NewEngine(h)
	res, err := eng.Query("MATCH (a:A)-[:R]->(b:B) RETURN count(*) AS n", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "1" {
		t.Fatalf("at t=5: %v", res.Rows)
	}
	res, err = eng.Query("MATCH (a:A)-[:R]->(b:B) RETURN count(*) AS n", 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "0" {
		t.Fatalf("at t=20: %v", res.Rows)
	}
}

func TestLimitAndOrderDesc(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard)-[t:TX]->(m:Merchant)
		RETURN m.name AS merchant, sum(t.amount) AS volume
		ORDER BY volume DESC
		LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	v0, _ := res.Rows[0][1].AsFloat()
	v1, _ := res.Rows[1][1].AsFloat()
	if v0 < v1 {
		t.Fatalf("not descending: %v %v", v0, v1)
	}
}

func TestErrorCases(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	for _, src := range []string{
		"MATCH (u:User) RETURN nope.x",                         // unknown binding
		"MATCH (u:User) RETURN ts.mean(u)",                     // PG vertex has no series
		"MATCH (u:User) RETURN u.name ORDER BY ghost",          // unknown order column
		"MATCH (u:User) RETURN sum(u.name)",                    // non-numeric sum
		"MATCH (u:User) WHERE u.name / 2 = 1 RETURN u",         // arithmetic on string
		"MATCH (u:User) RETURN ts.bogus(u)",                    // unknown ts function
		"MATCH (u:User)-[t:TX]->(m), (a)-[t:TX]->(b) RETURN u", // edge name reuse
	} {
		if _, err := eng.Query(src, 0); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	h := fraudHG(t)
	// Missing property yields null; comparisons with null are null (filtered).
	res := query(t, h, `MATCH (u:User) WHERE u.ghost > 5 RETURN u.name`)
	if len(res.Rows) != 0 {
		t.Fatalf("null comparison kept rows: %v", res.Rows)
	}
	res = query(t, h, `MATCH (u:User) WHERE exists(u.ghost) RETURN u.name`)
	if len(res.Rows) != 0 {
		t.Fatalf("exists on missing: %v", res.Rows)
	}
	res = query(t, h, `MATCH (u:User) RETURN coalesce(u.ghost, u.name) AS x ORDER BY x LIMIT 1`)
	if res.Rows[0][0].String() != "u1" {
		t.Fatalf("coalesce=%v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)
		WHERE u.name = 'u1'
		RETURN abs(0 - 5) AS a, length(u.name) AS l, id(u) AS i, label(u) AS lb`)
	r := res.Rows[0]
	if r[0].String() != "5" || r[1].String() != "2" || r[3].String() != "User" {
		t.Fatalf("row=%v", r)
	}
}

func TestViewCacheCorrectUnderMutation(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	const q = `MATCH (u:User) RETURN count(*) AS n`
	res, err := eng.Query(q, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "3" {
		t.Fatalf("n=%v", res.Rows[0][0])
	}
	// Cache hit: same instant, same version → same answer.
	res, _ = eng.Query(q, 10*ts.Hour)
	if res.Rows[0][0].String() != "3" {
		t.Fatalf("cached n=%v", res.Rows[0][0])
	}
	// Mutation invalidates: a fourth user appears at the same instant.
	u4, err := h.AddVertex(tpg.Always, "User")
	if err != nil {
		t.Fatal(err)
	}
	h.SetVertexProp(u4, "name", lpg.Str("u4"))
	res, _ = eng.Query(q, 10*ts.Hour)
	if res.Rows[0][0].String() != "4" {
		t.Fatalf("post-mutation n=%v (stale cache)", res.Rows[0][0])
	}
	// Property mutations invalidate too.
	h.SetVertexProp(u4, "name", lpg.Str("renamed"))
	res, _ = eng.Query(`MATCH (u:User) WHERE u.name = 'renamed' RETURN count(*) AS n`, 10*ts.Hour)
	if res.Rows[0][0].String() != "1" {
		t.Fatalf("renamed n=%v", res.Rows[0][0])
	}
}

func TestViewCacheBounded(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	for i := 0; i < 100; i++ {
		if _, err := eng.Query(`MATCH (u:User) RETURN count(*)`, ts.Time(i)*ts.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if len(eng.views) > viewCacheSize {
		t.Fatalf("cache grew to %d entries", len(eng.views))
	}
}

package hyql

import (
	"fmt"
	"sort"

	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// Engine executes HyQL queries over a HyGraph instance. Queries run against
// the instance's state "as of" an instant (SnapshotAt), so temporal validity
// and series lifetimes are respected.
//
// The engine caches recent snapshot views keyed by (instant, instance
// version): repeated queries at the same instant — the continuous-query
// pattern — skip view construction entirely, and any mutation of the
// instance invalidates the cache through the version stamp (the paper's
// "in-memory caching techniques" roadmap item).
type Engine struct {
	H     *core.HyGraph
	views map[ts.Time]cachedView
	obs   engineObs // metric handles; zero value = instrumentation off
}

type cachedView struct {
	version uint64
	view    *core.View
}

// viewCacheSize bounds the per-engine snapshot cache.
const viewCacheSize = 16

// NewEngine returns an engine over the instance.
func NewEngine(h *core.HyGraph) *Engine {
	return &Engine{H: h, views: map[ts.Time]cachedView{}}
}

// viewAt returns the (possibly cached) snapshot view at the instant.
func (e *Engine) viewAt(at ts.Time) *core.View {
	v := e.H.Version()
	if c, ok := e.views[at]; ok && c.version == v {
		e.obs.viewHits.Inc()
		return c.view
	}
	e.obs.viewMisses.Inc()
	view := e.H.SnapshotAt(at)
	if len(e.views) >= viewCacheSize {
		// Evict everything stale, or an arbitrary entry when all are live.
		for k, c := range e.views {
			if c.version != v || len(e.views) >= viewCacheSize {
				delete(e.views, k)
			}
		}
	}
	e.views[at] = cachedView{version: v, view: view}
	return view
}

// Result is a query result table.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Query parses and executes src against the instance state at instant `at`.
func (e *Engine) Query(src string, at ts.Time) (*Result, error) {
	sw := e.obs.parse.Start()
	q, err := Parse(src)
	sw.Stop()
	if err != nil {
		return nil, err
	}
	return e.Exec(q, at)
}

// Exec executes a parsed query at the given instant.
func (e *Engine) Exec(q *Query, at ts.Time) (*Result, error) {
	view := e.viewAt(at)
	sw := e.obs.match.Start()
	rows, edgeNames, err := matchRows(view.Graph, q, e.obs)
	sw.Stop()
	if err != nil {
		return nil, err
	}
	_ = edgeNames
	// WHERE filter.
	if q.Where != nil {
		sw := e.obs.where.Start()
		kept := rows[:0]
		for _, r := range rows {
			v, err := eval(q.Where, &evalCtx{row: r})
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, r)
			}
		}
		rows = kept
		sw.Stop()
	}
	// WITH stage: re-project the bindings (with aggregation) and apply the
	// post-projection filter — Cypher's pipeline semantics, enough for the
	// paper's Listing 1 ("WITH u, collect(m2) AS mrs ... WHERE length(mrs) > 2").
	if len(q.With) > 0 {
		sw := e.obs.with.Start()
		rows, err = projectWith(q, rows)
		sw.Stop()
		if err != nil {
			return nil, err
		}
	}
	sw = e.obs.project.Start()
	res, err := project(q, rows)
	sw.Stop()
	if err != nil {
		return nil, err
	}
	sw = e.obs.order.Start()
	err = orderAndLimit(q, res, rows)
	sw.Stop()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// matchRows converts the MATCH patterns into one combined lpg.Pattern,
// enumerates bindings and returns one row per match.
func matchRows(g *lpg.Graph, q *Query, o engineObs) ([]map[string]Value, []string, error) {
	p := lpg.NewPattern()
	nodeLabel := map[string]string{}
	var nodeOrder []string
	anon := 0
	fresh := func() string {
		anon++
		return fmt.Sprintf("_anon%d", anon)
	}
	type edgeRef struct {
		name   string
		index  int
		varLen bool
	}
	var edges []edgeRef
	edgeIndex := 0
	addNode := func(np NodePattern) (string, error) {
		name := np.Name
		if name == "" {
			name = fresh()
		}
		if prev, seen := nodeLabel[name]; seen {
			// Re-declaration is fine; labels must not conflict.
			switch {
			case np.Label == "" || np.Label == prev:
			case prev == "":
				nodeLabel[name] = np.Label
			default:
				return "", fmt.Errorf("hyql: node %q declared with labels %q and %q", name, prev, np.Label)
			}
			return name, nil
		}
		nodeLabel[name] = np.Label
		nodeOrder = append(nodeOrder, name)
		return name, nil
	}
	edgeNameSeen := map[string]bool{}
	for _, path := range q.Patterns {
		prev, err := addNode(path.Nodes[0])
		if err != nil {
			return nil, nil, err
		}
		for i, ep := range path.Edges {
			cur, err := addNode(path.Nodes[i+1])
			if err != nil {
				return nil, nil, err
			}
			from, to := prev, cur
			if ep.Dir == DirLeft {
				from, to = cur, prev
			}
			if ep.Name != "" {
				if edgeNameSeen[ep.Name] {
					return nil, nil, fmt.Errorf("hyql: edge name %q reused", ep.Name)
				}
				edgeNameSeen[ep.Name] = true
			}
			varLen := ep.MinHops != 1 || ep.MaxHops != 1
			if varLen {
				p.Path(from, to, ep.Label, ep.MinHops, ep.MaxHops, nil)
			} else {
				p.E(from, to, ep.Label, nil)
			}
			pe := &patternEdges(p)[edgeIndex]
			pe.AnyDir = ep.Dir == DirBoth
			edges = append(edges, edgeRef{name: ep.Name, index: edgeIndex, varLen: varLen})
			edgeIndex++
			prev = cur
		}
	}
	// Predicate pushdown: WHERE conjuncts that reference exactly one
	// binding become candidate filters inside the pattern matcher, pruning
	// the search space early. Pushdown is conservative — a conjunct that
	// errors during early evaluation admits the candidate and leaves the
	// decision to the full WHERE pass, so semantics never change.
	nodePred := map[string]func(*lpg.Vertex) bool{}
	if q.Where != nil {
		for _, conj := range flattenAnd(q.Where) {
			if isAggregate(conj) {
				continue
			}
			refs := bindingRefs(conj)
			if len(refs) != 1 {
				continue
			}
			var name string
			for n := range refs {
				name = n
			}
			if _, isNode := nodeLabel[name]; isNode {
				nodePred[name] = andPred(nodePred[name], nodeFilter(name, conj))
				o.pushNode.Inc()
				continue
			}
			// Single-hop named edges get the filter on the pattern edge.
			for _, er := range edges {
				if er.name == name && !er.varLen {
					pe := &patternEdges(p)[er.index]
					pe.Where = andEdgePred(pe.Where, edgeFilter(name, conj))
					o.pushEdge.Inc()
				}
			}
		}
	}
	// Vertices are registered after the paths so that re-declared nodes get
	// their final label; edge constraints reference vertices by name only.
	for _, name := range nodeOrder {
		p.V(name, nodeLabel[name], nodePred[name])
	}
	matches := g.MatchPattern(p, 0)
	rows := make([]map[string]Value, 0, len(matches))
	var edgeNames []string
	for _, er := range edges {
		if er.name != "" {
			edgeNames = append(edgeNames, er.name)
		}
	}
	for _, m := range matches {
		row := map[string]Value{}
		for name, vid := range m.Vertices {
			row[name] = NodeValue(g.Vertex(vid))
		}
		for _, er := range edges {
			if er.name == "" {
				continue
			}
			path := m.Paths[er.index]
			if er.varLen {
				row[er.name] = PathValue(path)
			} else {
				row[er.name] = EdgeValue(g.Edge(path[0]))
			}
		}
		rows = append(rows, row)
	}
	return rows, edgeNames, nil
}

// patternEdges exposes the pattern's edge slice for post-construction
// adjustment (AnyDir). Defined here to keep lpg's builder API minimal.
func patternEdges(p *lpg.Pattern) []lpg.PatternEdge { return p.EdgesMut() }

// projectWith evaluates the WITH items over the matched rows, producing a
// new binding set named by the aliases (or the identifier itself for bare
// `WITH u` pass-throughs), then filters by the WITH-level WHERE.
func projectWith(q *Query, rows []map[string]Value) ([]map[string]Value, error) {
	names := make([]string, len(q.With))
	for i, item := range q.With {
		if item.Alias != "" {
			names[i] = item.Alias
		} else {
			names[i] = ExprText(item.Expr) // parser guarantees bare Ident here
		}
	}
	hasAgg := false
	for _, item := range q.With {
		if isAggregate(item.Expr) {
			hasAgg = true
			break
		}
	}
	var out []map[string]Value
	emit := func(vals []Value) {
		row := make(map[string]Value, len(vals))
		for i, v := range vals {
			row[names[i]] = v
		}
		out = append(out, row)
	}
	if !hasAgg {
		for _, r := range rows {
			vals := make([]Value, len(q.With))
			for i, item := range q.With {
				v, err := eval(item.Expr, &evalCtx{row: r})
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			emit(vals)
		}
	} else {
		grouped, order, err := groupRowsBy(withKeyExprs(q), rows)
		if err != nil {
			return nil, err
		}
		for _, gk := range order {
			group := grouped[gk]
			vals := make([]Value, len(q.With))
			for i, item := range q.With {
				v, err := evalWithAggregates(item.Expr, group)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			emit(vals)
		}
	}
	if q.WithWhere != nil {
		kept := out[:0]
		for _, r := range out {
			v, err := eval(q.WithWhere, &evalCtx{row: r})
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	return out, nil
}

func withKeyExprs(q *Query) []Expr {
	var keys []Expr
	for _, item := range q.With {
		if !isAggregate(item.Expr) {
			keys = append(keys, item.Expr)
		}
	}
	return keys
}

// project evaluates the RETURN clause, applying implicit grouping when any
// item aggregates.
func project(q *Query, rows []map[string]Value) (*Result, error) {
	res := &Result{}
	for _, item := range q.Return {
		name := item.Alias
		if name == "" {
			name = ExprText(item.Expr)
		}
		res.Columns = append(res.Columns, name)
	}
	hasAgg := false
	for _, item := range q.Return {
		if isAggregate(item.Expr) {
			hasAgg = true
			break
		}
	}
	if !hasAgg {
		for _, r := range rows {
			out := make([]Value, len(q.Return))
			for i, item := range q.Return {
				v, err := eval(item.Expr, &evalCtx{row: r})
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			res.Rows = append(res.Rows, out)
		}
	} else {
		grouped, order, err := groupRows(q, rows)
		if err != nil {
			return nil, err
		}
		for _, gk := range order {
			group := grouped[gk]
			out := make([]Value, len(q.Return))
			for i, item := range q.Return {
				v, err := evalWithAggregates(item.Expr, group)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			res.Rows = append(res.Rows, out)
		}
	}
	if q.Distinct {
		seen := map[string]bool{}
		dedup := res.Rows[:0]
		for _, r := range res.Rows {
			k := rowKey(r)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, r)
			}
		}
		res.Rows = dedup
	}
	return res, nil
}

func rowKey(r []Value) string {
	k := ""
	for _, v := range r {
		k += v.key() + "\x00"
	}
	return k
}

// groupRows partitions rows by the evaluated non-aggregate return items,
// preserving first-appearance order of groups.
func groupRows(q *Query, rows []map[string]Value) (map[string][]map[string]Value, []string, error) {
	var keys []Expr
	for _, item := range q.Return {
		if !isAggregate(item.Expr) {
			keys = append(keys, item.Expr)
		}
	}
	return groupRowsBy(keys, rows)
}

// groupRowsBy partitions rows by the given key expressions.
func groupRowsBy(keys []Expr, rows []map[string]Value) (map[string][]map[string]Value, []string, error) {
	grouped := map[string][]map[string]Value{}
	var order []string
	for _, r := range rows {
		gk := ""
		for _, ke := range keys {
			v, err := eval(ke, &evalCtx{row: r})
			if err != nil {
				return nil, nil, err
			}
			gk += v.key() + "\x00"
		}
		if _, ok := grouped[gk]; !ok {
			order = append(order, gk)
		}
		grouped[gk] = append(grouped[gk], r)
	}
	if len(rows) == 0 && len(keys) == 0 {
		// Aggregates over an empty match still yield one row (count(*) = 0).
		grouped[""] = nil
		order = append(order, "")
	}
	return grouped, order, nil
}

// evalWithAggregates evaluates an expression over a group: aggregate calls
// consume the whole group, other subexpressions use the group's first row.
func evalWithAggregates(e Expr, group []map[string]Value) (Value, error) {
	switch x := e.(type) {
	case Call:
		if x.Namespace == "" && aggregateFuncs[x.Name] {
			return evalAggregate(x, group)
		}
	case Binary:
		l, err := evalWithAggregates(x.L, group)
		if err != nil {
			return NullValue, err
		}
		r, err := evalWithAggregates(x.R, group)
		if err != nil {
			return NullValue, err
		}
		return evalBinary(Binary{x.Op, wrapLit(l), wrapLit(r)}, &evalCtx{row: map[string]Value{}})
	case Unary:
		v, err := evalWithAggregates(x.X, group)
		if err != nil {
			return NullValue, err
		}
		return eval(Unary{x.Op, wrapLit(v)}, &evalCtx{row: map[string]Value{}})
	}
	if len(group) == 0 {
		return NullValue, nil
	}
	return eval(e, &evalCtx{row: group[0]})
}

// wrapLit re-wraps an already-evaluated scalar as a literal for re-entry
// into eval. Non-scalars cannot participate in further operations.
func wrapLit(v Value) Expr {
	sc := v.AsScalar()
	if f, ok := sc.AsFloat(); ok {
		if i, isInt := sc.AsInt(); isInt {
			return Lit{Int: &i}
		}
		return Lit{Num: &f}
	}
	if s, ok := sc.AsString(); ok {
		return Lit{Str: &s}
	}
	if b, ok := sc.AsBool(); ok {
		return Lit{Bool: &b}
	}
	return Lit{IsNull: true}
}

func evalAggregate(c Call, group []map[string]Value) (Value, error) {
	if c.Star {
		if c.Name != "count" {
			return NullValue, fmt.Errorf("hyql: only count(*) takes *")
		}
		return Scalar(lpg.Int(int64(len(group)))), nil
	}
	if len(c.Args) != 1 {
		return NullValue, fmt.Errorf("hyql: %s expects 1 argument", c.Name)
	}
	var vals []Value
	for _, r := range group {
		v, err := eval(c.Args[0], &evalCtx{row: r})
		if err != nil {
			return NullValue, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch c.Name {
	case "count":
		return Scalar(lpg.Int(int64(len(vals)))), nil
	case "collect":
		return ListValue(vals), nil
	case "sum", "avg":
		var sum float64
		n := 0
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return NullValue, fmt.Errorf("hyql: %s over non-numeric %s", c.Name, v)
			}
			sum += f
			n++
		}
		if c.Name == "avg" {
			if n == 0 {
				return NullValue, nil
			}
			return Scalar(lpg.Float(sum / float64(n))), nil
		}
		return Scalar(lpg.Float(sum)), nil
	case "min", "max":
		if len(vals) == 0 {
			return NullValue, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c2 := v.compare(best)
			if (c.Name == "min" && c2 < 0) || (c.Name == "max" && c2 > 0) {
				best = v
			}
		}
		return best, nil
	}
	return NullValue, fmt.Errorf("hyql: unknown aggregate %s", c.Name)
}

// orderAndLimit applies ORDER BY over the projected table (by column
// reference) and LIMIT.
func orderAndLimit(q *Query, res *Result, _ []map[string]Value) error {
	if len(q.OrderBy) > 0 {
		cols := make([]int, len(q.OrderBy))
		for i, ob := range q.OrderBy {
			idx := -1
			want := ExprText(ob.Expr)
			for ci, cname := range res.Columns {
				if cname == want {
					idx = ci
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("hyql: ORDER BY %s must reference a returned column or alias", want)
			}
			cols[i] = idx
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, ci := range cols {
				c := res.Rows[a][ci].compare(res.Rows[b][ci])
				if c == 0 {
					continue
				}
				if q.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return nil
}

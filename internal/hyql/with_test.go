package hyql

import (
	"testing"

	"hygraph/internal/ts"
)

func TestParseWith(t *testing.T) {
	q := mustParse(t, `
		MATCH (u:User)-[t:TX]->(m:Merchant)
		WITH u, count(m) AS cnt
		WHERE cnt > 2
		RETURN u.name, cnt`)
	if len(q.With) != 2 {
		t.Fatalf("with items=%d", len(q.With))
	}
	if q.With[1].Alias != "cnt" {
		t.Fatalf("alias=%q", q.With[1].Alias)
	}
	if q.WithWhere == nil {
		t.Fatal("missing with-where")
	}
	if q.Where != nil {
		t.Fatal("match-where should be empty")
	}
	// Expressions in WITH need aliases.
	if _, err := Parse("MATCH (u) WITH u.name RETURN 1"); err == nil {
		t.Fatal("unaliased expression in WITH accepted")
	}
	// Bare identifiers pass through without alias.
	if _, err := Parse("MATCH (u) WITH u RETURN u"); err != nil {
		t.Fatal(err)
	}
}

// TestListing1WithHaving expresses the paper's Listing 1 shape: group per
// user, require >2 high-amount merchants, return the user.
func TestListing1WithHaving(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE t.amount > 1000
		WITH u, count(m) AS mrs
		WHERE mrs > 2
		RETURN u.name AS suspiciousUser ORDER BY suspiciousUser`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].String() != "u1" || res.Rows[1][0].String() != "u3" {
		t.Fatalf("suspicious=%v", res.Rows)
	}
}

func TestWithCollectAndLength(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard)-[t:TX]->(m:Merchant)
		WITH c, collect(m.name) AS mrs
		WHERE length(mrs) > 2
		RETURN c.name, length(mrs) AS n`)
	if len(res.Rows) != 2 { // c1 and c3 hit 3 merchants
		t.Fatalf("rows=%v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].String() != "3" {
			t.Fatalf("n=%v", r[1])
		}
	}
}

func TestWithPassThroughEntities(t *testing.T) {
	// Entities surviving WITH keep property access and series functions.
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)-[:USES]->(c:CreditCard)
		WITH u, c
		WHERE ts.min(c) < 100
		RETURN u.name AS drained`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "u1" {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestWithScopesBindings(t *testing.T) {
	// Bindings not carried through WITH are gone in RETURN.
	h := fraudHG(t)
	eng := NewEngine(h)
	_, err := eng.Query(`
		MATCH (u:User)-[:USES]->(c:CreditCard)
		WITH u
		RETURN c.name`, 10*ts.Hour)
	if err == nil {
		t.Fatal("binding leaked through WITH")
	}
}

func TestWithAggregateThenReturnAggregate(t *testing.T) {
	// Aggregate over the WITH-projected rows: max per-user merchant count.
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WITH u, count(m) AS cnt
		RETURN max(cnt) AS busiest, count(u) AS users`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].String() != "3" || res.Rows[0][1].String() != "3" {
		t.Fatalf("row=%v", res.Rows[0])
	}
}

func TestWithNonAggregateProjection(t *testing.T) {
	// WITH without aggregation is a pure rename/projection stage.
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (u:User)
		WITH u.name AS n
		WHERE n <> 'u2'
		RETURN n ORDER BY n`)
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "u1" || res.Rows[1][0].String() != "u3" {
		t.Fatalf("rows=%v", res.Rows)
	}
}

package hyql

import (
	"math"
	"testing"

	"hygraph/internal/lpg"
	"hygraph/internal/obs"
	"hygraph/internal/ts"
)

// TestTSPoints checks ts.points returns the raw [t, v] pairs, whole-series
// and windowed.
func TestTSPoints(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c2'
		RETURN ts.points(c) AS pts`)
	pts := res.Rows[0][0].List()
	if len(pts) != 96 {
		t.Fatalf("len=%d, want 96", len(pts))
	}
	first := pts[0].List()
	if len(first) != 2 {
		t.Fatalf("pair=%v", first)
	}
	if tt, _ := first[0].AsScalar().AsInt(); tt != 0 {
		t.Fatalf("t0=%d", tt)
	}
	if v, _ := first[1].AsFloat(); v != 1000 {
		t.Fatalf("v0=%v", v)
	}
	// Windowed: hours [2, 5) -> 3 points starting at t=2h.
	res = query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c2'
		RETURN ts.points(c, 7200000, 18000000) AS pts`)
	pts = res.Rows[0][0].List()
	if len(pts) != 3 {
		t.Fatalf("windowed len=%d, want 3", len(pts))
	}
	if tt, _ := pts[0].List()[0].AsScalar().AsInt(); ts.Time(tt) != 2*ts.Hour {
		t.Fatalf("windowed t0=%d", tt)
	}
}

// TestTSBelow checks ts.below keeps only sub-threshold points: card c1 dips
// to ~50 for hours 40-43.
func TestTSBelow(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c1'
		RETURN length(ts.below(c, 0, 345600000, 100)) AS n`)
	n, _ := res.Rows[0][0].AsScalar().AsInt()
	if n != 4 {
		t.Fatalf("n=%d, want 4", n)
	}
	// The benign card never dips.
	res = query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c2'
		RETURN length(ts.below(c, 0, 345600000, 100)) AS n`)
	if n, _ := res.Rows[0][0].AsScalar().AsInt(); n != 0 {
		t.Fatalf("benign n=%d, want 0", n)
	}
}

// TestTSCorrWindowed checks the 5-argument form matches the 3-argument form
// when the window covers the whole series, and accepts narrower windows.
func TestTSCorrWindowed(t *testing.T) {
	h := fraudHG(t)
	full := query(t, h, `
		MATCH (a:CreditCard), (b:CreditCard)
		WHERE a.name = 'c2' AND b.name = 'c3'
		RETURN ts.corr(a, b, 3600000) AS r`)
	win := query(t, h, `
		MATCH (a:CreditCard), (b:CreditCard)
		WHERE a.name = 'c2' AND b.name = 'c3'
		RETURN ts.corr(a, b, 0, 345600000, 3600000) AS r`)
	rf, _ := full.Rows[0][0].AsFloat()
	rw, _ := win.Rows[0][0].AsFloat()
	if math.Abs(rf-rw) > 1e-12 {
		t.Fatalf("full=%v windowed=%v", rf, rw)
	}
	// A narrow window is a different (still defined) correlation.
	narrow := query(t, h, `
		MATCH (a:CreditCard), (b:CreditCard)
		WHERE a.name = 'c2' AND b.name = 'c3'
		RETURN ts.corr(a, b, 0, 36000000, 3600000) AS r`)
	if _, ok := narrow.Rows[0][0].AsFloat(); !ok {
		t.Fatalf("narrow corr not numeric: %v", narrow.Rows[0][0])
	}
}

// TestTSResample checks ts.resample returns the bucketed aggregate as
// [bucket_start, value] pairs, whole-series and windowed, matching the
// engine-side ts.Series.Resample exactly.
func TestTSResample(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c2'
		RETURN ts.resample(c, 86400000, 'mean') AS buckets`)
	buckets := res.Rows[0][0].List()
	if len(buckets) != 4 {
		t.Fatalf("len=%d, want 4 day buckets", len(buckets))
	}
	// Oracle: the same fold on the raw points, through the engine API.
	raw := ts.New("c2")
	ptsRes := query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c2'
		RETURN ts.points(c) AS pts`)
	for _, pv := range ptsRes.Rows[0][0].List() {
		pair := pv.List()
		tt, _ := pair[0].AsScalar().AsInt()
		v, _ := pair[1].AsFloat()
		raw.MustAppend(ts.Time(tt), v)
	}
	want := raw.Resample(ts.Day, ts.AggMean)
	for i, bv := range buckets {
		pair := bv.List()
		bt, _ := pair[0].AsScalar().AsInt()
		v, _ := pair[1].AsFloat()
		if ts.Time(bt) != want.TimeAt(i) || v != want.ValueAt(i) {
			t.Fatalf("bucket %d: got (%d, %v), want (%d, %v)", i, bt, v, want.TimeAt(i), want.ValueAt(i))
		}
	}
	// Windowed 5-arg form: day 2 only -> one bucket, the same value as the
	// whole-series fold's second bucket.
	res = query(t, h, `
		MATCH (c:CreditCard) WHERE c.name = 'c2'
		RETURN ts.resample(c, 86400000, 172800000, 86400000, 'mean') AS buckets`)
	buckets = res.Rows[0][0].List()
	if len(buckets) != 1 {
		t.Fatalf("windowed len=%d, want 1", len(buckets))
	}
	if v, _ := buckets[0].List()[1].AsFloat(); v != want.ValueAt(1) {
		t.Fatalf("windowed value %v, want %v", v, want.ValueAt(1))
	}
	// Bad arguments surface as errors, not panics.
	for _, bad := range []string{
		`MATCH (c:CreditCard) RETURN ts.resample(c, 0, 'mean')`,
		`MATCH (c:CreditCard) RETURN ts.resample(c, 86400000, 'nope')`,
		`MATCH (c:CreditCard) RETURN ts.resample(c)`,
	} {
		if _, err := NewEngine(h).Query(bad, 0); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

// TestEngineInstrument checks the engine's metric handles: clause timers
// fire, single-binding WHERE conjuncts are counted as pushdowns, and the
// snapshot-view cache hit/miss counters track repeated instants.
func TestEngineInstrument(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	reg := obs.New()
	eng.Instrument(reg)
	src := `MATCH (c:CreditCard)-[x:TX]->(m:Merchant)
		WHERE c.name = 'c1' AND x.amount > 1900
		RETURN m.name ORDER BY m.name`
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(src, 10*ts.Hour); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["hyql.viewcache.misses"]; got != 1 {
		t.Fatalf("viewcache.misses=%d, want 1", got)
	}
	if got := snap.Counters["hyql.viewcache.hits"]; got != 2 {
		t.Fatalf("viewcache.hits=%d, want 2", got)
	}
	// c.name = 'c1' pushes onto the node, x.amount > 1900 onto the edge.
	if got := snap.Counters["hyql.pushdown.node_conjuncts"]; got != 3 {
		t.Fatalf("node_conjuncts=%d, want 3", got)
	}
	if got := snap.Counters["hyql.pushdown.edge_conjuncts"]; got != 3 {
		t.Fatalf("edge_conjuncts=%d, want 3", got)
	}
	for _, name := range []string{
		"hyql.clause.parse", "hyql.clause.match", "hyql.clause.where",
		"hyql.clause.return", "hyql.clause.order",
	} {
		st, ok := snap.Durations[name]
		if !ok || st.Count != 3 {
			t.Fatalf("%s: stat=%+v ok=%v, want count 3", name, st, ok)
		}
	}
	// Mutating the instance invalidates the cached view.
	if err := h.SetVertexProp(1, "touched", lpg.Bool(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(src, 10*ts.Hour); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["hyql.viewcache.misses"]; got != 2 {
		t.Fatalf("post-mutation misses=%d, want 2", got)
	}
	// Detach: counters stop moving (query 5 hits the cache, uncounted).
	eng.Instrument(nil)
	if _, err := eng.Query(src, 10*ts.Hour); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["hyql.viewcache.hits"]; got != 2 {
		t.Fatalf("detached hits=%d, want 2", got)
	}
}

package hyql

import (
	"strconv"
	"strings"
)

// Query is a parsed HyQL query.
type Query struct {
	Patterns []*PatternPath
	Where    Expr // nil when absent
	// With is an optional intermediate projection (Cypher's WITH): its
	// items become the bindings visible to RETURN, with aggregation and a
	// post-projection filter (WithWhere) — the HAVING idiom of Listing 1.
	With      []ReturnItem
	WithWhere Expr
	Return    []ReturnItem
	Distinct  bool
	OrderBy   []OrderItem
	Limit     int // -1 when absent
}

// PatternPath is one comma-separated MATCH pattern: a chain of nodes joined
// by edges.
type PatternPath struct {
	Nodes []NodePattern
	Edges []EdgePattern // len(Edges) == len(Nodes)-1
}

// NodePattern is one "(name:Label)" element.
type NodePattern struct {
	Name  string // "" for anonymous
	Label string // "" for any
}

// EdgeDir is the direction of a pattern edge.
type EdgeDir int

// Edge directions.
const (
	DirRight EdgeDir = iota // -[]->
	DirLeft                 // <-[]-
	DirBoth                 // -[]-
)

// EdgePattern is one "-[name:TYPE*min..max]->" element.
type EdgePattern struct {
	Name    string
	Label   string
	Dir     EdgeDir
	MinHops int // 1 when unbounded single hop
	MaxHops int
}

// ReturnItem is one projection with an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string // "" derives from the expression text
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is an expression node.
type Expr interface{ exprString() string }

// Lit is a literal value.
type Lit struct {
	Str    *string
	Num    *float64
	Int    *int64
	Bool   *bool
	IsNull bool
}

// Ident references a pattern binding.
type Ident struct{ Name string }

// PropAccess is "binding.key".
type PropAccess struct {
	On  string
	Key string
}

// Unary is NOT x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   string // AND OR = <> < <= > >= + - * / %
	L, R Expr
}

// Call is a function application; Namespace is "" or "ts".
type Call struct {
	Namespace string
	Name      string // lower-cased
	Star      bool   // count(*)
	Args      []Expr
}

func (l Lit) exprString() string {
	switch {
	case l.IsNull:
		return "null"
	case l.Str != nil:
		return "'" + *l.Str + "'"
	case l.Int != nil:
		return itoa(*l.Int)
	case l.Num != nil:
		return ftoa(*l.Num)
	case l.Bool != nil:
		if *l.Bool {
			return "true"
		}
		return "false"
	}
	return "?"
}

func (i Ident) exprString() string      { return i.Name }
func (p PropAccess) exprString() string { return p.On + "." + p.Key }
func (u Unary) exprString() string      { return "(" + u.Op + " " + u.X.exprString() + ")" }
func (b Binary) exprString() string {
	return "(" + b.L.exprString() + " " + b.Op + " " + b.R.exprString() + ")"
}
func (c Call) exprString() string {
	name := c.Name
	if c.Namespace != "" {
		name = c.Namespace + "." + name
	}
	if c.Star {
		return name + "(*)"
	}
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.exprString()
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

// ExprText renders an expression roughly as written, used for derived
// column names.
func ExprText(e Expr) string { return e.exprString() }

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

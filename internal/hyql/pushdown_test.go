package hyql

import (
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
)

func TestFlattenAnd(t *testing.T) {
	q := mustParse(t, "MATCH (a) WHERE a.x = 1 AND a.y = 2 AND (a.z = 3 OR a.w = 4) RETURN a")
	conjs := flattenAnd(q.Where)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts=%d", len(conjs))
	}
	// The OR stays one conjunct.
	if _, ok := conjs[2].(Binary); !ok {
		t.Fatalf("third conjunct=%T", conjs[2])
	}
}

func TestBindingRefs(t *testing.T) {
	q := mustParse(t, "MATCH (a)-[e]->(b) WHERE a.x + b.y = length(e) RETURN a")
	refs := bindingRefs(q.Where)
	if len(refs) != 3 || !refs["a"] || !refs["b"] || !refs["e"] {
		t.Fatalf("refs=%v", refs)
	}
	q = mustParse(t, "MATCH (a) WHERE ts.mean(a) > 5 RETURN a")
	refs = bindingRefs(q.Where)
	if len(refs) != 1 || !refs["a"] {
		t.Fatalf("ts refs=%v", refs)
	}
}

// TestPushdownEquivalence: queries mixing pushable and non-pushable
// conjuncts return the same rows as their logically equivalent forms.
func TestPushdownEquivalence(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	// Mixed: single-binding (pushed) + two-binding (residual).
	a, err := eng.Query(`
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE u.name <> 'u2' AND t.amount > 1000 AND u.name > m.name
		RETURN u.name, m.name ORDER BY u.name, m.name`, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Same predicate spelled as nested ORs that defeat pushdown splitting.
	b, err := eng.Query(`
		MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant)
		WHERE NOT (u.name = 'u2' OR t.amount <= 1000 OR u.name <= m.name)
		RETURN u.name, m.name ORDER BY u.name, m.name`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if rowKey(a.Rows[i]) != rowKey(b.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
	if len(a.Rows) == 0 {
		t.Fatal("empty result weakens the equivalence check")
	}
}

// TestPushdownNullConjunct: a pushed conjunct over a missing property
// evaluates to null → not truthy → filtered, same as residual semantics.
func TestPushdownNullConjunct(t *testing.T) {
	h := fraudHG(t)
	res := query(t, h, `MATCH (u:User) WHERE u.ghost > 1 RETURN u.name`)
	if len(res.Rows) != 0 {
		t.Fatalf("null pushdown kept rows: %v", res.Rows)
	}
}

// TestPushdownErroringConjunctStillErrors: pushdown admits candidates on
// eval errors, so the residual WHERE surfaces the error as before.
func TestPushdownErroringConjunctStillErrors(t *testing.T) {
	h := fraudHG(t)
	if _, err := NewEngine(h).Query(`MATCH (u:User) WHERE u.name / 2 = 1 RETURN u`, 10); err == nil {
		t.Fatal("string arithmetic accepted")
	}
}

// TestPushdownSelectivity: the pushed filter prunes candidates before edge
// joins. Construct a graph where full enumeration would be quadratic and
// assert the correct single answer comes back (correctness under pruning).
func TestPushdownSelectivity(t *testing.T) {
	h := core.New()
	var users []core.VID
	for i := 0; i < 200; i++ {
		u, _ := h.AddVertex(tpg.Always, "U")
		h.SetVertexProp(u, "id", lpg.Int(int64(i)))
		users = append(users, u)
	}
	for i := 0; i+1 < len(users); i++ {
		h.AddEdge(users[i], users[i+1], "NEXT", tpg.Always)
	}
	res := query(t, h, `
		MATCH (a:U)-[:NEXT]->(b:U)
		WHERE a.id = 150
		RETURN b.id`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "151" {
		t.Fatalf("rows=%v", res.Rows)
	}
}

package hyql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestParseSimpleMatch(t *testing.T) {
	q := mustParse(t, "MATCH (u:User)-[t:TX]->(m:Merchant) RETURN u.name")
	if len(q.Patterns) != 1 {
		t.Fatalf("patterns=%d", len(q.Patterns))
	}
	p := q.Patterns[0]
	if len(p.Nodes) != 2 || len(p.Edges) != 1 {
		t.Fatalf("nodes=%d edges=%d", len(p.Nodes), len(p.Edges))
	}
	if p.Nodes[0].Name != "u" || p.Nodes[0].Label != "User" {
		t.Fatalf("node0=%+v", p.Nodes[0])
	}
	if p.Edges[0].Name != "t" || p.Edges[0].Label != "TX" || p.Edges[0].Dir != DirRight {
		t.Fatalf("edge=%+v", p.Edges[0])
	}
	if len(q.Return) != 1 {
		t.Fatalf("return=%v", q.Return)
	}
	pa, ok := q.Return[0].Expr.(PropAccess)
	if !ok || pa.On != "u" || pa.Key != "name" {
		t.Fatalf("return expr=%v", q.Return[0].Expr)
	}
}

func TestParseDirections(t *testing.T) {
	q := mustParse(t, "MATCH (a)<-[:R]-(b), (a)-[:S]-(c), (a)-->(d) RETURN a")
	if q.Patterns[0].Edges[0].Dir != DirLeft {
		t.Fatal("left dir")
	}
	if q.Patterns[1].Edges[0].Dir != DirBoth {
		t.Fatal("both dir")
	}
	if q.Patterns[2].Edges[0].Dir != DirRight {
		t.Fatal("right dir via -->")
	}
	if q.Patterns[2].Edges[0].Label != "" {
		t.Fatal("bare --> should have no label")
	}
}

func TestParseVarLength(t *testing.T) {
	q := mustParse(t, "MATCH (a)-[:TX*1..3]->(b) RETURN a")
	e := q.Patterns[0].Edges[0]
	if e.MinHops != 1 || e.MaxHops != 3 {
		t.Fatalf("hops=%d..%d", e.MinHops, e.MaxHops)
	}
	q = mustParse(t, "MATCH (a)-[*2]->(b) RETURN a")
	e = q.Patterns[0].Edges[0]
	if e.MinHops != 2 || e.MaxHops != 2 {
		t.Fatalf("fixed hops=%d..%d", e.MinHops, e.MaxHops)
	}
	q = mustParse(t, "MATCH (a)-[*]->(b) RETURN a")
	e = q.Patterns[0].Edges[0]
	if e.MinHops != 1 || e.MaxHops != 8 {
		t.Fatalf("default hops=%d..%d", e.MinHops, e.MaxHops)
	}
}

func TestParseWhereExpr(t *testing.T) {
	q := mustParse(t, `MATCH (u:User) WHERE u.age > 18 AND NOT u.name = 'bob' OR u.vip RETURN u`)
	b, ok := q.Where.(Binary)
	if !ok || b.Op != "OR" {
		t.Fatalf("top op=%v", q.Where)
	}
	l, ok := b.L.(Binary)
	if !ok || l.Op != "AND" {
		t.Fatalf("left=%v", b.L)
	}
}

func TestParsePrecedence(t *testing.T) {
	q := mustParse(t, "MATCH (a) WHERE a.x + 2 * 3 = 7 RETURN a")
	eq := q.Where.(Binary)
	if eq.Op != "=" {
		t.Fatal("top should be =")
	}
	add := eq.L.(Binary)
	if add.Op != "+" {
		t.Fatal("left of = should be +")
	}
	if mul := add.R.(Binary); mul.Op != "*" {
		t.Fatal("* binds tighter than +")
	}
}

func TestParseCalls(t *testing.T) {
	q := mustParse(t, "MATCH (u:User) RETURN count(*), collect(u.name) AS names, ts.mean(u, 0, 100)")
	if len(q.Return) != 3 {
		t.Fatalf("returns=%d", len(q.Return))
	}
	c0 := q.Return[0].Expr.(Call)
	if c0.Name != "count" || !c0.Star {
		t.Fatalf("c0=%+v", c0)
	}
	if q.Return[1].Alias != "names" {
		t.Fatalf("alias=%q", q.Return[1].Alias)
	}
	c2 := q.Return[2].Expr.(Call)
	if c2.Namespace != "ts" || c2.Name != "mean" || len(c2.Args) != 3 {
		t.Fatalf("c2=%+v", c2)
	}
}

func TestParseOrderLimitDistinct(t *testing.T) {
	q := mustParse(t, "MATCH (u:User) RETURN DISTINCT u.name AS n ORDER BY n DESC, u.age LIMIT 5")
	if !q.Distinct {
		t.Fatal("distinct")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order=%v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Fatalf("limit=%d", q.Limit)
	}
	q = mustParse(t, "MATCH (u) RETURN u")
	if q.Limit != -1 || q.OrderBy != nil || q.Distinct {
		t.Fatal("defaults")
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, `MATCH (a) WHERE a.s = 'x' AND a.f = 2.5 AND a.i = 3 AND a.b = true AND a.n = null RETURN a`)
	if q.Where == nil {
		t.Fatal("where")
	}
	// Render round-trip sanity.
	text := ExprText(q.Where)
	for _, want := range []string{"'x'", "2.5", "3", "true", "null"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render %q missing %q", text, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"MATCH",
		"MATCH (a",
		"MATCH (a) RETURN",
		"MATCH (a)-[>(b) RETURN a",
		"MATCH (a) WHERE RETURN a",
		"MATCH (a) RETURN a LIMIT x",
		"MATCH (a) RETURN a EXTRA",
		"MATCH (a:1) RETURN a",
		"MATCH (a) RETURN a ORDER BY",
		"RETURN 1",
		"MATCH (a) WHERE a.x = 'unterminated RETURN a",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestLexerOffsets(t *testing.T) {
	toks, err := lex("MATCH (a)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 6 {
		t.Fatalf("positions: %v", toks)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF")
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks, err := lex(`'it\'s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "it's" {
		t.Fatalf("escaped string=%q", toks[0].text)
	}
}

package hyql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that whatever it accepts,
// it accepts deterministically. Run the fuzzer with:
//
//	go test ./internal/hyql -fuzz FuzzParse -fuzztime 30s
//
// In normal test runs only the seed corpus executes.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"MATCH (u:User) RETURN u",
		"MATCH (u:User)-[t:TX]->(m:Merchant) WHERE t.amount > 1000 RETURN u.name AS n ORDER BY n DESC LIMIT 5",
		"MATCH (a)-[:R*1..3]-(b), (a)<-[x:S]-(c) WITH a, collect(b) AS bs WHERE length(bs) > 2 RETURN DISTINCT a, length(bs)",
		"MATCH (c:CreditCard) WHERE ts.min(c) < 0.25 * ts.mean(c) RETURN ts.corr(c, c, 3600000)",
		"MATCH (a) WHERE NOT (a.x = 'it''s' OR a.y <= -2.5) RETURN coalesce(a.z, 0) % 3",
		"MATCH (a) RETURN count(*)",
		"MATCH ((((",
		"MATCH (a RETURN",
		"MATCH (a) WHERE RETURN a",
		"MATCH (a) RETURN a LIMIT 99999999999999999999",
		"match (a) return a", // keywords are case-insensitive
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q1, err1 := Parse(src)
		q2, err2 := Parse(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic accept for %q", src)
		}
		if err1 != nil {
			return
		}
		// Accepted queries must have a well-formed skeleton.
		if len(q1.Patterns) == 0 || len(q1.Return) == 0 {
			t.Fatalf("accepted %q with empty clauses", src)
		}
		for _, p := range q1.Patterns {
			if len(p.Nodes) != len(p.Edges)+1 {
				t.Fatalf("accepted %q with ragged pattern", src)
			}
		}
		// Rendering every return expression must not panic and must
		// re-parse inside a query skeleton when it contains no bindings the
		// skeleton lacks.
		for _, item := range q1.Return {
			_ = ExprText(item.Expr)
		}
		if len(q1.Patterns) != len(q2.Patterns) || len(q1.Return) != len(q2.Return) {
			t.Fatalf("non-deterministic parse shape for %q", src)
		}
		// Lexing is also panic-free on arbitrary prefixes.
		if len(src) > 2 {
			Parse(strings.TrimSpace(src[:len(src)/2]))
		}
	})
}

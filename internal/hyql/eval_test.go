package hyql

import (
	"math"
	"testing"

	"hygraph/internal/ts"
)

func evalStr(t *testing.T, h interface {
	Query(string, ts.Time) (*Result, error)
}, expr string) Value {
	t.Helper()
	res, err := h.Query("MATCH (u:User) WHERE u.name = 'u1' RETURN "+expr, 10*ts.Hour)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("eval %q: rows=%v", expr, res.Rows)
	}
	return res.Rows[0][0]
}

func TestEvalArithmeticAndStrings(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	cases := []struct {
		expr string
		want string
	}{
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
		{"7 / 2", "3"},     // integer division
		{"7.0 / 2", "3.5"}, // float division
		{"7 % 3", "1"},
		{"-5 + 2", "-3"},
		{"abs(-4.5)", "4.5"},
		{"'a' + 'b'", "ab"},
		{"'n=' + 3", "n=3"}, // string concat coerces
		{"1 = 1.0", "true"}, // numeric cross-kind equality
		{"1 <> 2", "true"},
		{"true AND false", "false"},
		{"true OR false", "true"},
		{"NOT false", "true"},
		{"null = 1", "null"},
		{"coalesce(null, null, 9)", "9"},
		{"length('abcd')", "4"},
		{"tofloat(3)", "3"},
	}
	for _, c := range cases {
		got := evalStr(t, eng, c.expr)
		if got.String() != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	for _, expr := range []string{
		"1 / 0",
		"1 % 0",
		"'a' * 2",
		"-'x'",
		"abs(1, 2)",
		"length(1, 2)",
		"exists()",
		"unknownfn(1)",
		"boo.bar(1)",
		"ts.mean(u, 1)",   // wrong arity: needs 1 or 3 args
		"ts.corr(u)",      // wrong arity
		"ts.anomalies(u)", // wrong arity
		"ts.mean(1)",      // literal is not a series ref
		"sum(u.name)",     // non-numeric aggregate (in RETURN)
	} {
		if _, err := eng.Query("MATCH (u:User) RETURN "+expr, 10*ts.Hour); err == nil {
			t.Errorf("accepted %q", expr)
		}
	}
}

func TestEvalTSRangeWithStringTimes(t *testing.T) {
	h := fraudHG(t)
	// The fixture's series start at epoch 0 (1970-01-01) hourly.
	res, err := NewEngine(h).Query(`
		MATCH (c:CreditCard)
		WHERE c.name = 'c2'
		RETURN ts.count(c, '1970-01-01', '1970-01-02') AS n`, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "24" {
		t.Fatalf("n=%v", res.Rows[0][0])
	}
	// RFC3339 form too.
	res, err = NewEngine(h).Query(`
		MATCH (c:CreditCard)
		WHERE c.name = 'c2'
		RETURN ts.count(c, '1970-01-01T00:00:00Z', '1970-01-01T12:00:00Z') AS n`, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "12" {
		t.Fatalf("rfc3339 n=%v", res.Rows[0][0])
	}
	// Unparseable time errors.
	if _, err := NewEngine(h).Query(
		`MATCH (c:CreditCard) RETURN ts.count(c, 'yesterday', 'today')`, 10*ts.Hour); err == nil {
		t.Fatal("bad time literal accepted")
	}
}

func TestEvalSeriesProperty(t *testing.T) {
	// ts.* over a series-valued property (not a TS element): metric
	// evolution stores degree series as vertex properties.
	h := fraudHG(t)
	if err := h.DegreeEvolution(0, 20*ts.Hour, ts.Hour); err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(h).Query(`
		MATCH (u:User)
		WHERE exists(u.degree_evolution)
		RETURN avg(ts.mean(u.degree_evolution)) AS d, count(u) AS n`, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Users connect only to TS card vertices, and the TPG projection holds
	// PG-PG edges only, so the evolved degree is 0 — what matters here is
	// that the series property resolves and aggregates.
	d, ok := res.Rows[0][0].AsFloat()
	if !ok || d != 0 {
		t.Fatalf("mean degree=%v ok=%v", d, ok)
	}
	if res.Rows[0][1].String() != "3" {
		t.Fatalf("users with evolution series=%v", res.Rows[0][1])
	}
	// Missing property is not a series.
	if _, err := NewEngine(h).Query(
		`MATCH (u:User) RETURN ts.mean(u.nope)`, 10*ts.Hour); err == nil {
		t.Fatal("missing series property accepted")
	}
}

func TestEvalTSFunctionsMore(t *testing.T) {
	h := fraudHG(t)
	eng := NewEngine(h)
	res, err := eng.Query(`
		MATCH (c:CreditCard)
		WHERE c.name = 'c2'
		RETURN ts.len(c) AS n, ts.slope(c) AS s, ts.first(c) AS f, ts.last(c) AS l,
		       ts.median(c) AS md, ts.anomalies(c, 3) AS a`, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].String() != "96" {
		t.Fatalf("len=%v", row[0])
	}
	if s, _ := row[1].AsFloat(); math.Abs(s) > 0.2 {
		t.Fatalf("slope=%v", s)
	}
	if row[2].IsNull() || row[3].IsNull() || row[4].IsNull() {
		t.Fatalf("first/last/median null: %v", row)
	}
	if a, _ := row[5].AsFloat(); a != 0 { // steady series: no 3σ outliers
		t.Fatalf("anomalies=%v", a)
	}
}

func TestValueRenderingAndCompare(t *testing.T) {
	h := fraudHG(t)
	res, err := NewEngine(h).Query(`
		MATCH (u:User)-[e:USES]->(c:CreditCard)
		WHERE u.name = 'u1'
		RETURN u, e, collect(c.name) AS cs`, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Node() == nil || row[1].Edge() == nil {
		t.Fatal("entity bindings")
	}
	// Renderings are informative, keys distinct per kind.
	if row[0].String() == row[1].String() {
		t.Fatal("node/edge render identically")
	}
	if row[0].key() == row[1].key() {
		t.Fatal("node/edge keys collide")
	}
	if row[2].Kind() != VList || row[2].String() != "[c1]" {
		t.Fatalf("list=%v", row[2])
	}
	// compare: list vs list, node vs node ordering are stable.
	if row[2].compare(row[2]) != 0 || row[0].compare(row[0]) != 0 {
		t.Fatal("self-compare nonzero")
	}
	if NullValue.Truthy() {
		t.Fatal("null truthy")
	}
	if _, ok := row[0].AsFloat(); ok {
		t.Fatal("node as float")
	}
}

func TestWithExpressionOverAggregates(t *testing.T) {
	// Arithmetic combining aggregates inside RETURN (exercises
	// evalWithAggregates' Binary/Unary paths and wrapLit).
	h := fraudHG(t)
	res, err := NewEngine(h).Query(`
		MATCH (c:CreditCard)-[t:TX]->(m:Merchant)
		RETURN sum(t.amount) / count(t) AS avg_amount, -count(t) AS neg`, 10*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	want := (2000.0 + 1800 + 2500 + 1500 + 1600 + 1700 + 25) / 7
	got, _ := row[0].AsFloat()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg=%v want %v", got, want)
	}
	if row[1].String() != "-7" {
		t.Fatalf("neg=%v", row[1])
	}
}

package hyql

import "hygraph/internal/lpg"

// Predicate pushdown helpers: WHERE conjuncts referencing a single binding
// are evaluated per candidate inside the pattern matcher. See matchRows.

// flattenAnd splits a conjunction tree into its conjuncts.
func flattenAnd(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

// bindingRefs collects the binding names an expression references.
func bindingRefs(e Expr) map[string]bool {
	out := map[string]bool{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case Ident:
			out[v.Name] = true
		case PropAccess:
			out[v.On] = true
		case Unary:
			walk(v.X)
		case Binary:
			walk(v.L)
			walk(v.R)
		case Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// nodeFilter compiles a single-binding conjunct into a vertex candidate
// filter. Evaluation errors admit the candidate (the residual WHERE decides).
func nodeFilter(name string, conj Expr) func(*lpg.Vertex) bool {
	return func(v *lpg.Vertex) bool {
		res, err := eval(conj, &evalCtx{row: map[string]Value{name: NodeValue(v)}})
		if err != nil {
			return true
		}
		return res.Truthy()
	}
}

// edgeFilter is nodeFilter for single-hop edge bindings.
func edgeFilter(name string, conj Expr) func(*lpg.Edge) bool {
	return func(e *lpg.Edge) bool {
		res, err := eval(conj, &evalCtx{row: map[string]Value{name: EdgeValue(e)}})
		if err != nil {
			return true
		}
		return res.Truthy()
	}
}

// andPred conjoins two optional vertex predicates.
func andPred(a, b func(*lpg.Vertex) bool) func(*lpg.Vertex) bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(v *lpg.Vertex) bool { return a(v) && b(v) }
}

// andEdgePred conjoins two optional edge predicates.
func andEdgePred(a, b func(*lpg.Edge) bool) func(*lpg.Edge) bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(e *lpg.Edge) bool { return a(e) && b(e) }
}

package hyql

import "hygraph/internal/obs"

// engineObs holds the engine's preallocated metric handles: per-clause
// latency histograms, pushdown-attachment counters, and snapshot-view cache
// hit/miss counters. The zero value (all nil) is the disabled state — every
// Start/Stop and increment is a nil-check no-op that never reads the clock.
type engineObs struct {
	parse   *obs.Histogram // source text -> AST
	match   *obs.Histogram // MATCH pattern enumeration
	where   *obs.Histogram // post-match WHERE filter pass
	with    *obs.Histogram // WITH re-projection stage
	project *obs.Histogram // RETURN projection (incl. grouping/DISTINCT)
	order   *obs.Histogram // ORDER BY + LIMIT

	pushNode *obs.Counter // WHERE conjuncts pushed onto pattern vertices
	pushEdge *obs.Counter // WHERE conjuncts pushed onto pattern edges

	viewHits   *obs.Counter // snapshot-view cache hits
	viewMisses *obs.Counter // snapshot-view cache misses (view built)
}

// Instrument attaches metric handles to the engine. Call before issuing
// queries; a nil registry detaches instrumentation. The engine itself is not
// synchronized, so Instrument follows the same single-goroutine discipline as
// Query/Exec.
func (e *Engine) Instrument(r *obs.Registry) {
	if r == nil {
		e.obs = engineObs{}
		return
	}
	e.obs = engineObs{
		parse:      r.Histogram("hyql.clause.parse"),
		match:      r.Histogram("hyql.clause.match"),
		where:      r.Histogram("hyql.clause.where"),
		with:       r.Histogram("hyql.clause.with"),
		project:    r.Histogram("hyql.clause.return"),
		order:      r.Histogram("hyql.clause.order"),
		pushNode:   r.Counter("hyql.pushdown.node_conjuncts"),
		pushEdge:   r.Counter("hyql.pushdown.edge_conjuncts"),
		viewHits:   r.Counter("hyql.viewcache.hits"),
		viewMisses: r.Counter("hyql.viewcache.misses"),
	}
}

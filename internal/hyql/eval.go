package hyql

import (
	"fmt"
	"math"
	"strings"
	gotime "time"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// evalCtx carries one row's bindings during expression evaluation.
type evalCtx struct {
	row map[string]Value
}

// eval evaluates a non-aggregate expression against a row.
func eval(e Expr, ctx *evalCtx) (Value, error) {
	switch x := e.(type) {
	case Lit:
		return evalLit(x), nil
	case Ident:
		v, ok := ctx.row[x.Name]
		if !ok {
			return NullValue, fmt.Errorf("hyql: unknown identifier %q", x.Name)
		}
		return v, nil
	case PropAccess:
		b, ok := ctx.row[x.On]
		if !ok {
			return NullValue, fmt.Errorf("hyql: unknown identifier %q", x.On)
		}
		switch b.Kind() {
		case VNode:
			return Scalar(b.Node().Prop(x.Key)), nil
		case VEdge:
			return Scalar(b.Edge().Prop(x.Key)), nil
		}
		return NullValue, fmt.Errorf("hyql: %q is not an entity, cannot read .%s", x.On, x.Key)
	case Unary:
		v, err := eval(x.X, ctx)
		if err != nil {
			return NullValue, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return NullValue, nil
			}
			return Scalar(lpg.Bool(!v.Truthy())), nil
		case "-":
			if f, ok := v.AsFloat(); ok {
				if i, isInt := v.AsScalar().AsInt(); isInt {
					return Scalar(lpg.Int(-i)), nil
				}
				return Scalar(lpg.Float(-f)), nil
			}
			return NullValue, fmt.Errorf("hyql: cannot negate %s", v)
		}
		return NullValue, fmt.Errorf("hyql: unknown unary %q", x.Op)
	case Binary:
		return evalBinary(x, ctx)
	case Call:
		return evalCall(x, ctx)
	}
	return NullValue, fmt.Errorf("hyql: unhandled expression %T", e)
}

func evalLit(l Lit) Value {
	switch {
	case l.IsNull:
		return NullValue
	case l.Str != nil:
		return Scalar(lpg.Str(*l.Str))
	case l.Int != nil:
		return Scalar(lpg.Int(*l.Int))
	case l.Num != nil:
		return Scalar(lpg.Float(*l.Num))
	case l.Bool != nil:
		return Scalar(lpg.Bool(*l.Bool))
	}
	return NullValue
}

func evalBinary(b Binary, ctx *evalCtx) (Value, error) {
	// AND/OR get short-circuit + ternary null handling.
	if b.Op == "AND" || b.Op == "OR" {
		l, err := eval(b.L, ctx)
		if err != nil {
			return NullValue, err
		}
		if b.Op == "AND" && !l.IsNull() && !l.Truthy() {
			return Scalar(lpg.Bool(false)), nil
		}
		if b.Op == "OR" && l.Truthy() {
			return Scalar(lpg.Bool(true)), nil
		}
		r, err := eval(b.R, ctx)
		if err != nil {
			return NullValue, err
		}
		if l.IsNull() || r.IsNull() {
			return NullValue, nil
		}
		if b.Op == "AND" {
			return Scalar(lpg.Bool(l.Truthy() && r.Truthy())), nil
		}
		return Scalar(lpg.Bool(l.Truthy() || r.Truthy())), nil
	}
	l, err := eval(b.L, ctx)
	if err != nil {
		return NullValue, err
	}
	r, err := eval(b.R, ctx)
	if err != nil {
		return NullValue, err
	}
	switch b.Op {
	case "=", "<>":
		if l.IsNull() || r.IsNull() {
			return NullValue, nil
		}
		eq := l.key() == r.key()
		// Numeric cross-kind equality (1 = 1.0).
		if lf, lok := l.AsFloat(); lok {
			if rf, rok := r.AsFloat(); rok {
				eq = lf == rf
			}
		}
		if b.Op == "<>" {
			eq = !eq
		}
		return Scalar(lpg.Bool(eq)), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return NullValue, nil
		}
		var c int
		if lf, lok := l.AsFloat(); lok {
			rf, rok := r.AsFloat()
			if !rok {
				return NullValue, fmt.Errorf("hyql: cannot compare %s with %s", l, r)
			}
			switch {
			case lf < rf:
				c = -1
			case lf > rf:
				c = 1
			}
		} else {
			c = l.compare(r)
		}
		var res bool
		switch b.Op {
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return Scalar(lpg.Bool(res)), nil
	case "+", "-", "*", "/", "%":
		// String concatenation with +.
		if b.Op == "+" {
			if ls, ok := l.AsScalar().AsString(); ok {
				return Scalar(lpg.Str(ls + r.String())), nil
			}
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			if l.IsNull() || r.IsNull() {
				return NullValue, nil
			}
			return NullValue, fmt.Errorf("hyql: arithmetic on non-numbers %s %s %s", l, b.Op, r)
		}
		li, lInt := l.AsScalar().AsInt()
		ri, rInt := r.AsScalar().AsInt()
		bothInt := lInt && rInt
		var f float64
		switch b.Op {
		case "+":
			f = lf + rf
		case "-":
			f = lf - rf
		case "*":
			f = lf * rf
		case "/":
			if rf == 0 {
				return NullValue, fmt.Errorf("hyql: division by zero")
			}
			if bothInt {
				return Scalar(lpg.Int(li / ri)), nil
			}
			f = lf / rf
		case "%":
			if !bothInt || ri == 0 {
				return NullValue, fmt.Errorf("hyql: %% requires nonzero integers")
			}
			return Scalar(lpg.Int(li % ri)), nil
		}
		if bothInt && b.Op != "/" {
			return Scalar(lpg.Int(int64(f))), nil
		}
		return Scalar(lpg.Float(f)), nil
	}
	return NullValue, fmt.Errorf("hyql: unknown operator %q", b.Op)
}

// aggregateFuncs are the functions that trigger implicit grouping in RETURN.
var aggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"collect": true,
}

// isAggregate reports whether the expression contains an aggregate call.
func isAggregate(e Expr) bool {
	switch x := e.(type) {
	case Call:
		if x.Namespace == "" && aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if isAggregate(a) {
				return true
			}
		}
	case Unary:
		return isAggregate(x.X)
	case Binary:
		return isAggregate(x.L) || isAggregate(x.R)
	}
	return false
}

// evalCall evaluates non-aggregate function calls (aggregates are handled by
// the executor and never reach here).
func evalCall(c Call, ctx *evalCtx) (Value, error) {
	if c.Namespace == "ts" {
		return evalTSCall(c, ctx)
	}
	if c.Namespace != "" {
		return NullValue, fmt.Errorf("hyql: unknown namespace %q", c.Namespace)
	}
	if aggregateFuncs[c.Name] {
		return NullValue, fmt.Errorf("hyql: aggregate %s() not allowed here", c.Name)
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := eval(a, ctx)
		if err != nil {
			return NullValue, err
		}
		args[i] = v
	}
	switch c.Name {
	case "abs":
		if len(args) != 1 {
			return NullValue, fmt.Errorf("hyql: abs expects 1 argument")
		}
		if f, ok := args[0].AsFloat(); ok {
			if i, isInt := args[0].AsScalar().AsInt(); isInt {
				if i < 0 {
					i = -i
				}
				return Scalar(lpg.Int(i)), nil
			}
			return Scalar(lpg.Float(math.Abs(f))), nil
		}
		return NullValue, nil
	case "length":
		if len(args) != 1 {
			return NullValue, fmt.Errorf("hyql: length expects 1 argument")
		}
		switch args[0].Kind() {
		case VPath:
			return Scalar(lpg.Int(int64(len(args[0].path)))), nil
		case VList:
			return Scalar(lpg.Int(int64(len(args[0].List())))), nil
		case VScalar:
			if s, ok := args[0].AsScalar().AsString(); ok {
				return Scalar(lpg.Int(int64(len(s)))), nil
			}
		}
		return NullValue, nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return NullValue, nil
	case "exists":
		if len(args) != 1 {
			return NullValue, fmt.Errorf("hyql: exists expects 1 argument")
		}
		return Scalar(lpg.Bool(!args[0].IsNull())), nil
	case "label":
		if len(args) == 1 {
			if n := args[0].Node(); n != nil && len(n.Labels) > 0 {
				return Scalar(lpg.Str(n.Labels[0])), nil
			}
			if e := args[0].Edge(); e != nil {
				return Scalar(lpg.Str(e.Label)), nil
			}
		}
		return NullValue, nil
	case "id":
		if len(args) == 1 {
			if n := args[0].Node(); n != nil {
				return Scalar(lpg.Int(int64(n.ID))), nil
			}
			if e := args[0].Edge(); e != nil {
				return Scalar(lpg.Int(int64(e.ID))), nil
			}
		}
		return NullValue, nil
	case "tofloat":
		if len(args) == 1 {
			if f, ok := args[0].AsFloat(); ok {
				return Scalar(lpg.Float(f)), nil
			}
		}
		return NullValue, nil
	}
	return NullValue, fmt.Errorf("hyql: unknown function %s()", c.Name)
}

// resolveSeries extracts the univariate series an expression refers to:
// either a TS element binding (its δ series' first variable), a
// series-valued property, or a named variable via ts.var(x, 'name').
func resolveSeries(e Expr, ctx *evalCtx) (*ts.Series, error) {
	switch x := e.(type) {
	case Ident:
		b, ok := ctx.row[x.Name]
		if !ok {
			return nil, fmt.Errorf("hyql: unknown identifier %q", x.Name)
		}
		var val lpg.Value
		switch b.Kind() {
		case VNode:
			val = b.Node().Prop("_series")
		case VEdge:
			val = b.Edge().Prop("_series")
		default:
			return nil, fmt.Errorf("hyql: %q has no series", x.Name)
		}
		if m, ok := val.AsMulti(); ok {
			if len(m.Vars()) == 0 {
				return nil, fmt.Errorf("hyql: %q has an empty series", x.Name)
			}
			return m.MustVar(m.Vars()[0]), nil
		}
		if s, ok := val.AsSeries(); ok {
			return s, nil
		}
		return nil, fmt.Errorf("hyql: %q is not a time-series element", x.Name)
	case PropAccess:
		v, err := eval(x, ctx)
		if err != nil {
			return nil, err
		}
		if s, ok := v.AsScalar().AsSeries(); ok {
			return s, nil
		}
		if m, ok := v.AsScalar().AsMulti(); ok && len(m.Vars()) > 0 {
			return m.MustVar(m.Vars()[0]), nil
		}
		return nil, fmt.Errorf("hyql: %s.%s is not a series property", x.On, x.Key)
	}
	return nil, fmt.Errorf("hyql: expected a series reference, got %s", ExprText(e))
}

// asTime coerces an evaluated argument into a timestamp: integers are epoch
// milliseconds, strings are RFC 3339 or "2006-01-02" dates.
func asTime(v Value) (ts.Time, error) {
	sc := v.AsScalar()
	if i, ok := sc.AsInt(); ok {
		return ts.Time(i), nil
	}
	if t, ok := sc.AsTime(); ok {
		return t, nil
	}
	if s, ok := sc.AsString(); ok {
		for _, layout := range []string{gotime.RFC3339, "2006-01-02"} {
			if t, err := gotime.Parse(layout, s); err == nil {
				return ts.FromGoTime(t), nil
			}
		}
		return 0, fmt.Errorf("hyql: cannot parse time %q", s)
	}
	return 0, fmt.Errorf("hyql: expected a time, got %s", v)
}

// evalTSCall evaluates ts.* functions.
func evalTSCall(c Call, ctx *evalCtx) (Value, error) {
	need := func(n int) error {
		if len(c.Args) != n {
			return fmt.Errorf("hyql: ts.%s expects %d arguments, got %d", c.Name, n, len(c.Args))
		}
		return nil
	}
	// Aggregations over one series: ts.f(x) or ts.f(x, start, end).
	if agg, err := ts.ParseAggFunc(c.Name); err == nil {
		if len(c.Args) != 1 && len(c.Args) != 3 {
			return NullValue, fmt.Errorf("hyql: ts.%s expects (series) or (series, start, end)", c.Name)
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		var out float64
		if len(c.Args) == 3 {
			a, b, err := evalTimePair(c.Args[1], c.Args[2], ctx)
			if err != nil {
				return NullValue, err
			}
			out = s.AggregateRange(agg, a, b)
		} else {
			out = s.Aggregate(agg)
		}
		if math.IsNaN(out) {
			return NullValue, nil
		}
		return Scalar(lpg.Float(out)), nil
	}
	switch c.Name {
	case "slope":
		if len(c.Args) != 1 {
			return NullValue, fmt.Errorf("hyql: ts.slope expects (series)")
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		_, slope := s.Trend()
		if math.IsNaN(slope) {
			return NullValue, nil
		}
		return Scalar(lpg.Float(slope)), nil
	case "corr":
		// ts.corr(a, b, bucket) over the whole series, or
		// ts.corr(a, b, start, end, bucket) windowed to [start, end).
		if len(c.Args) != 3 && len(c.Args) != 5 {
			return NullValue, fmt.Errorf("hyql: ts.corr expects (a, b, bucket) or (a, b, start, end, bucket)")
		}
		a, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		b, err := resolveSeries(c.Args[1], ctx)
		if err != nil {
			return NullValue, err
		}
		if len(c.Args) == 5 {
			start, end, err := evalTimePair(c.Args[2], c.Args[3], ctx)
			if err != nil {
				return NullValue, err
			}
			a = a.SliceView(start, end)
			b = b.SliceView(start, end)
		}
		bucketV, err := eval(c.Args[len(c.Args)-1], ctx)
		if err != nil {
			return NullValue, err
		}
		bucket, err := asTime(bucketV)
		if err != nil {
			return NullValue, err
		}
		r := ts.Correlation(a, b, bucket)
		if math.IsNaN(r) {
			return NullValue, nil
		}
		return Scalar(lpg.Float(r)), nil
	case "resample":
		// ts.resample(s, bucket, agg) over the whole series, or
		// ts.resample(s, start, end, bucket, agg) windowed to [start, end):
		// bucket-aligned windows under the named aggregate, as a list of
		// [bucket_start, value] pairs — the HyQL face of the engine's
		// continuous-aggregate pushdown (element-wise identical to it).
		if len(c.Args) != 3 && len(c.Args) != 5 {
			return NullValue, fmt.Errorf("hyql: ts.resample expects (series, bucket, agg) or (series, start, end, bucket, agg)")
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		if len(c.Args) == 5 {
			start, end, err := evalTimePair(c.Args[1], c.Args[2], ctx)
			if err != nil {
				return NullValue, err
			}
			s = s.SliceView(start, end)
		}
		bucketV, err := eval(c.Args[len(c.Args)-2], ctx)
		if err != nil {
			return NullValue, err
		}
		bucket, err := asTime(bucketV)
		if err != nil {
			return NullValue, err
		}
		if bucket <= 0 {
			return NullValue, fmt.Errorf("hyql: ts.resample bucket must be positive")
		}
		aggV, err := eval(c.Args[len(c.Args)-1], ctx)
		if err != nil {
			return NullValue, err
		}
		aggName, ok := aggV.AsScalar().AsString()
		if !ok {
			return NullValue, fmt.Errorf("hyql: ts.resample aggregate must be a string")
		}
		agg, err := ts.ParseAggFunc(aggName)
		if err != nil {
			return NullValue, err
		}
		return pointList(s.Resample(bucket, agg), nil), nil
	case "points":
		// ts.points(s) or ts.points(s, start, end): the raw observations as a
		// list of [timestamp, value] pairs, in time order.
		if len(c.Args) != 1 && len(c.Args) != 3 {
			return NullValue, fmt.Errorf("hyql: ts.points expects (series) or (series, start, end)")
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		if len(c.Args) == 3 {
			start, end, err := evalTimePair(c.Args[1], c.Args[2], ctx)
			if err != nil {
				return NullValue, err
			}
			s = s.SliceView(start, end)
		}
		return pointList(s, nil), nil
	case "below":
		// ts.below(s, start, end, threshold): the windowed observations with
		// value < threshold, as a list of [timestamp, value] pairs.
		if err := need(4); err != nil {
			return NullValue, err
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		start, end, err := evalTimePair(c.Args[1], c.Args[2], ctx)
		if err != nil {
			return NullValue, err
		}
		thV, err := eval(c.Args[3], ctx)
		if err != nil {
			return NullValue, err
		}
		th, ok := thV.AsFloat()
		if !ok {
			return NullValue, fmt.Errorf("hyql: ts.below threshold must be numeric")
		}
		keep := func(v float64) bool { return v < th }
		return pointList(s.SliceView(start, end), keep), nil
	case "anomalies":
		if err := need(2); err != nil {
			return NullValue, err
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		thV, err := eval(c.Args[1], ctx)
		if err != nil {
			return NullValue, err
		}
		th, ok := thV.AsFloat()
		if !ok {
			return NullValue, fmt.Errorf("hyql: ts.anomalies threshold must be numeric")
		}
		return Scalar(lpg.Int(int64(len(s.ZScoreAnomalies(th))))), nil
	case "len":
		if err := need(1); err != nil {
			return NullValue, err
		}
		s, err := resolveSeries(c.Args[0], ctx)
		if err != nil {
			return NullValue, err
		}
		return Scalar(lpg.Int(int64(s.Len()))), nil
	}
	return NullValue, fmt.Errorf("hyql: unknown function ts.%s (have %s)", c.Name, strings.Join(tsFuncNames, ", "))
}

var tsFuncNames = []string{
	"mean", "sum", "min", "max", "count", "std", "median", "first", "last",
	"slope", "corr", "anomalies", "len", "points", "below", "resample",
}

// pointList renders a series as a list of [timestamp, value] pairs, keeping
// only points that pass the filter (nil keeps everything).
func pointList(s *ts.Series, keep func(float64) bool) Value {
	out := make([]Value, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		v := s.ValueAt(i)
		if keep != nil && !keep(v) {
			continue
		}
		out = append(out, ListValue([]Value{
			Scalar(lpg.Int(int64(s.TimeAt(i)))),
			Scalar(lpg.Float(v)),
		}))
	}
	return ListValue(out)
}

func evalTimePair(a, b Expr, ctx *evalCtx) (ts.Time, ts.Time, error) {
	av, err := eval(a, ctx)
	if err != nil {
		return 0, 0, err
	}
	bv, err := eval(b, ctx)
	if err != nil {
		return 0, 0, err
	}
	at, err := asTime(av)
	if err != nil {
		return 0, 0, err
	}
	bt, err := asTime(bv)
	if err != nil {
		return 0, 0, err
	}
	return at, bt, nil
}

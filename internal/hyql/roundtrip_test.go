package hyql

import (
	"math/rand"
	"testing"
)

// randExpr builds a random expression tree over bindings {a, b}.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			i := int64(rng.Intn(100))
			return Lit{Int: &i}
		case 1:
			f := float64(rng.Intn(100)) + 0.5
			return Lit{Num: &f}
		case 2:
			s := []string{"x", "hello", "q"}[rng.Intn(3)]
			return Lit{Str: &s}
		case 3:
			return Ident{Name: []string{"a", "b"}[rng.Intn(2)]}
		default:
			return PropAccess{On: "a", Key: []string{"x", "name"}[rng.Intn(2)]}
		}
	}
	switch rng.Intn(4) {
	case 0:
		op := []string{"AND", "OR", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"}[rng.Intn(13)]
		return Binary{op, randExpr(rng, depth-1), randExpr(rng, depth-1)}
	case 1:
		return Unary{"NOT", randExpr(rng, depth-1)}
	case 2:
		name := []string{"abs", "length", "coalesce"}[rng.Intn(3)]
		n := 1
		if name == "coalesce" {
			n = 2
		}
		args := make([]Expr, n)
		for i := range args {
			args[i] = randExpr(rng, depth-1)
		}
		return Call{Name: name, Args: args}
	default:
		return Call{Namespace: "ts", Name: "mean", Args: []Expr{Ident{Name: "a"}}}
	}
}

// TestExprRenderParseFixpoint: rendering an expression and re-parsing it
// yields a tree that renders identically — ExprText is a fixpoint under
// parse∘render. This pins down precedence handling in both directions.
func TestExprRenderParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		e := randExpr(rng, 1+rng.Intn(3))
		text := ExprText(e)
		q, err := Parse("MATCH (a), (b) WHERE " + text + " RETURN a")
		if err != nil {
			t.Fatalf("render %q failed to parse: %v", text, err)
		}
		if got := ExprText(q.Where); got != text {
			t.Fatalf("fixpoint broken:\n rendered %q\n reparsed %q", text, got)
		}
	}
}

// TestQueryRenderStability: full queries keep their clause content through a
// parse→inspect cycle.
func TestQueryRenderStability(t *testing.T) {
	srcs := []string{
		"MATCH (u:User) RETURN u",
		"MATCH (u:User)-[t:TX]->(m) WHERE t.amount > 5 RETURN u.name AS n ORDER BY n DESC LIMIT 3",
		"MATCH (a)-[:R*1..4]-(b) WITH a, count(b) AS c WHERE c > 1 RETURN a, c",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		// Parse twice: structures must agree on clause arity.
		q2, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(q1.Patterns) != len(q2.Patterns) || len(q1.Return) != len(q2.Return) ||
			len(q1.With) != len(q2.With) || q1.Limit != q2.Limit || q1.Distinct != q2.Distinct {
			t.Fatalf("%q: unstable parse", src)
		}
	}
}

// Package hyql implements HyQL, a Cypher-subset declarative query language
// over HyGraph instances with time-series functions in expressions — the
// unified language the paper's requirement R1 calls for: one query can
// constrain graph structure and series behaviour at once.
//
// Supported surface:
//
//	MATCH (u:User)-[t:TX]->(m:Merchant), (u)-[:USES]->(c:CreditCard)
//	WHERE t.amount > 1000 AND ts.mean(c, 0, 100) < 500
//	RETURN u.name AS user, count(m) AS merchants, collect(m.name)
//	ORDER BY merchants DESC
//	LIMIT 10
//
// Pattern edges may be directed (->, <-) or undirected (-), and may carry
// variable-length bounds ([*1..3]). Aggregations in RETURN group implicitly
// by the non-aggregated items, like Cypher. The ts.* namespace exposes the
// time-series engine over TS vertices/edges bound in the pattern: ts.mean,
// ts.sum, ts.min, ts.max, ts.count, ts.std, ts.first, ts.last, ts.slope,
// ts.corr, ts.anomalies, ts.resample.
package hyql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol
)

// token is one lexical token with its source position (for error messages).
type token struct {
	kind tokKind
	text string // keywords are upper-cased, symbols literal
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"MATCH": true, "WHERE": true, "RETURN": true, "ORDER": true, "BY": true,
	"LIMIT": true, "AS": true, "AND": true, "OR": true, "NOT": true, "WITH": true,
	"TRUE": true, "FALSE": true, "NULL": true, "ASC": true, "DESC": true,
	"DISTINCT": true,
}

// multi-character symbols, longest first.
var symbols = []string{"<=", ">=", "<>", "!=", "->", "<-", "..", "(", ")",
	"[", "]", "{", "}", "-", ">", "<", "=", ",", ":", ".", "*", "+", "/", "%", "|"}

// lex tokenizes a query. Errors carry the offending position.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != quote {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("hyql: unterminated string at offset %d", i)
			}
			out = append(out, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' && !seenDot) {
				if src[j] == '.' {
					// ".." is the range symbol, not a decimal point.
					if j+1 < n && src[j+1] == '.' {
						break
					}
					seenDot = true
				}
				j++
			}
			out = append(out, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if up := strings.ToUpper(word); keywords[up] {
				out = append(out, token{tokKeyword, up, i})
			} else {
				out = append(out, token{tokIdent, word, i})
			}
			i = j
		default:
			matched := false
			for _, s := range symbols {
				if strings.HasPrefix(src[i:], s) {
					out = append(out, token{tokSymbol, s, i})
					i += len(s)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("hyql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	out = append(out, token{tokEOF, "", n})
	return out, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

package bench

import (
	"context"
	"strings"
	"testing"
)

// A tiny end-to-end served-workload run: boots the real service on a
// loopback port, seeds tenants through the ingest API, drives both load
// levels, and the resulting report must pass its own checker.
func TestRunServeSmallReportIsValid(t *testing.T) {
	rep, err := RunServe(context.Background(), ServeConfig{
		Tenants:       2,
		Stations:      4,
		RatePerTenant: 200,
		WindowMS:      120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants != 2 || rep.Stations != 4 || len(rep.Levels) != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	if problems := checkServe(&rep); len(problems) != 0 {
		t.Fatalf("self-check problems: %v", problems)
	}
	if !rep.Levels[0].BelowLimit || rep.Levels[1].BelowLimit {
		t.Fatalf("default multipliers must span the limit: %+v", rep.Levels)
	}
	out := FormatServe(rep)
	for _, want := range []string{"Served workload", "below limit", "qps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatServe missing %q:\n%s", want, out)
		}
	}
}

func TestServeConfigDefaults(t *testing.T) {
	c := ServeConfig{}.withDefaults()
	if c.Tenants != 2 || c.Stations != 16 || c.RatePerTenant != 400 ||
		c.WindowMS != 500 || len(c.Multipliers) != 2 {
		t.Fatalf("defaults: %+v", c)
	}
	keep := ServeConfig{Tenants: 5, Stations: 3, RatePerTenant: 7, WindowMS: 9,
		Multipliers: []float64{2}}.withDefaults()
	if keep.Tenants != 5 || keep.Stations != 3 || keep.RatePerTenant != 7 ||
		keep.WindowMS != 9 || len(keep.Multipliers) != 1 {
		t.Fatalf("explicit values clobbered: %+v", keep)
	}
}

// checkServe must flag every accounting and SLO violation the schema
// guards against — these are the failure modes `hybench -check` exists
// to catch in CI.
func TestCheckServeFlagsViolations(t *testing.T) {
	bad := ServeReport{Levels: []ServeLevel{
		{BelowLimit: true, Offered: 10, Completed: 4, Shed: 1, // 5 vanish
			MissRate: 0.5, P50MS: 3, P99MS: 1},
		{BelowLimit: true, Offered: 0},
	}}
	problems := checkServe(&bad)
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"vanished unaccounted",
		"deadline-miss rate",
		"p99 1.000ms below p50",
		"no requests offered",
		"no above-limit level",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("checkServe missed %q in:\n%s", want, joined)
		}
	}
	if probs := checkServe(&ServeReport{}); len(probs) == 0 {
		t.Fatal("empty report passed checkServe")
	}
}

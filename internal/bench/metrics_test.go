package bench

import (
	"bytes"
	"testing"

	"hygraph/internal/obs"
)

// TestInstrumentedRunPassesCheckMetrics drives the full -metrics pipeline:
// an instrumented Table 1 run plus the durable exercise must produce a
// snapshot with every subsystem reporting.
func TestInstrumentedRunPassesCheckMetrics(t *testing.T) {
	reg := obs.New()
	cfg := tinyConfig()
	cfg.Obs = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := DurableExercise(cfg, reg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if problems := CheckMetrics(snap); len(problems) != 0 {
		t.Fatalf("metrics check failed: %v", problems)
	}
	// The durable exercise must leave a recovery trace behind.
	if snap.Trace == nil || snap.Trace.Totals["ttdb.recover"].Count == 0 {
		t.Fatalf("no recovery trace in snapshot: %+v", snap.Trace)
	}
	// The snapshot must survive inclusion in a baseline round trip.
	b := &Baseline{Schema: BaselineSchema, Config: cfg, Rows: nil, Metrics: snap}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if back == nil {
		t.Fatalf("baseline lost on round trip: %v", err)
	}
	if back.Metrics == nil || back.Metrics.Counters["tsstore.wal.appends"] == 0 {
		t.Fatalf("metrics lost on round trip: %+v", back.Metrics)
	}
}

// TestCheckMetricsReportsSilentSubsystems verifies that an empty or partial
// snapshot is rejected with one problem per silent metric.
func TestCheckMetricsReportsSilentSubsystems(t *testing.T) {
	empty := obs.New().Snapshot()
	problems := CheckMetrics(empty)
	// 16 query timers (ttdb + neo4j) + 5 counters.
	if len(problems) != 21 {
		t.Fatalf("got %d problems, want 21: %v", len(problems), problems)
	}
	// A baseline embedding a silent snapshot fails validation.
	b := &Baseline{Schema: BaselineSchema, Metrics: empty}
	if got := b.Validate(); len(got) < 21 {
		t.Fatalf("baseline validation ignored silent metrics: %v", got)
	}
}

// TestValidateEffectiveWorkers pins the resolved-worker-count rules: parallel
// rows without a recorded width, or a config that disagrees with the
// top-level field, are structural violations.
func TestValidateEffectiveWorkers(t *testing.T) {
	rows, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Baseline {
		return &Baseline{
			Schema:   BaselineSchema,
			Config:   tinyConfig(),
			Rows:     rows,
			Parallel: []ParallelRow{{Query: "Q4", Identical: true}},
		}
	}
	// Workers unrecorded: the GOMAXPROCS resolution was lost.
	b := mk()
	if got := b.Validate(); len(got) != 1 {
		t.Fatalf("unrecorded workers: %v", got)
	}
	// Recorded and consistent: clean.
	b = mk()
	b.Workers = 4
	b.Config.EffectiveWorkers = 4
	if got := b.Validate(); len(got) != 0 {
		t.Fatalf("consistent baseline flagged: %v", got)
	}
	// Recorded but disagreeing with the config copy.
	b = mk()
	b.Workers = 4
	b.Config.EffectiveWorkers = 2
	if got := b.Validate(); len(got) != 1 {
		t.Fatalf("disagreeing workers: %v", got)
	}
	// EffectiveWorkers omitted entirely is allowed (sequential-only runs
	// never resolve a width) as long as Workers is recorded.
	b = mk()
	b.Workers = 4
	if got := b.Validate(); len(got) != 0 {
		t.Fatalf("omitted effective_workers flagged: %v", got)
	}
}

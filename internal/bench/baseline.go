package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
)

// BaselineSchema versions the BENCH_table1.json layout so later PRs can
// detect incompatible baselines instead of mis-reading them. v2 added the
// mixed read/write throughput section (sharded stores + WAL group commit);
// v3 added the served-workload section (network service under open-loop
// offered load: served QPS, latency quantiles, shed and deadline-miss
// rates); v4 added the storage section (chunk compression + cold tier:
// points-per-MB, compression ratio, cold/warm scan, Q1–Q8 deltas); v5 added
// the partition-scaling section (scatter-gather coordinator at 1/2/4/8
// partitions: Q4–Q8 MRS + speedup per level, oracle-identity flag); v6 added
// the streaming section (write-through continuous aggregates under sustained
// ingest: incremental vs recompute aggregate-read latency, read-your-writes
// staleness, cache patch/invalidate accounting, identity gate).
const BaselineSchema = "hybench-table1/v6"

// Baseline is the machine-readable record of one Table 1 run, written to
// BENCH_table1.json so the performance trajectory is trackable across PRs.
type Baseline struct {
	Schema string `json:"schema"`
	// GeneratedAt is an RFC 3339 stamp, or "" when reproducibility of the
	// byte output matters more than provenance (e.g. committed baselines).
	GeneratedAt string            `json:"generated_at,omitempty"`
	Config      Config            `json:"config"`
	Rows        []Row             `json:"rows"`
	Parallel    []ParallelRow     `json:"parallel,omitempty"`
	Workers     int               `json:"workers,omitempty"` // fan-out width of Parallel
	Throughput  *ThroughputReport `json:"throughput,omitempty"`
	// Mixed is the read/write scaling section: single-stripe per-record-flush
	// baseline vs sharded stores with WAL group commit, same workload.
	Mixed *MixedComparison `json:"mixed,omitempty"`
	// Serve is the served-workload section (hybench -serve): the network
	// query service under open-loop offered load at levels below and above
	// the admission limit.
	Serve *ServeReport `json:"serve,omitempty"`
	// Metrics is the observability snapshot of the instrumented run
	// (hybench -metrics): per-query timers, WAL/store counters, cache
	// hit rates, and the durable-exercise trace.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Storage is the compression + tiering section (hybench -storage):
	// points-per-MB of the raw vs compressed layouts, the cold-tier spill
	// and scan numbers, and the Q1–Q8 latency deltas of a compressed engine.
	Storage *StorageReport `json:"storage,omitempty"`
	// Partitions is the partition-scaling section (hybench -partitions):
	// the scatter-gather coordinator at increasing partition counts, each
	// level oracle-identical and timed on Q4–Q8.
	Partitions *PartitionsReport `json:"partitions,omitempty"`
	// Streaming is the continuous-aggregate section (hybench -streaming):
	// write-through delta maintenance vs invalidate-and-recompute under the
	// same sustained ingest — aggregate-read latency, read-your-writes
	// staleness, and the identity gate against a from-scratch resample.
	Streaming *StreamingReport `json:"streaming,omitempty"`
}

// Validate checks the structural invariants of a baseline: schema tag,
// all eight Table 1 queries present in order, and finite non-negative
// timings. It returns every violation, not just the first.
func (b *Baseline) Validate() []string {
	var problems []string
	if b.Schema != BaselineSchema {
		problems = append(problems, fmt.Sprintf("schema %q, want %q", b.Schema, BaselineSchema))
	}
	if len(b.Rows) != len(ttdb.QueryNames) {
		problems = append(problems, fmt.Sprintf("%d rows, want %d", len(b.Rows), len(ttdb.QueryNames)))
	}
	for i, r := range b.Rows {
		if i < len(ttdb.QueryNames) && r.Query != ttdb.QueryNames[i] {
			problems = append(problems, fmt.Sprintf("row %d is %q, want %q", i, r.Query, ttdb.QueryNames[i]))
		}
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"NeoMRS", r.NeoMRS}, {"NeoCV", r.NeoCV},
			{"TTDBMRS", r.TTDBMRS}, {"TTDBCV", r.TTDBCV},
			{"Speedup", r.Speedup},
		} {
			if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v < 0 {
				problems = append(problems, fmt.Sprintf("%s.%s = %v not a finite non-negative number", r.Query, m.name, m.v))
			}
		}
	}
	for _, p := range b.Parallel {
		if !p.Identical {
			problems = append(problems, fmt.Sprintf("parallel %s: results differ from sequential", p.Query))
		}
	}
	if len(b.Parallel) > 0 {
		// The parallel comparison must record the resolved fan-out width:
		// Workers=0 in the config means "GOMAXPROCS at run time", which is
		// machine-dependent and unreproducible unless captured.
		if b.Workers < 1 {
			problems = append(problems, "parallel rows present but resolved worker count not recorded")
		}
		if b.Config.EffectiveWorkers != 0 && b.Config.EffectiveWorkers != b.Workers {
			problems = append(problems, fmt.Sprintf(
				"config.effective_workers %d disagrees with workers %d", b.Config.EffectiveWorkers, b.Workers))
		}
	}
	if b.Mixed != nil {
		problems = append(problems, checkMixed(b.Mixed)...)
	}
	if b.Serve != nil {
		problems = append(problems, checkServe(b.Serve)...)
	}
	if b.Metrics != nil {
		problems = append(problems, CheckMetrics(b.Metrics)...)
	}
	if b.Storage != nil {
		problems = append(problems, CheckStorage(b.Storage)...)
	}
	if b.Partitions != nil {
		problems = append(problems, checkPartitions(b.Partitions)...)
	}
	if b.Streaming != nil {
		problems = append(problems, CheckStreaming(b.Streaming)...)
	}
	return problems
}

// checkMixed validates the structural invariants of the mixed read/write
// section: the baseline leg must really be the single-stripe per-record
// configuration, the sharded leg must stripe and batch, throughputs must be
// finite and positive, and the WAL counters must show what each mode claims
// (per-record flushing cannot flush less often than once per append batch;
// group commit must not flush more often than it appends).
func checkMixed(c *MixedComparison) []string {
	var problems []string
	for _, r := range []struct {
		name string
		rep  MixedReport
	}{{"mixed.baseline", c.Baseline}, {"mixed.sharded", c.Sharded}} {
		if r.rep.IngestClients < 1 || r.rep.QueryClients < 1 || r.rep.WindowMS < 1 {
			problems = append(problems, fmt.Sprintf("%s: empty client counts or window", r.name))
		}
		if r.rep.IngestOps < 1 || r.rep.QueryOps < 1 {
			problems = append(problems, fmt.Sprintf(
				"%s: %d writes / %d reads — both kinds must make progress for the run to count as mixed",
				r.name, r.rep.IngestOps, r.rep.QueryOps))
		}
		if math.IsNaN(r.rep.OpsPerSec) || math.IsInf(r.rep.OpsPerSec, 0) || r.rep.OpsPerSec <= 0 {
			problems = append(problems, fmt.Sprintf("%s: ops_per_sec %v not finite and positive", r.name, r.rep.OpsPerSec))
		}
		if r.rep.WALFlushes > r.rep.WALAppends && r.rep.WALAppends > 0 {
			problems = append(problems, fmt.Sprintf("%s: %d flushes exceed %d appends", r.name, r.rep.WALFlushes, r.rep.WALAppends))
		}
		if r.rep.Procs < 1 {
			problems = append(problems, fmt.Sprintf("%s: procs %d not positive", r.name, r.rep.Procs))
		}
	}
	if c.Baseline.Procs != c.Sharded.Procs {
		problems = append(problems, fmt.Sprintf(
			"mixed: legs ran at different widths (procs %d vs %d); the comparison is not like-for-like",
			c.Baseline.Procs, c.Sharded.Procs))
	}
	if c.Baseline.Shards != 1 || c.Baseline.GroupCommit != 1 {
		problems = append(problems, fmt.Sprintf(
			"mixed.baseline: shards=%d group_commit=%d, want the 1/1 single-lock reference", c.Baseline.Shards, c.Baseline.GroupCommit))
	}
	if c.Sharded.Shards < 2 || c.Sharded.GroupCommit < 2 {
		problems = append(problems, fmt.Sprintf(
			"mixed.sharded: shards=%d group_commit=%d, want striping and batching enabled", c.Sharded.Shards, c.Sharded.GroupCommit))
	}
	for _, s := range []struct {
		name string
		v    float64
	}{{"mixed.speedup", c.Speedup}, {"mixed.write_speedup", c.WriteSpeedup}, {"mixed.read_speedup", c.ReadSpeedup}} {
		if math.IsNaN(s.v) || math.IsInf(s.v, 0) || s.v <= 0 {
			problems = append(problems, fmt.Sprintf("%s %v not finite and positive", s.name, s.v))
		}
	}
	return problems
}

// WriteBaseline serializes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses and validates a baseline; structural violations are
// returned as an error listing every problem.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("bench: parsing baseline: %w", err)
	}
	if problems := b.Validate(); len(problems) > 0 {
		return &b, fmt.Errorf("bench: invalid baseline: %v", problems)
	}
	return &b, nil
}

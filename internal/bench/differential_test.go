package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"hygraph/internal/coord"
	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/hyql"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// The differential battery runs Q1–Q8 through every execution path the repo
// has — the all-in-graph engine, the polyglot engine sequential and fanned
// out, the polyglot engine with instrumentation attached, and the HyQL
// surface over the equivalent HyGraph — and requires element-wise identical
// results. Timestamps must match exactly; floats within tolerance (the HyQL
// path may fold sums in a different order than a store pushdown).

// diffTol is the relative float tolerance of the battery.
const diffTol = 1e-9

func diffEq(a, b float64) bool {
	if a == b {
		return true
	}
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= diffTol*m
}

// diffConfigs are the two seeded workloads the battery runs over: a tiny
// coarse-grained network and a denser finer-grained one, so both the
// single-chunk and multi-chunk store paths are exercised.
var diffConfigs = []dataset.BikeConfig{
	{Stations: 12, Districts: 3, Days: 7, StepMinutes: 120, TripsPerSt: 2, Seed: 3},
	{Stations: 20, Districts: 4, Days: 10, StepMinutes: 60, TripsPerSt: 3, Seed: 11},
}

// qResults is one path's canonical answers, keyed by station/district name
// so engines with different internal id spaces compare directly.
type qResults struct {
	q1 []ts.Point
	q2 []ts.Point
	q3 float64
	q4 map[string]float64
	q5 map[string]float64
	q6 []string
	q7 float64
	q8 map[string]float64
}

// engineResults runs the battery against a loaded Table 1 engine, mapping
// station ids to names via generation order (ids[i] is data.Stations[i]).
func engineResults(data *dataset.BikeData, e ttdb.Engine, ids []ttdb.StationID) qResults {
	names := make(map[ttdb.StationID]string, len(ids))
	for i, id := range ids {
		names[id] = data.Stations[i].Name
	}
	byName := func(m map[ttdb.StationID]float64) map[string]float64 {
		out := make(map[string]float64, len(m))
		for id, v := range m {
			out[names[id]] = v
		}
		return out
	}
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2
	st0, st1 := ids[0], ids[len(ids)/2]
	var r qResults
	r.q1 = e.Q1TimeRange(st0, qStart, qStart+2*ts.Day)
	r.q2 = e.Q2FilteredRange(st0, qStart, qEnd, 10)
	r.q3 = e.Q3StationMean(st0, qStart, qEnd)
	r.q4 = byName(e.Q4AllStationMeans(qStart, qEnd))
	r.q5 = e.Q5DistrictSums(qStart, qEnd)
	for _, id := range e.Q6TopKStations(qStart, qEnd, 10) {
		r.q6 = append(r.q6, names[id])
	}
	r.q7 = e.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour)
	r.q8 = byName(e.Q8NeighborMeans(st0, qStart, qEnd))
	return r
}

// hyqlResults runs the battery through the HyQL surface over the HyGraph
// built from the same dataset, querying "as of" the window end.
func hyqlResults(t *testing.T, data *dataset.BikeData) qResults {
	t.Helper()
	h, _ := data.ToHyGraph()
	return hyqlResultsOn(t, data, h)
}

// hyqlResultsOn runs the HyQL battery over an explicit HyGraph — the hook
// the partitioned path uses to prove coord.View() answers identically to
// the dataset-built graph.
func hyqlResultsOn(t *testing.T, data *dataset.BikeData, h *core.HyGraph) qResults {
	t.Helper()
	eng := hyql.NewEngine(h)
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2
	at := qEnd
	name0 := data.Stations[0].Name
	name1 := data.Stations[len(data.Stations)/2].Name

	run := func(src string) *hyql.Result {
		t.Helper()
		res, err := eng.Query(src, at)
		if err != nil {
			t.Fatalf("hyql %q: %v", src, err)
		}
		return res
	}
	one := func(src string) hyql.Value {
		t.Helper()
		res := run(src)
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Fatalf("hyql %q: want 1x1 result, got %dx%d", src, len(res.Rows), len(res.Columns))
		}
		return res.Rows[0][0]
	}
	points := func(v hyql.Value) []ts.Point {
		t.Helper()
		var pts []ts.Point
		for _, pv := range v.List() {
			pair := pv.List()
			if len(pair) != 2 {
				t.Fatalf("point pair has %d elements", len(pair))
			}
			ti, ok := pair[0].AsScalar().AsInt()
			if !ok {
				t.Fatalf("point timestamp not an int: %v", pair[0])
			}
			f, ok := pair[1].AsFloat()
			if !ok {
				t.Fatalf("point value not a float: %v", pair[1])
			}
			pts = append(pts, ts.Point{T: ts.Time(ti), V: f})
		}
		return pts
	}
	nameMap := func(res *hyql.Result) map[string]float64 {
		t.Helper()
		out := make(map[string]float64, len(res.Rows))
		for _, row := range res.Rows {
			n, ok := row[0].AsScalar().AsString()
			if !ok {
				t.Fatalf("row key not a string: %v", row[0])
			}
			f, ok := row[1].AsFloat()
			if !ok {
				t.Fatalf("row value not numeric: %v", row[1])
			}
			out[n] = f
		}
		return out
	}

	var r qResults
	r.q1 = points(one(fmt.Sprintf(
		`MATCH (st:Station)-[:HAS_SERIES]->(a) WHERE st.name = '%s'
		 RETURN ts.points(a, %d, %d)`, name0, qStart, qStart+2*ts.Day)))
	r.q2 = points(one(fmt.Sprintf(
		`MATCH (st:Station)-[:HAS_SERIES]->(a) WHERE st.name = '%s'
		 RETURN ts.below(a, %d, %d, 10)`, name0, qStart, qEnd)))
	q3v, ok := one(fmt.Sprintf(
		`MATCH (st:Station)-[:HAS_SERIES]->(a) WHERE st.name = '%s'
		 RETURN ts.mean(a, %d, %d)`, name0, qStart, qEnd)).AsFloat()
	if !ok {
		t.Fatal("Q3 mean not numeric")
	}
	r.q3 = q3v
	r.q4 = nameMap(run(fmt.Sprintf(
		`MATCH (st:Station)-[:HAS_SERIES]->(a)
		 RETURN st.name, ts.mean(a, %d, %d)`, qStart, qEnd)))
	r.q5 = nameMap(run(fmt.Sprintf(
		`MATCH (st:Station)-[:HAS_SERIES]->(a)
		 RETURN st.district, sum(ts.sum(a, %d, %d))`, qStart, qEnd)))
	top := run(fmt.Sprintf(
		`MATCH (st:Station)-[:HAS_SERIES]->(a)
		 RETURN st.name AS name, ts.mean(a, %d, %d) AS m
		 ORDER BY m DESC, name LIMIT 10`, qStart, qEnd))
	for _, row := range top.Rows {
		n, _ := row[0].AsScalar().AsString()
		r.q6 = append(r.q6, n)
	}
	q7v, ok := one(fmt.Sprintf(
		`MATCH (x:Station)-[:HAS_SERIES]->(a), (y:Station)-[:HAS_SERIES]->(b)
		 WHERE x.name = '%s' AND y.name = '%s'
		 RETURN ts.corr(a, b, %d, %d, %d)`, name0, name1, qStart, qEnd, ts.Hour)).AsFloat()
	if !ok {
		t.Fatal("Q7 corr not numeric")
	}
	r.q7 = q7v
	r.q8 = nameMap(run(fmt.Sprintf(
		`MATCH (st:Station)-[:TRIP]-(n:Station)-[:HAS_SERIES]->(a)
		 WHERE st.name = '%s'
		 RETURN DISTINCT n.name, ts.mean(a, %d, %d)`, name0, qStart, qEnd)))
	return r
}

// comparePaths asserts two paths produced element-wise identical answers.
func comparePaths(t *testing.T, label string, want, got qResults) {
	t.Helper()
	cmpPoints := func(q string, a, b []ts.Point) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s %s: %d vs %d points", label, q, len(a), len(b))
		}
		for i := range a {
			if a[i].T != b[i].T {
				t.Fatalf("%s %s[%d]: time %d vs %d", label, q, i, a[i].T, b[i].T)
			}
			if !diffEq(a[i].V, b[i].V) {
				t.Fatalf("%s %s[%d]: value %v vs %v", label, q, i, a[i].V, b[i].V)
			}
		}
	}
	cmpMap := func(q string, a, b map[string]float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s %s: %d vs %d entries (%v vs %v)", label, q, len(a), len(b), a, b)
		}
		for k, av := range a {
			bv, ok := b[k]
			if !ok {
				t.Fatalf("%s %s: missing key %q", label, q, k)
			}
			if !diffEq(av, bv) {
				t.Fatalf("%s %s[%s]: %v vs %v", label, q, k, av, bv)
			}
		}
	}
	cmpPoints("Q1", want.q1, got.q1)
	cmpPoints("Q2", want.q2, got.q2)
	if !diffEq(want.q3, got.q3) {
		t.Fatalf("%s Q3: %v vs %v", label, want.q3, got.q3)
	}
	cmpMap("Q4", want.q4, got.q4)
	cmpMap("Q5", want.q5, got.q5)
	if len(want.q6) != len(got.q6) {
		t.Fatalf("%s Q6: %v vs %v", label, want.q6, got.q6)
	}
	for i := range want.q6 {
		if want.q6[i] != got.q6[i] {
			t.Fatalf("%s Q6[%d]: %q vs %q (%v vs %v)", label, i, want.q6[i], got.q6[i], want.q6, got.q6)
		}
	}
	if !diffEq(want.q7, got.q7) {
		t.Fatalf("%s Q7: %v vs %v", label, want.q7, got.q7)
	}
	cmpMap("Q8", want.q8, got.q8)
}

func TestDifferentialBattery(t *testing.T) {
	for ci, bike := range diffConfigs {
		bike := bike
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			data := dataset.GenerateBike(bike)
			load := func(e ttdb.Engine) []ttdb.StationID {
				ids, err := data.LoadEngine(e)
				if err != nil {
					t.Fatal(err)
				}
				return ids
			}
			neo := ttdb.NewAllInGraph()
			ref := engineResults(data, neo, load(neo))

			seq := ttdb.NewPolyglot(ts.Week)
			idsSeq := load(seq)
			seq.SetWorkers(1)
			comparePaths(t, "ttdb-seq", ref, engineResults(data, seq, idsSeq))

			// Chunk compression is on by default, so the paths above already
			// run over sealed blocks. Pin the raw layout explicitly, then the
			// full tier: spilled to disk, cold (empty block cache) and warm.
			raw := ttdb.NewPolyglot(ts.Week)
			raw.T.SetCompress(false)
			idsRaw := load(raw)
			comparePaths(t, "ttdb-raw", ref, engineResults(data, raw, idsRaw))

			tiered := ttdb.NewPolyglot(ts.Week)
			idsTiered := load(tiered)
			if err := tiered.T.EnableColdTier(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			if _, err := tiered.T.Spill(); err != nil {
				t.Fatal(err)
			}
			tiered.T.DropBlockCache()
			comparePaths(t, "ttdb-tiered-cold", ref, engineResults(data, tiered, idsTiered))
			comparePaths(t, "ttdb-tiered-warm", ref, engineResults(data, tiered, idsTiered))
			if err := tiered.T.Err(); err != nil {
				t.Fatalf("tiered path degraded: %v", err)
			}

			par := ttdb.NewPolyglot(ts.Week)
			idsPar := load(par)
			par.SetWorkers(4)
			comparePaths(t, "ttdb-par", ref, engineResults(data, par, idsPar))

			// Instrumentation attached must not change a single element,
			// and the per-query timers must actually fire.
			reg := obs.New()
			ins := ttdb.NewPolyglot(ts.Week)
			idsIns := load(ins)
			ins.SetWorkers(4)
			ins.Instrument(reg)
			comparePaths(t, "ttdb-instrumented", ref, engineResults(data, ins, idsIns))
			snap := reg.Snapshot()
			for _, q := range ttdb.QueryNames {
				name := "ttdb." + strings.ToLower(q)
				if st := snap.Durations[name]; st.Count == 0 {
					t.Fatalf("instrumented path: timer %s never fired", name)
				}
			}
			if snap.Counters["tsstore.reads"] == 0 {
				t.Fatal("instrumented path: no store reads recorded")
			}

			comparePaths(t, "hyql", ref, hyqlResults(t, data))

			// Partitioned paths: the scatter-gather coordinator at 1, 2 and 4
			// partitions must be element-wise identical to the oracles, both
			// through the Engine surface and through HyQL over its view —
			// partition count is an execution detail, never an answer change.
			for _, nparts := range []int{1, 2, 4} {
				co, err := coord.NewMem(nparts, ts.Week)
				if err != nil {
					t.Fatal(err)
				}
				idsCo := load(co)
				label := fmt.Sprintf("coord-%dp", nparts)
				comparePaths(t, label, ref, engineResults(data, co, idsCo))
				co.SetWorkers(2)
				comparePaths(t, label+"-par", ref, engineResults(data, co, idsCo))
				comparePaths(t, label+"-hyql", ref, hyqlResultsOn(t, data, co.View()))
			}
		})
	}
}

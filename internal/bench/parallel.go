package bench

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"hygraph/internal/dataset"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// ParallelRow compares one multi-station query sequential vs fanned-out on
// the polyglot engine.
type ParallelRow struct {
	Query   string
	Desc    string
	SeqMRS  float64 // ms, workers=1
	SeqCV   float64 // %
	ParMRS  float64 // ms, workers=N
	ParCV   float64 // %
	Speedup float64 // SeqMRS / ParMRS
	// Identical reports whether the parallel result was deep-equal to the
	// sequential one — the correctness gate of the parallel executor.
	Identical bool
}

// ParallelQueries are the multi-station queries the worker pool fans out.
// Q7 rides along to exercise the resample cache under the same harness.
var ParallelQueries = []string{"Q4", "Q5", "Q6", "Q7", "Q8"}

// RunParallel loads the polyglot engine once and times Q4–Q8 sequentially
// (workers=1) and fanned out (cfg.Workers, defaulting to GOMAXPROCS when
// unset), verifying that both modes return identical results. Workers
// reports the fan-out width actually used.
func RunParallel(cfg Config) (rows []ParallelRow, workers int, err error) {
	workers = cfg.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	data := dataset.GenerateBike(cfg.Bike)
	pg := ttdb.NewPolyglot(ts.Week)
	ids, err := data.LoadEngine(pg)
	if err != nil {
		return nil, 0, fmt.Errorf("bench: loading %s: %w", pg.Name(), err)
	}
	if cfg.Obs != nil {
		pg.Instrument(cfg.Obs)
	}
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2
	st0, st1 := ids[0], ids[len(ids)/2]

	// Each query returns its result so the two modes can be compared.
	query := func(q string) any {
		switch q {
		case "Q4":
			return pg.Q4AllStationMeans(qStart, qEnd)
		case "Q5":
			return pg.Q5DistrictSums(qStart, qEnd)
		case "Q6":
			return pg.Q6TopKStations(qStart, qEnd, 10)
		case "Q7":
			return pg.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour)
		case "Q8":
			return pg.Q8NeighborMeans(st0, qStart, qEnd)
		}
		panic("bench: unknown parallel query " + q)
	}
	measure := func(q string) (res any, mrs, cv float64) {
		res = query(q) // warm-up rep, not measured
		samples := make([]float64, 0, cfg.Reps)
		for r := 0; r < cfg.Reps; r++ {
			t0 := time.Now()
			query(q)
			samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e6)
		}
		mrs, cv = stats(samples)
		return res, mrs, cv
	}

	for _, q := range ParallelQueries {
		row := ParallelRow{Query: q, Desc: ttdb.Describe(q)}
		pg.SetWorkers(1)
		seqRes, seqMRS, seqCV := measure(q)
		pg.SetWorkers(workers)
		parRes, parMRS, parCV := measure(q)
		row.SeqMRS, row.SeqCV = seqMRS, seqCV
		row.ParMRS, row.ParCV = parMRS, parCV
		if parMRS > 0 {
			row.Speedup = seqMRS / parMRS
		}
		row.Identical = reflect.DeepEqual(seqRes, parRes)
		rows = append(rows, row)
	}
	return rows, workers, nil
}

// FormatParallel renders the sequential-vs-parallel comparison.
func FormatParallel(rows []ParallelRow, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "polyglot engine, %d workers\n", workers)
	fmt.Fprintf(&b, "%-5s %12s %8s %12s %8s %10s %10s  %s\n",
		"Query", "sequential", "CV(%)", "parallel", "CV(%)", "speedup", "identical", "description")
	fmt.Fprintf(&b, "%-5s %12s %8s %12s %8s %10s %10s\n",
		"", "MRS (ms)", "", "MRS (ms)", "", "", "")
	fmt.Fprintln(&b, strings.Repeat("-", 110))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %12.3f %8.2f %12.3f %8.2f %9.2fx %10v  %s\n",
			r.Query, r.SeqMRS, r.SeqCV, r.ParMRS, r.ParCV, r.Speedup, r.Identical, r.Desc)
	}
	return b.String()
}

package bench

import (
	"math"
	"testing"
	"time"
)

// The guards below are the reason the helpers live in one file: every bench
// section (Table 1, storage, serve, partitions) folds raw samples through
// them, and a re-derived copy once shipped a ±Inf CV on a zero mean.

func TestStats(t *testing.T) {
	mean, cv := stats([]float64{10, 10, 10})
	if mean != 10 || cv != 0 {
		t.Fatalf("constant samples: mean=%v cv=%v", mean, cv)
	}
	// Sample (n−1) convention: {5, 15} has sd = sqrt(50/1) ≈ 7.0711,
	// CV ≈ 70.711% — not the population formula's 50%.
	mean, cv = stats([]float64{5, 15})
	if want := 100 * math.Sqrt(50) / 10; mean != 10 || math.Abs(cv-want) > 1e-9 {
		t.Fatalf("spread samples: mean=%v cv=%v want cv=%v", mean, cv, want)
	}
	if m, c := stats(nil); m != 0 || c != 0 {
		t.Fatalf("empty samples: %v %v", m, c)
	}
	// Single sample: no spread estimate exists, CV must stay 0.
	if m, c := stats([]float64{42}); m != 42 || c != 0 {
		t.Fatalf("single sample: %v %v", m, c)
	}
	// Zero mean must not divide through to ±Inf.
	if m, c := stats([]float64{-5, 5}); m != 0 || c != 0 {
		t.Fatalf("zero-mean samples: %v %v", m, c)
	}
}

func TestMinSample(t *testing.T) {
	if m := minSample(nil); m != 0 {
		t.Fatalf("empty sample min = %v, want 0", m)
	}
	if m := minSample([]float64{7}); m != 7 {
		t.Fatalf("single sample min = %v, want 7", m)
	}
	if m := minSample([]float64{3, 1, 2}); m != 1 {
		t.Fatalf("min = %v, want 1", m)
	}
	if m := minSample([]float64{-3, 1, 2}); m != -3 {
		t.Fatalf("negative min = %v, want -3", m)
	}
}

func TestQuantilesMS(t *testing.T) {
	if p50, p99 := quantilesMS(nil); p50 != 0 || p99 != 0 {
		t.Fatalf("empty sample: %v %v", p50, p99)
	}
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	p50, p99 := quantilesMS(lat)
	if p50 != 50 || p99 != 99 {
		t.Fatalf("quantiles of 1..100ms: p50=%v p99=%v", p50, p99)
	}
}

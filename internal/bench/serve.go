package bench

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"time"

	"hygraph/internal/server"
	"hygraph/internal/server/client"
)

// The served-workload benchmark: an open-loop load generator against the
// network query service (internal/server), measuring what an offered
// request rate turns into — served QPS, client-observed latency quantiles,
// shed rate, deadline-miss rate — at multiple load levels around the
// admission limit. Open loop matters: a closed loop (next request waits for
// the last response) self-throttles under overload and can never observe
// shedding; an open loop keeps offering at the configured rate exactly like
// an outside client population does.

// ServeTenantLat is one tenant's client-observed latency summary.
type ServeTenantLat struct {
	Tenant string  `json:"tenant"`
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// ServeLevel is the outcome of one offered-load level.
type ServeLevel struct {
	OfferedQPS float64 `json:"offered_qps"`
	// BelowLimit marks the level as provisioned under the per-tenant
	// admission rate, where the service must degrade (almost) nothing.
	BelowLimit     bool             `json:"below_limit"`
	Offered        int64            `json:"offered"`
	Completed      int64            `json:"completed"`
	Shed           int64            `json:"shed"`
	DeadlineMisses int64            `json:"deadline_misses"`
	Errors         int64            `json:"errors"`
	ServedQPS      float64          `json:"served_qps"`
	P50MS          float64          `json:"p50_ms"`
	P99MS          float64          `json:"p99_ms"`
	ShedRate       float64          `json:"shed_rate"`
	MissRate       float64          `json:"miss_rate"`
	PerTenant      []ServeTenantLat `json:"per_tenant,omitempty"`
}

// ServeReport is the served-workload section of the baseline.
type ServeReport struct {
	Tenants       int          `json:"tenants"`
	Stations      int          `json:"stations"` // per tenant
	RatePerTenant float64      `json:"rate_per_tenant"`
	MaxConcurrent int          `json:"max_concurrent"`
	WindowMS      int64        `json:"window_ms"`
	Levels        []ServeLevel `json:"levels"`
}

// ServeConfig parameterizes RunServe. Zero fields select defaults sized for
// a sub-second smoke on small hardware.
type ServeConfig struct {
	Tenants       int     // namespaces under load (default 2)
	Stations      int     // stations seeded per tenant (default 16)
	RatePerTenant float64 // admission token-bucket rate, req/s (default 400)
	WindowMS      int     // measured window per level, ms (default 500)
	// Multipliers pick the offered-load levels as fractions of the total
	// admitted capacity (Tenants × RatePerTenant). Default {0.5, 4}: one
	// level comfortably below the admission limit, one far above it.
	Multipliers []float64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.Stations <= 0 {
		c.Stations = 16
	}
	if c.RatePerTenant <= 0 {
		c.RatePerTenant = 400
	}
	if c.WindowMS <= 0 {
		c.WindowMS = 500
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{0.5, 4}
	}
	return c
}

// outcome is one request's client-side result.
type outcome struct {
	tenant  int
	latency time.Duration
	status  int // 0 = transport error
}

// RunServe boots the query service on a loopback listener, seeds the
// tenants through the real ingest API, and drives the open-loop generator
// at each configured level. The server is drained and stopped before
// returning, so the report covers a full service lifecycle. ctx bounds the
// whole run — seeding, every fired request, and everything in between;
// cancelling it abandons the benchmark mid-level.
func RunServe(ctx context.Context, sc ServeConfig) (ServeReport, error) {
	sc = sc.withDefaults()

	srv, err := server.New(server.Config{
		Limits: server.Limits{
			TenantRate:  sc.RatePerTenant,
			TenantBurst: math.Max(1, sc.RatePerTenant/10),
		},
		Backend:        server.NewMemBackend(),
		DefaultTimeout: time.Second,
	})
	if err != nil {
		return ServeReport{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeReport{}, err
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		// Drain on the benchmark's own context, detached from cancellation:
		// even an aborted run must flush what the server accepted, but never
		// for longer than the drain budget.
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	rep := ServeReport{
		Tenants:       sc.Tenants,
		Stations:      sc.Stations,
		RatePerTenant: sc.RatePerTenant,
		MaxConcurrent: server.Limits{}.Resolved().MaxConcurrent,
		WindowMS:      int64(sc.WindowMS),
	}

	// Seed each tenant through the service's own ingest path. Seeding runs
	// under the same rate limit as the benchmark, so pace it with retries.
	seedClient, err := client.New(client.Config{
		Base: base, MaxAttempts: 20, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 50 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		return rep, err
	}
	pts := make([]client.Point, 24)
	for i := range pts {
		pts[i] = client.Point{T: int64(i * 60), V: float64(10 + i%7)}
	}
	for tn := 0; tn < sc.Tenants; tn++ {
		tenant := fmt.Sprintf("bench%d", tn)
		for st := 0; st < sc.Stations; st++ {
			name := fmt.Sprintf("s%d", st)
			if _, err := seedClient.IngestStation(ctx, tenant,
				name, fmt.Sprintf("d%d", st%4), pts, "seed-"+tenant+"-"+name); err != nil {
				return rep, fmt.Errorf("bench: seeding %s/%s: %w", tenant, name, err)
			}
		}
	}

	capacity := sc.RatePerTenant * float64(sc.Tenants)
	for _, mult := range sc.Multipliers {
		lvl, err := runServeLevel(ctx, base, sc, capacity*mult, mult <= 1)
		if err != nil {
			return rep, err
		}
		rep.Levels = append(rep.Levels, lvl)
	}
	return rep, nil
}

// runServeLevel offers requests at offeredQPS for the window and tallies
// outcomes. Every fired request carries ctx, so cancelling the benchmark
// cancels the whole in-flight population.
func runServeLevel(ctx context.Context, base string, sc ServeConfig, offeredQPS float64, belowLimit bool) (ServeLevel, error) {
	window := time.Duration(sc.WindowMS) * time.Millisecond
	interval := time.Duration(float64(time.Second) / offeredQPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	total := int(window / interval)
	if total < 1 {
		total = 1
	}

	// A generously sized transport: open-loop overload means many
	// concurrent in-flight requests, and the default two idle conns per
	// host would serialize them on dialing.
	httpc := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
		Timeout: 5 * time.Second,
	}
	defer httpc.CloseIdleConnections()

	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		// Open loop: fire at the scheduled instant regardless of how many
		// responses are still outstanding.
		if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := i % sc.Tenants
			st := (i / sc.Tenants) % sc.Stations
			q := url.Values{
				"name":    {[]string{"Q1", "Q3", "Q8"}[i%3]},
				"station": {fmt.Sprint(st)},
				"start":   {"0"}, "end": {"100000"},
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf(
				"%s/v1/tenants/bench%d/query?%s", base, tn, q.Encode()), nil)
			if err != nil {
				outcomes[i] = outcome{tenant: tn}
				return
			}
			req.Header.Set("X-Timeout-MS", "1000")
			t0 := time.Now()
			resp, err := httpc.Do(req)
			lat := time.Since(t0)
			if err != nil {
				outcomes[i] = outcome{tenant: tn, latency: lat}
				return
			}
			resp.Body.Close()
			outcomes[i] = outcome{tenant: tn, latency: lat, status: resp.StatusCode}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lvl := ServeLevel{
		OfferedQPS: offeredQPS,
		BelowLimit: belowLimit,
		Offered:    int64(total),
	}
	latencies := map[int][]time.Duration{}
	var completedLat []time.Duration
	for _, o := range outcomes {
		switch {
		case o.status == http.StatusOK:
			lvl.Completed++
			latencies[o.tenant] = append(latencies[o.tenant], o.latency)
			completedLat = append(completedLat, o.latency)
		case o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable:
			lvl.Shed++
		case o.status == http.StatusGatewayTimeout:
			lvl.DeadlineMisses++
		default:
			lvl.Errors++
		}
	}
	lvl.ServedQPS = float64(lvl.Completed) / elapsed.Seconds()
	lvl.P50MS, lvl.P99MS = quantilesMS(completedLat)
	lvl.ShedRate = float64(lvl.Shed) / float64(lvl.Offered)
	lvl.MissRate = float64(lvl.DeadlineMisses) / float64(lvl.Offered)
	for tn := 0; tn < sc.Tenants; tn++ {
		p50, p99 := quantilesMS(latencies[tn])
		lvl.PerTenant = append(lvl.PerTenant, ServeTenantLat{
			Tenant: fmt.Sprintf("bench%d", tn),
			Count:  int64(len(latencies[tn])),
			P50MS:  p50, P99MS: p99,
		})
	}
	return lvl, nil
}

// checkServe validates the served-workload section: at least two levels
// spanning the admission limit, exact outcome accounting, finite rates, and
// the headline SLO — a deadline-miss rate under 1% when provisioned below
// the admission limit.
func checkServe(r *ServeReport) []string {
	var problems []string
	if len(r.Levels) < 2 {
		problems = append(problems, fmt.Sprintf("serve: %d load levels, want >= 2", len(r.Levels)))
	}
	var below, above bool
	for i, l := range r.Levels {
		name := fmt.Sprintf("serve.levels[%d]", i)
		if l.BelowLimit {
			below = true
		} else {
			above = true
		}
		if l.Offered < 1 {
			problems = append(problems, name+": no requests offered")
			continue
		}
		if got := l.Completed + l.Shed + l.DeadlineMisses + l.Errors; got != l.Offered {
			problems = append(problems, fmt.Sprintf(
				"%s: outcomes %d != offered %d — requests vanished unaccounted", name, got, l.Offered))
		}
		for _, m := range []struct {
			n string
			v float64
		}{
			{"offered_qps", l.OfferedQPS}, {"served_qps", l.ServedQPS},
			{"p50_ms", l.P50MS}, {"p99_ms", l.P99MS},
			{"shed_rate", l.ShedRate}, {"miss_rate", l.MissRate},
		} {
			if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v < 0 {
				problems = append(problems, fmt.Sprintf("%s.%s = %v not finite and non-negative", name, m.n, m.v))
			}
		}
		if l.Completed > 0 && l.P99MS < l.P50MS {
			problems = append(problems, fmt.Sprintf("%s: p99 %.3fms below p50 %.3fms", name, l.P99MS, l.P50MS))
		}
		if l.BelowLimit {
			if l.MissRate >= 0.01 {
				problems = append(problems, fmt.Sprintf(
					"%s: deadline-miss rate %.4f >= 1%% below the admission limit", name, l.MissRate))
			}
			if l.Completed == 0 {
				problems = append(problems, name+": below-limit level served nothing")
			}
		}
	}
	if len(r.Levels) >= 2 {
		if !below {
			problems = append(problems, "serve: no below-limit level recorded")
		}
		if !above {
			problems = append(problems, "serve: no above-limit level recorded")
		}
	}
	return problems
}

// FormatServe renders the served-workload section as an aligned table.
func FormatServe(r ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Served workload — %d tenants × %d stations, %g req/s admitted per tenant, %dms window (procs=%d)\n",
		r.Tenants, r.Stations, r.RatePerTenant, r.WindowMS, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-12s %10s %10s %9s %9s %9s %9s\n",
		"offered", "served", "p50", "p99", "shed", "missed", "errors")
	for _, l := range r.Levels {
		tag := ""
		if l.BelowLimit {
			tag = " (below limit)"
		}
		fmt.Fprintf(&b, "%-12s %10.0f %8.2fms %7.2fms %8.1f%% %8.2f%% %9d%s\n",
			fmt.Sprintf("%.0f qps", l.OfferedQPS), l.ServedQPS, l.P50MS, l.P99MS,
			l.ShedRate*100, l.MissRate*100, l.Errors, tag)
	}
	return b.String()
}

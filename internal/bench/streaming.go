package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hygraph/internal/dataset"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// The streaming section measures what write-through delta maintenance of
// the continuous-aggregate cache buys under sustained ingest: aggregate-read
// latency (p50/p99) and read-your-writes staleness (append-acknowledged to
// visible-in-the-aggregate, p50/p99) while open-loop writers stream points
// into the very windows the readers aggregate. Two legs over the identical
// workload and engine configuration differ only in the maintenance strategy:
// incremental (writes patch the owning bucket in place) vs recompute (writes
// invalidate the cached window, so every post-write read rebuilds it from
// the raw points). Both legs must pass the structural identity gate — the
// final cached aggregates element-wise equal (1e-9) to a from-scratch
// resample — so the speedup is never bought with wrong answers.

// StreamingConfig scopes one streaming-aggregates run.
type StreamingConfig struct {
	IngestClients int `json:"ingest_clients"`
	ReadClients   int `json:"read_clients"`
	// IngestRate is the offered append rate per ingest client in ops/sec
	// (open-loop pacing, same discipline as the mixed section). 0 means 4000.
	IngestRate int `json:"ingest_rate"`
	// ReadRate is the offered aggregate-read rate per read client in ops/sec.
	// Reads are paced, not closed-loop: a free-running reader would revisit
	// each station many times between writes, so most recompute-leg reads
	// would hit a still-valid cache and the comparison would measure nothing.
	// Paced below the aggregate write rate, consecutive reads of a station
	// usually have an intervening append — the live-dashboard access pattern
	// the continuous-aggregate store exists for. 0 means 2000.
	ReadRate int `json:"read_rate"`
	// WindowMS is the measured window in milliseconds. 0 means 150.
	WindowMS int `json:"window_ms"`
	// Stations bounds the station subset both writers and readers touch, so
	// the aggregate windows under test stay resident in the resample cache.
	// 0 means min(64, dataset stations).
	Stations int `json:"stations"`
	// Procs pins GOMAXPROCS for the measured phase. 0 means ingest+read.
	Procs int `json:"procs"`
}

// StreamingLeg is one maintenance strategy's measurements.
type StreamingLeg struct {
	Mode          string  `json:"mode"` // "incremental" or "recompute"
	Shards        int     `json:"shards"`
	GroupCommit   int     `json:"group_commit"`
	Procs         int     `json:"procs"`
	IngestClients int     `json:"ingest_clients"`
	ReadClients   int     `json:"read_clients"`
	IngestRate    int     `json:"ingest_rate"`
	ReadRate      int     `json:"read_rate"`
	WindowMS      int     `json:"window_ms"`
	IngestOps     int64   `json:"ingest_ops"`
	ReadOps       int64   `json:"read_ops"`
	IngestPerSec  float64 `json:"ingest_per_sec"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
	// ReadP50MS/ReadP99MS are aggregate-read latencies under the offered
	// write load; StaleP50MS/StaleP99MS are ingest-to-visible times (from
	// just before AppendPoint until a read returns the aggregate covering
	// the appended point's bucket).
	ReadP50MS  float64 `json:"read_p50_ms"`
	ReadP99MS  float64 `json:"read_p99_ms"`
	StaleP50MS float64 `json:"stale_p50_ms"`
	StaleP99MS float64 `json:"stale_p99_ms"`
	// Cache deltas over the measured phase: the incremental leg must patch
	// and never invalidate on the streamed appends; the recompute leg the
	// reverse.
	CachePatches       int64 `json:"cache_patches"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	// Identical is the structural gate: after the measured phase, the cached
	// aggregates equal a from-scratch resample of the raw points.
	Identical bool `json:"identical"`
}

// StreamingReport pairs the two legs with the headline ratios.
type StreamingReport struct {
	Incremental StreamingLeg `json:"incremental"`
	Recompute   StreamingLeg `json:"recompute"`
	// SpeedupP50/SpeedupP99 are recompute read latency / incremental read
	// latency — how much cheaper an aggregate read is when sustained ingest
	// patches buckets instead of invalidating windows.
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
	// IngestRatio is incremental/recompute served ingest throughput at the
	// identical offered rate: write-through maintenance must not buy read
	// latency with write throughput.
	IngestRatio float64 `json:"ingest_ratio"`
	// Cores is runtime.NumCPU() at run time; the latency-speedup gate only
	// binds on machines with at least 4.
	Cores int `json:"cores"`
}

// streamBucket is the aggregate-read granularity: day buckets over hourly
// raw data put ~24 points behind every bucket, so a recompute pays a full
// window scan where a patched read pays a clone of the bucket list.
const streamBucket = ts.Day

// streamAggs is the identity-gate aggregate mix: the O(1)-delta family plus
// a rescan-only member.
var streamAggs = []ts.AggFunc{ts.AggMean, ts.AggSum, ts.AggMin, ts.AggMax, ts.AggCount, ts.AggStd}

func (sc StreamingConfig) withDefaults(nStations int) StreamingConfig {
	if sc.IngestClients <= 0 {
		sc.IngestClients = 4
	}
	if sc.ReadClients <= 0 {
		sc.ReadClients = 4
	}
	if sc.IngestRate <= 0 {
		sc.IngestRate = 4000
	}
	if sc.ReadRate <= 0 {
		sc.ReadRate = 2000
	}
	if sc.WindowMS <= 0 {
		sc.WindowMS = 150
	}
	if sc.Stations <= 0 || sc.Stations > nStations {
		sc.Stations = nStations
		if sc.Stations > 64 {
			sc.Stations = 64
		}
	}
	if sc.Procs <= 0 {
		sc.Procs = sc.IngestClients + sc.ReadClients
	}
	return sc
}

// streamingLeg runs one maintenance strategy over a fresh durable engine.
func streamingLeg(data *dataset.BikeData, sc StreamingConfig, writeThrough bool) (StreamingLeg, error) {
	mode := "incremental"
	if !writeThrough {
		mode = "recompute"
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(sc.Procs))

	dir, err := os.MkdirTemp("", "hybench-streaming-")
	if err != nil {
		return StreamingLeg{}, fmt.Errorf("bench: streaming temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	logs := make([]*os.File, 0, 3)
	defer func() {
		for _, f := range logs {
			f.Close()
		}
	}()
	for _, name := range []string{"graph.wal", "ts.wal", "intent.journal"} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return StreamingLeg{}, fmt.Errorf("bench: streaming log file: %w", err)
		}
		logs = append(logs, f)
	}

	const groupCommit = 64
	eng := ttdb.NewPolyglotSharded(ts.Week, tsstore.DefaultShards)
	eng.T.SetWriteThrough(writeThrough)
	d := ttdb.ResumeDurable(eng, logs[0], logs[1], logs[2], 0)
	d.SetGroupCommit(groupCommit)

	ids := make([]ttdb.StationID, 0, sc.Stations)
	for i := 0; i < sc.Stations; i++ {
		st := data.Stations[i]
		id, err := d.IngestStation(st.Name, st.District, st.Availability)
		if err != nil {
			return StreamingLeg{}, fmt.Errorf("bench: streaming preload %s: %w", st.Name, err)
		}
		ids = append(ids, id)
	}
	_, end := data.Span()

	// Warm every station's aggregate window once, so the measured phase
	// exercises maintenance (patch vs invalidate+recompute), not cold misses.
	readOne := func(st ttdb.StationID) ([]ts.Point, error) {
		return d.Downsample(st, 0, ts.MaxTime, streamBucket, ts.AggMean)
	}
	for _, st := range ids {
		if _, err := readOne(st); err != nil {
			return StreamingLeg{}, fmt.Errorf("bench: streaming warmup: %w", err)
		}
	}

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	pre := eng.T.ResampleCacheStats()
	var tsSeq atomic.Int64
	var nIngest, nRead atomic.Int64
	readLat := make([][]time.Duration, sc.ReadClients)
	staleLat := make([][]time.Duration, sc.IngestClients)

	window := time.Duration(sc.WindowMS) * time.Millisecond
	const slot = 5 * time.Millisecond
	perSlot := sc.IngestRate * int(slot) / int(time.Second)
	if perSlot < 1 {
		perSlot = 1
	}
	readsPerSlot := sc.ReadRate * int(slot) / int(time.Second)
	if readsPerSlot < 1 {
		readsPerSlot = 1
	}

	var wg sync.WaitGroup
	t0 := time.Now()
	deadline := t0.Add(window)
	for c := 0; c < sc.IngestClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				next := now.Add(slot)
				for i := 0; i < perSlot; i++ {
					st := ids[(c*31+op)%len(ids)]
					t := end + ts.Time(tsSeq.Add(1))*ts.Minute
					// Every 16th append is a staleness probe: append, then
					// read the aggregate until the appended point's bucket is
					// covered. Write-through makes the first read suffice; the
					// measurement is honest either way.
					if op%16 == 0 {
						probe := time.Now()
						if err := d.AppendPoint(st, t, float64(op%48)); err != nil {
							fail(fmt.Errorf("bench: streaming ingest client %d: %w", c, err))
							return
						}
						want := ts.BucketStart(t, streamBucket)
						for {
							pts, err := readOne(st)
							if err != nil {
								fail(err)
								return
							}
							if len(pts) > 0 && pts[len(pts)-1].T >= want {
								break
							}
						}
						staleLat[c] = append(staleLat[c], time.Since(probe))
					} else if err := d.AppendPoint(st, t, float64(op%48)); err != nil {
						fail(fmt.Errorf("bench: streaming ingest client %d: %w", c, err))
						return
					}
					op++
					nIngest.Add(1)
				}
				if now = time.Now(); now.Before(next) {
					time.Sleep(next.Sub(now))
				}
			}
		}(c)
	}
	for c := 0; c < sc.ReadClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				next := now.Add(slot)
				for i := 0; i < readsPerSlot; i++ {
					st := ids[(c*7919+op)%len(ids)]
					r0 := time.Now()
					if _, err := readOne(st); err != nil {
						fail(fmt.Errorf("bench: streaming read client %d: %w", c, err))
						return
					}
					readLat[c] = append(readLat[c], time.Since(r0))
					op++
					nRead.Add(1)
				}
				if now = time.Now(); now.Before(next) {
					time.Sleep(next.Sub(now))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return StreamingLeg{}, firstErr
	}
	post := eng.T.ResampleCacheStats()

	leg := StreamingLeg{
		Mode:          mode,
		Shards:        tsstore.DefaultShards,
		GroupCommit:   groupCommit,
		Procs:         sc.Procs,
		IngestClients: sc.IngestClients,
		ReadClients:   sc.ReadClients,
		IngestRate:    sc.IngestRate,
		ReadRate:      sc.ReadRate,
		WindowMS:      sc.WindowMS,
		IngestOps:     nIngest.Load(),
		ReadOps:       nRead.Load(),

		CachePatches:       post.Patches - pre.Patches,
		CacheInvalidations: post.Invalidations - pre.Invalidations,
		CacheHits:          post.Hits - pre.Hits,
		CacheMisses:        post.Misses - pre.Misses,
	}
	if s := elapsed.Seconds(); s > 0 {
		leg.IngestPerSec = float64(leg.IngestOps) / s
		leg.ReadsPerSec = float64(leg.ReadOps) / s
	}
	var allReads, allStale []time.Duration
	for _, l := range readLat {
		allReads = append(allReads, l...)
	}
	for _, l := range staleLat {
		allStale = append(allStale, l...)
	}
	leg.ReadP50MS, leg.ReadP99MS = quantilesMS(allReads)
	leg.StaleP50MS, leg.StaleP99MS = quantilesMS(allStale)

	// Structural identity gate: the cached aggregates (whatever mix of
	// patched, rescanned, and recomputed buckets they hold) must equal a
	// from-scratch resample of the raw points, element-wise within 1e-9.
	leg.Identical = true
check:
	for _, st := range ids {
		raw, err := d.Q1TimeRange(st, 0, ts.MaxTime)
		if err != nil {
			return StreamingLeg{}, err
		}
		s := ts.FromPoints("raw", raw)
		for _, agg := range streamAggs {
			got, err := d.Downsample(st, 0, ts.MaxTime, streamBucket, agg)
			if err != nil {
				return StreamingLeg{}, err
			}
			want := s.Resample(streamBucket, agg).Points()
			if !pointsEqual(got, want) {
				leg.Identical = false
				break check
			}
		}
	}
	return leg, nil
}

// pointsEqual compares bucket lists element-wise within 1e-9 relative
// tolerance (NaN equals NaN).
func pointsEqual(a, b []ts.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].T != b[i].T {
			return false
		}
		av, bv := a[i].V, b[i].V
		if av == bv || (math.IsNaN(av) && math.IsNaN(bv)) {
			continue
		}
		m := math.Max(1, math.Max(math.Abs(av), math.Abs(bv)))
		if math.Abs(av-bv) > 1e-9*m {
			return false
		}
	}
	return true
}

// RunStreaming runs the two maintenance legs over the identical workload and
// pairs them.
func RunStreaming(cfg Config, sc StreamingConfig) (StreamingReport, error) {
	data := dataset.GenerateBike(cfg.Bike)
	sc = sc.withDefaults(len(data.Stations))
	inc, err := streamingLeg(data, sc, true)
	if err != nil {
		return StreamingReport{}, err
	}
	rec, err := streamingLeg(data, sc, false)
	if err != nil {
		return StreamingReport{}, err
	}
	rep := StreamingReport{Incremental: inc, Recompute: rec, Cores: runtime.NumCPU()}
	if inc.ReadP50MS > 0 {
		rep.SpeedupP50 = rec.ReadP50MS / inc.ReadP50MS
	}
	if inc.ReadP99MS > 0 {
		rep.SpeedupP99 = rec.ReadP99MS / inc.ReadP99MS
	}
	if rec.IngestPerSec > 0 {
		rep.IngestRatio = inc.IngestPerSec / rec.IngestPerSec
	}
	return rep, nil
}

// CheckStreaming validates the structural invariants of the streaming
// section. The latency-speedup and ingest-parity gates only bind on machines
// with at least 4 cores — below that the two legs timeshare the same core
// and the ratio measures the scheduler, not the maintenance strategy.
func CheckStreaming(r *StreamingReport) []string {
	var problems []string
	for _, l := range []struct {
		name string
		leg  StreamingLeg
	}{{"streaming.incremental", r.Incremental}, {"streaming.recompute", r.Recompute}} {
		if l.leg.IngestOps < 1 || l.leg.ReadOps < 1 {
			problems = append(problems, fmt.Sprintf(
				"%s: %d appends / %d reads — both sides must make progress", l.name, l.leg.IngestOps, l.leg.ReadOps))
		}
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"ingest_per_sec", l.leg.IngestPerSec}, {"reads_per_sec", l.leg.ReadsPerSec},
			{"read_p50_ms", l.leg.ReadP50MS}, {"read_p99_ms", l.leg.ReadP99MS},
			{"stale_p50_ms", l.leg.StaleP50MS}, {"stale_p99_ms", l.leg.StaleP99MS},
		} {
			if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v <= 0 {
				problems = append(problems, fmt.Sprintf("%s.%s %v not finite and positive", l.name, m.name, m.v))
			}
		}
		if l.leg.ReadP99MS < l.leg.ReadP50MS {
			problems = append(problems, fmt.Sprintf("%s: p99 %.4fms below p50 %.4fms", l.name, l.leg.ReadP99MS, l.leg.ReadP50MS))
		}
		if !l.leg.Identical {
			problems = append(problems, l.name+": cached aggregates differ from a from-scratch resample")
		}
	}
	if r.Incremental.CachePatches < 1 {
		problems = append(problems, "streaming.incremental: no cache patches — write-through maintenance did not run")
	}
	if r.Incremental.CacheInvalidations > 0 {
		problems = append(problems, fmt.Sprintf(
			"streaming.incremental: %d invalidations — streamed appends must patch, not drop, cached windows",
			r.Incremental.CacheInvalidations))
	}
	if r.Recompute.CachePatches > 0 {
		problems = append(problems, fmt.Sprintf(
			"streaming.recompute: %d patches — the baseline leg must not write through", r.Recompute.CachePatches))
	}
	if r.Recompute.CacheInvalidations < 1 {
		problems = append(problems, "streaming.recompute: no invalidations — the baseline leg never paid for its writes")
	}
	if r.Cores >= 4 {
		if r.SpeedupP50 < 5 {
			problems = append(problems, fmt.Sprintf(
				"streaming: read p50 speedup %.2fx below the 5x floor (incremental %.4fms vs recompute %.4fms)",
				r.SpeedupP50, r.Incremental.ReadP50MS, r.Recompute.ReadP50MS))
		}
		if r.IngestRatio < 0.9 {
			problems = append(problems, fmt.Sprintf(
				"streaming: incremental leg served only %.0f%% of the recompute leg's ingest throughput (floor 90%%)",
				100*r.IngestRatio))
		}
	}
	return problems
}

// FormatStreaming renders the streaming comparison as a readable block.
func FormatStreaming(r StreamingReport) string {
	line := func(l StreamingLeg) string {
		return fmt.Sprintf("  %-11s %d ingest @ %d/s + %d readers @ %d/s, %d ms window: %.0f appends/s, %.0f reads/s, read p50 %.4f ms p99 %.4f ms, visible p50 %.4f ms p99 %.4f ms, cache %dP/%dI/%dH/%dM",
			l.Mode, l.IngestClients, l.IngestRate, l.ReadClients, l.ReadRate, l.WindowMS,
			l.IngestPerSec, l.ReadsPerSec, l.ReadP50MS, l.ReadP99MS, l.StaleP50MS, l.StaleP99MS,
			l.CachePatches, l.CacheInvalidations, l.CacheHits, l.CacheMisses)
	}
	return fmt.Sprintf("streaming aggregates under sustained ingest (%d-core, identity gate %v/%v):\n%s\n%s\n  read speedup: %.1fx p50, %.1fx p99; ingest parity %.2fx\n",
		r.Cores, r.Incremental.Identical, r.Recompute.Identical,
		line(r.Incremental), line(r.Recompute), r.SpeedupP50, r.SpeedupP99, r.IngestRatio)
}

package bench

// Sample-statistics helpers shared by every bench section (Table 1, storage,
// serve, mixed, partitions). One guarded implementation — the guards (empty
// input, n<2, zero mean) live here exactly once so new reporters cannot
// reintroduce a ±Inf CV or an out-of-range quantile by re-deriving them.

import (
	"math"
	"sort"
	"time"
)

// stats returns mean and coefficient of variation (%) of samples. CV uses
// the sample (n−1) standard deviation — the paper's convention for its Reps
// repetitions — since the reps are a sample of the latency distribution,
// not the population; the population formula understated spread at the
// Reps=7 default. With fewer than two samples, or a zero mean (which would
// divide away to ±Inf), CV is reported as 0.
func stats(samples []float64) (mean, cv float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	if n < 2 || mean == 0 {
		return mean, 0
	}
	var acc float64
	for _, s := range samples {
		d := s - mean
		acc += d * d
	}
	sd := math.Sqrt(acc / float64(n-1))
	cv = 100 * sd / math.Abs(mean)
	return mean, cv
}

// minSample returns the smallest sample, or 0 for an empty slice — the
// best-case latency estimator the storage deltas use (min is robust to
// one-off scheduler noise where mean is not).
func minSample(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// quantilesMS returns the p50/p99 of the sample in milliseconds (0,0 for an
// empty sample).
func quantilesMS(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.99)
}

package bench

import (
	"strings"
	"testing"
)

func TestRunStorageReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bike = tinyBike()
	cfg.Reps = 2
	rep, err := RunStorage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if problems := CheckStorage(&rep); len(problems) > 0 {
		t.Fatalf("storage report invalid: %v", problems)
	}
	if !rep.Identical {
		t.Fatal("compressed/tiered results differ from raw")
	}
	if rep.CompressionRatio < 4 {
		t.Fatalf("compression ratio %.2f below the 4x acceptance floor", rep.CompressionRatio)
	}
	if rep.PointsPerMB <= rep.PointsPerMBRaw {
		t.Fatalf("points/MB did not improve: %.0f vs raw %.0f", rep.PointsPerMB, rep.PointsPerMBRaw)
	}
	if rep.SpilledBlocks < 1 {
		t.Fatal("no blocks spilled")
	}
	out := FormatStorage(rep)
	for _, want := range []string{"points/MB", "cold tier", "Q deltas", "identical results"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatStorage missing %q:\n%s", want, out)
		}
	}
}

func TestCheckStorageFlagsViolations(t *testing.T) {
	rep := StorageReport{
		Series: 1, Points: 1,
		RawBytes: 100, CompressedBytes: 50, CompressionRatio: 2, // below floor
		Identical:     false,
		SpilledBlocks: 0,
		QueryDeltas:   map[string]float64{},
	}
	problems := CheckStorage(&rep)
	for _, want := range []string{"4x floor", "differ from raw", "spilled nothing", "missing query delta"} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("CheckStorage did not flag %q in %v", want, problems)
		}
	}
}

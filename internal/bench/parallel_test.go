package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunParallelIdenticalResults(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 4
	rows, workers, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if workers != 4 {
		t.Fatalf("workers=%d", workers)
	}
	if len(rows) != len(ParallelQueries) {
		t.Fatalf("rows=%d want %d", len(rows), len(ParallelQueries))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("%s: parallel result differs from sequential", r.Query)
		}
		if r.SeqMRS < 0 || r.ParMRS < 0 {
			t.Fatalf("%s: negative timing %+v", r.Query, r)
		}
	}
	out := FormatParallel(rows, workers)
	for _, want := range []string{"Q4", "Q8", "identical", "4 workers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestThroughput(t *testing.T) {
	rep, err := Throughput(tinyConfig(), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOps != 24 || rep.Clients != 4 || rep.OpsPerClient != 6 {
		t.Fatalf("report %+v", rep)
	}
	if rep.ElapsedMS <= 0 || rep.OpsPerSec <= 0 {
		t.Fatalf("degenerate timing %+v", rep)
	}
	if !strings.Contains(FormatThroughput(rep), "q/s") {
		t.Fatalf("format: %s", FormatThroughput(rep))
	}
	if _, err := Throughput(tinyConfig(), 0, 5); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestBaselineRoundTripAndValidate(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := &Baseline{Schema: BaselineSchema, Config: cfg, Rows: rows}
	if problems := b.Validate(); len(problems) != 0 {
		t.Fatalf("valid baseline flagged: %v", problems)
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(rows) || back.Rows[0].Query != "Q1" {
		t.Fatalf("round trip lost rows: %+v", back.Rows)
	}

	// Violations are all reported: wrong schema, missing rows, bad order,
	// non-identical parallel results.
	bad := &Baseline{
		Schema:   "wrong/v0",
		Rows:     []Row{{Query: "Q2"}},
		Parallel: []ParallelRow{{Query: "Q4", Identical: false}},
	}
	problems := bad.Validate()
	if len(problems) < 3 {
		t.Fatalf("violations under-reported: %v", problems)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"schema":"wrong/v0"}`)); err == nil {
		t.Fatal("invalid baseline read cleanly")
	}
	if _, err := ReadBaseline(strings.NewReader(`{garbage`)); err == nil {
		t.Fatal("garbage parsed")
	}
}

package bench

import (
	"strings"
	"testing"
)

// TestRunPartitionsReport drives the partition-scaling section at tiny scale:
// the coordinator at 1, 2, and 3 partitions must be element-wise identical to
// the single-engine oracle, and the report must pass its own structural
// validation and render every row.
func TestRunPartitionsReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bike = tinyBike()
	cfg.Reps = 2
	rep, err := RunPartitions(cfg, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if problems := checkPartitions(&rep); len(problems) > 0 {
		t.Fatalf("partitions report invalid: %v", problems)
	}
	for _, lvl := range rep.Levels {
		if !lvl.Identical {
			t.Fatalf("partitions=%d: results differ from the single-engine oracle", lvl.Parts)
		}
	}
	if sp := rep.Levels[0].Rows[0].Speedup; sp != 1 {
		t.Fatalf("reference speedup = %v, want 1", sp)
	}
	out := FormatPartitions(rep)
	for _, want := range []string{"partition scaling", "speedup", "identical", "Q4", "Q8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatPartitions missing %q:\n%s", want, out)
		}
	}
}

func TestRunPartitionsRejectsEmptyCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bike = tinyBike()
	if _, err := RunPartitions(cfg, nil); err == nil {
		t.Fatal("want error for empty counts")
	}
}

// TestCheckPartitionsFlagsViolations feeds a deliberately broken report
// through every structural check, including the Procs ≥ 4-gated monotone
// speedup rule.
func TestCheckPartitionsFlagsViolations(t *testing.T) {
	row := func(q string, sp float64) PartitionRow {
		return PartitionRow{Query: q, Desc: "d", MRS: 1, CV: 1, Speedup: sp}
	}
	rows := func(sp float64) []PartitionRow {
		var rs []PartitionRow
		for _, q := range PartitionQueries {
			rs = append(rs, row(q, sp))
		}
		return rs
	}

	bad := PartitionsReport{
		Counts: []int{1, 2, 4},
		Procs:  0,
		Levels: []PartitionLevel{
			{Parts: 2, Rows: rows(1), Identical: false},    // not the 1-partition reference
			{Parts: 2, Rows: rows(1)[:2], Identical: true}, // not increasing, wrong row count
		},
	}
	problems := checkPartitions(&bad)
	for _, want := range []string{
		"procs 0", "3 counts but 2 levels", "want the 1-partition reference",
		"not strictly increasing", "differ from the single-engine oracle", "2 rows, want 5",
	} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("checkPartitions did not flag %q in %v", want, problems)
		}
	}

	nanRows := rows(1)
	nanRows[0].MRS = -1
	nanRows[1].Query = "Q9"
	malformed := PartitionsReport{
		Counts: []int{1, 2},
		Procs:  8,
		Levels: []PartitionLevel{
			{Parts: 1, Rows: rows(1), Identical: true},
			{Parts: 2, Rows: nanRows, Identical: true},
		},
	}
	problems = checkPartitions(&malformed)
	for _, want := range []string{"not a finite non-negative number", `is "Q9"`} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("checkPartitions did not flag %q in %v", want, problems)
		}
	}

	// Monotone-speedup gate: regression flagged at Procs >= 4, ignored below.
	regressed := PartitionsReport{
		Counts: []int{1, 2, 4},
		Procs:  8,
		Levels: []PartitionLevel{
			{Parts: 1, Rows: rows(1), Identical: true},
			{Parts: 2, Rows: rows(1.8), Identical: true},
			{Parts: 4, Rows: rows(1.2), Identical: true},
		},
	}
	problems = checkPartitions(&regressed)
	found := false
	for _, p := range problems {
		if strings.Contains(p, "speedup regressed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("checkPartitions did not flag the speedup regression in %v", problems)
	}
	regressed.Procs = 1
	for _, p := range checkPartitions(&regressed) {
		if strings.Contains(p, "speedup regressed") {
			t.Fatalf("speedup rule must be gated off below 4 procs, got %v", p)
		}
	}
}

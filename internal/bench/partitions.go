package bench

// The partition-scaling section (hybench -partitions): the scatter-gather
// coordinator at increasing partition counts against the single-engine
// polyglot oracle. Two claims are recorded per level — correctness (results
// element-wise identical to the oracle, the partition-invariance guarantee)
// and scaling (Q4–Q8 mean response time vs the 1-partition reference).

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"hygraph/internal/coord"
	"hygraph/internal/dataset"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// PartitionRow is one query at one partition count.
type PartitionRow struct {
	Query string  `json:"query"`
	Desc  string  `json:"desc"`
	MRS   float64 `json:"mrs_ms"` // ms
	CV    float64 `json:"cv_pct"` // %
	// Speedup is MRS at 1 partition / MRS here — the scaling headline.
	Speedup float64 `json:"speedup"`
}

// PartitionLevel is the measured Q4–Q8 block at one partition count.
type PartitionLevel struct {
	Parts int            `json:"parts"`
	Rows  []PartitionRow `json:"rows"`
	// Identical reports whether every Q1–Q8 answer at this partition count
	// was element-wise equal (1e-9) to the single-engine oracle — the
	// correctness gate of the scatter-gather merge.
	Identical bool `json:"identical"`
}

// PartitionsReport is the -partitions section of the baseline.
type PartitionsReport struct {
	Counts []int `json:"counts"`
	// Procs is GOMAXPROCS at run time. The monotone-speedup check is gated
	// on it: a 1-CPU box serializes the fan-out, so only the correctness
	// half of the section is meaningful there.
	Procs  int              `json:"procs"`
	Levels []PartitionLevel `json:"levels"`
}

// PartitionQueries are the multi-station queries the coordinator scatters;
// the same set the in-engine worker pool fans out (ParallelQueries).
var PartitionQueries = []string{"Q4", "Q5", "Q6", "Q7", "Q8"}

// RunPartitions loads the single-engine oracle once and the coordinator at
// each partition count, verifies element-wise identity of the Q1–Q8 answers,
// and times Q4–Q8 per level.
func RunPartitions(cfg Config, counts []int) (PartitionsReport, error) {
	rep := PartitionsReport{Counts: counts, Procs: runtime.GOMAXPROCS(0)}
	if len(counts) == 0 {
		return rep, fmt.Errorf("bench: -partitions needs at least one count")
	}
	data := dataset.GenerateBike(cfg.Bike)
	ora := ttdb.NewPolyglot(ts.Week)
	oIDs, err := data.LoadEngine(ora)
	if err != nil {
		return rep, fmt.Errorf("bench: loading %s: %w", ora.Name(), err)
	}
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2

	var base []float64 // 1st level's MRS per query, the speedup denominator
	for li, n := range counts {
		c, err := coord.NewMem(n, ts.Week)
		if err != nil {
			return rep, fmt.Errorf("bench: partitions=%d: %w", n, err)
		}
		cIDs, err := data.LoadEngine(c)
		if err != nil {
			return rep, fmt.Errorf("bench: loading %s@%d: %w", c.Name(), n, err)
		}
		c.SetWorkers(cfg.Workers)
		if cfg.Obs != nil {
			c.Instrument(cfg.Obs)
		}
		lvl := PartitionLevel{
			Parts:     n,
			Identical: partitionsIdentical(ora, oIDs, c, cIDs, qStart, qEnd),
		}
		st0, st1 := cIDs[0], cIDs[len(cIDs)/2]
		for qi, q := range PartitionQueries {
			var fn func()
			switch q {
			case "Q4":
				fn = func() { c.Q4AllStationMeans(qStart, qEnd) }
			case "Q5":
				fn = func() { c.Q5DistrictSums(qStart, qEnd) }
			case "Q6":
				fn = func() { c.Q6TopKStations(qStart, qEnd, 10) }
			case "Q7":
				fn = func() { c.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour) }
			case "Q8":
				fn = func() { c.Q8NeighborMeans(st0, qStart, qEnd) }
			}
			fn() // warm-up rep, not measured
			samples := make([]float64, 0, cfg.Reps)
			for r := 0; r < cfg.Reps; r++ {
				t0 := time.Now()
				fn()
				samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e6)
			}
			mrs, cv := stats(samples)
			row := PartitionRow{Query: q, Desc: ttdb.Describe(q), MRS: mrs, CV: cv}
			if li == 0 {
				base = append(base, mrs)
				row.Speedup = 1
			} else if mrs > 0 && qi < len(base) {
				row.Speedup = base[qi] / mrs
			}
			lvl.Rows = append(lvl.Rows, row)
		}
		rep.Levels = append(rep.Levels, lvl)
	}
	return rep, nil
}

// partitionsIdentical compares every Q1–Q8 answer of the coordinator against
// the oracle, element-wise within 1e-9. Station ids differ between the two
// engines, so answers are aligned through the shared ingest order: oIDs[i]
// and cIDs[i] name the same logical station.
func partitionsIdentical(ora ttdb.Engine, oIDs []ttdb.StationID, c ttdb.Engine, cIDs []ttdb.StationID, qStart, qEnd ts.Time) bool {
	const tol = 1e-9
	eq := func(a, b float64) bool {
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return math.Abs(a-b) <= tol
	}
	if len(oIDs) != len(cIDs) || len(oIDs) == 0 {
		return false
	}
	oIdx := make(map[ttdb.StationID]int, len(oIDs))
	cIdx := make(map[ttdb.StationID]int, len(cIDs))
	for i := range oIDs {
		oIdx[oIDs[i]] = i
		cIdx[cIDs[i]] = i
	}
	st0o, st1o := oIDs[0], oIDs[len(oIDs)/2]
	st0c, st1c := cIDs[0], cIDs[len(cIDs)/2]

	po := ora.Q1TimeRange(st0o, qStart, qStart+2*ts.Day)
	pc := c.Q1TimeRange(st0c, qStart, qStart+2*ts.Day)
	if len(po) != len(pc) {
		return false
	}
	for i := range po {
		if po[i].T != pc[i].T || !eq(po[i].V, pc[i].V) {
			return false
		}
	}
	fo := ora.Q2FilteredRange(st0o, qStart, qEnd, 10)
	fc := c.Q2FilteredRange(st0c, qStart, qEnd, 10)
	if len(fo) != len(fc) {
		return false
	}
	for i := range fo {
		if fo[i].T != fc[i].T || !eq(fo[i].V, fc[i].V) {
			return false
		}
	}
	if !eq(ora.Q3StationMean(st0o, qStart, qEnd), c.Q3StationMean(st0c, qStart, qEnd)) {
		return false
	}
	mo, mc := ora.Q4AllStationMeans(qStart, qEnd), c.Q4AllStationMeans(qStart, qEnd)
	if len(mo) != len(mc) {
		return false
	}
	for i := range oIDs {
		vo, oko := mo[oIDs[i]]
		vc, okc := mc[cIDs[i]]
		if oko != okc || !eq(vo, vc) {
			return false
		}
	}
	do, dc := ora.Q5DistrictSums(qStart, qEnd), c.Q5DistrictSums(qStart, qEnd)
	if len(do) != len(dc) {
		return false
	}
	for k, v := range do {
		w, ok := dc[k]
		if !ok || !eq(v, w) {
			return false
		}
	}
	to, tc := ora.Q6TopKStations(qStart, qEnd, 10), c.Q6TopKStations(qStart, qEnd, 10)
	if len(to) != len(tc) {
		return false
	}
	for i := range to {
		if oIdx[to[i]] != cIdx[tc[i]] {
			return false
		}
	}
	if !eq(ora.Q7Correlation(st0o, st1o, qStart, qEnd, ts.Hour), c.Q7Correlation(st0c, st1c, qStart, qEnd, ts.Hour)) {
		return false
	}
	no, nc := ora.Q8NeighborMeans(st0o, qStart, qEnd), c.Q8NeighborMeans(st0c, qStart, qEnd)
	if len(no) != len(nc) {
		return false
	}
	for k, v := range no {
		w, ok := nc[cIDs[oIdx[k]]]
		if !ok || !eq(v, w) {
			return false
		}
	}
	return true
}

// FormatPartitions renders the partition-scaling section.
func FormatPartitions(r PartitionsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "partition scaling — coordinator over N in-process partitions, %d procs\n", r.Procs)
	fmt.Fprintf(&b, "%-6s %-5s %12s %8s %10s %10s  %s\n",
		"parts", "Query", "MRS (ms)", "CV(%)", "speedup", "identical", "description")
	fmt.Fprintln(&b, strings.Repeat("-", 100))
	for _, lvl := range r.Levels {
		for i, row := range lvl.Rows {
			parts := ""
			if i == 0 {
				parts = fmt.Sprintf("%d", lvl.Parts)
			}
			fmt.Fprintf(&b, "%-6s %-5s %12.3f %8.2f %9.2fx %10v  %s\n",
				parts, row.Query, row.MRS, row.CV, row.Speedup, lvl.Identical, row.Desc)
		}
	}
	return b.String()
}

// checkPartitions validates the structural invariants of the partitions
// section: the 1-partition reference leads at least two strictly increasing
// levels, every level is element-wise identical to the oracle, all timings
// are finite, and — on boxes with enough cores for the fan-out to mean
// anything (Procs ≥ 4) — the Q4–Q8 speedup grows monotonically with the
// partition count (2% measurement-noise allowance).
func checkPartitions(r *PartitionsReport) []string {
	var problems []string
	if r.Procs < 1 {
		problems = append(problems, fmt.Sprintf("partitions: procs %d not positive", r.Procs))
	}
	if len(r.Levels) < 2 {
		problems = append(problems, fmt.Sprintf(
			"partitions: %d levels; scaling needs at least the reference and one fan-out", len(r.Levels)))
	}
	if len(r.Counts) != len(r.Levels) {
		problems = append(problems, fmt.Sprintf(
			"partitions: %d counts but %d levels", len(r.Counts), len(r.Levels)))
	}
	if len(r.Levels) > 0 && r.Levels[0].Parts != 1 {
		problems = append(problems, fmt.Sprintf(
			"partitions: first level is %d partitions, want the 1-partition reference", r.Levels[0].Parts))
	}
	prev := 0
	for _, lvl := range r.Levels {
		tag := fmt.Sprintf("partitions@%d", lvl.Parts)
		if lvl.Parts <= prev {
			problems = append(problems, fmt.Sprintf("%s: counts not strictly increasing", tag))
		}
		prev = lvl.Parts
		if !lvl.Identical {
			problems = append(problems, fmt.Sprintf("%s: results differ from the single-engine oracle", tag))
		}
		if len(lvl.Rows) != len(PartitionQueries) {
			problems = append(problems, fmt.Sprintf("%s: %d rows, want %d", tag, len(lvl.Rows), len(PartitionQueries)))
			continue
		}
		for i, row := range lvl.Rows {
			if row.Query != PartitionQueries[i] {
				problems = append(problems, fmt.Sprintf("%s: row %d is %q, want %q", tag, i, row.Query, PartitionQueries[i]))
			}
			for _, m := range []struct {
				name string
				v    float64
			}{{"MRS", row.MRS}, {"CV", row.CV}, {"Speedup", row.Speedup}} {
				if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v < 0 {
					problems = append(problems, fmt.Sprintf(
						"%s.%s.%s = %v not a finite non-negative number", tag, row.Query, m.name, m.v))
				}
			}
		}
	}
	if r.Procs >= 4 && len(r.Levels) >= 2 {
		for qi, q := range PartitionQueries {
			for li := 1; li < len(r.Levels); li++ {
				if len(r.Levels[li].Rows) != len(PartitionQueries) || len(r.Levels[li-1].Rows) != len(PartitionQueries) {
					continue
				}
				sp, spPrev := r.Levels[li].Rows[qi].Speedup, r.Levels[li-1].Rows[qi].Speedup
				if sp < spPrev*0.98 {
					problems = append(problems, fmt.Sprintf(
						"partitions: %s speedup regressed %d→%d partitions (%.2fx → %.2fx)",
						q, r.Levels[li-1].Parts, r.Levels[li].Parts, spPrev, sp))
				}
			}
		}
	}
	return problems
}

package bench

import (
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"hygraph/internal/dataset"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// The storage benchmark measures what the compression + tiering layer buys:
// points-per-MB of the raw vs compressed layouts on the sealed-chunk
// workload (hourly integer availability counts — the shape bike telemetry
// actually has), cold vs warm scan cost through the spill tier, and the
// Q1–Q8 latency deltas of a compressed polyglot engine against a raw one on
// the regular Table 1 workload.

// StorageReport is the baseline's storage section (schema v4).
type StorageReport struct {
	// Sealed-chunk workload shape.
	Series int `json:"series"`
	Points int `json:"points"`
	// In-memory footprint of the identical workload in each layout.
	RawBytes        int64 `json:"raw_bytes"`
	CompressedBytes int64 `json:"compressed_bytes"`
	// CompressionRatio is RawBytes / CompressedBytes (higher is better);
	// the layer's acceptance floor is 4x on this workload.
	CompressionRatio float64 `json:"compression_ratio"`
	PointsPerMBRaw   float64 `json:"points_per_mb_raw"`
	PointsPerMB      float64 `json:"points_per_mb_compressed"`
	// Identical reports that raw, compressed, and spilled stores returned
	// element-wise identical Range/Aggregate/Downsample results.
	Identical bool `json:"identical"`
	// Cold tier: every sealed block spilled to disk, then scanned with an
	// empty block cache (cold) and again with it warm.
	SpilledBlocks int     `json:"spilled_blocks"`
	SpilledBytes  int64   `json:"spilled_bytes"`
	ColdScanMS    float64 `json:"cold_scan_ms"`
	WarmScanMS    float64 `json:"warm_scan_ms"`
	// QueryDeltas maps Q1–Q8 to (compressedMRS - rawMRS) / rawMRS on the
	// Table 1 workload: the latency price of the compressed layout.
	// Timing-dependent, so reported rather than validated.
	QueryDeltas map[string]float64 `json:"query_deltas"`
}

// storageWorkload fills a store with the sealed-chunk workload: hourly
// integer availability counts, a seeded random walk per series. Returns
// series and point counts.
func storageWorkload(db *tsstore.DB, series, points int) (int, int) {
	for s := 0; s < series; s++ {
		key := tsstore.SeriesKey{Entity: uint32(s + 1), Metric: "availability"}
		// Deterministic per-series walk (xorshift), clamped to [0, 60].
		x := uint64(2463534242*uint64(s) + 1442695040888963407)
		level := int64(30)
		for i := 0; i < points; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			level += int64(x%5) - 2
			if level < 0 {
				level = 0
			}
			if level > 60 {
				level = 60
			}
			db.Insert(key, ts.Time(i)*ts.Hour, float64(level))
		}
	}
	return series, series * points
}

// storageObserve flattens the query surface over every series for equality
// checks and scan timing. The fold is deterministic: fixed key order, fixed
// windows.
func storageObserve(db *tsstore.DB, series, points int) []float64 {
	horizon := ts.Time(points) * ts.Hour
	var out []float64
	for s := 0; s < series; s++ {
		key := tsstore.SeriesKey{Entity: uint32(s + 1), Metric: "availability"}
		for _, p := range db.Range(key, 0, horizon) {
			out = append(out, float64(p.T), p.V)
		}
		for _, w := range [][2]ts.Time{{0, horizon}, {horizon / 4, horizon / 2}} {
			sum := db.Aggregate(key, w[0], w[1])
			out = append(out, float64(sum.Count), sum.Sum, sum.Min, sum.Max)
		}
		ds := db.Downsample(key, 0, horizon, ts.Day, ts.AggMean)
		for i := 0; i < ds.Len(); i++ {
			out = append(out, float64(ds.TimeAt(i)), ds.ValueAt(i))
		}
	}
	return out
}

func storageEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// RunStorage measures the compression + tiering layer. The footprint and
// equality numbers are deterministic; the scan and query timings are not.
func RunStorage(cfg Config) (StorageReport, error) {
	const series, points = 64, 4096 // ~262k points, ~36 sealed chunks/series
	var rep StorageReport

	raw := tsstore.NewSharded(0, 0)
	raw.SetCompress(false)
	comp := tsstore.NewSharded(0, 0)
	rep.Series, rep.Points = storageWorkload(raw, series, points)
	storageWorkload(comp, series, points)

	rawStats, compStats := raw.Stats(), comp.Stats()
	rep.RawBytes, rep.CompressedBytes = rawStats.MemBytes, compStats.MemBytes
	if rep.CompressedBytes > 0 {
		rep.CompressionRatio = float64(rep.RawBytes) / float64(rep.CompressedBytes)
	}
	if rep.RawBytes > 0 {
		rep.PointsPerMBRaw = float64(rep.Points) / (float64(rep.RawBytes) / 1e6)
	}
	if rep.CompressedBytes > 0 {
		rep.PointsPerMB = float64(rep.Points) / (float64(rep.CompressedBytes) / 1e6)
	}

	want := storageObserve(raw, series, points)
	rep.Identical = storageEqual(want, storageObserve(comp, series, points))

	// Cold tier: spill every sealed block, then time a cold and a warm scan.
	dir, err := os.MkdirTemp("", "hybench-tier-")
	if err != nil {
		return rep, fmt.Errorf("bench: storage temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	if err := comp.EnableColdTier(dir); err != nil {
		return rep, err
	}
	st, err := comp.Spill()
	if err != nil {
		return rep, err
	}
	rep.SpilledBlocks, rep.SpilledBytes = st.Blocks, st.Bytes
	comp.DropBlockCache()
	t0 := time.Now()
	cold := storageObserve(comp, series, points)
	rep.ColdScanMS = float64(time.Since(t0).Nanoseconds()) / 1e6
	t0 = time.Now()
	warm := storageObserve(comp, series, points)
	rep.WarmScanMS = float64(time.Since(t0).Nanoseconds()) / 1e6
	rep.Identical = rep.Identical && storageEqual(want, cold) && storageEqual(want, warm)
	if err := comp.Err(); err != nil {
		return rep, fmt.Errorf("bench: tiered store degraded: %w", err)
	}
	if err := comp.CloseColdTier(); err != nil {
		return rep, err
	}

	// Q1–Q8 deltas on the Table 1 workload: raw vs compressed polyglot.
	deltas, err := storageQueryDeltas(cfg)
	if err != nil {
		return rep, err
	}
	rep.QueryDeltas = deltas
	return rep, nil
}

// storageQueryDeltas times Q1–Q8 on two polyglot engines over the same
// dataset — chunk compression off vs on — and reports the relative MRS
// delta per query.
func storageQueryDeltas(cfg Config) (map[string]float64, error) {
	data := dataset.GenerateBike(cfg.Bike)
	rawE := ttdb.NewPolyglot(ts.Week)
	rawE.T.SetCompress(false)
	compE := ttdb.NewPolyglot(ts.Week)
	idsRaw, err := data.LoadEngine(rawE)
	if err != nil {
		return nil, fmt.Errorf("bench: loading raw engine: %w", err)
	}
	idsComp, err := data.LoadEngine(compE)
	if err != nil {
		return nil, fmt.Errorf("bench: loading compressed engine: %w", err)
	}
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2

	query := func(e ttdb.Engine, ids []ttdb.StationID, q string) func() {
		st0, st1 := ids[0], ids[len(ids)/2]
		switch q {
		case "Q1":
			return func() { e.Q1TimeRange(st0, qStart, qStart+2*ts.Day) }
		case "Q2":
			return func() { e.Q2FilteredRange(st0, qStart, qEnd, 10) }
		case "Q3":
			return func() { e.Q3StationMean(st0, qStart, qEnd) }
		case "Q4":
			return func() { e.Q4AllStationMeans(qStart, qEnd) }
		case "Q5":
			return func() { e.Q5DistrictSums(qStart, qEnd) }
		case "Q6":
			return func() { e.Q6TopKStations(qStart, qEnd, 10) }
		case "Q7":
			return func() { e.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour) }
		case "Q8":
			return func() { e.Q8NeighborMeans(st0, qStart, qEnd) }
		}
		return nil
	}

	// The queries are sub-millisecond, so the delta needs noise control the
	// MRS table doesn't: batch each timing sample to ≥2ms of work (timer
	// granularity and scheduler preemption otherwise dominate), alternate
	// raw/compressed samples (drift hits both legs equally), and compare
	// the *minimum* sample per leg — timing noise is strictly additive, so
	// the min is the robust estimator of true cost on a busy box.
	const targetSample = 2 * time.Millisecond
	reps := cfg.Reps * 2
	if reps < 11 {
		reps = 11
	}
	deltas := make(map[string]float64, len(ttdb.QueryNames))
	for _, q := range ttdb.QueryNames {
		rawFn, compFn := query(rawE, idsRaw, q), query(compE, idsComp, q)
		t0 := time.Now()
		rawFn()
		once := time.Since(t0)
		compFn() // warm-up both legs
		iters := 1
		if once > 0 && once < targetSample {
			iters = int(targetSample / once)
			if iters > 4096 {
				iters = 4096
			}
		}
		sample := func(fn func()) float64 {
			s0 := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			return float64(time.Since(s0).Nanoseconds()) / float64(iters)
		}
		rawS := make([]float64, 0, reps)
		compS := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			rawS = append(rawS, sample(rawFn))
			compS = append(compS, sample(compFn))
		}
		rawMin, compMin := minSample(rawS), minSample(compS)
		if rawMin > 0 {
			deltas[q] = (compMin - rawMin) / rawMin
		}
	}
	return deltas, nil
}

// FormatStorage renders the storage section for terminal output.
func FormatStorage(r StorageReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage: compression + tiering (%d series × %d points)\n", r.Series, r.Points/max(1, r.Series))
	fmt.Fprintf(&b, "  footprint    raw %.1f MB → compressed %.1f MB (%.1fx, %s)\n",
		float64(r.RawBytes)/1e6, float64(r.CompressedBytes)/1e6, r.CompressionRatio,
		map[bool]string{true: "identical results", false: "RESULTS DIFFER"}[r.Identical])
	fmt.Fprintf(&b, "  points/MB    raw %.0f → compressed %.0f\n", r.PointsPerMBRaw, r.PointsPerMB)
	fmt.Fprintf(&b, "  cold tier    %d blocks (%.1f MB) spilled; scan cold %.1f ms, warm %.1f ms\n",
		r.SpilledBlocks, float64(r.SpilledBytes)/1e6, r.ColdScanMS, r.WarmScanMS)
	b.WriteString("  Q deltas     ")
	for _, q := range ttdb.QueryNames {
		fmt.Fprintf(&b, "%s %+.0f%%  ", q, 100*r.QueryDeltas[q])
	}
	b.WriteString("\n")
	return b.String()
}

// CheckStorage validates the deterministic invariants of the storage
// section. Scan timings and query deltas are reported, not gated — CI boxes
// are too noisy to fail a build on a latency ratio.
func CheckStorage(r *StorageReport) []string {
	var problems []string
	if r.Series < 1 || r.Points < 1 {
		problems = append(problems, "storage: empty workload")
	}
	if !r.Identical {
		problems = append(problems, "storage: compressed/tiered results differ from raw")
	}
	if r.RawBytes <= 0 || r.CompressedBytes <= 0 {
		problems = append(problems, fmt.Sprintf("storage: footprints %d/%d not positive", r.RawBytes, r.CompressedBytes))
	}
	if math.IsNaN(r.CompressionRatio) || math.IsInf(r.CompressionRatio, 0) || r.CompressionRatio < 4 {
		problems = append(problems, fmt.Sprintf(
			"storage: compression ratio %.2f below the 4x floor on the sealed-chunk workload", r.CompressionRatio))
	}
	if r.SpilledBlocks < 1 || r.SpilledBytes < 1 {
		problems = append(problems, "storage: cold tier spilled nothing")
	}
	if r.ColdScanMS < 0 || r.WarmScanMS < 0 {
		problems = append(problems, "storage: negative scan timings")
	}
	for _, q := range ttdb.QueryNames {
		d, ok := r.QueryDeltas[q]
		if !ok {
			problems = append(problems, fmt.Sprintf("storage: missing query delta for %s", q))
			continue
		}
		if math.IsNaN(d) || math.IsInf(d, 0) {
			problems = append(problems, fmt.Sprintf("storage: %s delta %v not finite", q, d))
		}
	}
	return problems
}

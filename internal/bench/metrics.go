package bench

import (
	"bytes"
	"fmt"
	"strings"

	"hygraph/internal/dataset"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// DurableExercise pushes a small slice of the workload through the durable
// polyglot layer so an instrumented run also exercises the WALs, the intent
// journal, and observed recovery — the parts a pure query benchmark never
// touches. It ingests a capped version of cfg's bike network into in-memory
// logs, answers one durable query, replays the logs through
// RecoverPolyglotObserved (recording recovery spans into reg), and checks
// cross-store consistency of the recovered engine.
func DurableExercise(cfg Config, reg *obs.Registry) error {
	small := cfg.Bike
	if small.Stations > 8 {
		small.Stations = 8
	}
	if small.Days > 7 {
		small.Days = 7
	}
	if small.Districts > small.Stations {
		small.Districts = small.Stations
	}
	data := dataset.GenerateBike(small)
	var graphLog, tsLog, journal bytes.Buffer
	d := ttdb.NewDurable(ts.Week, &graphLog, &tsLog, &journal)
	d.Instrument(reg)
	ids := make([]ttdb.StationID, len(data.Stations))
	for i, st := range data.Stations {
		id, err := d.IngestStation(st.Name, st.District, st.Availability)
		if err != nil {
			return fmt.Errorf("bench: durable ingest %s: %w", st.Name, err)
		}
		ids[i] = id
	}
	for _, tr := range data.Trips {
		if err := d.AddTrip(ids[tr.From], ids[tr.To], tr.Count); err != nil {
			return fmt.Errorf("bench: durable trip: %w", err)
		}
	}
	start, end := data.Span()
	if _, err := d.Q3StationMean(ids[0], start, end); err != nil {
		return fmt.Errorf("bench: durable query: %w", err)
	}
	// Warm one continuous-aggregate window, then append through the durable
	// path: the instrumented run must show the write-through patch counter
	// moving, not just hit/miss traffic.
	if _, err := d.Downsample(ids[0], start, end+ts.Week, ts.Day, ts.AggMean); err != nil {
		return fmt.Errorf("bench: durable downsample: %w", err)
	}
	if err := d.AppendPoint(ids[0], end+ts.Minute, 1); err != nil {
		return fmt.Errorf("bench: durable append: %w", err)
	}
	eng, _, err := ttdb.RecoverPolyglotObserved(
		nil, bytes.NewReader(graphLog.Bytes()),
		nil, bytes.NewReader(tsLog.Bytes()),
		bytes.NewReader(journal.Bytes()), ts.Week, reg)
	if err != nil {
		return fmt.Errorf("bench: durable recovery: %w", err)
	}
	if err := ttdb.CheckConsistency(eng); err != nil {
		return fmt.Errorf("bench: recovered engine inconsistent: %w", err)
	}
	return nil
}

// CheckMetrics verifies that a snapshot from an instrumented benchmark run
// (Run + RunParallel + DurableExercise sharing one registry) shows every
// subsystem actually reporting: nonzero per-query timers on both engines,
// WAL append counts from the durable exercise, and resample-cache traffic
// from the repeated Q7s. It returns every violation, not just the first.
func CheckMetrics(s *obs.Snapshot) []string {
	var problems []string
	for _, prefix := range []string{"ttdb", "neo4j"} {
		for _, q := range ttdb.QueryNames {
			name := prefix + "." + strings.ToLower(q)
			if st, ok := s.Durations[name]; !ok || st.Count == 0 {
				problems = append(problems, fmt.Sprintf("timer %s never fired", name))
			}
		}
	}
	for _, c := range []string{
		"graphstore.wal.appends",
		"tsstore.wal.appends",
		"tsstore.cache.hits",
		"tsstore.cache.misses",
		"tsstore.cache.patches",
	} {
		if s.Counters[c] <= 0 {
			problems = append(problems, fmt.Sprintf("counter %s is zero", c))
		}
	}
	return problems
}

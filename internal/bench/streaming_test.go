package bench

import (
	"strings"
	"testing"

	"hygraph/internal/dataset"
)

// smallBike is big enough that day buckets hold a full day of hourly points
// (the recompute leg's scan has real work to do) but small enough for a test.
func smallBike() dataset.BikeConfig {
	return dataset.BikeConfig{Stations: 16, Districts: 4, Days: 10, StepMinutes: 60, TripsPerSt: 2, Seed: 11}
}

func TestRunStreamingReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bike = smallBike()
	rep, err := RunStreaming(cfg, StreamingConfig{
		IngestClients: 2, ReadClients: 2, IngestRate: 2000, WindowMS: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []StreamingLeg{rep.Incremental, rep.Recompute} {
		if leg.IngestOps < 1 || leg.ReadOps < 1 {
			t.Fatalf("%s: ops %d/%d — both sides must make progress", leg.Mode, leg.IngestOps, leg.ReadOps)
		}
		if leg.ReadP50MS <= 0 || leg.ReadP99MS < leg.ReadP50MS {
			t.Fatalf("%s: read quantiles %v/%v", leg.Mode, leg.ReadP50MS, leg.ReadP99MS)
		}
		if leg.StaleP50MS <= 0 || leg.StaleP99MS < leg.StaleP50MS {
			t.Fatalf("%s: staleness quantiles %v/%v", leg.Mode, leg.StaleP50MS, leg.StaleP99MS)
		}
		if !leg.Identical {
			t.Fatalf("%s: cached aggregates differ from a from-scratch resample", leg.Mode)
		}
	}
	// The two legs must really have run different maintenance strategies:
	// write-through patches and never invalidates on the streamed tail
	// appends; the recompute baseline the reverse.
	if rep.Incremental.CachePatches < 1 || rep.Incremental.CacheInvalidations != 0 {
		t.Fatalf("incremental cache accounting: %d patches, %d invalidations",
			rep.Incremental.CachePatches, rep.Incremental.CacheInvalidations)
	}
	if rep.Recompute.CachePatches != 0 || rep.Recompute.CacheInvalidations < 1 {
		t.Fatalf("recompute cache accounting: %d patches, %d invalidations",
			rep.Recompute.CachePatches, rep.Recompute.CacheInvalidations)
	}
	if rep.SpeedupP50 <= 0 || rep.SpeedupP99 <= 0 || rep.IngestRatio <= 0 {
		t.Fatalf("ratios must be positive: %+v", rep)
	}
	out := FormatStreaming(rep)
	for _, want := range []string{"incremental", "recompute", "speedup", "visible p50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatStreaming missing %q in:\n%s", want, out)
		}
	}
}

// TestCheckStreamingCatchesViolations drives the validator with synthetic
// reports so the gates (including the cores>=4-only speedup floor) are
// exercised deterministically regardless of the machine the test runs on.
func TestCheckStreamingCatchesViolations(t *testing.T) {
	good := func() StreamingReport {
		leg := StreamingLeg{
			Mode: "incremental", Shards: 16, GroupCommit: 64, Procs: 4,
			IngestClients: 2, ReadClients: 2, IngestRate: 2000, WindowMS: 40,
			IngestOps: 100, ReadOps: 100, IngestPerSec: 2500, ReadsPerSec: 2500,
			ReadP50MS: 0.01, ReadP99MS: 0.02, StaleP50MS: 0.01, StaleP99MS: 0.02,
			CachePatches: 100, Identical: true,
		}
		rec := leg
		rec.Mode = "recompute"
		rec.CachePatches, rec.CacheInvalidations = 0, 100
		rec.ReadP50MS, rec.ReadP99MS = 0.1, 0.2
		return StreamingReport{
			Incremental: leg, Recompute: rec,
			SpeedupP50: 10, SpeedupP99: 10, IngestRatio: 1, Cores: 8,
		}
	}
	if probs := CheckStreaming(&StreamingReport{}); len(probs) == 0 {
		t.Fatal("zero report must fail")
	}
	r := good()
	if probs := CheckStreaming(&r); len(probs) != 0 {
		t.Fatalf("good report rejected: %v", probs)
	}
	r = good()
	r.Incremental.Identical = false
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("non-identical incremental leg must fail")
	}
	r = good()
	r.Incremental.CachePatches = 0
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("patch-free incremental leg must fail")
	}
	r = good()
	r.Incremental.CacheInvalidations = 5
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("invalidating incremental leg must fail")
	}
	r = good()
	r.Recompute.CachePatches = 5
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("write-through recompute leg must fail")
	}
	r = good()
	r.Recompute.CacheInvalidations = 0
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("invalidation-free recompute leg must fail")
	}
	r = good()
	r.SpeedupP50 = 4.9
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("sub-5x speedup on a 4+ core box must fail")
	}
	// ...but the same speedup on a small box only fails the structural gates.
	r.Cores = 2
	if probs := CheckStreaming(&r); len(probs) != 0 {
		t.Fatalf("speedup floor must not bind below 4 cores: %v", probs)
	}
	r = good()
	r.IngestRatio = 0.5
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("ingest regression beyond 10% must fail")
	}
	r = good()
	r.Incremental.ReadP99MS = r.Incremental.ReadP50MS / 2
	if probs := CheckStreaming(&r); len(probs) == 0 {
		t.Fatal("inverted quantiles must fail")
	}
}

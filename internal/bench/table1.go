// Package bench drives the paper's Table 1 experiment: the same eight
// queries against the all-in-graph engine (Neo4j baseline) and the polyglot
// engine (TimeTravelDB), reporting Mean Response Time and Coefficient of
// Variation per query per system, plus the speedup.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hygraph/internal/dataset"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// Row is one line of the Table 1 reproduction.
type Row struct {
	Query   string
	Desc    string
	NeoMRS  float64 // ms
	NeoCV   float64 // %
	TTDBMRS float64 // ms
	TTDBCV  float64 // %
	Speedup float64 // NeoMRS / TTDBMRS
}

// Config scopes one Table 1 run.
type Config struct {
	Bike dataset.BikeConfig
	Reps int
	// Workers is the Q4–Q8 fan-out width handed to both engines
	// (<= 1 = sequential, the Table 1 reference condition).
	Workers int
	// EffectiveWorkers records the fan-out width the parallel comparison
	// actually used. When Workers is 0 RunParallel resolves it to GOMAXPROCS
	// at run time; a committed baseline must carry the resolved value or the
	// run is not reproducible from its config alone.
	EffectiveWorkers int `json:"effective_workers,omitempty"`
	// Obs, when non-nil, is attached to every engine the harness builds, so
	// the run accumulates query timers and store counters. Never serialized.
	Obs *obs.Registry `json:"-"`
}

// DefaultConfig is a laptop-scale run that still shows the orders-of-
// magnitude separation: 200 stations, 180 days hourly (~860k points).
func DefaultConfig() Config {
	return Config{
		Bike: dataset.BikeConfig{Stations: 200, Districts: 8, Days: 180,
			StepMinutes: 60, TripsPerSt: 5, Seed: 7},
		Reps: 7,
	}
}

// PaperScaleConfig approaches the paper's dataset scale (500 stations, one
// year of hourly data, ~4.4M points). Expect several minutes.
func PaperScaleConfig() Config {
	return Config{Bike: dataset.Table1Bike(), Reps: 10}
}

// Run generates the workload, loads both engines and times all eight
// queries, returning the table rows in query order.
func Run(cfg Config) ([]Row, error) {
	data := dataset.GenerateBike(cfg.Bike)
	neo := ttdb.NewAllInGraph()
	pg := ttdb.NewPolyglot(ts.Week)
	idsNeo, err := data.LoadEngine(neo)
	if err != nil {
		return nil, fmt.Errorf("bench: loading %s: %w", neo.Name(), err)
	}
	idsPg, err := data.LoadEngine(pg)
	if err != nil {
		return nil, fmt.Errorf("bench: loading %s: %w", pg.Name(), err)
	}
	neo.SetWorkers(cfg.Workers)
	pg.SetWorkers(cfg.Workers)
	if cfg.Obs != nil {
		neo.Instrument(cfg.Obs)
		pg.Instrument(cfg.Obs)
	}
	start, end := data.Span()
	// The queried window: the middle half of the data.
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2

	type target struct {
		e   ttdb.Engine
		ids []ttdb.StationID
	}
	targets := []target{{neo, idsNeo}, {pg, idsPg}}

	runQuery := func(tg target, q string) func() {
		e, ids := tg.e, tg.ids
		st0, st1 := ids[0], ids[len(ids)/2]
		switch q {
		case "Q1":
			return func() { e.Q1TimeRange(st0, qStart, qStart+2*ts.Day) }
		case "Q2":
			return func() { e.Q2FilteredRange(st0, qStart, qEnd, 10) }
		case "Q3":
			return func() { e.Q3StationMean(st0, qStart, qEnd) }
		case "Q4":
			return func() { e.Q4AllStationMeans(qStart, qEnd) }
		case "Q5":
			return func() { e.Q5DistrictSums(qStart, qEnd) }
		case "Q6":
			return func() { e.Q6TopKStations(qStart, qEnd, 10) }
		case "Q7":
			return func() { e.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour) }
		case "Q8":
			return func() { e.Q8NeighborMeans(st0, qStart, qEnd) }
		}
		panic("bench: unknown query " + q)
	}

	var rows []Row
	for _, q := range ttdb.QueryNames {
		row := Row{Query: q, Desc: ttdb.Describe(q)}
		for ti, tg := range targets {
			fn := runQuery(tg, q)
			fn() // warm-up rep, not measured
			samples := make([]float64, 0, cfg.Reps)
			for r := 0; r < cfg.Reps; r++ {
				t0 := time.Now()
				fn()
				samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e6)
			}
			mrs, cv := stats(samples)
			if ti == 0 {
				row.NeoMRS, row.NeoCV = mrs, cv
			} else {
				row.TTDBMRS, row.TTDBCV = mrs, cv
			}
		}
		if row.TTDBMRS > 0 {
			row.Speedup = row.NeoMRS / row.TTDBMRS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Format renders rows as the paper's Table 1 layout.
func Format(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %12s %8s %12s %8s %10s  %s\n",
		"Query", "Neo4j-sim", "CV(%)", "TTDB", "CV(%)", "speedup", "description")
	fmt.Fprintf(&b, "%-5s %12s %8s %12s %8s %10s\n",
		"", "MRS (ms)", "", "MRS (ms)", "", "")
	fmt.Fprintln(&b, strings.Repeat("-", 100))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %12.2f %8.2f %12.2f %8.2f %9.1fx  %s\n",
			r.Query, r.NeoMRS, r.NeoCV, r.TTDBMRS, r.TTDBCV, r.Speedup, r.Desc)
	}
	return b.String()
}

// ShapeCheck verifies the qualitative claims of Table 1 against measured
// rows and returns human-readable violations (empty when the shape holds):
// TTDB must win the aggregation-heavy multi-entity queries Q4–Q6 and Q8 by
// at least minHeavy× (the paper's orders-of-magnitude rows), and must win
// every other query outright. Q7 sits in the second tier here: its cost is
// dominated by the correlation arithmetic both engines share, so our
// in-process reproduction shows a single-digit factor where the paper's
// client-server Cypher pipeline showed ~1000× (see EXPERIMENTS.md).
func ShapeCheck(rows []Row, minHeavy float64) []string {
	var problems []string
	byQ := map[string]Row{}
	for _, r := range rows {
		byQ[r.Query] = r
	}
	for _, q := range []string{"Q4", "Q5", "Q6", "Q8"} {
		if r := byQ[q]; r.Speedup < minHeavy {
			problems = append(problems,
				fmt.Sprintf("%s: speedup %.1fx below %.0fx", q, r.Speedup, minHeavy))
		}
	}
	for _, q := range []string{"Q1", "Q2", "Q3", "Q7"} {
		if r := byQ[q]; r.Speedup < 1 {
			problems = append(problems,
				fmt.Sprintf("%s: TTDB slower than all-in-graph (%.2fx)", q, r.Speedup))
		}
	}
	sort.Strings(problems)
	return problems
}

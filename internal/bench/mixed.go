package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hygraph/internal/dataset"
	"hygraph/internal/obs"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// MixedConfig scopes one mixed read/write throughput run: N ingest clients
// streaming points through the durable write path while M query clients
// issue the Q1–Q8 mix against the same engine. Ingest is open-loop — each
// writer offers IngestRate appends/sec, the way sensor streams arrive in
// the paper's hybrid setting — and queries are closed-loop, so both legs
// serve the identical write load and the comparison measures how much
// query throughput the engine sustains alongside it. Clients run for a
// fixed window; a leg that cannot keep up with the offered write rate
// shows it as achieved writes below offered.
type MixedConfig struct {
	IngestClients int `json:"ingest_clients"`
	QueryClients  int `json:"query_clients"`
	// IngestRate is the offered append rate per ingest client in ops/sec
	// (open-loop pacing). The default, 4000, is deliberately above what a
	// single-lock engine can serve alongside the query mix — the shortfall
	// between offered and achieved writes is the measurement.
	IngestRate int `json:"ingest_rate"`
	// WindowMS is the measured window per rep in milliseconds. 0 means 100.
	WindowMS int `json:"window_ms"`
	// Shards is the lock-stripe count of both stores (1 = the single-lock
	// baseline).
	Shards int `json:"shards"`
	// GroupCommit is the max records coalesced per physical WAL flush
	// (1 = per-record flushing, the pre-group-commit baseline).
	GroupCommit int `json:"group_commit"`
	// Procs pins GOMAXPROCS for the measured phase, like testing.B's -cpu:
	// an N-client throughput run schedules N-way, with the OS arbitrating
	// the cores it actually has. 0 means ingest+query clients.
	Procs int `json:"procs"`
	// Reps repeats the measured phase and keeps the best-throughput rep
	// (standard for throughput benchmarks, where interference only ever
	// slows a run down). 0 means 3.
	Reps int `json:"reps"`
}

// MixedReport summarizes one mixed run. WALAppends/WALFlushes are the
// time-series WAL's counters over the measured phase only (preload
// excluded), the direct evidence of group-commit coalescing: per-record
// flushing pins flushes == appends, group commit drives flushes below.
type MixedReport struct {
	Mode          string  `json:"mode"` // "baseline" or "sharded"
	Shards        int     `json:"shards"`
	GroupCommit   int     `json:"group_commit"`
	Procs         int     `json:"procs"`
	IngestClients int     `json:"ingest_clients"`
	QueryClients  int     `json:"query_clients"`
	IngestRate    int     `json:"ingest_rate"`
	WindowMS      int     `json:"window_ms"`
	IngestOps     int64   `json:"ingest_ops"`
	QueryOps      int64   `json:"query_ops"`
	TotalOps      int64   `json:"total_ops"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	WALAppends    int64   `json:"wal_appends"`
	WALFlushes    int64   `json:"wal_flushes"`
}

// MixedComparison pairs the single-stripe, per-record-flush baseline with
// the striped group-commit run over the identical workload — the scaling
// claim of the mixed benchmark in one record.
type MixedComparison struct {
	Baseline MixedReport `json:"baseline"`
	Sharded  MixedReport `json:"sharded"`
	// Speedup is Sharded.OpsPerSec / Baseline.OpsPerSec — total completed
	// operations of both kinds.
	Speedup float64 `json:"speedup"`
	// WriteSpeedup is the ratio of served write throughput at the identical
	// offered rate: how much more of the ingest load the striped engine
	// absorbs while the same query mix runs. ReadSpeedup is the query-side
	// ratio over the same windows.
	WriteSpeedup float64 `json:"write_speedup"`
	ReadSpeedup  float64 `json:"read_speedup"`
}

// MixedThroughput preloads the bike network through the durable ingest
// protocol, then runs mc.IngestClients goroutines streaming AppendPoint
// writes concurrently with mc.QueryClients goroutines issuing the Q1–Q8
// mix, all against one DurablePolyglot logging to real temp files (so a
// WAL flush costs a syscall, as deployed). Every client loops until the
// window closes; the report carries completed ops of each kind plus the
// measured-phase WAL append/flush counts.
func MixedThroughput(bike dataset.BikeConfig, mc MixedConfig) (MixedReport, error) {
	if mc.IngestClients <= 0 || mc.QueryClients <= 0 {
		return MixedReport{}, fmt.Errorf("bench: mixed client counts must be positive, got %d/%d",
			mc.IngestClients, mc.QueryClients)
	}
	if mc.IngestRate <= 0 {
		mc.IngestRate = 4000
	}
	if mc.WindowMS <= 0 {
		mc.WindowMS = 100
	}
	if mc.Procs <= 0 {
		mc.Procs = mc.IngestClients + mc.QueryClients
	}
	if mc.Reps <= 0 {
		mc.Reps = 3
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(mc.Procs))
	data := dataset.GenerateBike(bike)

	dir, err := os.MkdirTemp("", "hybench-mixed-")
	if err != nil {
		return MixedReport{}, fmt.Errorf("bench: mixed temp dir: %w", err)
	}
	defer os.RemoveAll(dir)
	logs := make([]*os.File, 0, 3)
	defer func() {
		for _, f := range logs {
			f.Close()
		}
	}()
	for _, name := range []string{"graph.wal", "ts.wal", "intent.journal"} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return MixedReport{}, fmt.Errorf("bench: mixed log file: %w", err)
		}
		logs = append(logs, f)
	}

	reg := obs.New()
	eng := ttdb.NewPolyglotSharded(ts.Week, mc.Shards)
	// Identical intra-query fan-out on both legs, capped at the physical
	// cores: client-level concurrency is Procs, but fanning a single scan
	// wider than the hardware only adds goroutine churn. The single-stripe
	// baseline degenerates to a serial scan regardless, because it has only
	// one stripe to fan over — precisely the limit striping removes.
	if w := runtime.NumCPU(); w < mc.Procs {
		eng.SetWorkers(w)
	} else {
		eng.SetWorkers(mc.Procs)
	}
	d := ttdb.ResumeDurable(eng, logs[0], logs[1], logs[2], 0)
	d.SetGroupCommit(mc.GroupCommit)
	d.Instrument(reg)

	ids := make([]ttdb.StationID, len(data.Stations))
	for i, st := range data.Stations {
		id, err := d.IngestStation(st.Name, st.District, st.Availability)
		if err != nil {
			return MixedReport{}, fmt.Errorf("bench: mixed preload %s: %w", st.Name, err)
		}
		ids[i] = id
	}
	for _, tr := range data.Trips {
		if err := d.AddTrip(ids[tr.From], ids[tr.To], tr.Count); err != nil {
			return MixedReport{}, fmt.Errorf("bench: mixed preload trip: %w", err)
		}
	}
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// One counter for the whole run (all reps): every append gets a fresh
	// timestamp past the preloaded span, so ingest is always an append,
	// never an upsert.
	var tsSeq atomic.Int64
	ingest := func(c, op int) error {
		st := ids[(c*31+op)%len(ids)]
		t := end + ts.Time(tsSeq.Add(1))*ts.Minute
		return d.AppendPoint(st, t, float64((c+op)%48))
	}
	query := func(c, op int) error {
		st := ids[(c*7919+op)%len(ids)]
		st2 := ids[(c*7919+op+len(ids)/2)%len(ids)]
		var err error
		switch op % len(ttdb.QueryNames) {
		case 0:
			_, err = d.Q1TimeRange(st, qStart, qStart+2*ts.Day)
		case 1:
			_, err = d.Q2FilteredRange(st, qStart, qEnd, 10)
		case 2:
			_, err = d.Q3StationMean(st, qStart, qEnd)
		case 3:
			_, err = d.Q4AllStationMeans(qStart, qEnd)
		case 4:
			_, err = d.Q5DistrictSums(qStart, qEnd)
		case 5:
			_, err = d.Q6TopKStations(qStart, qEnd, 10)
		case 6:
			_, err = d.Q7Correlation(st, st2, qStart, qEnd, ts.Hour)
		case 7:
			_, err = d.Q8NeighborMeans(st, qStart, qEnd)
		}
		return err
	}

	window := time.Duration(mc.WindowMS) * time.Millisecond
	// Writers deliver their offered rate in 5ms batches, the way sensor
	// gateways flush: coarse slots survive scheduler wake-up jitter that
	// sub-millisecond per-op sleeps cannot, and the burst exercises the
	// write path's contention behaviour.
	const slot = 5 * time.Millisecond
	perSlot := mc.IngestRate * int(slot) / int(time.Second)
	if perSlot < 1 {
		perSlot = 1
	}
	measure := func() (ingestOps, queryOps int64, elapsed time.Duration, appends, flushes int64, err error) {
		pre := reg.Snapshot()
		var wg sync.WaitGroup
		t0 := time.Now()
		deadline := t0.Add(window)
		var nIngest, nQuery atomic.Int64
		for c := 0; c < mc.IngestClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Open-loop pacing: a burst of perSlot appends per 5ms
				// slot. A slot that can't be served on time is dropped
				// rather than queued, like a sensor stream — an overloaded
				// engine shows achieved writes below the offered rate
				// instead of degenerating into a closed-loop write hammer.
				next := t0
				for op := 0; ; {
					now := time.Now()
					if !now.Before(deadline) {
						return
					}
					if now.Before(next) {
						time.Sleep(next.Sub(now))
						if !time.Now().Before(deadline) {
							return
						}
					}
					for i := 0; i < perSlot; i++ {
						if err := ingest(c, op); err != nil {
							fail(fmt.Errorf("bench: mixed ingest client %d: %w", c, err))
							return
						}
						op++
						nIngest.Add(1)
					}
					if next = next.Add(slot); next.Before(time.Now()) {
						next = time.Now()
					}
				}
			}(c)
		}
		for c := 0; c < mc.QueryClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for op := 0; time.Now().Before(deadline); op++ {
					if err := query(c, op); err != nil {
						fail(fmt.Errorf("bench: mixed query client %d: %w", c, err))
						return
					}
					nQuery.Add(1)
				}
			}(c)
		}
		wg.Wait()
		elapsed = time.Since(t0)
		if firstErr != nil {
			return 0, 0, 0, 0, 0, firstErr
		}
		post := reg.Snapshot()
		return nIngest.Load(), nQuery.Load(), elapsed,
			post.Counters["tsstore.wal.appends"] - pre.Counters["tsstore.wal.appends"],
			post.Counters["tsstore.wal.flushes"] - pre.Counters["tsstore.wal.flushes"],
			nil
	}

	mode := "sharded"
	if mc.Shards <= 1 {
		mode = "baseline"
	}
	rep := MixedReport{
		Mode:          mode,
		Shards:        mc.Shards,
		GroupCommit:   mc.GroupCommit,
		Procs:         mc.Procs,
		IngestClients: mc.IngestClients,
		QueryClients:  mc.QueryClients,
		IngestRate:    mc.IngestRate,
		WindowMS:      mc.WindowMS,
	}
	// Best of Reps: co-tenant interference and cold caches only ever slow a
	// rep down, so the fastest rep is the closest estimate of what the
	// configuration can actually sustain.
	for r := 0; r < mc.Reps; r++ {
		in, q, elapsed, appends, flushes, err := measure()
		if err != nil {
			return MixedReport{}, err
		}
		if elapsed <= 0 {
			continue
		}
		ops := float64(in+q) / elapsed.Seconds()
		if ops > rep.OpsPerSec {
			rep.OpsPerSec = ops
			rep.IngestOps = in
			rep.QueryOps = q
			rep.TotalOps = in + q
			rep.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
			rep.WALAppends = appends
			rep.WALFlushes = flushes
		}
	}
	if rep.OpsPerSec == 0 {
		return MixedReport{}, fmt.Errorf("bench: mixed %s run measured no throughput", mode)
	}
	return rep, nil
}

// RunMixed runs the mixed workload twice — single stripe with per-record
// flushing, then striped stores with group commit — and pairs the reports.
func RunMixed(cfg Config, ingest, query, windowMS int) (MixedComparison, error) {
	base, err := MixedThroughput(cfg.Bike, MixedConfig{
		IngestClients: ingest, QueryClients: query, WindowMS: windowMS,
		Shards: 1, GroupCommit: 1,
	})
	if err != nil {
		return MixedComparison{}, err
	}
	sharded, err := MixedThroughput(cfg.Bike, MixedConfig{
		IngestClients: ingest, QueryClients: query, WindowMS: windowMS,
		Shards: tsstore.DefaultShards, GroupCommit: 64,
	})
	if err != nil {
		return MixedComparison{}, err
	}
	cmp := MixedComparison{Baseline: base, Sharded: sharded}
	if base.OpsPerSec > 0 {
		cmp.Speedup = sharded.OpsPerSec / base.OpsPerSec
	}
	if base.IngestOps > 0 {
		cmp.WriteSpeedup = float64(sharded.IngestOps) / float64(base.IngestOps)
	}
	if base.QueryOps > 0 {
		cmp.ReadSpeedup = float64(sharded.QueryOps) / float64(base.QueryOps)
	}
	return cmp, nil
}

// FormatMixed renders a mixed comparison as a readable block.
func FormatMixed(c MixedComparison) string {
	line := func(r MixedReport) string {
		offered := float64(r.IngestClients*r.IngestRate) * float64(r.WindowMS) / 1000
		return fmt.Sprintf("  %-8s shards=%-2d group=%-2d procs=%-2d  %d ingest @ %d/s + %d query clients, %d ms window: %d/%.0f writes + %d reads (%.0f ops/s), ts-wal %d appends / %d flushes",
			r.Mode, r.Shards, r.GroupCommit, r.Procs, r.IngestClients, r.IngestRate, r.QueryClients, r.WindowMS,
			r.IngestOps, offered, r.QueryOps, r.OpsPerSec, r.WALAppends, r.WALFlushes)
	}
	return fmt.Sprintf("mixed read/write throughput:\n%s\n%s\n  speedup: %.2fx total ops/s, %.2fx served writes, %.2fx reads at the same offered load\n",
		line(c.Baseline), line(c.Sharded), c.Speedup, c.WriteSpeedup, c.ReadSpeedup)
}

package bench

import (
	"math"
	"strings"
	"testing"

	"hygraph/internal/dataset"
)

func tinyConfig() Config {
	return Config{
		Bike: dataset.BikeConfig{Stations: 10, Districts: 2, Days: 14,
			StepMinutes: 60, TripsPerSt: 2, Seed: 7},
		Reps: 2,
	}
}

func TestRunProducesAllRows(t *testing.T) {
	rows, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, r := range rows {
		if r.Query == "" || r.Desc == "" {
			t.Fatalf("row %d incomplete: %+v", i, r)
		}
		if r.NeoMRS < 0 || r.TTDBMRS < 0 || r.NeoCV < 0 || r.TTDBCV < 0 {
			t.Fatalf("row %d negative stats: %+v", i, r)
		}
		if r.TTDBMRS > 0 && r.Speedup <= 0 {
			t.Fatalf("row %d speedup: %+v", i, r)
		}
	}
}

func TestFormatContainsEveryQuery(t *testing.T) {
	rows, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rows)
	for _, q := range []string{"Q1", "Q4", "Q8", "MRS", "speedup"} {
		if !strings.Contains(out, q) {
			t.Fatalf("format missing %q:\n%s", q, out)
		}
	}
}

func TestStats(t *testing.T) {
	mean, cv := stats([]float64{10, 10, 10})
	if mean != 10 || cv != 0 {
		t.Fatalf("constant samples: mean=%v cv=%v", mean, cv)
	}
	// Sample (n−1) convention: {5, 15} has sd = sqrt(50/1) ≈ 7.0711,
	// CV ≈ 70.711% — not the population formula's 50%.
	mean, cv = stats([]float64{5, 15})
	if want := 100 * math.Sqrt(50) / 10; mean != 10 || math.Abs(cv-want) > 1e-9 {
		t.Fatalf("spread samples: mean=%v cv=%v want cv=%v", mean, cv, want)
	}
	if m, c := stats(nil); m != 0 || c != 0 {
		t.Fatalf("empty samples: %v %v", m, c)
	}
	// Single sample: no spread estimate exists, CV must stay 0.
	if m, c := stats([]float64{42}); m != 42 || c != 0 {
		t.Fatalf("single sample: %v %v", m, c)
	}
	// Zero mean must not divide through to ±Inf.
	if m, c := stats([]float64{-5, 5}); m != 0 || c != 0 {
		t.Fatalf("zero-mean samples: %v %v", m, c)
	}
}

func TestShapeCheckDetectsViolations(t *testing.T) {
	good := []Row{
		{Query: "Q1", Speedup: 2}, {Query: "Q2", Speedup: 3},
		{Query: "Q3", Speedup: 4}, {Query: "Q4", Speedup: 100},
		{Query: "Q5", Speedup: 100}, {Query: "Q6", Speedup: 100},
		{Query: "Q7", Speedup: 5}, {Query: "Q8", Speedup: 100},
	}
	if p := ShapeCheck(good, 50); len(p) != 0 {
		t.Fatalf("good rows flagged: %v", p)
	}
	bad := append([]Row(nil), good...)
	bad[3].Speedup = 2   // Q4 below heavy threshold
	bad[0].Speedup = 0.5 // Q1 losing
	p := ShapeCheck(bad, 50)
	if len(p) != 2 {
		t.Fatalf("violations=%v", p)
	}
}

func TestConfigsDiffer(t *testing.T) {
	d := DefaultConfig()
	p := PaperScaleConfig()
	if p.Bike.Stations <= d.Bike.Stations || p.Bike.Days <= d.Bike.Days {
		t.Fatal("paper scale should exceed default")
	}
}

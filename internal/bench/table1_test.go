package bench

import (
	"strings"
	"testing"

	"hygraph/internal/dataset"
)

func tinyConfig() Config {
	return Config{
		Bike: dataset.BikeConfig{Stations: 10, Districts: 2, Days: 14,
			StepMinutes: 60, TripsPerSt: 2, Seed: 7},
		Reps: 2,
	}
}

func TestRunProducesAllRows(t *testing.T) {
	rows, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, r := range rows {
		if r.Query == "" || r.Desc == "" {
			t.Fatalf("row %d incomplete: %+v", i, r)
		}
		if r.NeoMRS < 0 || r.TTDBMRS < 0 || r.NeoCV < 0 || r.TTDBCV < 0 {
			t.Fatalf("row %d negative stats: %+v", i, r)
		}
		if r.TTDBMRS > 0 && r.Speedup <= 0 {
			t.Fatalf("row %d speedup: %+v", i, r)
		}
	}
}

func TestFormatContainsEveryQuery(t *testing.T) {
	rows, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rows)
	for _, q := range []string{"Q1", "Q4", "Q8", "MRS", "speedup"} {
		if !strings.Contains(out, q) {
			t.Fatalf("format missing %q:\n%s", q, out)
		}
	}
}

func TestShapeCheckDetectsViolations(t *testing.T) {
	good := []Row{
		{Query: "Q1", Speedup: 2}, {Query: "Q2", Speedup: 3},
		{Query: "Q3", Speedup: 4}, {Query: "Q4", Speedup: 100},
		{Query: "Q5", Speedup: 100}, {Query: "Q6", Speedup: 100},
		{Query: "Q7", Speedup: 5}, {Query: "Q8", Speedup: 100},
	}
	if p := ShapeCheck(good, 50); len(p) != 0 {
		t.Fatalf("good rows flagged: %v", p)
	}
	bad := append([]Row(nil), good...)
	bad[3].Speedup = 2   // Q4 below heavy threshold
	bad[0].Speedup = 0.5 // Q1 losing
	p := ShapeCheck(bad, 50)
	if len(p) != 2 {
		t.Fatalf("violations=%v", p)
	}
}

func TestConfigsDiffer(t *testing.T) {
	d := DefaultConfig()
	p := PaperScaleConfig()
	if p.Bike.Stations <= d.Bike.Stations || p.Bike.Days <= d.Bike.Days {
		t.Fatal("paper scale should exceed default")
	}
}

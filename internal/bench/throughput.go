package bench

import (
	"fmt"
	"sync"
	"time"

	"hygraph/internal/dataset"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// ThroughputReport summarizes one concurrent-client run: N goroutines each
// issuing the Q1–Q8 mix back-to-back against one shared polyglot engine.
type ThroughputReport struct {
	Engine       string  `json:"engine"`
	Clients      int     `json:"clients"`
	OpsPerClient int     `json:"ops_per_client"`
	TotalOps     int     `json:"total_ops"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// Throughput loads the polyglot engine once and hammers it with `clients`
// concurrent goroutines, each issuing `opsPerClient` queries drawn
// round-robin from the Q1–Q8 mix over deterministically varied stations.
// It exercises the concurrent-reader locking end to end — run it under
// -race to surface ordering bugs — and measures aggregate queries/second.
// The engine's intra-query fan-out stays at cfg.Workers; with many clients
// the inter-query concurrency already saturates the cores.
func Throughput(cfg Config, clients, opsPerClient int) (ThroughputReport, error) {
	if clients <= 0 || opsPerClient <= 0 {
		return ThroughputReport{}, fmt.Errorf("bench: clients and ops must be positive, got %d/%d", clients, opsPerClient)
	}
	data := dataset.GenerateBike(cfg.Bike)
	pg := ttdb.NewPolyglot(ts.Week)
	ids, err := data.LoadEngine(pg)
	if err != nil {
		return ThroughputReport{}, fmt.Errorf("bench: loading %s: %w", pg.Name(), err)
	}
	pg.SetWorkers(cfg.Workers)
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2

	run := func(client, op int) {
		st := ids[(client*7919+op)%len(ids)] // deterministic spread over stations
		st2 := ids[(client*7919+op+len(ids)/2)%len(ids)]
		switch op % len(ttdb.QueryNames) {
		case 0:
			pg.Q1TimeRange(st, qStart, qStart+2*ts.Day)
		case 1:
			pg.Q2FilteredRange(st, qStart, qEnd, 10)
		case 2:
			pg.Q3StationMean(st, qStart, qEnd)
		case 3:
			pg.Q4AllStationMeans(qStart, qEnd)
		case 4:
			pg.Q5DistrictSums(qStart, qEnd)
		case 5:
			pg.Q6TopKStations(qStart, qEnd, 10)
		case 6:
			pg.Q7Correlation(st, st2, qStart, qEnd, ts.Hour)
		case 7:
			pg.Q8NeighborMeans(st, qStart, qEnd)
		}
	}

	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; op < opsPerClient; op++ {
				run(c, op)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	total := clients * opsPerClient
	rep := ThroughputReport{
		Engine:       pg.Name(),
		Clients:      clients,
		OpsPerClient: opsPerClient,
		TotalOps:     total,
		ElapsedMS:    float64(elapsed.Nanoseconds()) / 1e6,
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(total) / elapsed.Seconds()
	}
	return rep, nil
}

// FormatThroughput renders a throughput report as one readable block.
func FormatThroughput(r ThroughputReport) string {
	return fmt.Sprintf("engine %s: %d clients x %d ops = %d queries in %.1f ms (%.0f q/s)",
		r.Engine, r.Clients, r.OpsPerClient, r.TotalOps, r.ElapsedMS, r.OpsPerSec)
}

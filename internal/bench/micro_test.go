package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"hygraph/internal/dataset"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// Microbenchmark workload: small enough to preload quickly, large enough
// that per-shard fixed costs don't swamp the scan work.
func microBike() dataset.BikeConfig {
	cfg := DefaultConfig().Bike
	cfg.Stations = 40
	cfg.Days = 30
	return cfg
}

func microEngine(b *testing.B, shards int) (*ttdb.Polyglot, []ttdb.StationID, ts.Time, ts.Time) {
	b.Helper()
	data := dataset.GenerateBike(microBike())
	eng := ttdb.NewPolyglotSharded(ts.Week, shards)
	ids, err := data.LoadEngine(eng)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetWorkers(runtime.GOMAXPROCS(0))
	start, end := data.Span()
	qStart := start + (end-start)/4
	return eng, ids, qStart, qStart + (end-start)/2
}

func microDurable(b *testing.B, shards, group int) (*ttdb.DurablePolyglot, []ttdb.StationID, ts.Time) {
	b.Helper()
	dir := b.TempDir()
	logs := make([]*os.File, 0, 3)
	for _, name := range []string{"graph.wal", "ts.wal", "intent.journal"} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			b.Fatal(err)
		}
		logs = append(logs, f)
	}
	b.Cleanup(func() {
		for _, f := range logs {
			f.Close()
		}
	})
	data := dataset.GenerateBike(microBike())
	eng := ttdb.NewPolyglotSharded(ts.Week, shards)
	eng.SetWorkers(runtime.GOMAXPROCS(0))
	d := ttdb.ResumeDurable(eng, logs[0], logs[1], logs[2], 0)
	d.SetGroupCommit(group)
	ids := make([]ttdb.StationID, len(data.Stations))
	for i, st := range data.Stations {
		id, err := d.IngestStation(st.Name, st.District, st.Availability)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	_, end := data.Span()
	return d, ids, end
}

// BenchmarkIngest measures the durable streaming write path (AppendPoint:
// WAL enqueue + group commit + store insert) across stripe/batch configs.
// Run with -cpu 1,4,8 to see striping remove the writer convoy.
func BenchmarkIngest(b *testing.B) {
	for _, p := range []struct{ shards, group int }{
		{1, 1},
		{tsstore.DefaultShards, 64},
	} {
		b.Run(fmt.Sprintf("shards=%d,group=%d", p.shards, p.group), func(b *testing.B) {
			d, ids, end := microDurable(b, p.shards, p.group)
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					st := ids[int(n)%len(ids)]
					if err := d.AppendPoint(st, end+ts.Time(n)*ts.Minute, float64(n%48)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkAggregateSharded measures the fan-out aggregate (Q4: per-station
// means folded in insertion order) against stripe count. With -cpu 1,4,8
// the striped store scales the scan; the single stripe cannot.
func BenchmarkAggregateSharded(b *testing.B) {
	for _, shards := range []int{1, 4, tsstore.DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, _, qStart, qEnd := microEngine(b, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m := eng.Q4AllStationMeans(qStart, qEnd); len(m) == 0 {
					b.Fatal("empty aggregate")
				}
			}
		})
	}
}

// BenchmarkMixedReadWrite interleaves durable appends with reads (7 cheap
// point reads + 1 fan-out aggregate per 8-op cycle, mirroring the mixed
// bench's query mix) on every goroutine. Run with -cpu 1,4,8: the single
// stripe serializes readers behind each writer, the striped store does not.
func BenchmarkMixedReadWrite(b *testing.B) {
	for _, p := range []struct{ shards, group int }{
		{1, 1},
		{tsstore.DefaultShards, 64},
	} {
		b.Run(fmt.Sprintf("shards=%d,group=%d", p.shards, p.group), func(b *testing.B) {
			d, ids, end := microDurable(b, p.shards, p.group)
			qEnd := end
			qStart := end - 7*ts.Day
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					st := ids[int(n)%len(ids)]
					var err error
					switch n % 8 {
					case 0:
						_, err = d.Q4AllStationMeans(qStart, qEnd)
					case 1, 2, 3:
						_, err = d.Q3StationMean(st, qStart, qEnd)
					default:
						err = d.AppendPoint(st, end+ts.Time(n)*ts.Minute, float64(n%48))
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

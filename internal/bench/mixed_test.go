package bench

import (
	"strings"
	"testing"

	"hygraph/internal/dataset"
)

func tinyBike() dataset.BikeConfig {
	return dataset.BikeConfig{Stations: 12, Districts: 3, Days: 3, StepMinutes: 60, TripsPerSt: 2, Seed: 7}
}

func TestMixedThroughputRejectsEmptyClients(t *testing.T) {
	if _, err := MixedThroughput(tinyBike(), MixedConfig{IngestClients: 0, QueryClients: 1}); err == nil {
		t.Fatal("want error for zero ingest clients")
	}
	if _, err := MixedThroughput(tinyBike(), MixedConfig{IngestClients: 1, QueryClients: 0}); err == nil {
		t.Fatal("want error for zero query clients")
	}
}

func TestMixedThroughputReport(t *testing.T) {
	rep, err := MixedThroughput(tinyBike(), MixedConfig{
		IngestClients: 2, QueryClients: 2, IngestRate: 1000, WindowMS: 30,
		Shards: 4, GroupCommit: 8, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "sharded" || rep.Shards != 4 || rep.GroupCommit != 8 {
		t.Fatalf("config echo wrong: %+v", rep)
	}
	if rep.Procs != 4 {
		t.Fatalf("procs default: got %d want clients total 4", rep.Procs)
	}
	if rep.IngestOps < 1 || rep.QueryOps < 1 || rep.TotalOps != rep.IngestOps+rep.QueryOps {
		t.Fatalf("op counts: %+v", rep)
	}
	if rep.OpsPerSec <= 0 || rep.ElapsedMS <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
	// Every completed append enqueued exactly one WAL record, and flushes
	// never exceed appends.
	if rep.WALAppends != rep.IngestOps {
		t.Fatalf("wal appends %d != ingest ops %d", rep.WALAppends, rep.IngestOps)
	}
	if rep.WALFlushes > rep.WALAppends || rep.WALFlushes < 1 {
		t.Fatalf("flush accounting: %d flushes for %d appends", rep.WALFlushes, rep.WALAppends)
	}
}

func TestRunMixedComparison(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bike = tinyBike()
	cmp, err := RunMixed(cfg, 2, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline.Shards != 1 || cmp.Baseline.GroupCommit != 1 {
		t.Fatalf("baseline leg not single-lock: %+v", cmp.Baseline)
	}
	if cmp.Sharded.Shards < 2 || cmp.Sharded.GroupCommit < 2 {
		t.Fatalf("sharded leg not striped: %+v", cmp.Sharded)
	}
	if cmp.Speedup <= 0 || cmp.WriteSpeedup <= 0 || cmp.ReadSpeedup <= 0 {
		t.Fatalf("speedups must be positive: %+v", cmp)
	}
	if probs := checkMixed(&cmp); len(probs) != 0 {
		t.Fatalf("fresh comparison fails validation: %v", probs)
	}
	out := FormatMixed(cmp)
	for _, want := range []string{"baseline", "sharded", "speedup", "served writes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatMixed missing %q in:\n%s", want, out)
		}
	}
}

func TestCheckMixedCatchesViolations(t *testing.T) {
	good := func() MixedComparison {
		rep := MixedReport{
			Mode: "baseline", Shards: 1, GroupCommit: 1, Procs: 4,
			IngestClients: 2, QueryClients: 2, IngestRate: 1000, WindowMS: 20,
			IngestOps: 10, QueryOps: 10, TotalOps: 20,
			ElapsedMS: 20, OpsPerSec: 1000, WALAppends: 10, WALFlushes: 10,
		}
		sh := rep
		sh.Mode, sh.Shards, sh.GroupCommit = "sharded", 16, 64
		sh.WALFlushes = 4
		return MixedComparison{Baseline: rep, Sharded: sh, Speedup: 1.5, WriteSpeedup: 2, ReadSpeedup: 1}
	}
	if probs := checkMixed(&MixedComparison{}); len(probs) == 0 {
		t.Fatal("zero comparison must fail")
	}
	c := good()
	if probs := checkMixed(&c); len(probs) != 0 {
		t.Fatalf("good comparison rejected: %v", probs)
	}
	c = good()
	c.Baseline.Shards = 2
	if probs := checkMixed(&c); len(probs) == 0 {
		t.Fatal("striped baseline must fail")
	}
	c = good()
	c.Sharded.GroupCommit = 1
	if probs := checkMixed(&c); len(probs) == 0 {
		t.Fatal("unbatched sharded leg must fail")
	}
	c = good()
	c.Sharded.WALFlushes = c.Sharded.WALAppends + 1
	if probs := checkMixed(&c); len(probs) == 0 {
		t.Fatal("flushes above appends must fail")
	}
	c = good()
	c.Sharded.Procs = 8
	if probs := checkMixed(&c); len(probs) == 0 {
		t.Fatal("mismatched procs must fail")
	}
	c = good()
	c.Baseline.QueryOps = 0
	if probs := checkMixed(&c); len(probs) == 0 {
		t.Fatal("read-starved run must fail")
	}
	c = good()
	c.Speedup = 0
	if probs := checkMixed(&c); len(probs) == 0 {
		t.Fatal("zero speedup must fail")
	}
}

package coord_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hygraph/internal/coord"
	"hygraph/internal/faults"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// chaosWorld builds a 3-partition coordinator with a deterministic workload
// and returns it with the per-logical-station gids.
func chaosWorld(t *testing.T) (*coord.Coordinator, []ttdb.StationID) {
	t.Helper()
	c, err := coord.NewMem(3, ts.Week)
	if err != nil {
		t.Fatal(err)
	}
	var gids []ttdb.StationID
	for i := 0; i < 12; i++ {
		gid, err := c.IngestStation(fmt.Sprintf("st-%03d", i), fmt.Sprintf("d-%d", i%3), propSeries(i))
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	for i := 0; i < len(gids); i++ {
		if err := c.AddTrip(gids[i], gids[(i+1)%len(gids)], 2+i); err != nil {
			t.Fatal(err)
		}
	}
	return c, gids
}

// partOwning returns a partition index that owns at least one of the gids,
// along with one gid it owns, using the fact that arming its fault point
// degrades exactly that station's Q3.
func partOwning(t *testing.T, c *coord.Coordinator, gids []ttdb.StationID) (int, ttdb.StationID) {
	t.Helper()
	defer faults.Reset()
	for p := 0; p < c.NumPartitions(); p++ {
		faults.Enable(coord.FaultPartition(p), faults.Spec{Err: errors.New("probe")})
		for _, gid := range gids {
			if _, err := c.Q3StationMeanCtx(context.Background(), gid, 0, propSpan); err != nil {
				faults.Reset()
				return p, gid
			}
		}
		faults.Reset()
	}
	t.Fatal("no partition owns any station")
	return 0, 0
}

// TestPartitionFaultYieldsTypedPartial proves the degraded contract: a
// faulted partition turns every scatter into a typed PartialError — never a
// hang or a panic — with exact accounting of who answered, zero-filled
// shares for the lost partition, and untouched answers everywhere else.
func TestPartitionFaultYieldsTypedPartial(t *testing.T) {
	defer faults.Reset()
	c, gids := chaosWorld(t)
	start, end := propSpan/4, 3*propSpan/4
	ctx := context.Background()

	healthyQ4, err := c.Q4AllStationMeansCtx(ctx, start, end)
	if err != nil {
		t.Fatalf("healthy Q4: %v", err)
	}

	pf, victim := partOwning(t, c, gids)
	cause := errors.New("partition network cable pulled")
	faults.Enable(coord.FaultPartition(pf), faults.Spec{Err: cause})

	got, err := c.Q4AllStationMeansCtx(ctx, start, end)
	if err == nil {
		t.Fatal("faulted Q4 returned no error")
	}
	if !errors.Is(err, ttdb.ErrDegraded) {
		t.Fatalf("faulted Q4 error is not ErrDegraded: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("faulted Q4 error does not carry the cause: %v", err)
	}
	var perr *coord.PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("faulted Q4 error is not a *PartialError: %T", err)
	}
	if perr.Query != "Q4" {
		t.Fatalf("partial names query %q, want Q4", perr.Query)
	}
	if _, ok := perr.Failed[pf]; !ok || len(perr.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly partition %d", perr.Failed, pf)
	}
	wantAnswered := 0
	for _, p := range perr.Answered {
		if p == pf {
			t.Fatalf("faulted partition %d listed as answered", pf)
		}
		wantAnswered++
	}
	if wantAnswered != c.NumPartitions()-1 {
		t.Fatalf("answered %v, want the %d healthy partitions", perr.Answered, c.NumPartitions()-1)
	}
	// Every station still enumerated; lost shares zero, healthy shares exact.
	if len(got) != len(healthyQ4) {
		t.Fatalf("degraded Q4 has %d stations, want %d", len(got), len(healthyQ4))
	}
	if got[victim] != 0 {
		t.Fatalf("victim station mean = %v, want 0", got[victim])
	}
	for gid, v := range got {
		if v != 0 && v != healthyQ4[gid] {
			t.Fatalf("healthy station %d changed under partial: %v vs %v", gid, v, healthyQ4[gid])
		}
	}

	// Q5 and Q6 degrade the same way (typed, accounted, no hang).
	if _, err := c.Q5DistrictSumsCtx(ctx, start, end); !errors.Is(err, ttdb.ErrDegraded) {
		t.Fatalf("faulted Q5: %v", err)
	}
	if _, err := c.Q6TopKStationsCtx(ctx, start, end, 5); !errors.Is(err, ttdb.ErrDegraded) {
		t.Fatalf("faulted Q6: %v", err)
	}

	// Routed queries: the victim's owner degrades, other owners answer clean.
	if _, err := c.Q3StationMeanCtx(ctx, victim, start, end); !errors.Is(err, ttdb.ErrDegraded) {
		t.Fatalf("Q3 on victim's owner: %v", err)
	}
	cleanSeen := false
	for _, gid := range gids {
		if _, err := c.Q3StationMeanCtx(ctx, gid, start, end); err == nil {
			cleanSeen = true
			break
		}
	}
	if !cleanSeen {
		t.Fatal("no station answered cleanly with one partition down")
	}

	// Q8 with the home partition down: neighbor set survives with zero means.
	ns, err := c.Q8NeighborMeansCtx(ctx, victim, start, end)
	if !errors.Is(err, ttdb.ErrDegraded) {
		t.Fatalf("Q8 on victim: %v", err)
	}
	if len(ns) == 0 {
		t.Fatal("Q8 partial lost the neighbor set")
	}
	for gid, v := range ns {
		if v != 0 {
			t.Fatalf("Q8 partial neighbor %d has non-zero mean %v", gid, v)
		}
	}

	// A done context wins over the partial.
	done, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Q4AllStationMeansCtx(done, start, end); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Q4 = %v, want context.Canceled", err)
	}

	// Disarm: answers heal completely.
	faults.Reset()
	healed, err := c.Q4AllStationMeansCtx(ctx, start, end)
	if err != nil {
		t.Fatalf("healed Q4: %v", err)
	}
	for gid, v := range healthyQ4 {
		if healed[gid] != v {
			t.Fatalf("healed Q4[%d] = %v, want %v", gid, healed[gid], v)
		}
	}
}

// TestChaosConcurrent hammers the coordinator with concurrent queries,
// ingest and fault flips for three iterations — the race battery (-race in
// `make verify`) proves the fan-out is clean; here we prove no panic, no
// hang, and that every error is either a typed partial or a context error.
func TestChaosConcurrent(t *testing.T) {
	defer faults.Reset()
	for iter := 0; iter < 3; iter++ {
		c, gids := chaosWorld(t)
		start, end := propSpan/4, 3*propSpan/4
		stop := make(chan struct{})
		var wg sync.WaitGroup

		checkErr := func(err error) {
			if err == nil {
				return
			}
			if errors.Is(err, ttdb.ErrDegraded) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return
			}
			panic(fmt.Sprintf("unexpected error class: %v", err))
		}

		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
					gid := gids[(w+i)%len(gids)]
					switch i % 5 {
					case 0:
						_, err := c.Q4AllStationMeansCtx(ctx, start, end)
						checkErr(err)
					case 1:
						_, err := c.Q5DistrictSumsCtx(ctx, start, end)
						checkErr(err)
					case 2:
						_, err := c.Q6TopKStationsCtx(ctx, start, end, 5)
						checkErr(err)
					case 3:
						_, err := c.Q8NeighborMeansCtx(ctx, gid, start, end)
						checkErr(err)
					default:
						_, err := c.Q7CorrelationCtx(ctx, gid, gids[(w+i+3)%len(gids)], start, end, ts.Hour)
						checkErr(err)
					}
					cancel()
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gid, err := c.IngestStation(fmt.Sprintf("chaos-%d-%d", iter, i), "d-9", propSeries(i))
				if err != nil {
					panic(err)
				}
				if err := c.AddTrip(gid, gids[i%len(gids)], 1); err != nil {
					panic(err)
				}
				if err := c.AppendPoint(gid, ts.Time(i)*ts.Hour, float64(i)); err != nil {
					panic(err)
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := i % 3
				faults.Enable(coord.FaultPartition(p), faults.Spec{Err: errors.New("flap")})
				time.Sleep(2 * time.Millisecond)
				faults.Disable(coord.FaultPartition(p))
				time.Sleep(time.Millisecond)
			}
		}()

		time.Sleep(60 * time.Millisecond)
		close(stop)
		wg.Wait()
		faults.Reset()

		// The survivors still answer exactly once the chaos stops.
		if _, err := c.Q4AllStationMeansCtx(context.Background(), start, end); err != nil {
			t.Fatalf("iteration %d: post-chaos Q4: %v", iter, err)
		}
	}
}

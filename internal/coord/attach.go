package coord

import (
	"fmt"
	"sort"

	"hygraph/internal/storage/graphstore"
	"hygraph/internal/storage/ttdb"
)

// Attach reconstructs a coordinator over already-recovered partitions — the
// reopen path: each partition's graph is self-describing (stations and
// boundary replicas carry their global id as the "gid" property), so the
// placement map, replica sets and trip topology all rebuild from partition
// state alone, no separate coordinator manifest to keep consistent.
//
// Tolerated crash leftovers: a station without a gid tag (crash between
// ingest and tag — the coordinator never acknowledged it) and a boundary
// replica whose gid no longer resolves (its station was deleted) are both
// skipped. Trips are recovered in canonical partition-major order, which may
// differ from original ingest order; every query answer is invariant under
// trip order, so reattached answers match the original coordinator's.
//
// The factory is retained for Repartition; it is not called during Attach.
func Attach(parts []*ttdb.DurablePolyglot, factory Factory) (*Coordinator, error) {
	if len(parts) < 1 {
		return nil, fmt.Errorf("coord: attach needs at least one partition")
	}
	c := &Coordinator{
		factory: factory,
		parts:   append([]*ttdb.DurablePolyglot(nil), parts...),
		nextGid: 1,
		meta:    map[ttdb.StationID]*stationMeta{},
	}
	for range parts {
		c.local2g = append(c.local2g, map[ttdb.StationID]ttdb.StationID{})
		c.bnd2g = append(c.bnd2g, map[ttdb.StationID]ttdb.StationID{})
	}
	// Pass 1: stations. Each partition's Station nodes carry gid/name/district.
	for p, eng := range parts {
		g := eng.Engine().G
		for _, local := range g.NodesByLabel("Station") {
			gv, ok := g.NodeProp(local, "gid")
			if !ok {
				continue // untagged: crashed before the coordinator acked it
			}
			gid := ttdb.StationID(gv.I)
			name, district := "", "?"
			if v, ok := g.NodeProp(local, "name"); ok {
				name = v.S
			}
			if v, ok := g.NodeProp(local, "district"); ok {
				district = v.S
			}
			if prev, dup := c.meta[gid]; dup {
				return nil, fmt.Errorf("coord: attach: gid %d in partitions %d and %d", gid, prev.part, p)
			}
			c.meta[gid] = &stationMeta{
				gid: gid, name: name, district: district,
				part: p, local: local,
				replicas: map[int]ttdb.StationID{},
			}
			c.local2g[p][local] = gid
			if uint64(gid) >= c.nextGid {
				c.nextGid = uint64(gid) + 1
			}
		}
	}
	c.order = make([]ttdb.StationID, 0, len(c.meta))
	for gid := range c.meta {
		c.order = append(c.order, gid)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	// Pass 2: boundary replicas, linked back to their stations by gid.
	for p, eng := range parts {
		g := eng.Engine().G
		for _, local := range g.NodesByLabel("Boundary") {
			gv, ok := g.NodeProp(local, "gid")
			if !ok {
				continue
			}
			gid := ttdb.StationID(gv.I)
			m, ok := c.meta[gid]
			if !ok {
				continue // replica of a deleted station: edgeless leftover
			}
			m.replicas[p] = local
			c.bnd2g[p][local] = gid
		}
	}
	// Pass 3: trips. Every logical trip has exactly one copy whose From
	// endpoint is a Station node (the mirrored cross-partition copy hangs off
	// a Boundary node), so iterating outgoing rels of stations only visits
	// each trip once across all partitions.
	for p, eng := range parts {
		g := eng.Engine().G
		seen := map[graphstore.RelID]bool{}
		for _, local := range g.NodesByLabel("Station") {
			from, ok := c.local2g[p][local]
			if !ok {
				continue
			}
			g.Rels(local, func(r graphstore.Rel) bool {
				if r.Type != "TRIP" || r.From != local || seen[r.ID] {
					return true
				}
				seen[r.ID] = true
				to, ok := c.local2g[p][r.To]
				if !ok {
					if to, ok = c.bnd2g[p][r.To]; !ok {
						return true
					}
				}
				count := 0
				if cv, ok := g.RelProp(r.ID, "count"); ok {
					count = int(cv.I)
				}
				c.trips = append(c.trips, tripRec{a: from, b: to, count: count})
				return true
			})
		}
	}
	return c, nil
}

package coord

import (
	"context"
	"math"
	"sort"

	"hygraph/internal/faults"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// ctxErr is the nil-safe done-context probe (same contract as the engine's).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// asErr keeps the *PartialError → error conversion honest: a nil typed
// pointer must become a nil interface.
func asErr(perr *PartialError) error {
	if perr == nil {
		return nil
	}
	return perr
}

// routeLocked runs a single-owner fragment against partition part with the
// fault-point and accounting discipline of a one-element scatter. Caller
// holds at least the read lock.
func (c *Coordinator) routeLocked(ctx context.Context, query string, part int, fn func() error) *PartialError {
	return c.scatterLocked(ctx, query, []int{part}, func(int) error { return fn() })
}

// gidRow is one merged aggregate row: a fragment's per-entity summary lifted
// into the coordinator's global id space.
type gidRow struct {
	gid ttdb.StationID
	sum tsstore.Summary
}

// summariesLocked scatters the Q4–Q6 fragment (per-entity summaries over the
// window) to every partition and merges the rows by ascending gid — the
// deterministic order every downstream fold relies on. Entities without a
// coordinator mapping (none in a consistent deployment) are dropped. Caller
// holds at least the read lock.
func (c *Coordinator) summariesLocked(ctx context.Context, query string, start, end ts.Time) ([]gidRow, *PartialError) {
	frags := make([][]tsstore.EntitySummary, len(c.parts))
	perr := c.scatterLocked(ctx, query, c.allPartsLocked(), func(p int) error {
		s, err := c.parts[p].EntitySummariesCtx(ctx, start, end)
		if err != nil {
			return err
		}
		frags[p] = s
		return nil
	})
	var rows []gidRow
	for p, frag := range frags {
		for _, e := range frag {
			if gid, ok := c.local2g[p][ttdb.StationID(e.Entity)]; ok {
				rows = append(rows, gidRow{gid: gid, sum: e.Summary})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gid < rows[j].gid })
	return rows, perr
}

// Q1TimeRangeCtx routes the range fetch to the station's owner. Unknown
// stations return no points, like a single engine probing an absent series.
func (c *Coordinator) Q1TimeRangeCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time) ([]ts.Point, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m, ok := c.meta[st]
	if !ok {
		return nil, nil
	}
	var pts []ts.Point
	perr := c.routeLocked(ctx, "Q1", m.part, func() error {
		p, err := c.parts[m.part].Q1TimeRangeCtx(ctx, m.local, start, end)
		pts = p
		return err
	})
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return pts, asErr(perr)
}

// Q2FilteredRangeCtx routes the filtered fetch to the station's owner.
func (c *Coordinator) Q2FilteredRangeCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time, below float64) ([]ts.Point, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m, ok := c.meta[st]
	if !ok {
		return nil, nil
	}
	var pts []ts.Point
	perr := c.routeLocked(ctx, "Q2", m.part, func() error {
		p, err := c.parts[m.part].Q2FilteredRangeCtx(ctx, m.local, start, end, below)
		pts = p
		return err
	})
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return pts, asErr(perr)
}

// Q3StationMeanCtx routes the single-station mean to the owner.
func (c *Coordinator) Q3StationMeanCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	m, ok := c.meta[st]
	if !ok {
		return 0, nil
	}
	var mean float64
	perr := c.routeLocked(ctx, "Q3", m.part, func() error {
		v, err := c.parts[m.part].Q3StationMeanCtx(ctx, m.local, start, end)
		mean = v
		return err
	})
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	return mean, asErr(perr)
}

// Q4AllStationMeansCtx scatters per-entity summaries and merges by gid. A
// failed partition's stations degrade to zero means (the entity set comes
// from the placement map, which the coordinator always has), with the
// partial accounted in the returned PartialError.
func (c *Coordinator) Q4AllStationMeansCtx(ctx context.Context, start, end ts.Time) (map[ttdb.StationID]float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	rows, perr := c.summariesLocked(ctx, "Q4", start, end)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	out := make(map[ttdb.StationID]float64, len(rows))
	for _, r := range rows {
		if r.sum.Count > 0 {
			out[r.gid] = r.sum.Mean()
		} else {
			out[r.gid] = 0
		}
	}
	if perr != nil {
		for _, gid := range c.order {
			if _, failed := perr.Failed[c.meta[gid].part]; failed {
				out[gid] = 0
			}
		}
	}
	return out, asErr(perr)
}

// Q5DistrictSumsCtx scatters per-entity summaries and folds districts in
// ascending gid order — single-engine ingest order, so the float
// accumulation order matches the oracle's hypertable-insertion-order fold
// exactly. Districts come from the placement map, which agrees with the
// partitions' graph properties by construction. A failed partition's
// stations contribute zero to their districts.
func (c *Coordinator) Q5DistrictSumsCtx(ctx context.Context, start, end ts.Time) (map[string]float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	rows, perr := c.summariesLocked(ctx, "Q5", start, end)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sums := make(map[ttdb.StationID]float64, len(rows))
	for _, r := range rows {
		sums[r.gid] = r.sum.Sum
	}
	out := map[string]float64{}
	for _, gid := range c.order {
		m := c.meta[gid]
		if perr != nil {
			if _, failed := perr.Failed[m.part]; failed {
				out[m.district] += 0
				continue
			}
		}
		if s, ok := sums[gid]; ok {
			out[m.district] += s
		}
	}
	return out, asErr(perr)
}

// Q6TopKStationsCtx scatters per-entity summaries, ranks the merged means
// and returns the top k (ties by ascending gid, the engine's tie rule in
// coordinator id space). A partial ranks only the answering partitions'
// stations.
func (c *Coordinator) Q6TopKStationsCtx(ctx context.Context, start, end ts.Time, k int) ([]ttdb.StationID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	rows, perr := c.summariesLocked(ctx, "Q6", start, end)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	type pair struct {
		gid ttdb.StationID
		v   float64
	}
	ps := make([]pair, 0, len(rows))
	for _, r := range rows {
		if r.sum.Count > 0 {
			ps = append(ps, pair{r.gid, r.sum.Mean()})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].v != ps[j].v {
			return ps[i].v > ps[j].v
		}
		return ps[i].gid < ps[j].gid
	})
	if k > len(ps) {
		k = len(ps)
	}
	if k < 0 {
		k = 0
	}
	out := make([]ttdb.StationID, k)
	for i := range out {
		out[i] = ps[i].gid
	}
	return out, asErr(perr)
}

// Q7CorrelationCtx correlates two stations. Co-located pairs push the whole
// computation down to the owning partition (bit-identical to the single
// engine); cross-partition pairs fetch both point sets in parallel and
// correlate at the coordinator — bucketed via the shared resample grid
// (ts.Correlation), raw via an exact-timestamp merge join, both within the
// battery's tolerance of the pushdown.
func (c *Coordinator) Q7CorrelationCtx(ctx context.Context, x, y ttdb.StationID, start, end, bucket ts.Time) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	mx, okX := c.meta[x]
	my, okY := c.meta[y]
	if !okX || !okY {
		return math.NaN(), nil
	}
	if mx.part == my.part {
		var v float64
		perr := c.routeLocked(ctx, "Q7", mx.part, func() error {
			r, err := c.parts[mx.part].Q7CorrelationCtx(ctx, mx.local, my.local, start, end, bucket)
			v = r
			return err
		})
		if err := ctxErr(ctx); err != nil {
			return 0, err
		}
		return v, asErr(perr)
	}
	var px, py []ts.Point
	perr := c.scatterLocked(ctx, "Q7", []int{mx.part, my.part}, func(p int) error {
		if p == mx.part {
			pts, err := c.parts[p].Q1TimeRangeCtx(ctx, mx.local, start, end)
			px = pts
			return err
		}
		pts, err := c.parts[p].Q1TimeRangeCtx(ctx, my.local, start, end)
		py = pts
		return err
	})
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if perr != nil {
		return 0, perr
	}
	if bucket > 0 {
		return ts.Correlation(ts.FromPoints("x", px), ts.FromPoints("y", py), bucket), nil
	}
	return pearsonJoined(px, py), nil
}

// DownsampleCtx routes the windowed-aggregate read to the station's owner
// partition, whose continuous-aggregate cache serves it under write-through
// delta maintenance. Because AppendPoint also routes to the owner and the
// delta applies before the append acknowledges, a client reading through the
// coordinator sees its own acknowledged writes in the aggregate. Unknown
// stations return no buckets, like a single engine probing an absent series.
func (c *Coordinator) DownsampleCtx(ctx context.Context, st ttdb.StationID, start, end, bucket ts.Time, agg ts.AggFunc) ([]ts.Point, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m, ok := c.meta[st]
	if !ok {
		return nil, nil
	}
	var pts []ts.Point
	perr := c.routeLocked(ctx, "DS", m.part, func() error {
		p, err := c.parts[m.part].DownsampleCtx(ctx, m.local, start, end, bucket, agg)
		pts = p
		return err
	})
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return pts, asErr(perr)
}

// pearsonJoined is the raw-timestamp correlation fold of the time-series
// store (tsstore.Correlate), applied to already-fetched point sets: an exact
// merge join on timestamps, NaN under two shared points or a constant side.
// Accumulation order equals the store's, so the result is bit-identical.
func pearsonJoined(pa, pb []ts.Point) float64 {
	var n float64
	var sx, sy, sxx, syy, sxy float64
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].T < pb[j].T:
			i++
		case pa[i].T > pb[j].T:
			j++
		default:
			x, y := pa[i].V, pb[j].V
			n++
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			i++
			j++
		}
	}
	if n < 2 {
		return math.NaN()
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Q8NeighborMeansCtx answers adjacency from the station's home partition
// (boundary replication makes every neighbor visible there), then scatters
// the per-neighbor means to the neighbors' owners. A failed owner partition
// degrades to the coordinator-topology neighbor set with zero means; failed
// neighbor owners degrade their neighbors' means to zero. Both partials are
// accounted in the returned PartialError.
func (c *Coordinator) Q8NeighborMeansCtx(ctx context.Context, st ttdb.StationID, start, end ts.Time) (map[ttdb.StationID]float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m, ok := c.meta[st]
	if !ok {
		return map[ttdb.StationID]float64{}, nil
	}
	if err := faults.CheckCtx(ctx, FaultPartition(m.part)); err != nil {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		// Home partition down: the neighbor set is still derivable from the
		// coordinator's topology record, with zero means — the same "graph
		// part survives" shape the durable layer degrades to.
		out := map[ttdb.StationID]float64{}
		for _, tr := range c.trips {
			switch {
			case tr.a == st && tr.b != st:
				out[tr.b] = 0
			case tr.b == st && tr.a != st:
				out[tr.a] = 0
			}
		}
		return out, &PartialError{Query: "Q8", Failed: map[int]error{m.part: err}}
	}
	var neighbors []ttdb.StationID
	for _, n := range c.parts[m.part].Engine().G.Neighbors(m.local, "TRIP") {
		if gid, ok := c.local2g[m.part][n]; ok {
			neighbors = append(neighbors, gid)
		} else if gid, ok := c.bnd2g[m.part][n]; ok {
			neighbors = append(neighbors, gid)
		}
	}
	byPart := map[int][]ttdb.StationID{}
	for _, gid := range neighbors {
		p := c.meta[gid].part
		byPart[p] = append(byPart[p], gid)
	}
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	frags := make([]map[ttdb.StationID]float64, len(parts))
	slot := make(map[int]int, len(parts))
	for i, p := range parts {
		slot[p] = i
	}
	perr := c.scatterLocked(ctx, "Q8", parts, func(p int) error {
		means := make(map[ttdb.StationID]float64, len(byPart[p]))
		for _, gid := range byPart[p] {
			v, err := c.parts[p].Q3StationMeanCtx(ctx, c.meta[gid].local, start, end)
			if err != nil {
				return err
			}
			means[gid] = v
		}
		frags[slot[p]] = means
		return nil
	})
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	out := make(map[ttdb.StationID]float64, len(neighbors))
	for _, gid := range neighbors {
		out[gid] = 0
	}
	for _, frag := range frags {
		for gid, v := range frag {
			out[gid] = v
		}
	}
	return out, asErr(perr)
}

// ---------------------------------------------------------------------------
// Plain ttdb.Engine surface: the Ctx variants with a nil (never-cancelling)
// context, the same convention the durable engine uses. The value is the
// (possibly degraded-partial) answer; the error channel is only reachable
// through the Ctx methods, matching how the durable engine's plain
// Engine-shaped callers consume it.

// Q1TimeRange implements ttdb.Engine.
func (c *Coordinator) Q1TimeRange(st ttdb.StationID, start, end ts.Time) []ts.Point {
	pts, _ := c.Q1TimeRangeCtx(nil, st, start, end)
	return pts
}

// Q2FilteredRange implements ttdb.Engine.
func (c *Coordinator) Q2FilteredRange(st ttdb.StationID, start, end ts.Time, below float64) []ts.Point {
	pts, _ := c.Q2FilteredRangeCtx(nil, st, start, end, below)
	return pts
}

// Q3StationMean implements ttdb.Engine.
func (c *Coordinator) Q3StationMean(st ttdb.StationID, start, end ts.Time) float64 {
	v, _ := c.Q3StationMeanCtx(nil, st, start, end)
	return v
}

// Q4AllStationMeans implements ttdb.Engine.
func (c *Coordinator) Q4AllStationMeans(start, end ts.Time) map[ttdb.StationID]float64 {
	out, _ := c.Q4AllStationMeansCtx(nil, start, end)
	return out
}

// Q5DistrictSums implements ttdb.Engine.
func (c *Coordinator) Q5DistrictSums(start, end ts.Time) map[string]float64 {
	out, _ := c.Q5DistrictSumsCtx(nil, start, end)
	return out
}

// Q6TopKStations implements ttdb.Engine.
func (c *Coordinator) Q6TopKStations(start, end ts.Time, k int) []ttdb.StationID {
	out, _ := c.Q6TopKStationsCtx(nil, start, end, k)
	return out
}

// Q7Correlation implements ttdb.Engine.
func (c *Coordinator) Q7Correlation(x, y ttdb.StationID, start, end, bucket ts.Time) float64 {
	v, _ := c.Q7CorrelationCtx(nil, x, y, start, end, bucket)
	return v
}

// Q8NeighborMeans implements ttdb.Engine.
func (c *Coordinator) Q8NeighborMeans(st ttdb.StationID, start, end ts.Time) map[ttdb.StationID]float64 {
	out, _ := c.Q8NeighborMeansCtx(nil, st, start, end)
	return out
}

// Downsample is DownsampleCtx with a nil (never-cancelling) context.
func (c *Coordinator) Downsample(st ttdb.StationID, start, end, bucket ts.Time, agg ts.AggFunc) []ts.Point {
	pts, _ := c.DownsampleCtx(nil, st, start, end, bucket, agg)
	return pts
}

package coord_test

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/coord"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// The streaming differential battery: random append/upsert/out-of-order/
// delete interleavings through the coordinator, with windowed-aggregate
// reads (DownsampleCtx — the continuous-aggregate cache under write-through
// delta maintenance) checked element-wise (1e-9) against a from-scratch
// resample of the raw points AND against a single-engine oracle, at 1, 2,
// and 4 partitions. Every check runs immediately after acknowledged writes,
// so it is also the read-your-writes proof at the coordinator surface.

// dsAggs is the aggregate mix under test: the O(1)-delta family plus the
// rescan-only family.
var dsAggs = []ts.AggFunc{ts.AggMean, ts.AggSum, ts.AggMin, ts.AggMax, ts.AggCount, ts.AggStd}

// checkDownsample compares the coordinator's cached windowed aggregate to a
// from-scratch fold of the raw points and to the oracle's answer.
func checkDownsample(t *testing.T, label string, ora *ttdb.DurablePolyglot, oid ttdb.StationID,
	c *coord.Coordinator, gid ttdb.StationID, start, end, bucket ts.Time) {
	t.Helper()
	for _, agg := range dsAggs {
		got := c.Downsample(gid, start, end, bucket, agg)
		raw := c.Q1TimeRange(gid, start, end)
		want := ts.FromPoints("raw", raw).Resample(bucket, agg).Points()
		cmpPts(t, label+"/scratch", agg, got, want)
		oraPts, err := ora.Downsample(oid, start, end, bucket, agg)
		if err != nil {
			t.Fatalf("%s: oracle downsample: %v", label, err)
		}
		cmpPts(t, label+"/oracle", agg, got, oraPts)
	}
}

func cmpPts(t *testing.T, label string, agg ts.AggFunc, got, want []ts.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s agg=%v: %d vs %d buckets", label, agg, len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T || !propEq(got[i].V, want[i].V) {
			t.Fatalf("%s agg=%v bucket %d: got (%d, %v), want (%d, %v)",
				label, agg, i, got[i].T, got[i].V, want[i].T, want[i].V)
		}
	}
}

func TestStreamingAggregatesAcrossPartitions(t *testing.T) {
	for _, parts := range []int{1, 2, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts%d", parts), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + parts)))
			ora := ttdb.NewDurable(ts.Day, io.Discard, io.Discard, io.Discard)
			c, err := coord.NewMem(parts, ts.Day)
			if err != nil {
				t.Fatal(err)
			}

			const nStations = 6
			span := 4 * ts.Day
			var oids, gids []ttdb.StationID
			heads := make([]ts.Time, nStations)
			for i := 0; i < nStations; i++ {
				s := ts.New(ttdb.Metric)
				for h := ts.Time(0); h < 24; h++ {
					s.MustAppend(h*ts.Hour, float64(i)+math.Sin(float64(h)))
				}
				heads[i] = 23 * ts.Hour
				oid, err := ora.IngestStation(fmt.Sprintf("st-%d", i), "d", s.Clone())
				if err != nil {
					t.Fatal(err)
				}
				gid, err := c.IngestStation(fmt.Sprintf("st-%d", i), "d", s)
				if err != nil {
					t.Fatal(err)
				}
				oids = append(oids, oid)
				gids = append(gids, gid)
			}

			// Warm the owner partitions' aggregate caches over the full span,
			// so subsequent appends exercise the patch-in-place path, then
			// interleave writes with immediate read-your-writes checks.
			for i := range gids {
				checkDownsample(t, "warm", ora, oids[i], c, gids[i], 0, span, ts.Hour)
			}
			for op := 0; op < 240; op++ {
				i := rng.Intn(nStations)
				var at ts.Time
				switch rng.Intn(4) {
				case 0: // backfill / out-of-order
					at = ts.Time(rng.Int63n(int64(heads[i])))
				case 1: // upsert an existing head timestamp
					at = heads[i]
				default: // tail append
					heads[i] += ts.Time(1+rng.Int63n(int64(2*ts.Hour))) % (span - heads[i] - 1)
					if heads[i] >= span {
						heads[i] = span - 1
					}
					at = heads[i]
				}
				v := rng.Float64() * 50
				if err := ora.AppendPoint(oids[i], at, v); err != nil {
					t.Fatal(err)
				}
				if err := c.AppendPoint(gids[i], at, v); err != nil {
					t.Fatal(err)
				}
				// The acknowledged write must be visible in the aggregate now.
				if op%8 == 0 {
					checkDownsample(t, fmt.Sprintf("op%d", op), ora, oids[i], c, gids[i], 0, span, ts.Hour)
				}
			}
			for i := range gids {
				checkDownsample(t, "final", ora, oids[i], c, gids[i], 0, span, ts.Hour)
				// A narrower, differently-bucketed window is its own cache entry.
				checkDownsample(t, "window", ora, oids[i], c, gids[i], ts.Day, 3*ts.Day, 2*ts.Hour)
			}

			// Deletion drops the station's aggregates everywhere.
			if err := ora.DeleteStation(oids[0]); err != nil {
				t.Fatal(err)
			}
			if err := c.DeleteStation(gids[0]); err != nil {
				t.Fatal(err)
			}
			if pts := c.Downsample(gids[0], 0, span, ts.Hour, ts.AggMean); len(pts) != 0 {
				t.Fatalf("deleted station still answers %d buckets", len(pts))
			}

			// Repartitioning moves series between engines; the rebuilt owners'
			// caches must still answer identically.
			if parts > 1 {
				if err := c.Repartition(parts - 1); err != nil {
					t.Fatal(err)
				}
				for i := 1; i < nStations; i++ {
					checkDownsample(t, "repartitioned", ora, oids[i], c, gids[i], 0, span, ts.Hour)
				}
			}
		})
	}
}

package coord_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hygraph/internal/coord"
	"hygraph/internal/hyql"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// The property battery drives random ingest/append/trip/delete/re-partition
// interleavings (seeded) through the coordinator and a single-engine oracle
// in lockstep, and requires every Q1–Q8 answer to stay element-wise equal
// (1e-9 relative) at every checkpoint — the partition-invariance property:
// placement is an execution detail, never an answer change.

const propTol = 1e-9

func propEq(a, b float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= propTol*m
}

const propSpan = 14 * ts.Day

// propSeries builds a deterministic per-station series over the full span.
func propSeries(i int) *ts.Series {
	s := ts.New(ttdb.Metric)
	for h := ts.Time(0); h*ts.Hour < propSpan; h += 2 {
		s.MustAppend(h*ts.Hour, 10+float64(i%7)+math.Sin(float64(h)+float64(i)))
	}
	return s
}

// world tracks the lockstep state: logical stations with their ids in both
// engines, plus the live trip topology for rebuilding shuffled twins.
type world struct {
	names    []string
	district []string
	alive    []bool
	oraIDs   []ttdb.StationID
	gids     []ttdb.StationID
	trips    [][3]int // logical indexes a, b + count, live pairs only
}

func (w *world) aliveIdx(rng *rand.Rand) (int, bool) {
	var live []int
	for i, a := range w.alive {
		if a {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return 0, false
	}
	return live[rng.Intn(len(live))], true
}

// checkAnswers compares every query's answer between the oracle and the
// coordinator, name-keyed so the two id spaces never leak into the
// comparison.
func checkAnswers(t *testing.T, label string, w *world, ora *ttdb.DurablePolyglot, c *coord.Coordinator) {
	t.Helper()
	start, end := propSpan/4, 3*propSpan/4

	oraName := make(map[ttdb.StationID]string)
	gidName := make(map[ttdb.StationID]string)
	var liveIdx []int
	for i := range w.names {
		if !w.alive[i] {
			continue
		}
		liveIdx = append(liveIdx, i)
		oraName[w.oraIDs[i]] = w.names[i]
		gidName[w.gids[i]] = w.names[i]
	}

	byName := func(m map[ttdb.StationID]float64, names map[ttdb.StationID]string) map[string]float64 {
		out := make(map[string]float64, len(m))
		for id, v := range m {
			out[names[id]] = v
		}
		return out
	}
	cmpMap := func(q string, a, b map[string]float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s %s: %d vs %d entries (%v vs %v)", label, q, len(a), len(b), a, b)
		}
		for k, av := range a {
			bv, ok := b[k]
			if !ok || !propEq(av, bv) {
				t.Fatalf("%s %s[%s]: %v vs %v (present=%v)", label, q, k, av, bv, ok)
			}
		}
	}

	wantQ4, _ := ora.Q4AllStationMeans(start, end)
	gotQ4 := c.Q4AllStationMeans(start, end)
	cmpMap("Q4", byName(wantQ4, oraName), byName(gotQ4, gidName))

	wantQ5, _ := ora.Q5DistrictSums(start, end)
	gotQ5 := c.Q5DistrictSums(start, end)
	cmpMap("Q5", wantQ5, gotQ5)

	wantQ6, _ := ora.Q6TopKStations(start, end, 5)
	gotQ6 := c.Q6TopKStations(start, end, 5)
	if len(wantQ6) != len(gotQ6) {
		t.Fatalf("%s Q6: %d vs %d ids", label, len(wantQ6), len(gotQ6))
	}
	for i := range wantQ6 {
		if oraName[wantQ6[i]] != gidName[gotQ6[i]] {
			t.Fatalf("%s Q6[%d]: %q vs %q", label, i, oraName[wantQ6[i]], gidName[gotQ6[i]])
		}
	}

	// Per-station probes on up to three live stations, plus a correlation
	// pair — sampled deterministically from the live set.
	probe := liveIdx
	if len(probe) > 3 {
		probe = probe[:3]
	}
	for _, i := range probe {
		wantPts, _ := ora.Q1TimeRange(w.oraIDs[i], start, start+2*ts.Day)
		gotPts := c.Q1TimeRange(w.gids[i], start, start+2*ts.Day)
		if len(wantPts) != len(gotPts) {
			t.Fatalf("%s Q1(%s): %d vs %d points", label, w.names[i], len(wantPts), len(gotPts))
		}
		for j := range wantPts {
			if wantPts[j].T != gotPts[j].T || !propEq(wantPts[j].V, gotPts[j].V) {
				t.Fatalf("%s Q1(%s)[%d]: %v vs %v", label, w.names[i], j, wantPts[j], gotPts[j])
			}
		}
		wantF, _ := ora.Q2FilteredRange(w.oraIDs[i], start, end, 12)
		gotF := c.Q2FilteredRange(w.gids[i], start, end, 12)
		if len(wantF) != len(gotF) {
			t.Fatalf("%s Q2(%s): %d vs %d points", label, w.names[i], len(wantF), len(gotF))
		}
		wantM, _ := ora.Q3StationMean(w.oraIDs[i], start, end)
		if gotM := c.Q3StationMean(w.gids[i], start, end); !propEq(wantM, gotM) {
			t.Fatalf("%s Q3(%s): %v vs %v", label, w.names[i], wantM, gotM)
		}
		wantN, _ := ora.Q8NeighborMeans(w.oraIDs[i], start, end)
		gotN := c.Q8NeighborMeans(w.gids[i], start, end)
		cmpMap("Q8("+w.names[i]+")", byName(wantN, oraName), byName(gotN, gidName))
	}
	if len(liveIdx) >= 2 {
		a, b := liveIdx[0], liveIdx[len(liveIdx)/2]
		wantC, _ := ora.Q7Correlation(w.oraIDs[a], w.oraIDs[b], start, end, ts.Hour)
		if gotC := c.Q7Correlation(w.gids[a], w.gids[b], start, end, ts.Hour); !propEq(wantC, gotC) {
			t.Fatalf("%s Q7(%s,%s): %v vs %v", label, w.names[a], w.names[b], wantC, gotC)
		}
		wantR, _ := ora.Q7Correlation(w.oraIDs[a], w.oraIDs[b], start, end, 0)
		if gotR := c.Q7Correlation(w.gids[a], w.gids[b], start, end, 0); !propEq(wantR, gotR) {
			t.Fatalf("%s Q7raw(%s,%s): %v vs %v", label, w.names[a], w.names[b], wantR, gotR)
		}
	}
}

// hyqlSnapshot runs a fixed HyQL query set over the coordinator's view and
// returns the flattened rows, for invariance comparison across partitionings.
func hyqlSnapshot(t *testing.T, c *coord.Coordinator) []string {
	t.Helper()
	eng := hyql.NewEngine(c.View())
	at := 3 * propSpan / 4
	start, end := propSpan/4, 3*propSpan/4
	queries := []string{
		fmt.Sprintf(`MATCH (st:Station)-[:HAS_SERIES]->(a) RETURN st.name, ts.mean(a, %d, %d)`, start, end),
		fmt.Sprintf(`MATCH (st:Station)-[:HAS_SERIES]->(a) RETURN st.district, sum(ts.sum(a, %d, %d))`, start, end),
		fmt.Sprintf(`MATCH (st:Station)-[:HAS_SERIES]->(a) RETURN st.name AS name, ts.mean(a, %d, %d) AS m ORDER BY m DESC, name LIMIT 5`, start, end),
	}
	var out []string
	for _, q := range queries {
		res, err := eng.Query(q, at)
		if err != nil {
			t.Fatalf("hyql %q: %v", q, err)
		}
		var rows []string
		for _, row := range res.Rows {
			line := ""
			for _, v := range row {
				if f, ok := v.AsFloat(); ok {
					line += fmt.Sprintf("|%.9g", f)
					continue
				}
				s, _ := v.AsScalar().AsString()
				line += "|" + s
			}
			rows = append(rows, line)
		}
		sort.Strings(rows)
		out = append(out, rows...)
	}
	return out
}

func cmpSnapshots(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: hyql snapshot %d vs %d rows", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: hyql row %d: %q vs %q", label, i, want[i], got[i])
		}
	}
}

// memDisk is one partition's retained durable artifacts.
type memDisk struct {
	graph, tsl, journal bytes.Buffer
}

func TestPartitionInvarianceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			ora := ttdb.NewDurable(ts.Week, io.Discard, io.Discard, io.Discard)

			// The factory retains each partition generation's logs; part 0
			// starts a fresh generation (New and Repartition both construct
			// partitions in index order under the coordinator lock).
			var gen []*memDisk
			factory := func(part int) (*ttdb.DurablePolyglot, error) {
				if part == 0 {
					gen = nil
				}
				for len(gen) <= part {
					gen = append(gen, &memDisk{})
				}
				d := ttdb.NewDurable(ts.Week, &gen[part].graph, &gen[part].tsl, &gen[part].journal)
				d.Retry = ttdb.RetryPolicy{MaxAttempts: 3}
				return d, nil
			}
			c, err := coord.New(1+rng.Intn(4), factory)
			if err != nil {
				t.Fatal(err)
			}

			w := &world{}
			nOps := 120
			for op := 0; op < nOps; op++ {
				switch r := rng.Float64(); {
				case r < 0.5: // ingest a new station
					i := len(w.names)
					name := fmt.Sprintf("st-%03d", i)
					district := fmt.Sprintf("d-%d", i%3)
					oid, err := ora.IngestStation(name, district, propSeries(i))
					if err != nil {
						t.Fatal(err)
					}
					gid, err := c.IngestStation(name, district, propSeries(i))
					if err != nil {
						t.Fatal(err)
					}
					w.names = append(w.names, name)
					w.district = append(w.district, district)
					w.alive = append(w.alive, true)
					w.oraIDs = append(w.oraIDs, oid)
					w.gids = append(w.gids, gid)
				case r < 0.65: // stream one observation
					if i, ok := w.aliveIdx(rng); ok {
						at := ts.Time(rng.Int63n(int64(propSpan)))
						v := rng.Float64() * 20
						if err := ora.AppendPoint(w.oraIDs[i], at, v); err != nil {
							t.Fatal(err)
						}
						if err := c.AppendPoint(w.gids[i], at, v); err != nil {
							t.Fatal(err)
						}
					}
				case r < 0.8: // add a trip
					a, okA := w.aliveIdx(rng)
					b, okB := w.aliveIdx(rng)
					if okA && okB && a != b {
						count := 1 + rng.Intn(9)
						if err := ora.AddTrip(w.oraIDs[a], w.oraIDs[b], count); err != nil {
							t.Fatal(err)
						}
						if err := c.AddTrip(w.gids[a], w.gids[b], count); err != nil {
							t.Fatal(err)
						}
						w.trips = append(w.trips, [3]int{a, b, count})
					}
				case r < 0.9: // delete a station
					if i, ok := w.aliveIdx(rng); ok {
						if err := ora.DeleteStation(w.oraIDs[i]); err != nil {
							t.Fatal(err)
						}
						if err := c.DeleteStation(w.gids[i]); err != nil {
							t.Fatal(err)
						}
						w.alive[i] = false
						kept := w.trips[:0]
						for _, tr := range w.trips {
							if tr[0] != i && tr[1] != i {
								kept = append(kept, tr)
							}
						}
						w.trips = kept
					}
				default: // re-partition
					if err := c.Repartition(1 + rng.Intn(4)); err != nil {
						t.Fatal(err)
					}
				}
				if op%20 == 19 {
					checkAnswers(t, fmt.Sprintf("op%d", op), w, ora, c)
				}
			}
			checkAnswers(t, "final", w, ora, c)
			baseHyql := hyqlSnapshot(t, c)

			// Placement-map changes: every partition count answers the same.
			for _, n := range []int{1, 3, 2} {
				if err := c.Repartition(n); err != nil {
					t.Fatal(err)
				}
				checkAnswers(t, fmt.Sprintf("repartition%d", n), w, ora, c)
				cmpSnapshots(t, fmt.Sprintf("repartition%d", n), baseHyql, hyqlSnapshot(t, c))
			}

			// Out-of-order ingest: a twin built in reverse order answers the
			// same (name-keyed), despite a different gid assignment.
			twin, err := coord.NewMem(2, ts.Week)
			if err != nil {
				t.Fatal(err)
			}
			tw := &world{}
			for i := len(w.names) - 1; i >= 0; i-- {
				tw.names = append(tw.names, "")
				tw.district = append(tw.district, "")
				tw.alive = append(tw.alive, false)
				tw.oraIDs = append(tw.oraIDs, 0)
				tw.gids = append(tw.gids, 0)
			}
			for i := len(w.names) - 1; i >= 0; i-- {
				if !w.alive[i] {
					continue
				}
				gid, err := twin.IngestStation(w.names[i], w.district[i], propSeries(i))
				if err != nil {
					t.Fatal(err)
				}
				tw.names[i], tw.district[i], tw.alive[i] = w.names[i], w.district[i], true
				tw.oraIDs[i], tw.gids[i] = w.oraIDs[i], gid
			}
			// Replay streamed appends? The twin only has base series; rebuild
			// the oracle-equivalent state by copying each station's full
			// series from the primary coordinator instead.
			for i := range w.names {
				if !w.alive[i] {
					continue
				}
				pts := c.Q1TimeRange(w.gids[i], 0, ts.MaxTime)
				if err := twin.LoadSeries(tw.gids[i], ts.FromPoints(ttdb.Metric, pts)); err != nil {
					t.Fatal(err)
				}
			}
			for _, tr := range w.trips {
				if err := twin.AddTrip(tw.gids[tr[0]], tw.gids[tr[1]], tr[2]); err != nil {
					t.Fatal(err)
				}
			}
			checkAnswers(t, "shuffled-ingest", tw, ora, twin)

			// Save/Load round-trip: drain every partition's logs, recover
			// each independently, re-attach, and require identical answers.
			if err := c.SyncAll(); err != nil {
				t.Fatal(err)
			}
			saved := gen
			parts := make([]*ttdb.DurablePolyglot, len(saved))
			for i, dk := range saved {
				eng, rec, err := ttdb.RecoverPolyglot(
					nil, bytes.NewReader(dk.graph.Bytes()),
					nil, bytes.NewReader(dk.tsl.Bytes()),
					bytes.NewReader(dk.journal.Bytes()), ts.Week)
				if err != nil {
					t.Fatalf("partition %d recovery: %v", i, err)
				}
				parts[i] = ttdb.ResumeDurable(eng, io.Discard, io.Discard, io.Discard, rec.NextTxn)
			}
			reopened, err := coord.Attach(parts, factory)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := reopened.NumStations(), c.NumStations(); got != want {
				t.Fatalf("reopened stations = %d, want %d", got, want)
			}
			checkAnswers(t, "reopened", w, ora, reopened)
			cmpSnapshots(t, "reopened", baseHyql, hyqlSnapshot(t, reopened))
		})
	}
}

package coord

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hygraph/internal/faults"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
)

// FaultPartition names the fault point guarding every fragment sent to
// partition i ("coord.partition.N"). Arming it makes that partition fail its
// fragments, which the coordinator turns into a typed PartialError — the
// chaos battery's lever for proving degraded answers instead of hangs.
func FaultPartition(i int) string {
	return "coord.partition." + strconv.Itoa(i)
}

// PartialError reports a scatter that lost one or more partitions. The
// answer it accompanies is a typed partial: everything the answering
// partitions contributed, with the failed partitions' shares degraded the
// same way the durable layer degrades without its TS store (entity sets
// survive with zero aggregates). It unwraps to ttdb.ErrDegraded and every
// per-partition cause, so errors.Is works for both.
type PartialError struct {
	Query    string
	Answered []int         // partitions that contributed, ascending
	Failed   map[int]error // partition index -> cause
}

// Error renders the accounting: which query, who answered, who failed and why.
func (e *PartialError) Error() string {
	parts := make([]int, 0, len(e.Failed))
	for p := range e.Failed {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var b strings.Builder
	fmt.Fprintf(&b, "coord: %s degraded: partitions %v answered, ", e.Query, e.Answered)
	for i, p := range parts {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "partition %d failed: %v", p, e.Failed[p])
	}
	return b.String()
}

// Unwrap lets errors.Is match ttdb.ErrDegraded and each partition's cause.
func (e *PartialError) Unwrap() []error {
	parts := make([]int, 0, len(e.Failed))
	for p := range e.Failed {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	out := make([]error, 0, len(parts)+1)
	out = append(out, ttdb.ErrDegraded)
	for _, p := range parts {
		out = append(out, e.Failed[p])
	}
	return out
}

// coordObs holds the coordinator's metric handles; the zero value (all nil)
// is the disabled state, matching the repo's nil-safe handle convention.
type coordObs struct {
	reg          *obs.Registry
	ingests      *obs.Counter // stations placed
	replicas     *obs.Counter // boundary vertices materialized
	crossEdges   *obs.Counter // cross-partition trips mirrored
	repartitions *obs.Counter // Repartition runs
	scatters     *obs.Counter // scatter rounds issued
	fragments    *obs.Counter // partition fragments dispatched
	partials     *obs.Counter // scatters that lost at least one partition
}

// Instrument attaches fan-out metrics (and, via the registry's tracer,
// per-query scatter spans) to the coordinator and cascades to every
// partition. A nil registry detaches instrumentation.
func (c *Coordinator) Instrument(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.parts {
		p.Instrument(r)
	}
	if r == nil {
		c.obs = coordObs{}
		return
	}
	c.obs = coordObs{
		reg:          r,
		ingests:      r.Counter("coord.ingest.stations"),
		replicas:     r.Counter("coord.boundary.replicas"),
		crossEdges:   r.Counter("coord.trips.cross"),
		repartitions: r.Counter("coord.repartitions"),
		scatters:     r.Counter("coord.scatter.calls"),
		fragments:    r.Counter("coord.scatter.fragments"),
		partials:     r.Counter("coord.scatter.partials"),
	}
}

// scatterLocked fans fn out to the given partitions, one goroutine per
// fragment, joined before return (no goroutine outlives the call). Each
// fragment first consults its partition's fault point; failures land in the
// returned PartialError (nil when every partition answered). Caller holds at
// least the read lock, so the partition set is stable for the duration.
func (c *Coordinator) scatterLocked(ctx context.Context, query string, parts []int, fn func(part int) error) *PartialError {
	span := c.obs.reg.Tracer().Start("coord.scatter." + query)
	defer span.End()
	c.obs.scatters.Inc()
	c.obs.fragments.Add(int64(len(parts)))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			if err := faults.CheckCtx(ctx, FaultPartition(p)); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	perr := &PartialError{Query: query, Failed: map[int]error{}}
	for i, p := range parts {
		if errs[i] != nil {
			perr.Failed[p] = errs[i]
		} else {
			perr.Answered = append(perr.Answered, p)
		}
	}
	if len(perr.Failed) == 0 {
		return nil
	}
	c.obs.partials.Inc()
	return perr
}

// allParts lists every partition index, the scatter set of the global
// queries. Caller holds at least the read lock.
func (c *Coordinator) allPartsLocked() []int {
	out := make([]int, len(c.parts))
	for i := range out {
		out[i] = i
	}
	return out
}

// Package coord horizontally partitions the polyglot engine: stations (and
// their series plus incident trip edges) are hash-partitioned across N
// independent durable engines (ttdb.DurablePolyglot) behind a placement map,
// and a scatter-gather coordinator plans Q1–Q8 and the HyQL view as
// partition-local fragments executed in parallel and merged deterministically.
//
// Determinism discipline (the same insertion-sequence rule the striped stores
// use): the coordinator allocates monotonically increasing global station ids
// (gids) at ingest, and every multi-partition merge orders fragment rows by
// gid before folding. Since gid order IS single-engine ingest order, the
// merged fold visits rows in exactly the order the unpartitioned oracle's
// hypertable-insertion-order fold does — partitioned answers are element-wise
// identical to the single-engine answers at any partition count.
//
// Cross-partition trip edges are handled by boundary-vertex replication: when
// a trip joins stations owned by different partitions, each side's partition
// gets a graph-only replica of the remote endpoint (labeled "Boundary", never
// "Station", so partition-local invariants and Q4–Q6 enumeration don't see
// it) and a local copy of the edge. Adjacency queries (Q8) therefore resolve
// entirely inside the home partition, and only the per-neighbor aggregates
// fan back out to the neighbors' owners.
//
// Failure semantics follow the durable layer's degraded-mode contract: a
// faulted or degraded partition contributes a typed partial (PartialError,
// satisfying errors.Is(err, ttdb.ErrDegraded)) with exact accounting of which
// partitions answered, and a done context always wins over a partial answer.
package coord

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// seriesKey is the hypertable key of a partition-LOCAL station id, the same
// (entity, metric) convention the single-process engine uses.
func seriesKey(local ttdb.StationID) tsstore.SeriesKey {
	return tsstore.SeriesKey{Entity: uint32(local), Metric: ttdb.Metric}
}

// Factory builds the durable engine backing one partition. The coordinator
// calls it at construction and again on Repartition; part is the partition
// index the engine will serve.
type Factory func(part int) (*ttdb.DurablePolyglot, error)

// stationMeta is the coordinator's placement record for one station.
type stationMeta struct {
	gid      ttdb.StationID // coordinator-global id (monotone in ingest order)
	name     string
	district string
	part     int            // owning partition
	local    ttdb.StationID // node id inside the owner
	// replicas maps partition index -> boundary-vertex node id for every
	// partition holding a graph-only copy of this station.
	replicas map[int]ttdb.StationID
}

// tripRec remembers one logical trip edge in coordinator id space, so
// Repartition can replay topology and View can rebuild the HyQL graph.
type tripRec struct {
	a, b  ttdb.StationID // gids
	count int
}

// Coordinator is the partitioned engine. It implements ttdb.Engine (plain
// query surface) plus the *Ctx variants with typed partial results, so it
// drops into every harness the single-process engines run under.
type Coordinator struct {
	mu      sync.RWMutex
	factory Factory
	parts   []*ttdb.DurablePolyglot
	nextGid uint64
	order   []ttdb.StationID                // gids in ingest order (ascending)
	meta    map[ttdb.StationID]*stationMeta // by gid
	local2g []map[ttdb.StationID]ttdb.StationID // per-partition: local station id -> gid
	bnd2g   []map[ttdb.StationID]ttdb.StationID // per-partition: boundary node id -> gid
	trips   []tripRec
	obs     coordObs
}

// New builds a coordinator over n partitions created by the factory.
func New(n int, factory Factory) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("coord: need at least one partition, got %d", n)
	}
	c := &Coordinator{
		factory: factory,
		nextGid: 1,
		meta:    map[ttdb.StationID]*stationMeta{},
	}
	for i := 0; i < n; i++ {
		p, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("coord: partition %d: %w", i, err)
		}
		c.parts = append(c.parts, p)
		c.local2g = append(c.local2g, map[ttdb.StationID]ttdb.StationID{})
		c.bnd2g = append(c.bnd2g, map[ttdb.StationID]ttdb.StationID{})
	}
	return c, nil
}

// NewMem builds a coordinator over n in-memory partitions (logs discarded) —
// the configuration benches and tests use.
func NewMem(n int, chunkWidth ts.Time) (*Coordinator, error) {
	return New(n, func(int) (*ttdb.DurablePolyglot, error) {
		return ttdb.NewDurable(chunkWidth, io.Discard, io.Discard, io.Discard), nil
	})
}

// owner is the placement map: FNV-1a over the station name modulo the
// partition count. Pure function of (name, partition count), so a reopened
// coordinator places new stations consistently with an attached one.
func ownerOf(name string, nparts int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(nparts))
}

// NumPartitions reports the partition count.
func (c *Coordinator) NumPartitions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.parts)
}

// Parts exposes the backing partitions (for sync, recovery and tests). The
// slice is a copy; the engines are shared.
func (c *Coordinator) Parts() []*ttdb.DurablePolyglot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*ttdb.DurablePolyglot, len(c.parts))
	copy(out, c.parts)
	return out
}

// NumStations reports the number of live stations across all partitions.
func (c *Coordinator) NumStations() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.order)
}

// Name implements ttdb.Engine.
func (c *Coordinator) Name() string { return "coord" }

// SetWorkers implements ttdb.Engine: the width applies inside each
// partition's own Q4–Q8 fan-out; the coordinator's scatter always runs one
// goroutine per partition.
func (c *Coordinator) SetWorkers(n int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, p := range c.parts {
		p.SetWorkers(n)
	}
}

// SetGroupCommit forwards the WAL batching width to every partition's group
// writers.
func (c *Coordinator) SetGroupCommit(n int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, p := range c.parts {
		p.SetGroupCommit(n)
	}
}

// IngestStation places and durably ingests a station with its series,
// returning its coordinator-global id.
func (c *Coordinator) IngestStation(name, district string, s *ts.Series) (ttdb.StationID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	part := ownerOf(name, len(c.parts))
	local, err := c.parts[part].IngestStation(name, district, s)
	if err != nil {
		return 0, fmt.Errorf("coord: partition %d: %w", part, err)
	}
	gid := ttdb.StationID(c.nextGid)
	c.nextGid++
	if err := c.parts[part].TagStation(local, uint64(gid)); err != nil {
		return 0, fmt.Errorf("coord: partition %d: %w", part, err)
	}
	c.meta[gid] = &stationMeta{
		gid: gid, name: name, district: district,
		part: part, local: local,
		replicas: map[int]ttdb.StationID{},
	}
	c.order = append(c.order, gid)
	c.local2g[part][local] = gid
	c.obs.ingests.Inc()
	return gid, nil
}

// AddStation implements ttdb.Engine: an ingest with an empty series (the
// series arrives later via LoadSeries, like the Table 1 loading path).
func (c *Coordinator) AddStation(name, district string) (ttdb.StationID, error) {
	return c.IngestStation(name, district, ts.New(ttdb.Metric))
}

// LoadSeries implements ttdb.Engine: the points go to the owning partition.
func (c *Coordinator) LoadSeries(st ttdb.StationID, s *ts.Series) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.meta[st]
	if !ok {
		return fmt.Errorf("coord: load series: unknown station %d", st)
	}
	return c.parts[m.part].LoadSeries(m.local, s)
}

// AppendPoint streams one observation to the owning partition.
func (c *Coordinator) AppendPoint(st ttdb.StationID, t ts.Time, v float64) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.meta[st]
	if !ok {
		return fmt.Errorf("coord: append point: unknown station %d", st)
	}
	return c.parts[m.part].AppendPoint(m.local, t, v)
}

// ensureReplicaLocked materializes (or reuses) the boundary vertex of m
// inside partition part. Caller holds the write lock.
func (c *Coordinator) ensureReplicaLocked(m *stationMeta, part int) (ttdb.StationID, error) {
	if r, ok := m.replicas[part]; ok {
		return r, nil
	}
	id, err := c.parts[part].AddBoundary(uint64(m.gid))
	if err != nil {
		return 0, err
	}
	m.replicas[part] = id
	c.bnd2g[part][id] = m.gid
	c.obs.replicas.Inc()
	return id, nil
}

// AddTrip implements ttdb.Engine. A same-partition trip is one local edge; a
// cross-partition trip is mirrored into both partitions via boundary-vertex
// replication (each side gets a local edge to a graph-only replica of the
// remote endpoint, direction preserved), so adjacency resolves locally
// everywhere.
func (c *Coordinator) AddTrip(a, b ttdb.StationID, count int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ma, ok := c.meta[a]
	if !ok {
		return fmt.Errorf("coord: add trip: unknown station %d", a)
	}
	mb, ok := c.meta[b]
	if !ok {
		return fmt.Errorf("coord: add trip: unknown station %d", b)
	}
	if err := c.addTripLocked(ma, mb, count); err != nil {
		return err
	}
	c.trips = append(c.trips, tripRec{a: a, b: b, count: count})
	return nil
}

func (c *Coordinator) addTripLocked(ma, mb *stationMeta, count int) error {
	if ma.part == mb.part {
		if err := c.parts[ma.part].AddTrip(ma.local, mb.local, count); err != nil {
			return fmt.Errorf("coord: partition %d: %w", ma.part, err)
		}
		return nil
	}
	rb, err := c.ensureReplicaLocked(mb, ma.part)
	if err != nil {
		return fmt.Errorf("coord: partition %d: %w", ma.part, err)
	}
	if err := c.parts[ma.part].AddTrip(ma.local, rb, count); err != nil {
		return fmt.Errorf("coord: partition %d: %w", ma.part, err)
	}
	ra, err := c.ensureReplicaLocked(ma, mb.part)
	if err != nil {
		return fmt.Errorf("coord: partition %d: %w", mb.part, err)
	}
	if err := c.parts[mb.part].AddTrip(ra, mb.local, count); err != nil {
		return fmt.Errorf("coord: partition %d: %w", mb.part, err)
	}
	c.obs.crossEdges.Inc()
	return nil
}

// DeleteStation durably removes a station everywhere: its node and series
// from the owner (incident edges go with the node), and every boundary
// replica (with its mirrored edges) from the other partitions. Unknown ids
// are a no-op, matching the durable layer's idempotent deletes. Boundary
// replicas of OTHER stations that existed only for trips with the deleted
// one are left behind edgeless; they are invisible to every query (Boundary
// label, no series) and reconstruction tolerates them.
func (c *Coordinator) DeleteStation(st ttdb.StationID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.meta[st]
	if !ok {
		return nil
	}
	if err := c.parts[m.part].DeleteStation(m.local); err != nil {
		return fmt.Errorf("coord: partition %d: %w", m.part, err)
	}
	for part := 0; part < len(c.parts); part++ {
		rid, ok := m.replicas[part]
		if !ok {
			continue
		}
		if err := c.parts[part].DeleteBoundary(rid); err != nil {
			return fmt.Errorf("coord: partition %d: %w", part, err)
		}
		delete(c.bnd2g[part], rid)
	}
	delete(c.local2g[m.part], m.local)
	delete(c.meta, st)
	for i, gid := range c.order {
		if gid == st {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	kept := c.trips[:0]
	for _, tr := range c.trips {
		if tr.a != st && tr.b != st {
			kept = append(kept, tr)
		}
	}
	c.trips = kept
	return nil
}

// Repartition rebuilds the coordinator over n fresh partitions from the
// factory, re-placing every station (series extracted from its old owner)
// and replaying every trip. Global ids are preserved, so answers are
// invariant under repartitioning — the property the invariance battery
// proves. The old partitions are abandoned; callers owning external
// resources close them via the handles they kept.
func (c *Coordinator) Repartition(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		return fmt.Errorf("coord: need at least one partition, got %d", n)
	}
	oldMeta, oldParts := c.meta, c.parts
	parts := make([]*ttdb.DurablePolyglot, 0, n)
	local2g := make([]map[ttdb.StationID]ttdb.StationID, 0, n)
	bnd2g := make([]map[ttdb.StationID]ttdb.StationID, 0, n)
	for i := 0; i < n; i++ {
		p, err := c.factory(i)
		if err != nil {
			return fmt.Errorf("coord: repartition: partition %d: %w", i, err)
		}
		parts = append(parts, p)
		local2g = append(local2g, map[ttdb.StationID]ttdb.StationID{})
		bnd2g = append(bnd2g, map[ttdb.StationID]ttdb.StationID{})
	}
	meta := make(map[ttdb.StationID]*stationMeta, len(oldMeta))
	c.parts, c.local2g, c.bnd2g, c.meta = parts, local2g, bnd2g, meta
	for _, gid := range c.order {
		om := oldMeta[gid]
		series := oldParts[om.part].Engine().T.RangeSeries(seriesKey(om.local), 0, ts.MaxTime)
		if series == nil {
			series = ts.New(ttdb.Metric)
		} else {
			series.SetName(ttdb.Metric)
		}
		part := ownerOf(om.name, n)
		local, err := parts[part].IngestStation(om.name, om.district, series)
		if err != nil {
			return fmt.Errorf("coord: repartition: partition %d: %w", part, err)
		}
		if err := parts[part].TagStation(local, uint64(gid)); err != nil {
			return fmt.Errorf("coord: repartition: partition %d: %w", part, err)
		}
		meta[gid] = &stationMeta{
			gid: gid, name: om.name, district: om.district,
			part: part, local: local,
			replicas: map[int]ttdb.StationID{},
		}
		local2g[part][local] = gid
	}
	for _, tr := range c.trips {
		if err := c.addTripLocked(meta[tr.a], meta[tr.b], tr.count); err != nil {
			return fmt.Errorf("coord: repartition: %w", err)
		}
	}
	c.obs.repartitions.Inc()
	return nil
}

// SyncAll drains every partition's logs; the first failure names the
// partition.
func (c *Coordinator) SyncAll() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, p := range c.parts {
		if err := p.SyncAll(); err != nil {
			return fmt.Errorf("coord: partition %d: %w", i, err)
		}
	}
	return nil
}

package coord

import (
	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// View materializes a core.HyGraph of the whole partitioned deployment in
// the same shape dataset.BikeData.ToHyGraph and the server's single-engine
// view produce: Station PG vertices with name/district properties in ingest
// (gid) order, their availability series as first-class TS vertices linked
// by HAS_SERIES, and TRIP edges carrying count in ingest order. HyQL queries
// therefore answer identically over a partitioned tenant and a single-engine
// one — the coordinator's HyQL execution path IS this view.
func (c *Coordinator) View() *core.HyGraph {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := core.New()
	vids := make(map[ttdb.StationID]core.VID, len(c.order))
	for _, gid := range c.order {
		m := c.meta[gid]
		v, err := h.AddVertex(tpg.Always, "Station")
		if err != nil {
			continue
		}
		h.SetVertexProp(v, "name", lpg.Str(m.name))
		h.SetVertexProp(v, "district", lpg.Str(m.district))
		vids[gid] = v
		series := c.parts[m.part].Engine().T.RangeSeries(seriesKey(m.local), 0, ts.MaxTime)
		if series == nil || series.Empty() {
			continue
		}
		series.SetName(ttdb.Metric)
		if tsv, err := h.AddTSVertexUni(series, "Availability"); err == nil {
			_, _ = h.AddEdge(v, tsv, "HAS_SERIES", tpg.Always)
		}
	}
	for _, tr := range c.trips {
		from, okF := vids[tr.a]
		to, okT := vids[tr.b]
		if !okF || !okT {
			continue
		}
		e, err := h.AddEdge(from, to, "TRIP", tpg.Always)
		if err != nil {
			continue
		}
		h.SetEdgeProp(e, "count", lpg.Int(int64(tr.count)))
	}
	return h
}

package lpg

import (
	"container/heap"
	"math"
)

// Direction selects which edges a traversal follows.
type Direction int

// Traversal directions.
const (
	Out  Direction = iota // follow edges from source to target
	In                    // follow edges from target to source
	Both                  // follow edges in either direction
)

// step yields the neighbors of id reachable over one edge in the given
// direction, with the edge used.
func (g *Graph) step(id VertexID, dir Direction, fn func(next VertexID, via *Edge) bool) {
	if dir == Out || dir == Both {
		for _, e := range g.OutEdges(id) {
			if !fn(e.To, e) {
				return
			}
		}
	}
	if dir == In || dir == Both {
		for _, e := range g.InEdges(id) {
			if !fn(e.From, e) {
				return
			}
		}
	}
}

// BFS visits vertices reachable from start in breadth-first order, calling
// fn with each vertex and its hop distance. fn returning false stops the
// traversal.
func (g *Graph) BFS(start VertexID, dir Direction, fn func(id VertexID, depth int) bool) {
	if g.Vertex(start) == nil {
		return
	}
	seen := map[VertexID]bool{start: true}
	frontier := []VertexID{start}
	depth := 0
	for len(frontier) > 0 {
		var next []VertexID
		for _, id := range frontier {
			if !fn(id, depth) {
				return
			}
			g.step(id, dir, func(n VertexID, _ *Edge) bool {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
				return true
			})
		}
		frontier = next
		depth++
	}
}

// DFS visits vertices reachable from start in depth-first (preorder),
// calling fn with each vertex. fn returning false prunes that branch.
func (g *Graph) DFS(start VertexID, dir Direction, fn func(id VertexID) bool) {
	if g.Vertex(start) == nil {
		return
	}
	seen := map[VertexID]bool{}
	var rec func(VertexID)
	rec = func(id VertexID) {
		if seen[id] {
			return
		}
		seen[id] = true
		if !fn(id) {
			return
		}
		g.step(id, dir, func(n VertexID, _ *Edge) bool { rec(n); return true })
	}
	rec(start)
}

// Reachable reports whether target is reachable from start within maxHops
// edges (maxHops < 0 means unbounded). This is the paper's Q3 graph
// primitive (reachability, Table 2).
func (g *Graph) Reachable(start, target VertexID, dir Direction, maxHops int) bool {
	found := false
	g.BFS(start, dir, func(id VertexID, depth int) bool {
		if maxHops >= 0 && depth > maxHops {
			return false
		}
		if id == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// ShortestPath returns the vertex sequence of a minimum-hop path from start
// to target, or nil if unreachable.
func (g *Graph) ShortestPath(start, target VertexID, dir Direction) []VertexID {
	if g.Vertex(start) == nil || g.Vertex(target) == nil {
		return nil
	}
	if start == target {
		return []VertexID{start}
	}
	prev := map[VertexID]VertexID{start: start}
	frontier := []VertexID{start}
	for len(frontier) > 0 {
		var next []VertexID
		for _, id := range frontier {
			done := false
			g.step(id, dir, func(n VertexID, _ *Edge) bool {
				if _, ok := prev[n]; ok {
					return true
				}
				prev[n] = id
				if n == target {
					done = true
					return false
				}
				next = append(next, n)
				return true
			})
			if done {
				return buildPath(prev, start, target)
			}
		}
		frontier = next
	}
	return nil
}

func buildPath(prev map[VertexID]VertexID, start, target VertexID) []VertexID {
	var rev []VertexID
	for at := target; ; at = prev[at] {
		rev = append(rev, at)
		if at == start {
			break
		}
	}
	out := make([]VertexID, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// WeightedShortestPath runs Dijkstra from start to target using the given
// non-negative edge weight function and returns the path and its total
// weight; ok is false if unreachable.
func (g *Graph) WeightedShortestPath(start, target VertexID, dir Direction, weight func(*Edge) float64) (path []VertexID, total float64, ok bool) {
	if g.Vertex(start) == nil || g.Vertex(target) == nil {
		return nil, 0, false
	}
	dist := map[VertexID]float64{start: 0}
	prev := map[VertexID]VertexID{start: start}
	pq := &vertexHeap{{start, 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(vertexDist)
		if cur.d > dist[cur.id] {
			continue
		}
		if cur.id == target {
			return buildPath(prev, start, target), cur.d, true
		}
		g.step(cur.id, dir, func(n VertexID, e *Edge) bool {
			nd := cur.d + weight(e)
			if old, seen := dist[n]; !seen || nd < old {
				dist[n] = nd
				prev[n] = cur.id
				heap.Push(pq, vertexDist{n, nd})
			}
			return true
		})
	}
	return nil, math.Inf(1), false
}

type vertexDist struct {
	id VertexID
	d  float64
}

type vertexHeap []vertexDist

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(vertexDist)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ConnectedComponents returns, for each live vertex, a component id
// (undirected connectivity). Component ids are dense, assigned in order of
// the smallest vertex in each component.
func (g *Graph) ConnectedComponents() map[VertexID]int {
	comp := make(map[VertexID]int, g.nLive)
	next := 0
	g.Vertices(func(v *Vertex) bool {
		if _, done := comp[v.ID]; done {
			return true
		}
		g.BFS(v.ID, Both, func(id VertexID, _ int) bool {
			comp[id] = next
			return true
		})
		next++
		return true
	})
	return comp
}

// WithinHops returns all vertices within maxHops of start (including start),
// in BFS order.
func (g *Graph) WithinHops(start VertexID, dir Direction, maxHops int) []VertexID {
	var out []VertexID
	g.BFS(start, dir, func(id VertexID, depth int) bool {
		if depth > maxHops {
			return false
		}
		out = append(out, id)
		return true
	})
	return out
}

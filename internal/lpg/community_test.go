package lpg

import (
	"math/rand"
	"testing"
)

// twoClusters builds two dense cliques of size k joined by a single bridge
// edge.
func twoClusters(k int) (*Graph, []VertexID, []VertexID) {
	g := NewGraph()
	mk := func() []VertexID {
		ids := make([]VertexID, k)
		for i := range ids {
			ids[i] = g.AddVertex("V")
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(ids[i], ids[j], "e")
			}
		}
		return ids
	}
	a := mk()
	b := mk()
	g.AddEdge(a[0], b[0], "bridge")
	return g, a, b
}

func sameCommunity(c Communities, ids []VertexID) bool {
	for _, id := range ids[1:] {
		if c.Of[id] != c.Of[ids[0]] {
			return false
		}
	}
	return true
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g, a, b := twoClusters(6)
	c := g.LabelPropagation(50, 1)
	if !sameCommunity(c, a) || !sameCommunity(c, b) {
		t.Fatalf("cliques split: %v", c.Of)
	}
	if c.Of[a[0]] == c.Of[b[0]] {
		t.Fatal("cliques merged")
	}
	if c.Count != 2 {
		t.Fatalf("count=%d", c.Count)
	}
}

func TestLabelPropagationIsolated(t *testing.T) {
	g := NewGraph()
	g.AddVertex("A")
	g.AddVertex("B")
	c := g.LabelPropagation(10, 1)
	if c.Count != 2 {
		t.Fatalf("isolated vertices: count=%d", c.Count)
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	g, a, b := twoClusters(6)
	c := g.Louvain(20)
	if !sameCommunity(c, a) || !sameCommunity(c, b) {
		t.Fatalf("cliques split: %v", c.Of)
	}
	if c.Of[a[0]] == c.Of[b[0]] {
		t.Fatal("cliques merged")
	}
}

func TestLouvainBeatsSingletons(t *testing.T) {
	g, _, _ := twoClusters(5)
	c := g.Louvain(20)
	// Singleton assignment modularity.
	single := Communities{Of: map[VertexID]int{}, Count: g.NumVertices()}
	for i, id := range g.VertexIDs() {
		single.Of[id] = i
	}
	if g.Modularity(c) <= g.Modularity(single) {
		t.Fatalf("louvain %v <= singletons %v", g.Modularity(c), g.Modularity(single))
	}
}

func TestModularityBounds(t *testing.T) {
	g, a, b := twoClusters(4)
	// Planted partition.
	planted := Communities{Of: map[VertexID]int{}, Count: 2}
	for _, id := range a {
		planted.Of[id] = 0
	}
	for _, id := range b {
		planted.Of[id] = 1
	}
	q := g.Modularity(planted)
	if q <= 0 || q > 1 {
		t.Fatalf("modularity=%v", q)
	}
	// All-in-one has modularity 0 minus degree term → ~0.
	allOne := Communities{Of: map[VertexID]int{}, Count: 1}
	for _, id := range g.VertexIDs() {
		allOne.Of[id] = 0
	}
	if got := g.Modularity(allOne); got > 1e-9 {
		t.Fatalf("all-in-one modularity=%v", got)
	}
	if got := NewGraph().Modularity(Communities{Of: map[VertexID]int{}}); got != 0 {
		t.Fatalf("empty graph modularity=%v", got)
	}
}

func TestMembers(t *testing.T) {
	g, a, b := twoClusters(3)
	c := g.LabelPropagation(50, 1)
	members := c.Members()
	if len(members) != c.Count {
		t.Fatalf("members groups=%d", len(members))
	}
	total := 0
	for _, m := range members {
		total += len(m)
		for i := 1; i < len(m); i++ {
			if m[i] <= m[i-1] {
				t.Fatal("members not sorted")
			}
		}
	}
	if total != len(a)+len(b) {
		t.Fatalf("members total=%d", total)
	}
}

func TestLabelPropagationDeterministicPerSeed(t *testing.T) {
	g, _, _ := twoClusters(8)
	c1 := g.LabelPropagation(50, 7)
	c2 := g.LabelPropagation(50, 7)
	if c1.Count != c2.Count {
		t.Fatal("same seed, different counts")
	}
	for id, cm := range c1.Of {
		if c2.Of[id] != cm {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestLouvainRandomGraphStability(t *testing.T) {
	// Louvain on random graphs must terminate and produce a valid dense
	// assignment.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 10; iter++ {
		g := NewGraph()
		n := 5 + rng.Intn(40)
		ids := make([]VertexID, n)
		for i := range ids {
			ids[i] = g.AddVertex("V")
		}
		for e := 0; e < n*3; e++ {
			g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], "e")
		}
		c := g.Louvain(20)
		seen := map[int]bool{}
		for _, cm := range c.Of {
			if cm < 0 || cm >= c.Count {
				t.Fatalf("community id %d out of [0,%d)", cm, c.Count)
			}
			seen[cm] = true
		}
		if len(seen) != c.Count {
			t.Fatalf("non-dense communities: %d used of %d", len(seen), c.Count)
		}
	}
}

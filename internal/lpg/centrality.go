package lpg

// KCore computes the k-core decomposition over the undirected view: each
// vertex's core number is the largest k such that it belongs to a subgraph
// where every vertex has degree >= k. Peeling runs in O(V + E) with
// bucketed degrees. Core numbers feed density-based clustering (Table 2,
// C2) and summarize structural robustness.
func (g *Graph) KCore() map[VertexID]int {
	ids := g.VertexIDs()
	deg := make(map[VertexID]int, len(ids))
	adj := make(map[VertexID][]VertexID, len(ids))
	for _, id := range ids {
		nbrs := g.Neighbors(id)
		adj[id] = nbrs
		deg[id] = len(nbrs)
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]VertexID, maxDeg+1)
	for _, id := range ids {
		buckets[deg[id]] = append(buckets[deg[id]], id)
	}
	core := make(map[VertexID]int, len(ids))
	removed := make(map[VertexID]bool, len(ids))
	cur := make(map[VertexID]int, len(ids))
	for _, id := range ids {
		cur[id] = deg[id]
	}
	for k := 0; k <= maxDeg; k++ {
		for len(buckets[k]) > 0 {
			id := buckets[k][len(buckets[k])-1]
			buckets[k] = buckets[k][:len(buckets[k])-1]
			if removed[id] || cur[id] > k {
				continue // stale bucket entry
			}
			removed[id] = true
			core[id] = k
			for _, nb := range adj[id] {
				if removed[nb] || cur[nb] <= k {
					continue
				}
				cur[nb]--
				b := cur[nb]
				if b < k {
					b = k
				}
				buckets[b] = append(buckets[b], nb)
			}
		}
	}
	return core
}

// Betweenness computes (unnormalized) betweenness centrality over the
// undirected, unweighted view using Brandes' algorithm: for each vertex,
// the number of shortest paths between other vertex pairs passing through
// it. O(V·E).
func (g *Graph) Betweenness() map[VertexID]float64 {
	ids := g.VertexIDs()
	adj := make(map[VertexID][]VertexID, len(ids))
	for _, id := range ids {
		adj[id] = g.Neighbors(id)
	}
	cb := make(map[VertexID]float64, len(ids))
	for _, s := range ids {
		// Single-source shortest paths with path counting.
		var stack []VertexID
		pred := map[VertexID][]VertexID{}
		sigma := map[VertexID]float64{s: 1}
		dist := map[VertexID]int{s: 0}
		queue := []VertexID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if _, seen := dist[w]; !seen {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					pred[w] = append(pred[w], v)
				}
			}
		}
		// Accumulation (dependencies), reverse BFS order.
		delta := map[VertexID]float64{}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range pred[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	// Each undirected pair is counted from both endpoints; halve.
	for id := range cb {
		cb[id] /= 2
	}
	// Ensure every vertex has an entry.
	for _, id := range ids {
		if _, ok := cb[id]; !ok {
			cb[id] = 0
		}
	}
	return cb
}

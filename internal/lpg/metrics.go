package lpg

import "sort"

// DegreeStats summarizes the degree distribution of the graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns the total degree of every live vertex.
func (g *Graph) Degrees() map[VertexID]int {
	out := make(map[VertexID]int, g.nLive)
	g.Vertices(func(v *Vertex) bool {
		out[v.ID] = g.Degree(v.ID)
		return true
	})
	return out
}

// DegreeDistribution computes min/max/mean total degree over live vertices.
func (g *Graph) DegreeDistribution() DegreeStats {
	st := DegreeStats{Min: -1}
	var total int
	g.Vertices(func(v *Vertex) bool {
		d := g.Degree(v.ID)
		if st.Min < 0 || d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		total += d
		return true
	})
	if g.nLive > 0 {
		st.Mean = float64(total) / float64(g.nLive)
	}
	if st.Min < 0 {
		st.Min = 0
	}
	return st
}

// PageRank computes PageRank with the given damping factor over directed
// out-edges, iterating until the L1 change falls below tol or maxIter
// rounds. Dangling mass is redistributed uniformly.
func (g *Graph) PageRank(damping float64, maxIter int, tol float64) map[VertexID]float64 {
	ids := g.VertexIDs()
	n := len(ids)
	if n == 0 {
		return map[VertexID]float64{}
	}
	rank := make(map[VertexID]float64, n)
	for _, id := range ids {
		rank[id] = 1.0 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		next := make(map[VertexID]float64, n)
		base := (1 - damping) / float64(n)
		var dangling float64
		for _, id := range ids {
			outs := g.OutEdges(id)
			if len(outs) == 0 {
				dangling += rank[id]
				continue
			}
			share := rank[id] / float64(len(outs))
			for _, e := range outs {
				next[e.To] += damping * share
			}
		}
		danglingShare := damping * dangling / float64(n)
		var delta float64
		for _, id := range ids {
			nv := base + danglingShare + next[id]
			if d := nv - rank[id]; d < 0 {
				delta -= d
			} else {
				delta += d
			}
			next[id] = nv
		}
		rank = next
		if delta < tol {
			break
		}
	}
	return rank
}

// Triangles counts the triangles each vertex participates in (treating the
// graph as undirected, ignoring parallel edges and self-loops) and the total
// triangle count.
func (g *Graph) Triangles() (perVertex map[VertexID]int, total int) {
	adj := make(map[VertexID]map[VertexID]bool, g.nLive)
	g.Vertices(func(v *Vertex) bool {
		adj[v.ID] = map[VertexID]bool{}
		return true
	})
	g.Edges(func(e *Edge) bool {
		if e.From != e.To {
			adj[e.From][e.To] = true
			adj[e.To][e.From] = true
		}
		return true
	})
	perVertex = make(map[VertexID]int, g.nLive)
	for u, nu := range adj {
		for v := range nu {
			if v <= u {
				continue
			}
			for w := range nu {
				if w <= v {
					continue
				}
				if adj[v][w] {
					perVertex[u]++
					perVertex[v]++
					perVertex[w]++
					total++
				}
			}
		}
	}
	return perVertex, total
}

// ClusteringCoefficient returns the local clustering coefficient of a
// vertex: triangles through it divided by the number of neighbor pairs.
func (g *Graph) ClusteringCoefficient(id VertexID) float64 {
	nbrs := g.Neighbors(id)
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	connected := func(u, v VertexID) bool {
		for _, e := range g.OutEdges(u) {
			if e.To == v {
				return true
			}
		}
		for _, e := range g.InEdges(u) {
			if e.From == v {
				return true
			}
		}
		return false
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if connected(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// TopKByDegree returns up to k live vertex IDs with the highest total
// degree, ties broken by ascending ID.
func (g *Graph) TopKByDegree(k int) []VertexID {
	ids := g.VertexIDs()
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

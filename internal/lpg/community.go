package lpg

import (
	"math/rand"
	"sort"
)

// Communities holds a vertex → community assignment with dense community
// ids in [0, Count).
type Communities struct {
	Of    map[VertexID]int
	Count int
}

// Members returns the vertex sets per community, each sorted by ID.
func (c Communities) Members() [][]VertexID {
	out := make([][]VertexID, c.Count)
	for v, cm := range c.Of {
		out[cm] = append(out[cm], v)
	}
	for _, m := range out {
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	}
	return out
}

// LabelPropagation detects communities by synchronous label propagation over
// the undirected graph: every vertex repeatedly adopts the most frequent
// label among its neighbors (ties broken by smallest label) until no label
// changes or maxIter rounds pass. The seed fixes the vertex visiting order
// for reproducible results. This is the paper's D graph primitive
// (community detection, Table 2).
func (g *Graph) LabelPropagation(maxIter int, seed int64) Communities {
	ids := g.VertexIDs()
	label := make(map[VertexID]VertexID, len(ids))
	for _, id := range ids {
		label[id] = id
	}
	rng := rand.New(rand.NewSource(seed))
	order := append([]VertexID(nil), ids...)
	for iter := 0; iter < maxIter; iter++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, id := range order {
			counts := map[VertexID]int{}
			for _, n := range g.Neighbors(id) {
				counts[label[n]]++
			}
			if len(counts) == 0 {
				continue
			}
			best := label[id]
			bestCount := counts[best] // current label wins ties it participates in
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best = l
					bestCount = c
				}
			}
			if best != label[id] {
				label[id] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return denseCommunities(ids, func(id VertexID) VertexID { return label[id] })
}

// denseCommunities renumbers arbitrary community representatives into dense
// ids ordered by the smallest member vertex.
func denseCommunities(ids []VertexID, repOf func(VertexID) VertexID) Communities {
	rep2dense := map[VertexID]int{}
	of := make(map[VertexID]int, len(ids))
	for _, id := range ids { // ids are in ascending order
		r := repOf(id)
		d, ok := rep2dense[r]
		if !ok {
			d = len(rep2dense)
			rep2dense[r] = d
		}
		of[id] = d
	}
	return Communities{Of: of, Count: len(rep2dense)}
}

// Modularity computes the Newman modularity of an assignment over the
// undirected view of the graph (each directed edge counts once).
func (g *Graph) Modularity(c Communities) float64 {
	m := float64(g.eLive)
	if m == 0 {
		return 0
	}
	deg := g.Degrees()
	var q float64
	g.Edges(func(e *Edge) bool {
		if c.Of[e.From] == c.Of[e.To] {
			q += 1
		}
		return true
	})
	q /= m
	// Expected in-community fraction, folded in vertex-ID order so the float
	// result is identical across runs (map iteration order is random).
	sumDeg := make([]float64, c.Count)
	for _, v := range g.VertexIDs() {
		if cm, ok := c.Of[v]; ok && cm >= 0 && cm < len(sumDeg) {
			sumDeg[cm] += float64(deg[v])
		}
	}
	for _, s := range sumDeg {
		q -= (s / (2 * m)) * (s / (2 * m))
	}
	return q
}

// Louvain runs a single-level Louvain community detection: greedily move
// vertices to the neighboring community with the best modularity gain until
// no move improves, then return the assignment. Deterministic given the
// vertex ID order.
func (g *Graph) Louvain(maxPasses int) Communities {
	ids := g.VertexIDs()
	comm := make(map[VertexID]VertexID, len(ids))
	for _, id := range ids {
		comm[id] = id
	}
	deg := g.Degrees()
	m2 := 0.0 // 2m = total degree, summed in ID order for a stable float fold
	for _, id := range ids {
		m2 += float64(deg[id])
	}
	if m2 == 0 {
		return denseCommunities(ids, func(id VertexID) VertexID { return comm[id] })
	}
	commDeg := map[VertexID]float64{} // community -> total degree
	for _, id := range ids {
		commDeg[id] = float64(deg[id])
	}
	// weight to each neighboring community from a vertex.
	neighWeights := func(id VertexID) map[VertexID]float64 {
		w := map[VertexID]float64{}
		g.step(id, Both, func(n VertexID, _ *Edge) bool {
			if n != id {
				w[comm[n]]++
			}
			return true
		})
		return w
	}
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for _, id := range ids {
			cur := comm[id]
			kd := float64(deg[id])
			w := neighWeights(id)
			// Remove from current community.
			commDeg[cur] -= kd
			best := cur
			bestGain := w[cur] - commDeg[cur]*kd/m2
			for c, wc := range w {
				if c == cur {
					continue
				}
				gain := wc - commDeg[c]*kd/m2
				if gain > bestGain || (gain == bestGain && c < best) {
					best = c
					bestGain = gain
				}
			}
			comm[id] = best
			commDeg[best] += kd
			if best != cur {
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return denseCommunities(ids, func(id VertexID) VertexID { return comm[id] })
}

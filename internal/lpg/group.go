package lpg

import (
	"fmt"
	"sort"
	"strings"
)

// GroupSpec configures graph grouping (summarization): vertices are grouped
// by VertexKey, edges between groups are merged into super-edges by edge
// label. Numeric vertex/edge properties listed in the aggregate maps are
// aggregated into super-element properties named "<agg>_<key>". A vertex
// count property "count" is always set on super-vertices, and an edge count
// on super-edges. This is the paper's Q2 graph primitive (graph
// aggregation, Table 2); core.Aggregate pairs it with series downsampling.
type GroupSpec struct {
	// VertexKey maps a vertex to its group key; vertices with equal keys are
	// merged. Empty-string keys are valid groups.
	VertexKey func(*Vertex) string
	// VertexAggs aggregates numeric vertex properties per group.
	VertexAggs map[string]AggKind
	// EdgeAggs aggregates numeric edge properties per super-edge.
	EdgeAggs map[string]AggKind
}

// AggKind is the aggregation applied to grouped numeric properties.
type AggKind int

// Grouping aggregations.
const (
	AggKindSum AggKind = iota
	AggKindMean
	AggKindMin
	AggKindMax
	AggKindCount
)

func (a AggKind) String() string {
	switch a {
	case AggKindSum:
		return "sum"
	case AggKindMean:
		return "mean"
	case AggKindMin:
		return "min"
	case AggKindMax:
		return "max"
	case AggKindCount:
		return "count"
	}
	return fmt.Sprintf("AggKind(%d)", int(a))
}

func (a AggKind) apply(vals []float64) float64 {
	if a == AggKindCount {
		return float64(len(vals))
	}
	if len(vals) == 0 {
		return 0
	}
	switch a {
	case AggKindSum, AggKindMean:
		var s float64
		for _, v := range vals {
			s += v
		}
		if a == AggKindMean {
			return s / float64(len(vals))
		}
		return s
	case AggKindMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggKindMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return 0
}

// Grouping is the result of Group: the summary graph plus the mapping from
// original vertices to super-vertices.
type Grouping struct {
	Summary *Graph
	// SuperOf maps each original vertex to its super-vertex in Summary.
	SuperOf map[VertexID]VertexID
	// KeyOf maps each super-vertex to its group key.
	KeyOf map[VertexID]string
}

// GroupByLabels is a convenience VertexKey grouping by the sorted label set.
func GroupByLabels(v *Vertex) string {
	ls := append([]string(nil), v.Labels...)
	sort.Strings(ls)
	return strings.Join(ls, "|")
}

// GroupByProp returns a VertexKey grouping by the string rendering of the
// given property.
func GroupByProp(key string) func(*Vertex) string {
	return func(v *Vertex) string { return v.Prop(key).String() }
}

// Group summarizes the graph per spec. Super-vertices carry the label
// "_group", a "key" property with the group key, a "count" property, and one
// "<agg>_<key>" property per configured vertex aggregate. Super-edges merge
// all original edges between two groups with the same label and carry
// "count" plus configured edge aggregates.
func (g *Graph) Group(spec GroupSpec) Grouping {
	if spec.VertexKey == nil {
		spec.VertexKey = GroupByLabels
	}
	sum := NewGraph()
	superOf := make(map[VertexID]VertexID, g.nLive)
	byKey := map[string]VertexID{}
	keyName := map[VertexID]string{}
	memberVals := map[VertexID]map[string][]float64{} // super -> prop -> values
	memberCount := map[VertexID]int{}

	g.Vertices(func(v *Vertex) bool {
		key := spec.VertexKey(v)
		sv, ok := byKey[key]
		if !ok {
			sv = sum.AddVertex("_group")
			sum.SetVertexProp(sv, "key", Str(key))
			byKey[key] = sv
			keyName[sv] = key
			memberVals[sv] = map[string][]float64{}
		}
		superOf[v.ID] = sv
		memberCount[sv]++
		for prop := range spec.VertexAggs {
			if f, ok := v.Prop(prop).AsFloat(); ok {
				memberVals[sv][prop] = append(memberVals[sv][prop], f)
			}
		}
		return true
	})
	for sv, count := range memberCount {
		sum.SetVertexProp(sv, "count", Int(int64(count)))
		for prop, agg := range spec.VertexAggs {
			sum.SetVertexProp(sv, agg.String()+"_"+prop, Float(agg.apply(memberVals[sv][prop])))
		}
	}

	type superEdgeKey struct {
		from, to VertexID
		label    string
	}
	edgeVals := map[superEdgeKey]map[string][]float64{}
	edgeCount := map[superEdgeKey]int{}
	g.Edges(func(e *Edge) bool {
		k := superEdgeKey{superOf[e.From], superOf[e.To], e.Label}
		if edgeVals[k] == nil {
			edgeVals[k] = map[string][]float64{}
		}
		edgeCount[k]++
		for prop := range spec.EdgeAggs {
			if f, ok := e.Prop(prop).AsFloat(); ok {
				edgeVals[k][prop] = append(edgeVals[k][prop], f)
			}
		}
		return true
	})
	// Deterministic super-edge creation order.
	keys := make([]superEdgeKey, 0, len(edgeCount))
	for k := range edgeCount {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.label < b.label
	})
	for _, k := range keys {
		eid := sum.AddEdge(k.from, k.to, k.label)
		sum.SetEdgeProp(eid, "count", Int(int64(edgeCount[k])))
		for prop, agg := range spec.EdgeAggs {
			sum.SetEdgeProp(eid, agg.String()+"_"+prop, Float(agg.apply(edgeVals[k][prop])))
		}
	}
	return Grouping{Summary: sum, SuperOf: superOf, KeyOf: keyName}
}

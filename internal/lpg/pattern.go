package lpg

import "sort"

// Pattern is a small subgraph pattern: named vertex constraints connected by
// edge constraints. Matching is by subgraph homomorphism with an injectivity
// option (distinct pattern vertices must bind distinct graph vertices),
// which is what Cypher's MATCH semantics need for relationship uniqueness.
// This is the paper's Q1 graph primitive (subgraph matching, Table 2); the
// HyGraph core pairs it with time-series predicates for hybrid matching.
type Pattern struct {
	vertices []PatternVertex
	vIndex   map[string]int
	edges    []PatternEdge
	// InjectiveVertices requires distinct pattern vertices to bind distinct
	// graph vertices.
	InjectiveVertices bool
}

// PatternVertex constrains one pattern node.
type PatternVertex struct {
	Name  string
	Label string             // "" matches any label
	Where func(*Vertex) bool // nil matches all
}

// PatternEdge constrains one pattern edge between two named vertices.
type PatternEdge struct {
	From, To string
	Label    string           // "" matches any label
	Where    func(*Edge) bool // nil matches all
	// MinHops/MaxHops support variable-length paths; both zero means a
	// single edge (equivalent to Min=Max=1).
	MinHops, MaxHops int
	// AnyDir matches the edge (or every path step) in either direction,
	// implementing Cypher's undirected "-[]-" pattern.
	AnyDir bool
}

// NewPattern returns an empty pattern with injective vertex matching.
func NewPattern() *Pattern {
	return &Pattern{vIndex: map[string]int{}, InjectiveVertices: true}
}

// V adds a vertex constraint and returns the pattern for chaining. Adding a
// name twice panics: pattern construction bugs should fail fast.
func (p *Pattern) V(name, label string, where func(*Vertex) bool) *Pattern {
	if _, dup := p.vIndex[name]; dup {
		panic("lpg: duplicate pattern vertex " + name)
	}
	p.vIndex[name] = len(p.vertices)
	p.vertices = append(p.vertices, PatternVertex{name, label, where})
	return p
}

// E adds a single-hop edge constraint from -> to.
func (p *Pattern) E(from, to, label string, where func(*Edge) bool) *Pattern {
	p.edges = append(p.edges, PatternEdge{From: from, To: to, Label: label, Where: where, MinHops: 1, MaxHops: 1})
	return p
}

// EdgesMut exposes the pattern's edge constraints for post-construction
// adjustment (e.g. setting AnyDir); the slice aliases the pattern.
func (p *Pattern) EdgesMut() []PatternEdge { return p.edges }

// Path adds a variable-length edge constraint: a directed path of between
// minHops and maxHops edges, all carrying the label (if non-empty) and
// satisfying where.
func (p *Pattern) Path(from, to, label string, minHops, maxHops int, where func(*Edge) bool) *Pattern {
	p.edges = append(p.edges, PatternEdge{From: from, To: to, Label: label, Where: where, MinHops: minHops, MaxHops: maxHops})
	return p
}

// Match is one binding of pattern vertex names to graph vertices. Edge
// bindings hold, per pattern edge index, the edge path used.
type Match struct {
	Vertices map[string]VertexID
	Paths    [][]EdgeID
}

// MatchPattern enumerates all bindings of the pattern in the graph, in
// deterministic order. limit <= 0 means unlimited.
func (g *Graph) MatchPattern(p *Pattern, limit int) []Match {
	if len(p.vertices) == 0 {
		return nil
	}
	// Candidate lists per pattern vertex.
	cands := make([][]VertexID, len(p.vertices))
	for i, pv := range p.vertices {
		var ids []VertexID
		if pv.Label != "" {
			ids = g.VerticesByLabel(pv.Label)
		} else {
			ids = g.VertexIDs()
		}
		if pv.Where != nil {
			filtered := ids[:0:0]
			for _, id := range ids {
				if pv.Where(g.Vertex(id)) {
					filtered = append(filtered, id)
				}
			}
			ids = filtered
		}
		cands[i] = ids
	}
	// Order pattern vertices by selectivity (fewest candidates first), but
	// prefer vertices connected to already-placed ones to keep joins cheap.
	order := p.matchOrder(cands)

	binding := make([]VertexID, len(p.vertices))
	bound := make([]bool, len(p.vertices))
	used := map[VertexID]int{} // graph vertex -> count of pattern vertices bound to it
	var out []Match

	var rec func(step int) bool // returns false to stop (limit reached)
	rec = func(step int) bool {
		if step == len(order) {
			m, ok := g.checkEdges(p, binding)
			if !ok {
				return true
			}
			out = append(out, m)
			return limit <= 0 || len(out) < limit
		}
		pi := order[step]
		for _, id := range cands[pi] {
			if p.InjectiveVertices && used[id] > 0 {
				continue
			}
			// Prune: every pattern edge whose two endpoints are bound must be
			// satisfiable; single-hop edges are checked immediately.
			binding[pi] = id
			bound[pi] = true
			if !g.prunable(p, binding, bound) {
				used[id]++
				if !rec(step + 1) {
					used[id]--
					bound[pi] = false
					return false
				}
				used[id]--
			}
			bound[pi] = false
		}
		return true
	}
	rec(0)
	return out
}

// matchOrder returns the evaluation order of pattern vertex indexes.
func (p *Pattern) matchOrder(cands [][]VertexID) []int {
	n := len(p.vertices)
	placed := make([]bool, n)
	var order []int
	adj := make([][]int, n)
	for _, e := range p.edges {
		f, t := p.vIndex[e.From], p.vIndex[e.To]
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	for len(order) < n {
		best := -1
		bestScore := 1 << 60
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			score := len(cands[i])
			connected := len(order) == 0
			for _, nb := range adj[i] {
				if placed[nb] {
					connected = true
				}
			}
			if connected {
				score -= 1 << 30 // strongly prefer connected vertices
			}
			if score < bestScore {
				bestScore = score
				best = i
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

// prunable reports whether the partial binding already violates a
// single-hop pattern edge with both endpoints bound.
func (g *Graph) prunable(p *Pattern, binding []VertexID, bound []bool) bool {
	for _, pe := range p.edges {
		f, t := p.vIndex[pe.From], p.vIndex[pe.To]
		if !bound[f] || !bound[t] {
			continue
		}
		if pe.MinHops == 1 && pe.MaxHops == 1 {
			if g.findEdge(binding[f], binding[t], pe) == nil {
				return true
			}
		}
	}
	return false
}

func (g *Graph) findEdge(from, to VertexID, pe PatternEdge) *Edge {
	for _, e := range g.OutEdges(from) {
		if e.To != to {
			continue
		}
		if pe.Label != "" && e.Label != pe.Label {
			continue
		}
		if pe.Where != nil && !pe.Where(e) {
			continue
		}
		return e
	}
	if pe.AnyDir {
		for _, e := range g.OutEdges(to) {
			if e.To != from {
				continue
			}
			if pe.Label != "" && e.Label != pe.Label {
				continue
			}
			if pe.Where != nil && !pe.Where(e) {
				continue
			}
			return e
		}
	}
	return nil
}

// checkEdges validates all pattern edges under a complete binding and
// collects the edge paths used.
func (g *Graph) checkEdges(p *Pattern, binding []VertexID) (Match, bool) {
	m := Match{Vertices: map[string]VertexID{}, Paths: make([][]EdgeID, len(p.edges))}
	for name, i := range p.vIndex {
		m.Vertices[name] = binding[i]
	}
	for ei, pe := range p.edges {
		f, t := binding[p.vIndex[pe.From]], binding[p.vIndex[pe.To]]
		if pe.MinHops == 1 && pe.MaxHops == 1 {
			e := g.findEdge(f, t, pe)
			if e == nil {
				return Match{}, false
			}
			m.Paths[ei] = []EdgeID{e.ID}
			continue
		}
		path := g.findPath(f, t, pe)
		if path == nil {
			return Match{}, false
		}
		m.Paths[ei] = path
	}
	return m, true
}

// findPath searches for a directed path from f to t of length within
// [MinHops, MaxHops] whose edges all satisfy the constraint; shortest such
// path is returned. Vertices may repeat but edges may not (Cypher trail
// semantics).
func (g *Graph) findPath(f, t VertexID, pe PatternEdge) []EdgeID {
	minH, maxH := pe.MinHops, pe.MaxHops
	if minH <= 0 {
		minH = 1
	}
	if maxH < minH {
		maxH = minH
	}
	type state struct {
		at   VertexID
		path []EdgeID
	}
	// A zero-length path is allowed when MinHops == 0 and f == t.
	if pe.MinHops == 0 && f == t {
		return []EdgeID{}
	}
	frontier := []state{{f, nil}}
	for hops := 0; hops < maxH; hops++ {
		var next []state
		for _, st := range frontier {
			expand := func(e *Edge, dest VertexID) {
				if pe.Label != "" && e.Label != pe.Label {
					return
				}
				if pe.Where != nil && !pe.Where(e) {
					return
				}
				if containsEdge(st.path, e.ID) {
					return
				}
				np := append(append([]EdgeID(nil), st.path...), e.ID)
				next = append(next, state{dest, np})
			}
			for _, e := range g.OutEdges(st.at) {
				expand(e, e.To)
			}
			if pe.AnyDir {
				for _, e := range g.InEdges(st.at) {
					expand(e, e.From)
				}
			}
		}
		for _, st := range next {
			if st.at == t && len(st.path) >= minH {
				return st.path
			}
		}
		frontier = next
	}
	return nil
}

func containsEdge(path []EdgeID, id EdgeID) bool {
	for _, e := range path {
		if e == id {
			return true
		}
	}
	return false
}

// SortMatches orders matches deterministically by their vertex bindings.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		keys := make([]string, 0, len(a.Vertices))
		for k := range a.Vertices {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if a.Vertices[k] != b.Vertices[k] {
				return a.Vertices[k] < b.Vertices[k]
			}
		}
		return false
	})
}

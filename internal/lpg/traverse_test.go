package lpg

import (
	"math/rand"
	"testing"
)

// chain builds a -> b -> c -> ... of n vertices and returns the graph + ids.
func chain(n int) (*Graph, []VertexID) {
	g := NewGraph()
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = g.AddVertex("V")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ids[i], ids[i+1], "next")
	}
	return g, ids
}

func TestBFSDepths(t *testing.T) {
	g, ids := chain(5)
	depths := map[VertexID]int{}
	g.BFS(ids[0], Out, func(id VertexID, d int) bool {
		depths[id] = d
		return true
	})
	for i, id := range ids {
		if depths[id] != i {
			t.Fatalf("depth[%d]=%d", i, depths[id])
		}
	}
	// In-direction from the tail reaches everything.
	count := 0
	g.BFS(ids[4], In, func(VertexID, int) bool { count++; return true })
	if count != 5 {
		t.Fatalf("reverse BFS visited %d", count)
	}
	// Out-direction from tail reaches only itself.
	count = 0
	g.BFS(ids[4], Out, func(VertexID, int) bool { count++; return true })
	if count != 1 {
		t.Fatalf("forward BFS from tail visited %d", count)
	}
	// Missing start is a no-op.
	g.BFS(999, Out, func(VertexID, int) bool { t.Fatal("visited"); return true })
}

func TestDFSVisitsAll(t *testing.T) {
	g := NewGraph()
	root := g.AddVertex("R")
	l := g.AddVertex("L")
	r := g.AddVertex("R2")
	g.AddEdge(root, l, "e")
	g.AddEdge(root, r, "e")
	g.AddEdge(l, r, "e") // diamond
	var order []VertexID
	g.DFS(root, Out, func(id VertexID) bool { order = append(order, id); return true })
	if len(order) != 3 || order[0] != root {
		t.Fatalf("dfs order=%v", order)
	}
}

func TestReachable(t *testing.T) {
	g, ids := chain(6)
	if !g.Reachable(ids[0], ids[5], Out, -1) {
		t.Fatal("unbounded reach")
	}
	if g.Reachable(ids[0], ids[5], Out, 4) {
		t.Fatal("5 hops should not fit in 4")
	}
	if !g.Reachable(ids[0], ids[5], Out, 5) {
		t.Fatal("5 hops in 5")
	}
	if g.Reachable(ids[5], ids[0], Out, -1) {
		t.Fatal("directed reachability must respect direction")
	}
	if !g.Reachable(ids[5], ids[0], Both, -1) {
		t.Fatal("Both direction")
	}
	if !g.Reachable(ids[2], ids[2], Out, 0) {
		t.Fatal("self reach at 0 hops")
	}
}

func TestShortestPath(t *testing.T) {
	// Diamond with a long way around: a->b->d (2 hops) vs a->c1->c2->d.
	g := NewGraph()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c1 := g.AddVertex("C1")
	c2 := g.AddVertex("C2")
	d := g.AddVertex("D")
	g.AddEdge(a, c1, "e")
	g.AddEdge(c1, c2, "e")
	g.AddEdge(c2, d, "e")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, d, "e")
	p := g.ShortestPath(a, d, Out)
	if len(p) != 3 || p[0] != a || p[1] != b || p[2] != d {
		t.Fatalf("path=%v", p)
	}
	if got := g.ShortestPath(d, a, Out); got != nil {
		t.Fatalf("unreachable path=%v", got)
	}
	if got := g.ShortestPath(a, a, Out); len(got) != 1 {
		t.Fatalf("self path=%v", got)
	}
}

func TestWeightedShortestPath(t *testing.T) {
	// Two routes: short-hop expensive vs long-hop cheap.
	g := NewGraph()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c1 := g.AddVertex("C1")
	c2 := g.AddVertex("C2")
	d := g.AddVertex("D")
	e1 := g.AddEdge(a, b, "e")
	e2 := g.AddEdge(b, d, "e")
	e3 := g.AddEdge(a, c1, "e")
	e4 := g.AddEdge(c1, c2, "e")
	e5 := g.AddEdge(c2, d, "e")
	w := map[EdgeID]float64{e1: 10, e2: 10, e3: 1, e4: 1, e5: 1}
	path, total, ok := g.WeightedShortestPath(a, d, Out, func(e *Edge) float64 { return w[e.ID] })
	if !ok || total != 3 {
		t.Fatalf("total=%v ok=%v", total, ok)
	}
	if len(path) != 4 || path[1] != c1 {
		t.Fatalf("path=%v", path)
	}
	if _, _, ok := g.WeightedShortestPath(d, a, Out, func(*Edge) float64 { return 1 }); ok {
		t.Fatal("unreachable must be !ok")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph()
	a1, a2 := g.AddVertex("A"), g.AddVertex("A")
	b1, b2, b3 := g.AddVertex("B"), g.AddVertex("B"), g.AddVertex("B")
	g.AddEdge(a1, a2, "e")
	g.AddEdge(b1, b2, "e")
	g.AddEdge(b3, b2, "e")
	lone := g.AddVertex("L")
	comp := g.ConnectedComponents()
	if comp[a1] != comp[a2] {
		t.Fatal("a-component split")
	}
	if comp[b1] != comp[b2] || comp[b2] != comp[b3] {
		t.Fatal("b-component split")
	}
	if comp[a1] == comp[b1] || comp[a1] == comp[lone] || comp[b1] == comp[lone] {
		t.Fatal("components merged")
	}
	// Dense ids 0..2 ordered by smallest member.
	if comp[a1] != 0 || comp[b1] != 1 || comp[lone] != 2 {
		t.Fatalf("dense ids: %v", comp)
	}
}

func TestWithinHops(t *testing.T) {
	g, ids := chain(10)
	got := g.WithinHops(ids[0], Out, 3)
	if len(got) != 4 {
		t.Fatalf("within 3 hops: %v", got)
	}
}

// Property: ShortestPath length equals BFS depth of the target.
func TestQuickShortestPathMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 30; iter++ {
		g := NewGraph()
		n := 2 + rng.Intn(30)
		ids := make([]VertexID, n)
		for i := range ids {
			ids[i] = g.AddVertex("V")
		}
		for e := 0; e < n*2; e++ {
			g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], "e")
		}
		src := ids[rng.Intn(n)]
		dst := ids[rng.Intn(n)]
		depth := -1
		g.BFS(src, Out, func(id VertexID, d int) bool {
			if id == dst {
				depth = d
				return false
			}
			return true
		})
		p := g.ShortestPath(src, dst, Out)
		switch {
		case depth == -1 && p != nil:
			t.Fatalf("BFS says unreachable, path=%v", p)
		case depth >= 0 && len(p) != depth+1:
			t.Fatalf("path len %d vs BFS depth %d", len(p), depth)
		}
	}
}

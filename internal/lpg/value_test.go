package lpg

import (
	"testing"

	"hygraph/internal/ts"
)

func TestValueKindsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Bool(true), KindBool},
		{Int(42), KindInt},
		{Float(2.5), KindFloat},
		{Str("x"), KindString},
		{TimeVal(100), KindTime},
		{SeriesVal(ts.New("s")), KindSeries},
		{MultiVal(ts.MustNewMulti("m", "a")), KindMulti},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind=%v want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if v, ok := Int(7).AsInt(); !ok || v != 7 {
		t.Error("AsInt")
	}
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Error("AsFloat of int should widen")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("AsFloat of string")
	}
	if tt, ok := TimeVal(5).AsTime(); !ok || tt != 5 {
		t.Error("AsTime")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(1).Equal(Int(1)) || Int(1).Equal(Int(2)) {
		t.Fatal("int equality")
	}
	if Int(1).Equal(Float(1)) {
		t.Fatal("cross-kind equality must be false")
	}
	s1 := ts.FromSamples("s", 0, 1, []float64{1, 2})
	s2 := ts.FromSamples("s", 0, 1, []float64{1, 2})
	if !SeriesVal(s1).Equal(SeriesVal(s2)) {
		t.Fatal("series content equality")
	}
	if !Null.Equal(Value{}) {
		t.Fatal("null equality")
	}
}

func TestValueCompare(t *testing.T) {
	// Numeric ordering across int and float.
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Fatal("2 < 2.5")
	}
	if Float(3).Compare(Int(2)) != 1 {
		t.Fatal("3 > 2")
	}
	if Int(2).Compare(Int(2)) != 0 {
		t.Fatal("2 == 2")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Fatal("string order")
	}
	// Kind ordering: null < bool < numeric < string.
	if Null.Compare(Int(0)) != -1 || Str("a").Compare(Int(5)) != 1 {
		t.Fatal("kind order")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Fatal("bool order")
	}
	if TimeVal(1).Compare(TimeVal(2)) != -1 {
		t.Fatal("time order")
	}
}

func TestValueString(t *testing.T) {
	if Int(5).String() != "5" || Str("hi").String() != "hi" ||
		Bool(true).String() != "true" || Null.String() != "null" {
		t.Fatal("string renderings")
	}
	if Float(2.5).String() != "2.5" {
		t.Fatalf("float render %q", Float(2.5).String())
	}
}

func TestIndexKey(t *testing.T) {
	// Distinct values of the same kind must have distinct keys; equal values
	// must collide; series must be non-indexable.
	k1, ok1 := Int(1).indexKey()
	k2, ok2 := Int(2).indexKey()
	k1b, _ := Int(1).indexKey()
	if !ok1 || !ok2 || k1 == k2 || k1 != k1b {
		t.Fatal("int index keys")
	}
	// Int and string with the same rendering must not collide.
	ks, _ := Str("1").indexKey()
	if ks == k1 {
		t.Fatal("cross-kind index collision")
	}
	if _, ok := SeriesVal(ts.New("s")).indexKey(); ok {
		t.Fatal("series must not be indexable")
	}
}

package lpg

import (
	"testing"
)

// stationsGraph: 4 stations in 2 districts with capacity props and trip
// edges.
func stationsGraph() *Graph {
	g := NewGraph()
	n1 := g.AddVertex("Station")
	n2 := g.AddVertex("Station")
	s1 := g.AddVertex("Station")
	s2 := g.AddVertex("Station")
	for id, d := range map[VertexID]string{n1: "north", n2: "north", s1: "south", s2: "south"} {
		g.SetVertexProp(id, "district", Str(d))
	}
	for id, c := range map[VertexID]int64{n1: 10, n2: 20, s1: 30, s2: 40} {
		g.SetVertexProp(id, "capacity", Int(c))
	}
	// Trips: north->south x2 (amounts 5, 7), south->north x1 (amount 2),
	// north->north x1 (amount 1).
	e1 := g.AddEdge(n1, s1, "TRIP")
	e2 := g.AddEdge(n2, s2, "TRIP")
	e3 := g.AddEdge(s1, n1, "TRIP")
	e4 := g.AddEdge(n1, n2, "TRIP")
	g.SetEdgeProp(e1, "dist", Float(5))
	g.SetEdgeProp(e2, "dist", Float(7))
	g.SetEdgeProp(e3, "dist", Float(2))
	g.SetEdgeProp(e4, "dist", Float(1))
	return g
}

func TestGroupByProp(t *testing.T) {
	g := stationsGraph()
	gr := g.Group(GroupSpec{
		VertexKey:  GroupByProp("district"),
		VertexAggs: map[string]AggKind{"capacity": AggKindSum},
		EdgeAggs:   map[string]AggKind{"dist": AggKindMean},
	})
	sum := gr.Summary
	if sum.NumVertices() != 2 {
		t.Fatalf("super-vertices=%d", sum.NumVertices())
	}
	// Find the super-vertices by key.
	var north, south VertexID = -1, -1
	sum.Vertices(func(v *Vertex) bool {
		switch v.Prop("key").String() {
		case "north":
			north = v.ID
		case "south":
			south = v.ID
		}
		return true
	})
	if north < 0 || south < 0 {
		t.Fatal("missing super-vertices")
	}
	if c, _ := sum.Vertex(north).Prop("count").AsInt(); c != 2 {
		t.Fatalf("north count=%d", c)
	}
	if f, _ := sum.Vertex(north).Prop("sum_capacity").AsFloat(); f != 30 {
		t.Fatalf("north capacity sum=%v", f)
	}
	if f, _ := sum.Vertex(south).Prop("sum_capacity").AsFloat(); f != 70 {
		t.Fatalf("south capacity sum=%v", f)
	}
	// Super-edges: north->south (2 trips, mean dist 6), south->north (1),
	// north->north (1).
	if sum.NumEdges() != 3 {
		t.Fatalf("super-edges=%d", sum.NumEdges())
	}
	var ns *Edge
	sum.Edges(func(e *Edge) bool {
		if e.From == north && e.To == south {
			ns = e
		}
		return true
	})
	if ns == nil {
		t.Fatal("no north->south super-edge")
	}
	if c, _ := ns.Prop("count").AsInt(); c != 2 {
		t.Fatalf("ns count=%d", c)
	}
	if f, _ := ns.Prop("mean_dist").AsFloat(); f != 6 {
		t.Fatalf("ns mean dist=%v", f)
	}
	// SuperOf covers every original vertex.
	if len(gr.SuperOf) != 4 {
		t.Fatalf("superOf=%v", gr.SuperOf)
	}
}

func TestGroupByLabelsDefault(t *testing.T) {
	g := NewGraph()
	g.AddVertex("A")
	g.AddVertex("A")
	g.AddVertex("B")
	g.AddVertex("A", "B") // distinct combined key
	gr := g.Group(GroupSpec{})
	if gr.Summary.NumVertices() != 3 {
		t.Fatalf("label groups=%d", gr.Summary.NumVertices())
	}
}

// Property-style check: grouping conserves vertex and edge mass.
func TestGroupConservesMass(t *testing.T) {
	g := stationsGraph()
	gr := g.Group(GroupSpec{VertexKey: GroupByProp("district")})
	var vertexMass, edgeMass int64
	gr.Summary.Vertices(func(v *Vertex) bool {
		c, _ := v.Prop("count").AsInt()
		vertexMass += c
		return true
	})
	gr.Summary.Edges(func(e *Edge) bool {
		c, _ := e.Prop("count").AsInt()
		edgeMass += c
		return true
	})
	if vertexMass != int64(g.NumVertices()) {
		t.Fatalf("vertex mass %d != %d", vertexMass, g.NumVertices())
	}
	if edgeMass != int64(g.NumEdges()) {
		t.Fatalf("edge mass %d != %d", edgeMass, g.NumEdges())
	}
}

func TestAggKinds(t *testing.T) {
	vals := []float64{4, 2, 6}
	cases := map[AggKind]float64{
		AggKindSum: 12, AggKindMean: 4, AggKindMin: 2, AggKindMax: 6, AggKindCount: 3,
	}
	for k, want := range cases {
		if got := k.apply(vals); got != want {
			t.Errorf("%v=%v want %v", k, got, want)
		}
	}
	if got := AggKindSum.apply(nil); got != 0 {
		t.Errorf("sum(nil)=%v", got)
	}
	if got := AggKindCount.apply(nil); got != 0 {
		t.Errorf("count(nil)=%v", got)
	}
}

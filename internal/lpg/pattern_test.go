package lpg

import (
	"testing"
)

// fraudToy builds the Figure-2-like toy graph: users -USES-> cards -TX->
// merchants.
func fraudToy() (*Graph, map[string]VertexID) {
	g := NewGraph()
	ids := map[string]VertexID{}
	add := func(name, label string) VertexID {
		id := g.AddVertex(label)
		g.SetVertexProp(id, "name", Str(name))
		ids[name] = id
		return id
	}
	u1 := add("u1", "User")
	u2 := add("u2", "User")
	c1 := add("c1", "CreditCard")
	c2 := add("c2", "CreditCard")
	m1 := add("m1", "Merchant")
	m2 := add("m2", "Merchant")
	m3 := add("m3", "Merchant")
	g.AddEdge(u1, c1, "USES")
	g.AddEdge(u2, c2, "USES")
	for _, m := range []VertexID{m1, m2, m3} {
		e := g.AddEdge(c1, m, "TX")
		g.SetEdgeProp(e, "amount", Float(2000))
	}
	e := g.AddEdge(c2, m1, "TX")
	g.SetEdgeProp(e, "amount", Float(50))
	return g, ids
}

func TestMatchSimpleTriple(t *testing.T) {
	g, ids := fraudToy()
	p := NewPattern().
		V("u", "User", nil).
		V("c", "CreditCard", nil).
		V("m", "Merchant", nil).
		E("u", "c", "USES", nil).
		E("c", "m", "TX", nil)
	ms := g.MatchPattern(p, 0)
	if len(ms) != 4 { // u1 has 3 TX, u2 has 1
		t.Fatalf("matches=%d", len(ms))
	}
	for _, m := range ms {
		if len(m.Paths) != 2 || len(m.Paths[0]) != 1 || len(m.Paths[1]) != 1 {
			t.Fatalf("paths=%v", m.Paths)
		}
	}
	_ = ids
}

func TestMatchWithPredicates(t *testing.T) {
	g, ids := fraudToy()
	p := NewPattern().
		V("u", "User", nil).
		V("c", "CreditCard", nil).
		V("m", "Merchant", nil).
		E("u", "c", "USES", nil).
		E("c", "m", "TX", func(e *Edge) bool {
			f, _ := e.Prop("amount").AsFloat()
			return f > 1000
		})
	ms := g.MatchPattern(p, 0)
	if len(ms) != 3 {
		t.Fatalf("high-amount matches=%d", len(ms))
	}
	for _, m := range ms {
		if m.Vertices["u"] != ids["u1"] {
			t.Fatalf("wrong user: %v", m.Vertices)
		}
	}
}

func TestMatchVertexPredicate(t *testing.T) {
	g, ids := fraudToy()
	p := NewPattern().
		V("u", "User", func(v *Vertex) bool { return v.Prop("name").String() == "u2" }).
		V("c", "CreditCard", nil).
		E("u", "c", "USES", nil)
	ms := g.MatchPattern(p, 0)
	if len(ms) != 1 || ms[0].Vertices["c"] != ids["c2"] {
		t.Fatalf("ms=%v", ms)
	}
}

func TestMatchLimit(t *testing.T) {
	g, _ := fraudToy()
	p := NewPattern().
		V("c", "CreditCard", nil).
		V("m", "Merchant", nil).
		E("c", "m", "TX", nil)
	ms := g.MatchPattern(p, 2)
	if len(ms) != 2 {
		t.Fatalf("limit ignored: %d", len(ms))
	}
}

func TestMatchInjectivity(t *testing.T) {
	// Path a->b with pattern (x)->(y): injective forbids x=y binding even
	// with a self-loop present.
	g := NewGraph()
	a := g.AddVertex("V")
	g.AddEdge(a, a, "e") // self loop
	b := g.AddVertex("V")
	g.AddEdge(a, b, "e")
	p := NewPattern().V("x", "V", nil).V("y", "V", nil).E("x", "y", "e", nil)
	ms := g.MatchPattern(p, 0)
	if len(ms) != 1 {
		t.Fatalf("injective matches=%d", len(ms))
	}
	p2 := NewPattern().V("x", "V", nil).V("y", "V", nil).E("x", "y", "e", nil)
	p2.InjectiveVertices = false
	ms2 := g.MatchPattern(p2, 0)
	if len(ms2) != 2 { // self-loop now allowed
		t.Fatalf("homomorphic matches=%d", len(ms2))
	}
}

func TestMatchVariableLengthPath(t *testing.T) {
	g, ids := chain(6)
	p := NewPattern().
		V("a", "", func(v *Vertex) bool { return v.ID == ids[0] }).
		V("b", "", func(v *Vertex) bool { return v.ID == ids[4] }).
		Path("a", "b", "next", 1, 6, nil)
	ms := g.MatchPattern(p, 0)
	if len(ms) != 1 {
		t.Fatalf("varlen matches=%d", len(ms))
	}
	if len(ms[0].Paths[0]) != 4 {
		t.Fatalf("path len=%d want 4", len(ms[0].Paths[0]))
	}
	// Too-short bound: no match.
	p2 := NewPattern().
		V("a", "", func(v *Vertex) bool { return v.ID == ids[0] }).
		V("b", "", func(v *Vertex) bool { return v.ID == ids[4] }).
		Path("a", "b", "next", 1, 3, nil)
	if ms := g.MatchPattern(p2, 0); len(ms) != 0 {
		t.Fatalf("bounded varlen matched: %v", ms)
	}
}

func TestMatchTriangleStructure(t *testing.T) {
	// One triangle + one open wedge; triangle pattern must match the
	// triangle only (6 rotations/orientations... here directed, so exactly
	// the one orientation present).
	g := NewGraph()
	a, b, c := g.AddVertex("V"), g.AddVertex("V"), g.AddVertex("V")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(c, a, "e")
	d, e2 := g.AddVertex("V"), g.AddVertex("V")
	g.AddEdge(d, e2, "e")
	p := NewPattern().
		V("x", "V", nil).V("y", "V", nil).V("z", "V", nil).
		E("x", "y", "e", nil).E("y", "z", "e", nil).E("z", "x", "e", nil)
	ms := g.MatchPattern(p, 0)
	if len(ms) != 3 { // 3 rotations of the directed triangle
		t.Fatalf("triangle matches=%d", len(ms))
	}
}

func TestMatchEmptyPattern(t *testing.T) {
	g, _ := fraudToy()
	if ms := g.MatchPattern(NewPattern(), 0); ms != nil {
		t.Fatalf("empty pattern matched: %v", ms)
	}
}

func TestMatchNoCandidates(t *testing.T) {
	g, _ := fraudToy()
	p := NewPattern().V("x", "Nonexistent", nil)
	if ms := g.MatchPattern(p, 0); len(ms) != 0 {
		t.Fatalf("matched nonexistent label: %v", ms)
	}
}

func TestListing1StyleQuery(t *testing.T) {
	// The paper's Listing 1: users with TXs > 1000 to at least 3 merchants
	// within an hour and 1km — structural part here: user -USES-> card with
	// >=3 high-amount TX edges to distinct merchants.
	g, ids := fraudToy()
	p := NewPattern().
		V("u", "User", nil).
		V("c", "CreditCard", nil).
		V("m1", "Merchant", nil).
		V("m2", "Merchant", nil).
		V("m3", "Merchant", nil).
		E("u", "c", "USES", nil).
		E("c", "m1", "TX", highAmount).
		E("c", "m2", "TX", highAmount).
		E("c", "m3", "TX", highAmount)
	ms := g.MatchPattern(p, 0)
	// 3! orderings of the three merchants for u1; u2 has no high TX.
	if len(ms) != 6 {
		t.Fatalf("listing1 matches=%d", len(ms))
	}
	for _, m := range ms {
		if m.Vertices["u"] != ids["u1"] {
			t.Fatalf("flagged wrong user")
		}
	}
}

func highAmount(e *Edge) bool {
	f, _ := e.Prop("amount").AsFloat()
	return f > 1000
}

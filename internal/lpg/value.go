// Package lpg implements the labeled-property-graph substrate: vertices and
// edges carrying labels and typed properties, adjacency and label/property
// indexes, traversals, graph metrics, community detection and graph
// summarization (grouping).
//
// Property values follow the paper's split N = N_Σ ∪ N_TS: a property is
// either a static scalar or a whole time series. The latter is what the
// "time series as properties" integration stores (Figure 3, arrow 8); the
// HyGraph core additionally models series as first-class vertices/edges.
package lpg

import (
	"fmt"
	"strconv"

	"hygraph/internal/ts"
)

// Kind enumerates the property value types.
type Kind int

// Supported value kinds. KindSeries and KindMulti are the N_TS values of the
// paper; the rest are the static N_Σ values.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
	KindSeries
	KindMulti
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindSeries:
		return "series"
	case KindMulti:
		return "multiseries"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a typed property value. The zero Value is null.
type Value struct {
	kind  Kind
	i     int64 // int and time payload
	f     float64
	s     string
	b     bool
	ser   *ts.Series
	multi *ts.MultiSeries
}

// Null is the null value.
var Null = Value{}

// Bool wraps a bool.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int wraps an int64.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str wraps a string.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// TimeVal wraps a timestamp.
func TimeVal(t ts.Time) Value { return Value{kind: KindTime, i: int64(t)} }

// SeriesVal wraps a univariate time series (a N_TS property value).
func SeriesVal(s *ts.Series) Value { return Value{kind: KindSeries, ser: s} }

// MultiVal wraps a multivariate time series.
func MultiVal(m *ts.MultiSeries) Value { return Value{kind: KindMulti, multi: m} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsSeries reports whether the value is a (multi)series — an N_TS value.
func (v Value) IsSeries() bool { return v.kind == KindSeries || v.kind == KindMulti }

// AsBool returns the bool payload.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// AsInt returns the int payload.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns a float view of numeric payloads (int or float).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsString returns the string payload.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsTime returns the time payload.
func (v Value) AsTime() (ts.Time, bool) { return ts.Time(v.i), v.kind == KindTime }

// AsSeries returns the series payload.
func (v Value) AsSeries() (*ts.Series, bool) { return v.ser, v.kind == KindSeries }

// AsMulti returns the multiseries payload.
func (v Value) AsMulti() (*ts.MultiSeries, bool) { return v.multi, v.kind == KindMulti }

// Equal reports deep equality. Series values compare by content.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt, KindTime:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindSeries:
		return v.ser.Equal(o.ser)
	case KindMulti:
		return v.multi.Equal(o.multi)
	}
	return false
}

// Compare orders two values: null < bool < int/float (numeric order) <
// string < time < series (by length). Values of incomparable kinds order by
// kind. Returns -1, 0 or 1.
func (v Value) Compare(o Value) int {
	ka, kb := v.orderClass(), o.orderClass()
	if ka != kb {
		return cmpInt(ka, kb)
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return cmpBool(v.b, o.b)
	case KindString:
		return cmpString(v.s, o.s)
	case KindTime:
		return cmpInt64(v.i, o.i)
	case KindSeries:
		return cmpInt(v.ser.Len(), o.ser.Len())
	case KindMulti:
		return cmpInt(v.multi.Len(), o.multi.Len())
	default: // numeric
		fa, _ := v.AsFloat()
		fb, _ := o.AsFloat()
		return cmpFloat(fa, fb)
	}
}

// orderClass folds int and float into one comparable class.
func (v Value) orderClass() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindTime:
		return 4
	case KindSeries:
		return 5
	default:
		return 6
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	}
	return 0
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// String renders the value for debugging and query output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return ts.Time(v.i).String()
	case KindSeries:
		return v.ser.String()
	case KindMulti:
		return v.multi.String()
	}
	return "?"
}

// indexKey returns a string key usable in hash-based property indexes.
// Series values are not indexable and return "", false.
func (v Value) indexKey() (string, bool) {
	switch v.kind {
	case KindNull:
		return "∅", true
	case KindBool:
		return "b:" + strconv.FormatBool(v.b), true
	case KindInt:
		return "i:" + strconv.FormatInt(v.i, 10), true
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64), true
	case KindString:
		return "s:" + v.s, true
	case KindTime:
		return "t:" + strconv.FormatInt(v.i, 10), true
	}
	return "", false
}

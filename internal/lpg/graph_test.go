package lpg

import (
	"testing"
	"testing/quick"

	"hygraph/internal/ts"
)

func TestAddAndLookup(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("User")
	b := g.AddVertex("Merchant", "Shop")
	e := g.AddEdge(a, b, "TX")
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts %d/%d", g.NumVertices(), g.NumEdges())
	}
	if v := g.Vertex(a); v == nil || !v.HasLabel("User") {
		t.Fatal("vertex a lookup")
	}
	if v := g.Vertex(b); !v.HasLabel("Shop") || v.HasLabel("User") {
		t.Fatal("multi-label lookup")
	}
	if ed := g.Edge(e); ed == nil || ed.From != a || ed.To != b || ed.Label != "TX" {
		t.Fatal("edge lookup")
	}
	if g.Vertex(99) != nil || g.Edge(99) != nil || g.Vertex(-1) != nil {
		t.Fatal("out-of-range lookups must be nil")
	}
}

func TestProperties(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("User")
	g.SetVertexProp(a, "name", Str("alice"))
	g.SetVertexProp(a, "age", Int(30))
	if got := g.Vertex(a).Prop("name"); !got.Equal(Str("alice")) {
		t.Fatalf("name=%v", got)
	}
	if got := g.Vertex(a).Prop("missing"); !got.IsNull() {
		t.Fatalf("missing=%v", got)
	}
	keys := g.Vertex(a).PropKeys()
	if len(keys) != 2 || keys[0] != "age" || keys[1] != "name" {
		t.Fatalf("keys=%v", keys)
	}
	e := g.AddEdge(a, g.AddVertex("M"), "TX")
	g.SetEdgeProp(e, "amount", Float(99.5))
	if f, ok := g.Edge(e).Prop("amount").AsFloat(); !ok || f != 99.5 {
		t.Fatal("edge prop")
	}
}

func TestSeriesProperty(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("Station")
	s := ts.FromSamples("avail", 0, 10, []float64{5, 6, 7})
	g.SetVertexProp(a, "availability", SeriesVal(s))
	got, ok := g.Vertex(a).Prop("availability").AsSeries()
	if !ok || got.Len() != 3 {
		t.Fatal("series property round trip")
	}
	if !g.Vertex(a).Prop("availability").IsSeries() {
		t.Fatal("IsSeries")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewGraph()
	a, b := g.AddVertex("A"), g.AddVertex("B")
	e := g.AddEdge(a, b, "r")
	if !g.RemoveEdge(e) {
		t.Fatal("remove existing")
	}
	if g.RemoveEdge(e) {
		t.Fatal("double remove")
	}
	if g.NumEdges() != 0 || g.OutDegree(a) != 0 || g.InDegree(b) != 0 {
		t.Fatal("edge removal did not clean adjacency")
	}
}

func TestRemoveVertexCascades(t *testing.T) {
	g := NewGraph()
	a, b, c := g.AddVertex("A"), g.AddVertex("B"), g.AddVertex("C")
	g.AddEdge(a, b, "r")
	g.AddEdge(b, c, "r")
	g.AddEdge(c, a, "r")
	if !g.RemoveVertex(b) {
		t.Fatal("remove")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("after cascade: %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Vertex(b) != nil {
		t.Fatal("removed vertex still visible")
	}
	// Label index must skip the dead vertex.
	if ids := g.VerticesByLabel("B"); len(ids) != 0 {
		t.Fatalf("label index leaked: %v", ids)
	}
	// Remaining edge is c->a.
	es := g.OutEdges(c)
	if len(es) != 1 || es[0].To != a {
		t.Fatalf("remaining edges wrong: %v", es)
	}
}

func TestNeighborsAndDegrees(t *testing.T) {
	g := NewGraph()
	a, b, c := g.AddVertex("A"), g.AddVertex("B"), g.AddVertex("C")
	g.AddEdge(a, b, "r")
	g.AddEdge(c, a, "r")
	g.AddEdge(a, b, "r2") // parallel edge
	if g.OutDegree(a) != 2 || g.InDegree(a) != 1 || g.Degree(a) != 3 {
		t.Fatalf("degrees: %d/%d", g.OutDegree(a), g.InDegree(a))
	}
	nbrs := g.Neighbors(a)
	if len(nbrs) != 2 || nbrs[0] != b || nbrs[1] != c {
		t.Fatalf("neighbors=%v", nbrs)
	}
}

func TestLabelIndex(t *testing.T) {
	g := NewGraph()
	var users []VertexID
	for i := 0; i < 5; i++ {
		users = append(users, g.AddVertex("User"))
		g.AddVertex("Merchant")
	}
	got := g.VerticesByLabel("User")
	if len(got) != 5 {
		t.Fatalf("by label: %v", got)
	}
	for i := range got {
		if got[i] != users[i] {
			t.Fatalf("order: %v vs %v", got, users)
		}
	}
	if got := g.VerticesByLabel("Nope"); len(got) != 0 {
		t.Fatal("unknown label")
	}
}

func TestPropIndex(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		id := g.AddVertex("V")
		g.SetVertexProp(id, "district", Str([]string{"north", "south"}[i%2]))
	}
	g.CreateVertexPropIndex("district")
	north := g.VerticesByProp("district", Str("north"))
	if len(north) != 5 {
		t.Fatalf("indexed lookup: %v", north)
	}
	// Index maintenance on update.
	g.SetVertexProp(north[0], "district", Str("south"))
	if got := g.VerticesByProp("district", Str("north")); len(got) != 4 {
		t.Fatalf("after update: %v", got)
	}
	if got := g.VerticesByProp("district", Str("south")); len(got) != 6 {
		t.Fatalf("after update south: %v", got)
	}
	// Unindexed falls back to scan.
	g.SetVertexProp(north[0], "zone", Int(1))
	if got := g.VerticesByProp("zone", Int(1)); len(got) != 1 {
		t.Fatalf("scan fallback: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGraph()
	a, b := g.AddVertex("A"), g.AddVertex("B")
	g.AddEdge(a, b, "r")
	g.SetVertexProp(a, "x", Int(1))
	c := g.Clone()
	c.SetVertexProp(a, "x", Int(2))
	c.AddVertex("C")
	c.RemoveEdge(0)
	if v, _ := g.Vertex(a).Prop("x").AsInt(); v != 1 {
		t.Fatal("clone mutated original prop")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("clone mutated original structure")
	}
	if c.NumVertices() != 3 || c.NumEdges() != 0 {
		t.Fatal("clone state wrong")
	}
}

func TestIterationStops(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.AddVertex("V")
	}
	count := 0
	g.Vertices(func(v *Vertex) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

// Property: after any interleaving of adds/removes, adjacency is consistent:
// every live edge appears in its endpoints' out/in lists exactly once and
// points at live vertices.
func TestQuickAdjacencyConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		g := NewGraph()
		var vs []VertexID
		var es []EdgeID
		for _, op := range ops {
			switch op % 4 {
			case 0:
				vs = append(vs, g.AddVertex("V"))
			case 1:
				if len(vs) >= 2 {
					from := vs[int(op)%len(vs)]
					to := vs[int(op/2)%len(vs)]
					if g.Vertex(from) != nil && g.Vertex(to) != nil {
						es = append(es, g.AddEdge(from, to, "r"))
					}
				}
			case 2:
				if len(es) > 0 {
					g.RemoveEdge(es[int(op)%len(es)])
				}
			case 3:
				if len(vs) > 0 {
					g.RemoveVertex(vs[int(op)%len(vs)])
				}
			}
		}
		ok := true
		g.Edges(func(e *Edge) bool {
			if g.Vertex(e.From) == nil || g.Vertex(e.To) == nil {
				ok = false
				return false
			}
			found := 0
			for _, oe := range g.OutEdges(e.From) {
				if oe.ID == e.ID {
					found++
				}
			}
			for _, ie := range g.InEdges(e.To) {
				if ie.ID == e.ID {
					found++
				}
			}
			if found != 2 {
				ok = false
				return false
			}
			return true
		})
		// Count consistency.
		if len(g.VertexIDs()) != g.NumVertices() || len(g.EdgeIDs()) != g.NumEdges() {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

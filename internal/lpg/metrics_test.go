package lpg

import (
	"math"
	"testing"
)

func TestDegreeDistribution(t *testing.T) {
	g, _ := chain(4) // degrees: 1,2,2,1
	st := g.DegreeDistribution()
	if st.Min != 1 || st.Max != 2 || st.Mean != 1.5 {
		t.Fatalf("stats=%+v", st)
	}
	empty := NewGraph()
	st = empty.DegreeDistribution()
	if st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("empty stats=%+v", st)
	}
}

func TestPageRankSums(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(c, a, "e")
	pr := g.PageRank(0.85, 100, 1e-12)
	var total float64
	for _, v := range pr {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", total)
	}
	// Symmetric ring → equal ranks.
	if math.Abs(pr[a]-pr[b]) > 1e-9 || math.Abs(pr[b]-pr[c]) > 1e-9 {
		t.Fatalf("ring ranks unequal: %v", pr)
	}
}

func TestPageRankHub(t *testing.T) {
	// Star pointing into the hub: hub gets the highest rank. Spokes have no
	// out-edges (dangling) so dangling mass handling is exercised too.
	g := NewGraph()
	hub := g.AddVertex("H")
	for i := 0; i < 5; i++ {
		s := g.AddVertex("S")
		g.AddEdge(s, hub, "e")
	}
	pr := g.PageRank(0.85, 100, 1e-12)
	for id, r := range pr {
		if id != hub && r >= pr[hub] {
			t.Fatalf("spoke %d rank %v >= hub %v", id, r, pr[hub])
		}
	}
	var total float64
	for _, v := range pr {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("with dangling, ranks sum to %v", total)
	}
}

func TestTriangles(t *testing.T) {
	g := NewGraph()
	a, b, c, d := g.AddVertex("A"), g.AddVertex("B"), g.AddVertex("C"), g.AddVertex("D")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	g.AddEdge(c, a, "e")
	g.AddEdge(c, d, "e")
	per, total := g.Triangles()
	if total != 1 {
		t.Fatalf("total=%d", total)
	}
	if per[a] != 1 || per[b] != 1 || per[c] != 1 || per[d] != 0 {
		t.Fatalf("per-vertex=%v", per)
	}
	// Direction must not matter; add the reverse edges, still 1 triangle.
	g.AddEdge(b, a, "e")
	_, total = g.Triangles()
	if total != 1 {
		t.Fatalf("with reverse edge total=%d", total)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := NewGraph()
	center := g.AddVertex("C")
	n1, n2, n3 := g.AddVertex("N"), g.AddVertex("N"), g.AddVertex("N")
	g.AddEdge(center, n1, "e")
	g.AddEdge(center, n2, "e")
	g.AddEdge(center, n3, "e")
	if cc := g.ClusteringCoefficient(center); cc != 0 {
		t.Fatalf("open star cc=%v", cc)
	}
	g.AddEdge(n1, n2, "e")
	g.AddEdge(n2, n3, "e")
	g.AddEdge(n3, n1, "e")
	if cc := g.ClusteringCoefficient(center); math.Abs(cc-1) > 1e-9 {
		t.Fatalf("closed triad cc=%v", cc)
	}
	if cc := g.ClusteringCoefficient(n1); cc <= 0 {
		t.Fatalf("n1 cc=%v", cc)
	}
	lone := g.AddVertex("L")
	if cc := g.ClusteringCoefficient(lone); cc != 0 {
		t.Fatalf("lone cc=%v", cc)
	}
}

func TestTopKByDegree(t *testing.T) {
	g := NewGraph()
	hub := g.AddVertex("H")
	mid := g.AddVertex("M")
	for i := 0; i < 4; i++ {
		s := g.AddVertex("S")
		g.AddEdge(hub, s, "e")
	}
	g.AddEdge(mid, hub, "e")
	g.AddEdge(mid, g.AddVertex("S"), "e")
	top := g.TopKByDegree(2)
	if len(top) != 2 || top[0] != hub || top[1] != mid {
		t.Fatalf("top=%v", top)
	}
	if got := g.TopKByDegree(100); len(got) != g.NumVertices() {
		t.Fatalf("k>n returned %d", len(got))
	}
}

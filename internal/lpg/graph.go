package lpg

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex within one Graph. IDs are dense, assigned in
// insertion order, and never reused.
type VertexID int64

// EdgeID identifies an edge within one Graph.
type EdgeID int64

// Vertex is a labeled property graph vertex.
type Vertex struct {
	ID     VertexID
	Labels []string
	props  map[string]Value
	out    []EdgeID
	in     []EdgeID
	dead   bool
}

// Edge is a directed labeled property graph edge.
type Edge struct {
	ID    EdgeID
	Label string
	From  VertexID
	To    VertexID
	props map[string]Value
	dead  bool
}

// Graph is a directed labeled property graph. The zero value is not usable;
// call NewGraph. Graph is not safe for concurrent mutation.
type Graph struct {
	vertices []*Vertex
	edges    []*Edge
	nLive    int // live vertex count
	eLive    int // live edge count

	labelIndex map[string][]VertexID            // vertex label -> ids (insertion order, may contain dead)
	propIndex  map[string]map[string][]VertexID // indexed property key -> value key -> ids
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		labelIndex: make(map[string][]VertexID),
		propIndex:  make(map[string]map[string][]VertexID),
	}
}

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return g.nLive }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return g.eLive }

// AddVertex creates a vertex with the given labels and returns its ID.
func (g *Graph) AddVertex(labels ...string) VertexID {
	id := VertexID(len(g.vertices))
	v := &Vertex{ID: id, Labels: append([]string(nil), labels...), props: map[string]Value{}}
	g.vertices = append(g.vertices, v)
	g.nLive++
	for _, l := range labels {
		g.labelIndex[l] = append(g.labelIndex[l], id)
	}
	return id
}

// AddEdge creates a directed edge from -> to and returns its ID. It panics
// if either endpoint does not exist; graph construction bugs should fail
// loudly and early.
func (g *Graph) AddEdge(from, to VertexID, label string) EdgeID {
	vf := g.mustVertex(from)
	vt := g.mustVertex(to)
	id := EdgeID(len(g.edges))
	e := &Edge{ID: id, Label: label, From: from, To: to, props: map[string]Value{}}
	g.edges = append(g.edges, e)
	g.eLive++
	vf.out = append(vf.out, id)
	vt.in = append(vt.in, id)
	return id
}

// Vertex returns the vertex with the given ID, or nil if it does not exist
// or was removed.
func (g *Graph) Vertex(id VertexID) *Vertex {
	if id < 0 || int(id) >= len(g.vertices) {
		return nil
	}
	if v := g.vertices[id]; !v.dead {
		return v
	}
	return nil
}

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id EdgeID) *Edge {
	if id < 0 || int(id) >= len(g.edges) {
		return nil
	}
	if e := g.edges[id]; !e.dead {
		return e
	}
	return nil
}

func (g *Graph) mustVertex(id VertexID) *Vertex {
	v := g.Vertex(id)
	if v == nil {
		panic(fmt.Sprintf("lpg: no vertex %d", id))
	}
	return v
}

// RemoveEdge deletes an edge, reporting whether it existed.
func (g *Graph) RemoveEdge(id EdgeID) bool {
	e := g.Edge(id)
	if e == nil {
		return false
	}
	e.dead = true
	g.eLive--
	if v := g.Vertex(e.From); v != nil {
		v.out = removeID(v.out, id)
	}
	if v := g.Vertex(e.To); v != nil {
		v.in = removeID(v.in, id)
	}
	return true
}

// RemoveVertex deletes a vertex and all incident edges, reporting whether it
// existed.
func (g *Graph) RemoveVertex(id VertexID) bool {
	v := g.Vertex(id)
	if v == nil {
		return false
	}
	for _, eid := range append(append([]EdgeID(nil), v.out...), v.in...) {
		g.RemoveEdge(eid)
	}
	v.dead = true
	g.nLive--
	return true
}

func removeID(ids []EdgeID, id EdgeID) []EdgeID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Vertices calls fn for every live vertex in ID order; fn returning false
// stops the iteration.
func (g *Graph) Vertices(fn func(*Vertex) bool) {
	for _, v := range g.vertices {
		if !v.dead && !fn(v) {
			return
		}
	}
}

// Edges calls fn for every live edge in ID order; fn returning false stops.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for _, e := range g.edges {
		if !e.dead && !fn(e) {
			return
		}
	}
}

// VertexIDs returns all live vertex IDs in ID order.
func (g *Graph) VertexIDs() []VertexID {
	out := make([]VertexID, 0, g.nLive)
	g.Vertices(func(v *Vertex) bool { out = append(out, v.ID); return true })
	return out
}

// EdgeIDs returns all live edge IDs in ID order.
func (g *Graph) EdgeIDs() []EdgeID {
	out := make([]EdgeID, 0, g.eLive)
	g.Edges(func(e *Edge) bool { out = append(out, e.ID); return true })
	return out
}

// VerticesByLabel returns live vertex IDs carrying the label, in ID order.
func (g *Graph) VerticesByLabel(label string) []VertexID {
	var out []VertexID
	for _, id := range g.labelIndex[label] {
		if g.Vertex(id) != nil {
			out = append(out, id)
		}
	}
	return out
}

// HasLabel reports whether the vertex carries the label.
func (v *Vertex) HasLabel(label string) bool {
	for _, l := range v.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Prop returns a vertex property value (Null if absent).
func (v *Vertex) Prop(key string) Value { return v.props[key] }

// PropKeys returns the vertex's property keys in sorted order.
func (v *Vertex) PropKeys() []string { return sortedKeys(v.props) }

// Prop returns an edge property value (Null if absent).
func (e *Edge) Prop(key string) Value { return e.props[key] }

// PropKeys returns the edge's property keys in sorted order.
func (e *Edge) PropKeys() []string { return sortedKeys(e.props) }

func sortedKeys(m map[string]Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SetVertexProp sets a property on a vertex, maintaining any index on key.
func (g *Graph) SetVertexProp(id VertexID, key string, val Value) {
	v := g.mustVertex(id)
	if idx, ok := g.propIndex[key]; ok {
		if old, had := v.props[key]; had {
			if ik, can := old.indexKey(); can {
				idx[ik] = removeVID(idx[ik], id)
			}
		}
		if ik, can := val.indexKey(); can {
			idx[ik] = append(idx[ik], id)
		}
	}
	v.props[key] = val
}

// SetEdgeProp sets a property on an edge.
func (g *Graph) SetEdgeProp(id EdgeID, key string, val Value) {
	e := g.Edge(id)
	if e == nil {
		panic(fmt.Sprintf("lpg: no edge %d", id))
	}
	e.props[key] = val
}

// CreateVertexPropIndex builds (or rebuilds) a hash index over the given
// vertex property key. Series-valued properties are not indexable and are
// skipped. Subsequent SetVertexProp calls maintain the index.
func (g *Graph) CreateVertexPropIndex(key string) {
	idx := make(map[string][]VertexID)
	g.Vertices(func(v *Vertex) bool {
		if val, ok := v.props[key]; ok {
			if ik, can := val.indexKey(); can {
				idx[ik] = append(idx[ik], v.ID)
			}
		}
		return true
	})
	g.propIndex[key] = idx
}

// VerticesByProp returns live vertices whose indexed property key equals
// val, in insertion order. The index must have been created with
// CreateVertexPropIndex; otherwise it falls back to a scan.
func (g *Graph) VerticesByProp(key string, val Value) []VertexID {
	if idx, ok := g.propIndex[key]; ok {
		ik, can := val.indexKey()
		if !can {
			return nil
		}
		var out []VertexID
		for _, id := range idx[ik] {
			if v := g.Vertex(id); v != nil && v.props[key].Equal(val) {
				out = append(out, id)
			}
		}
		return out
	}
	var out []VertexID
	g.Vertices(func(v *Vertex) bool {
		if v.props[key].Equal(val) {
			out = append(out, v.ID)
		}
		return true
	})
	return out
}

func removeVID(ids []VertexID, id VertexID) []VertexID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// OutEdges returns the live outgoing edges of a vertex in insertion order.
func (g *Graph) OutEdges(id VertexID) []*Edge {
	v := g.Vertex(id)
	if v == nil {
		return nil
	}
	out := make([]*Edge, 0, len(v.out))
	for _, eid := range v.out {
		if e := g.Edge(eid); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the live incoming edges of a vertex in insertion order.
func (g *Graph) InEdges(id VertexID) []*Edge {
	v := g.Vertex(id)
	if v == nil {
		return nil
	}
	out := make([]*Edge, 0, len(v.in))
	for _, eid := range v.in {
		if e := g.Edge(eid); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// OutDegree returns the number of live outgoing edges.
func (g *Graph) OutDegree(id VertexID) int { return len(g.OutEdges(id)) }

// InDegree returns the number of live incoming edges.
func (g *Graph) InDegree(id VertexID) int { return len(g.InEdges(id)) }

// Degree returns in-degree + out-degree.
func (g *Graph) Degree(id VertexID) int { return g.OutDegree(id) + g.InDegree(id) }

// Neighbors returns the distinct vertices adjacent to id (both directions),
// in ascending ID order.
func (g *Graph) Neighbors(id VertexID) []VertexID {
	seen := map[VertexID]bool{}
	for _, e := range g.OutEdges(id) {
		seen[e.To] = true
	}
	for _, e := range g.InEdges(id) {
		seen[e.From] = true
	}
	delete(seen, id)
	out := make([]VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the graph structure and properties. Series
// payloads inside values are shared (they are treated as immutable once
// attached).
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	ng.vertices = make([]*Vertex, len(g.vertices))
	for i, v := range g.vertices {
		nv := &Vertex{
			ID:     v.ID,
			Labels: append([]string(nil), v.Labels...),
			props:  make(map[string]Value, len(v.props)),
			out:    append([]EdgeID(nil), v.out...),
			in:     append([]EdgeID(nil), v.in...),
			dead:   v.dead,
		}
		for k, val := range v.props {
			nv.props[k] = val
		}
		ng.vertices[i] = nv
	}
	ng.edges = make([]*Edge, len(g.edges))
	for i, e := range g.edges {
		ne := &Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To,
			props: make(map[string]Value, len(e.props)), dead: e.dead}
		for k, val := range e.props {
			ne.props[k] = val
		}
		ng.edges[i] = ne
	}
	ng.nLive = g.nLive
	ng.eLive = g.eLive
	for l, ids := range g.labelIndex {
		ng.labelIndex[l] = append([]VertexID(nil), ids...)
	}
	for k := range g.propIndex {
		ng.CreateVertexPropIndex(k)
	}
	return ng
}

// String renders a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d, |E|=%d)", g.nLive, g.eLive)
}

package lpg

import (
	"math"
	"testing"
)

func TestKCoreCliquePlusTail(t *testing.T) {
	// 4-clique (core 3) with a 2-vertex tail (cores 1).
	g := NewGraph()
	cl := make([]VertexID, 4)
	for i := range cl {
		cl[i] = g.AddVertex("V")
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(cl[i], cl[j], "e")
		}
	}
	t1 := g.AddVertex("V")
	t2 := g.AddVertex("V")
	g.AddEdge(cl[0], t1, "e")
	g.AddEdge(t1, t2, "e")
	core := g.KCore()
	for _, id := range cl {
		if core[id] != 3 {
			t.Fatalf("clique vertex %d core=%d", id, core[id])
		}
	}
	if core[t1] != 1 || core[t2] != 1 {
		t.Fatalf("tail cores %d/%d", core[t1], core[t2])
	}
	lone := g.AddVertex("V")
	core = g.KCore()
	if core[lone] != 0 {
		t.Fatalf("isolated core=%d", core[lone])
	}
}

func TestKCoreRing(t *testing.T) {
	g := NewGraph()
	ids := make([]VertexID, 6)
	for i := range ids {
		ids[i] = g.AddVertex("V")
	}
	for i := range ids {
		g.AddEdge(ids[i], ids[(i+1)%6], "e")
	}
	core := g.KCore()
	for _, id := range ids {
		if core[id] != 2 {
			t.Fatalf("ring core=%d", core[id])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path a-b-c: b lies on the single a↔c shortest path → betweenness 1.
	g := NewGraph()
	a := g.AddVertex("V")
	b := g.AddVertex("V")
	c := g.AddVertex("V")
	g.AddEdge(a, b, "e")
	g.AddEdge(b, c, "e")
	cb := g.Betweenness()
	if math.Abs(cb[b]-1) > 1e-9 {
		t.Fatalf("center betweenness=%v", cb[b])
	}
	if cb[a] != 0 || cb[c] != 0 {
		t.Fatalf("endpoints: %v %v", cb[a], cb[c])
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with 4 leaves: hub carries all C(4,2)=6 pairs.
	g := NewGraph()
	hub := g.AddVertex("V")
	for i := 0; i < 4; i++ {
		leaf := g.AddVertex("V")
		g.AddEdge(hub, leaf, "e")
	}
	cb := g.Betweenness()
	if math.Abs(cb[hub]-6) > 1e-9 {
		t.Fatalf("hub betweenness=%v", cb[hub])
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// Diamond a-{b,c}-d: two equal shortest paths a→d; b and c each carry
	// half a pair = 0.5.
	g := NewGraph()
	a := g.AddVertex("V")
	b := g.AddVertex("V")
	c := g.AddVertex("V")
	d := g.AddVertex("V")
	g.AddEdge(a, b, "e")
	g.AddEdge(a, c, "e")
	g.AddEdge(b, d, "e")
	g.AddEdge(c, d, "e")
	cb := g.Betweenness()
	if math.Abs(cb[b]-0.5) > 1e-9 || math.Abs(cb[c]-0.5) > 1e-9 {
		t.Fatalf("split betweenness %v / %v", cb[b], cb[c])
	}
}

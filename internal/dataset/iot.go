package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// IoTConfig parameterizes the smart-manufacturing generator.
type IoTConfig struct {
	Lines           int // production lines
	MachinesPerLine int
	SensorsPerMach  int
	Hours           int
	FaultyMachines  int // machines whose sensors develop anomalies
	// Coupling adds topology-borne signal: each machine's sensors absorb
	// this fraction of the upstream machine's (lagged) signal, so downstream
	// series are predictable from their FEEDS neighbors. 0 disables it.
	Coupling float64
	// CouplingLag is the propagation delay along FEEDS edges, in hours.
	CouplingLag int
	Seed        int64
}

// DefaultIoT is the small configuration used by tests and examples.
func DefaultIoT() IoTConfig {
	return IoTConfig{Lines: 3, MachinesPerLine: 4, SensorsPerMach: 2, Hours: 24 * 7, FaultyMachines: 2, Seed: 1}
}

// IoTData is a generated plant as a HyGraph instance.
type IoTData struct {
	Config   IoTConfig
	H        *core.HyGraph
	Lines    []core.VID
	Machines []core.VID
	Sensors  []core.VID // TS vertices
	// Faulty marks machine indexes with planted sensor anomalies.
	Faulty map[int]bool
}

// GenerateIoT builds the plant: lines as PG vertices, machines chained along
// each line (FEEDS edges modeling the conveyor topology), and sensors as TS
// vertices attached to machines. Sensor series are periodic (machine duty
// cycles) so motif mining finds recurring patterns; faulty machines get
// heat-up drifts plus spikes so anomaly×community detection localizes them.
func GenerateIoT(cfg IoTConfig) *IoTData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := core.New()
	d := &IoTData{Config: cfg, H: h, Faulty: map[int]bool{}}
	totalMachines := cfg.Lines * cfg.MachinesPerLine
	for totalFaulty := 0; totalFaulty < cfg.FaultyMachines && totalFaulty < totalMachines; totalFaulty++ {
		d.Faulty[rng.Intn(totalMachines)] = true
	}

	mi := 0
	for l := 0; l < cfg.Lines; l++ {
		lid, err := h.AddVertex(tpg.Always, "Line")
		if err != nil {
			panic(err)
		}
		h.SetVertexProp(lid, "name", lpg.Str(fmt.Sprintf("line-%d", l)))
		d.Lines = append(d.Lines, lid)
		var prev core.VID = -1
		var upstreamProc []float64
		for m := 0; m < cfg.MachinesPerLine; m++ {
			mid, err := h.AddVertex(tpg.Always, "Machine")
			if err != nil {
				panic(err)
			}
			h.SetVertexProp(mid, "name", lpg.Str(fmt.Sprintf("machine-%d-%d", l, m)))
			h.SetVertexProp(mid, "line", lpg.Str(fmt.Sprintf("line-%d", l)))
			d.Machines = append(d.Machines, mid)
			if _, err := h.AddEdge(lid, mid, "HAS_MACHINE", tpg.Always); err != nil {
				panic(err)
			}
			if prev >= 0 {
				if _, err := h.AddEdge(prev, mid, "FEEDS", tpg.Always); err != nil {
					panic(err)
				}
			}
			prev = mid
			// Each machine has a latent AR(1) process; with coupling > 0 it
			// absorbs the upstream machine's lagged process, so the FEEDS
			// topology carries predictive signal.
			proc := genProcess(rng, cfg.Hours, upstreamProc, cfg.Coupling, cfg.CouplingLag)
			for s := 0; s < cfg.SensorsPerMach; s++ {
				series := genSensor(rng, cfg.Hours, d.Faulty[mi], s, proc)
				sid, err := h.AddTSVertexUni(series, "Sensor")
				if err != nil {
					panic(err)
				}
				h.SetVertexProp(sid, "name", lpg.Str(fmt.Sprintf("sensor-%d-%d-%d", l, m, s)))
				d.Sensors = append(d.Sensors, sid)
				if _, err := h.AddEdge(mid, sid, "HAS_SENSOR", tpg.Always); err != nil {
					panic(err)
				}
			}
			upstreamProc = proc
			mi++
		}
	}
	return d
}

// genProcess generates a machine's latent AR(1) process, optionally coupled
// to the upstream machine's lagged process.
func genProcess(rng *rand.Rand, hours int, upstream []float64, coupling float64, lag int) []float64 {
	proc := make([]float64, hours)
	for hh := 0; hh < hours; hh++ {
		own := rng.NormFloat64() * 1.5
		if hh > 0 {
			own += 0.9 * proc[hh-1] * 0.5 // persistence on the own component
		}
		v := own
		if coupling > 0 && upstream != nil && hh-lag >= 0 {
			v += coupling * upstream[hh-lag]
		}
		proc[hh] = v
	}
	return proc
}

// genSensor produces an hourly duty-cycle series on top of the machine's
// latent process; faulty machines add a drift in the last quarter plus
// spikes.
func genSensor(rng *rand.Rand, hours int, faulty bool, kind int, proc []float64) *ts.Series {
	s := ts.New([]string{"temperature", "vibration"}[kind%2])
	base := 40 + 10*float64(kind)
	period := 8.0 // 8-hour duty cycle
	for hh := 0; hh < hours; hh++ {
		v := base + 5*math.Sin(2*math.Pi*float64(hh)/period) + proc[hh] + rng.NormFloat64()*0.4
		if faulty {
			if hh > 3*hours/4 {
				v += 0.15 * float64(hh-3*hours/4) // heat-up drift
			}
			if rng.Intn(36) == 0 {
				v += 40 // spike
			}
		}
		s.MustAppend(ts.Time(hh)*ts.Hour, v)
	}
	return s
}

// SensorOwner returns the machine PG vertex owning a sensor TS vertex.
func (d *IoTData) SensorOwner(sensor core.VID) (core.VID, bool) {
	for _, e := range d.H.InEdges(sensor) {
		if e.Label == "HAS_SENSOR" {
			return e.From, true
		}
	}
	return 0, false
}

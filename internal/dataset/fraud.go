package dataset

import (
	"fmt"
	"math/rand"

	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// FraudConfig parameterizes the credit-card fraud generator.
type FraudConfig struct {
	Users      int
	Merchants  int
	Hours      int // length of every series, hourly sampling
	Fraudsters int // planted true positives (burst + fan-out + drain)
	HeavyUsers int // graph-side false positives (legit sprees, steady balance)
	Volatile   int // series-side false positives (erratic balance, no fan-out)
	Seed       int64
}

// DefaultFraud is the configuration of the running example at small scale.
func DefaultFraud() FraudConfig {
	return FraudConfig{Users: 30, Merchants: 12, Hours: 24 * 14, Fraudsters: 3, HeavyUsers: 3, Volatile: 3, Seed: 1}
}

// UserClass is the planted ground-truth class of a user.
type UserClass int

// Planted classes. The paper's running example: "User 1" is a true
// fraudster (graph AND series evidence), "User 3" is the false positive a
// graph-only query flags (fan-out without the series evidence).
const (
	Normal UserClass = iota
	Fraudster
	HeavyUser
	Volatile
)

// String names the class.
func (c UserClass) String() string {
	switch c {
	case Fraudster:
		return "fraudster"
	case HeavyUser:
		return "heavy-user"
	case Volatile:
		return "volatile"
	}
	return "normal"
}

// FraudData is a generated fraud workload over a HyGraph instance.
type FraudData struct {
	Config FraudConfig
	H      *core.HyGraph
	// Users/Cards/Merchants index HyGraph vertices.
	Users     []core.VID
	Cards     []core.VID
	Merchants []core.VID
	// Truth is the planted class per user index.
	Truth []UserClass
	// BurstStart marks when each fraudster's burst begins (0 otherwise).
	BurstStart []ts.Time
}

// GenerateFraud builds the running-example instance: users and merchants as
// PG vertices, cards as TS vertices (balance), USES as PG edges, and
// card→merchant transaction flows as TS edges (amount series).
//
// Planted classes reproduce Figure 2's cast:
//   - Fraudster ("User 1"): a mid-series burst — the balance drains sharply
//     while high-amount transactions fan out to ≥3 nearby merchants within
//     one hour. Both evidence channels fire.
//   - HeavyUser ("User 3"): legitimate shopping sprees — the same ≥3-nearby-
//     merchants-in-an-hour structure with high amounts, but the balance
//     stays healthy. Graph-only detection flags them (false positive).
//   - Volatile: erratic but legitimate balance swings without any fan-out.
//     Series-only detection flags them (false positive).
//   - Normal: background traffic.
func GenerateFraud(cfg FraudConfig) *FraudData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := core.New()
	d := &FraudData{Config: cfg, H: h}

	for m := 0; m < cfg.Merchants; m++ {
		id, err := h.AddVertex(tpg.Always, "Merchant")
		if err != nil {
			panic(err)
		}
		h.SetVertexProp(id, "name", lpg.Str(fmt.Sprintf("merchant-%02d", m)))
		// Merchants are on a grid; "loc" drives the Listing-1 distance
		// constraint (adjacent merchants are 400 apart, so any three
		// consecutive ones fall within the 1000 radius).
		h.SetVertexProp(id, "loc", lpg.Float(float64(m*400)))
		d.Merchants = append(d.Merchants, id)
	}

	classes := make([]UserClass, cfg.Users)
	for i := 0; i < cfg.Fraudsters && i < cfg.Users; i++ {
		classes[i] = Fraudster
	}
	for i := cfg.Fraudsters; i < cfg.Fraudsters+cfg.HeavyUsers && i < cfg.Users; i++ {
		classes[i] = HeavyUser
	}
	for i := cfg.Fraudsters + cfg.HeavyUsers; i < cfg.Fraudsters+cfg.HeavyUsers+cfg.Volatile && i < cfg.Users; i++ {
		classes[i] = Volatile
	}
	rng.Shuffle(cfg.Users, func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })
	d.Truth = classes
	d.BurstStart = make([]ts.Time, cfg.Users)

	for u := 0; u < cfg.Users; u++ {
		uid, err := h.AddVertex(tpg.Always, "User")
		if err != nil {
			panic(err)
		}
		h.SetVertexProp(uid, "name", lpg.Str(fmt.Sprintf("user-%03d", u)))
		d.Users = append(d.Users, uid)

		burstAt := ts.Time(0)
		if classes[u] == Fraudster || classes[u] == HeavyUser {
			// Fraud bursts and legit sprees both need an hour to happen in.
			hour := cfg.Hours/4 + rng.Intn(cfg.Hours/2)
			burstAt = ts.Time(hour) * ts.Hour
		}
		d.BurstStart[u] = burstAt

		balance := genBalance(rng, cfg.Hours, classes[u], burstAt)
		cid, err := h.AddTSVertexUni(balance, "CreditCard")
		if err != nil {
			panic(err)
		}
		h.SetVertexProp(cid, "name", lpg.Str(fmt.Sprintf("card-%03d", u)))
		d.Cards = append(d.Cards, cid)
		if _, err := h.AddEdge(uid, cid, "USES", tpg.Always); err != nil {
			panic(err)
		}

		d.genTransactions(rng, u, cid, classes[u], burstAt)
	}
	return d
}

// genBalance produces an hourly balance series. Fraudsters drain sharply at
// the burst; volatile users swing legitimately; others drift gently around
// a personal level.
func genBalance(rng *rand.Rand, hours int, class UserClass, burstAt ts.Time) *ts.Series {
	s := ts.New("balance")
	level := 800 + rng.Float64()*1200
	if class == HeavyUser {
		level *= 2
	}
	swingLeft := 0
	for hh := 0; hh < hours; hh++ {
		t := ts.Time(hh) * ts.Hour
		level += rng.NormFloat64() * 10
		v := level
		if class == Volatile {
			if swingLeft > 0 {
				v = level * 0.45 // legitimate dip (large purchase then refund)
				swingLeft--
			} else if rng.Intn(60) == 0 {
				swingLeft = 2
				v = level * 0.45
			}
		}
		if class == Fraudster && t >= burstAt && t < burstAt+4*ts.Hour {
			v = level * 0.05 // drained
		}
		if v < 0 {
			v = 0
		}
		s.MustAppend(t, v)
	}
	return s
}

// genTransactions attaches TS edges card → merchant whose series carry
// hourly transaction amounts.
func (d *FraudData) genTransactions(rng *rand.Rand, u int, card core.VID, class UserClass, burstAt ts.Time) {
	cfg := d.Config
	h := d.H
	nMerchants := 2 + rng.Intn(3)
	if class == Fraudster || class == HeavyUser {
		nMerchants = 3 + rng.Intn(2) // fan-out to at least 3
	}
	perm := rng.Perm(cfg.Merchants)
	base := rng.Intn(maxInt(1, cfg.Merchants-2))
	for k := 0; k < nMerchants && k < len(perm); k++ {
		mIdx := perm[k]
		// Bursts and sprees fan out to *adjacent* merchants (small loc
		// distance): force the first three onto neighboring grid cells,
		// without wrapping around the grid.
		if (class == Fraudster || class == HeavyUser) && k < 3 {
			mIdx = base + k
		}
		amounts := ts.New("amount")
		for hh := 0; hh < cfg.Hours; hh++ {
			t := ts.Time(hh) * ts.Hour
			var v float64
			switch {
			case class == Fraudster && t >= burstAt && t < burstAt+ts.Hour && k < 3:
				v = 1200 + rng.Float64()*1500 // the burst: 3 merchants in 1 hour
			case class == HeavyUser && t >= burstAt && t < burstAt+ts.Hour && k < 3:
				v = 1100 + rng.Float64()*900 // legit spree: 3 merchants, 1 hour
			case class == HeavyUser && rng.Intn(48) == 0:
				v = 1100 + rng.Float64()*900 // plus sporadic big purchases
			case rng.Intn(12) == 0:
				v = 10 + rng.Float64()*120
			}
			if v > 0 {
				amounts.MustAppend(t, v)
			}
		}
		if amounts.Empty() {
			amounts.MustAppend(0, 5)
		}
		eid, err := h.AddTSEdgeUni(card, d.Merchants[mIdx], "TX_FLOW", amounts)
		if err != nil {
			panic(err)
		}
		h.SetEdgeProp(eid, "max_amount", lpg.Float(amounts.Max()))
	}
}

// TruePositives returns the user indexes of planted fraudsters.
func (d *FraudData) TruePositives() []int {
	var out []int
	for i, c := range d.Truth {
		if c == Fraudster {
			out = append(out, i)
		}
	}
	return out
}

// FalsePositiveBait returns the user indexes of heavy users (structural
// fan-out without temporal fraud evidence).
func (d *FraudData) FalsePositiveBait() []int {
	var out []int
	for i, c := range d.Truth {
		if c == HeavyUser {
			out = append(out, i)
		}
	}
	return out
}

// VolatileBait returns the user indexes whose balance is erratic but whose
// transactions carry no fraud structure (series-side false positives).
func (d *FraudData) VolatileBait() []int {
	var out []int
	for i, c := range d.Truth {
		if c == Volatile {
			out = append(out, i)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

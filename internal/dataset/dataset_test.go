package dataset

import (
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

func TestGenerateBikeShape(t *testing.T) {
	cfg := DefaultBike()
	d := GenerateBike(cfg)
	if len(d.Stations) != cfg.Stations {
		t.Fatalf("stations=%d", len(d.Stations))
	}
	points := cfg.Days * 24 * 60 / cfg.StepMinutes
	districts := map[string]int{}
	for _, st := range d.Stations {
		if st.Availability.Len() != points {
			t.Fatalf("series len=%d want %d", st.Availability.Len(), points)
		}
		districts[st.District]++
		// Availability within [0, capacity].
		if st.Availability.Min() < 0 || st.Availability.Max() > float64(st.Capacity) {
			t.Fatalf("availability out of range: %v..%v cap=%d",
				st.Availability.Min(), st.Availability.Max(), st.Capacity)
		}
	}
	if len(districts) != cfg.Districts {
		t.Fatalf("districts=%d", len(districts))
	}
	if len(d.Trips) == 0 {
		t.Fatal("no trips")
	}
	for _, tr := range d.Trips {
		if tr.From == tr.To || tr.From >= cfg.Stations || tr.To >= cfg.Stations {
			t.Fatalf("bad trip %+v", tr)
		}
	}
}

func TestGenerateBikeDeterministic(t *testing.T) {
	a := GenerateBike(DefaultBike())
	b := GenerateBike(DefaultBike())
	if !a.Stations[7].Availability.Equal(b.Stations[7].Availability) {
		t.Fatal("same seed, different series")
	}
	cfg := DefaultBike()
	cfg.Seed = 99
	c := GenerateBike(cfg)
	if a.Stations[7].Availability.Equal(c.Stations[7].Availability) {
		t.Fatal("different seed, identical series")
	}
}

func TestBikeDailySeasonality(t *testing.T) {
	d := GenerateBike(DefaultBike())
	s := d.Stations[0].Availability
	// Strong 24h autocorrelation.
	acf := s.AutoCorrelation(24)
	if acf[0] < 0.5 {
		t.Fatalf("24h ACF=%v", acf[0])
	}
}

func TestBikeLoadEngineAndHyGraph(t *testing.T) {
	d := GenerateBike(BikeConfig{Stations: 10, Districts: 2, Days: 2, StepMinutes: 60, TripsPerSt: 2, Seed: 3})
	eng := ttdb.NewPolyglot(ts.Day)
	ids, err := d.LoadEngine(eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("ids=%d", len(ids))
	}
	start, end := d.Span()
	means := eng.Q4AllStationMeans(start, end)
	if len(means) != 10 {
		t.Fatalf("means=%d", len(means))
	}
	h, hids := d.ToHyGraph()
	pv, pe := h.CountByKind(core.PG)
	tv, _ := h.CountByKind(core.TS)
	if pv != 10 || tv != 10 {
		t.Fatalf("hygraph pg=%d ts=%d", pv, tv)
	}
	if pe != 10+len(d.Trips) { // HAS_SERIES + trips
		t.Fatalf("pg edges=%d", pe)
	}
	if len(hids) != 10 {
		t.Fatalf("hygraph ids=%d", len(hids))
	}
}

func TestGenerateFraudGroundTruth(t *testing.T) {
	cfg := DefaultFraud()
	d := GenerateFraud(cfg)
	if len(d.Users) != cfg.Users || len(d.Cards) != cfg.Users {
		t.Fatalf("users=%d cards=%d", len(d.Users), len(d.Cards))
	}
	if len(d.TruePositives()) != cfg.Fraudsters {
		t.Fatalf("fraudsters=%d", len(d.TruePositives()))
	}
	if len(d.FalsePositiveBait()) != cfg.HeavyUsers {
		t.Fatalf("heavy=%d", len(d.FalsePositiveBait()))
	}
	// Fraudster balance has the drain; heavy user does not.
	for _, u := range d.TruePositives() {
		s, _ := d.H.Vertex(d.Cards[u]).SeriesVar("")
		if s.Min() > 0.2*s.Mean() {
			t.Fatalf("fraudster %d has no drain: min=%v mean=%v", u, s.Min(), s.Mean())
		}
		if d.BurstStart[u] == 0 {
			t.Fatalf("fraudster %d has no burst time", u)
		}
	}
	for _, u := range d.FalsePositiveBait() {
		s, _ := d.H.Vertex(d.Cards[u]).SeriesVar("")
		if s.Min() < 0.5*s.Mean() {
			t.Fatalf("heavy user %d looks drained: min=%v mean=%v", u, s.Min(), s.Mean())
		}
	}
}

func TestFraudBurstStructure(t *testing.T) {
	d := GenerateFraud(DefaultFraud())
	// Every fraudster has >= 3 TX_FLOW edges with a >=1200 amount inside the
	// burst hour.
	for _, u := range d.TruePositives() {
		card := d.Cards[u]
		burst := d.BurstStart[u]
		count := 0
		for _, e := range d.H.OutEdges(card) {
			if e.Label != "TX_FLOW" {
				continue
			}
			s, _ := e.SeriesVar("")
			if s.AggregateRange(ts.AggMax, burst, burst+ts.Hour) >= 1200 {
				count++
			}
		}
		if count < 3 {
			t.Fatalf("fraudster %d burst fan-out=%d", u, count)
		}
	}
	// Normal users never have 3 high-amount edges in any single hour.
	for i, c := range d.Truth {
		if c != Normal {
			continue
		}
		card := d.Cards[i]
		high := 0
		for _, e := range d.H.OutEdges(card) {
			if e.Label != "TX_FLOW" {
				continue
			}
			s, _ := e.SeriesVar("")
			if s.Max() >= 1000 {
				high++
			}
		}
		if high >= 3 {
			t.Fatalf("normal user %d has %d high edges", i, high)
		}
	}
}

func TestGenerateIoT(t *testing.T) {
	cfg := DefaultIoT()
	d := GenerateIoT(cfg)
	if len(d.Lines) != cfg.Lines {
		t.Fatalf("lines=%d", len(d.Lines))
	}
	wantMachines := cfg.Lines * cfg.MachinesPerLine
	if len(d.Machines) != wantMachines {
		t.Fatalf("machines=%d", len(d.Machines))
	}
	if len(d.Sensors) != wantMachines*cfg.SensorsPerMach {
		t.Fatalf("sensors=%d", len(d.Sensors))
	}
	if len(d.Faulty) == 0 || len(d.Faulty) > cfg.FaultyMachines {
		t.Fatalf("faulty=%v", d.Faulty)
	}
	// Sensor ownership resolves.
	for _, s := range d.Sensors {
		if _, ok := d.SensorOwner(s); !ok {
			t.Fatalf("sensor %d has no owner", s)
		}
	}
	// Duty cycle: strong 8h autocorrelation on a healthy sensor.
	var healthy core.VID = -1
	mi := 0
	for i := range d.Machines {
		if !d.Faulty[i] {
			healthy = d.Sensors[i*cfg.SensorsPerMach]
			break
		}
		mi++
	}
	_ = mi
	if healthy < 0 {
		t.Skip("all machines faulty")
	}
	s, _ := d.H.Vertex(healthy).SeriesVar("")
	if acf := s.AutoCorrelation(8); acf[0] < 0.7 {
		t.Fatalf("duty cycle ACF=%v", acf[0])
	}
}

func TestIoTFaultySensorsDetectable(t *testing.T) {
	d := GenerateIoT(DefaultIoT())
	cfg := d.Config
	// Faulty machines' sensors produce rolling-z anomalies; count them per
	// machine and check faulty ones dominate.
	score := func(machineIdx int) float64 {
		total := 0.0
		for s := 0; s < cfg.SensorsPerMach; s++ {
			sid := d.Sensors[machineIdx*cfg.SensorsPerMach+s]
			ser, _ := d.H.Vertex(sid).SeriesVar("")
			total += float64(len(ser.RollingZAnomalies(24, 6)))
		}
		return total
	}
	var worstHealthy, bestFaulty float64 = 0, 1 << 30
	for i := range d.Machines {
		sc := score(i)
		if d.Faulty[i] {
			if sc < bestFaulty {
				bestFaulty = sc
			}
		} else if sc > worstHealthy {
			worstHealthy = sc
		}
	}
	if bestFaulty <= worstHealthy {
		t.Fatalf("faulty min score %v <= healthy max %v", bestFaulty, worstHealthy)
	}
}

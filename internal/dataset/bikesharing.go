// Package dataset generates the synthetic workloads every experiment runs
// on: a NYC-style bike-sharing network (substituting the paper's Zenodo
// dataset [52]), a credit-card fraud workload with planted behaviours
// (the Figure 2 / Figure 4 running example), and an IoT plant
// (the Section 2 smart-manufacturing use case). All generators are
// deterministic for a given seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"hygraph/internal/core"
	"hygraph/internal/lpg"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// BikeConfig parameterizes the bike-sharing generator.
type BikeConfig struct {
	Stations    int
	Districts   int
	Days        int
	StepMinutes int // sampling period of the availability series
	TripsPerSt  int // aggregated trip edges per station
	Seed        int64
}

// DefaultBike is the small configuration used by tests and examples.
func DefaultBike() BikeConfig {
	return BikeConfig{Stations: 50, Districts: 5, Days: 14, StepMinutes: 60, TripsPerSt: 4, Seed: 1}
}

// Table1Bike is the configuration the Table 1 harness uses by default:
// hourly availability for a year across 500 stations (~4.4M points).
func Table1Bike() BikeConfig {
	return BikeConfig{Stations: 500, Districts: 12, Days: 365, StepMinutes: 60, TripsPerSt: 6, Seed: 7}
}

// BikeStation is one generated station.
type BikeStation struct {
	Name         string
	District     string
	Capacity     int
	Availability *ts.Series
}

// BikeTrip is one aggregated trip edge.
type BikeTrip struct {
	From, To int // station indexes
	Count    int
}

// BikeData is a generated bike-sharing network.
type BikeData struct {
	Config   BikeConfig
	Stations []BikeStation
	Trips    []BikeTrip
}

// GenerateBike builds the network: stations assigned round-robin to
// districts, trip edges to nearby stations, and availability series with
// daily and weekly seasonality plus noise — morning/evening commuter dips
// like the real network.
func GenerateBike(cfg BikeConfig) *BikeData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := &BikeData{Config: cfg}
	step := ts.Time(cfg.StepMinutes) * ts.Minute
	points := cfg.Days * 24 * 60 / cfg.StepMinutes
	for i := 0; i < cfg.Stations; i++ {
		district := fmt.Sprintf("district-%d", i%cfg.Districts)
		capacity := 20 + rng.Intn(30)
		base := float64(capacity) * (0.4 + 0.3*rng.Float64())
		phase := rng.Float64() * 2 * math.Pi
		s := ts.New(ttdb.Metric)
		for p := 0; p < points; p++ {
			t := ts.Time(p) * step
			hour := float64(t%ts.Day) / float64(ts.Hour)
			day := int(t / ts.Day)
			daily := 0.25 * base * math.Sin(2*math.Pi*hour/24+phase)
			weekly := 0.0
			if day%7 >= 5 {
				weekly = 0.15 * base // weekend surplus
			}
			v := base + daily + weekly + rng.NormFloat64()*0.05*base
			if v < 0 {
				v = 0
			}
			if v > float64(capacity) {
				v = float64(capacity)
			}
			s.MustAppend(t, v)
		}
		data.Stations = append(data.Stations, BikeStation{
			Name:         fmt.Sprintf("station-%03d", i),
			District:     district,
			Capacity:     capacity,
			Availability: s,
		})
	}
	for i := 0; i < cfg.Stations; i++ {
		for k := 0; k < cfg.TripsPerSt; k++ {
			// Prefer nearby station indexes (spatial locality proxy).
			j := i + 1 + rng.Intn(5)
			if j >= cfg.Stations {
				j = rng.Intn(cfg.Stations)
			}
			if j == i {
				continue
			}
			data.Trips = append(data.Trips, BikeTrip{From: i, To: j, Count: 1 + rng.Intn(100)})
		}
	}
	return data
}

// Span returns the generated time range [0, end).
func (d *BikeData) Span() (start, end ts.Time) {
	return 0, ts.Time(d.Config.Days) * ts.Day
}

// LoadEngine loads the dataset into a Table 1 storage engine, returning the
// station ids in generation order.
func (d *BikeData) LoadEngine(e ttdb.Engine) ([]ttdb.StationID, error) {
	ids := make([]ttdb.StationID, len(d.Stations))
	for i, st := range d.Stations {
		id, err := e.AddStation(st.Name, st.District)
		if err != nil {
			return nil, fmt.Errorf("dataset: station %s: %w", st.Name, err)
		}
		ids[i] = id
	}
	for _, tr := range d.Trips {
		if err := e.AddTrip(ids[tr.From], ids[tr.To], tr.Count); err != nil {
			return nil, fmt.Errorf("dataset: trip %d->%d: %w", tr.From, tr.To, err)
		}
	}
	for i, st := range d.Stations {
		if err := e.LoadSeries(ids[i], st.Availability); err != nil {
			return nil, fmt.Errorf("dataset: series for %s: %w", st.Name, err)
		}
	}
	return ids, nil
}

// ToHyGraph builds a HyGraph instance: stations as PG vertices, their
// availability as first-class TS vertices linked by HAS_SERIES edges, and
// trips as PG edges carrying a count property.
func (d *BikeData) ToHyGraph() (*core.HyGraph, []core.VID) {
	h := core.New()
	ids := make([]core.VID, len(d.Stations))
	for i, st := range d.Stations {
		v, err := h.AddVertex(tpg.Always, "Station")
		if err != nil {
			panic(err)
		}
		h.SetVertexProp(v, "name", lpg.Str(st.Name))
		h.SetVertexProp(v, "district", lpg.Str(st.District))
		h.SetVertexProp(v, "capacity", lpg.Int(int64(st.Capacity)))
		tsv, err := h.AddTSVertexUni(st.Availability, "Availability")
		if err != nil {
			panic(err)
		}
		if _, err := h.AddEdge(v, tsv, "HAS_SERIES", tpg.Always); err != nil {
			panic(err)
		}
		ids[i] = v
	}
	for _, tr := range d.Trips {
		e, err := h.AddEdge(ids[tr.From], ids[tr.To], "TRIP", tpg.Always)
		if err != nil {
			panic(err)
		}
		h.SetEdgeProp(e, "count", lpg.Int(int64(tr.Count)))
	}
	return h, ids
}

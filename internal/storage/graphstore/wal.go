package graphstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hygraph/internal/faults"
	"hygraph/internal/storage/walrec"
)

// Fault points consulted by the graph-store WAL (see internal/faults).
const (
	// FaultWALAppend fires before a record is applied or buffered; an
	// injected error leaves both the store and the log untouched, so
	// transient injections are safely retryable.
	FaultWALAppend = "graphstore.wal.append"
	// FaultWALFlush fires before buffered records reach the underlying
	// writer — the classic "crash at commit" moment.
	FaultWALFlush = "graphstore.wal.flush"
)

// WAL is a write-ahead-logged view of a DB: every mutation is appended to
// the log before being applied, so a crashed process can rebuild the store
// by replaying the log (Replay). Records are framed with a length prefix and
// a CRC32C checksum (internal/storage/walrec), so replay detects torn tails
// and flipped bits instead of resurrecting garbage. Combined with periodic
// Save snapshots this gives the usual snapshot+log durability scheme of
// production stores.
type WAL struct {
	db      *DB
	fw      *walrec.Writer
	scratch []byte // payload of the record being built

	obs walObs // metric handles; zero value = instrumentation off
}

// Log record opcodes.
const (
	opCreateNode byte = iota + 1
	opCreateRel
	opSetNodeProp
	opSetRelProp
	opRemoveNodeProp
	opDeleteNode
)

// NewWAL wraps a store with a log appended to w. The store should be empty
// or match the snapshot the log continues from.
func NewWAL(db *DB, w io.Writer) *WAL {
	return &WAL{db: db, fw: walrec.NewWriter(w)}
}

// DB exposes the underlying store for reads.
func (l *WAL) DB() *DB { return l.db }

// Err returns the WAL's latched write error, if any.
func (l *WAL) Err() error { return l.fw.Err() }

// Flush forces buffered log records to the underlying writer. Callers
// flush at commit points.
func (l *WAL) Flush() error {
	if err := l.fw.Err(); err != nil {
		return err
	}
	if err := faults.Check(FaultWALFlush); err != nil {
		return err
	}
	if err := l.fw.Flush(); err != nil {
		return err
	}
	l.obs.flushes.Inc()
	return nil
}

// Payload builders: a record is fully materialized in scratch before any
// byte reaches the framed writer, so a failed record is never half-buffered
// and a latched error can never flush a partial record (the old
// byte-at-a-time writer could leave half a record in the buffer).

func (l *WAL) begin(op byte) {
	l.scratch = append(l.scratch[:0], op)
}

func (l *WAL) putUvarint(v uint64) {
	l.scratch = binary.AppendUvarint(l.scratch, v)
}

func (l *WAL) putString(s string) {
	l.putUvarint(uint64(len(s)))
	l.scratch = append(l.scratch, s...)
}

func (l *WAL) putValue(v PropValue) {
	l.scratch = append(l.scratch, byte(v.Kind))
	switch v.Kind {
	case PropInt:
		l.putUvarint(uint64(v.I))
	case PropFloat:
		l.scratch = binary.LittleEndian.AppendUint64(l.scratch, math.Float64bits(v.F))
	case PropString:
		l.putString(v.S)
	case PropBool:
		if v.B {
			l.scratch = append(l.scratch, 1)
		} else {
			l.scratch = append(l.scratch, 0)
		}
	}
}

// commit frames and buffers the record built in scratch.
func (l *WAL) commit() error {
	if err := faults.Check(FaultWALAppend); err != nil {
		return err
	}
	if err := l.fw.Append(l.scratch); err != nil {
		return err
	}
	l.obs.appends.Inc()
	l.obs.bytes.Add(int64(len(l.scratch)))
	return nil
}

// CreateNode logs and applies a node creation.
func (l *WAL) CreateNode(labels ...string) (NodeID, error) {
	l.begin(opCreateNode)
	l.putUvarint(uint64(len(labels)))
	for _, lb := range labels {
		l.putString(lb)
	}
	if err := l.commit(); err != nil {
		return 0, err
	}
	return l.db.CreateNode(labels...), nil
}

// CreateRel logs and applies a relationship creation.
func (l *WAL) CreateRel(from, to NodeID, typ string) (RelID, error) {
	l.begin(opCreateRel)
	l.putUvarint(uint64(from))
	l.putUvarint(uint64(to))
	l.putString(typ)
	if err := l.commit(); err != nil {
		return 0, err
	}
	return l.db.CreateRel(from, to, typ)
}

// SetNodeProp logs and applies a node property write.
func (l *WAL) SetNodeProp(id NodeID, key string, val PropValue) error {
	l.begin(opSetNodeProp)
	l.putUvarint(uint64(id))
	l.putString(key)
	l.putValue(val)
	if err := l.commit(); err != nil {
		return err
	}
	return l.db.SetNodeProp(id, key, val)
}

// SetRelProp logs and applies a relationship property write.
func (l *WAL) SetRelProp(id RelID, key string, val PropValue) error {
	l.begin(opSetRelProp)
	l.putUvarint(uint64(id))
	l.putString(key)
	l.putValue(val)
	if err := l.commit(); err != nil {
		return err
	}
	return l.db.SetRelProp(id, key, val)
}

// RemoveNodeProp logs and applies a node property removal.
func (l *WAL) RemoveNodeProp(id NodeID, key string) (bool, error) {
	l.begin(opRemoveNodeProp)
	l.putUvarint(uint64(id))
	l.putString(key)
	if err := l.commit(); err != nil {
		return false, err
	}
	return l.db.RemoveNodeProp(id, key), nil
}

// DeleteNode logs and applies a node deletion (used by the polyglot ingest
// layer to roll back a half-applied station).
func (l *WAL) DeleteNode(id NodeID) error {
	l.begin(opDeleteNode)
	l.putUvarint(uint64(id))
	if err := l.commit(); err != nil {
		return err
	}
	return l.db.DeleteNode(id)
}

// RecoverySummary reports what a replay recovered.
type RecoverySummary struct {
	walrec.Summary
	Applied int // operations applied to the store
}

// Replay applies a log produced by WAL onto db (typically a fresh store or
// one restored from the matching snapshot). It stops cleanly at EOF,
// truncates a torn or checksum-corrupt tail (losing at most the final
// record), and errors on mid-log corruption. It returns the number of
// operations applied.
func Replay(db *DB, r io.Reader) (int, error) {
	sum, err := ReplayWithSummary(db, r)
	return sum.Applied, err
}

// ReplayWithSummary is Replay with the full recovery report.
func ReplayWithSummary(db *DB, r io.Reader) (RecoverySummary, error) {
	sc := walrec.NewScanner(r)
	var sum RecoverySummary
	for {
		payload, err := sc.Next()
		if err == io.EOF {
			sum.Summary = sc.Summary()
			return sum, nil
		}
		if err != nil {
			sum.Summary = sc.Summary()
			return sum, err
		}
		if err := applyRecord(db, payload); err != nil {
			sum.Summary = sc.Summary()
			return sum, err
		}
		sum.Applied++
	}
}

// applyRecord decodes and applies one checksummed record payload.
func applyRecord(db *DB, payload []byte) error {
	br := bytes.NewReader(payload)
	op, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("graphstore: empty WAL record")
	}
	switch op {
	case opCreateNode:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if n > uint64(br.Len()) {
			return fmt.Errorf("graphstore: corrupt WAL label count %d", n)
		}
		labels := make([]string, n)
		for i := range labels {
			if labels[i], err = readString(br); err != nil {
				return err
			}
		}
		db.CreateNode(labels...)
	case opCreateRel:
		from, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		to, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		typ, err := readString(br)
		if err != nil {
			return err
		}
		if _, err := db.CreateRel(NodeID(from), NodeID(to), typ); err != nil {
			return err
		}
	case opSetNodeProp:
		id, key, val, err := readPropRecord(br)
		if err != nil {
			return err
		}
		if err := db.SetNodeProp(NodeID(id), key, val); err != nil {
			return err
		}
	case opSetRelProp:
		id, key, val, err := readPropRecord(br)
		if err != nil {
			return err
		}
		if err := db.SetRelProp(RelID(id), key, val); err != nil {
			return err
		}
	case opRemoveNodeProp:
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		key, err := readString(br)
		if err != nil {
			return err
		}
		db.RemoveNodeProp(NodeID(id), key)
	case opDeleteNode:
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if err := db.DeleteNode(NodeID(id)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("graphstore: corrupt WAL opcode %d", op)
	}
	return nil
}

func readString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", fmt.Errorf("graphstore: corrupt WAL string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readPropRecord(br *bytes.Reader) (uint64, string, PropValue, error) {
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, "", PropValue{}, err
	}
	key, err := readString(br)
	if err != nil {
		return 0, "", PropValue{}, err
	}
	val, err := readValue(br)
	return id, key, val, err
}

func readValue(br *bytes.Reader) (PropValue, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return PropValue{}, err
	}
	switch PropKind(kind) {
	case PropInt:
		v, err := binary.ReadUvarint(br)
		return IntVal(int64(v)), err
	case PropFloat:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return PropValue{}, err
		}
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case PropString:
		s, err := readString(br)
		return StrVal(s), err
	case PropBool:
		b, err := br.ReadByte()
		if err != nil {
			return PropValue{}, err
		}
		return BoolVal(b != 0), nil
	}
	return PropValue{}, fmt.Errorf("graphstore: corrupt WAL value kind %d", kind)
}

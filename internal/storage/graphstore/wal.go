package graphstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WAL is a write-ahead-logged view of a DB: every mutation is appended to
// the log before being applied, so a crashed process can rebuild the store
// by replaying the log (Replay). Combined with periodic Save snapshots this
// gives the usual snapshot+log durability scheme of production stores.
type WAL struct {
	db  *DB
	w   *bufio.Writer
	err error // first write error; subsequent mutations fail fast
}

// Log record opcodes.
const (
	opCreateNode byte = iota + 1
	opCreateRel
	opSetNodeProp
	opSetRelProp
	opRemoveNodeProp
)

// NewWAL wraps a store with a log appended to w. The store should be empty
// or match the snapshot the log continues from.
func NewWAL(db *DB, w io.Writer) *WAL {
	return &WAL{db: db, w: bufio.NewWriter(w)}
}

// DB exposes the underlying store for reads.
func (l *WAL) DB() *DB { return l.db }

// Flush forces buffered log records to the underlying writer. Callers
// flush at commit points.
func (l *WAL) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.w.Flush()
}

func (l *WAL) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

func (l *WAL) writeOp(op byte, parts ...interface{}) error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.WriteByte(op); err != nil {
		return l.fail(err)
	}
	for _, p := range parts {
		switch v := p.(type) {
		case uint64:
			writeUvarint(l.w, v)
		case string:
			writeUvarint(l.w, uint64(len(v)))
			if _, err := l.w.WriteString(v); err != nil {
				return l.fail(err)
			}
		case PropValue:
			if err := l.writeValue(v); err != nil {
				return l.fail(err)
			}
		default:
			return l.fail(fmt.Errorf("graphstore: unsupported WAL field %T", p))
		}
	}
	return nil
}

func (l *WAL) writeValue(v PropValue) error {
	l.w.WriteByte(byte(v.Kind))
	switch v.Kind {
	case PropInt:
		writeUvarint(l.w, uint64(v.I))
	case PropFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		l.w.Write(buf[:])
	case PropString:
		writeUvarint(l.w, uint64(len(v.S)))
		l.w.WriteString(v.S)
	case PropBool:
		writeBool(l.w, v.B)
	}
	return nil
}

// CreateNode logs and applies a node creation.
func (l *WAL) CreateNode(labels ...string) (NodeID, error) {
	if err := l.writeOp(opCreateNode, uint64(len(labels))); err != nil {
		return 0, err
	}
	for _, lb := range labels {
		if err := l.writeString(lb); err != nil {
			return 0, err
		}
	}
	return l.db.CreateNode(labels...), nil
}

// writeString appends a length-prefixed string to the log.
func (l *WAL) writeString(s string) error {
	if l.err != nil {
		return l.err
	}
	writeUvarint(l.w, uint64(len(s)))
	if _, err := l.w.WriteString(s); err != nil {
		return l.fail(err)
	}
	return nil
}

// CreateRel logs and applies a relationship creation.
func (l *WAL) CreateRel(from, to NodeID, typ string) (RelID, error) {
	if err := l.writeOp(opCreateRel, uint64(from), uint64(to), typ); err != nil {
		return 0, err
	}
	return l.db.CreateRel(from, to, typ)
}

// SetNodeProp logs and applies a node property write.
func (l *WAL) SetNodeProp(id NodeID, key string, val PropValue) error {
	if err := l.writeOp(opSetNodeProp, uint64(id), key, val); err != nil {
		return err
	}
	return l.db.SetNodeProp(id, key, val)
}

// SetRelProp logs and applies a relationship property write.
func (l *WAL) SetRelProp(id RelID, key string, val PropValue) error {
	if err := l.writeOp(opSetRelProp, uint64(id), key, val); err != nil {
		return err
	}
	return l.db.SetRelProp(id, key, val)
}

// RemoveNodeProp logs and applies a node property removal.
func (l *WAL) RemoveNodeProp(id NodeID, key string) (bool, error) {
	if err := l.writeOp(opRemoveNodeProp, uint64(id), key); err != nil {
		return false, err
	}
	return l.db.RemoveNodeProp(id, key), nil
}

// Replay applies a log produced by WAL onto db (typically a fresh store or
// one restored from the matching snapshot). It stops cleanly at EOF and
// returns the number of operations applied.
func Replay(db *DB, r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	applied := 0
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		switch op {
		case opCreateNode:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return applied, err
			}
			labels := make([]string, n)
			for i := range labels {
				if labels[i], err = readString(br); err != nil {
					return applied, err
				}
			}
			db.CreateNode(labels...)
		case opCreateRel:
			from, err := binary.ReadUvarint(br)
			if err != nil {
				return applied, err
			}
			to, err := binary.ReadUvarint(br)
			if err != nil {
				return applied, err
			}
			typ, err := readString(br)
			if err != nil {
				return applied, err
			}
			if _, err := db.CreateRel(NodeID(from), NodeID(to), typ); err != nil {
				return applied, err
			}
		case opSetNodeProp:
			id, key, val, err := readPropRecord(br)
			if err != nil {
				return applied, err
			}
			if err := db.SetNodeProp(NodeID(id), key, val); err != nil {
				return applied, err
			}
		case opSetRelProp:
			id, key, val, err := readPropRecord(br)
			if err != nil {
				return applied, err
			}
			if err := db.SetRelProp(RelID(id), key, val); err != nil {
				return applied, err
			}
		case opRemoveNodeProp:
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return applied, err
			}
			key, err := readString(br)
			if err != nil {
				return applied, err
			}
			db.RemoveNodeProp(NodeID(id), key)
		default:
			return applied, fmt.Errorf("graphstore: corrupt WAL opcode %d", op)
		}
		applied++
	}
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readPropRecord(br *bufio.Reader) (uint64, string, PropValue, error) {
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, "", PropValue{}, err
	}
	key, err := readString(br)
	if err != nil {
		return 0, "", PropValue{}, err
	}
	val, err := readValue(br)
	return id, key, val, err
}

func readValue(br *bufio.Reader) (PropValue, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return PropValue{}, err
	}
	switch PropKind(kind) {
	case PropInt:
		v, err := binary.ReadUvarint(br)
		return IntVal(int64(v)), err
	case PropFloat:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return PropValue{}, err
		}
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case PropString:
		s, err := readString(br)
		return StrVal(s), err
	case PropBool:
		b, err := readBool(br)
		return BoolVal(b), err
	}
	return PropValue{}, fmt.Errorf("graphstore: corrupt WAL value kind %d", kind)
}

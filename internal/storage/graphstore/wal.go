package graphstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hygraph/internal/faults"
	"hygraph/internal/storage/walrec"
)

// Fault points consulted by the graph-store WAL (see internal/faults).
const (
	// FaultWALAppend fires before a record is applied or buffered; an
	// injected error leaves both the store and the log untouched, so
	// transient injections are safely retryable.
	FaultWALAppend = "graphstore.wal.append"
	// FaultWALFlush fires before buffered records reach the underlying
	// writer — the classic "crash at commit" moment.
	FaultWALFlush = "graphstore.wal.flush"
)

// WAL is a write-ahead-logged view of a DB: every mutation is appended to
// the log before being applied, so a crashed process can rebuild the store
// by replaying the log (Replay). Records are framed with a length prefix and
// a CRC32C checksum (internal/storage/walrec), so replay detects torn tails
// and flipped bits instead of resurrecting garbage. Combined with periodic
// Save snapshots this gives the usual snapshot+log durability scheme of
// production stores.
//
// Appends run through a group-commit writer: each mutation enqueues its
// framed record (no I/O, safe from many goroutines) and Flush coalesces
// everything pending into one buffered write + flush. Creations log explicit
// ids (reserved from the store's atomic allocators before logging), so the
// interleaving of concurrent writers' records in the log is harmless —
// replay recreates every element under its recorded id.
type WAL struct {
	db *DB
	gw *walrec.GroupWriter

	obs walObs // metric handles; zero value = instrumentation off
}

// Log record opcodes. The explicit-id variants are what the WAL writes
// today; the id-less originals remain decodable for logs written before
// group commit.
const (
	opCreateNode byte = iota + 1
	opCreateRel
	opSetNodeProp
	opSetRelProp
	opRemoveNodeProp
	opDeleteNode
	opCreateNodeAt
	opCreateRelAt
)

// NewWAL wraps a store with a log appended to w. The store should be empty
// or match the snapshot the log continues from.
func NewWAL(db *DB, w io.Writer) *WAL {
	l := &WAL{db: db, gw: walrec.NewGroup(walrec.NewWriter(w))}
	// The flush fault point and flush counter live in the group writer's
	// hooks so they fire once per physical flush — exactly once per Flush
	// call for a single writer, once per coalesced batch under load.
	l.gw.SetHooks(
		func() error { return faults.Check(FaultWALFlush) },
		func(int) { l.obs.flushes.Inc() },
	)
	return l
}

// SetMaxBatch bounds group-commit batches; 1 restores per-record flushing
// (the single-lock baseline of the mixed-throughput benchmark). Call before
// the WAL is shared.
func (l *WAL) SetMaxBatch(n int) { l.gw.SetMaxBatch(n) }

// DB exposes the underlying store for reads.
func (l *WAL) DB() *DB { return l.db }

// Err returns the WAL's latched write error, if any.
func (l *WAL) Err() error { return l.gw.Err() }

// Flush makes every record enqueued so far durable: the caller either leads
// one coalesced write+flush of the batch window or rides a flush already in
// flight. Callers flush at commit points.
func (l *WAL) Flush() error { return l.gw.Sync() }

// Commit makes every record enqueued so far durable without forcing a
// physical flush of its own: a committer whose records another leader
// already covered returns immediately. Streaming callers use this instead
// of Flush so concurrent writers coalesce into shared flushes.
func (l *WAL) Commit() error { return l.gw.Commit(l.gw.Enqueued()) }

// Payload builders: a record is fully materialized in a local buffer before
// any byte reaches the framed writer, so a failed record is never
// half-buffered, a latched error can never flush a partial record, and
// concurrent writers can build records without sharing state.

func putString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func putValue(buf []byte, v PropValue) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case PropInt:
		buf = binary.AppendUvarint(buf, uint64(v.I))
	case PropFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case PropString:
		buf = putString(buf, v.S)
	case PropBool:
		if v.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// commit enqueues the fully built record for the next group-commit window.
func (l *WAL) commit(payload []byte) error {
	if err := faults.Check(FaultWALAppend); err != nil {
		return err
	}
	if _, err := l.gw.Append(payload); err != nil {
		return err
	}
	l.obs.appends.Inc()
	l.obs.bytes.Add(int64(len(payload)))
	return nil
}

// CreateNode reserves an id, logs and applies the node creation. A reserved
// id whose record never reaches the log is forgotten by recovery and reused
// after restart.
func (l *WAL) CreateNode(labels ...string) (NodeID, error) {
	id := l.db.AllocNodeID()
	if err := l.CreateNodeAt(id, labels...); err != nil {
		return 0, err
	}
	return id, nil
}

// CreateNodeAt logs and applies a node creation under a pre-reserved id.
func (l *WAL) CreateNodeAt(id NodeID, labels ...string) error {
	buf := []byte{opCreateNodeAt}
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = binary.AppendUvarint(buf, uint64(len(labels)))
	for _, lb := range labels {
		buf = putString(buf, lb)
	}
	if err := l.commit(buf); err != nil {
		return err
	}
	l.db.CreateNodeAt(id, labels...)
	return nil
}

// CreateRel reserves an id, logs and applies a relationship creation.
func (l *WAL) CreateRel(from, to NodeID, typ string) (RelID, error) {
	if !l.db.NodeExists(from) || !l.db.NodeExists(to) {
		return 0, fmt.Errorf("graphstore: endpoints %d->%d missing", from, to)
	}
	id := l.db.AllocRelID()
	buf := []byte{opCreateRelAt}
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(to))
	buf = putString(buf, typ)
	if err := l.commit(buf); err != nil {
		return 0, err
	}
	if err := l.db.CreateRelAt(id, from, to, typ); err != nil {
		return 0, err
	}
	return id, nil
}

// SetNodeProp logs and applies a node property write.
func (l *WAL) SetNodeProp(id NodeID, key string, val PropValue) error {
	buf := []byte{opSetNodeProp}
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = putString(buf, key)
	buf = putValue(buf, val)
	if err := l.commit(buf); err != nil {
		return err
	}
	return l.db.SetNodeProp(id, key, val)
}

// SetRelProp logs and applies a relationship property write.
func (l *WAL) SetRelProp(id RelID, key string, val PropValue) error {
	buf := []byte{opSetRelProp}
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = putString(buf, key)
	buf = putValue(buf, val)
	if err := l.commit(buf); err != nil {
		return err
	}
	return l.db.SetRelProp(id, key, val)
}

// RemoveNodeProp logs and applies a node property removal.
func (l *WAL) RemoveNodeProp(id NodeID, key string) (bool, error) {
	buf := []byte{opRemoveNodeProp}
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = putString(buf, key)
	if err := l.commit(buf); err != nil {
		return false, err
	}
	return l.db.RemoveNodeProp(id, key), nil
}

// DeleteNode logs and applies a node deletion (used by the polyglot ingest
// layer to roll back a half-applied station).
func (l *WAL) DeleteNode(id NodeID) error {
	buf := []byte{opDeleteNode}
	buf = binary.AppendUvarint(buf, uint64(id))
	if err := l.commit(buf); err != nil {
		return err
	}
	return l.db.DeleteNode(id)
}

// RecoverySummary reports what a replay recovered.
type RecoverySummary struct {
	walrec.Summary
	Applied int // operations applied to the store
}

// Replay applies a log produced by WAL onto db (typically a fresh store or
// one restored from the matching snapshot). It stops cleanly at EOF,
// truncates a torn or checksum-corrupt tail (losing at most the final
// record), and errors on mid-log corruption. It returns the number of
// operations applied.
func Replay(db *DB, r io.Reader) (int, error) {
	sum, err := ReplayWithSummary(db, r)
	return sum.Applied, err
}

// ReplayWithSummary is Replay with the full recovery report.
func ReplayWithSummary(db *DB, r io.Reader) (RecoverySummary, error) {
	sc := walrec.NewScanner(r)
	var sum RecoverySummary
	for {
		payload, err := sc.Next()
		if err == io.EOF {
			sum.Summary = sc.Summary()
			return sum, nil
		}
		if err != nil {
			sum.Summary = sc.Summary()
			return sum, err
		}
		if err := applyRecord(db, payload); err != nil {
			sum.Summary = sc.Summary()
			return sum, err
		}
		sum.Applied++
	}
}

// applyRecord decodes and applies one checksummed record payload.
func applyRecord(db *DB, payload []byte) error {
	br := bytes.NewReader(payload)
	op, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("graphstore: empty WAL record")
	}
	switch op {
	case opCreateNode:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if n > uint64(br.Len()) {
			return fmt.Errorf("graphstore: corrupt WAL label count %d", n)
		}
		labels := make([]string, n)
		for i := range labels {
			if labels[i], err = readString(br); err != nil {
				return err
			}
		}
		db.CreateNode(labels...)
	case opCreateRel:
		from, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		to, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		typ, err := readString(br)
		if err != nil {
			return err
		}
		if _, err := db.CreateRel(NodeID(from), NodeID(to), typ); err != nil {
			return err
		}
	case opCreateNodeAt:
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if n > uint64(br.Len()) {
			return fmt.Errorf("graphstore: corrupt WAL label count %d", n)
		}
		labels := make([]string, n)
		for i := range labels {
			if labels[i], err = readString(br); err != nil {
				return err
			}
		}
		db.CreateNodeAt(NodeID(id), labels...)
	case opCreateRelAt:
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		from, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		to, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		typ, err := readString(br)
		if err != nil {
			return err
		}
		if err := db.CreateRelAt(RelID(id), NodeID(from), NodeID(to), typ); err != nil {
			return err
		}
	case opSetNodeProp:
		id, key, val, err := readPropRecord(br)
		if err != nil {
			return err
		}
		if err := db.SetNodeProp(NodeID(id), key, val); err != nil {
			return err
		}
	case opSetRelProp:
		id, key, val, err := readPropRecord(br)
		if err != nil {
			return err
		}
		if err := db.SetRelProp(RelID(id), key, val); err != nil {
			return err
		}
	case opRemoveNodeProp:
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		key, err := readString(br)
		if err != nil {
			return err
		}
		db.RemoveNodeProp(NodeID(id), key)
	case opDeleteNode:
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if err := db.DeleteNode(NodeID(id)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("graphstore: corrupt WAL opcode %d", op)
	}
	return nil
}

func readString(br *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", fmt.Errorf("graphstore: corrupt WAL string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readPropRecord(br *bytes.Reader) (uint64, string, PropValue, error) {
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, "", PropValue{}, err
	}
	key, err := readString(br)
	if err != nil {
		return 0, "", PropValue{}, err
	}
	val, err := readValue(br)
	return id, key, val, err
}

func readValue(br *bytes.Reader) (PropValue, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return PropValue{}, err
	}
	switch PropKind(kind) {
	case PropInt:
		v, err := binary.ReadUvarint(br)
		return IntVal(int64(v)), err
	case PropFloat:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return PropValue{}, err
		}
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case PropString:
		s, err := readString(br)
		return StrVal(s), err
	case PropBool:
		b, err := br.ReadByte()
		if err != nil {
			return PropValue{}, err
		}
		return BoolVal(b != 0), nil
	}
	return PropValue{}, fmt.Errorf("graphstore: corrupt WAL value kind %d", kind)
}

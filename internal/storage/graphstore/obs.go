package graphstore

import "hygraph/internal/obs"

// storeObs holds the store's preallocated metric handles. The zero value
// (all nil) is the disabled state: every increment is a nil-check no-op.
type storeObs struct {
	reads       *obs.Counter // read-path entry points (prop gets, chain walks, neighbor scans)
	writes      *obs.Counter // mutations (create/set/remove/delete)
	propScanned *obs.Counter // property records visited by chain scans
}

// Instrument attaches metric handles from r to the store. Call it once,
// before the store is shared across goroutines — handle installation is not
// synchronized with concurrent operations. A nil registry detaches
// instrumentation (handles revert to no-op sinks).
func (db *DB) Instrument(r *obs.Registry) {
	db.obs = storeObs{
		reads:       r.Counter("graphstore.reads"),
		writes:      r.Counter("graphstore.writes"),
		propScanned: r.Counter("graphstore.prop_records_scanned"),
	}
}

// walObs holds the WAL's preallocated metric handles; zero value = disabled.
type walObs struct {
	appends *obs.Counter // records appended (post-success)
	bytes   *obs.Counter // payload bytes appended
	flushes *obs.Counter // successful flushes (fsync-equivalents)
}

// Instrument attaches metric handles from r to the WAL. Call before the log
// is shared; a nil registry detaches.
func (l *WAL) Instrument(r *obs.Registry) {
	l.obs = walObs{
		appends: r.Counter("graphstore.wal.appends"),
		bytes:   r.Counter("graphstore.wal.append_bytes"),
		flushes: r.Counter("graphstore.wal.flushes"),
	}
}

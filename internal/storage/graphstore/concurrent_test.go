package graphstore

import (
	"reflect"
	"sync"
	"testing"
)

// Concurrent readers across the whole read surface must be race-free and
// agree with single-threaded answers while writers extend the graph.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := New()
	var stations []NodeID
	for i := 0; i < 10; i++ {
		st := db.CreateNode("Station")
		if err := db.SetNodeProp(st, "district", StrVal([]string{"n", "s"}[i%2])); err != nil {
			t.Fatal(err)
		}
		stations = append(stations, st)
	}
	for i := range stations {
		if _, err := db.CreateRel(stations[i], stations[(i+1)%len(stations)], "TRIP"); err != nil {
			t.Fatal(err)
		}
	}
	wantNeighbors := db.Neighbors(stations[0], "TRIP")
	wantLabels := db.Labels(stations[3])

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				st := stations[(c+i)%len(stations)]
				db.NumNodes()
				db.NumRels()
				db.NodeExists(st)
				db.NodeProp(st, "district")
				db.NodePropCount(st)
				db.NodeProps(st, func(string, PropValue) bool { return true })
				db.OutNeighbors(st, "TRIP")
				db.Stats()
				if got := db.Neighbors(stations[0], "TRIP"); !reflect.DeepEqual(got, wantNeighbors) {
					t.Error("Neighbors unstable under concurrency")
					return
				}
				if got := db.Labels(stations[3]); !reflect.DeepEqual(got, wantLabels) {
					t.Error("Labels unstable under concurrency")
					return
				}
				if got := db.NodesByLabel("Station"); len(got) < len(stations) {
					t.Error("NodesByLabel lost nodes")
					return
				}
			}
		}(c)
	}
	// Writers add disjoint subgraphs alongside the readers.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				n := db.CreateNode("Depot")
				if err := db.SetNodeProp(n, "i", IntVal(int64(i))); err != nil {
					t.Error(err)
					return
				}
				m := db.CreateNode("Depot")
				r, err := db.CreateRel(n, m, "FEEDS")
				if err != nil {
					t.Error(err)
					return
				}
				if err := db.SetRelProp(r, "w", IntVal(1)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := db.DeleteRel(r); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if got := len(db.NodesByLabel("Depot")); got != 2*10*2 {
		t.Fatalf("depots after concurrent ingest: %d", got)
	}
}

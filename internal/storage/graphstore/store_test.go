package graphstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCreateAndLabels(t *testing.T) {
	db := New()
	a := db.CreateNode("Station", "Dock")
	b := db.CreateNode("Station")
	if db.NumNodes() != 2 {
		t.Fatalf("nodes=%d", db.NumNodes())
	}
	ls := db.Labels(a)
	if len(ls) != 2 || ls[0] != "Station" || ls[1] != "Dock" {
		t.Fatalf("labels=%v", ls)
	}
	got := db.NodesByLabel("Station")
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("by label=%v", got)
	}
	if db.NodesByLabel("Nope") != nil {
		t.Fatal("unknown label")
	}
	if db.Labels(99) != nil {
		t.Fatal("missing node labels")
	}
}

func TestRelChains(t *testing.T) {
	db := New()
	a := db.CreateNode("A")
	b := db.CreateNode("B")
	c := db.CreateNode("C")
	r1, err := db.CreateRel(a, b, "KNOWS")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := db.CreateRel(a, c, "KNOWS")
	r3, _ := db.CreateRel(b, a, "LIKES")
	if db.NumRels() != 3 {
		t.Fatalf("rels=%d", db.NumRels())
	}
	// a participates in all three.
	var seen []RelID
	db.Rels(a, func(r Rel) bool { seen = append(seen, r.ID); return true })
	if len(seen) != 3 {
		t.Fatalf("a's chain=%v", seen)
	}
	// b participates in r1 and r3.
	seen = seen[:0]
	db.Rels(b, func(r Rel) bool { seen = append(seen, r.ID); return true })
	if len(seen) != 2 {
		t.Fatalf("b's chain=%v", seen)
	}
	_ = r1
	_ = r2
	_ = r3
	// Missing endpoint errors.
	if _, err := db.CreateRel(a, 99, "X"); err == nil {
		t.Fatal("rel to missing node accepted")
	}
	// Neighbors by type.
	if got := db.OutNeighbors(a, "KNOWS"); len(got) != 2 {
		t.Fatalf("out KNOWS=%v", got)
	}
	if got := db.Neighbors(a, ""); len(got) != 2 { // b and c
		t.Fatalf("neighbors=%v", got)
	}
	if got := db.Neighbors(b, "LIKES"); len(got) != 1 || got[0] != a {
		t.Fatalf("b LIKES=%v", got)
	}
}

func TestSelfLoop(t *testing.T) {
	db := New()
	a := db.CreateNode("A")
	if _, err := db.CreateRel(a, a, "SELF"); err != nil {
		t.Fatal(err)
	}
	count := 0
	db.Rels(a, func(Rel) bool { count++; return true })
	if count != 1 {
		t.Fatalf("self loop visited %d times", count)
	}
	if got := db.Neighbors(a, ""); len(got) != 0 {
		t.Fatalf("self neighbor=%v", got)
	}
}

func TestPropertyChains(t *testing.T) {
	db := New()
	a := db.CreateNode("A")
	if err := db.SetNodeProp(a, "x", IntVal(1)); err != nil {
		t.Fatal(err)
	}
	db.SetNodeProp(a, "y", FloatVal(2.5))
	db.SetNodeProp(a, "s", StrVal("hello"))
	db.SetNodeProp(a, "b", BoolVal(true))
	if v, ok := db.NodeProp(a, "x"); !ok || v.I != 1 {
		t.Fatalf("x=%v", v)
	}
	if v, ok := db.NodeProp(a, "y"); !ok || v.F != 2.5 {
		t.Fatalf("y=%v", v)
	}
	if v, ok := db.NodeProp(a, "s"); !ok || v.S != "hello" {
		t.Fatalf("s=%v", v)
	}
	if v, ok := db.NodeProp(a, "b"); !ok || !v.B {
		t.Fatalf("b=%v", v)
	}
	// Update in place.
	db.SetNodeProp(a, "x", IntVal(42))
	if db.NodePropCount(a) != 4 {
		t.Fatalf("chain length=%d after update", db.NodePropCount(a))
	}
	if v, _ := db.NodeProp(a, "x"); v.I != 42 {
		t.Fatalf("x after update=%v", v)
	}
	// Missing key / node.
	if _, ok := db.NodeProp(a, "nope"); ok {
		t.Fatal("missing key")
	}
	if _, ok := db.NodeProp(99, "x"); ok {
		t.Fatal("missing node")
	}
	if err := db.SetNodeProp(99, "x", IntVal(1)); err == nil {
		t.Fatal("set on missing node")
	}
}

func TestRemovePropRecycles(t *testing.T) {
	db := New()
	a := db.CreateNode("A")
	for i := 0; i < 5; i++ {
		db.SetNodeProp(a, fmt.Sprintf("k%d", i), IntVal(int64(i)))
	}
	before := db.Stats().Props
	if !db.RemoveNodeProp(a, "k2") {
		t.Fatal("remove existing")
	}
	if db.RemoveNodeProp(a, "k2") {
		t.Fatal("double remove")
	}
	if db.NodePropCount(a) != 4 {
		t.Fatalf("count after remove=%d", db.NodePropCount(a))
	}
	// A new property reuses the freed record.
	db.SetNodeProp(a, "k9", IntVal(9))
	if db.Stats().Props != before {
		t.Fatalf("records grew: %d -> %d", before, db.Stats().Props)
	}
	if v, ok := db.NodeProp(a, "k9"); !ok || v.I != 9 {
		t.Fatal("recycled record value")
	}
}

func TestRelProps(t *testing.T) {
	db := New()
	a := db.CreateNode("A")
	b := db.CreateNode("B")
	r, _ := db.CreateRel(a, b, "T")
	if err := db.SetRelProp(r, "w", FloatVal(1.5)); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.RelProp(r, "w"); !ok || v.F != 1.5 {
		t.Fatalf("w=%v", v)
	}
	if err := db.SetRelProp(99, "w", IntVal(1)); err == nil {
		t.Fatal("missing rel")
	}
}

func TestPropValueRendering(t *testing.T) {
	if IntVal(3).String() != "3" || FloatVal(2.5).String() != "2.5" ||
		StrVal("x").String() != "x" || BoolVal(true).String() != "true" {
		t.Fatal("renderings")
	}
	if f, ok := IntVal(3).AsFloat(); !ok || f != 3 {
		t.Fatal("int as float")
	}
	if _, ok := StrVal("x").AsFloat(); ok {
		t.Fatal("string as float")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(1))
	var nodes []NodeID
	for i := 0; i < 20; i++ {
		nodes = append(nodes, db.CreateNode([]string{"A", "B"}[i%2]))
	}
	for i := 0; i < 40; i++ {
		a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		r, _ := db.CreateRel(a, b, "T")
		db.SetRelProp(r, "w", FloatVal(rng.Float64()))
	}
	for _, n := range nodes {
		db.SetNodeProp(n, "x", IntVal(int64(n)))
		db.SetNodeProp(n, "name", StrVal(fmt.Sprintf("node-%d", n)))
	}
	db.RemoveNodeProp(nodes[3], "x") // exercise free list persistence

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != db.NumNodes() || back.NumRels() != db.NumRels() {
		t.Fatalf("counts after load: %d/%d", back.NumNodes(), back.NumRels())
	}
	for _, n := range nodes {
		want, okW := db.NodeProp(n, "x")
		got, okG := back.NodeProp(n, "x")
		if okW != okG || (okW && want != got) {
			t.Fatalf("node %d prop x: %v/%v vs %v/%v", n, want, okW, got, okG)
		}
		if nm, _ := back.NodeProp(n, "name"); nm.S != fmt.Sprintf("node-%d", n) {
			t.Fatalf("node %d name=%q", n, nm.S)
		}
		// Adjacency preserved.
		var a, b int
		db.Rels(n, func(Rel) bool { a++; return true })
		back.Rels(n, func(Rel) bool { b++; return true })
		if a != b {
			t.Fatalf("node %d rel chain %d vs %d", n, a, b)
		}
	}
	if got := back.NodesByLabel("A"); len(got) != 10 {
		t.Fatalf("label index after load: %d", len(got))
	}
	// Free list survives: adding a property in the shard holding the freed
	// record reuses it (free lists are per shard).
	stats := back.Stats()
	back.SetNodeProp(nodes[3], "fresh", IntVal(1))
	if back.Stats().Props != stats.Props {
		t.Fatal("free list lost on load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

// Property: set/get round trips for arbitrary keys and values on one node.
func TestQuickPropRoundTrip(t *testing.T) {
	db := New()
	n := db.CreateNode("N")
	f := func(keys []string, vals []int64) bool {
		want := map[string]int64{}
		for i, k := range keys {
			if i >= len(vals) {
				break
			}
			db.SetNodeProp(n, k, IntVal(vals[i]))
			want[k] = vals[i]
		}
		for k, v := range want {
			got, ok := db.NodeProp(n, k)
			if !ok || got.I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package graphstore implements a Neo4j-style record-oriented graph store:
// node and relationship records with relationship linked lists per node, and
// properties stored as *linked chains of property records* holding typed
// payloads and interned keys.
//
// The design deliberately mirrors the storage layout that makes the paper's
// Table 1 happen: when a time series is stored "all in graph" — every
// (timestamp, value) pair as a separate property, as the paper's Neo4j
// baseline does — each access walks an O(n) property chain and decodes
// every record it passes. Range scans and aggregations over the series
// therefore degrade linearly with series length per entity, which is exactly
// the bottleneck the paper measures (Q4–Q8 at tens of seconds vs
// milliseconds in the polyglot layout).
package graphstore

import (
	"fmt"
	"math"
	"sync"
)

// NodeID identifies a node record.
type NodeID uint32

// RelID identifies a relationship record.
type RelID uint32

// nilRef is the null pointer of record chains.
const nilRef = ^uint32(0)

// PropKind is the type tag of a property record.
type PropKind uint8

// Property kinds.
const (
	PropInt PropKind = iota
	PropFloat
	PropString
	PropBool
)

// PropValue is a decoded property value.
type PropValue struct {
	Kind PropKind
	I    int64
	F    float64
	S    string
	B    bool
}

// IntVal wraps an int64.
func IntVal(i int64) PropValue { return PropValue{Kind: PropInt, I: i} }

// FloatVal wraps a float64.
func FloatVal(f float64) PropValue { return PropValue{Kind: PropFloat, F: f} }

// StrVal wraps a string.
func StrVal(s string) PropValue { return PropValue{Kind: PropString, S: s} }

// BoolVal wraps a bool.
func BoolVal(b bool) PropValue { return PropValue{Kind: PropBool, B: b} }

// AsFloat widens numeric values to float64.
func (v PropValue) AsFloat() (float64, bool) {
	switch v.Kind {
	case PropFloat:
		return v.F, true
	case PropInt:
		return float64(v.I), true
	}
	return 0, false
}

// String renders the value.
func (v PropValue) String() string {
	switch v.Kind {
	case PropInt:
		return fmt.Sprintf("%d", v.I)
	case PropFloat:
		return fmt.Sprintf("%g", v.F)
	case PropString:
		return v.S
	case PropBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// nodeRec is a node record: label refs plus heads of its relationship and
// property chains.
type nodeRec struct {
	inUse     bool
	labels    []uint32
	firstRel  uint32
	firstProp uint32
}

// relRec is a relationship record. fromNext/toNext thread this record into
// the source's and target's relationship chains (Neo4j's doubly-linked
// relationship store, simplified to singly-linked).
type relRec struct {
	inUse     bool
	from, to  NodeID
	typ       uint32
	fromNext  uint32
	toNext    uint32
	firstProp uint32
}

// propRec is one property record in a chain. num carries int64 bits, float64
// bits, or bool; str references the interned string table.
type propRec struct {
	inUse bool
	key   uint32
	kind  PropKind
	num   uint64
	str   uint32
	next  uint32
}

// DB is an in-memory record store. All exported methods are safe for
// concurrent use: reads take a shared lock and run in parallel with each
// other (the fan-out path of the parallel Q4–Q8 executor), while mutations
// take the lock exclusively. Callbacks passed to iteration methods
// (NodeProps, Rels) run under the read lock and must not call back into
// mutating methods of the same DB.
type DB struct {
	mu    sync.RWMutex
	nodes []nodeRec
	rels  []relRec
	props []propRec

	strings  []string
	strIndex map[string]uint32

	labelIndex map[uint32][]NodeID
	freeProps  []uint32 // recycled property records

	obs storeObs // metric handles; zero value = instrumentation off
}

// New returns an empty store.
func New() *DB {
	return &DB{
		strIndex:   map[string]uint32{},
		labelIndex: map[uint32][]NodeID{},
	}
}

// NumNodes returns the number of live nodes.
func (db *DB) NumNodes() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for i := range db.nodes {
		if db.nodes[i].inUse {
			n++
		}
	}
	return n
}

// NumRels returns the number of live relationships.
func (db *DB) NumRels() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for i := range db.rels {
		if db.rels[i].inUse {
			n++
		}
	}
	return n
}

// intern returns the id of s in the string table, adding it if new.
func (db *DB) intern(s string) uint32 {
	if id, ok := db.strIndex[s]; ok {
		return id
	}
	id := uint32(len(db.strings))
	db.strings = append(db.strings, s)
	db.strIndex[s] = id
	return id
}

// CreateNode allocates a node with the given labels.
func (db *DB) CreateNode(labels ...string) NodeID {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	id := NodeID(len(db.nodes))
	rec := nodeRec{inUse: true, firstRel: nilRef, firstProp: nilRef}
	for _, l := range labels {
		lid := db.intern(l)
		rec.labels = append(rec.labels, lid)
		db.labelIndex[lid] = append(db.labelIndex[lid], id)
	}
	db.nodes = append(db.nodes, rec)
	return id
}

// CreateRel allocates a relationship from -> to of the given type, threading
// it into both endpoints' relationship chains.
func (db *DB) CreateRel(from, to NodeID, typ string) (RelID, error) {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.nodeOK(from) || !db.nodeOK(to) {
		return 0, fmt.Errorf("graphstore: endpoints %d->%d missing", from, to)
	}
	id := RelID(len(db.rels))
	rec := relRec{
		inUse: true, from: from, to: to, typ: db.intern(typ),
		fromNext:  db.nodes[from].firstRel,
		toNext:    db.nodes[to].firstRel,
		firstProp: nilRef,
	}
	db.rels = append(db.rels, rec)
	db.nodes[from].firstRel = uint32(id)
	if to != from {
		db.nodes[to].firstRel = uint32(id)
	}
	return id, nil
}

func (db *DB) nodeOK(id NodeID) bool {
	return int(id) < len(db.nodes) && db.nodes[id].inUse
}

func (db *DB) relOK(id RelID) bool {
	return int(id) < len(db.rels) && db.rels[id].inUse
}

// NextNodeID returns the id the next CreateNode call will allocate. Ids are
// assigned by append order and never reused, so replaying a WAL assigns the
// same ids — the polyglot ingest journal relies on this to name a node in
// its intent record before the node exists. The prediction only holds while
// a single writer drives the store (the durable ingest layer is
// single-writer by design; see docs/PARALLELISM.md).
func (db *DB) NextNodeID() NodeID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return NodeID(len(db.nodes))
}

// NodeExists reports whether id names a live node (false for deleted ids).
func (db *DB) NodeExists(id NodeID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nodeOK(id)
}

// relNextFor returns the next pointer that threads rel record ref into node
// n's relationship chain.
func (db *DB) relNextFor(ref uint32, n NodeID) uint32 {
	if db.rels[ref].from == n {
		return db.rels[ref].fromNext
	}
	return db.rels[ref].toNext
}

// unlinkRel removes rel record rid from node n's relationship chain.
func (db *DB) unlinkRel(n NodeID, rid uint32) {
	head := &db.nodes[n].firstRel
	prev := nilRef
	for ref := *head; ref != nilRef; ref = db.relNextFor(ref, n) {
		if ref == rid {
			next := db.relNextFor(ref, n)
			if prev == nilRef {
				*head = next
			} else if db.rels[prev].from == n {
				db.rels[prev].fromNext = next
			} else {
				db.rels[prev].toNext = next
			}
			return
		}
		prev = ref
	}
}

// freePropChain recycles every record of a property chain.
func (db *DB) freePropChain(head uint32) {
	for ref := head; ref != nilRef; {
		next := db.props[ref].next
		db.props[ref] = propRec{}
		db.freeProps = append(db.freeProps, ref)
		ref = next
	}
}

// DeleteRel removes a relationship: unlinks it from both endpoints' chains,
// recycles its properties and marks the record dead. Record ids are never
// reused.
func (db *DB) DeleteRel(id RelID) error {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteRelLocked(id)
}

func (db *DB) deleteRelLocked(id RelID) error {
	if !db.relOK(id) {
		return fmt.Errorf("graphstore: no rel %d", id)
	}
	r := db.rels[id]
	db.unlinkRel(r.from, uint32(id))
	if r.to != r.from {
		db.unlinkRel(r.to, uint32(id))
	}
	db.freePropChain(r.firstProp)
	db.rels[id] = relRec{}
	db.rels[id].inUse = false
	return nil
}

// DeleteNode removes a node along with its incident relationships and
// properties, and drops it from the label index. The crash-recovery layer
// uses this to roll back a half-ingested entity; node ids are never reused,
// so later WAL records stay valid.
func (db *DB) DeleteNode(id NodeID) error {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.nodeOK(id) {
		return fmt.Errorf("graphstore: no node %d", id)
	}
	// Collect incident rels first: deletion mutates the chain being walked.
	var incident []RelID
	for ref := db.nodes[id].firstRel; ref != nilRef; ref = db.relNextFor(ref, id) {
		incident = append(incident, RelID(ref))
	}
	for _, rid := range incident {
		if db.relOK(rid) {
			if err := db.deleteRelLocked(rid); err != nil {
				return err
			}
		}
	}
	db.freePropChain(db.nodes[id].firstProp)
	for _, lid := range db.nodes[id].labels {
		ids := db.labelIndex[lid]
		for i, nid := range ids {
			if nid == id {
				db.labelIndex[lid] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	}
	db.nodes[id] = nodeRec{firstRel: nilRef, firstProp: nilRef}
	return nil
}

// NodesByLabel returns the nodes carrying the label in creation order.
func (db *DB) NodesByLabel(label string) []NodeID {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	lid, ok := db.strIndex[label]
	if !ok {
		return nil
	}
	var out []NodeID
	for _, id := range db.labelIndex[lid] {
		if db.nodeOK(id) {
			out = append(out, id)
		}
	}
	return out
}

// Labels returns a node's labels.
func (db *DB) Labels(id NodeID) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.nodeOK(id) {
		return nil
	}
	out := make([]string, len(db.nodes[id].labels))
	for i, l := range db.nodes[id].labels {
		out[i] = db.strings[l]
	}
	return out
}

// allocProp takes a record from the free list or grows the store.
func (db *DB) allocProp() uint32 {
	if n := len(db.freeProps); n > 0 {
		ref := db.freeProps[n-1]
		db.freeProps = db.freeProps[:n-1]
		return ref
	}
	db.props = append(db.props, propRec{})
	return uint32(len(db.props) - 1)
}

// setProp walks the chain rooted at *head; if key exists, the record is
// updated in place, otherwise a new record is prepended (Neo4j prepends new
// properties, so recently written properties are found fastest).
func (db *DB) setProp(head *uint32, key string, val PropValue) {
	kid := db.intern(key)
	for ref := *head; ref != nilRef; ref = db.props[ref].next {
		if db.props[ref].key == kid {
			db.encodeProp(ref, kid, val)
			return
		}
	}
	ref := db.allocProp()
	db.encodeProp(ref, kid, val)
	db.props[ref].next = *head
	*head = ref
}

func (db *DB) encodeProp(ref, kid uint32, val PropValue) {
	p := &db.props[ref]
	p.inUse = true
	p.key = kid
	p.kind = val.Kind
	switch val.Kind {
	case PropInt:
		p.num = uint64(val.I)
	case PropFloat:
		p.num = math.Float64bits(val.F)
	case PropBool:
		if val.B {
			p.num = 1
		} else {
			p.num = 0
		}
	case PropString:
		p.str = db.intern(val.S)
	}
}

func (db *DB) decodeProp(ref uint32) PropValue {
	p := db.props[ref]
	switch p.kind {
	case PropInt:
		return IntVal(int64(p.num))
	case PropFloat:
		return FloatVal(math.Float64frombits(p.num))
	case PropBool:
		return BoolVal(p.num != 0)
	case PropString:
		return StrVal(db.strings[p.str])
	}
	return PropValue{}
}

// getProp walks a chain for the key.
func (db *DB) getProp(head uint32, key string) (PropValue, bool) {
	kid, ok := db.strIndex[key]
	if !ok {
		return PropValue{}, false
	}
	for ref := head; ref != nilRef; ref = db.props[ref].next {
		if db.props[ref].key == kid {
			return db.decodeProp(ref), true
		}
	}
	return PropValue{}, false
}

// removeProp unlinks a key's record from a chain and recycles it.
func (db *DB) removeProp(head *uint32, key string) bool {
	kid, ok := db.strIndex[key]
	if !ok {
		return false
	}
	prev := nilRef
	for ref := *head; ref != nilRef; ref = db.props[ref].next {
		if db.props[ref].key == kid {
			if prev == nilRef {
				*head = db.props[ref].next
			} else {
				db.props[prev].next = db.props[ref].next
			}
			db.props[ref] = propRec{}
			db.freeProps = append(db.freeProps, ref)
			return true
		}
		prev = ref
	}
	return false
}

// SetNodeProp sets a property on a node.
func (db *DB) SetNodeProp(id NodeID, key string, val PropValue) error {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.nodeOK(id) {
		return fmt.Errorf("graphstore: no node %d", id)
	}
	db.setProp(&db.nodes[id].firstProp, key, val)
	return nil
}

// NodeProp reads a property from a node, walking its chain.
func (db *DB) NodeProp(id NodeID, key string) (PropValue, bool) {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.nodeOK(id) {
		return PropValue{}, false
	}
	return db.getProp(db.nodes[id].firstProp, key)
}

// RemoveNodeProp deletes a node property.
func (db *DB) RemoveNodeProp(id NodeID, key string) bool {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.nodeOK(id) {
		return false
	}
	return db.removeProp(&db.nodes[id].firstProp, key)
}

// SetRelProp sets a property on a relationship.
func (db *DB) SetRelProp(id RelID, key string, val PropValue) error {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.relOK(id) {
		return fmt.Errorf("graphstore: no rel %d", id)
	}
	db.setProp(&db.rels[id].firstProp, key, val)
	return nil
}

// RelProp reads a relationship property.
func (db *DB) RelProp(id RelID, key string) (PropValue, bool) {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.relOK(id) {
		return PropValue{}, false
	}
	return db.getProp(db.rels[id].firstProp, key)
}

// NodeProps walks a node's full property chain, calling fn with every
// key/value. This is the scan primitive that all-in-graph time-series
// queries are forced through. fn runs under the store's read lock and must
// not mutate the store.
func (db *DB) NodeProps(id NodeID, fn func(key string, val PropValue) bool) {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.nodePropsLocked(id, fn)
}

func (db *DB) nodePropsLocked(id NodeID, fn func(key string, val PropValue) bool) {
	if !db.nodeOK(id) {
		return
	}
	// Records visited are accumulated locally and published with one atomic
	// add, so instrumented chain scans don't pay a per-record atomic.
	visited := int64(0)
	for ref := db.nodes[id].firstProp; ref != nilRef; ref = db.props[ref].next {
		visited++
		if !fn(db.strings[db.props[ref].key], db.decodeProp(ref)) {
			break
		}
	}
	db.obs.propScanned.Add(visited)
}

// NodePropCount returns the length of the node's property chain.
func (db *DB) NodePropCount(id NodeID) int {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	db.nodePropsLocked(id, func(string, PropValue) bool { n++; return true })
	return n
}

// Rel describes a relationship during iteration.
type Rel struct {
	ID   RelID
	From NodeID
	To   NodeID
	Type string
}

// Rels walks the relationship chain of a node (both directions interleaved,
// most recent first), calling fn for each. fn runs under the store's read
// lock and must not mutate the store.
func (db *DB) Rels(id NodeID, fn func(Rel) bool) {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.relsLocked(id, fn)
}

func (db *DB) relsLocked(id NodeID, fn func(Rel) bool) {
	if !db.nodeOK(id) {
		return
	}
	for ref := db.nodes[id].firstRel; ref != nilRef; {
		r := db.rels[ref]
		if !fn(Rel{ID: RelID(ref), From: r.from, To: r.to, Type: db.strings[r.typ]}) {
			return
		}
		switch {
		case r.from == id:
			ref = r.fromNext
		case r.to == id:
			ref = r.toNext
		default:
			return // corrupted chain; stop rather than loop
		}
	}
}

// OutNeighbors returns the targets of outgoing relationships of the given
// type ("" matches all).
func (db *DB) OutNeighbors(id NodeID, typ string) []NodeID {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []NodeID
	db.relsLocked(id, func(r Rel) bool {
		if r.From == id && (typ == "" || r.Type == typ) {
			out = append(out, r.To)
		}
		return true
	})
	return out
}

// Neighbors returns distinct adjacent nodes over any relationship direction.
func (db *DB) Neighbors(id NodeID, typ string) []NodeID {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[NodeID]bool{}
	var out []NodeID
	db.relsLocked(id, func(r Rel) bool {
		if typ != "" && r.Type != typ {
			return true
		}
		other := r.To
		if r.To == id {
			other = r.From
		}
		if other != id && !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
		return true
	})
	return out
}

// Stats summarizes record usage for capacity reports.
type Stats struct {
	Nodes, Rels, Props, Strings int
}

// Stats returns record counts (including dead records in props).
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{Nodes: len(db.nodes), Rels: len(db.rels), Props: len(db.props), Strings: len(db.strings)}
}

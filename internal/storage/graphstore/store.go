// Package graphstore implements a Neo4j-style record-oriented graph store:
// node and relationship records with per-node adjacency, and properties
// stored as *linked chains of property records* holding typed payloads and
// interned keys.
//
// The design deliberately mirrors the storage layout that makes the paper's
// Table 1 happen: when a time series is stored "all in graph" — every
// (timestamp, value) pair as a separate property, as the paper's Neo4j
// baseline does — each access walks an O(n) property chain and decodes
// every record it passes. Range scans and aggregations over the series
// therefore degrade linearly with series length per entity, which is exactly
// the bottleneck the paper measures (Q4–Q8 at tens of seconds vs
// milliseconds in the polyglot layout).
package graphstore

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node record.
type NodeID uint32

// RelID identifies a relationship record.
type RelID uint32

// nilRef is the null pointer of record chains.
const nilRef = ^uint32(0)

// PropKind is the type tag of a property record.
type PropKind uint8

// Property kinds.
const (
	PropInt PropKind = iota
	PropFloat
	PropString
	PropBool
)

// PropValue is a decoded property value.
type PropValue struct {
	Kind PropKind
	I    int64
	F    float64
	S    string
	B    bool
}

// IntVal wraps an int64.
func IntVal(i int64) PropValue { return PropValue{Kind: PropInt, I: i} }

// FloatVal wraps a float64.
func FloatVal(f float64) PropValue { return PropValue{Kind: PropFloat, F: f} }

// StrVal wraps a string.
func StrVal(s string) PropValue { return PropValue{Kind: PropString, S: s} }

// BoolVal wraps a bool.
func BoolVal(b bool) PropValue { return PropValue{Kind: PropBool, B: b} }

// AsFloat widens numeric values to float64.
func (v PropValue) AsFloat() (float64, bool) {
	switch v.Kind {
	case PropFloat:
		return v.F, true
	case PropInt:
		return float64(v.I), true
	}
	return 0, false
}

// String renders the value.
func (v PropValue) String() string {
	switch v.Kind {
	case PropInt:
		return fmt.Sprintf("%d", v.I)
	case PropFloat:
		return fmt.Sprintf("%g", v.F)
	case PropString:
		return v.S
	case PropBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// nodeRec is a node record: label refs, incident relationship ids (append
// order, so newest-last; iteration reverses to keep Neo4j's newest-first
// chain order), and the head of its property chain.
type nodeRec struct {
	inUse     bool
	labels    []uint32
	adj       []uint32 // incident rel ids; self-loops appear once
	firstProp uint32
}

// relRec is a relationship record.
type relRec struct {
	inUse     bool
	from, to  NodeID
	typ       uint32
	firstProp uint32
}

// propRec is one property record in a chain. num carries int64 bits, float64
// bits, or bool; str references the interned string table.
type propRec struct {
	inUse bool
	key   uint32
	kind  PropKind
	num   uint64
	str   uint32
	next  uint32
}

// propStore holds one shard's property records and free list. It has no lock
// of its own: the owning shard's mutex guards it, and every method assumes
// that lock is held.
type propStore struct {
	recs []propRec
	free []uint32 // recycled property records
}

// alloc takes a record from the free list or grows the store.
func (ps *propStore) alloc() uint32 {
	if n := len(ps.free); n > 0 {
		ref := ps.free[n-1]
		ps.free = ps.free[:n-1]
		return ref
	}
	ps.recs = append(ps.recs, propRec{})
	return uint32(len(ps.recs) - 1)
}

// freeChain recycles every record of a property chain.
func (ps *propStore) freeChain(head uint32) {
	for ref := head; ref != nilRef; {
		next := ps.recs[ref].next
		ps.recs[ref] = propRec{}
		ps.free = append(ps.free, ref)
		ref = next
	}
}

// set walks the chain rooted at *head; if rec's key exists, the record is
// updated in place, otherwise a new record is prepended (Neo4j prepends new
// properties, so recently written properties are found fastest). rec must be
// fully encoded except its next pointer.
func (ps *propStore) set(head *uint32, rec propRec) {
	for ref := *head; ref != nilRef; ref = ps.recs[ref].next {
		if ps.recs[ref].key == rec.key {
			rec.next = ps.recs[ref].next
			ps.recs[ref] = rec
			return
		}
	}
	ref := ps.alloc()
	rec.next = *head
	ps.recs[ref] = rec
	*head = ref
}

// get walks a chain for the interned key.
func (ps *propStore) get(head uint32, kid uint32) (propRec, bool) {
	for ref := head; ref != nilRef; ref = ps.recs[ref].next {
		if ps.recs[ref].key == kid {
			return ps.recs[ref], true
		}
	}
	return propRec{}, false
}

// remove unlinks a key's record from a chain and recycles it.
func (ps *propStore) remove(head *uint32, kid uint32) bool {
	prev := nilRef
	for ref := *head; ref != nilRef; ref = ps.recs[ref].next {
		if ps.recs[ref].key == kid {
			if prev == nilRef {
				*head = ps.recs[ref].next
			} else {
				ps.recs[prev].next = ps.recs[ref].next
			}
			ps.recs[ref] = propRec{}
			ps.free = append(ps.free, ref)
			return true
		}
		prev = ref
	}
	return false
}

// strTable is the interned string table, shared by all shards. Interning
// takes its lock; id → string decoding is lock-free against an atomically
// published snapshot, so readers holding shard locks never touch this mutex
// (the table is innermost in the lock order and only writers reach it — see
// docs/PARALLELISM.md).
type strTable struct {
	mu    sync.RWMutex
	index map[string]uint32
	names []string
	snap  atomic.Value // []string; republished after every append
}

// intern returns the id of s, adding it if new. Never call with a shard
// mutex held: string interning happens before shard locks are taken.
func (t *strTable) intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.index[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[s]; ok {
		return id
	}
	id = uint32(len(t.names))
	t.names = append(t.names, s)
	t.index[s] = id
	t.snap.Store(t.names)
	return id
}

// lookup resolves an existing string without interning.
func (t *strTable) lookup(s string) (uint32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.index[s]
	return id, ok
}

// name decodes an id from the published snapshot, without locking. Any id
// read from a record under a shard lock is covered: the string was interned
// (and the snapshot republished) before the record became visible.
func (t *strTable) name(id uint32) string {
	names, _ := t.snap.Load().([]string)
	return names[id]
}

// count returns the table size.
func (t *strTable) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// nodeShard is one lock stripe of the node records: nodes whose id ≡ shard
// index (mod shard count), their property records, and this stripe's slice
// of the label index. mu guards every field; *Locked methods assume it held.
type nodeShard struct {
	mu         sync.RWMutex
	nodes      []nodeRec
	props      propStore
	labelIndex map[uint32][]NodeID
}

// okLocked reports whether the local slot holds a live node.
func (sh *nodeShard) okLocked(local uint32) bool {
	return local < uint32(len(sh.nodes)) && sh.nodes[local].inUse
}

// growLocked extends the record array through the local slot; gap records
// (ids reserved by other writers, not yet created) stay dead until their
// creator fills them.
func (sh *nodeShard) growLocked(local uint32) {
	for uint32(len(sh.nodes)) <= local {
		sh.nodes = append(sh.nodes, nodeRec{firstProp: nilRef})
	}
}

// relShard is one lock stripe of the relationship records plus their
// property records.
type relShard struct {
	mu    sync.RWMutex
	rels  []relRec
	props propStore
}

func (rs *relShard) okLocked(local uint32) bool {
	return local < uint32(len(rs.rels)) && rs.rels[local].inUse
}

func (rs *relShard) growLocked(local uint32) {
	for uint32(len(rs.rels)) <= local {
		rs.rels = append(rs.rels, relRec{firstProp: nilRef})
	}
}

// DB is an in-memory record store. All exported methods are safe for
// concurrent use. Records are striped across a power-of-two array of
// independently locked shards by element id (shard = id & mask, local slot =
// id >> shift), so sequential ids round-robin across stripes and concurrent
// writers on different elements almost never share a lock. Ids come from
// atomic allocators and are never reused while the process lives.
//
// Deletions (DeleteRel / DeleteNode) span shards non-atomically; they exist
// for the single-writer crash-recovery path and must not race with other
// mutators (see docs/PARALLELISM.md).
type DB struct {
	mask  uint32
	shift uint

	nodeShards []nodeShard
	relShards  []relShard

	nextNode atomic.Uint64
	nextRel  atomic.Uint64

	str strTable

	obs storeObs // metric handles; zero value = instrumentation off
}

// DefaultShards is the lock-stripe count used by New.
const DefaultShards = 16

// New returns an empty store with DefaultShards lock stripes.
func New() *DB { return NewSharded(DefaultShards) }

// NewSharded is New with an explicit stripe count, rounded up to a power of
// two (<= 0 selects one stripe — the single-lock layout, used as the
// mixed-throughput baseline).
func NewSharded(shards int) *DB {
	n := 1
	for n < shards {
		n <<= 1
	}
	db := &DB{
		mask:       uint32(n - 1),
		shift:      uint(bits.TrailingZeros32(uint32(n))),
		nodeShards: make([]nodeShard, n),
		relShards:  make([]relShard, n),
	}
	for i := range db.nodeShards {
		db.nodeShards[i].labelIndex = map[uint32][]NodeID{}
	}
	db.str.index = map[string]uint32{}
	db.str.snap.Store([]string{})
	return db
}

// NumShards returns the lock-stripe count.
func (db *DB) NumShards() int { return len(db.nodeShards) }

func (db *DB) nodeShardOf(id NodeID) (*nodeShard, uint32) {
	return &db.nodeShards[uint32(id)&db.mask], uint32(id) >> db.shift
}

func (db *DB) relShardOf(id RelID) (*relShard, uint32) {
	return &db.relShards[uint32(id)&db.mask], uint32(id) >> db.shift
}

// NumNodes returns the number of live nodes.
func (db *DB) NumNodes() int {
	n := 0
	for i := range db.nodeShards {
		sh := &db.nodeShards[i]
		sh.mu.RLock()
		for j := range sh.nodes {
			if sh.nodes[j].inUse {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// NumRels returns the number of live relationships.
func (db *DB) NumRels() int {
	n := 0
	for i := range db.relShards {
		rs := &db.relShards[i]
		rs.mu.RLock()
		for j := range rs.rels {
			if rs.rels[j].inUse {
				n++
			}
		}
		rs.mu.RUnlock()
	}
	return n
}

// AllocNodeID reserves the next node id without creating the node. Reserving
// first lets a writer name the node in WAL and journal records before it
// exists; a reservation that never reaches a create record is simply
// forgotten by recovery (replay rebuilds the counter from create records
// only), so a crashed half-ingest's id is reused — the invariant the
// polyglot intent journal relies on.
func (db *DB) AllocNodeID() NodeID {
	return NodeID(db.nextNode.Add(1) - 1)
}

// AllocRelID reserves the next relationship id without creating the record.
func (db *DB) AllocRelID() RelID {
	return RelID(db.nextRel.Add(1) - 1)
}

// bumpNode raises the node allocator above id (explicit-id creates during
// replay move it forward).
func (db *DB) bumpNode(id NodeID) {
	for {
		cur := db.nextNode.Load()
		if cur > uint64(id) {
			return
		}
		if db.nextNode.CompareAndSwap(cur, uint64(id)+1) {
			return
		}
	}
}

func (db *DB) bumpRel(id RelID) {
	for {
		cur := db.nextRel.Load()
		if cur > uint64(id) {
			return
		}
		if db.nextRel.CompareAndSwap(cur, uint64(id)+1) {
			return
		}
	}
}

// NextNodeID returns the id the next allocation will take. Ids are assigned
// by an atomic counter and never reused while the process lives, so under a
// single writer this predicts the next CreateNode result (the prediction the
// pre-AllocNodeID journal format relied on; kept for compatibility and
// drift checks).
func (db *DB) NextNodeID() NodeID {
	return NodeID(db.nextNode.Load())
}

// NodeExists reports whether id names a live node (false for deleted or
// merely reserved ids).
func (db *DB) NodeExists(id NodeID) bool {
	sh, local := db.nodeShardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.okLocked(local)
}

// CreateNode allocates a node with the given labels.
func (db *DB) CreateNode(labels ...string) NodeID {
	id := db.AllocNodeID()
	db.createNodeAt(id, labels)
	return id
}

// CreateNodeAt creates a node under an explicit id (WAL replay and the
// durable ingest layer, which reserves ids up front so concurrent writers'
// log records stay order-independent). The allocator is bumped past id.
func (db *DB) CreateNodeAt(id NodeID, labels ...string) {
	db.bumpNode(id)
	db.createNodeAt(id, labels)
}

func (db *DB) createNodeAt(id NodeID, labels []string) {
	db.obs.writes.Inc()
	lids := make([]uint32, len(labels))
	for i, l := range labels {
		lids[i] = db.str.intern(l)
	}
	sh, local := db.nodeShardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.growLocked(local)
	rec := &sh.nodes[local]
	rec.inUse = true
	rec.labels = lids
	rec.adj = nil
	rec.firstProp = nilRef
	for _, lid := range lids {
		sh.labelIndex[lid] = append(sh.labelIndex[lid], id)
	}
}

// CreateRel allocates a relationship from -> to of the given type and
// threads it into both endpoints' adjacency.
func (db *DB) CreateRel(from, to NodeID, typ string) (RelID, error) {
	db.obs.writes.Inc()
	if !db.NodeExists(from) || !db.NodeExists(to) {
		return 0, fmt.Errorf("graphstore: endpoints %d->%d missing", from, to)
	}
	id := db.AllocRelID()
	db.createRelAt(id, from, to, typ)
	return id, nil
}

// CreateRelAt is CreateRel under an explicit, pre-reserved id (WAL replay).
func (db *DB) CreateRelAt(id RelID, from, to NodeID, typ string) error {
	db.obs.writes.Inc()
	if !db.NodeExists(from) || !db.NodeExists(to) {
		return fmt.Errorf("graphstore: endpoints %d->%d missing", from, to)
	}
	db.bumpRel(id)
	db.createRelAt(id, from, to, typ)
	return nil
}

func (db *DB) createRelAt(id RelID, from, to NodeID, typ string) {
	tid := db.str.intern(typ)
	rs, local := db.relShardOf(id)
	rs.mu.Lock()
	rs.growLocked(local)
	rs.rels[local] = relRec{inUse: true, from: from, to: to, typ: tid, firstProp: nilRef}
	rs.mu.Unlock()
	// Thread into the endpoints' adjacency only after the record is visible,
	// so a reader that finds the id in an adjacency list always finds a live
	// record behind it. Self-loops are threaded once.
	db.appendAdj(from, uint32(id))
	if to != from {
		db.appendAdj(to, uint32(id))
	}
}

func (db *DB) appendAdj(n NodeID, rid uint32) {
	sh, local := db.nodeShardOf(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.okLocked(local) {
		sh.nodes[local].adj = append(sh.nodes[local].adj, rid)
	}
}

func (db *DB) removeAdj(n NodeID, rid uint32) {
	sh, local := db.nodeShardOf(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if local >= uint32(len(sh.nodes)) {
		return
	}
	adj := sh.nodes[local].adj
	for i, r := range adj {
		if r == rid {
			sh.nodes[local].adj = append(adj[:i], adj[i+1:]...)
			return
		}
	}
}

// DeleteRel removes a relationship: recycles its properties, marks the
// record dead and unlinks it from both endpoints' adjacency. Record ids are
// never reused. Part of the single-writer recovery path.
func (db *DB) DeleteRel(id RelID) error {
	db.obs.writes.Inc()
	return db.deleteRel(id)
}

func (db *DB) deleteRel(id RelID) error {
	rs, local := db.relShardOf(id)
	rs.mu.Lock()
	if !rs.okLocked(local) {
		rs.mu.Unlock()
		return fmt.Errorf("graphstore: no rel %d", id)
	}
	r := rs.rels[local]
	rs.props.freeChain(r.firstProp)
	rs.rels[local] = relRec{firstProp: nilRef}
	rs.mu.Unlock()
	db.removeAdj(r.from, uint32(id))
	if r.to != r.from {
		db.removeAdj(r.to, uint32(id))
	}
	return nil
}

// DeleteNode removes a node along with its incident relationships and
// properties, and drops it from the label index. The crash-recovery layer
// uses this to roll back a half-ingested entity; node ids are never reused
// while the process lives, so later WAL records stay valid. Part of the
// single-writer recovery path.
func (db *DB) DeleteNode(id NodeID) error {
	db.obs.writes.Inc()
	sh, local := db.nodeShardOf(id)
	sh.mu.Lock()
	if !sh.okLocked(local) {
		sh.mu.Unlock()
		return fmt.Errorf("graphstore: no node %d", id)
	}
	incident := append([]uint32(nil), sh.nodes[local].adj...)
	sh.mu.Unlock()
	for _, rid := range incident {
		// Ignore records already reclaimed while we weren't holding the lock.
		_ = db.deleteRel(RelID(rid))
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.okLocked(local) {
		return fmt.Errorf("graphstore: no node %d", id)
	}
	sh.props.freeChain(sh.nodes[local].firstProp)
	for _, lid := range sh.nodes[local].labels {
		ids := sh.labelIndex[lid]
		for i, nid := range ids {
			if nid == id {
				sh.labelIndex[lid] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	}
	sh.nodes[local] = nodeRec{firstProp: nilRef}
	return nil
}

// NodesByLabel returns the nodes carrying the label in creation order
// (ascending id; ids are allocated in creation order).
func (db *DB) NodesByLabel(label string) []NodeID {
	db.obs.reads.Inc()
	lid, ok := db.str.lookup(label)
	if !ok {
		return nil
	}
	var out []NodeID
	for i := range db.nodeShards {
		sh := &db.nodeShards[i]
		sh.mu.RLock()
		for _, id := range sh.labelIndex[lid] {
			if sh.okLocked(uint32(id) >> db.shift) {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Labels returns a node's labels.
func (db *DB) Labels(id NodeID) []string {
	sh, local := db.nodeShardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !sh.okLocked(local) {
		return nil
	}
	out := make([]string, len(sh.nodes[local].labels))
	for i, l := range sh.nodes[local].labels {
		out[i] = db.str.name(l)
	}
	return out
}

// encodeRec interns the key (and a string payload) and packs the value into
// a property record. Interning happens here, before any shard lock is taken.
func (db *DB) encodeRec(key string, val PropValue) propRec {
	p := propRec{inUse: true, key: db.str.intern(key), kind: val.Kind}
	switch val.Kind {
	case PropInt:
		p.num = uint64(val.I)
	case PropFloat:
		p.num = math.Float64bits(val.F)
	case PropBool:
		if val.B {
			p.num = 1
		}
	case PropString:
		p.str = db.str.intern(val.S)
	}
	return p
}

func (db *DB) decodeProp(p propRec) PropValue {
	switch p.kind {
	case PropInt:
		return IntVal(int64(p.num))
	case PropFloat:
		return FloatVal(math.Float64frombits(p.num))
	case PropBool:
		return BoolVal(p.num != 0)
	case PropString:
		return StrVal(db.str.name(p.str))
	}
	return PropValue{}
}

// SetNodeProp sets a property on a node.
func (db *DB) SetNodeProp(id NodeID, key string, val PropValue) error {
	db.obs.writes.Inc()
	rec := db.encodeRec(key, val)
	sh, local := db.nodeShardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.okLocked(local) {
		return fmt.Errorf("graphstore: no node %d", id)
	}
	sh.props.set(&sh.nodes[local].firstProp, rec)
	return nil
}

// NodeProp reads a property from a node, walking its chain.
func (db *DB) NodeProp(id NodeID, key string) (PropValue, bool) {
	db.obs.reads.Inc()
	kid, ok := db.str.lookup(key)
	if !ok {
		return PropValue{}, false
	}
	sh, local := db.nodeShardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !sh.okLocked(local) {
		return PropValue{}, false
	}
	p, ok := sh.props.get(sh.nodes[local].firstProp, kid)
	if !ok {
		return PropValue{}, false
	}
	return db.decodeProp(p), true
}

// RemoveNodeProp deletes a node property.
func (db *DB) RemoveNodeProp(id NodeID, key string) bool {
	db.obs.writes.Inc()
	kid, ok := db.str.lookup(key)
	if !ok {
		return false
	}
	sh, local := db.nodeShardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.okLocked(local) {
		return false
	}
	return sh.props.remove(&sh.nodes[local].firstProp, kid)
}

// SetRelProp sets a property on a relationship.
func (db *DB) SetRelProp(id RelID, key string, val PropValue) error {
	db.obs.writes.Inc()
	rec := db.encodeRec(key, val)
	rs, local := db.relShardOf(id)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.okLocked(local) {
		return fmt.Errorf("graphstore: no rel %d", id)
	}
	rs.props.set(&rs.rels[local].firstProp, rec)
	return nil
}

// RelProp reads a relationship property.
func (db *DB) RelProp(id RelID, key string) (PropValue, bool) {
	db.obs.reads.Inc()
	kid, ok := db.str.lookup(key)
	if !ok {
		return PropValue{}, false
	}
	rs, local := db.relShardOf(id)
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	if !rs.okLocked(local) {
		return PropValue{}, false
	}
	p, ok := rs.props.get(rs.rels[local].firstProp, kid)
	if !ok {
		return PropValue{}, false
	}
	return db.decodeProp(p), true
}

// NodeProps walks a node's full property chain, calling fn with every
// key/value. This is the scan primitive that all-in-graph time-series
// queries are forced through. fn runs under the node's shard read lock and
// must not mutate the store.
func (db *DB) NodeProps(id NodeID, fn func(key string, val PropValue) bool) {
	db.obs.reads.Inc()
	sh, local := db.nodeShardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.propsLocked(db, local, fn)
}

// propsLocked walks the chain under the held shard lock. Records visited are
// accumulated locally and published with one atomic add, so instrumented
// chain scans don't pay a per-record atomic.
func (sh *nodeShard) propsLocked(db *DB, local uint32, fn func(string, PropValue) bool) {
	if !sh.okLocked(local) {
		return
	}
	visited := int64(0)
	for ref := sh.nodes[local].firstProp; ref != nilRef; ref = sh.props.recs[ref].next {
		visited++
		p := sh.props.recs[ref]
		if !fn(db.str.name(p.key), db.decodeProp(p)) {
			break
		}
	}
	db.obs.propScanned.Add(visited)
}

// NodePropCount returns the length of the node's property chain.
func (db *DB) NodePropCount(id NodeID) int {
	db.obs.reads.Inc()
	sh, local := db.nodeShardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n := 0
	sh.propsLocked(db, local, func(string, PropValue) bool { n++; return true })
	return n
}

// Rel describes a relationship during iteration.
type Rel struct {
	ID   RelID
	From NodeID
	To   NodeID
	Type string
}

// Rels walks the relationships of a node (both directions interleaved, most
// recent first), calling fn for each. The adjacency is snapshotted under the
// node's shard lock and each record is resolved under its own rel-shard
// lock, so fn itself runs with no lock held and may issue reads against the
// same store.
func (db *DB) Rels(id NodeID, fn func(Rel) bool) {
	db.obs.reads.Inc()
	for _, r := range db.relsOf(id) {
		if !fn(r) {
			return
		}
	}
}

func (db *DB) relsOf(id NodeID) []Rel {
	sh, local := db.nodeShardOf(id)
	sh.mu.RLock()
	var adj []uint32
	if sh.okLocked(local) {
		adj = append(adj, sh.nodes[local].adj...)
	}
	sh.mu.RUnlock()
	out := make([]Rel, 0, len(adj))
	for i := len(adj) - 1; i >= 0; i-- { // newest first
		rid := RelID(adj[i])
		rs, rlocal := db.relShardOf(rid)
		rs.mu.RLock()
		if rs.okLocked(rlocal) {
			r := rs.rels[rlocal]
			out = append(out, Rel{ID: rid, From: r.from, To: r.to, Type: db.str.name(r.typ)})
		}
		rs.mu.RUnlock()
	}
	return out
}

// OutNeighbors returns the targets of outgoing relationships of the given
// type ("" matches all).
func (db *DB) OutNeighbors(id NodeID, typ string) []NodeID {
	db.obs.reads.Inc()
	var out []NodeID
	for _, r := range db.relsOf(id) {
		if r.From == id && (typ == "" || r.Type == typ) {
			out = append(out, r.To)
		}
	}
	return out
}

// Neighbors returns distinct adjacent nodes over any relationship direction.
func (db *DB) Neighbors(id NodeID, typ string) []NodeID {
	db.obs.reads.Inc()
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, r := range db.relsOf(id) {
		if typ != "" && r.Type != typ {
			continue
		}
		other := r.To
		if r.To == id {
			other = r.From
		}
		if other != id && !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	return out
}

// Stats summarizes record usage for capacity reports.
type Stats struct {
	Nodes, Rels, Props, Strings int
}

// Stats returns record counts (including dead records in props).
func (db *DB) Stats() Stats {
	var st Stats
	for i := range db.nodeShards {
		sh := &db.nodeShards[i]
		sh.mu.RLock()
		st.Nodes += len(sh.nodes)
		st.Props += len(sh.props.recs)
		sh.mu.RUnlock()
	}
	for i := range db.relShards {
		rs := &db.relShards[i]
		rs.mu.RLock()
		st.Rels += len(rs.rels)
		st.Props += len(rs.props.recs)
		rs.mu.RUnlock()
	}
	st.Strings = db.str.count()
	return st
}

package graphstore

import (
	"bytes"
	"testing"
)

// FuzzWALReplay asserts Replay never panics on arbitrary bytes: whatever a
// half-written disk or a hostile file hands us, recovery either applies
// intact records or reports an error. Run the fuzzer with:
//
//	go test ./internal/storage/graphstore -fuzz FuzzWALReplay -fuzztime 30s
//
// In normal test runs only the seed corpus executes.
func FuzzWALReplay(f *testing.F) {
	// Seed with a valid log...
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	n, _ := wal.CreateNode("A", "B")
	m, _ := wal.CreateNode("C")
	wal.CreateRel(n, m, "T")
	wal.SetNodeProp(n, "x", IntVal(7))
	wal.SetNodeProp(n, "s", StrVal("str"))
	wal.SetNodeProp(m, "f", FloatVal(2.5))
	wal.SetNodeProp(m, "b", BoolVal(true))
	wal.RemoveNodeProp(n, "x")
	wal.DeleteNode(m)
	wal.Flush()
	valid := log.Bytes()
	f.Add(valid)
	// ...its truncations and single-byte corruptions...
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)/2])
	if len(valid) > 8 {
		mut := append([]byte(nil), valid...)
		mut[8] ^= 0xff
		f.Add(mut)
	}
	// ...and degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{0xEE})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add(bytes.Repeat([]byte{0x01}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		db := New()
		sum, err := ReplayWithSummary(db, bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever replayed must leave a self-consistent store: counting
		// APIs and the label index must not panic or disagree wildly.
		if sum.Applied < 0 || db.NumNodes() > sum.Applied {
			t.Fatalf("applied=%d nodes=%d", sum.Applied, db.NumNodes())
		}
		for _, label := range []string{"A", "B", "C"} {
			for _, id := range db.NodesByLabel(label) {
				db.NodeProps(id, func(string, PropValue) bool { return true })
			}
		}
		// Replay is deterministic.
		db2 := New()
		sum2, err2 := ReplayWithSummary(db2, bytes.NewReader(data))
		if err2 != nil || sum2.Applied != sum.Applied || db2.NumNodes() != db.NumNodes() {
			t.Fatalf("non-deterministic replay: %v %d/%d", err2, sum2.Applied, sum.Applied)
		}
	})
}

package graphstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshot format: a magic header, then the string table and id
// allocators, then each shard's node, relationship and property records,
// all little-endian with uvarint lengths. Version 2 is the physical
// per-shard layout: the shard count is persisted so Load reconstructs the
// exact same striping (local slot indexes embedded in property chains stay
// valid), and free lists and the label index are rebuilt from the records.

const (
	snapshotMagic   = "HYGS"
	snapshotVersion = 2
)

// Sanity caps for decoded length fields. A snapshot claiming more than these
// is corrupt, not big: every cap sits orders of magnitude above anything the
// engine can write, and bounding them keeps a flipped length byte from
// turning one ReadUvarint into a multi-exabyte allocation before the record
// data is even read.
const (
	maxSnapStrings = 1 << 24 // interned strings in the table
	maxSnapStrLen  = 1 << 26 // bytes in one interned string
	maxSnapRecs    = 1 << 28 // node/rel/prop records in one shard
	maxSnapRefs    = 1 << 24 // labels or adjacency entries on one node
)

// Save writes a binary snapshot of the store. Each shard is serialized under
// its own read lock.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeUvarint(bw, snapshotVersion)
	writeUvarint(bw, uint64(len(db.nodeShards)))
	writeUvarint(bw, db.nextNode.Load())
	writeUvarint(bw, db.nextRel.Load())

	db.str.mu.RLock()
	writeUvarint(bw, uint64(len(db.str.names)))
	for _, s := range db.str.names {
		writeUvarint(bw, uint64(len(s)))
		bw.WriteString(s) //hyvet:allow walerrlatch bufio.Writer latches its first error; the checked Flush at the end reports it
	}
	db.str.mu.RUnlock()

	for i := range db.nodeShards {
		db.nodeShards[i].save(bw)
	}
	for i := range db.relShards {
		db.relShards[i].save(bw)
	}
	return bw.Flush()
}

func (sh *nodeShard) save(bw *bufio.Writer) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	writeUvarint(bw, uint64(len(sh.nodes)))
	for i := range sh.nodes {
		n := &sh.nodes[i]
		writeBool(bw, n.inUse)
		writeUvarint(bw, uint64(len(n.labels)))
		for _, l := range n.labels {
			writeUvarint(bw, uint64(l))
		}
		writeUvarint(bw, uint64(len(n.adj)))
		for _, r := range n.adj {
			writeUvarint(bw, uint64(r))
		}
		writeUvarint(bw, uint64(n.firstProp))
	}
	savePropStore(bw, &sh.props)
}

func (rs *relShard) save(bw *bufio.Writer) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	writeUvarint(bw, uint64(len(rs.rels)))
	for i := range rs.rels {
		r := &rs.rels[i]
		writeBool(bw, r.inUse)
		writeUvarint(bw, uint64(r.from))
		writeUvarint(bw, uint64(r.to))
		writeUvarint(bw, uint64(r.typ))
		writeUvarint(bw, uint64(r.firstProp))
	}
	savePropStore(bw, &rs.props)
}

func savePropStore(bw *bufio.Writer, ps *propStore) {
	writeUvarint(bw, uint64(len(ps.recs)))
	for i := range ps.recs {
		p := &ps.recs[i]
		writeBool(bw, p.inUse)
		writeUvarint(bw, uint64(p.key))
		writeUvarint(bw, uint64(p.kind))
		writeUvarint(bw, p.num)
		writeUvarint(bw, uint64(p.str))
		writeUvarint(bw, uint64(p.next))
	}
}

// Load reads a snapshot written by Save into a fresh store with the
// persisted shard count.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graphstore: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("graphstore: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("graphstore: unsupported snapshot version %d", version)
	}
	nShards, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nShards == 0 || nShards > 1<<16 || nShards&(nShards-1) != 0 {
		return nil, fmt.Errorf("graphstore: corrupt shard count %d", nShards)
	}
	db := NewSharded(int(nShards))
	nextNode, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nextRel, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db.nextNode.Store(nextNode)
	db.nextRel.Store(nextRel)

	nStr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nStr > maxSnapStrings {
		return nil, fmt.Errorf("graphstore: corrupt snapshot: %d interned strings exceeds cap %d", nStr, maxSnapStrings)
	}
	db.str.names = make([]string, nStr)
	for i := range db.str.names {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if l > maxSnapStrLen {
			return nil, fmt.Errorf("graphstore: corrupt snapshot: string of %d bytes exceeds cap %d", l, maxSnapStrLen)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		db.str.names[i] = string(buf)
		db.str.index[db.str.names[i]] = uint32(i)
	}
	db.str.snap.Store(db.str.names)

	for si := range db.nodeShards {
		if err := db.nodeShards[si].load(br, db, uint32(si)); err != nil {
			return nil, err
		}
	}
	for si := range db.relShards {
		if err := db.relShards[si].load(br); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (sh *nodeShard) load(br *bufio.Reader, db *DB, shardIdx uint32) error {
	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if nNodes > maxSnapRecs {
		return fmt.Errorf("graphstore: corrupt snapshot: %d node records exceeds cap %d", nNodes, maxSnapRecs)
	}
	sh.nodes = make([]nodeRec, nNodes)
	for i := range sh.nodes {
		n := &sh.nodes[i]
		if n.inUse, err = readBool(br); err != nil {
			return err
		}
		nl, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if nl > maxSnapRefs {
			return fmt.Errorf("graphstore: corrupt snapshot: %d labels on one node exceeds cap %d", nl, maxSnapRefs)
		}
		n.labels = make([]uint32, nl)
		for j := range n.labels {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			n.labels[j] = uint32(v)
			if n.inUse {
				id := NodeID(uint32(i)<<db.shift | shardIdx)
				sh.labelIndex[n.labels[j]] = append(sh.labelIndex[n.labels[j]], id)
			}
		}
		na, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if na > maxSnapRefs {
			return fmt.Errorf("graphstore: corrupt snapshot: %d adjacency entries on one node exceeds cap %d", na, maxSnapRefs)
		}
		n.adj = make([]uint32, na)
		for j := range n.adj {
			if n.adj[j], err = readRef(br); err != nil {
				return err
			}
		}
		if n.firstProp, err = readRef(br); err != nil {
			return err
		}
	}
	return loadPropStore(br, &sh.props)
}

func (rs *relShard) load(br *bufio.Reader) error {
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if nRels > maxSnapRecs {
		return fmt.Errorf("graphstore: corrupt snapshot: %d rel records exceeds cap %d", nRels, maxSnapRecs)
	}
	rs.rels = make([]relRec, nRels)
	for i := range rs.rels {
		rr := &rs.rels[i]
		if rr.inUse, err = readBool(br); err != nil {
			return err
		}
		var v uint64
		if v, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		rr.from = NodeID(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		rr.to = NodeID(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		rr.typ = uint32(v)
		if rr.firstProp, err = readRef(br); err != nil {
			return err
		}
	}
	return loadPropStore(br, &rs.props)
}

func loadPropStore(br *bufio.Reader, ps *propStore) error {
	nProps, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if nProps > maxSnapRecs {
		return fmt.Errorf("graphstore: corrupt snapshot: %d prop records exceeds cap %d", nProps, maxSnapRecs)
	}
	ps.recs = make([]propRec, nProps)
	for i := range ps.recs {
		p := &ps.recs[i]
		if p.inUse, err = readBool(br); err != nil {
			return err
		}
		var v uint64
		if v, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		p.key = uint32(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		p.kind = PropKind(v)
		if p.num, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		if v, err = binary.ReadUvarint(br); err != nil {
			return err
		}
		p.str = uint32(v)
		if p.next, err = readRef(br); err != nil {
			return err
		}
		if !p.inUse {
			ps.free = append(ps.free, uint32(i))
		}
	}
	return nil
}

// Recover rebuilds a store from an optional snapshot plus an optional WAL:
// the snapshot+log scheme. Either reader may be nil (no snapshot = start
// empty; no log = snapshot only). A torn or corrupt log tail is truncated
// and reported in the summary; mid-log corruption is an error, returning
// the store as recovered up to the corruption point.
func Recover(snapshot, log io.Reader) (*DB, RecoverySummary, error) {
	db := New()
	if snapshot != nil {
		var err error
		if db, err = Load(snapshot); err != nil {
			return nil, RecoverySummary{}, fmt.Errorf("graphstore: snapshot: %w", err)
		}
	}
	var sum RecoverySummary
	if log != nil {
		var err error
		if sum, err = ReplayWithSummary(db, log); err != nil {
			return db, sum, fmt.Errorf("graphstore: log: %w", err)
		}
	}
	return db, sum, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

func writeBool(w *bufio.Writer, b bool) {
	if b {
		w.WriteByte(1) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
	} else {
		w.WriteByte(0) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
	}
}

func readBool(r *bufio.Reader) (bool, error) {
	b, err := r.ReadByte()
	return b != 0, err
}

func readRef(r *bufio.Reader) (uint32, error) {
	v, err := binary.ReadUvarint(r)
	return uint32(v), err
}

package graphstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshot format: a magic header, then the string table, then node,
// relationship and property records, all little-endian with uvarint lengths.
// The format is versioned so future layouts can evolve.

const (
	snapshotMagic   = "HYGS"
	snapshotVersion = 1
)

// Save writes a binary snapshot of the store.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeUvarint(bw, snapshotVersion)

	writeUvarint(bw, uint64(len(db.strings)))
	for _, s := range db.strings {
		writeUvarint(bw, uint64(len(s)))
		bw.WriteString(s) //hyvet:allow walerrlatch bufio.Writer latches its first error; the checked Flush at the end reports it
	}

	writeUvarint(bw, uint64(len(db.nodes)))
	for i := range db.nodes {
		n := &db.nodes[i]
		writeBool(bw, n.inUse)
		writeUvarint(bw, uint64(len(n.labels)))
		for _, l := range n.labels {
			writeUvarint(bw, uint64(l))
		}
		writeUvarint(bw, uint64(n.firstRel))
		writeUvarint(bw, uint64(n.firstProp))
	}

	writeUvarint(bw, uint64(len(db.rels)))
	for i := range db.rels {
		r := &db.rels[i]
		writeBool(bw, r.inUse)
		writeUvarint(bw, uint64(r.from))
		writeUvarint(bw, uint64(r.to))
		writeUvarint(bw, uint64(r.typ))
		writeUvarint(bw, uint64(r.fromNext))
		writeUvarint(bw, uint64(r.toNext))
		writeUvarint(bw, uint64(r.firstProp))
	}

	writeUvarint(bw, uint64(len(db.props)))
	for i := range db.props {
		p := &db.props[i]
		writeBool(bw, p.inUse)
		writeUvarint(bw, uint64(p.key))
		writeUvarint(bw, uint64(p.kind))
		writeUvarint(bw, p.num)
		writeUvarint(bw, uint64(p.str))
		writeUvarint(bw, uint64(p.next))
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save into a fresh store.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graphstore: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("graphstore: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("graphstore: unsupported snapshot version %d", version)
	}
	db := New()

	nStr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db.strings = make([]string, nStr)
	for i := range db.strings {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		db.strings[i] = string(buf)
		db.strIndex[db.strings[i]] = uint32(i)
	}

	nNodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db.nodes = make([]nodeRec, nNodes)
	for i := range db.nodes {
		n := &db.nodes[i]
		if n.inUse, err = readBool(br); err != nil {
			return nil, err
		}
		nl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		n.labels = make([]uint32, nl)
		for j := range n.labels {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			n.labels[j] = uint32(v)
			if n.inUse {
				db.labelIndex[n.labels[j]] = append(db.labelIndex[n.labels[j]], NodeID(i))
			}
		}
		if n.firstRel, err = readRef(br); err != nil {
			return nil, err
		}
		if n.firstProp, err = readRef(br); err != nil {
			return nil, err
		}
	}

	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db.rels = make([]relRec, nRels)
	for i := range db.rels {
		rr := &db.rels[i]
		if rr.inUse, err = readBool(br); err != nil {
			return nil, err
		}
		var v uint64
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		rr.from = NodeID(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		rr.to = NodeID(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		rr.typ = uint32(v)
		if rr.fromNext, err = readRef(br); err != nil {
			return nil, err
		}
		if rr.toNext, err = readRef(br); err != nil {
			return nil, err
		}
		if rr.firstProp, err = readRef(br); err != nil {
			return nil, err
		}
	}

	nProps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db.props = make([]propRec, nProps)
	for i := range db.props {
		p := &db.props[i]
		if p.inUse, err = readBool(br); err != nil {
			return nil, err
		}
		var v uint64
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		p.key = uint32(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		p.kind = PropKind(v)
		if p.num, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		p.str = uint32(v)
		if p.next, err = readRef(br); err != nil {
			return nil, err
		}
		if !p.inUse {
			db.freeProps = append(db.freeProps, uint32(i))
		}
	}
	return db, nil
}

// Recover rebuilds a store from an optional snapshot plus an optional WAL:
// the snapshot+log scheme. Either reader may be nil (no snapshot = start
// empty; no log = snapshot only). A torn or corrupt log tail is truncated
// and reported in the summary; mid-log corruption is an error, returning
// the store as recovered up to the corruption point.
func Recover(snapshot, log io.Reader) (*DB, RecoverySummary, error) {
	db := New()
	if snapshot != nil {
		var err error
		if db, err = Load(snapshot); err != nil {
			return nil, RecoverySummary{}, fmt.Errorf("graphstore: snapshot: %w", err)
		}
	}
	var sum RecoverySummary
	if log != nil {
		var err error
		if sum, err = ReplayWithSummary(db, log); err != nil {
			return db, sum, fmt.Errorf("graphstore: log: %w", err)
		}
	}
	return db, sum, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

func writeBool(w *bufio.Writer, b bool) {
	if b {
		w.WriteByte(1) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
	} else {
		w.WriteByte(0) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
	}
}

func readBool(r *bufio.Reader) (bool, error) {
	b, err := r.ReadByte()
	return b != 0, err
}

func readRef(r *bufio.Reader) (uint32, error) {
	v, err := binary.ReadUvarint(r)
	return uint32(v), err
}

package graphstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestWALReplayReconstructs(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	rng := rand.New(rand.NewSource(1))

	var nodes []NodeID
	for i := 0; i < 30; i++ {
		n, err := wal.CreateNode([]string{"A", "B"}[i%2], "All")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if err := wal.SetNodeProp(n, "x", IntVal(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := wal.SetNodeProp(n, "name", StrVal(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		r, err := wal.CreateRel(a, b, "T")
		if err != nil {
			t.Fatal(err)
		}
		if err := wal.SetRelProp(r, "w", FloatVal(rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	// Mix in updates, bools and removals.
	if err := wal.SetNodeProp(nodes[3], "x", IntVal(999)); err != nil {
		t.Fatal(err)
	}
	if err := wal.SetNodeProp(nodes[4], "flag", BoolVal(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.RemoveNodeProp(nodes[5], "x"); err != nil {
		t.Fatal(err)
	}
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}

	// Crash: rebuild a fresh store purely from the log.
	rebuilt := New()
	applied, err := Replay(rebuilt, bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("nothing replayed")
	}
	orig := wal.DB()
	if rebuilt.NumNodes() != orig.NumNodes() || rebuilt.NumRels() != orig.NumRels() {
		t.Fatalf("counts: %d/%d vs %d/%d",
			rebuilt.NumNodes(), rebuilt.NumRels(), orig.NumNodes(), orig.NumRels())
	}
	for _, n := range nodes {
		for _, key := range []string{"x", "name", "flag"} {
			want, okW := orig.NodeProp(n, key)
			got, okG := rebuilt.NodeProp(n, key)
			if okW != okG || (okW && want != got) {
				t.Fatalf("node %d %s: %v/%v vs %v/%v", n, key, want, okW, got, okG)
			}
		}
		var a, b int
		orig.Rels(n, func(Rel) bool { a++; return true })
		rebuilt.Rels(n, func(Rel) bool { b++; return true })
		if a != b {
			t.Fatalf("node %d chain %d vs %d", n, a, b)
		}
	}
	// Label index reconstructed.
	if len(rebuilt.NodesByLabel("A")) != len(orig.NodesByLabel("A")) {
		t.Fatal("label index mismatch after replay")
	}
}

func TestWALTruncatedLogStops(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	wal.CreateNode("A")
	wal.SetNodeProp(0, "k", StrVal("value"))
	wal.Flush()
	// Cut the log mid-record.
	raw := log.Bytes()
	cut := raw[:len(raw)-3]
	rebuilt := New()
	applied, err := Replay(rebuilt, bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated log replayed cleanly")
	}
	// The complete prefix was applied.
	if applied != 1 || rebuilt.NumNodes() != 1 {
		t.Fatalf("applied=%d nodes=%d", applied, rebuilt.NumNodes())
	}
}

func TestWALCorruptOpcode(t *testing.T) {
	if _, err := Replay(New(), bytes.NewReader([]byte{0xEE})); err == nil {
		t.Fatal("corrupt opcode accepted")
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWALWriteErrorFailsFast(t *testing.T) {
	wal := NewWAL(New(), &errWriter{n: 4})
	// Writes buffer 4096 bytes, so force the failure through Flush.
	for i := 0; i < 2000; i++ {
		wal.CreateNode("A")
	}
	if err := wal.Flush(); err == nil {
		t.Fatal("flush on failing writer succeeded")
	}
	if err := wal.SetNodeProp(0, "k", IntVal(1)); err == nil {
		t.Fatal("mutation after write error accepted")
	}
}

package graphstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestWALReplayReconstructs(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	rng := rand.New(rand.NewSource(1))

	var nodes []NodeID
	for i := 0; i < 30; i++ {
		n, err := wal.CreateNode([]string{"A", "B"}[i%2], "All")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if err := wal.SetNodeProp(n, "x", IntVal(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := wal.SetNodeProp(n, "name", StrVal(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		r, err := wal.CreateRel(a, b, "T")
		if err != nil {
			t.Fatal(err)
		}
		if err := wal.SetRelProp(r, "w", FloatVal(rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	// Mix in updates, bools and removals.
	if err := wal.SetNodeProp(nodes[3], "x", IntVal(999)); err != nil {
		t.Fatal(err)
	}
	if err := wal.SetNodeProp(nodes[4], "flag", BoolVal(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.RemoveNodeProp(nodes[5], "x"); err != nil {
		t.Fatal(err)
	}
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}

	// Crash: rebuild a fresh store purely from the log.
	rebuilt := New()
	applied, err := Replay(rebuilt, bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("nothing replayed")
	}
	orig := wal.DB()
	if rebuilt.NumNodes() != orig.NumNodes() || rebuilt.NumRels() != orig.NumRels() {
		t.Fatalf("counts: %d/%d vs %d/%d",
			rebuilt.NumNodes(), rebuilt.NumRels(), orig.NumNodes(), orig.NumRels())
	}
	for _, n := range nodes {
		for _, key := range []string{"x", "name", "flag"} {
			want, okW := orig.NodeProp(n, key)
			got, okG := rebuilt.NodeProp(n, key)
			if okW != okG || (okW && want != got) {
				t.Fatalf("node %d %s: %v/%v vs %v/%v", n, key, want, okW, got, okG)
			}
		}
		var a, b int
		orig.Rels(n, func(Rel) bool { a++; return true })
		rebuilt.Rels(n, func(Rel) bool { b++; return true })
		if a != b {
			t.Fatalf("node %d chain %d vs %d", n, a, b)
		}
	}
	// Label index reconstructed.
	if len(rebuilt.NodesByLabel("A")) != len(orig.NodesByLabel("A")) {
		t.Fatal("label index mismatch after replay")
	}
}

// The acceptance property: a WAL truncated at EVERY byte offset of its last
// record must recover without error or panic, losing at most that record.
func TestWALTornTailAtEveryOffset(t *testing.T) {
	writeLog := func(withLast bool) []byte {
		var log bytes.Buffer
		wal := NewWAL(New(), &log)
		if _, err := wal.CreateNode("A"); err != nil {
			t.Fatal(err)
		}
		if err := wal.SetNodeProp(0, "k", StrVal("value")); err != nil {
			t.Fatal(err)
		}
		if withLast {
			if err := wal.SetNodeProp(0, "longer-key", StrVal("the final record of this log")); err != nil {
				t.Fatal(err)
			}
		}
		if err := wal.Flush(); err != nil {
			t.Fatal(err)
		}
		return log.Bytes()
	}
	full := writeLog(true)
	prefix := writeLog(false)
	for cut := len(prefix); cut < len(full); cut++ {
		rebuilt := New()
		sum, err := ReplayWithSummary(rebuilt, bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if sum.Applied != 2 || rebuilt.NumNodes() != 1 {
			t.Fatalf("cut %d: applied=%d nodes=%d", cut, sum.Applied, rebuilt.NumNodes())
		}
		if cut > len(prefix) && !sum.TornTail {
			t.Fatalf("cut %d: torn tail not reported: %+v", cut, sum)
		}
		if v, ok := rebuilt.NodeProp(0, "k"); !ok || v.S != "value" {
			t.Fatalf("cut %d: intact prefix lost", cut)
		}
	}
}

func TestWALMidLogCorruptionDetected(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	wal.CreateNode("A")
	wal.SetNodeProp(0, "k", StrVal("value"))
	wal.Flush()
	raw := append([]byte(nil), log.Bytes()...)
	// Flip a bit inside the first record's payload: intact data follows, so
	// replay must stop with an error rather than apply garbage.
	raw[6] ^= 0x10
	rebuilt := New()
	if _, err := Replay(rebuilt, bytes.NewReader(raw)); err == nil {
		t.Fatal("mid-log corruption replayed cleanly")
	}
}

func TestWALCorruptTailDropped(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	wal.CreateNode("A")
	wal.SetNodeProp(0, "k", StrVal("value"))
	wal.Flush()
	raw := append([]byte(nil), log.Bytes()...)
	raw[len(raw)-1] ^= 0x10 // bit rot on the final record
	rebuilt := New()
	sum, err := ReplayWithSummary(rebuilt, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("corrupt tail should truncate: %v", err)
	}
	if sum.Applied != 1 || !sum.CorruptTail || rebuilt.NumNodes() != 1 {
		t.Fatalf("sum=%+v nodes=%d", sum, rebuilt.NumNodes())
	}
}

func TestWALDeleteNodeRoundTrip(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(), &log)
	a, _ := wal.CreateNode("Station")
	b, _ := wal.CreateNode("Station")
	if _, err := wal.CreateRel(a, b, "TRIP"); err != nil {
		t.Fatal(err)
	}
	if err := wal.DeleteNode(b); err != nil {
		t.Fatal(err)
	}
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}
	rebuilt := New()
	if _, err := Replay(rebuilt, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumNodes() != 1 || rebuilt.NumRels() != 0 {
		t.Fatalf("nodes=%d rels=%d after replayed delete", rebuilt.NumNodes(), rebuilt.NumRels())
	}
	if got := len(rebuilt.NodesByLabel("Station")); got != 1 {
		t.Fatalf("label index has %d entries", got)
	}
}

func TestRecoverSnapshotPlusLog(t *testing.T) {
	// Build a base store, snapshot it, continue in a WAL, then recover.
	base := New()
	n := base.CreateNode("A")
	base.SetNodeProp(n, "x", IntVal(1))
	var snap bytes.Buffer
	if err := base.Save(&snap); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	wal := NewWAL(base, &log)
	m, _ := wal.CreateNode("B")
	wal.SetNodeProp(m, "y", IntVal(2))
	wal.Flush()

	rec, sum, err := Recover(bytes.NewReader(snap.Bytes()), bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Applied != 2 || rec.NumNodes() != 2 {
		t.Fatalf("applied=%d nodes=%d", sum.Applied, rec.NumNodes())
	}
	if v, ok := rec.NodeProp(m, "y"); !ok || v.I != 2 {
		t.Fatal("log half lost")
	}
	if v, ok := rec.NodeProp(n, "x"); !ok || v.I != 1 {
		t.Fatal("snapshot half lost")
	}
	// Recover with neither source yields an empty store.
	empty, sum2, err := Recover(nil, nil)
	if err != nil || empty.NumNodes() != 0 || sum2.Applied != 0 {
		t.Fatalf("empty recover: %v %+v", err, sum2)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWALWriteErrorFailsFast(t *testing.T) {
	wal := NewWAL(New(), &errWriter{n: 4})
	// Writes buffer 4096 bytes, so force the failure through Flush.
	for i := 0; i < 2000; i++ {
		wal.CreateNode("A")
	}
	if err := wal.Flush(); err == nil {
		t.Fatal("flush on failing writer succeeded")
	}
	if err := wal.SetNodeProp(0, "k", IntVal(1)); err == nil {
		t.Fatal("mutation after write error accepted")
	}
}

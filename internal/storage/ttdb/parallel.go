package ttdb

import (
	"context"
	"sync"

	"hygraph/internal/obs"
)

// parallelFor runs fn(i) for every i in [0, n) across `workers` goroutines.
// Work is partitioned by striding — worker w takes i = w, w+workers, ... —
// so the assignment of items to workers is a pure function of (workers, n),
// never of scheduling. Callers write results into slot i of a pre-sized
// slice and fold the slice sequentially afterwards; that two-phase shape is
// what keeps parallel query results byte-identical to sequential ones (see
// docs/PARALLELISM.md). workers <= 1 degrades to a plain loop with no
// goroutine overhead, which is also the sequential reference path.
func parallelFor(workers, n int, fn func(i int)) {
	parallelForGauged(workers, n, nil, fn)
}

// parallelForGauged is parallelFor with an in-flight gauge tracked at
// *worker* granularity: striding means at most `workers` items run at once,
// so per-worker accounting yields the same high watermark (peak concurrent
// width) as per-item accounting at O(workers) instead of O(n) gauge
// updates. A nil gauge is the uninstrumented path — its Add is a no-op, so
// the only cost is one nil check per worker, never per item.
func parallelForGauged(workers, n int, active *obs.Gauge, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		active.Add(1)
		for i := 0; i < n; i++ {
			fn(i)
		}
		active.Add(-1)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			active.Add(1)
			defer active.Add(-1)
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// parallelForCtx is parallelFor with cooperative cancellation: every worker
// checks the context between items and stops dispatching once it is done, so
// a server-assigned deadline cancels a fan-out after at most one in-flight
// item per worker. Items completed before the cancellation are left in the
// caller's result slice; the non-nil error tells the caller to discard them.
// The item → worker assignment is the same pure striding as parallelFor, so
// an uncancelled run is byte-identical to the plain executor's.
func parallelForCtx(ctx context.Context, workers, n int, active *obs.Gauge, fn func(i int)) error {
	if ctx == nil {
		parallelForGauged(workers, n, active, fn)
		return nil
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		active.Add(1)
		defer active.Add(-1)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			active.Add(1)
			defer active.Add(-1)
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

package ttdb

import "sync"

// parallelFor runs fn(i) for every i in [0, n) across `workers` goroutines.
// Work is partitioned by striding — worker w takes i = w, w+workers, ... —
// so the assignment of items to workers is a pure function of (workers, n),
// never of scheduling. Callers write results into slot i of a pre-sized
// slice and fold the slice sequentially afterwards; that two-phase shape is
// what keeps parallel query results byte-identical to sequential ones (see
// docs/PARALLELISM.md). workers <= 1 degrades to a plain loop with no
// goroutine overhead, which is also the sequential reference path.
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

package ttdb

import (
	"context"

	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

// This file is the context-aware query surface the network service layer
// (internal/server) drives: every Table 1 query gets a *Ctx variant that
// honors cancellation and deadlines. The fan-out queries (Q4–Q6, Q8) check
// the context between work items inside the worker pool, so a
// server-assigned per-request budget cancels a slow multi-station scan
// after at most one in-flight item per worker; the single-entity probes
// (Q1–Q3, Q7) check at their store-read boundaries, which bounds wasted
// work by one series scan. An uncancelled run is byte-identical to the
// plain methods — the ctx variants share the untimed bodies and the same
// deterministic merge discipline.

// ctxErr reports a done context's error; a nil context never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Q1TimeRangeCtx is Q1TimeRange with cancellation.
func (p *Polyglot) Q1TimeRangeCtx(ctx context.Context, st StationID, start, end ts.Time) ([]ts.Point, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sw := p.obs.q[0].Start()
	defer sw.Stop()
	return p.T.Range(key(st), start, end), nil
}

// Q2FilteredRangeCtx is Q2FilteredRange with cancellation.
func (p *Polyglot) Q2FilteredRangeCtx(ctx context.Context, st StationID, start, end ts.Time, below float64) ([]ts.Point, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sw := p.obs.q[1].Start()
	defer sw.Stop()
	var out []ts.Point
	p.T.RangeFunc(key(st), start, end, func(t ts.Time, v float64) {
		if v < below {
			out = append(out, ts.Point{T: t, V: v})
		}
	})
	return out, ctxErr(ctx)
}

// Q3StationMeanCtx is Q3StationMean with cancellation.
func (p *Polyglot) Q3StationMeanCtx(ctx context.Context, st StationID, start, end ts.Time) (float64, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	sw := p.obs.q[2].Start()
	defer sw.Stop()
	return p.meanOf(st, start, end), nil
}

// shardSummariesC is shardSummaries with per-shard cancellation checks in
// the worker pool. On cancellation the partial parts are discarded.
func (p *Polyglot) shardSummariesC(ctx context.Context, start, end ts.Time) ([]tsstore.EntitySummary, error) {
	parts := make([][]tsstore.EntitySummary, p.T.NumShards())
	if err := p.obs.parallelForCtx(ctx, p.workers, len(parts), func(i int) {
		parts[i] = p.T.AggregateShard(i, Metric, start, end)
	}); err != nil {
		return nil, err
	}
	return tsstore.MergeBySeq(parts), nil
}

// Q4AllStationMeansCtx is Q4AllStationMeans with cancellation.
func (p *Polyglot) Q4AllStationMeansCtx(ctx context.Context, start, end ts.Time) (map[StationID]float64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sw := p.obs.q[3].Start()
	defer sw.Stop()
	sums, err := p.shardSummariesC(ctx, start, end)
	if err != nil {
		return nil, err
	}
	out := make(map[StationID]float64, len(sums))
	for _, e := range sums {
		if e.Count > 0 {
			out[StationID(e.Entity)] = e.Mean()
		} else {
			out[StationID(e.Entity)] = 0
		}
	}
	return out, nil
}

// Q5DistrictSumsCtx is Q5DistrictSums with cancellation: both fan-out phases
// (shard summaries, district lookups) check the context per item; the
// sequential fold is unchanged, so an uncancelled run folds bit-identically.
func (p *Polyglot) Q5DistrictSumsCtx(ctx context.Context, start, end ts.Time) (map[string]float64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sw := p.obs.q[4].Start()
	defer sw.Stop()
	sums, err := p.shardSummariesC(ctx, start, end)
	if err != nil {
		return nil, err
	}
	districts := make([]string, len(sums))
	if err := p.obs.parallelForCtx(ctx, p.workers, len(sums), func(i int) {
		districts[i] = "?"
		if v, ok := p.G.NodeProp(StationID(sums[i].Entity), "district"); ok {
			districts[i] = v.S
		}
	}); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i := range sums {
		out[districts[i]] += sums[i].Sum
	}
	return out, nil
}

// Q6TopKStationsCtx is Q6TopKStations with cancellation.
func (p *Polyglot) Q6TopKStationsCtx(ctx context.Context, start, end ts.Time, k int) ([]StationID, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sw := p.obs.q[5].Start()
	defer sw.Stop()
	sums, err := p.shardSummariesC(ctx, start, end)
	if err != nil {
		return nil, err
	}
	m := make(map[StationID]float64, len(sums))
	for _, e := range sums {
		if e.Count > 0 {
			m[StationID(e.Entity)] = e.Mean()
		}
	}
	return topK(m, k), nil
}

// Q7CorrelationCtx is Q7Correlation with cancellation, checked between the
// two stores' reads (the correlation pushdown itself is one store call).
func (p *Polyglot) Q7CorrelationCtx(ctx context.Context, x, y StationID, start, end, bucket ts.Time) (float64, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	sw := p.obs.q[6].Start()
	defer sw.Stop()
	var r float64
	if bucket > 0 {
		r = p.T.CorrelateResampled(key(x), key(y), start, end, bucket)
	} else {
		r = p.T.Correlate(key(x), key(y), start, end)
	}
	return r, ctxErr(ctx)
}

// DownsampleCtx is Downsample with cancellation, checked at the store-read
// boundary like the other single-entity probes.
func (p *Polyglot) DownsampleCtx(ctx context.Context, st StationID, start, end, bucket ts.Time, agg ts.AggFunc) ([]ts.Point, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return p.Downsample(st, start, end, bucket, agg), nil
}

// Q8NeighborMeansCtx is Q8NeighborMeans with cancellation: the per-neighbor
// summary pushdowns check the context per item in the worker pool.
func (p *Polyglot) Q8NeighborMeansCtx(ctx context.Context, st StationID, start, end ts.Time) (map[StationID]float64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sw := p.obs.q[7].Start()
	defer sw.Stop()
	ns := p.G.Neighbors(st, "TRIP")
	means := make([]float64, len(ns))
	if err := p.obs.parallelForCtx(ctx, p.workers, len(ns), func(i int) {
		means[i] = p.meanOf(ns[i], start, end)
	}); err != nil {
		return nil, err
	}
	out := make(map[StationID]float64, len(ns))
	for i, n := range ns {
		out[n] = means[i]
	}
	return out, nil
}

package ttdb

import (
	"context"
	"fmt"

	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

// Context-aware variants of the durable query surface, combining the engine's
// cancellation plumbing (ctx.go) with the degraded-mode contract of
// durable.go: a done context wins over everything (the caller's budget is
// spent, so not even the graph-derivable partial result is computed), and a
// degraded time-series store still returns the same partial results the
// plain methods do, with an error satisfying errors.Is(err, ErrDegraded).

// Q1TimeRangeCtx is Q1TimeRange with cancellation.
func (d *DurablePolyglot) Q1TimeRangeCtx(ctx context.Context, st StationID, start, end ts.Time) ([]ts.Point, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Q1"); err != nil {
		return nil, err
	}
	return d.eng.Q1TimeRangeCtx(ctx, st, start, end)
}

// Q2FilteredRangeCtx is Q2FilteredRange with cancellation.
func (d *DurablePolyglot) Q2FilteredRangeCtx(ctx context.Context, st StationID, start, end ts.Time, below float64) ([]ts.Point, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Q2"); err != nil {
		return nil, err
	}
	return d.eng.Q2FilteredRangeCtx(ctx, st, start, end, below)
}

// Q3StationMeanCtx is Q3StationMean with cancellation.
func (d *DurablePolyglot) Q3StationMeanCtx(ctx context.Context, st StationID, start, end ts.Time) (float64, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if err := d.tsCheck("Q3"); err != nil {
		return 0, err
	}
	return d.eng.Q3StationMeanCtx(ctx, st, start, end)
}

// Q4AllStationMeansCtx is Q4AllStationMeans with cancellation; degraded
// calls still enumerate the stations with zero means.
func (d *DurablePolyglot) Q4AllStationMeansCtx(ctx context.Context, start, end ts.Time) (map[StationID]float64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Q4"); err != nil {
		out := map[StationID]float64{}
		for _, st := range d.eng.G.NodesByLabel("Station") {
			out[st] = 0
		}
		return out, err
	}
	return d.eng.Q4AllStationMeansCtx(ctx, start, end)
}

// Q5DistrictSumsCtx is Q5DistrictSums with cancellation; degraded calls
// still return the district partition with zero sums.
func (d *DurablePolyglot) Q5DistrictSumsCtx(ctx context.Context, start, end ts.Time) (map[string]float64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Q5"); err != nil {
		out := map[string]float64{}
		for _, st := range d.eng.G.NodesByLabel("Station") {
			// The degraded partition still fans out over every station under
			// the graph lock; a cancelled caller should not keep paying for it.
			if cerr := ctxErr(ctx); cerr != nil {
				return nil, cerr
			}
			district := "?"
			if v, ok := d.eng.G.NodeProp(st, "district"); ok {
				district = v.S
			}
			out[district] += 0
		}
		return out, err
	}
	return d.eng.Q5DistrictSumsCtx(ctx, start, end)
}

// Q6TopKStationsCtx is Q6TopKStations with cancellation.
func (d *DurablePolyglot) Q6TopKStationsCtx(ctx context.Context, start, end ts.Time, k int) ([]StationID, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Q6"); err != nil {
		return nil, err
	}
	return d.eng.Q6TopKStationsCtx(ctx, start, end, k)
}

// Q7CorrelationCtx is Q7Correlation with cancellation.
func (d *DurablePolyglot) Q7CorrelationCtx(ctx context.Context, x, y StationID, start, end, bucket ts.Time) (float64, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if err := d.tsCheck("Q7"); err != nil {
		return 0, err
	}
	return d.eng.Q7CorrelationCtx(ctx, x, y, start, end, bucket)
}

// Q8NeighborMeansCtx is Q8NeighborMeans with cancellation; degraded calls
// still return the neighbor set with zero means.
func (d *DurablePolyglot) Q8NeighborMeansCtx(ctx context.Context, st StationID, start, end ts.Time) (map[StationID]float64, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Q8"); err != nil {
		out := map[StationID]float64{}
		for _, n := range d.eng.G.Neighbors(st, "TRIP") {
			out[n] = 0
		}
		return out, err
	}
	return d.eng.Q8NeighborMeansCtx(ctx, st, start, end)
}

// DownsampleCtx is the durable engine's windowed-aggregate read: the
// continuous-aggregate cache under write-through delta maintenance, so a
// client that just had AppendPoint acknowledged reads its own write in the
// aggregate (the delta applies before the WAL append returns). Same degraded
// contract as the Q*Ctx methods.
func (d *DurablePolyglot) DownsampleCtx(ctx context.Context, st StationID, start, end, bucket ts.Time, agg ts.AggFunc) ([]ts.Point, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("Downsample"); err != nil {
		return nil, err
	}
	return d.eng.DownsampleCtx(ctx, st, start, end, bucket, agg)
}

// EntitySummariesCtx returns the per-entity summaries of the metric over
// [start, end) in hypertable insertion order — the partition-local fragment a
// scatter-gather coordinator (internal/coord) merges for Q4–Q6. Entities are
// LOCAL station ids; the caller owns the mapping back to its global id space.
// Same degraded contract as the Q*Ctx methods: a done context wins, a
// degraded TS store returns an error satisfying errors.Is(err, ErrDegraded).
func (d *DurablePolyglot) EntitySummariesCtx(ctx context.Context, start, end ts.Time) ([]tsstore.EntitySummary, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := d.tsCheck("EntitySummaries"); err != nil {
		return nil, err
	}
	return d.eng.shardSummariesC(ctx, start, end)
}

// SyncAll forces every buffered record on all three logs (graph WAL,
// time-series WAL, intent journal) to durable storage — the drain step of a
// graceful server shutdown: after SyncAll returns nil, every acknowledged
// write is recoverable even though streaming appends only Commit (ride
// shared flushes) on the hot path. The first failing log aborts the sync;
// its error names the log so operators know which artifact is suspect.
func (d *DurablePolyglot) SyncAll() error {
	if err := d.gw.Flush(); err != nil {
		return fmt.Errorf("ttdb: sync graph wal: %w", err)
	}
	if err := d.tw.Flush(); err != nil {
		return fmt.Errorf("ttdb: sync ts wal: %w", err)
	}
	if err := d.jw.Sync(); err != nil {
		return fmt.Errorf("ttdb: sync intent journal: %w", err)
	}
	return nil
}

package ttdb

import (
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/ts"
)

// loadWorkload fills an engine with a small deterministic bike-sharing
// workload and returns the station ids.
func loadWorkload(t *testing.T, e Engine) []StationID {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	districts := []string{"north", "south", "east"}
	var sts []StationID
	for i := 0; i < 9; i++ {
		st, err := e.AddStation("st", districts[i%3])
		if err != nil {
			t.Fatal(err)
		}
		sts = append(sts, st)
	}
	for i := 0; i < 9; i++ {
		if err := e.AddTrip(sts[i], sts[(i+1)%9], 1+rng.Intn(5)); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range sts {
		s := ts.New(Metric)
		for h := 0; h < 24*14; h++ { // 14 days hourly
			v := 10 + float64(i) + 3*math.Sin(2*math.Pi*float64(h%24)/24)
			s.MustAppend(ts.Time(h)*ts.Hour, v)
		}
		if err := e.LoadSeries(st, s); err != nil {
			t.Fatal(err)
		}
	}
	return sts
}

// Both engines must return identical answers on every query: the polyglot
// layout is an optimization, not a semantics change.
func TestEnginesAgree(t *testing.T) {
	neo := NewAllInGraph()
	pg := NewPolyglot(ts.Day)
	stN := loadWorkload(t, neo)
	stP := loadWorkload(t, pg)
	start, end := 2*ts.Day, 9*ts.Day

	// Q1
	p1 := neo.Q1TimeRange(stN[0], start, end)
	p2 := pg.Q1TimeRange(stP[0], start, end)
	if len(p1) != len(p2) || len(p1) != 24*7 {
		t.Fatalf("Q1 lens %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("Q1[%d]: %v vs %v", i, p1[i], p2[i])
		}
	}
	// Q2
	f1 := neo.Q2FilteredRange(stN[1], start, end, 9.5)
	f2 := pg.Q2FilteredRange(stP[1], start, end, 9.5)
	if len(f1) != len(f2) || len(f1) == 0 {
		t.Fatalf("Q2 lens %d vs %d", len(f1), len(f2))
	}
	for _, p := range f1 {
		if p.V >= 9.5 {
			t.Fatalf("Q2 filter leaked %v", p)
		}
	}
	// Q3
	m1 := neo.Q3StationMean(stN[2], start, end)
	m2 := pg.Q3StationMean(stP[2], start, end)
	if math.Abs(m1-m2) > 1e-9 || math.Abs(m1-12) > 0.01 {
		t.Fatalf("Q3 %v vs %v", m1, m2)
	}
	// Q4
	a1 := neo.Q4AllStationMeans(start, end)
	a2 := pg.Q4AllStationMeans(start, end)
	if len(a1) != 9 || len(a2) != 9 {
		t.Fatalf("Q4 sizes %d/%d", len(a1), len(a2))
	}
	for i := range stN {
		if math.Abs(a1[stN[i]]-a2[stP[i]]) > 1e-9 {
			t.Fatalf("Q4 station %d: %v vs %v", i, a1[stN[i]], a2[stP[i]])
		}
	}
	// Q5
	d1 := neo.Q5DistrictSums(start, end)
	d2 := pg.Q5DistrictSums(start, end)
	if len(d1) != 3 || len(d2) != 3 {
		t.Fatalf("Q5 sizes %d/%d", len(d1), len(d2))
	}
	for k, v := range d1 {
		if math.Abs(v-d2[k]) > 1e-6 {
			t.Fatalf("Q5 %s: %v vs %v", k, v, d2[k])
		}
	}
	// Q6: highest-index stations have the highest base level.
	k1 := neo.Q6TopKStations(start, end, 3)
	k2 := pg.Q6TopKStations(start, end, 3)
	if len(k1) != 3 || len(k2) != 3 {
		t.Fatalf("Q6 %v / %v", k1, k2)
	}
	for i := range k1 {
		if k1[i] != stN[8-i] || k2[i] != stP[8-i] {
			t.Fatalf("Q6 order: %v vs expected descending", k1)
		}
	}
	// Q7: all stations share the same daily shape → correlation ≈ 1.
	c1 := neo.Q7Correlation(stN[0], stN[5], start, end, ts.Hour)
	c2 := pg.Q7Correlation(stP[0], stP[5], start, end, ts.Hour)
	if math.Abs(c1-c2) > 1e-6 || c1 < 0.99 {
		t.Fatalf("Q7 %v vs %v", c1, c2)
	}
	// Q8: ring topology → exactly two neighbors each.
	n1 := neo.Q8NeighborMeans(stN[0], start, end)
	n2 := pg.Q8NeighborMeans(stP[0], start, end)
	if len(n1) != 2 || len(n2) != 2 {
		t.Fatalf("Q8 sizes %d/%d", len(n1), len(n2))
	}
	for i := range stN {
		if v, ok := n1[stN[i]]; ok {
			if math.Abs(v-n2[stP[i]]) > 1e-9 {
				t.Fatalf("Q8 neighbor %d: %v vs %v", i, v, n2[stP[i]])
			}
		}
	}
}

func TestAllInGraphPropertyExplosion(t *testing.T) {
	// The paper's observation: storing points as properties explodes the
	// property count (series length + metadata per station).
	neo := NewAllInGraph()
	st, err := neo.AddStation("x", "d")
	if err != nil {
		t.Fatal(err)
	}
	s := ts.New(Metric)
	n := 500
	for i := 0; i < n; i++ {
		s.MustAppend(ts.Time(i), float64(i))
	}
	if err := neo.LoadSeries(st, s); err != nil {
		t.Fatal(err)
	}
	if got := neo.G.NodePropCount(st); got != n+2 { // + name + district
		t.Fatalf("prop chain length=%d want %d", got, n+2)
	}
}

func TestPointKeyRoundTrip(t *testing.T) {
	for _, tt := range []ts.Time{0, 1, 999999999999} {
		k := pointKey(tt)
		got, ok := parsePointKey(k)
		if !ok || got != tt {
			t.Fatalf("round trip %d via %q -> %d,%v", tt, k, got, ok)
		}
	}
	if _, ok := parsePointKey("name"); ok {
		t.Fatal("non-point key parsed")
	}
	if _, ok := parsePointKey(Metric + "@abc"); ok {
		t.Fatal("garbage timestamp parsed")
	}
}

func TestDescribeAndNames(t *testing.T) {
	if len(QueryNames) != 8 {
		t.Fatalf("names=%v", QueryNames)
	}
	for _, q := range QueryNames {
		if Describe(q) == "" || Describe(q) == Describe("Q99") {
			t.Fatalf("describe(%s)=%q", q, Describe(q))
		}
	}
}

func TestEngineNames(t *testing.T) {
	if NewAllInGraph().Name() != "neo4j-sim" || NewPolyglot(0).Name() != "ttdb" {
		t.Fatal("engine names")
	}
}

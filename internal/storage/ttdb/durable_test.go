package ttdb

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"hygraph/internal/faults"
	"hygraph/internal/ts"
)

// disk simulates the durable artifacts a crash leaves behind: only flushed
// bytes exist. The live DurablePolyglot and its in-memory stores are simply
// dropped at "crash" time; recovery sees these buffers alone.
type disk struct {
	graphLog, tsLog, journal bytes.Buffer
}

func (dk *disk) open(t *testing.T) *DurablePolyglot {
	t.Helper()
	d := NewDurable(ts.Day, &dk.graphLog, &dk.tsLog, &dk.journal)
	d.Retry = RetryPolicy{MaxAttempts: 3} // no backoff sleeps in tests
	return d
}

func (dk *disk) recover(t *testing.T) (*Polyglot, PolyglotRecovery) {
	t.Helper()
	eng, rec, err := RecoverPolyglot(nil, bytes.NewReader(dk.graphLog.Bytes()),
		nil, bytes.NewReader(dk.tsLog.Bytes()),
		bytes.NewReader(dk.journal.Bytes()), ts.Day)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	return eng, rec
}

func stationSeries(i int) *ts.Series {
	s := ts.New(Metric)
	for h := 0; h < 48; h++ {
		s.MustAppend(ts.Time(h)*ts.Hour, 10+float64(i)+math.Sin(float64(h)))
	}
	return s
}

// ingestUntilCrash ingests stations (with a trip chaining each to the
// previous) until an operation fails, returning the committed ids.
func ingestUntilCrash(d *DurablePolyglot, n int) []StationID {
	var ids []StationID
	for i := 0; i < n; i++ {
		id, err := d.IngestStation("st", "d", stationSeries(i))
		if err != nil {
			return ids
		}
		ids = append(ids, id)
		if len(ids) >= 2 {
			if err := d.AddTrip(ids[len(ids)-2], id, 3); err != nil {
				return ids
			}
		}
	}
	return ids
}

// TestCrashMatrix is the issue's crash-matrix acceptance test: arm every
// fault point at several visit counts, run a bike-sharing-style ingest until
// the injected "crash", recover from the flushed bytes only, and require the
// cross-store invariant — every committed station survives whole, nothing is
// half-applied, no orphan nodes or series.
func TestCrashMatrix(t *testing.T) {
	points := []string{
		FaultJournalAppend,
		FaultIngestGraph,
		FaultIngestTS,
		"graphstore.wal.append",
		"graphstore.wal.flush",
		"tsstore.wal.append",
		"tsstore.wal.flush",
	}
	const stations = 6
	for _, pt := range points {
		// Varying Nth walks the crash across protocol steps and txns.
		for nth := 1; nth <= 9; nth += 2 {
			t.Run(pt+"/nth="+string(rune('0'+nth)), func(t *testing.T) {
				defer faults.Reset()
				faults.Reset()
				var dk disk
				d := dk.open(t)
				faults.Enable(pt, faults.Spec{Err: errors.New("injected crash"), Nth: nth})
				committed := ingestUntilCrash(d, stations)
				crashed := len(committed) < stations
				faults.Reset() // the "reboot": faults are gone

				eng, rec := dk.recover(t)
				if err := CheckConsistency(eng); err != nil {
					t.Fatalf("inconsistent after recovery: %v\nsummary:\n%s", err, rec)
				}
				// Every station the live engine committed must survive whole.
				for _, id := range committed {
					if !eng.G.NodeExists(id) {
						t.Fatalf("committed station %d lost its node", id)
					}
					if !eng.T.HasSeries(key(id)) {
						t.Fatalf("committed station %d lost its series", id)
					}
				}
				if crashed && rec.Txns == 0 && dk.journal.Len() > 0 {
					t.Fatal("crash occurred but recovery saw no transactions")
				}
				// Recovery is idempotent: recovering the same disk twice
				// converges to the same station set.
				eng2, _ := dk.recover(t)
				if got, want := len(eng2.G.NodesByLabel("Station")), len(eng.G.NodesByLabel("Station")); got != want {
					t.Fatalf("second recovery diverged: %d vs %d stations", got, want)
				}
			})
		}
	}
}

// TestJournalRequiredBetweenStores is the headline acceptance criterion: a
// crash between the graph-store write and the TS-store write leaves an
// orphan node that ONLY the intent journal can identify. Recovery with the
// journal restores consistency; recovery ignoring the journal does not.
func TestJournalRequiredBetweenStores(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	if _, err := d.IngestStation("ok", "d", stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	// Kill the second ingest exactly between the two stores' writes.
	faults.Enable(FaultIngestTS, faults.Spec{Err: errors.New("crash between stores")})
	if _, err := d.IngestStation("torn", "d", stationSeries(1)); err == nil {
		t.Fatal("ingest survived the injected crash")
	}
	faults.Reset()

	// Without the journal the orphan node is invisible: both WALs replay
	// cleanly, but station 1 has a node and no series.
	engNoJ, _, err := RecoverPolyglot(nil, bytes.NewReader(dk.graphLog.Bytes()),
		nil, bytes.NewReader(dk.tsLog.Bytes()), nil, ts.Day)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(engNoJ); err == nil {
		t.Fatal("recovery without the journal claims consistency — the test lost its teeth")
	}

	// With the journal the half-applied txn is rolled back.
	eng, rec := dk.recover(t)
	if err := CheckConsistency(eng); err != nil {
		t.Fatalf("journal recovery inconsistent: %v", err)
	}
	if rec.RolledBack != 1 || rec.Committed != 1 {
		t.Fatalf("fates: %+v", rec)
	}
	if n := len(eng.G.NodesByLabel("Station")); n != 1 {
		t.Fatalf("stations after recovery: %d", n)
	}
}

// TestCommitRecordLossRollsForward: when both sides are durable and only the
// COMMIT record is lost, recovery keeps the station (roll-forward).
func TestCommitRecordLossRollsForward(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	// The 3rd journal append of the txn is the COMMIT record.
	faults.Enable(FaultJournalAppend, faults.Spec{Err: errors.New("crash at commit"), Nth: 3})
	id, err := d.IngestStation("st", "d", stationSeries(0))
	if err == nil {
		t.Fatal("commit-record failure not reported")
	}
	faults.Reset()
	eng, rec := dk.recover(t)
	if rec.RolledForward != 1 {
		t.Fatalf("expected roll-forward, got %+v", rec)
	}
	if !eng.G.NodeExists(id) || !eng.T.HasSeries(key(id)) {
		t.Fatal("rolled-forward station incomplete")
	}
	if err := CheckConsistency(eng); err != nil {
		t.Fatal(err)
	}
}

// TestTransientErrorsRetried: transient injections at every point are
// absorbed by the bounded retry and the ingest succeeds end to end.
func TestTransientErrorsRetried(t *testing.T) {
	defer faults.Reset()
	for _, pt := range []string{FaultJournalAppend, FaultIngestGraph, FaultIngestTS} {
		faults.Reset()
		var dk disk
		d := dk.open(t)
		faults.Enable(pt, faults.Spec{Err: errors.New("blip"), Transient: true, Count: 2})
		id, err := d.IngestStation("st", "d", stationSeries(0))
		if err != nil {
			t.Fatalf("%s: transient fault not retried: %v", pt, err)
		}
		if faults.Hits(pt) < 3 {
			t.Fatalf("%s: expected retries, hits=%d", pt, faults.Hits(pt))
		}
		faults.Reset()
		eng, _ := dk.recover(t)
		if !eng.G.NodeExists(id) || !eng.T.HasSeries(key(id)) {
			t.Fatalf("%s: station incomplete after transient retries", pt)
		}
		if err := CheckConsistency(eng); err != nil {
			t.Fatalf("%s: %v", pt, err)
		}
	}
	// Retries exhausted → the error surfaces.
	faults.Reset()
	var dk disk
	d := dk.open(t)
	faults.Enable(FaultIngestTS, faults.Spec{Err: errors.New("stuck"), Transient: true})
	if _, err := d.IngestStation("st", "d", stationSeries(0)); err == nil {
		t.Fatal("unbounded retry")
	}
}

// TestDegradedQueries: with the TS store unreachable, all eight queries
// return ErrDegraded and the graph-derivable partial results.
func TestDegradedQueries(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	var ids []StationID
	for i := 0; i < 4; i++ {
		id, err := d.IngestStation("st", []string{"north", "south"}[i%2], stationSeries(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.AddTrip(ids[0], ids[1], 2); err != nil {
		t.Fatal(err)
	}
	start, end := ts.Time(0), 48*ts.Hour

	// Healthy path first.
	if pts, err := d.Q1TimeRange(ids[0], start, end); err != nil || len(pts) != 48 {
		t.Fatalf("healthy Q1: %d pts, %v", len(pts), err)
	}

	faults.Enable(FaultQueryTS, faults.Spec{Err: errors.New("ts backend down")})
	if _, err := d.Q1TimeRange(ids[0], start, end); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Q1 degraded err: %v", err)
	}
	if _, err := d.Q2FilteredRange(ids[0], start, end, 11); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q2 not degraded")
	}
	if _, err := d.Q3StationMean(ids[0], start, end); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q3 not degraded")
	}
	means, err := d.Q4AllStationMeans(start, end)
	if !errors.Is(err, ErrDegraded) || len(means) != 4 {
		t.Fatalf("Q4 partial: %d entries, %v", len(means), err)
	}
	sums, err := d.Q5DistrictSums(start, end)
	if !errors.Is(err, ErrDegraded) || len(sums) != 2 {
		t.Fatalf("Q5 partial: %v, %v", sums, err)
	}
	if _, err := d.Q6TopKStations(start, end, 2); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q6 not degraded")
	}
	if _, err := d.Q7Correlation(ids[0], ids[1], start, end, ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q7 not degraded")
	}
	nm, err := d.Q8NeighborMeans(ids[0], start, end)
	if !errors.Is(err, ErrDegraded) || len(nm) != 1 {
		t.Fatalf("Q8 partial: %v, %v", nm, err)
	}
	// The typed error carries the query name and unwraps to the cause.
	var de *DegradedError
	_, err = d.Q3StationMean(ids[0], start, end)
	if !errors.As(err, &de) || de.Query != "Q3" || !strings.Contains(de.Error(), "ts store unavailable") {
		t.Fatalf("degraded error shape: %#v", err)
	}

	// Recovery clears degradation.
	faults.Reset()
	if m, err := d.Q3StationMean(ids[0], start, end); err != nil || m == 0 {
		t.Fatalf("post-recovery Q3: %v, %v", m, err)
	}
}

// TestPermanentTSFailureDegradesUntilSuccess: an exhausted TS-side write
// marks the store degraded; the next successful write clears it.
func TestPermanentTSFailureDegradesUntilSuccess(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	if _, err := d.IngestStation("ok", "d", stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	faults.Enable(FaultIngestTS, faults.Spec{Err: errors.New("down"), Count: 5})
	if _, err := d.IngestStation("bad", "d", stationSeries(1)); err == nil {
		t.Fatal("ingest survived permanent TS failure")
	}
	faults.Reset()
	if _, err := d.Q3StationMean(0, 0, 48*ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatalf("queries not degraded after permanent TS failure: %v", err)
	}
	if _, err := d.IngestStation("again", "d", stationSeries(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Q3StationMean(0, 0, 48*ts.Hour); err != nil {
		t.Fatalf("degradation not cleared by successful write: %v", err)
	}
}

// TestResumeAfterCrashReusesNodeID: when a crashed txn's CreateNode never
// reached disk, the next session reuses the node id. A later recovery over
// the combined journal must keep the new txn's station (last-txn-wins).
func TestResumeAfterCrashReusesNodeID(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	if _, err := d.IngestStation("s0", "d", stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	// Crash before any graph byte is flushed: BEGIN is journaled, the node id
	// is claimed on paper but never on disk.
	faults.Enable(FaultIngestGraph, faults.Spec{Err: errors.New("crash")})
	if _, err := d.IngestStation("lost", "d", stationSeries(1)); err == nil {
		t.Fatal("expected crash")
	}
	faults.Reset()

	eng, rec := dk.recover(t)
	if rec.RolledBack != 1 {
		t.Fatalf("fates: %+v", rec)
	}
	// Resume into the same logs and ingest a new station — it reuses id 1.
	d2 := ResumeDurable(eng, &dk.graphLog, &dk.tsLog, &dk.journal, rec.NextTxn)
	d2.Retry = RetryPolicy{MaxAttempts: 1}
	id, err := d2.IngestStation("s1", "d", stationSeries(2))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("expected node id 1 reused, got %d", id)
	}
	// Recover the combined history: the old rolled-back txn must not take
	// the new txn's node with it.
	eng2, rec2 := dk.recover(t)
	if !eng2.G.NodeExists(id) || !eng2.T.HasSeries(key(id)) {
		t.Fatalf("later txn's station destroyed by stale rollback: %+v", rec2)
	}
	if err := CheckConsistency(eng2); err != nil {
		t.Fatal(err)
	}
	if n := len(eng2.G.NodesByLabel("Station")); n != 2 {
		t.Fatalf("stations=%d", n)
	}
}

// TestRecoverySummaryString: the recover CLI renders counts from the summary.
func TestRecoverySummaryString(t *testing.T) {
	faults.Reset()
	var dk disk
	d := dk.open(t)
	if _, err := d.IngestStation("st", "d", stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	_, rec := dk.recover(t)
	out := rec.String()
	for _, want := range []string{"graph:", "ts:", "journal:", "1 committed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if len(rec.Fates) != 1 || rec.Fates[0].Fate != "committed" {
		t.Fatalf("fates: %+v", rec.Fates)
	}
}

// TestCheckConsistencyDetectsBothOrphans guards the guard.
func TestCheckConsistencyDetectsBothOrphans(t *testing.T) {
	eng := NewPolyglot(ts.Day)
	if err := CheckConsistency(eng); err != nil {
		t.Fatal(err)
	}
	st, err := eng.AddStation("orphan-node", "d")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(eng); err == nil {
		t.Fatal("orphan node undetected")
	}
	if err := eng.LoadSeries(st, stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(eng); err != nil {
		t.Fatal(err)
	}
	eng.T.InsertSeries(key(99), stationSeries(1))
	if err := CheckConsistency(eng); err == nil {
		t.Fatal("orphan series undetected")
	}
}

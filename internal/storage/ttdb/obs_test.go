package ttdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"hygraph/internal/faults"
	"hygraph/internal/obs"
	"hygraph/internal/ts"
)

// TestObservedDurableIngest checks the durable layer's counters through a
// healthy ingest run: one begin/prepared/commit journal record and one
// completed ingest per station, WAL appends on both stores.
func TestObservedDurableIngest(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	reg := obs.New()
	d.Instrument(reg)
	for i := 0; i < 3; i++ {
		if _, err := d.IngestStation("st", "d", stationSeries(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	for _, c := range []string{"ttdb.journal.begin", "ttdb.journal.prepared", "ttdb.journal.commit", "ttdb.ingest.stations"} {
		if got := snap.Counters[c]; got != 3 {
			t.Fatalf("%s = %d, want 3", c, got)
		}
	}
	if snap.Counters["graphstore.wal.appends"] == 0 || snap.Counters["tsstore.wal.appends"] == 0 {
		t.Fatalf("WAL appends missing from snapshot: %v", snap.Counters)
	}
	if snap.Counters["ttdb.queries.degraded"] != 0 {
		t.Fatal("healthy run counted degraded queries")
	}
}

// TestObservedDegradedQueries arms the TS-side fault points and checks that
// every degraded answer is counted, that the error still satisfies
// errors.Is(..., ErrDegraded), and that the snapshot keeps serializing while
// faults are armed.
func TestObservedDegradedQueries(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	reg := obs.New()
	d.Instrument(reg)
	id, err := d.IngestStation("ok", "d", stationSeries(0))
	if err != nil {
		t.Fatal(err)
	}

	// A permanent TS-side ingest failure latches tsErr; queries degrade.
	faults.Enable(FaultIngestTS, faults.Spec{Err: errors.New("ts store down")})
	if _, err := d.IngestStation("torn", "d", stationSeries(1)); err == nil {
		t.Fatal("ingest survived the injected TS failure")
	}
	faults.Reset()
	if _, err := d.Q1TimeRange(id, 0, 48*ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatalf("latched failure: got %v, want ErrDegraded", err)
	}
	if _, err := d.Q3StationMean(id, 0, 48*ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatalf("latched failure: got %v, want ErrDegraded", err)
	}
	if got := reg.Snapshot().Counters["ttdb.queries.degraded"]; got != 2 {
		t.Fatalf("degraded counter = %d, want 2", got)
	}

	// The query-time fault point also counts, while armed.
	faults.Enable(FaultQueryTS, faults.Spec{Err: errors.New("query-time outage")})
	if _, err := d.Q2FilteredRange(id, 0, 48*ts.Hour, 11); !errors.Is(err, ErrDegraded) {
		t.Fatalf("armed fault: got %v, want ErrDegraded", err)
	}
	// Snapshots must serialize cleanly even mid-outage.
	if _, err := json.Marshal(reg.Snapshot()); err != nil {
		t.Fatalf("snapshot does not serialize during outage: %v", err)
	}
	faults.Reset()
	if got := reg.Snapshot().Counters["ttdb.queries.degraded"]; got != 3 {
		t.Fatalf("degraded counter = %d, want 3", got)
	}
}

// TestObservedWALFaultStillSnapshots arms the graph-store WAL append fault:
// the ingest fails, but the registry snapshot stays serializable and the
// healthy-side counters keep their pre-fault values.
func TestObservedWALFaultStillSnapshots(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	reg := obs.New()
	d.Instrument(reg)
	if _, err := d.IngestStation("ok", "d", stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Counters["graphstore.wal.appends"]
	if before == 0 {
		t.Fatal("no graph WAL appends before fault")
	}
	faults.Enable("graphstore.wal.append", faults.Spec{Err: errors.New("disk gone")})
	if _, err := d.IngestStation("doomed", "d", stationSeries(1)); err == nil {
		t.Fatal("ingest survived WAL failure")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["graphstore.wal.appends"]; got != before {
		t.Fatalf("failed appends were counted: %d -> %d", before, got)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot does not serialize with fault armed: %v", err)
	}
	if !bytes.Contains(data, []byte("graphstore.wal.appends")) {
		t.Fatal("snapshot JSON missing WAL counters")
	}
}

// TestObservedRecoverySpans crashes an ingest between the stores, then
// recovers with a registry attached: the recovery must leave a root span
// with per-phase children and fate counters behind.
func TestObservedRecoverySpans(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	if _, err := d.IngestStation("ok", "d", stationSeries(0)); err != nil {
		t.Fatal(err)
	}
	faults.Enable(FaultIngestTS, faults.Spec{Err: errors.New("crash between stores")})
	if _, err := d.IngestStation("torn", "d", stationSeries(1)); err == nil {
		t.Fatal("ingest survived the injected crash")
	}
	faults.Reset()

	reg := obs.New()
	eng, rec, err := RecoverPolyglotObserved(nil, bytes.NewReader(dk.graphLog.Bytes()),
		nil, bytes.NewReader(dk.tsLog.Bytes()),
		bytes.NewReader(dk.journal.Bytes()), ts.Day, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(eng); err != nil {
		t.Fatalf("observed recovery inconsistent: %v", err)
	}
	if rec.Committed != 1 || rec.RolledBack != 1 {
		t.Fatalf("fates: %+v", rec)
	}
	snap := reg.Snapshot()
	if snap.Trace == nil {
		t.Fatal("no trace in snapshot")
	}
	for _, span := range []string{"ttdb.recover", "ttdb.recover.graph", "ttdb.recover.ts", "ttdb.recover.journal", "ttdb.recover.fates"} {
		if st, ok := snap.Trace.Totals[span]; !ok || st.Count == 0 {
			t.Fatalf("span %s missing from trace totals: %v", span, snap.Trace.Totals)
		}
	}
	// Child spans must link back to the recovery root.
	var rootID uint64
	for _, s := range snap.Trace.Recent {
		if s.Name == "ttdb.recover" {
			rootID = s.ID
		}
	}
	if rootID == 0 {
		t.Fatal("root recovery span not in recent ring")
	}
	children := 0
	for _, s := range snap.Trace.Recent {
		if s.Parent == rootID {
			children++
		}
	}
	if children < 4 {
		t.Fatalf("recovery root has %d linked children, want >= 4", children)
	}
	if got := snap.Counters["ttdb.recover.txns"]; got != 2 {
		t.Fatalf("ttdb.recover.txns = %d, want 2", got)
	}
	if snap.Counters["ttdb.recover.committed"] != 1 || snap.Counters["ttdb.recover.rolled_back"] != 1 {
		t.Fatalf("fate counters: %v", snap.Counters)
	}
	// The un-observed entry point must stay equivalent.
	eng2, rec2, err := RecoverPolyglot(nil, bytes.NewReader(dk.graphLog.Bytes()),
		nil, bytes.NewReader(dk.tsLog.Bytes()),
		bytes.NewReader(dk.journal.Bytes()), ts.Day)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(eng2); err != nil {
		t.Fatal(err)
	}
	if rec2.Committed != rec.Committed || rec2.RolledBack != rec.RolledBack {
		t.Fatalf("observed and plain recovery disagree: %+v vs %+v", rec, rec2)
	}
}

package ttdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hygraph/internal/faults"
	"hygraph/internal/obs"
	"hygraph/internal/storage/graphstore"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/storage/walrec"
	"hygraph/internal/ts"
)

// Fault points consulted by the durable polyglot layer (see internal/faults).
const (
	// FaultJournalAppend fires before an intent-journal record is written.
	FaultJournalAppend = "ttdb.journal.append"
	// FaultIngestGraph fires before the graph-store side of an ingest.
	FaultIngestGraph = "ttdb.ingest.graph"
	// FaultIngestTS fires before the time-series side of an ingest — i.e.
	// between the two stores' writes, the classic half-committed crash.
	FaultIngestTS = "ttdb.ingest.ts"
	// FaultQueryTS fires when a query touches the time-series store,
	// simulating the TS backend being unreachable.
	FaultQueryTS = "ttdb.query.ts"
)

// ErrDegraded marks a query answered without the time-series store. Callers
// get the graph-derivable part of the result and errors.Is(err, ErrDegraded)
// reports true.
var ErrDegraded = errors.New("ttdb: time-series store unavailable")

// DegradedError carries which query degraded and why. It unwraps to both
// ErrDegraded and the underlying cause.
type DegradedError struct {
	Query string
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("ttdb: %s degraded (ts store unavailable): %v", e.Query, e.Cause)
}

// Unwrap lets errors.Is match ErrDegraded and the cause alike.
func (e *DegradedError) Unwrap() []error { return []error{ErrDegraded, e.Cause} }

// RetryPolicy bounds how the durable layer retries transient storage errors
// (faults.IsTransient). Exponential backoff: BaseDelay, 2x, 4x, ...
type RetryPolicy struct {
	MaxAttempts int           // total attempts; <= 1 means no retry
	BaseDelay   time.Duration // sleep before the first retry; 0 skips sleeping
}

// DefaultRetry is tuned for tests: a few fast attempts.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}

// run invokes op, retrying transient failures per the policy. Permanent
// errors and exhausted retries return the last error.
func (r RetryPolicy) run(op func() error) error {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := r.BaseDelay
	for i := 0; ; i++ {
		err := op()
		if err == nil || !faults.IsTransient(err) || i+1 >= attempts {
			return err
		}
		if delay > 0 {
			time.Sleep(delay)
			delay *= 2
		}
	}
}

// Intent-journal opcodes. One station ingest is one transaction:
//
//	BEGIN(txn, node)    — node id reserved via graphstore.AllocNodeID
//	  ... graph writes flushed ...
//	PREPARED(txn, node) — graph side durable
//	  ... time-series writes flushed ...
//	COMMIT(txn, node)   — both sides durable
//
// Recovery (RecoverPolyglot) replays both stores' WALs and then decides each
// transaction's fate from its last journal record: COMMIT keeps it; PREPARED
// rolls forward when the series made it to disk and rolls back otherwise;
// BEGIN always rolls back. Rollback deletes the graph node and the series,
// both idempotent, so recovering twice is safe.
//
// DELETE(txn, node) is the inverse intent: DeleteStation journals it before
// touching either store, so a crash at any point after the record is durable
// rolls the removal FORWARD — recovery re-deletes the node and the series,
// both idempotent no-ops when the crash happened after the store writes.
const (
	jBegin byte = iota + 1
	jPrepared
	jCommit
	jDelete
)

// DurablePolyglot wraps a Polyglot engine with write-ahead logs on both
// stores plus a cross-store intent journal, making station ingest atomic
// across the graph and time-series sides: after a crash at any point,
// RecoverPolyglot restores a state where every station either has both its
// node and its series or neither.
type DurablePolyglot struct {
	eng *Polyglot
	gw  *graphstore.WAL
	tw  *tsstore.WAL
	jw  *walrec.GroupWriter

	// Retry bounds transient-error retries on every storage operation.
	Retry RetryPolicy

	txn   atomic.Uint64
	tsErr errBox // last permanent TS-side failure; non-nil degrades queries

	obs durObs // metric handles; zero value = instrumentation off
}

// errBox is a mutex-guarded error slot, the concurrency-safe form of the
// degraded-mode latch: ingest clients store into it while query clients read.
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) set(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.err = err
}

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// NewDurable returns an empty durable engine logging to the three writers
// (graph WAL, time-series WAL, intent journal).
func NewDurable(chunkWidth ts.Time, graphLog, tsLog, journal io.Writer) *DurablePolyglot {
	return ResumeDurable(NewPolyglot(chunkWidth), graphLog, tsLog, journal, 0)
}

// ResumeDurable wraps an existing engine (typically the result of
// RecoverPolyglot) with fresh logs. nextTxn must exceed every transaction id
// in any journal the new journal continues (PolyglotRecovery.NextTxn).
func ResumeDurable(eng *Polyglot, graphLog, tsLog, journal io.Writer, nextTxn uint64) *DurablePolyglot {
	d := &DurablePolyglot{
		eng:   eng,
		gw:    graphstore.NewWAL(eng.G, graphLog),
		tw:    tsstore.NewWAL(eng.T, tsLog),
		jw:    walrec.NewGroup(walrec.NewWriter(journal)),
		Retry: DefaultRetry,
	}
	d.txn.Store(nextTxn)
	return d
}

// SetGroupCommit sets the maximum records coalesced into one physical flush
// on all three logs (graph WAL, time-series WAL, intent journal). n <= 1
// restores per-record flushing — the pre-group-commit baseline the mixed
// throughput benchmark compares against.
func (d *DurablePolyglot) SetGroupCommit(n int) {
	d.gw.SetMaxBatch(n)
	d.tw.SetMaxBatch(n)
	d.jw.SetMaxBatch(n)
}

// Engine exposes the wrapped engine for direct (non-durable) reads.
func (d *DurablePolyglot) Engine() *Polyglot { return d.eng }

// Name identifies the engine in reports.
func (d *DurablePolyglot) Name() string { return "ttdb-durable" }

// SetWorkers sets the Q4–Q8 fan-out width of the wrapped engine. Since the
// move to explicit id reservation (AllocNodeID) and group-committed logs,
// ingest is concurrency-safe too: any number of IngestStation/AppendPoint
// clients may run alongside queries — see docs/PARALLELISM.md.
func (d *DurablePolyglot) SetWorkers(n int) { d.eng.SetWorkers(n) }

// journal appends one intent record and commits it through the journal's
// group writer — each protocol step must be durable before the next store
// write starts, but concurrent transactions' steps coalesce into shared
// flushes. A retried closure may re-enqueue a record whose first copy was
// already buffered; duplicates are harmless because recovery keys on the
// LAST record per transaction and the states are idempotent.
func (d *DurablePolyglot) journal(op byte, txn uint64, node StationID) error {
	err := d.Retry.run(func() error {
		if err := faults.Check(FaultJournalAppend); err != nil {
			return err
		}
		buf := make([]byte, 0, 2*binary.MaxVarintLen64+1)
		buf = append(buf, op)
		buf = binary.AppendUvarint(buf, txn)
		buf = binary.AppendUvarint(buf, uint64(node))
		seq, err := d.jw.Append(buf)
		if err != nil {
			return err
		}
		return d.jw.Commit(seq)
	})
	if err != nil {
		return err
	}
	switch op {
	case jBegin:
		d.obs.journalBegin.Inc()
	case jPrepared:
		d.obs.journalPrepared.Inc()
	case jCommit:
		d.obs.journalCommit.Inc()
	case jDelete:
		d.obs.journalDelete.Inc()
	}
	return nil
}

// graphSide writes the station node and its properties, then flushes. The
// closure is safe to retry: CreateNodeAt is guarded by NodeExists on the
// reserved id and property sets are upserts, so a transient failure at any
// point re-runs without duplicating state.
func (d *DurablePolyglot) graphSide(node StationID, name, district string) error {
	return d.Retry.run(func() error {
		if err := faults.Check(FaultIngestGraph); err != nil {
			return err
		}
		if !d.eng.G.NodeExists(node) {
			if err := d.gw.CreateNodeAt(node, "Station"); err != nil {
				return err
			}
		}
		if err := d.gw.SetNodeProp(node, "name", graphstore.StrVal(name)); err != nil {
			return err
		}
		if err := d.gw.SetNodeProp(node, "district", graphstore.StrVal(district)); err != nil {
			return err
		}
		return d.gw.Flush()
	})
}

// tsSide writes the station's series, then flushes. InsertSeries upserts on
// duplicate timestamps, so retrying after a transient flush failure is
// idempotent in the recovered state.
func (d *DurablePolyglot) tsSide(node StationID, s *ts.Series) error {
	return d.Retry.run(func() error {
		if err := faults.Check(FaultIngestTS); err != nil {
			return err
		}
		if err := d.tw.InsertSeries(key(node), s); err != nil {
			return err
		}
		return d.tw.Flush()
	})
}

// IngestStation atomically adds a station and its series across both stores
// using the intent-journal protocol. On a permanent error the in-memory state
// may be half-applied — exactly the state a crash leaves on disk — and
// RecoverPolyglot over the written logs restores consistency; this mirrors
// how a real engine treats an unrecoverable storage fault as fail-stop.
func (d *DurablePolyglot) IngestStation(name, district string, s *ts.Series) (StationID, error) {
	txn := d.txn.Add(1) - 1
	node := d.eng.G.AllocNodeID()
	if err := d.journal(jBegin, txn, node); err != nil {
		return 0, fmt.Errorf("ttdb: txn %d begin: %w", txn, err)
	}
	if err := d.graphSide(node, name, district); err != nil {
		return 0, fmt.Errorf("ttdb: txn %d graph write: %w", txn, err)
	}
	if err := d.journal(jPrepared, txn, node); err != nil {
		return 0, fmt.Errorf("ttdb: txn %d prepared: %w", txn, err)
	}
	if err := d.tsSide(node, s); err != nil {
		d.tsErr.set(err)
		return 0, fmt.Errorf("ttdb: txn %d ts write: %w", txn, err)
	}
	d.tsErr.set(nil)
	if err := d.journal(jCommit, txn, node); err != nil {
		// Both sides are durable; recovery rolls the PREPARED record forward
		// because the series is present. The station is usable.
		return node, fmt.Errorf("ttdb: txn %d commit record: %w", txn, err)
	}
	d.obs.ingests.Inc()
	return node, nil
}

// AddTrip durably records a trip edge. Trips touch only the graph store, so
// no intent journal is needed — the graph WAL alone makes them atomic.
func (d *DurablePolyglot) AddTrip(a, b StationID, count int) error {
	var rel graphstore.RelID
	created := false
	return d.Retry.run(func() error {
		if err := faults.Check(FaultIngestGraph); err != nil {
			return err
		}
		if !created {
			r, err := d.gw.CreateRel(a, b, "TRIP")
			if err != nil {
				return err
			}
			rel, created = r, true
		}
		if err := d.gw.SetRelProp(rel, "count", graphstore.IntVal(int64(count))); err != nil {
			return err
		}
		return d.gw.Flush()
	})
}

// LoadSeries durably attaches (or replaces points of) the metric series of an
// existing station — the Engine-interface loading path. It touches only the
// time-series store, so the TS WAL alone is sufficient; a permanent failure
// latches the degraded-mode error exactly like the ingest path.
func (d *DurablePolyglot) LoadSeries(st StationID, s *ts.Series) error {
	if err := d.tsSide(st, s); err != nil {
		d.tsErr.set(err)
		return fmt.Errorf("ttdb: load series: %w", err)
	}
	d.tsErr.set(nil)
	return nil
}

// DeleteStation atomically removes a station from both stores using the
// intent journal's DELETE record: the intent is durable before either store
// is touched, so a crash at any later point rolls the removal forward during
// recovery (both deletes are idempotent). Incident relationships go with the
// node; deleting an absent station is a durable no-op.
func (d *DurablePolyglot) DeleteStation(st StationID) error {
	txn := d.txn.Add(1) - 1
	if err := d.journal(jDelete, txn, st); err != nil {
		return fmt.Errorf("ttdb: txn %d delete intent: %w", txn, err)
	}
	err := d.Retry.run(func() error {
		if err := faults.Check(FaultIngestGraph); err != nil {
			return err
		}
		if d.eng.G.NodeExists(st) {
			if err := d.gw.DeleteNode(st); err != nil {
				return err
			}
		}
		return d.gw.Flush()
	})
	if err != nil {
		return fmt.Errorf("ttdb: txn %d graph delete: %w", txn, err)
	}
	err = d.Retry.run(func() error {
		if err := faults.Check(FaultIngestTS); err != nil {
			return err
		}
		if err := d.tw.DeleteSeries(key(st)); err != nil {
			return err
		}
		return d.tw.Flush()
	})
	if err != nil {
		d.tsErr.set(err)
		return fmt.Errorf("ttdb: txn %d ts delete: %w", txn, err)
	}
	d.tsErr.set(nil)
	return nil
}

// AddBoundary durably creates a boundary vertex: a graph-only replica of a
// station owned by another partition, labeled "Boundary" so the Station-keyed
// invariants (CheckConsistency, Q4–Q6 enumeration) never see it. The global
// id it mirrors is recorded as the "gid" property so a partition is
// self-describing on reopen. Boundary vertices have no series, so no intent
// journal is needed — the graph WAL alone makes the write durable, and a
// crash between node and property leaves an orphan the reconstruction path
// skips.
func (d *DurablePolyglot) AddBoundary(gid uint64) (StationID, error) {
	node := d.eng.G.AllocNodeID()
	err := d.Retry.run(func() error {
		if err := faults.Check(FaultIngestGraph); err != nil {
			return err
		}
		if !d.eng.G.NodeExists(node) {
			if err := d.gw.CreateNodeAt(node, "Boundary"); err != nil {
				return err
			}
		}
		if err := d.gw.SetNodeProp(node, "gid", graphstore.IntVal(int64(gid))); err != nil {
			return err
		}
		return d.gw.Flush()
	})
	if err != nil {
		return 0, fmt.Errorf("ttdb: add boundary: %w", err)
	}
	return node, nil
}

// DeleteBoundary durably removes a boundary vertex and its incident edges.
// Graph-only, idempotent.
func (d *DurablePolyglot) DeleteBoundary(st StationID) error {
	return d.Retry.run(func() error {
		if err := faults.Check(FaultIngestGraph); err != nil {
			return err
		}
		if d.eng.G.NodeExists(st) {
			if err := d.gw.DeleteNode(st); err != nil {
				return err
			}
		}
		return d.gw.Flush()
	})
}

// TagStation durably records a station's coordinator-global id as the "gid"
// node property, making a partition self-describing for reconstruction
// (coord.Attach reads it back on reopen).
func (d *DurablePolyglot) TagStation(st StationID, gid uint64) error {
	return d.Retry.run(func() error {
		if err := faults.Check(FaultIngestGraph); err != nil {
			return err
		}
		if err := d.gw.SetNodeProp(st, "gid", graphstore.IntVal(int64(gid))); err != nil {
			return err
		}
		return d.gw.Flush()
	})
}

// AppendPoint durably appends one observation to an existing station's
// series — the streaming-ingest op of the mixed read/write workload. It
// touches only the time-series store (the station's node and series already
// exist, so the cross-store invariant holds throughout), which makes the
// TS WAL alone sufficient: no intent journal round trips, and concurrent
// appends coalesce into shared group-commit flushes.
func (d *DurablePolyglot) AppendPoint(st StationID, t ts.Time, v float64) error {
	err := d.Retry.run(func() error {
		if err := faults.Check(FaultIngestTS); err != nil {
			return err
		}
		if err := d.tw.Insert(key(st), t, v); err != nil {
			return err
		}
		// Commit, not Flush: concurrent appenders ride each other's flushes
		// instead of each forcing a physical one.
		return d.tw.Commit()
	})
	if err != nil {
		d.tsErr.set(err)
		return fmt.Errorf("ttdb: append point: %w", err)
	}
	return nil
}

// tsCheck reports whether the time-series store is usable for query q,
// returning a DegradedError otherwise.
func (d *DurablePolyglot) tsCheck(q string) error {
	if err := faults.Check(FaultQueryTS); err != nil {
		d.obs.degraded.Inc()
		return &DegradedError{Query: q, Cause: err}
	}
	if err := d.tsErr.get(); err != nil {
		d.obs.degraded.Inc()
		return &DegradedError{Query: q, Cause: err}
	}
	return nil
}

// Q1TimeRange is Engine.Q1TimeRange with degradation: no partial result is
// derivable from the graph alone, so a degraded call returns nil points.
func (d *DurablePolyglot) Q1TimeRange(st StationID, start, end ts.Time) ([]ts.Point, error) {
	if err := d.tsCheck("Q1"); err != nil {
		return nil, err
	}
	return d.eng.Q1TimeRange(st, start, end), nil
}

// Q2FilteredRange is Engine.Q2FilteredRange with degradation.
func (d *DurablePolyglot) Q2FilteredRange(st StationID, start, end ts.Time, below float64) ([]ts.Point, error) {
	if err := d.tsCheck("Q2"); err != nil {
		return nil, err
	}
	return d.eng.Q2FilteredRange(st, start, end, below), nil
}

// Q3StationMean is Engine.Q3StationMean with degradation.
func (d *DurablePolyglot) Q3StationMean(st StationID, start, end ts.Time) (float64, error) {
	if err := d.tsCheck("Q3"); err != nil {
		return 0, err
	}
	return d.eng.Q3StationMean(st, start, end), nil
}

// Q4AllStationMeans is Engine.Q4AllStationMeans with degradation: the station
// set still comes from the graph store, with zero means, so callers can at
// least enumerate entities while the TS side is down.
func (d *DurablePolyglot) Q4AllStationMeans(start, end ts.Time) (map[StationID]float64, error) {
	if err := d.tsCheck("Q4"); err != nil {
		out := map[StationID]float64{}
		for _, st := range d.eng.G.NodesByLabel("Station") {
			out[st] = 0
		}
		return out, err
	}
	return d.eng.Q4AllStationMeans(start, end), nil
}

// Q5DistrictSums is Engine.Q5DistrictSums with degradation: the district
// partition survives (it lives in the graph), the sums degrade to zero.
func (d *DurablePolyglot) Q5DistrictSums(start, end ts.Time) (map[string]float64, error) {
	if err := d.tsCheck("Q5"); err != nil {
		out := map[string]float64{}
		for _, st := range d.eng.G.NodesByLabel("Station") {
			district := "?"
			if v, ok := d.eng.G.NodeProp(st, "district"); ok {
				district = v.S
			}
			out[district] += 0
		}
		return out, err
	}
	return d.eng.Q5DistrictSums(start, end), nil
}

// Q6TopKStations is Engine.Q6TopKStations with degradation: ranking needs the
// series, so a degraded call returns no ids.
func (d *DurablePolyglot) Q6TopKStations(start, end ts.Time, k int) ([]StationID, error) {
	if err := d.tsCheck("Q6"); err != nil {
		return nil, err
	}
	return d.eng.Q6TopKStations(start, end, k), nil
}

// Q7Correlation is Engine.Q7Correlation with degradation.
func (d *DurablePolyglot) Q7Correlation(x, y StationID, start, end, bucket ts.Time) (float64, error) {
	if err := d.tsCheck("Q7"); err != nil {
		return 0, err
	}
	return d.eng.Q7Correlation(x, y, start, end, bucket), nil
}

// Downsample is Engine.Downsample with the durable degraded-mode contract.
func (d *DurablePolyglot) Downsample(st StationID, start, end, bucket ts.Time, agg ts.AggFunc) ([]ts.Point, error) {
	if err := d.tsCheck("Downsample"); err != nil {
		return nil, err
	}
	return d.eng.Downsample(st, start, end, bucket, agg), nil
}

// Q8NeighborMeans is Engine.Q8NeighborMeans with degradation: the neighbor
// set is pure topology and survives, with zero means.
func (d *DurablePolyglot) Q8NeighborMeans(st StationID, start, end ts.Time) (map[StationID]float64, error) {
	if err := d.tsCheck("Q8"); err != nil {
		out := map[StationID]float64{}
		for _, n := range d.eng.G.Neighbors(st, "TRIP") {
			out[n] = 0
		}
		return out, err
	}
	return d.eng.Q8NeighborMeans(st, start, end), nil
}

// ---------------------------------------------------------------------------
// Recovery

// TxnFate records what recovery decided for one journaled transaction.
type TxnFate struct {
	Txn   uint64
	Node  StationID
	State string // "begin", "prepared", "commit", "delete"
	Fate  string // "committed", "rolled-forward", "rolled-back", "deleted"
}

// PolyglotRecovery summarizes a RecoverPolyglot run.
type PolyglotRecovery struct {
	Graph   graphstore.RecoverySummary
	TS      tsstore.RecoverySummary
	Journal walrec.Summary

	Txns          int
	Committed     int
	RolledForward int // prepared, series present: kept
	RolledBack    int // half-applied: node and series removed
	Deleted       int // delete intents rolled forward: node and series removed
	NextTxn       uint64
	Fates         []TxnFate
}

// String renders the summary for the recover CLI.
func (r PolyglotRecovery) String() string {
	return fmt.Sprintf(
		"graph: %d ops (%s)\nts:    %d ops, %d points (%s)\njournal: %d txns (%s) — %d committed, %d rolled forward, %d rolled back, %d deleted",
		r.Graph.Applied, r.Graph.Summary.String(),
		r.TS.Applied, r.TS.Points, r.TS.Summary.String(),
		r.Txns, r.Journal.String(), r.Committed, r.RolledForward, r.RolledBack, r.Deleted,
	)
}

func stateName(op byte) string {
	switch op {
	case jBegin:
		return "begin"
	case jPrepared:
		return "prepared"
	case jCommit:
		return "commit"
	case jDelete:
		return "delete"
	}
	return fmt.Sprintf("op%d", op)
}

// RecoverPolyglot rebuilds a polyglot engine after a crash from the five
// durable artifacts: optional snapshots and WALs for both stores, plus the
// intent journal. Any reader may be nil. After both stores replay, each
// journaled transaction's last record decides its fate (see the opcode docs);
// rollbacks are applied to the recovered in-memory state only — callers that
// want them durable re-snapshot via Compact-style flows (cmd/hygraph
// recover -compact).
func RecoverPolyglot(graphSnap, graphLog, tsSnap, tsLog, journal io.Reader, chunkWidth ts.Time) (*Polyglot, PolyglotRecovery, error) {
	return RecoverPolyglotObserved(graphSnap, graphLog, tsSnap, tsLog, journal, chunkWidth, nil)
}

// RecoverPolyglotObserved is RecoverPolyglot with instrumentation: each
// recovery phase (graph replay, ts replay, journal scan, fate resolution) is
// recorded as a child span of a "ttdb.recover" root in the registry's tracer,
// and op/point/txn totals land in "ttdb.recover.*" counters. A nil registry
// records nothing and behaves exactly like RecoverPolyglot.
func RecoverPolyglotObserved(graphSnap, graphLog, tsSnap, tsLog, journal io.Reader, chunkWidth ts.Time, reg *obs.Registry) (*Polyglot, PolyglotRecovery, error) {
	root := reg.Tracer().Start("ttdb.recover")
	defer root.End()

	var rec PolyglotRecovery
	gspan := root.Child("ttdb.recover.graph")
	g, gsum, err := graphstore.Recover(graphSnap, graphLog)
	gspan.End()
	rec.Graph = gsum
	reg.Counter("ttdb.recover.graph_ops").Add(int64(gsum.Applied))
	if err != nil {
		return nil, rec, fmt.Errorf("ttdb: graph recovery: %w", err)
	}
	tspan := root.Child("ttdb.recover.ts")
	t, tsum, err := tsstore.Recover(tsSnap, tsLog, chunkWidth)
	tspan.End()
	rec.TS = tsum
	reg.Counter("ttdb.recover.ts_ops").Add(int64(tsum.Applied))
	reg.Counter("ttdb.recover.ts_points").Add(int64(tsum.Points))
	if err != nil {
		return nil, rec, fmt.Errorf("ttdb: ts recovery: %w", err)
	}
	eng := &Polyglot{G: g, T: t}

	type txnState struct {
		node  StationID
		state byte
	}
	states := map[uint64]*txnState{}
	var order []uint64
	if journal != nil {
		jspan := root.Child("ttdb.recover.journal")
		sc := walrec.NewScanner(journal)
		for {
			payload, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rec.Journal = sc.Summary()
				jspan.End()
				return nil, rec, fmt.Errorf("ttdb: intent journal: %w", err)
			}
			op, txn, node, err := parseJournalRecord(payload)
			if err != nil {
				rec.Journal = sc.Summary()
				jspan.End()
				return nil, rec, err
			}
			if st, ok := states[txn]; ok {
				st.state, st.node = op, node
			} else {
				states[txn] = &txnState{node: node, state: op}
				order = append(order, txn)
			}
			if txn >= rec.NextTxn {
				rec.NextTxn = txn + 1
			}
		}
		rec.Journal = sc.Summary()
		jspan.End()
	}

	// A node id can appear in more than one transaction across journal
	// generations: a txn whose CreateNode never reached disk leaves the id
	// free for the next session to allocate again. The node's fate belongs to
	// the LAST txn referencing it — an earlier rolled-back txn must not
	// delete a later txn's node or series.
	lastTxnForNode := map[StationID]uint64{}
	for _, txn := range order {
		if st := states[txn]; txn >= lastTxnForNode[st.node] {
			lastTxnForNode[st.node] = txn
		}
	}

	fspan := root.Child("ttdb.recover.fates")
	defer func() {
		fspan.End()
		reg.Counter("ttdb.recover.txns").Add(int64(rec.Txns))
		reg.Counter("ttdb.recover.committed").Add(int64(rec.Committed))
		reg.Counter("ttdb.recover.rolled_forward").Add(int64(rec.RolledForward))
		reg.Counter("ttdb.recover.rolled_back").Add(int64(rec.RolledBack))
		reg.Counter("ttdb.recover.deleted").Add(int64(rec.Deleted))
	}()
	for _, txn := range order {
		st := states[txn]
		fate := TxnFate{Txn: txn, Node: st.node, State: stateName(st.state)}
		rec.Txns++
		switch {
		case st.state == jCommit:
			rec.Committed++
			fate.Fate = "committed"
		case st.state == jDelete:
			// A journaled delete intent always rolls forward: re-delete both
			// sides (idempotent no-ops when the crash happened after the store
			// writes), unless a later txn re-created the node id.
			if lastTxnForNode[st.node] == txn {
				if g.NodeExists(st.node) {
					if err := g.DeleteNode(st.node); err != nil {
						return nil, rec, fmt.Errorf("ttdb: delete txn %d: %w", txn, err)
					}
				}
				t.DeleteSeries(key(st.node))
			}
			rec.Deleted++
			fate.Fate = "deleted"
		case st.state == jPrepared && t.HasSeries(key(st.node)):
			// Graph and series both made it to disk; only the commit record
			// is missing. Keep the station.
			rec.RolledForward++
			fate.Fate = "rolled-forward"
		default:
			// Half-applied (BEGIN only, or PREPARED with no series): remove
			// whichever side exists. Both deletes are idempotent, and skipped
			// when a later txn owns the node id.
			if lastTxnForNode[st.node] == txn {
				if g.NodeExists(st.node) {
					if err := g.DeleteNode(st.node); err != nil {
						return nil, rec, fmt.Errorf("ttdb: rollback txn %d: %w", txn, err)
					}
				}
				t.DeleteSeries(key(st.node))
			}
			rec.RolledBack++
			fate.Fate = "rolled-back"
		}
		rec.Fates = append(rec.Fates, fate)
	}
	return eng, rec, nil
}

func parseJournalRecord(payload []byte) (op byte, txn uint64, node StationID, err error) {
	if len(payload) < 1 {
		return 0, 0, 0, fmt.Errorf("ttdb: empty journal record")
	}
	op = payload[0]
	if op < jBegin || op > jDelete {
		return 0, 0, 0, fmt.Errorf("ttdb: corrupt journal opcode %d", op)
	}
	rest := payload[1:]
	txn, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("ttdb: corrupt journal txn id")
	}
	nodeU, n2 := binary.Uvarint(rest[n:])
	if n2 <= 0 {
		return 0, 0, 0, fmt.Errorf("ttdb: corrupt journal node id")
	}
	return op, txn, StationID(nodeU), nil
}

// CheckConsistency verifies the cross-store invariant the ingest protocol
// maintains: every Station node has its series and every series belongs to a
// live Station node. It returns nil when consistent.
func CheckConsistency(eng *Polyglot) error {
	for _, st := range eng.G.NodesByLabel("Station") {
		if !eng.T.HasSeries(key(st)) {
			return fmt.Errorf("ttdb: station %d has no series (orphan node)", st)
		}
	}
	for _, k := range eng.T.Keys() {
		if k.Metric != Metric {
			continue
		}
		if !eng.G.NodeExists(StationID(k.Entity)) {
			return fmt.Errorf("ttdb: series %v has no station (orphan series)", k)
		}
	}
	return nil
}

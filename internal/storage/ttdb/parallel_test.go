package ttdb

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"hygraph/internal/faults"
	"hygraph/internal/ts"
)

// Parallel execution is an optimization, not a semantics change: at every
// worker count, Q4–Q8 must return results deep-equal to the sequential
// ones on both engines.
func TestParallelMatchesSequential(t *testing.T) {
	for _, mk := range []func() Engine{
		func() Engine { return NewAllInGraph() },
		func() Engine { return NewPolyglot(ts.Day) },
	} {
		e := mk()
		sts := loadWorkload(t, e)
		start, end := 2*ts.Day, 9*ts.Day
		queries := map[string]func() any{
			"Q4": func() any { return e.Q4AllStationMeans(start, end) },
			"Q5": func() any { return e.Q5DistrictSums(start, end) },
			"Q6": func() any { return e.Q6TopKStations(start, end, 3) },
			"Q7": func() any { return e.Q7Correlation(sts[0], sts[5], start, end, ts.Hour) },
			"Q8": func() any { return e.Q8NeighborMeans(sts[0], start, end) },
		}
		e.SetWorkers(1)
		seq := map[string]any{}
		for q, fn := range queries {
			seq[q] = fn()
		}
		for _, workers := range []int{2, 3, 8, 64} {
			e.SetWorkers(workers)
			for q, fn := range queries {
				if got := fn(); !reflect.DeepEqual(got, seq[q]) {
					t.Fatalf("%s %s workers=%d: %v != sequential %v",
						e.Name(), q, workers, got, seq[q])
				}
			}
		}
	}
}

// parallelFor must visit every index exactly once at any width.
func TestParallelForCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 100} {
		for _, n := range []int{0, 1, 2, 5, 97} {
			visits := make([]int, n)
			var mu sync.Mutex
			parallelFor(workers, n, func(i int) {
				mu.Lock()
				visits[i]++
				mu.Unlock()
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// Concurrent clients firing the whole Q1–Q8 mix against one engine must be
// race-free (meaningful under -race) and return stable answers.
func TestConcurrentMixedQueries(t *testing.T) {
	pg := NewPolyglot(ts.Day)
	sts := loadWorkload(t, pg)
	pg.SetWorkers(4)
	start, end := 2*ts.Day, 9*ts.Day
	wantQ3 := pg.Q3StationMean(sts[2], start, end)
	wantQ5 := pg.Q5DistrictSums(start, end)

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				st := sts[(c+i)%len(sts)]
				pg.Q1TimeRange(st, start, end)
				pg.Q2FilteredRange(st, start, end, 9.5)
				if got := pg.Q3StationMean(sts[2], start, end); got != wantQ3 {
					errc <- errors.New("Q3 unstable under concurrency")
					return
				}
				pg.Q4AllStationMeans(start, end)
				if got := pg.Q5DistrictSums(start, end); !reflect.DeepEqual(got, wantQ5) {
					errc <- errors.New("Q5 unstable under concurrency")
					return
				}
				pg.Q6TopKStations(start, end, 3)
				pg.Q7Correlation(st, sts[(c+i+4)%len(sts)], start, end, ts.Hour)
				pg.Q8NeighborMeans(st, start, end)
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// Concurrent readers must coexist with writers on both engines without
// racing: half the goroutines run the fan-out queries while the other half
// keep ingesting new stations and points.
func TestConcurrentReadersAndWriters(t *testing.T) {
	pg := NewPolyglot(ts.Day)
	loadWorkload(t, pg)
	pg.SetWorkers(4)
	start, end := 2*ts.Day, 9*ts.Day

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				pg.Q4AllStationMeans(start, end)
				pg.Q5DistrictSums(start, end)
				pg.Q6TopKStations(start, end, 3)
			}
		}()
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				st, err := pg.AddStation("w", "west")
				if err != nil {
					t.Error(err)
					return
				}
				s := ts.New(Metric)
				for h := 0; h < 48; h++ {
					s.MustAppend(ts.Time(h)*ts.Hour, float64(c*100+i))
				}
				if err := pg.LoadSeries(st, s); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := len(pg.Q4AllStationMeans(start, end)); got != 9+2*5 {
		t.Fatalf("stations after concurrent ingest: %d", got)
	}
}

// The PR 1 fault points must keep firing on the parallel read path: a
// degraded TS backend fails Q4–Q8 on the durable engine no matter how many
// workers fan the query out.
func TestDurableDegradationFiresWithWorkers(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var g, l, j bytes.Buffer
	d := NewDurable(ts.Day, &g, &l, &j)
	st, err := d.IngestStation("a", "north", sampleDurableSeries(48))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.IngestStation("b", "south", sampleDurableSeries(48)); err != nil {
		t.Fatal(err)
	}
	d.SetWorkers(8)
	faults.Enable(FaultQueryTS, faults.Spec{Err: errors.New("ts backend down")})
	if _, err := d.Q4AllStationMeans(0, 48*ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatalf("parallel Q4 on degraded backend: %v", err)
	}
	if _, err := d.Q5DistrictSums(0, 48*ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatalf("parallel Q5 on degraded backend: %v", err)
	}
	if _, err := d.Q8NeighborMeans(st, 0, 48*ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatalf("parallel Q8 on degraded backend: %v", err)
	}
	faults.Reset()
	if _, err := d.Q4AllStationMeans(0, 48*ts.Hour); err != nil {
		t.Fatalf("Q4 after fault cleared: %v", err)
	}
}

func sampleDurableSeries(n int) *ts.Series {
	s := ts.New(Metric)
	for h := 0; h < n; h++ {
		s.MustAppend(ts.Time(h)*ts.Hour, float64(10+h%24))
	}
	return s
}

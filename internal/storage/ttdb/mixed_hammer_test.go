package ttdb

import (
	"bytes"
	"sync"
	"testing"

	"hygraph/internal/ts"
)

// Race-detector hammer for the durable streaming path: concurrent
// AppendPoint writers spread over striped stores ride shared group commits
// while query clients fold across every stripe. After quiescing, recovery
// from the flushed logs alone must surface every acknowledged append —
// group commit coalesces physical flushes but must never acknowledge a
// record that is not durable.
func TestGroupCommitIngestQueryHammer(t *testing.T) {
	const (
		writers   = 4
		queriers  = 3
		perWriter = 150
	)
	var dk disk
	eng := NewPolyglotSharded(ts.Day, 8)
	d := ResumeDurable(eng, &dk.graphLog, &dk.tsLog, &dk.journal, 0)
	d.Retry = RetryPolicy{MaxAttempts: 3}
	d.SetGroupCommit(16)

	var ids []StationID
	for i := 0; i < 8; i++ {
		id, err := d.IngestStation("st", "d", stationSeries(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	base := ts.Time(48) * ts.Hour // past every preloaded point

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := w*perWriter + i
				st := ids[seq%len(ids)]
				if err := d.AppendPoint(st, base+ts.Time(seq+1)*ts.Minute, float64(seq)); err != nil {
					t.Errorf("append %d: %v", seq, err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				st := ids[(q+i)%len(ids)]
				if _, err := d.Q3StationMean(st, 0, base); err != nil {
					t.Errorf("q3: %v", err)
					return
				}
				if _, err := d.Q4AllStationMeans(0, base+ts.Time(writers*perWriter)*ts.Minute); err != nil {
					t.Errorf("q4: %v", err)
					return
				}
				if _, err := d.Q8NeighborMeans(st, 0, base); err != nil {
					t.Errorf("q8: %v", err)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Crash now: recovery sees only the flushed buffers. Every acknowledged
	// append must be there.
	rec, _, err := RecoverPolyglot(nil, bytes.NewReader(dk.graphLog.Bytes()),
		nil, bytes.NewReader(dk.tsLog.Bytes()),
		bytes.NewReader(dk.journal.Bytes()), ts.Day)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	perStation := make(map[StationID]int)
	for seq := 0; seq < writers*perWriter; seq++ {
		perStation[ids[seq%len(ids)]]++
	}
	for st, want := range perStation {
		pts := rec.Q1TimeRange(st, base+ts.Minute, base+ts.Time(writers*perWriter+1)*ts.Minute)
		if len(pts) != want {
			t.Fatalf("station %d: recovered %d appended points, want %d", st, len(pts), want)
		}
	}
}

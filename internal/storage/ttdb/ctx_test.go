package ttdb

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hygraph/internal/faults"
	"hygraph/internal/ts"
)

// An uncancelled run of every *Ctx variant must be deep-equal to the plain
// query — the ctx plumbing is cancellation, not a semantics change — at both
// sequential and fanned-out widths, and with a nil context (internal callers
// that have no deadline).
func TestCtxVariantsMatchPlain(t *testing.T) {
	pg := NewPolyglot(ts.Day)
	sts := loadWorkload(t, pg)
	start, end := 2*ts.Day, 9*ts.Day

	for _, ctx := range []context.Context{context.Background(), nil} {
		for _, workers := range []int{1, 4} {
			pg.SetWorkers(workers)
			checks := []struct {
				name string
				plain, viaCtx func() (any, error)
			}{
				{"Q1",
					func() (any, error) { return pg.Q1TimeRange(sts[1], start, end), nil },
					func() (any, error) { return pg.Q1TimeRangeCtx(ctx, sts[1], start, end) }},
				{"Q2",
					func() (any, error) { return pg.Q2FilteredRange(sts[1], start, end, 11), nil },
					func() (any, error) { return pg.Q2FilteredRangeCtx(ctx, sts[1], start, end, 11) }},
				{"Q3",
					func() (any, error) { return pg.Q3StationMean(sts[2], start, end), nil },
					func() (any, error) { return pg.Q3StationMeanCtx(ctx, sts[2], start, end) }},
				{"Q4",
					func() (any, error) { return pg.Q4AllStationMeans(start, end), nil },
					func() (any, error) { return pg.Q4AllStationMeansCtx(ctx, start, end) }},
				{"Q5",
					func() (any, error) { return pg.Q5DistrictSums(start, end), nil },
					func() (any, error) { return pg.Q5DistrictSumsCtx(ctx, start, end) }},
				{"Q6",
					func() (any, error) { return pg.Q6TopKStations(start, end, 3), nil },
					func() (any, error) { return pg.Q6TopKStationsCtx(ctx, start, end, 3) }},
				{"Q7",
					func() (any, error) { return pg.Q7Correlation(sts[0], sts[5], start, end, ts.Hour), nil },
					func() (any, error) { return pg.Q7CorrelationCtx(ctx, sts[0], sts[5], start, end, ts.Hour) }},
				{"Q7-unbucketed",
					func() (any, error) { return pg.Q7Correlation(sts[0], sts[5], start, end, 0), nil },
					func() (any, error) { return pg.Q7CorrelationCtx(ctx, sts[0], sts[5], start, end, 0) }},
				{"Q8",
					func() (any, error) { return pg.Q8NeighborMeans(sts[0], start, end), nil },
					func() (any, error) { return pg.Q8NeighborMeansCtx(ctx, sts[0], start, end) }},
			}
			for _, c := range checks {
				want, _ := c.plain()
				got, err := c.viaCtx()
				if err != nil {
					t.Fatalf("%s ctx workers=%d: %v", c.name, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s workers=%d: ctx %v != plain %v", c.name, workers, got, want)
				}
			}
		}
	}
}

// A context that is already done short-circuits every variant with its error
// before any store work runs.
func TestCtxVariantsCancelled(t *testing.T) {
	pg := NewPolyglot(ts.Day)
	sts := loadWorkload(t, pg)
	start, end := 2*ts.Day, 9*ts.Day
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := map[string]func() error{
		"Q1": func() error { _, err := pg.Q1TimeRangeCtx(ctx, sts[0], start, end); return err },
		"Q2": func() error { _, err := pg.Q2FilteredRangeCtx(ctx, sts[0], start, end, 11); return err },
		"Q3": func() error { _, err := pg.Q3StationMeanCtx(ctx, sts[0], start, end); return err },
		"Q4": func() error { _, err := pg.Q4AllStationMeansCtx(ctx, start, end); return err },
		"Q5": func() error { _, err := pg.Q5DistrictSumsCtx(ctx, start, end); return err },
		"Q6": func() error { _, err := pg.Q6TopKStationsCtx(ctx, start, end, 3); return err },
		"Q7": func() error { _, err := pg.Q7CorrelationCtx(ctx, sts[0], sts[1], start, end, ts.Hour); return err },
		"Q8": func() error { _, err := pg.Q8NeighborMeansCtx(ctx, sts[0], start, end); return err },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s with cancelled ctx: %v, want context.Canceled", name, err)
		}
	}
}

// A context cancelled while a fan-out query is mid-flight stops the worker
// pool between items and surfaces the cancellation instead of a result.
func TestCtxCancelsMidFanout(t *testing.T) {
	pg := NewPolyglot(ts.Day)
	loadWorkload(t, pg)
	pg.SetWorkers(2)
	ctx, cancel := context.WithCancel(context.Background())

	// Cancel from inside the first work item: every later per-item check in
	// the pool must observe it.
	var once bool
	err := pg.obs.parallelForCtx(ctx, 2, 64, func(i int) {
		if !once {
			once = true
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallelForCtx after mid-flight cancel: %v", err)
	}

	cancel2Ctx, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := pg.obs.parallelForCtx(cancel2Ctx, 2, 8, func(int) {
		t.Error("work item ran under an already-cancelled context")
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallelForCtx pre-cancelled: %v", err)
	}
}

// The durable ctx variants keep both contracts at once: a done context wins
// over everything, an uncancelled call matches the plain durable query, and
// a degraded time-series store returns the same graph-derivable partials
// the plain methods do — with an error matching ErrDegraded.
func TestDurableCtxVariants(t *testing.T) {
	defer faults.Reset()
	faults.Reset()
	var dk disk
	d := dk.open(t)
	var ids []StationID
	for i := 0; i < 4; i++ {
		id, err := d.IngestStation("st", []string{"north", "south"}[i%2], stationSeries(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.AddTrip(ids[0], ids[1], 2); err != nil {
		t.Fatal(err)
	}
	start, end := ts.Time(0), 48*ts.Hour
	ctx := context.Background()

	// Healthy: ctx results equal plain results.
	if pts, err := d.Q1TimeRangeCtx(ctx, ids[0], start, end); err != nil || len(pts) != 48 {
		t.Fatalf("healthy Q1 ctx: %d pts, %v", len(pts), err)
	}
	if pts, err := d.Q2FilteredRangeCtx(ctx, ids[0], start, end, 11); err != nil || len(pts) == 0 {
		t.Fatalf("healthy Q2 ctx: %d pts, %v", len(pts), err)
	}
	wantQ3 := 0.0
	if m, err := d.Q3StationMeanCtx(ctx, ids[0], start, end); err != nil || m == 0 {
		t.Fatalf("healthy Q3 ctx: %v, %v", m, err)
	} else {
		wantQ3 = m
	}
	if plain, err := d.Q3StationMean(ids[0], start, end); err != nil || plain != wantQ3 {
		t.Fatalf("Q3 ctx %v != plain %v (%v)", wantQ3, plain, err)
	}
	if means, err := d.Q4AllStationMeansCtx(ctx, start, end); err != nil || len(means) != 4 {
		t.Fatalf("healthy Q4 ctx: %d entries, %v", len(means), err)
	}
	if sums, err := d.Q5DistrictSumsCtx(ctx, start, end); err != nil || len(sums) != 2 {
		t.Fatalf("healthy Q5 ctx: %v, %v", sums, err)
	}
	if top, err := d.Q6TopKStationsCtx(ctx, start, end, 2); err != nil || len(top) != 2 {
		t.Fatalf("healthy Q6 ctx: %v, %v", top, err)
	}
	if _, err := d.Q7CorrelationCtx(ctx, ids[0], ids[1], start, end, ts.Hour); err != nil {
		t.Fatalf("healthy Q7 ctx: %v", err)
	}
	if nm, err := d.Q8NeighborMeansCtx(ctx, ids[0], start, end); err != nil || len(nm) != 1 {
		t.Fatalf("healthy Q8 ctx: %v, %v", nm, err)
	}

	// Done context wins — even over a degraded store.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	faults.Enable(FaultQueryTS, faults.Spec{Err: errors.New("ts backend down")})
	if _, err := d.Q4AllStationMeansCtx(dead, start, end); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled beats degraded: %v", err)
	}

	// Degraded store: same partial shapes as the plain methods.
	if _, err := d.Q1TimeRangeCtx(ctx, ids[0], start, end); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Q1 ctx degraded err: %v", err)
	}
	if _, err := d.Q2FilteredRangeCtx(ctx, ids[0], start, end, 11); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q2 ctx not degraded")
	}
	if _, err := d.Q3StationMeanCtx(ctx, ids[0], start, end); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q3 ctx not degraded")
	}
	means, err := d.Q4AllStationMeansCtx(ctx, start, end)
	if !errors.Is(err, ErrDegraded) || len(means) != 4 {
		t.Fatalf("Q4 ctx partial: %d entries, %v", len(means), err)
	}
	sums, err := d.Q5DistrictSumsCtx(ctx, start, end)
	if !errors.Is(err, ErrDegraded) || len(sums) != 2 {
		t.Fatalf("Q5 ctx partial: %v, %v", sums, err)
	}
	if _, err := d.Q6TopKStationsCtx(ctx, start, end, 2); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q6 ctx not degraded")
	}
	if _, err := d.Q7CorrelationCtx(ctx, ids[0], ids[1], start, end, ts.Hour); !errors.Is(err, ErrDegraded) {
		t.Fatal("Q7 ctx not degraded")
	}
	nm, err := d.Q8NeighborMeansCtx(ctx, ids[0], start, end)
	if !errors.Is(err, ErrDegraded) || len(nm) != 1 {
		t.Fatalf("Q8 ctx partial: %v, %v", nm, err)
	}
	faults.Reset()
}

// SyncAll is the drain step of a graceful server shutdown: after it returns
// nil, streaming appends that only rode shared flushes are recoverable from
// the logs alone.
func TestSyncAllMakesStreamedAppendsRecoverable(t *testing.T) {
	faults.Reset()
	var dk disk
	d := dk.open(t)
	d.SetGroupCommit(64)
	id, err := d.IngestStation("st", "north", stationSeries(0))
	if err != nil {
		t.Fatal(err)
	}
	for h := 48; h < 80; h++ {
		if err := d.AppendPoint(id, ts.Time(h)*ts.Hour, float64(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SyncAll(); err != nil {
		t.Fatal(err)
	}
	eng, _ := dk.recover(t)
	got := eng.Q1TimeRange(id, 0, 80*ts.Hour)
	if len(got) != 80 {
		t.Fatalf("recovered %d points after SyncAll, want 80", len(got))
	}
	// Engine/Name accessors used by service code.
	if d.Engine() == nil || d.Name() == "" {
		t.Fatal("Engine/Name accessors broken")
	}
}

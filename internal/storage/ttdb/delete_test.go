package ttdb

import (
	"bytes"
	"errors"
	"testing"

	"hygraph/internal/faults"
)

// TestDeleteStationDurable proves the happy-path delete protocol: the
// station disappears from both stores, survivors stay whole, and replaying
// the logs reproduces the deletion (the WALs carry the store deletes, the
// journal's DELETE record re-asserts them idempotently).
func TestDeleteStationDurable(t *testing.T) {
	var dk disk
	d := dk.open(t)
	var ids []StationID
	for i := 0; i < 3; i++ {
		id, err := d.IngestStation("st", "d", stationSeries(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := d.AddTrip(ids[0], ids[1], 2); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTrip(ids[1], ids[2], 5); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteStation(ids[1]); err != nil {
		t.Fatal(err)
	}
	if d.eng.G.NodeExists(ids[1]) {
		t.Fatal("deleted station still in live graph")
	}
	if d.eng.T.HasSeries(key(ids[1])) {
		t.Fatal("deleted station still has a live series")
	}

	eng, rec := dk.recover(t)
	if rec.Deleted != 1 {
		t.Fatalf("Deleted = %d, want 1", rec.Deleted)
	}
	if eng.G.NodeExists(ids[1]) {
		t.Fatal("deleted station resurrected by recovery")
	}
	if eng.T.HasSeries(key(ids[1])) {
		t.Fatal("deleted series resurrected by recovery")
	}
	for _, id := range []StationID{ids[0], ids[2]} {
		if !eng.G.NodeExists(id) || !eng.T.HasSeries(key(id)) {
			t.Fatalf("survivor %d incomplete after recovery", id)
		}
	}
	if err := CheckConsistency(eng); err != nil {
		t.Fatalf("inconsistent after delete recovery: %v", err)
	}
	// Neighbors of ids[0] must not include the deleted station.
	if ns := eng.G.Neighbors(ids[0], "TRIP"); len(ns) != 0 {
		t.Fatalf("edges to deleted station survived: %v", ns)
	}
}

// TestDeleteStationCrashRollsForward arms a permanent graph-store fault so
// the delete crashes AFTER its journal intent is durable but BEFORE either
// store applied it. Recovery must roll the deletion forward: a journaled
// delete is a promise, not a proposal.
func TestDeleteStationCrashRollsForward(t *testing.T) {
	defer faults.Reset()
	var dk disk
	d := dk.open(t)
	id, err := d.IngestStation("st", "d", stationSeries(0))
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(FaultIngestGraph, faults.Spec{Err: errors.New("disk gone")})
	if err := d.DeleteStation(id); err == nil {
		t.Fatal("DeleteStation succeeded despite armed graph fault")
	}
	faults.Reset()

	eng, rec := dk.recover(t)
	if rec.Deleted != 1 {
		t.Fatalf("Deleted = %d, want 1", rec.Deleted)
	}
	if eng.G.NodeExists(id) {
		t.Fatal("journaled delete not rolled forward: node survived")
	}
	if eng.T.HasSeries(key(id)) {
		t.Fatal("journaled delete not rolled forward: series survived")
	}
	if err := CheckConsistency(eng); err != nil {
		t.Fatalf("inconsistent after rolled-forward delete: %v", err)
	}

	// Recovering twice from the same artifacts must be a no-op (idempotent
	// fates).
	eng2, _ := dk.recover(t)
	if eng2.G.NodeExists(id) || eng2.T.HasSeries(key(id)) {
		t.Fatal("second recovery resurrected the deleted station")
	}
}

// TestBoundaryVertexDurable proves the graph-only boundary-replica ops
// round-trip through the WAL and stay invisible to the Station-keyed
// invariants.
func TestBoundaryVertexDurable(t *testing.T) {
	var dk disk
	d := dk.open(t)
	st, err := d.IngestStation("st", "d", stationSeries(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.TagStation(st, 42); err != nil {
		t.Fatal(err)
	}
	b, err := d.AddBoundary(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddTrip(st, b, 3); err != nil {
		t.Fatal(err)
	}

	eng, _ := dk.recover(t)
	if err := CheckConsistency(eng); err != nil {
		t.Fatalf("boundary vertex broke the station invariant: %v", err)
	}
	if got := len(eng.G.NodesByLabel("Station")); got != 1 {
		t.Fatalf("stations after recovery = %d, want 1", got)
	}
	if got := len(eng.G.NodesByLabel("Boundary")); got != 1 {
		t.Fatalf("boundaries after recovery = %d, want 1", got)
	}
	gv, ok := eng.G.NodeProp(st, "gid")
	if !ok || gv.I != 42 {
		t.Fatalf("station gid tag lost: %v %v", gv, ok)
	}
	bv, ok := eng.G.NodeProp(b, "gid")
	if !ok || bv.I != 7 {
		t.Fatalf("boundary gid lost: %v %v", bv, ok)
	}
	if ns := eng.G.Neighbors(st, "TRIP"); len(ns) != 1 || ns[0] != b {
		t.Fatalf("boundary edge lost: %v", ns)
	}

	// Deleting the boundary removes it and its edges, durably.
	d2 := ResumeDurable(eng, &bytes.Buffer{}, &bytes.Buffer{}, &bytes.Buffer{}, 100)
	if err := d2.DeleteBoundary(b); err != nil {
		t.Fatal(err)
	}
	if eng.G.NodeExists(b) {
		t.Fatal("boundary survived DeleteBoundary")
	}
	if ns := eng.G.Neighbors(st, "TRIP"); len(ns) != 0 {
		t.Fatalf("boundary edges survived DeleteBoundary: %v", ns)
	}
}

package ttdb

import (
	"context"
	"strings"

	"hygraph/internal/obs"
)

// queryObs holds an engine's preallocated metric handles: one latency
// histogram per Table 1 query plus worker-pool fan-out counters. The zero
// value (all nil) is the disabled state — every Start/Stop and increment is a
// nil-check no-op that never reads the clock.
type queryObs struct {
	q      [8]*obs.Histogram // q[i] times Q(i+1)
	fanout *obs.Counter      // parallel fan-outs issued
	items  *obs.Counter      // work items dispatched across fan-outs
	active *obs.Gauge        // in-flight workers; High() = peak fan-out width
}

// newQueryObs builds the handle set under a name prefix ("ttdb" / "neo4j").
func newQueryObs(r *obs.Registry, prefix string) queryObs {
	var o queryObs
	if r == nil {
		return o
	}
	for i, name := range QueryNames {
		o.q[i] = r.Histogram(prefix + "." + strings.ToLower(name))
	}
	o.fanout = r.Counter(prefix + ".fanout.calls")
	o.items = r.Counter(prefix + ".fanout.items")
	o.active = r.Gauge(prefix + ".fanout.active")
	return o
}

// parallelFor dispatches a fan-out through the worker pool, tracking the
// in-flight worker count when instrumented. The uninstrumented path is the
// bare executor.
func (o queryObs) parallelFor(workers, n int, fn func(int)) {
	if o.active == nil {
		parallelFor(workers, n, fn)
		return
	}
	o.fanout.Inc()
	o.items.Add(int64(n))
	parallelForGauged(workers, n, o.active, fn)
}

// parallelForCtx dispatches a cancellable fan-out through the worker pool,
// tracking the in-flight worker count when instrumented. A nil context is
// the uncancellable path, identical to parallelFor.
func (o queryObs) parallelForCtx(ctx context.Context, workers, n int, fn func(int)) error {
	if o.active != nil {
		o.fanout.Inc()
		o.items.Add(int64(n))
	}
	return parallelForCtx(ctx, workers, n, o.active, fn)
}

// Instrument attaches per-query timers and fan-out metrics to the engine and
// cascades to its graph store. Call before the engine is shared across
// goroutines; a nil registry detaches instrumentation.
func (a *AllInGraph) Instrument(r *obs.Registry) {
	a.obs = newQueryObs(r, "neo4j")
	a.G.Instrument(r)
}

// Instrument attaches per-query timers and fan-out metrics to the engine and
// cascades to both stores. Call before the engine is shared across
// goroutines; a nil registry detaches instrumentation.
func (p *Polyglot) Instrument(r *obs.Registry) {
	p.obs = newQueryObs(r, "ttdb")
	p.G.Instrument(r)
	p.T.Instrument(r)
}

// durObs holds the durable layer's preallocated metric handles: intent-
// journal phase counters, completed ingests, and degraded-query count. The
// zero value is the disabled state.
type durObs struct {
	journalBegin    *obs.Counter // BEGIN records durably journaled
	journalPrepared *obs.Counter // PREPARED records durably journaled
	journalCommit   *obs.Counter // COMMIT records durably journaled
	journalDelete   *obs.Counter // DELETE records durably journaled
	ingests         *obs.Counter // station ingests fully committed
	degraded        *obs.Counter // queries answered degraded (ErrDegraded)
}

// Instrument attaches metric handles to the durable layer and cascades to
// the wrapped engine, both stores, and both WALs. Call before the engine is
// shared; a nil registry detaches instrumentation.
func (d *DurablePolyglot) Instrument(r *obs.Registry) {
	d.eng.Instrument(r)
	d.gw.Instrument(r)
	d.tw.Instrument(r)
	if r == nil {
		d.obs = durObs{}
		return
	}
	d.obs = durObs{
		journalBegin:    r.Counter("ttdb.journal.begin"),
		journalPrepared: r.Counter("ttdb.journal.prepared"),
		journalCommit:   r.Counter("ttdb.journal.commit"),
		journalDelete:   r.Counter("ttdb.journal.delete"),
		ingests:         r.Counter("ttdb.ingest.stations"),
		degraded:        r.Counter("ttdb.queries.degraded"),
	}
}

// Package ttdb reproduces the two storage architectures benchmarked in the
// paper's Table 1:
//
//   - AllInGraph: the "Neo4j" baseline — time series stored inside the graph
//     store, every (timestamp, value) observation as a separate property on
//     its node (the paper: "each timestamp and its corresponding value are
//     stored as separate properties ... significantly increases the number
//     of properties, resulting in high write overhead" and property-chain
//     scans at query time).
//
//   - Polyglot: the TimeTravelDB architecture — graph topology in the graph
//     store, series in the time-series store, linked by node id (polyglot
//     persistence). Queries route the structural part to the graph store and
//     the temporal part to the hypertable.
//
// Both engines expose the same eight queries Q1–Q8 over a bike-sharing
// network so the Table 1 harness can time them head-to-head. Q1 is a plain
// time-range probe (the one query the paper shows Neo4j winning), Q2–Q3 add
// filters and single-entity aggregation, and Q4–Q8 aggregate, join, rank and
// correlate across many entities — the regime where all-in-graph storage
// collapses.
package ttdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hygraph/internal/obs"
	"hygraph/internal/storage/graphstore"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

// Metric is the series name used by the bike-sharing workload.
const Metric = "availability"

// StationID identifies a station in either engine (the graph-store node id).
type StationID = graphstore.NodeID

// Engine is the common query surface of both storage architectures. The
// mutating methods return errors rather than panicking: callers on the
// library path handle them, and only explicit Must* helpers may panic.
type Engine interface {
	// Name identifies the engine in reports ("neo4j-sim" / "ttdb").
	Name() string
	// AddStation registers a station with its district; returns its id.
	AddStation(name, district string) (StationID, error)
	// AddTrip records an aggregated trip edge between two stations.
	AddTrip(a, b StationID, count int) error
	// LoadSeries attaches the metric series to a station.
	LoadSeries(st StationID, s *ts.Series) error
	// SetWorkers fixes the fan-out width for the multi-station queries
	// Q4–Q8 (<= 1 selects the sequential path). Results are identical at
	// any width; only wall-clock changes.
	SetWorkers(n int)
	// Instrument attaches metric handles from the registry (per-query
	// timers, fan-out width, store counters). Call before the engine is
	// shared; a nil registry detaches instrumentation. Results are
	// unaffected either way.
	Instrument(r *obs.Registry)

	// Q1: raw time-range fetch for one station.
	Q1TimeRange(st StationID, start, end ts.Time) []ts.Point
	// Q2: range fetch keeping only values below the threshold.
	Q2FilteredRange(st StationID, start, end ts.Time, below float64) []ts.Point
	// Q3: mean of one station over the range.
	Q3StationMean(st StationID, start, end ts.Time) float64
	// Q4: mean per station over the range, for every station.
	Q4AllStationMeans(start, end ts.Time) map[StationID]float64
	// Q5: total availability per district over the range.
	Q5DistrictSums(start, end ts.Time) map[string]float64
	// Q6: the k stations with the highest mean over the range.
	Q6TopKStations(start, end ts.Time, k int) []StationID
	// Q7: Pearson correlation of two stations' series over the range.
	Q7Correlation(a, b StationID, start, end, bucket ts.Time) float64
	// Q8: mean availability of every station adjacent to st via trips.
	Q8NeighborMeans(st StationID, start, end ts.Time) map[StationID]float64
}

// ---------------------------------------------------------------------------
// All-in-graph engine (the Neo4j baseline of Table 1)

// AllInGraph stores series points as individual node properties named
// "<metric>@<timestamp>".
type AllInGraph struct {
	G       *graphstore.DB
	workers int
	obs     queryObs // metric handles; zero value = instrumentation off
}

// NewAllInGraph returns an empty all-in-graph engine.
func NewAllInGraph() *AllInGraph { return &AllInGraph{G: graphstore.New()} }

// Name implements Engine.
func (a *AllInGraph) Name() string { return "neo4j-sim" }

// SetWorkers implements Engine.
func (a *AllInGraph) SetWorkers(n int) { a.workers = n }

// AddStation implements Engine.
func (a *AllInGraph) AddStation(name, district string) (StationID, error) {
	id := a.G.CreateNode("Station")
	if err := a.G.SetNodeProp(id, "name", graphstore.StrVal(name)); err != nil {
		return 0, err
	}
	if err := a.G.SetNodeProp(id, "district", graphstore.StrVal(district)); err != nil {
		return 0, err
	}
	return id, nil
}

// AddTrip implements Engine.
func (a *AllInGraph) AddTrip(x, y StationID, count int) error {
	rel, err := a.G.CreateRel(x, y, "TRIP")
	if err != nil {
		return err
	}
	return a.G.SetRelProp(rel, "count", graphstore.IntVal(int64(count)))
}

// pointKey encodes one observation's property name.
func pointKey(t ts.Time) string { return Metric + "@" + strconv.FormatInt(int64(t), 10) }

// parsePointKey decodes a property name back into a timestamp.
func parsePointKey(key string) (ts.Time, bool) {
	rest, ok := strings.CutPrefix(key, Metric+"@")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return ts.Time(v), true
}

// LoadSeries implements Engine: one property record per observation.
func (a *AllInGraph) LoadSeries(st StationID, s *ts.Series) error {
	for i := 0; i < s.Len(); i++ {
		if err := a.G.SetNodeProp(st, pointKey(s.TimeAt(i)), graphstore.FloatVal(s.ValueAt(i))); err != nil {
			return err
		}
	}
	return nil
}

// scan walks the whole property chain of a station, decoding every record
// and yielding the points inside [start, end). There is no index over the
// chain, so this is O(total properties) per call — the measured bottleneck.
func (a *AllInGraph) scan(st StationID, start, end ts.Time, fn func(ts.Time, float64)) {
	a.G.NodeProps(st, func(key string, val graphstore.PropValue) bool {
		t, ok := parsePointKey(key)
		if !ok || t < start || t >= end {
			return true
		}
		if f, ok := val.AsFloat(); ok {
			fn(t, f)
		}
		return true
	})
}

// rangePoints is the untimed Q1 body, shared with Q7 so composite queries
// don't double-count into Q1's histogram.
func (a *AllInGraph) rangePoints(st StationID, start, end ts.Time) []ts.Point {
	var pts []ts.Point
	a.scan(st, start, end, func(t ts.Time, v float64) { pts = append(pts, ts.Point{T: t, V: v}) })
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts
}

// Q1TimeRange implements Engine.
func (a *AllInGraph) Q1TimeRange(st StationID, start, end ts.Time) []ts.Point {
	sw := a.obs.q[0].Start()
	defer sw.Stop()
	return a.rangePoints(st, start, end)
}

// Q2FilteredRange implements Engine.
func (a *AllInGraph) Q2FilteredRange(st StationID, start, end ts.Time, below float64) []ts.Point {
	sw := a.obs.q[1].Start()
	defer sw.Stop()
	var pts []ts.Point
	a.scan(st, start, end, func(t ts.Time, v float64) {
		if v < below {
			pts = append(pts, ts.Point{T: t, V: v})
		}
	})
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts
}

// meanOf is the untimed Q3 body, shared with Q4/Q6/Q8 fan-outs so composite
// queries don't double-count into Q3's histogram (or pay its timer per item).
func (a *AllInGraph) meanOf(st StationID, start, end ts.Time) float64 {
	var sum float64
	var n int
	a.scan(st, start, end, func(_ ts.Time, v float64) { sum += v; n++ })
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Q3StationMean implements Engine.
func (a *AllInGraph) Q3StationMean(st StationID, start, end ts.Time) float64 {
	sw := a.obs.q[2].Start()
	defer sw.Stop()
	return a.meanOf(st, start, end)
}

// allMeans is the untimed Q4 body, shared with Q6.
func (a *AllInGraph) allMeans(start, end ts.Time) map[StationID]float64 {
	stations := a.G.NodesByLabel("Station")
	means := make([]float64, len(stations))
	a.obs.parallelFor(a.workers, len(stations), func(i int) {
		means[i] = a.meanOf(stations[i], start, end)
	})
	out := make(map[StationID]float64, len(stations))
	for i, st := range stations {
		out[st] = means[i]
	}
	return out
}

// Q4AllStationMeans implements Engine. The per-station scans are
// independent, so they fan out across the worker pool; the merge folds the
// result slice in station order regardless of width.
func (a *AllInGraph) Q4AllStationMeans(start, end ts.Time) map[StationID]float64 {
	sw := a.obs.q[3].Start()
	defer sw.Stop()
	return a.allMeans(start, end)
}

// Q5DistrictSums implements Engine. Per-station sums and district lookups
// run on the worker pool; the district fold runs sequentially in station
// order so float accumulation order is fixed.
func (a *AllInGraph) Q5DistrictSums(start, end ts.Time) map[string]float64 {
	sw := a.obs.q[4].Start()
	defer sw.Stop()
	stations := a.G.NodesByLabel("Station")
	districts := make([]string, len(stations))
	sums := make([]float64, len(stations))
	a.obs.parallelFor(a.workers, len(stations), func(i int) {
		districts[i] = "?"
		if v, ok := a.G.NodeProp(stations[i], "district"); ok {
			districts[i] = v.S
		}
		var sum float64
		a.scan(stations[i], start, end, func(_ ts.Time, v float64) { sum += v })
		sums[i] = sum
	})
	out := map[string]float64{}
	for i := range stations {
		out[districts[i]] += sums[i]
	}
	return out
}

// Q6TopKStations implements Engine.
func (a *AllInGraph) Q6TopKStations(start, end ts.Time, k int) []StationID {
	sw := a.obs.q[5].Start()
	defer sw.Stop()
	return topK(a.allMeans(start, end), k)
}

// Q7Correlation implements Engine.
func (a *AllInGraph) Q7Correlation(x, y StationID, start, end, bucket ts.Time) float64 {
	sw := a.obs.q[6].Start()
	defer sw.Stop()
	sx := ts.FromPoints("x", a.rangePoints(x, start, end))
	sy := ts.FromPoints("y", a.rangePoints(y, start, end))
	return ts.Correlation(sx, sy, bucket)
}

// Q8NeighborMeans implements Engine: the graph store answers adjacency,
// then the per-neighbor chain scans fan out across the worker pool.
func (a *AllInGraph) Q8NeighborMeans(st StationID, start, end ts.Time) map[StationID]float64 {
	sw := a.obs.q[7].Start()
	defer sw.Stop()
	ns := a.G.Neighbors(st, "TRIP")
	means := make([]float64, len(ns))
	a.obs.parallelFor(a.workers, len(ns), func(i int) {
		means[i] = a.meanOf(ns[i], start, end)
	})
	out := make(map[StationID]float64, len(ns))
	for i, n := range ns {
		out[n] = means[i]
	}
	return out
}

// ---------------------------------------------------------------------------
// Polyglot engine (TimeTravelDB)

// Polyglot keeps topology in the graph store and series in the hypertable.
type Polyglot struct {
	G       *graphstore.DB
	T       *tsstore.DB
	workers int
	obs     queryObs // metric handles; zero value = instrumentation off
}

// NewPolyglot returns an empty polyglot engine with the given chunk width
// (<= 0 selects the default).
func NewPolyglot(chunkWidth ts.Time) *Polyglot {
	return &Polyglot{G: graphstore.New(), T: tsstore.New(chunkWidth)}
}

// NewPolyglotSharded is NewPolyglot with an explicit lock-stripe count for
// both stores. shards <= 1 collapses to the single-stripe configuration —
// the pre-striping baseline the mixed throughput benchmark compares against.
func NewPolyglotSharded(chunkWidth ts.Time, shards int) *Polyglot {
	return &Polyglot{G: graphstore.NewSharded(shards), T: tsstore.NewSharded(chunkWidth, shards)}
}

// Name implements Engine.
func (p *Polyglot) Name() string { return "ttdb" }

// SetWorkers implements Engine.
func (p *Polyglot) SetWorkers(n int) { p.workers = n }

// AddStation implements Engine.
func (p *Polyglot) AddStation(name, district string) (StationID, error) {
	id := p.G.CreateNode("Station")
	if err := p.G.SetNodeProp(id, "name", graphstore.StrVal(name)); err != nil {
		return 0, err
	}
	if err := p.G.SetNodeProp(id, "district", graphstore.StrVal(district)); err != nil {
		return 0, err
	}
	return id, nil
}

// AddTrip implements Engine.
func (p *Polyglot) AddTrip(x, y StationID, count int) error {
	rel, err := p.G.CreateRel(x, y, "TRIP")
	if err != nil {
		return err
	}
	return p.G.SetRelProp(rel, "count", graphstore.IntVal(int64(count)))
}

func key(st StationID) tsstore.SeriesKey {
	return tsstore.SeriesKey{Entity: uint32(st), Metric: Metric}
}

// LoadSeries implements Engine: points go to the hypertable, keyed by node.
func (p *Polyglot) LoadSeries(st StationID, s *ts.Series) error {
	p.T.InsertSeries(key(st), s)
	return nil
}

// Q1TimeRange implements Engine.
func (p *Polyglot) Q1TimeRange(st StationID, start, end ts.Time) []ts.Point {
	sw := p.obs.q[0].Start()
	defer sw.Stop()
	return p.T.Range(key(st), start, end)
}

// Q2FilteredRange implements Engine: the value filter is pushed into the
// chunk scan so only matching points are materialized.
func (p *Polyglot) Q2FilteredRange(st StationID, start, end ts.Time, below float64) []ts.Point {
	sw := p.obs.q[1].Start()
	defer sw.Stop()
	var out []ts.Point
	p.T.RangeFunc(key(st), start, end, func(t ts.Time, v float64) {
		if v < below {
			out = append(out, ts.Point{T: t, V: v})
		}
	})
	return out
}

// meanOf is the untimed Q3 body, shared with the Q8 fan-out so composite
// queries don't double-count into Q3's histogram (or pay its timer per item).
func (p *Polyglot) meanOf(st StationID, start, end ts.Time) float64 {
	s := p.T.Aggregate(key(st), start, end)
	if s.Count == 0 {
		return 0
	}
	return s.Mean()
}

// Q3StationMean implements Engine.
func (p *Polyglot) Q3StationMean(st StationID, start, end ts.Time) float64 {
	sw := p.obs.q[2].Start()
	defer sw.Stop()
	return p.meanOf(st, start, end)
}

// shardSummaries fans the metric's per-entity summaries out across the
// worker pool, one whole lock stripe per work item, and merges the parts
// back into hypertable insertion order. Each worker takes a shard's read
// lock exactly once for its whole batch instead of once per station, and
// the merged order makes every downstream fold byte-identical at any worker
// width.
func (p *Polyglot) shardSummaries(start, end ts.Time) []tsstore.EntitySummary {
	parts := make([][]tsstore.EntitySummary, p.T.NumShards())
	p.obs.parallelFor(p.workers, len(parts), func(i int) {
		parts[i] = p.T.AggregateShard(i, Metric, start, end)
	})
	return tsstore.MergeBySeq(parts)
}

// Q4AllStationMeans implements Engine: per-shard summary batches fan out
// across the worker pool, merged in insertion order.
func (p *Polyglot) Q4AllStationMeans(start, end ts.Time) map[StationID]float64 {
	sw := p.obs.q[3].Start()
	defer sw.Stop()
	sums := p.shardSummaries(start, end)
	out := make(map[StationID]float64, len(sums))
	for _, e := range sums {
		if e.Count > 0 {
			out[StationID(e.Entity)] = e.Mean()
		} else {
			out[StationID(e.Entity)] = 0
		}
	}
	return out
}

// Q5DistrictSums implements Engine: aggregation pushdown fans out one lock
// stripe per worker, then the district lookups (graph-store topology) fan
// out per station. The district fold runs sequentially in hypertable
// insertion order, fixing the float accumulation order — sequential and
// parallel runs, and repeated runs of either, all produce bit-identical
// sums (a map-iteration fold would make even two sequential runs differ in
// the last ulp).
func (p *Polyglot) Q5DistrictSums(start, end ts.Time) map[string]float64 {
	sw := p.obs.q[4].Start()
	defer sw.Stop()
	sums := p.shardSummaries(start, end)
	districts := make([]string, len(sums))
	p.obs.parallelFor(p.workers, len(sums), func(i int) {
		districts[i] = "?"
		if v, ok := p.G.NodeProp(StationID(sums[i].Entity), "district"); ok {
			districts[i] = v.S
		}
	})
	out := map[string]float64{}
	for i := range sums {
		out[districts[i]] += sums[i].Sum
	}
	return out
}

// Q6TopKStations implements Engine: summaries fan out like Q4, then one
// deterministic sort ranks the stations (ties by ascending id).
func (p *Polyglot) Q6TopKStations(start, end ts.Time, k int) []StationID {
	sw := p.obs.q[5].Start()
	defer sw.Stop()
	sums := p.shardSummaries(start, end)
	m := make(map[StationID]float64, len(sums))
	for _, e := range sums {
		if e.Count > 0 {
			m[StationID(e.Entity)] = e.Mean()
		}
	}
	return topK(m, k)
}

// Q7Correlation implements Engine: correlation is pushed down into the
// time-series store, the way a TimescaleDB deployment computes corr() in
// SQL instead of shipping points to a client. With a positive bucket both
// sides go through the memoized resample cache (bucket means joined on the
// shared grid, matching ts.Correlation); bucket <= 0 merge-joins raw
// points on exact timestamps.
func (p *Polyglot) Q7Correlation(x, y StationID, start, end, bucket ts.Time) float64 {
	sw := p.obs.q[6].Start()
	defer sw.Stop()
	if bucket > 0 {
		return p.T.CorrelateResampled(key(x), key(y), start, end, bucket)
	}
	return p.T.Correlate(key(x), key(y), start, end)
}

// Downsample returns one station's series resampled to bucket-wide windows
// under agg, served from the hypertable's continuous-aggregate cache: a warm
// window is patched in place per append (write-through deltas), so repeated
// reads under sustained ingest never recompute the whole window. The result
// is element-wise identical to a from-scratch Resample of the raw range.
func (p *Polyglot) Downsample(st StationID, start, end, bucket ts.Time, agg ts.AggFunc) []ts.Point {
	return p.T.Downsample(key(st), start, end, bucket, agg).Points()
}

// Q8NeighborMeans implements Engine: adjacency from the graph store, then
// per-neighbor summary pushdowns on the worker pool.
func (p *Polyglot) Q8NeighborMeans(st StationID, start, end ts.Time) map[StationID]float64 {
	sw := p.obs.q[7].Start()
	defer sw.Stop()
	ns := p.G.Neighbors(st, "TRIP")
	means := make([]float64, len(ns))
	p.obs.parallelFor(p.workers, len(ns), func(i int) {
		means[i] = p.meanOf(ns[i], start, end)
	})
	out := make(map[StationID]float64, len(ns))
	for i, n := range ns {
		out[n] = means[i]
	}
	return out
}

// topK returns the k keys with the largest values, ties by ascending id.
func topK(m map[StationID]float64, k int) []StationID {
	type pair struct {
		id StationID
		v  float64
	}
	ps := make([]pair, 0, len(m))
	for id, v := range m {
		ps = append(ps, pair{id, v})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].v != ps[j].v {
			return ps[i].v > ps[j].v
		}
		return ps[i].id < ps[j].id
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]StationID, k)
	for i := range out {
		out[i] = ps[i].id
	}
	return out
}

// QueryNames lists the Table 1 query ids in order.
var QueryNames = []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"}

// Describe returns the human description of a Table 1 query id.
func Describe(q string) string {
	switch q {
	case "Q1":
		return "time-range fetch, one station"
	case "Q2":
		return "filtered range (value threshold), one station"
	case "Q3":
		return "mean over range, one station"
	case "Q4":
		return "mean over range, all stations"
	case "Q5":
		return "sum per district (topology join + aggregation)"
	case "Q6":
		return "top-k stations by mean"
	case "Q7":
		return "correlation of two stations"
	case "Q8":
		return "graph neighbors + per-neighbor mean (hybrid)"
	}
	return fmt.Sprintf("unknown query %s", q)
}

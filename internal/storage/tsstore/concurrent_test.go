package tsstore

import (
	"reflect"
	"sync"
	"testing"

	"hygraph/internal/ts"
)

func loadNSeries(db *DB, n, pts int) []SeriesKey {
	keys := make([]SeriesKey, n)
	for i := range keys {
		keys[i] = SeriesKey{Entity: uint32(i), Metric: "availability"}
		for h := 0; h < pts; h++ {
			db.Insert(keys[i], ts.Time(h)*ts.Hour, float64(i)+float64(h%24))
		}
	}
	return keys
}

// Concurrent readers across every query shape must be race-free and agree
// with the single-threaded answers.
func TestConcurrentReaders(t *testing.T) {
	db := New(ts.Day)
	keys := loadNSeries(db, 8, 24*7)
	end := ts.Time(24*7) * ts.Hour
	wantAgg := db.Aggregate(keys[3], 0, end)
	wantAll := db.AggregateAll("availability", 0, end)
	wantTop := db.TopKByMean("availability", 0, end, 3)

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := keys[(c+i)%len(keys)]
				db.Range(k, 0, end)
				db.RangeSeries(k, 0, end)
				if got := db.Aggregate(keys[3], 0, end); got != wantAgg {
					t.Error("Aggregate unstable")
					return
				}
				if got := db.AggregateAll("availability", 0, end); !reflect.DeepEqual(got, wantAll) {
					t.Error("AggregateAll unstable")
					return
				}
				if got := db.TopKByMean("availability", 0, end, 3); !reflect.DeepEqual(got, wantTop) {
					t.Error("TopKByMean unstable")
					return
				}
				db.Correlate(k, keys[(c+i+1)%len(keys)], 0, end)
				db.Downsample(k, 0, end, ts.Day, ts.AggMean)
				db.Stats()
				db.Keys()
				db.EntitiesOf("availability")
			}
		}(c)
	}
	// Writers to series outside the read assertions run alongside.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			k := SeriesKey{Entity: uint32(100 + c), Metric: "other"}
			for i := 0; i < 50; i++ {
				db.Insert(k, ts.Time(i)*ts.Hour, float64(i))
			}
		}(c)
	}
	wg.Wait()
}

// The resample cache must serve hits after a miss, return an owned copy,
// and drop exactly the written series' entries on mutation.
func TestResampleCache(t *testing.T) {
	db := New(ts.Day)
	keys := loadNSeries(db, 2, 24*7)
	end := ts.Time(24*7) * ts.Hour

	base := db.ResampleCacheStats()
	first := db.Downsample(keys[0], 0, end, ts.Day, ts.AggMean)
	second := db.Downsample(keys[0], 0, end, ts.Day, ts.AggMean)
	st := db.ResampleCacheStats()
	if st.Misses-base.Misses != 1 || st.Hits-base.Hits != 1 {
		t.Fatalf("stats after miss+hit: %+v (base %+v)", st, base)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached result differs from computed result")
	}
	// Mutating the returned series must not poison the cache.
	second.MustAppend(end+ts.Hour, 12345)
	third := db.Downsample(keys[0], 0, end, ts.Day, ts.AggMean)
	if !reflect.DeepEqual(first, third) {
		t.Fatal("caller mutation leaked into the cache")
	}

	// Different (bucket, agg, range) are distinct entries.
	db.Downsample(keys[0], 0, end, ts.Hour*6, ts.AggMean)
	db.Downsample(keys[0], 0, end, ts.Day, ts.AggMax)
	st2 := db.ResampleCacheStats()
	if st2.Misses-st.Misses != 2 {
		t.Fatalf("distinct keys not distinct entries: %+v vs %+v", st2, st)
	}

	// Writing series 0 past every cached window touches no entry: both
	// series' entries stay warm (write-through makes invalidation
	// bucket-granular — see TestUnrelatedWindowsSurviveTailAppend).
	db.Downsample(keys[1], 0, end, ts.Day, ts.AggMean) // miss, warm
	db.Insert(keys[0], end+ts.Hour, 1)
	st3 := db.ResampleCacheStats()
	if st3.Invalidations != st2.Invalidations || st3.Patches != st2.Patches {
		t.Fatalf("out-of-window write touched cache entries: %+v vs %+v", st3, st2)
	}
	db.Downsample(keys[1], 0, end, ts.Day, ts.AggMean)
	db.Downsample(keys[0], 0, end, ts.Day, ts.AggMean)
	if st4 := db.ResampleCacheStats(); st4.Hits-st3.Hits != 2 {
		t.Fatalf("warm entries were wrongly dropped: %+v vs %+v", st4, st3)
	}
	// A write inside a cached window patches the entry in place: the next
	// read is a hit and already includes the new point.
	preHit := db.ResampleCacheStats()
	db.Insert(keys[0], end-ts.Hour/2, 1000)
	st5 := db.ResampleCacheStats()
	if st5.Patches == preHit.Patches {
		t.Fatalf("in-window write patched nothing: %+v", st5)
	}
	patched := db.Downsample(keys[0], 0, end, ts.Day, ts.AggMean)
	if st6 := db.ResampleCacheStats(); st6.Hits-st5.Hits != 1 || st6.Misses != st5.Misses {
		t.Fatalf("patched entry did not serve a hit: %+v vs %+v", st6, st5)
	}
	want := db.RangeSeries(keys[0], 0, end).Resample(ts.Day, ts.AggMean)
	if !patched.Equal(want) {
		t.Fatalf("patched entry diverged from recompute:\n got %v\nwant %v", patched, want)
	}
	// Series 0 reads over a new window recompute — and see the new point.
	after := db.Downsample(keys[0], 0, end+2*ts.Hour, ts.Day, ts.AggMean)
	if after.Len() != first.Len()+1 {
		t.Fatalf("post-write downsample stale: %d vs %d buckets", after.Len(), first.Len())
	}
}

// CorrelateResampled must agree with ts.Correlation over the same window
// and hit the cache on repeat.
func TestCorrelateResampled(t *testing.T) {
	db := New(ts.Day)
	keys := loadNSeries(db, 2, 24*7)
	end := ts.Time(24*7) * ts.Hour

	want := ts.Correlation(
		db.RangeSeries(keys[0], 0, end),
		db.RangeSeries(keys[1], 0, end),
		ts.Hour*6)
	got := db.CorrelateResampled(keys[0], keys[1], 0, end, ts.Hour*6)
	if got != want {
		t.Fatalf("CorrelateResampled=%v ts.Correlation=%v", got, want)
	}
	st := db.ResampleCacheStats()
	if db.CorrelateResampled(keys[0], keys[1], 0, end, ts.Hour*6) != got {
		t.Fatal("repeat correlation changed")
	}
	if st2 := db.ResampleCacheStats(); st2.Hits-st.Hits != 2 || st2.Misses != st.Misses {
		t.Fatalf("repeat correlation missed the cache: %+v vs %+v", st2, st)
	}
}

// The cache cap must bound memory: a full shard evicts one random entry per
// admission instead of growing without limit, and the counters stay exact:
// live entries == misses - evictions - invalidations.
func TestResampleCacheCap(t *testing.T) {
	db := New(ts.Day)
	keys := loadNSeries(db, 1, 48)
	base := db.ResampleCacheStats()
	const n = maxResampleCache + 10
	for i := 0; i < n; i++ {
		db.Downsample(keys[0], 0, ts.Time(48)*ts.Hour, ts.Time(i+1)*ts.Minute, ts.AggMean)
	}
	size := db.resampleCacheLen()
	if size > maxResampleCache {
		t.Fatalf("cache grew past cap: %d", size)
	}
	st := db.ResampleCacheStats()
	misses := st.Misses - base.Misses
	evictions := st.Evictions - base.Evictions
	if misses != n {
		t.Fatalf("expected %d misses, got %d", n, misses)
	}
	if evictions == 0 {
		t.Fatal("overflow evicted nothing")
	}
	if int(misses-evictions) != size {
		t.Fatalf("accounting drift: misses=%d evictions=%d live=%d", misses, evictions, size)
	}
	// A second pass recomputes evicted entries as fresh misses and the
	// accounting identity keeps holding.
	pre := db.ResampleCacheStats()
	for i := 0; i < n; i++ {
		db.Downsample(keys[0], 0, ts.Time(48)*ts.Hour, ts.Time(i+1)*ts.Minute, ts.AggMean)
	}
	post := db.ResampleCacheStats()
	if post.Misses == pre.Misses {
		t.Fatal("evicted entries were not recomputed")
	}
	if int(post.Misses-post.Evictions-post.Invalidations) != db.resampleCacheLen() {
		t.Fatalf("accounting drift after churn: %+v live=%d", post, db.resampleCacheLen())
	}
}

package tsstore

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hygraph/internal/ts"
)

// buildTiered fills a store with enough slots that most chunks seal.
func buildTiered(t *testing.T, shards int) (*DB, []SeriesKey) {
	t.Helper()
	db := NewSharded(100, shards)
	rng := rand.New(rand.NewSource(11))
	keys := []SeriesKey{
		{Entity: 1, Metric: "load"},
		{Entity: 2, Metric: "load"},
		{Entity: 1, Metric: "temp"},
	}
	for _, key := range keys {
		for i := 0; i < 1000; i++ {
			db.Insert(key, ts.Time(i*10), float64(rng.Intn(50)))
		}
	}
	return db, keys
}

func snapshotQueries(db *DB, keys []SeriesKey) []interface{} {
	var out []interface{}
	for _, key := range keys {
		out = append(out, db.Range(key, 0, 10000))
		out = append(out, db.Aggregate(key, 0, 10000))
		out = append(out, db.Aggregate(key, 333, 7777))
		out = append(out, db.Downsample(key, 0, 10000, 500, ts.AggMean))
	}
	return out
}

func TestSpillAndColdScan(t *testing.T) {
	db, keys := buildTiered(t, 4)
	want := snapshotQueries(db, keys)

	before := db.Stats()
	if before.CompressedChunks == 0 {
		t.Fatalf("workload sealed no chunks: %+v", before)
	}
	if err := db.EnableColdTier(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	st, err := db.Spill()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != before.CompressedChunks || st.Bytes == 0 {
		t.Fatalf("spill moved %d blocks (%d bytes), want %d", st.Blocks, st.Bytes, before.CompressedChunks)
	}
	after := db.Stats()
	if after.CompressedChunks != 0 || after.SpilledChunks != before.CompressedChunks {
		t.Fatalf("post-spill stats: %+v", after)
	}
	if after.MemBytes >= before.MemBytes {
		t.Fatalf("spill did not shrink memory: %d -> %d", before.MemBytes, after.MemBytes)
	}

	db.DropBlockCache()
	cold := snapshotQueries(db, keys) // every sealed chunk read from disk
	if !reflect.DeepEqual(cold, want) {
		t.Fatal("cold scan differs from pre-spill results")
	}
	misses := db.CompressionStats().BlockMisses
	if misses == 0 {
		t.Fatal("cold scan hit no decodes")
	}
	warm := snapshotQueries(db, keys)
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("warm scan differs from pre-spill results")
	}
	cs := db.CompressionStats()
	if cs.BlockHits == 0 {
		t.Fatal("warm scan produced no cache hits")
	}
	if db.Err() != nil {
		t.Fatalf("store degraded: %v", db.Err())
	}
	if err := db.CloseColdTier(); err != nil {
		t.Fatal(err)
	}
}

// Writing into a spilled slot must inflate from the spill file, apply the
// write, and keep queries consistent.
func TestWriteIntoSpilledChunkInflates(t *testing.T) {
	db, keys := buildTiered(t, 2)
	if err := db.EnableColdTier(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Spill(); err != nil {
		t.Fatal(err)
	}
	key := keys[0]
	db.Insert(key, 5, 999) // t=5 lives in the first (spilled) slot
	if db.CompressionStats().Inflates == 0 {
		t.Fatal("write into spilled slot did not inflate")
	}
	pts := db.Range(key, 0, 10)
	found := false
	for _, p := range pts {
		if p.T == 5 && p.V == 999 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted point missing after inflate: %+v", pts)
	}
	if s := db.Aggregate(key, 0, 100); s.Max != 999 {
		t.Fatalf("summary not updated after inflate: %+v", s)
	}
	if db.Err() != nil {
		t.Fatalf("store degraded: %v", db.Err())
	}
}

// Snapshots must be self-contained: Save reads spilled payloads back, and
// the snapshot loads into a store with no cold tier attached.
func TestSaveAfterSpillIsSelfContained(t *testing.T) {
	db, keys := buildTiered(t, 2)
	want := snapshotQueries(db, keys)
	if err := db.EnableColdTier(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Spill(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseColdTier(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snapshotQueries(got, keys), want) {
		t.Fatal("snapshot of spilled store loads differently")
	}
	if got.Err() != nil {
		t.Fatalf("loaded store degraded: %v", got.Err())
	}
}

func TestSpillWithoutTierFails(t *testing.T) {
	db := New(0)
	if _, err := db.Spill(); err == nil {
		t.Fatal("Spill without EnableColdTier succeeded")
	}
	if err := db.EnableColdTier(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableColdTier(t.TempDir()); err == nil {
		t.Fatal("double EnableColdTier succeeded")
	}
}

// Deleting a series after spilling must drop its cached decodes; a fresh
// series under the same key must not see stale blocks.
func TestDeleteSpilledSeriesThenReinsert(t *testing.T) {
	db, keys := buildTiered(t, 1)
	if err := db.EnableColdTier(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Spill(); err != nil {
		t.Fatal(err)
	}
	key := keys[0]
	db.Range(key, 0, 10000) // warm the block cache
	if db.blockCacheLen() == 0 {
		t.Fatal("scan did not populate block cache")
	}
	if !db.DeleteSeries(key) {
		t.Fatal("delete failed")
	}
	db.Insert(key, 3, 42)
	pts := db.Range(key, 0, 10000)
	if len(pts) != 1 || pts[0].V != 42 {
		t.Fatalf("reinserted series sees stale data: %+v", pts)
	}
}

// The decoded-block cache must stay bounded under scans of many chunks.
func TestBlockCacheBounded(t *testing.T) {
	db := NewSharded(10, 1)
	key := SeriesKey{Entity: 1, Metric: "m"}
	// 2000 slots => 2000 chunks, all but the last sealed; cap is 1024.
	for i := 0; i < 2000; i++ {
		db.Insert(key, ts.Time(i*10), float64(i))
	}
	db.Range(key, 0, math.MaxInt32)
	if n := db.blockCacheLen(); n > maxBlockCache {
		t.Fatalf("block cache grew to %d, cap %d", n, maxBlockCache)
	}
	if db.CompressionStats().BlockEvictions == 0 {
		t.Fatal("no evictions recorded despite exceeding cap")
	}
}

// Package tsstore implements a TimescaleDB-style time-series store: a
// "hypertable" per metric, partitioned into fixed-width time chunks. Each
// chunk keeps its points in timestamp order for O(log n) range location and
// maintains a small summary (count/sum/min/max) so aggregations over ranges
// that cover whole chunks are answered from summaries without touching the
// points — the pushdown that keeps the paper's TTDB rows flat at tens of
// milliseconds in Table 1.
package tsstore

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hygraph/internal/ts"
)

// SeriesKey identifies one series within the store: an entity id plus a
// metric name (mirroring TimescaleDB's (device, metric) hypertable schema).
type SeriesKey struct {
	Entity uint32
	Metric string
}

// chunk holds the points of one series within one time slot. A chunk is in
// exactly one of three states (docs/STORAGE.md):
//
//	open       times/vals non-nil — the mutable raw layout
//	compressed enc non-nil — sealed into an immutable block (compress.go)
//	spilled    spill non-nil — the block lives in the shard's spill file
//
// The summary (n/sum/minV/maxV) is kept hot in every state, so aggregation
// pushdown over fully covered chunks never touches a compressed payload.
//
// Summary semantics: minV/maxV range over the chunk's non-NaN values only
// (math.Inf(1)/math.Inf(-1) when no such value exists), matching what a
// point scan's `v < min` comparisons naturally compute. sum is a plain fold
// over all values, so one stored NaN poisons sum (and Mean) to NaN — the
// same answer the edge-scan path and a Save/Load recompute produce.
type chunk struct {
	slot  int64 // slot index = floor(time / chunkWidth)
	times []ts.Time
	vals  []float64
	enc   []byte    // compressed block when sealed in memory
	spill *spillRef // block location in the spill file when evicted
	// dec is the chunk's cached decode — a lock-free hint owned by the
	// shard's blockCache, which bounds how many chunks hold one and clears
	// it on eviction/invalidation. Readers under the shard's read lock load
	// it without touching the cache mutex; scans over sealed chunks cost
	// one atomic load when warm.
	dec atomic.Pointer[blockDec]
	// summary
	n    int
	sum  float64
	minV float64
	maxV float64
}

// blockDec is one decoded block: immutable once published via chunk.dec.
type blockDec struct {
	times []ts.Time
	vals  []float64
}

func newChunk(slot int64) *chunk {
	return &chunk{slot: slot, minV: math.Inf(1), maxV: math.Inf(-1)}
}

// sealed reports whether the payload is compressed (in memory or spilled).
// A freshly created chunk has no payload in either form and counts as open.
func (c *chunk) sealed() bool { return c.enc != nil || c.spill != nil }

// add inserts into an open chunk; sealed chunks must be inflated first.
func (c *chunk) add(t ts.Time, v float64) {
	if n := len(c.times); n > 0 && t <= c.times[n-1] {
		// Out-of-order within a chunk: insert to keep sortedness. Rare path.
		i := sort.Search(n, func(i int) bool { return c.times[i] >= t })
		if i < n && c.times[i] == t {
			old := c.vals[i]
			c.vals[i] = v
			if math.IsNaN(old) || math.IsNaN(v) {
				// NaN entering or leaving: incremental maintenance would
				// poison sum forever (or never) — rebuild from the points.
				c.recomputeSummary()
				return
			}
			c.sum += v - old
			// A full min/max rescan is only needed when the replaced value
			// was an extremum — otherwise the new value can only extend the
			// current bounds.
			if old == c.minV || old == c.maxV {
				c.recomputeMinMax()
			} else {
				if v < c.minV {
					c.minV = v
				}
				if v > c.maxV {
					c.maxV = v
				}
			}
			return
		}
		c.times = append(c.times, 0)
		c.vals = append(c.vals, 0)
		copy(c.times[i+1:], c.times[i:])
		copy(c.vals[i+1:], c.vals[i:])
		c.times[i] = t
		c.vals[i] = v
	} else {
		c.times = append(c.times, t)
		c.vals = append(c.vals, v)
	}
	c.n++
	c.sum += v
	// NaN comparisons are false on both branches, so a NaN point leaves
	// min/max untouched — the same skip the scan paths apply.
	if v < c.minV {
		c.minV = v
	}
	if v > c.maxV {
		c.maxV = v
	}
}

func (c *chunk) recomputeMinMax() {
	c.minV, c.maxV = math.Inf(1), math.Inf(-1)
	for _, v := range c.vals {
		if v < c.minV {
			c.minV = v
		}
		if v > c.maxV {
			c.maxV = v
		}
	}
}

// recomputeSummary rebuilds n/sum/min/max from an open chunk's points.
func (c *chunk) recomputeSummary() {
	c.n = len(c.times)
	c.sum = 0
	c.minV, c.maxV = math.Inf(1), math.Inf(-1)
	for _, v := range c.vals {
		c.sum += v
		if v < c.minV {
			c.minV = v
		}
		if v > c.maxV {
			c.maxV = v
		}
	}
}

// series is one hypertable row stream: its chunks ordered by slot.
type series struct {
	chunks []*chunk // sorted by slot
	open   *chunk   // the chunk the last write landed in (nil after Load)
}

func (s *series) chunkFor(slot int64, create bool) *chunk {
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= slot })
	if i < len(s.chunks) && s.chunks[i].slot == slot {
		return s.chunks[i]
	}
	if !create {
		return nil
	}
	c := newChunk(slot)
	s.chunks = append(s.chunks, nil)
	copy(s.chunks[i+1:], s.chunks[i:])
	s.chunks[i] = c
	return c
}

// resampleKey identifies one memoized Downsample result.
type resampleKey struct {
	key                SeriesKey
	start, end, bucket ts.Time
	agg                ts.AggFunc
}

// rcEntry is one continuous aggregate: an incrementally maintained
// resampled view (ts.ContAgg) plus its cache key and its position in the
// shard's key list, kept in sync so random eviction, invalidation, and
// write-through patching are all cheap. In write-through mode a write
// inside the entry's window routes to the owning bucket and patches it in
// place; only std/median tail appends and backfills mark the bucket dirty,
// and those are finalized lazily — a bounded bucket-local rescan — the
// next time the entry is read (see docs/STREAMING.md).
type rcEntry struct {
	rk  resampleKey
	ca  *ts.ContAgg
	idx int // index into the shard's rkeys
}

// maxResampleCache bounds the memo cache across all shards; each shard caps
// its slice at maxResampleCache / shard count. A full shard evicts one
// random entry (cheap, no recency tracking) instead of dropping everything.
const maxResampleCache = 1024

// CacheStats reports resample-cache behaviour for tests and capacity
// reports.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64 // entries dropped by writes to their series
	Evictions     int64 // entries dropped by random eviction at capacity
	Patches       int64 // write-through in-place bucket updates
}

// tsShard is one lock stripe of the store: a private map and insertion-order
// key list, plus this stripe's slice of the resample cache. Everything in
// the struct is guarded by mu. Methods with the *Locked suffix assume the
// caller holds mu (read or write as appropriate).
type tsShard struct {
	mu   sync.RWMutex
	idx  int // this stripe's index, for tier spill-file addressing
	data map[SeriesKey]*series
	keys []SeriesKey // insertion order within the shard
	seqs []uint64    // global insertion sequence per key, for merged iteration

	rcache map[resampleKey]*rcEntry
	rkeys  []resampleKey // parallel key list for O(1) random eviction
	ridx   map[SeriesKey][]*rcEntry // per-series entry list for write-through patching
	rng    uint64        // deterministic xorshift state for eviction picks

	// bc memoizes decoded blocks of sealed chunks. It carries its own lock
	// (see blockCache) so read paths holding only mu's read side can still
	// fill it.
	bc blockCache
}

// DB is the time-series store. All exported methods are safe for concurrent
// use. State is striped across a power-of-two array of independently locked
// shards, selected by hashing the SeriesKey — writers on different series
// almost never contend, and the parallel Q4–Q8 fan-out partitions whole
// shards per worker instead of bouncing one store-wide lock. Each inserted
// key records a global sequence number, so merged iteration (Keys,
// AggregateEach, Save) reproduces the exact single-writer first-insertion
// order and floating-point folds over it stay byte-identical to the
// pre-striping store.
type DB struct {
	chunkWidth ts.Time
	mask       uint32
	shards     []tsShard
	seq        atomic.Uint64 // global insertion sequence
	shardCap   int           // per-shard resample cache capacity

	// compress seals chunks that are no longer being written into immutable
	// delta-of-delta + XOR blocks (compress.go). On by default — the codec
	// is exact, so query results are bit-identical either way. Set before
	// the store is shared.
	compress bool

	// tier is the optional cold tier (tier.go): sealed blocks evicted to
	// per-shard spill files by Spill(). Nil until EnableColdTier.
	tier *tier

	// deg latches the first permanent storage error (corrupt block, spill
	// read failure). Scans return no points for the affected chunk; callers
	// observe the condition via Err().
	deg errLatch

	// writeThrough selects continuous-aggregate maintenance: writes patch
	// cached resample entries in place instead of evicting them. On by
	// default; SetWriteThrough(false) restores invalidate-and-recompute
	// (the bench's comparison baseline). Set before the store is shared.
	writeThrough bool

	// observers is the copy-on-write subscriber list (observe.go): the
	// notify path is one atomic load under the owning shard's write lock,
	// so an empty registry costs the write path nothing. subMu serializes
	// Subscribe/Unsubscribe.
	observers atomic.Pointer[[]Observer]
	subMu     sync.Mutex

	// Cache counters are atomics so the hit path stays on the read lock.
	cacheHits, cacheMisses, cacheInvalidations, cacheEvictions, cachePatches atomic.Int64

	// Compression and block-cache counters, same discipline.
	seals, inflates, blockHits, blockMisses, blockEvictions atomic.Int64

	obs storeObs // metric handles; zero value = instrumentation off
}

// errLatch is a mutex-guarded sticky error slot: the first error wins.
type errLatch struct {
	mu  sync.Mutex
	err error
}

func (b *errLatch) set(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
}

func (b *errLatch) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// DefaultChunkWidth partitions series into week-long chunks, matching
// TimescaleDB's default interval ethos.
const DefaultChunkWidth = 7 * ts.Day

// DefaultShards is the lock-stripe count used by New.
const DefaultShards = 16

// New returns an empty store with the given chunk width (<= 0 selects
// DefaultChunkWidth) and DefaultShards lock stripes.
func New(chunkWidth ts.Time) *DB {
	return NewSharded(chunkWidth, DefaultShards)
}

// NewSharded is New with an explicit lock-stripe count, rounded up to a
// power of two (<= 0 selects one shard — the single-lock layout, used as the
// mixed-throughput baseline).
func NewSharded(chunkWidth ts.Time, shards int) *DB {
	if chunkWidth <= 0 {
		chunkWidth = DefaultChunkWidth
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	db := &DB{
		chunkWidth:   chunkWidth,
		mask:         uint32(n - 1),
		shards:       make([]tsShard, n),
		shardCap:     maxResampleCache / n,
		compress:     true,
		writeThrough: true,
	}
	if db.shardCap < 1 {
		db.shardCap = 1
	}
	bcCap := maxBlockCache / n
	if bcCap < 1 {
		bcCap = 1
	}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.idx = i
		sh.data = map[SeriesKey]*series{}
		sh.rcache = map[resampleKey]*rcEntry{}
		sh.ridx = map[SeriesKey][]*rcEntry{}
		// Fixed per-shard seed: eviction picks are deterministic across runs.
		sh.rng = 0x9E3779B97F4A7C15 * uint64(i+1)
		sh.bc.init(bcCap, 0xD1B54A32D192ED03*uint64(i+1))
	}
	return db
}

// SetCompress toggles sealed-chunk compression. Call before the store is
// shared: the flag is read on every write path without synchronization.
// Disabling it yields the pre-compression raw layout — the baseline the
// storage benchmark and the differential battery compare against.
func (db *DB) SetCompress(on bool) { db.compress = on }

// SetWriteThrough toggles continuous-aggregate maintenance of the resample
// cache. On (the default), writes patch every cached window that covers
// them in place; off restores the invalidate-and-recompute behaviour — the
// baseline the streaming benchmark and the differential battery compare
// against. Call before the store is shared: the flag is read on every
// write path without synchronization.
func (db *DB) SetWriteThrough(on bool) { db.writeThrough = on }

// Err returns the first permanent storage error the store latched (corrupt
// compressed block, spill-file read failure). While non-nil, scans over the
// affected chunks return no points and writes into them are dropped; callers
// should treat the store as degraded (ttdb surfaces this as ErrDegraded).
func (db *DB) Err() error { return db.deg.get() }

// NumShards returns the lock-stripe count.
func (db *DB) NumShards() int { return len(db.shards) }

// shard selects the lock stripe of a key by FNV-1a over entity and metric.
func (db *DB) shard(key SeriesKey) *tsShard {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= (key.Entity >> (8 * i)) & 0xff
		h *= 16777619
	}
	for i := 0; i < len(key.Metric); i++ {
		h ^= uint32(key.Metric[i])
		h *= 16777619
	}
	return &db.shards[h&db.mask]
}

// NumSeries returns how many distinct series the store holds.
func (db *DB) NumSeries() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}

// HasSeries reports whether the key holds any points. The crash-recovery
// layer uses it to decide whether a prepared ingest reached the TS side.
func (db *DB) HasSeries(key SeriesKey) bool {
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.data[key]
	return ok
}

// seqKey pairs a key with its global insertion sequence for merged iteration.
type seqKey struct {
	seq uint64
	key SeriesKey
}

// orderedKeys snapshots every shard's key list (one short read lock per
// shard) and merges by insertion sequence, reproducing global
// first-insertion order.
func (db *DB) orderedKeys() []seqKey {
	var out []seqKey
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for j, k := range sh.keys {
			out = append(out, seqKey{seq: sh.seqs[j], key: k})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Keys returns all series keys in first-insertion order.
func (db *DB) Keys() []SeriesKey {
	ordered := db.orderedKeys()
	out := make([]SeriesKey, len(ordered))
	for i, sk := range ordered {
		out[i] = sk.key
	}
	return out
}

// EntitiesOf returns the entity ids of every series of the metric in
// first-insertion order — the deterministic work list the parallel Q4–Q8
// executor partitions across workers.
func (db *DB) EntitiesOf(metric string) []uint32 {
	var out []uint32
	for _, sk := range db.orderedKeys() {
		if sk.key.Metric == metric {
			out = append(out, sk.key.Entity)
		}
	}
	return out
}

func (db *DB) slotOf(t ts.Time) int64 {
	s := int64(t / db.chunkWidth)
	if t < 0 && t%db.chunkWidth != 0 {
		s--
	}
	return s
}

// Insert adds one point. Upserts on duplicate timestamps. Applied writes
// patch the covering continuous-aggregate entries in place (or, with
// write-through off, invalidate them) and fan out to subscribed observers
// before the shard lock is released, so a read that follows the insert —
// from any goroutine — sees the aggregate including the new point.
func (db *DB) Insert(key SeriesKey, t ts.Time, v float64) {
	db.obs.writes.Inc()
	sh := db.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.insertLocked(db, key, t, v) {
		return
	}
	if db.writeThrough {
		sh.patchLocked(db, key, t, v)
	} else {
		sh.invalidateLocked(db, key)
	}
	sh.notifyLocked(db, MutPoint, key, t, v)
}

// insertLocked applies one point, reporting false when the write was
// dropped because a sealed chunk could not be reinflated (the store is
// degraded; see Err).
func (sh *tsShard) insertLocked(db *DB, key SeriesKey, t ts.Time, v float64) bool {
	s, ok := sh.data[key]
	if !ok {
		s = &series{}
		sh.data[key] = s
		sh.keys = append(sh.keys, key)
		sh.seqs = append(sh.seqs, db.seq.Add(1))
	}
	c := s.chunkFor(db.slotOf(t), true)
	// At most one chunk per series is open at a time: moving the write
	// cursor to a different chunk seals the previous one, and a write into a
	// sealed chunk (the rare out-of-order path) reinflates it first. A
	// failed inflate (latched via Err) drops the write rather than
	// corrupting the chunk.
	if s.open != nil && s.open != c {
		sh.sealLocked(db, s.open)
		s.open = nil
	}
	if c.sealed() && !sh.inflateLocked(db, key, c) {
		return false
	}
	s.open = c
	c.add(t, v)
	return true
}

// sealLocked compresses an open chunk into an immutable block. No-op when
// compression is off or the chunk is already sealed. Callers hold the write
// lock.
func (sh *tsShard) sealLocked(db *DB, c *chunk) {
	if !db.compress || c.sealed() {
		return
	}
	c.enc = encodeChunk(c.times, c.vals)
	c.times, c.vals = nil, nil
	db.seals.Add(1)
	db.obs.seals.Inc()
}

// inflateLocked restores a sealed chunk's raw layout so it can be mutated,
// reading the block back from memory or the spill file and dropping any
// cached decode (it is about to go stale). It reports false — with the error
// latched — when the payload cannot be recovered. Callers hold the write
// lock.
func (sh *tsShard) inflateLocked(db *DB, key SeriesKey, c *chunk) bool {
	if !c.sealed() {
		return true
	}
	block, err := sh.blockBytes(db, c)
	if err != nil {
		db.deg.set(err)
		return false
	}
	times, vals, err := decodeChunk(block)
	if err != nil {
		db.deg.set(err)
		return false
	}
	c.times, c.vals = times, vals
	c.enc, c.spill = nil, nil
	sh.bc.invalidate(blockKey{key: key, slot: c.slot})
	db.inflates.Add(1)
	db.obs.inflates.Inc()
	return true
}

// blockBytes returns a sealed chunk's compressed payload, reading through to
// the spill file for evicted blocks. Callers hold the lock (either side).
func (sh *tsShard) blockBytes(db *DB, c *chunk) ([]byte, error) {
	if c.enc != nil {
		return c.enc, nil
	}
	if c.spill == nil {
		return nil, fmt.Errorf("tsstore: sealed chunk slot %d has no payload", c.slot)
	}
	return db.tier.read(sh.idx, c.spill)
}

// chunkPoints returns a chunk's points in time order, decoding sealed
// payloads through the shard's block cache. The returned slices are shared —
// callers must treat them as read-only. Callers hold the lock (either side);
// a payload that cannot be recovered latches the error and yields no points.
//
// The warm path is one atomic load: the decode hint lives on the chunk
// itself, so the edge scans of an aggregation pushdown don't pay a mutex +
// map lookup per chunk (that overhead was ~25% of Q4–Q8 latency on the
// bench workload). The blockCache still owns the hint — put registers it,
// eviction and invalidation clear it — so decoded memory stays bounded.
func (sh *tsShard) chunkPoints(db *DB, key SeriesKey, c *chunk) ([]ts.Time, []float64) {
	if !c.sealed() {
		return c.times, c.vals
	}
	if d := c.dec.Load(); d != nil {
		db.blockHits.Add(1)
		db.obs.blockHits.Inc()
		return d.times, d.vals
	}
	db.blockMisses.Add(1)
	db.obs.blockMisses.Inc()
	block, err := sh.blockBytes(db, c)
	if err != nil {
		db.deg.set(err)
		return nil, nil
	}
	times, vals, err := decodeChunk(block)
	if err != nil {
		db.deg.set(err)
		return nil, nil
	}
	if evicted := sh.bc.put(blockKey{key: key, slot: c.slot}, c, &blockDec{times: times, vals: vals}); evicted {
		db.blockEvictions.Add(1)
		db.obs.blockEvictions.Inc()
	}
	return times, vals
}

// InsertSeries bulk-loads a whole series under the key. Each applied point
// routes through the continuous aggregates and the observer fan-out in
// order, exactly as the equivalent sequence of Inserts would.
func (db *DB) InsertSeries(key SeriesKey, src *ts.Series) {
	db.obs.writes.Inc()
	sh := db.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < src.Len(); i++ {
		t, v := src.TimeAt(i), src.ValueAt(i)
		if !sh.insertLocked(db, key, t, v) {
			continue
		}
		if db.writeThrough {
			sh.patchLocked(db, key, t, v)
		}
		sh.notifyLocked(db, MutPoint, key, t, v)
	}
	if !db.writeThrough {
		sh.invalidateLocked(db, key)
	}
}

// DeleteSeries removes a series and all its chunks. It reports whether the
// key existed; deleting an absent key is a no-op, so crash-recovery rollback
// can apply it idempotently.
func (db *DB) DeleteSeries(key SeriesKey) bool {
	sh := db.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.invalidateLocked(db, key)
	if _, ok := sh.data[key]; !ok {
		// Absent key: a pure no-op must not count as a write, or the obs
		// write counters the mixed bench reports drift from effective work
		// (idempotent crash-recovery rollbacks delete freely).
		return false
	}
	db.obs.writes.Inc()
	sh.bc.invalidateKey(key)
	delete(sh.data, key)
	for i, k := range sh.keys {
		if k == key {
			sh.keys = append(sh.keys[:i], sh.keys[i+1:]...)
			sh.seqs = append(sh.seqs[:i], sh.seqs[i+1:]...)
			break
		}
	}
	sh.notifyLocked(db, MutDeleteSeries, key, 0, 0)
	return true
}

// invalidateLocked drops every cached resample derived from the series.
// Resample entries live in the shard of their series key, so invalidation
// never has to look outside the shard. Callers hold the write lock.
func (sh *tsShard) invalidateLocked(db *DB, key SeriesKey) {
	for rk := range sh.rcache {
		if rk.key == key {
			sh.removeCacheEntryLocked(rk)
			db.cacheInvalidations.Add(1)
			db.obs.cacheInvalidations.Inc()
		}
	}
}

// patchLocked is the write-through path: route one applied point into
// every cached window of its series that covers it. Entries whose window
// excludes t are untouched — this is what makes invalidation
// bucket-granular. ContAgg applies an O(1) delta for tail appends of
// decomposable aggregates; backfills and std/median mark the owning
// bucket dirty for a bucket-local rescan at the next read
// (finalizeEntryLocked). Callers hold the write lock.
func (sh *tsShard) patchLocked(db *DB, key SeriesKey, t ts.Time, v float64) {
	for _, e := range sh.ridx[key] {
		if t < e.rk.start || t >= e.rk.end {
			continue
		}
		e.ca.Observe(t, v)
		db.cachePatches.Add(1)
		db.obs.cachePatches.Inc()
	}
}

// finalizeEntryLocked rescans an entry's dirty buckets (clipped to the
// entry's window) and restores exactness. Callers hold the write lock.
func (sh *tsShard) finalizeEntryLocked(db *DB, e *rcEntry) {
	var vals []float64
	for _, b := range e.ca.DirtyBuckets() {
		lo, hi := b, b+e.rk.bucket
		if lo < e.rk.start {
			lo = e.rk.start
		}
		if hi > e.rk.end {
			hi = e.rk.end
		}
		vals = vals[:0]
		sh.scanRangeLocked(db, e.rk.key, lo, hi, func(_ ts.Time, v float64) {
			vals = append(vals, v)
		})
		e.ca.Finalize(b, vals)
	}
}

// removeCacheEntryLocked drops one memo entry, swap-removing its key from
// the eviction list, fixing the moved entry's back-index, and unlinking it
// from the per-series patch index.
func (sh *tsShard) removeCacheEntryLocked(rk resampleKey) {
	e, ok := sh.rcache[rk]
	if !ok {
		return
	}
	last := len(sh.rkeys) - 1
	moved := sh.rkeys[last]
	sh.rkeys[e.idx] = moved
	sh.rcache[moved].idx = e.idx
	sh.rkeys = sh.rkeys[:last]
	delete(sh.rcache, rk)
	list := sh.ridx[rk.key]
	for i, le := range list {
		if le == e {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(sh.ridx, rk.key)
	} else {
		sh.ridx[rk.key] = list
	}
}

// evictOneLocked drops a uniformly random memo entry — cheap per-shard
// random eviction instead of the old drop-everything-when-full policy. The
// pick comes from a per-shard xorshift stream seeded at construction, so
// runs are reproducible.
func (sh *tsShard) evictOneLocked(db *DB) {
	n := len(sh.rkeys)
	if n == 0 {
		return
	}
	x := sh.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sh.rng = x
	sh.removeCacheEntryLocked(sh.rkeys[int(x%uint64(n))])
	db.cacheEvictions.Add(1)
	db.obs.cacheEvictions.Inc()
}

// Range returns the points of a series with start <= t < end in time order.
func (db *DB) Range(key SeriesKey, start, end ts.Time) []ts.Point {
	db.obs.reads.Inc()
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []ts.Point
	sh.scanRangeLocked(db, key, start, end, func(t ts.Time, v float64) {
		out = append(out, ts.Point{T: t, V: v})
	})
	return out
}

// RangeSeries is Range materialized as a ts.Series named after the metric.
func (db *DB) RangeSeries(key SeriesKey, start, end ts.Time) *ts.Series {
	db.obs.reads.Inc()
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rangeSeriesLocked(db, key, start, end)
}

func (sh *tsShard) rangeSeriesLocked(db *DB, key SeriesKey, start, end ts.Time) *ts.Series {
	s := ts.New(fmt.Sprintf("%s@%d", key.Metric, key.Entity))
	sh.scanRangeLocked(db, key, start, end, func(t ts.Time, v float64) { s.MustAppend(t, v) })
	return s
}

// scanRangeLocked visits points in [start, end), locating the first chunk by
// binary search and the range within each chunk by binary search. Sealed
// chunks decompress transparently through the block cache.
func (sh *tsShard) scanRangeLocked(db *DB, key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	s, ok := sh.data[key]
	if !ok || start >= end {
		return
	}
	loSlot, hiSlot := db.slotOf(start), db.slotOf(end-1)
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= loSlot })
	for ; i < len(s.chunks) && s.chunks[i].slot <= hiSlot; i++ {
		times, vals := sh.chunkPoints(db, key, s.chunks[i])
		lo := sort.Search(len(times), func(j int) bool { return times[j] >= start })
		for j := lo; j < len(times) && times[j] < end; j++ {
			fn(times[j], vals[j])
		}
	}
}

// RangeFunc streams the points of a series with start <= t < end in time
// order without materializing them — the pushdown path for filters. fn runs
// under the key's shard read lock and must not mutate the store.
func (db *DB) RangeFunc(key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	db.obs.reads.Inc()
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.scanRangeLocked(db, key, start, end, fn)
}

// Correlate computes the Pearson correlation of two series over [start, end)
// by merge-joining their points on exact timestamps inside the store — the
// pushdown analogue of SQL corr() in TimescaleDB, avoiding client-side
// extraction entirely. Each side is snapshotted under its own shard lock in
// turn (never both at once, so striping introduces no lock-order concerns).
// NaN when fewer than two joint points exist or a side is constant.
func (db *DB) Correlate(a, b SeriesKey, start, end ts.Time) float64 {
	db.obs.reads.Inc()
	pa := db.rangeSnapshot(a, start, end)
	pb := db.rangeSnapshot(b, start, end)
	var n float64
	var sx, sy, sxx, syy, sxy float64
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].T < pb[j].T:
			i++
		case pa[i].T > pb[j].T:
			j++
		default:
			x, y := pa[i].V, pb[j].V
			n++
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			i++
			j++
		}
	}
	if n < 2 {
		return math.NaN()
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// rangeSnapshot is Range without the read-counter increment, for internal
// composition.
func (db *DB) rangeSnapshot(key SeriesKey, start, end ts.Time) []ts.Point {
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []ts.Point
	sh.scanRangeLocked(db, key, start, end, func(t ts.Time, v float64) {
		out = append(out, ts.Point{T: t, V: v})
	})
	return out
}

// Summary aggregates a series over [start, end) using chunk summaries for
// fully covered chunks and point scans only at the range edges.
type Summary struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (NaN when empty).
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Aggregate computes the summary of a series over [start, end).
func (db *DB) Aggregate(key SeriesKey, start, end ts.Time) Summary {
	db.obs.reads.Inc()
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.aggregateLocked(db, key, start, end)
}

func (sh *tsShard) aggregateLocked(db *DB, key SeriesKey, start, end ts.Time) Summary {
	out := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	s, ok := sh.data[key]
	if !ok || start >= end {
		return normalize(out)
	}
	loSlot, hiSlot := db.slotOf(start), db.slotOf(end-1)
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= loSlot })
	for ; i < len(s.chunks) && s.chunks[i].slot <= hiSlot; i++ {
		c := s.chunks[i]
		chunkStart := ts.Time(c.slot) * db.chunkWidth
		chunkEnd := chunkStart + db.chunkWidth
		if start <= chunkStart && chunkEnd <= end {
			// Pushdown: the whole chunk is inside the range. Only the hot
			// summary is read — never the (possibly compressed) payload.
			out.Count += c.n
			out.Sum += c.sum
			if c.minV < out.Min {
				out.Min = c.minV
			}
			if c.maxV > out.Max {
				out.Max = c.maxV
			}
			continue
		}
		times, vals := sh.chunkPoints(db, key, c)
		lo := sort.Search(len(times), func(j int) bool { return times[j] >= start })
		for j := lo; j < len(times) && times[j] < end; j++ {
			v := vals[j]
			out.Count++
			out.Sum += v
			if v < out.Min {
				out.Min = v
			}
			if v > out.Max {
				out.Max = v
			}
		}
	}
	return normalize(out)
}

func normalize(s Summary) Summary {
	// Min stuck at +Inf means no comparable value was seen: either the range
	// is empty or every value in it is NaN. Both pushdown and edge-scan
	// paths land here identically (NaN comparisons are always false).
	if s.Count == 0 || math.IsInf(s.Min, 1) {
		s.Min, s.Max = math.NaN(), math.NaN()
	}
	return s
}

// EntitySummary is one entity's summary tagged with its insertion sequence,
// the unit of shard-partitioned aggregation. Sorting a batch by Seq
// reproduces global first-insertion order.
type EntitySummary struct {
	Seq    uint64
	Entity uint32
	Summary
}

// aggregateShard summarizes every series of the metric in one shard under a
// single read lock — the per-worker locked batch of the parallel executor.
func (db *DB) aggregateShard(shard int, metric string, start, end ts.Time) []EntitySummary {
	sh := &db.shards[shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []EntitySummary
	for j, key := range sh.keys {
		if key.Metric == metric {
			out = append(out, EntitySummary{
				Seq:     sh.seqs[j],
				Entity:  key.Entity,
				Summary: sh.aggregateLocked(db, key, start, end),
			})
		}
	}
	return out
}

// AggregateShard summarizes every series of the metric held by one lock
// stripe (0 <= shard < NumShards), taking that stripe's read lock exactly
// once. Callers fan shards out across workers and MergeBySeq the parts; the
// fan-out as a whole counts as one store read, which the caller's entry
// point accounts for.
func (db *DB) AggregateShard(shard int, metric string, start, end ts.Time) []EntitySummary {
	return db.aggregateShard(shard, metric, start, end)
}

// MergeBySeq flattens per-shard summary batches into global first-insertion
// order.
func MergeBySeq(parts [][]EntitySummary) []EntitySummary {
	var out []EntitySummary
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// aggregateSeq computes the metric's summaries shard by shard (one read lock
// per shard) and merges them into first-insertion order.
func (db *DB) aggregateSeq(metric string, start, end ts.Time) []EntitySummary {
	parts := make([][]EntitySummary, len(db.shards))
	for i := range db.shards {
		parts[i] = db.aggregateShard(i, metric, start, end)
	}
	return MergeBySeq(parts)
}

// AggregateAll aggregates every series of the given metric over [start,
// end), returning per-entity summaries. One call counts as one read.
func (db *DB) AggregateAll(metric string, start, end ts.Time) map[uint32]Summary {
	db.obs.reads.Inc()
	es := db.aggregateSeq(metric, start, end)
	out := make(map[uint32]Summary, len(es))
	for _, e := range es {
		out[e.Entity] = e.Summary
	}
	return out
}

// AggregateEach visits every series of the metric in first-insertion order,
// calling fn with each entity's summary. The fixed visit order makes
// floating-point folds over the results (district sums, global totals)
// deterministic — the property the parallel executor's merge phase relies
// on to stay byte-identical with sequential execution. Summaries are
// computed as one locked batch per shard; fn runs after the locks are
// released and must not assume a store-wide atomic snapshot.
func (db *DB) AggregateEach(metric string, start, end ts.Time, fn func(entity uint32, s Summary)) {
	db.obs.reads.Inc()
	for _, e := range db.aggregateSeq(metric, start, end) {
		fn(e.Entity, e.Summary)
	}
}

// AggregateAllParallel is AggregateAll fanned out over `workers` goroutines
// — the horizontal-scaling lever of requirement R4. Work is partitioned by
// shard: each worker takes whole lock stripes and summarizes them under a
// single read lock per stripe, so one fan-out costs one read-counter
// increment and O(shards) lock operations instead of one of each per key.
// Results are merged by insertion sequence, so output is deterministic
// regardless of scheduling. workers <= 1 falls back to the serial path.
func (db *DB) AggregateAllParallel(metric string, start, end ts.Time, workers int) map[uint32]Summary {
	if workers <= 1 {
		return db.AggregateAll(metric, start, end)
	}
	db.obs.reads.Inc()
	nsh := len(db.shards)
	if workers > nsh {
		workers = nsh
	}
	parts := make([][]EntitySummary, nsh)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nsh; i += workers {
				parts[i] = db.aggregateShard(i, metric, start, end)
			}
		}(w)
	}
	wg.Wait()
	es := MergeBySeq(parts)
	out := make(map[uint32]Summary, len(es))
	for _, e := range es {
		out[e.Entity] = e.Summary
	}
	return out
}

// TopKByMean returns the k entities with the highest mean of the metric over
// the range, best first; ties break by ascending entity id.
func (db *DB) TopKByMean(metric string, start, end ts.Time, k int) []uint32 {
	type pair struct {
		entity uint32
		mean   float64
	}
	var ps []pair
	db.AggregateEach(metric, start, end, func(e uint32, s Summary) {
		if s.Count > 0 {
			ps = append(ps, pair{e, s.Mean()})
		}
	})
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].mean != ps[j].mean {
			return ps[i].mean > ps[j].mean
		}
		return ps[i].entity < ps[j].entity
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].entity
	}
	return out
}

// Downsample buckets a series over [start, end) at the given width with the
// aggregation — a continuous-aggregate style query. Results are memoized per
// (series, range, bucket, aggregation) in the series' shard: repeated
// downsampling, as issued by correlation queries and dashboard-style refresh
// loops, hits the warm entry until a write to the series invalidates it or
// random eviction reclaims the slot. The returned series is a copy the
// caller owns.
func (db *DB) Downsample(key SeriesKey, start, end, bucket ts.Time, agg ts.AggFunc) *ts.Series {
	db.obs.reads.Inc()
	rk := resampleKey{key: key, start: start, end: end, bucket: bucket, agg: agg}
	sh := db.shard(key)
	sh.mu.RLock()
	if e, ok := sh.rcache[rk]; ok && !e.ca.HasDirty() {
		out := e.ca.View().Clone()
		sh.mu.RUnlock()
		db.cacheHits.Add(1)
		db.obs.cacheHits.Inc()
		return out
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.rcache[rk]; ok { // filled while we waited, or dirty
		// Still a hit: at worst a bucket-local rescan of the dirty
		// buckets, never a whole-window recompute.
		sh.finalizeEntryLocked(db, e)
		db.cacheHits.Add(1)
		db.obs.cacheHits.Inc()
		return e.ca.View().Clone()
	}
	db.cacheMisses.Add(1)
	db.obs.cacheMisses.Inc()
	ca := ts.NewContAgg("", bucket, agg)
	ca.Seed(sh.rangeSeriesLocked(db, key, start, end))
	if len(sh.rkeys) >= db.shardCap {
		sh.evictOneLocked(db)
	}
	e := &rcEntry{rk: rk, ca: ca, idx: len(sh.rkeys)}
	sh.rcache[rk] = e
	sh.rkeys = append(sh.rkeys, rk)
	sh.ridx[key] = append(sh.ridx[key], e)
	return ca.View().Clone()
}

// CorrelateResampled computes the Pearson correlation of two series after
// downsampling both onto the shared bucket grid (bucket means), joining on
// bucket timestamps. Both downsamples go through the memo cache, so repeated
// correlation over the same window — the hot pattern of similarity-edge
// rebuilds — only pays the scan once. NaN when fewer than two shared buckets
// exist or a side is constant.
func (db *DB) CorrelateResampled(a, b SeriesKey, start, end, bucket ts.Time) float64 {
	sa := db.Downsample(a, start, end, bucket, ts.AggMean)
	sb := db.Downsample(b, start, end, bucket, ts.AggMean)
	var av, bv []float64
	i, j := 0, 0
	for i < sa.Len() && j < sb.Len() {
		switch {
		case sa.TimeAt(i) < sb.TimeAt(j):
			i++
		case sa.TimeAt(i) > sb.TimeAt(j):
			j++
		default:
			av = append(av, sa.ValueAt(i))
			bv = append(bv, sb.ValueAt(j))
			i++
			j++
		}
	}
	if len(av) < 2 {
		return math.NaN()
	}
	return ts.Pearson(av, bv)
}

// ResampleCacheStats returns the memo cache's counters since creation.
func (db *DB) ResampleCacheStats() CacheStats {
	return CacheStats{
		Hits:          db.cacheHits.Load(),
		Misses:        db.cacheMisses.Load(),
		Invalidations: db.cacheInvalidations.Load(),
		Evictions:     db.cacheEvictions.Load(),
		Patches:       db.cachePatches.Load(),
	}
}

// resampleCacheLen counts live memo entries across shards (test hook).
func (db *DB) resampleCacheLen() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.rcache)
		sh.mu.RUnlock()
	}
	return n
}

// Stats describes storage shape for capacity reports. MemBytes counts
// payload bytes resident in memory: 16 per point for open chunks (8 time +
// 8 value), the block length for compressed chunks, nothing for spilled ones
// (their blocks live in the tier's files; the bounded block cache is extra
// and not counted here). The hot per-chunk summaries are a few dozen bytes
// per chunk in every state.
type Stats struct {
	Series int
	Chunks int
	Points int

	OpenChunks       int
	CompressedChunks int
	SpilledChunks    int
	MemBytes         int64
}

// Stats returns storage counts.
func (db *DB) Stats() Stats {
	var st Stats
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		st.Series += len(sh.data)
		for _, s := range sh.data {
			st.Chunks += len(s.chunks)
			for _, c := range s.chunks {
				st.Points += c.n
				switch {
				case !c.sealed():
					st.OpenChunks++
					st.MemBytes += 16 * int64(len(c.times))
				case c.enc != nil:
					st.CompressedChunks++
					st.MemBytes += int64(len(c.enc))
				default:
					st.SpilledChunks++
				}
			}
		}
		sh.mu.RUnlock()
	}
	return st
}

// CompressionStats reports sealing and block-cache behaviour for tests,
// capacity reports and the storage benchmark.
type CompressionStats struct {
	Seals          int64 // chunks compressed (including reseals)
	Inflates       int64 // sealed chunks decompressed for mutation
	BlockHits      int64 // decoded-block cache hits
	BlockMisses    int64 // decoded-block cache misses (payload decoded)
	BlockEvictions int64 // cache entries dropped by random eviction
}

// CompressionStats returns the compression counters since creation.
func (db *DB) CompressionStats() CompressionStats {
	return CompressionStats{
		Seals:          db.seals.Load(),
		Inflates:       db.inflates.Load(),
		BlockHits:      db.blockHits.Load(),
		BlockMisses:    db.blockMisses.Load(),
		BlockEvictions: db.blockEvictions.Load(),
	}
}

// DropBlockCache empties every shard's decoded-block cache — the memory-
// pressure valve, and how the storage benchmark measures a truly cold scan.
func (db *DB) DropBlockCache() {
	for i := range db.shards {
		db.shards[i].bc.drop()
	}
}

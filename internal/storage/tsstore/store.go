// Package tsstore implements a TimescaleDB-style time-series store: a
// "hypertable" per metric, partitioned into fixed-width time chunks. Each
// chunk keeps its points in timestamp order for O(log n) range location and
// maintains a small summary (count/sum/min/max) so aggregations over ranges
// that cover whole chunks are answered from summaries without touching the
// points — the pushdown that keeps the paper's TTDB rows flat at tens of
// milliseconds in Table 1.
package tsstore

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hygraph/internal/ts"
)

// SeriesKey identifies one series within the store: an entity id plus a
// metric name (mirroring TimescaleDB's (device, metric) hypertable schema).
type SeriesKey struct {
	Entity uint32
	Metric string
}

// chunk holds the points of one series within one time slot.
type chunk struct {
	slot  int64 // slot index = floor(time / chunkWidth)
	times []ts.Time
	vals  []float64
	// summary
	sum  float64
	minV float64
	maxV float64
}

func (c *chunk) add(t ts.Time, v float64) {
	if n := len(c.times); n > 0 && t <= c.times[n-1] {
		// Out-of-order within a chunk: insert to keep sortedness. Rare path.
		i := sort.Search(n, func(i int) bool { return c.times[i] >= t })
		if i < n && c.times[i] == t {
			old := c.vals[i]
			c.vals[i] = v
			c.sum += v - old
			c.recomputeMinMax()
			return
		}
		c.times = append(c.times, 0)
		c.vals = append(c.vals, 0)
		copy(c.times[i+1:], c.times[i:])
		copy(c.vals[i+1:], c.vals[i:])
		c.times[i] = t
		c.vals[i] = v
	} else {
		c.times = append(c.times, t)
		c.vals = append(c.vals, v)
	}
	c.sum += v
	if len(c.times) == 1 {
		c.minV, c.maxV = v, v
		return
	}
	if v < c.minV {
		c.minV = v
	}
	if v > c.maxV {
		c.maxV = v
	}
}

func (c *chunk) recomputeMinMax() {
	c.minV, c.maxV = math.Inf(1), math.Inf(-1)
	for _, v := range c.vals {
		if v < c.minV {
			c.minV = v
		}
		if v > c.maxV {
			c.maxV = v
		}
	}
}

// series is one hypertable row stream: its chunks ordered by slot.
type series struct {
	chunks []*chunk // sorted by slot
}

func (s *series) chunkFor(slot int64, create bool) *chunk {
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= slot })
	if i < len(s.chunks) && s.chunks[i].slot == slot {
		return s.chunks[i]
	}
	if !create {
		return nil
	}
	c := &chunk{slot: slot}
	s.chunks = append(s.chunks, nil)
	copy(s.chunks[i+1:], s.chunks[i:])
	s.chunks[i] = c
	return c
}

// resampleKey identifies one memoized Downsample result.
type resampleKey struct {
	key                SeriesKey
	start, end, bucket ts.Time
	agg                ts.AggFunc
}

// maxResampleCache bounds the memo cache; when full the whole cache is
// dropped (downsample results are cheap to rebuild relative to tracking an
// eviction order).
const maxResampleCache = 1024

// CacheStats reports resample-cache behaviour for tests and capacity
// reports.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64 // entries dropped by writes to their series
}

// DB is the time-series store. All exported methods are safe for concurrent
// use: reads share an RWMutex read lock (the parallel Q4–Q8 fan-out path),
// mutations take it exclusively. The embedded resample cache is guarded by
// the same lock — a cache miss upgrades to the write lock to fill the entry,
// and every mutation invalidates the touched series' entries before
// releasing the lock, so readers can never observe a stale cached result.
type DB struct {
	mu         sync.RWMutex
	chunkWidth ts.Time
	data       map[SeriesKey]*series
	keys       []SeriesKey // insertion order for deterministic scans

	rcache map[resampleKey]*ts.Series
	// Cache counters are atomics so the hit path stays on the read lock.
	cacheHits, cacheMisses, cacheInvalidations atomic.Int64

	obs storeObs // metric handles; zero value = instrumentation off
}

// DefaultChunkWidth partitions series into week-long chunks, matching
// TimescaleDB's default interval ethos.
const DefaultChunkWidth = 7 * ts.Day

// New returns an empty store with the given chunk width (<= 0 selects
// DefaultChunkWidth).
func New(chunkWidth ts.Time) *DB {
	if chunkWidth <= 0 {
		chunkWidth = DefaultChunkWidth
	}
	return &DB{
		chunkWidth: chunkWidth,
		data:       map[SeriesKey]*series{},
		rcache:     map[resampleKey]*ts.Series{},
	}
}

// NumSeries returns how many distinct series the store holds.
func (db *DB) NumSeries() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data)
}

// HasSeries reports whether the key holds any points. The crash-recovery
// layer uses it to decide whether a prepared ingest reached the TS side.
func (db *DB) HasSeries(key SeriesKey) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.data[key]
	return ok
}

// Keys returns all series keys in first-insertion order.
func (db *DB) Keys() []SeriesKey {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]SeriesKey(nil), db.keys...)
}

// EntitiesOf returns the entity ids of every series of the metric in
// first-insertion order — the deterministic work list the parallel Q4–Q8
// executor partitions across workers.
func (db *DB) EntitiesOf(metric string) []uint32 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []uint32
	for _, key := range db.keys {
		if key.Metric == metric {
			out = append(out, key.Entity)
		}
	}
	return out
}

func (db *DB) slotOf(t ts.Time) int64 {
	s := int64(t / db.chunkWidth)
	if t < 0 && t%db.chunkWidth != 0 {
		s--
	}
	return s
}

// Insert adds one point. Upserts on duplicate timestamps.
func (db *DB) Insert(key SeriesKey, t ts.Time, v float64) {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.insertLocked(key, t, v)
	db.invalidateLocked(key)
}

func (db *DB) insertLocked(key SeriesKey, t ts.Time, v float64) {
	s, ok := db.data[key]
	if !ok {
		s = &series{}
		db.data[key] = s
		db.keys = append(db.keys, key)
	}
	s.chunkFor(db.slotOf(t), true).add(t, v)
}

// InsertSeries bulk-loads a whole series under the key.
func (db *DB) InsertSeries(key SeriesKey, src *ts.Series) {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := 0; i < src.Len(); i++ {
		db.insertLocked(key, src.TimeAt(i), src.ValueAt(i))
	}
	db.invalidateLocked(key)
}

// DeleteSeries removes a series and all its chunks. It reports whether the
// key existed; deleting an absent key is a no-op, so crash-recovery rollback
// can apply it idempotently.
func (db *DB) DeleteSeries(key SeriesKey) bool {
	db.obs.writes.Inc()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.invalidateLocked(key)
	if _, ok := db.data[key]; !ok {
		return false
	}
	delete(db.data, key)
	for i, k := range db.keys {
		if k == key {
			db.keys = append(db.keys[:i], db.keys[i+1:]...)
			break
		}
	}
	return true
}

// invalidateLocked drops every cached resample derived from the series.
// Callers hold the write lock.
func (db *DB) invalidateLocked(key SeriesKey) {
	for rk := range db.rcache {
		if rk.key == key {
			delete(db.rcache, rk)
			db.cacheInvalidations.Add(1)
			db.obs.cacheInvalidations.Inc()
		}
	}
}

// Range returns the points of a series with start <= t < end in time order.
func (db *DB) Range(key SeriesKey, start, end ts.Time) []ts.Point {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rangeLocked(key, start, end)
}

func (db *DB) rangeLocked(key SeriesKey, start, end ts.Time) []ts.Point {
	var out []ts.Point
	db.scanRange(key, start, end, func(t ts.Time, v float64) {
		out = append(out, ts.Point{T: t, V: v})
	})
	return out
}

// RangeSeries is Range materialized as a ts.Series named after the metric.
func (db *DB) RangeSeries(key SeriesKey, start, end ts.Time) *ts.Series {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rangeSeriesLocked(key, start, end)
}

func (db *DB) rangeSeriesLocked(key SeriesKey, start, end ts.Time) *ts.Series {
	s := ts.New(fmt.Sprintf("%s@%d", key.Metric, key.Entity))
	db.scanRange(key, start, end, func(t ts.Time, v float64) { s.MustAppend(t, v) })
	return s
}

// scanRange visits points in [start, end), locating the first chunk by
// binary search and the range within each chunk by binary search.
func (db *DB) scanRange(key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	s, ok := db.data[key]
	if !ok || start >= end {
		return
	}
	loSlot, hiSlot := db.slotOf(start), db.slotOf(end-1)
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= loSlot })
	for ; i < len(s.chunks) && s.chunks[i].slot <= hiSlot; i++ {
		c := s.chunks[i]
		lo := sort.Search(len(c.times), func(j int) bool { return c.times[j] >= start })
		for j := lo; j < len(c.times) && c.times[j] < end; j++ {
			fn(c.times[j], c.vals[j])
		}
	}
}

// RangeFunc streams the points of a series with start <= t < end in time
// order without materializing them — the pushdown path for filters. fn runs
// under the store's read lock and must not mutate the store.
func (db *DB) RangeFunc(key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.scanRange(key, start, end, fn)
}

// Correlate computes the Pearson correlation of two series over [start, end)
// by merge-joining their points on exact timestamps inside the store — the
// pushdown analogue of SQL corr() in TimescaleDB, avoiding client-side
// extraction entirely. NaN when fewer than two joint points exist or a side
// is constant.
func (db *DB) Correlate(a, b SeriesKey, start, end ts.Time) float64 {
	db.obs.reads.Inc()
	db.mu.RLock()
	pa := db.rangeLocked(a, start, end)
	pb := db.rangeLocked(b, start, end)
	db.mu.RUnlock()
	var n float64
	var sx, sy, sxx, syy, sxy float64
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].T < pb[j].T:
			i++
		case pa[i].T > pb[j].T:
			j++
		default:
			x, y := pa[i].V, pb[j].V
			n++
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			i++
			j++
		}
	}
	if n < 2 {
		return math.NaN()
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Summary aggregates a series over [start, end) using chunk summaries for
// fully covered chunks and point scans only at the range edges.
type Summary struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (NaN when empty).
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Aggregate computes the summary of a series over [start, end).
func (db *DB) Aggregate(key SeriesKey, start, end ts.Time) Summary {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.aggregateLocked(key, start, end)
}

func (db *DB) aggregateLocked(key SeriesKey, start, end ts.Time) Summary {
	out := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	s, ok := db.data[key]
	if !ok || start >= end {
		return normalize(out)
	}
	loSlot, hiSlot := db.slotOf(start), db.slotOf(end-1)
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= loSlot })
	for ; i < len(s.chunks) && s.chunks[i].slot <= hiSlot; i++ {
		c := s.chunks[i]
		chunkStart := ts.Time(c.slot) * db.chunkWidth
		chunkEnd := chunkStart + db.chunkWidth
		if start <= chunkStart && chunkEnd <= end {
			// Pushdown: the whole chunk is inside the range.
			out.Count += len(c.times)
			out.Sum += c.sum
			if c.minV < out.Min {
				out.Min = c.minV
			}
			if c.maxV > out.Max {
				out.Max = c.maxV
			}
			continue
		}
		lo := sort.Search(len(c.times), func(j int) bool { return c.times[j] >= start })
		for j := lo; j < len(c.times) && c.times[j] < end; j++ {
			v := c.vals[j]
			out.Count++
			out.Sum += v
			if v < out.Min {
				out.Min = v
			}
			if v > out.Max {
				out.Max = v
			}
		}
	}
	return normalize(out)
}

func normalize(s Summary) Summary {
	if s.Count == 0 {
		s.Min, s.Max = math.NaN(), math.NaN()
	}
	return s
}

// AggregateAll aggregates every series of the given metric over [start,
// end), returning per-entity summaries.
func (db *DB) AggregateAll(metric string, start, end ts.Time) map[uint32]Summary {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := map[uint32]Summary{}
	for _, key := range db.keys {
		if key.Metric != metric {
			continue
		}
		out[key.Entity] = db.aggregateLocked(key, start, end)
	}
	return out
}

// AggregateEach visits every series of the metric in first-insertion order,
// calling fn with each entity's summary. The fixed visit order makes
// floating-point folds over the results (district sums, global totals)
// deterministic — the property the parallel executor's merge phase relies
// on to stay byte-identical with sequential execution. fn runs under the
// store's read lock and must not mutate the store.
func (db *DB) AggregateEach(metric string, start, end ts.Time, fn func(entity uint32, s Summary)) {
	db.obs.reads.Inc()
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, key := range db.keys {
		if key.Metric == metric {
			fn(key.Entity, db.aggregateLocked(key, start, end))
		}
	}
}

// AggregateAllParallel is AggregateAll fanned out over `workers` goroutines
// — the horizontal-scaling lever of requirement R4. Work is partitioned by
// striding over the insertion-ordered key list and every summary lands in
// its slot of a pre-sized slice, so results are deterministic regardless of
// scheduling. workers <= 1 falls back to the serial path.
func (db *DB) AggregateAllParallel(metric string, start, end ts.Time, workers int) map[uint32]Summary {
	if workers <= 1 {
		return db.AggregateAll(metric, start, end)
	}
	var keys []SeriesKey
	db.mu.RLock()
	for _, key := range db.keys {
		if key.Metric == metric {
			keys = append(keys, key)
		}
	}
	db.mu.RUnlock()
	sums := make([]Summary, len(keys))
	var wg sync.WaitGroup
	if workers > len(keys) {
		workers = len(keys)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += workers {
				sums[i] = db.Aggregate(keys[i], start, end)
			}
		}(w)
	}
	wg.Wait()
	out := make(map[uint32]Summary, len(keys))
	for i, key := range keys {
		out[key.Entity] = sums[i]
	}
	return out
}

// TopKByMean returns the k entities with the highest mean of the metric over
// the range, best first; ties break by ascending entity id.
func (db *DB) TopKByMean(metric string, start, end ts.Time, k int) []uint32 {
	type pair struct {
		entity uint32
		mean   float64
	}
	var ps []pair
	db.AggregateEach(metric, start, end, func(e uint32, s Summary) {
		if s.Count > 0 {
			ps = append(ps, pair{e, s.Mean()})
		}
	})
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].mean != ps[j].mean {
			return ps[i].mean > ps[j].mean
		}
		return ps[i].entity < ps[j].entity
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].entity
	}
	return out
}

// Downsample buckets a series over [start, end) at the given width with the
// aggregation — a continuous-aggregate style query. Results are memoized per
// (series, range, bucket, aggregation): repeated downsampling, as issued by
// correlation queries and dashboard-style refresh loops, hits the warm entry
// until a write to the series invalidates it. The returned series is a copy
// the caller owns.
func (db *DB) Downsample(key SeriesKey, start, end, bucket ts.Time, agg ts.AggFunc) *ts.Series {
	db.obs.reads.Inc()
	rk := resampleKey{key: key, start: start, end: end, bucket: bucket, agg: agg}
	db.mu.RLock()
	if s, ok := db.rcache[rk]; ok {
		out := s.Clone()
		db.mu.RUnlock()
		db.cacheHits.Add(1)
		db.obs.cacheHits.Inc()
		return out
	}
	db.mu.RUnlock()

	db.mu.Lock()
	defer db.mu.Unlock()
	if s, ok := db.rcache[rk]; ok { // filled while we waited for the lock
		db.cacheHits.Add(1)
		db.obs.cacheHits.Inc()
		return s.Clone()
	}
	db.cacheMisses.Add(1)
	db.obs.cacheMisses.Inc()
	s := db.rangeSeriesLocked(key, start, end).Resample(bucket, agg)
	if len(db.rcache) >= maxResampleCache {
		db.rcache = map[resampleKey]*ts.Series{}
	}
	db.rcache[rk] = s
	return s.Clone()
}

// CorrelateResampled computes the Pearson correlation of two series after
// downsampling both onto the shared bucket grid (bucket means), joining on
// bucket timestamps. Both downsamples go through the memo cache, so repeated
// correlation over the same window — the hot pattern of similarity-edge
// rebuilds — only pays the scan once. NaN when fewer than two shared buckets
// exist or a side is constant.
func (db *DB) CorrelateResampled(a, b SeriesKey, start, end, bucket ts.Time) float64 {
	sa := db.Downsample(a, start, end, bucket, ts.AggMean)
	sb := db.Downsample(b, start, end, bucket, ts.AggMean)
	var av, bv []float64
	i, j := 0, 0
	for i < sa.Len() && j < sb.Len() {
		switch {
		case sa.TimeAt(i) < sb.TimeAt(j):
			i++
		case sa.TimeAt(i) > sb.TimeAt(j):
			j++
		default:
			av = append(av, sa.ValueAt(i))
			bv = append(bv, sb.ValueAt(j))
			i++
			j++
		}
	}
	if len(av) < 2 {
		return math.NaN()
	}
	return ts.Pearson(av, bv)
}

// ResampleCacheStats returns the memo cache's counters since creation.
func (db *DB) ResampleCacheStats() CacheStats {
	return CacheStats{
		Hits:          db.cacheHits.Load(),
		Misses:        db.cacheMisses.Load(),
		Invalidations: db.cacheInvalidations.Load(),
	}
}

// Stats describes storage shape for capacity reports.
type Stats struct {
	Series int
	Chunks int
	Points int
}

// Stats returns storage counts.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := Stats{Series: len(db.data)}
	for _, s := range db.data {
		st.Chunks += len(s.chunks)
		for _, c := range s.chunks {
			st.Points += len(c.times)
		}
	}
	return st
}

// Package tsstore implements a TimescaleDB-style time-series store: a
// "hypertable" per metric, partitioned into fixed-width time chunks. Each
// chunk keeps its points in timestamp order for O(log n) range location and
// maintains a small summary (count/sum/min/max) so aggregations over ranges
// that cover whole chunks are answered from summaries without touching the
// points — the pushdown that keeps the paper's TTDB rows flat at tens of
// milliseconds in Table 1.
package tsstore

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"hygraph/internal/ts"
)

// SeriesKey identifies one series within the store: an entity id plus a
// metric name (mirroring TimescaleDB's (device, metric) hypertable schema).
type SeriesKey struct {
	Entity uint32
	Metric string
}

// chunk holds the points of one series within one time slot.
type chunk struct {
	slot  int64 // slot index = floor(time / chunkWidth)
	times []ts.Time
	vals  []float64
	// summary
	sum  float64
	minV float64
	maxV float64
}

func (c *chunk) add(t ts.Time, v float64) {
	if n := len(c.times); n > 0 && t <= c.times[n-1] {
		// Out-of-order within a chunk: insert to keep sortedness. Rare path.
		i := sort.Search(n, func(i int) bool { return c.times[i] >= t })
		if i < n && c.times[i] == t {
			old := c.vals[i]
			c.vals[i] = v
			c.sum += v - old
			c.recomputeMinMax()
			return
		}
		c.times = append(c.times, 0)
		c.vals = append(c.vals, 0)
		copy(c.times[i+1:], c.times[i:])
		copy(c.vals[i+1:], c.vals[i:])
		c.times[i] = t
		c.vals[i] = v
	} else {
		c.times = append(c.times, t)
		c.vals = append(c.vals, v)
	}
	c.sum += v
	if len(c.times) == 1 {
		c.minV, c.maxV = v, v
		return
	}
	if v < c.minV {
		c.minV = v
	}
	if v > c.maxV {
		c.maxV = v
	}
}

func (c *chunk) recomputeMinMax() {
	c.minV, c.maxV = math.Inf(1), math.Inf(-1)
	for _, v := range c.vals {
		if v < c.minV {
			c.minV = v
		}
		if v > c.maxV {
			c.maxV = v
		}
	}
}

// series is one hypertable row stream: its chunks ordered by slot.
type series struct {
	chunks []*chunk // sorted by slot
}

func (s *series) chunkFor(slot int64, create bool) *chunk {
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= slot })
	if i < len(s.chunks) && s.chunks[i].slot == slot {
		return s.chunks[i]
	}
	if !create {
		return nil
	}
	c := &chunk{slot: slot}
	s.chunks = append(s.chunks, nil)
	copy(s.chunks[i+1:], s.chunks[i:])
	s.chunks[i] = c
	return c
}

// DB is the time-series store. Not safe for concurrent mutation.
type DB struct {
	chunkWidth ts.Time
	data       map[SeriesKey]*series
	keys       []SeriesKey // insertion order for deterministic scans
}

// DefaultChunkWidth partitions series into week-long chunks, matching
// TimescaleDB's default interval ethos.
const DefaultChunkWidth = 7 * ts.Day

// New returns an empty store with the given chunk width (<= 0 selects
// DefaultChunkWidth).
func New(chunkWidth ts.Time) *DB {
	if chunkWidth <= 0 {
		chunkWidth = DefaultChunkWidth
	}
	return &DB{chunkWidth: chunkWidth, data: map[SeriesKey]*series{}}
}

// NumSeries returns how many distinct series the store holds.
func (db *DB) NumSeries() int { return len(db.data) }

// HasSeries reports whether the key holds any points. The crash-recovery
// layer uses it to decide whether a prepared ingest reached the TS side.
func (db *DB) HasSeries(key SeriesKey) bool {
	_, ok := db.data[key]
	return ok
}

// Keys returns all series keys in first-insertion order.
func (db *DB) Keys() []SeriesKey { return append([]SeriesKey(nil), db.keys...) }

func (db *DB) slotOf(t ts.Time) int64 {
	s := int64(t / db.chunkWidth)
	if t < 0 && t%db.chunkWidth != 0 {
		s--
	}
	return s
}

// Insert adds one point. Upserts on duplicate timestamps.
func (db *DB) Insert(key SeriesKey, t ts.Time, v float64) {
	s, ok := db.data[key]
	if !ok {
		s = &series{}
		db.data[key] = s
		db.keys = append(db.keys, key)
	}
	s.chunkFor(db.slotOf(t), true).add(t, v)
}

// InsertSeries bulk-loads a whole series under the key.
func (db *DB) InsertSeries(key SeriesKey, src *ts.Series) {
	for i := 0; i < src.Len(); i++ {
		db.Insert(key, src.TimeAt(i), src.ValueAt(i))
	}
}

// DeleteSeries removes a series and all its chunks. It reports whether the
// key existed; deleting an absent key is a no-op, so crash-recovery rollback
// can apply it idempotently.
func (db *DB) DeleteSeries(key SeriesKey) bool {
	if _, ok := db.data[key]; !ok {
		return false
	}
	delete(db.data, key)
	for i, k := range db.keys {
		if k == key {
			db.keys = append(db.keys[:i], db.keys[i+1:]...)
			break
		}
	}
	return true
}

// Range returns the points of a series with start <= t < end in time order.
func (db *DB) Range(key SeriesKey, start, end ts.Time) []ts.Point {
	var out []ts.Point
	db.scanRange(key, start, end, func(t ts.Time, v float64) {
		out = append(out, ts.Point{T: t, V: v})
	})
	return out
}

// RangeSeries is Range materialized as a ts.Series named after the metric.
func (db *DB) RangeSeries(key SeriesKey, start, end ts.Time) *ts.Series {
	s := ts.New(fmt.Sprintf("%s@%d", key.Metric, key.Entity))
	db.scanRange(key, start, end, func(t ts.Time, v float64) { s.MustAppend(t, v) })
	return s
}

// scanRange visits points in [start, end), locating the first chunk by
// binary search and the range within each chunk by binary search.
func (db *DB) scanRange(key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	s, ok := db.data[key]
	if !ok || start >= end {
		return
	}
	loSlot, hiSlot := db.slotOf(start), db.slotOf(end-1)
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= loSlot })
	for ; i < len(s.chunks) && s.chunks[i].slot <= hiSlot; i++ {
		c := s.chunks[i]
		lo := sort.Search(len(c.times), func(j int) bool { return c.times[j] >= start })
		for j := lo; j < len(c.times) && c.times[j] < end; j++ {
			fn(c.times[j], c.vals[j])
		}
	}
}

// RangeFunc streams the points of a series with start <= t < end in time
// order without materializing them — the pushdown path for filters.
func (db *DB) RangeFunc(key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	db.scanRange(key, start, end, fn)
}

// Correlate computes the Pearson correlation of two series over [start, end)
// by merge-joining their points on exact timestamps inside the store — the
// pushdown analogue of SQL corr() in TimescaleDB, avoiding client-side
// extraction entirely. NaN when fewer than two joint points exist or a side
// is constant.
func (db *DB) Correlate(a, b SeriesKey, start, end ts.Time) float64 {
	pa := db.Range(a, start, end)
	pb := db.Range(b, start, end)
	var n float64
	var sx, sy, sxx, syy, sxy float64
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].T < pb[j].T:
			i++
		case pa[i].T > pb[j].T:
			j++
		default:
			x, y := pa[i].V, pb[j].V
			n++
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			i++
			j++
		}
	}
	if n < 2 {
		return math.NaN()
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Summary aggregates a series over [start, end) using chunk summaries for
// fully covered chunks and point scans only at the range edges.
type Summary struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (NaN when empty).
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Aggregate computes the summary of a series over [start, end).
func (db *DB) Aggregate(key SeriesKey, start, end ts.Time) Summary {
	out := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	s, ok := db.data[key]
	if !ok || start >= end {
		return normalize(out)
	}
	loSlot, hiSlot := db.slotOf(start), db.slotOf(end-1)
	i := sort.Search(len(s.chunks), func(i int) bool { return s.chunks[i].slot >= loSlot })
	for ; i < len(s.chunks) && s.chunks[i].slot <= hiSlot; i++ {
		c := s.chunks[i]
		chunkStart := ts.Time(c.slot) * db.chunkWidth
		chunkEnd := chunkStart + db.chunkWidth
		if start <= chunkStart && chunkEnd <= end {
			// Pushdown: the whole chunk is inside the range.
			out.Count += len(c.times)
			out.Sum += c.sum
			if c.minV < out.Min {
				out.Min = c.minV
			}
			if c.maxV > out.Max {
				out.Max = c.maxV
			}
			continue
		}
		lo := sort.Search(len(c.times), func(j int) bool { return c.times[j] >= start })
		for j := lo; j < len(c.times) && c.times[j] < end; j++ {
			v := c.vals[j]
			out.Count++
			out.Sum += v
			if v < out.Min {
				out.Min = v
			}
			if v > out.Max {
				out.Max = v
			}
		}
	}
	return normalize(out)
}

func normalize(s Summary) Summary {
	if s.Count == 0 {
		s.Min, s.Max = math.NaN(), math.NaN()
	}
	return s
}

// AggregateAll aggregates every series of the given metric over [start,
// end), returning per-entity summaries.
func (db *DB) AggregateAll(metric string, start, end ts.Time) map[uint32]Summary {
	out := map[uint32]Summary{}
	for _, key := range db.keys {
		if key.Metric != metric {
			continue
		}
		out[key.Entity] = db.Aggregate(key, start, end)
	}
	return out
}

// AggregateAllParallel is AggregateAll fanned out over `workers` goroutines
// — the horizontal-scaling lever of requirement R4. Aggregation per series
// is independent, so the speedup is near-linear until memory bandwidth
// saturates. workers <= 1 falls back to the serial path.
func (db *DB) AggregateAllParallel(metric string, start, end ts.Time, workers int) map[uint32]Summary {
	if workers <= 1 {
		return db.AggregateAll(metric, start, end)
	}
	var keys []SeriesKey
	for _, key := range db.keys {
		if key.Metric == metric {
			keys = append(keys, key)
		}
	}
	type result struct {
		entity uint32
		s      Summary
	}
	jobs := make(chan SeriesKey)
	results := make(chan result, len(keys))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range jobs {
				results <- result{key.Entity, db.Aggregate(key, start, end)}
			}
		}()
	}
	for _, key := range keys {
		jobs <- key
	}
	close(jobs)
	wg.Wait()
	close(results)
	out := make(map[uint32]Summary, len(keys))
	for r := range results {
		out[r.entity] = r.s
	}
	return out
}

// TopKByMean returns the k entities with the highest mean of the metric over
// the range, best first; ties break by ascending entity id.
func (db *DB) TopKByMean(metric string, start, end ts.Time, k int) []uint32 {
	type pair struct {
		entity uint32
		mean   float64
	}
	var ps []pair
	for e, s := range db.AggregateAll(metric, start, end) {
		if s.Count > 0 {
			ps = append(ps, pair{e, s.Mean()})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].mean != ps[j].mean {
			return ps[i].mean > ps[j].mean
		}
		return ps[i].entity < ps[j].entity
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].entity
	}
	return out
}

// Downsample buckets a series over [start, end) at the given width with the
// aggregation — a continuous-aggregate style query.
func (db *DB) Downsample(key SeriesKey, start, end, bucket ts.Time, agg ts.AggFunc) *ts.Series {
	return db.RangeSeries(key, start, end).Resample(bucket, agg)
}

// Stats describes storage shape for capacity reports.
type Stats struct {
	Series int
	Chunks int
	Points int
}

// Stats returns storage counts.
func (db *DB) Stats() Stats {
	st := Stats{Series: len(db.data)}
	for _, s := range db.data {
		st.Chunks += len(s.chunks)
		for _, c := range s.chunks {
			st.Points += len(c.times)
		}
	}
	return st
}

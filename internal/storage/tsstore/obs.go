package tsstore

import "hygraph/internal/obs"

// storeObs holds the store's preallocated metric handles. The zero value
// (all nil) is the disabled state: every increment is a nil-check no-op.
type storeObs struct {
	reads  *obs.Counter // read-path entry points (range scans, aggregates, downsamples)
	writes *obs.Counter // mutations (inserts, bulk loads, deletes)
	// Mirrors of the store's internal cache counters, incremented at the
	// same sites so an obs snapshot can report resample-cache behaviour
	// without reaching into the store.
	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheInvalidations *obs.Counter
	cacheEvictions     *obs.Counter
	cachePatches       *obs.Counter // write-through in-place bucket updates
	// Compression/tiering lifecycle counters (see docs/STORAGE.md).
	seals          *obs.Counter // open chunks encoded into immutable blocks
	inflates       *obs.Counter // sealed chunks decoded back to raw for mutation
	spills         *obs.Counter // compressed blocks evicted to spill files
	blockHits      *obs.Counter // sealed-chunk scans served from the decoded-block cache
	blockMisses    *obs.Counter // sealed-chunk scans that had to decode
	blockEvictions *obs.Counter // decoded-block cache evictions
}

// Instrument attaches metric handles from r to the store. Call it once,
// before the store is shared across goroutines — handle installation is not
// synchronized with concurrent operations. A nil registry detaches
// instrumentation (handles revert to no-op sinks).
func (db *DB) Instrument(r *obs.Registry) {
	db.obs = storeObs{
		reads:              r.Counter("tsstore.reads"),
		writes:             r.Counter("tsstore.writes"),
		cacheHits:          r.Counter("tsstore.cache.hits"),
		cacheMisses:        r.Counter("tsstore.cache.misses"),
		cacheInvalidations: r.Counter("tsstore.cache.invalidations"),
		cacheEvictions:     r.Counter("tsstore.cache.evictions"),
		cachePatches:       r.Counter("tsstore.cache.patches"),
		seals:              r.Counter("tsstore.compress.seals"),
		inflates:           r.Counter("tsstore.compress.inflates"),
		spills:             r.Counter("tsstore.compress.spills"),
		blockHits:          r.Counter("tsstore.block.hits"),
		blockMisses:        r.Counter("tsstore.block.misses"),
		blockEvictions:     r.Counter("tsstore.block.evictions"),
	}
}

// walObs holds the WAL's preallocated metric handles; zero value = disabled.
type walObs struct {
	appends *obs.Counter // records appended (post-success)
	bytes   *obs.Counter // payload bytes appended
	flushes *obs.Counter // successful flushes (fsync-equivalents)
}

// Instrument attaches metric handles from r to the WAL. Call before the log
// is shared; a nil registry detaches.
func (l *WAL) Instrument(r *obs.Registry) {
	l.obs = walObs{
		appends: r.Counter("tsstore.wal.appends"),
		bytes:   r.Counter("tsstore.wal.append_bytes"),
		flushes: r.Counter("tsstore.wal.flushes"),
	}
}

package tsstore

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"hygraph/internal/obs"
	"hygraph/internal/ts"
)

// Regression: a NaN first point used to set minV=maxV=NaN, and every later
// `v < minV` comparison stayed false — pushdown min/max disagreed with the
// edge-scan path and with a Save/Load recompute. All paths must now skip
// NaN for min/max and agree; Sum stays NaN-poisoned on all of them.
func TestNaNFirstPointSummaryAgreement(t *testing.T) {
	key := SeriesKey{Entity: 1, Metric: "m"}
	db := NewSharded(10, 1)
	db.Insert(key, 0, math.NaN())
	db.Insert(key, 1, 5)
	db.Insert(key, 2, 3)

	push := db.Aggregate(key, 0, 10) // full cover: summary pushdown
	scan := db.Aggregate(key, 0, 9)  // partial cover: edge scan
	if push.Count != 3 || scan.Count != 3 {
		t.Fatalf("counts: push=%d scan=%d, want 3", push.Count, scan.Count)
	}
	if push.Min != 3 || push.Max != 5 {
		t.Fatalf("pushdown min/max = %v/%v, want 3/5 (NaN first point must not poison)", push.Min, push.Max)
	}
	if scan.Min != push.Min || scan.Max != push.Max {
		t.Fatalf("edge scan min/max = %v/%v disagrees with pushdown %v/%v", scan.Min, scan.Max, push.Min, push.Max)
	}
	if !math.IsNaN(push.Sum) || !math.IsNaN(scan.Sum) {
		t.Fatalf("sum = %v/%v, want NaN on both paths (documented NaN poisoning)", push.Sum, scan.Sum)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reload := db2.Aggregate(key, 0, 10)
	if reload.Min != push.Min || reload.Max != push.Max || reload.Count != push.Count || !math.IsNaN(reload.Sum) {
		t.Fatalf("after Save/Load: %+v, want min/max/count %v/%v/%d sum NaN", reload, push.Min, push.Max, push.Count)
	}
}

// An all-NaN chunk must report NaN min/max on both paths (not +Inf/-Inf).
func TestAllNaNChunkNormalizes(t *testing.T) {
	key := SeriesKey{Entity: 1, Metric: "m"}
	db := NewSharded(10, 1)
	db.Insert(key, 0, math.NaN())
	db.Insert(key, 1, math.NaN())
	for name, s := range map[string]Summary{
		"pushdown": db.Aggregate(key, 0, 10),
		"edge":     db.Aggregate(key, 0, 9),
	} {
		if s.Count != 2 || !math.IsNaN(s.Min) || !math.IsNaN(s.Max) || !math.IsNaN(s.Sum) {
			t.Fatalf("%s: %+v, want count 2 and NaN min/max/sum", name, s)
		}
	}
}

// NaN arriving or leaving via upsert must rebuild the summary, not fold
// incrementally (sum would stay poisoned after the NaN is overwritten).
func TestNaNUpsertRecoversSummary(t *testing.T) {
	key := SeriesKey{Entity: 1, Metric: "m"}
	db := NewSharded(10, 1)
	db.Insert(key, 0, 4)
	db.Insert(key, 1, math.NaN())
	db.Insert(key, 2, 8)
	if s := db.Aggregate(key, 0, 10); !math.IsNaN(s.Sum) {
		t.Fatalf("sum with stored NaN = %v, want NaN", s.Sum)
	}
	db.Insert(key, 1, 6) // upsert replaces the NaN
	if s := db.Aggregate(key, 0, 10); s.Sum != 18 || s.Min != 4 || s.Max != 8 {
		t.Fatalf("after overwriting NaN: %+v, want sum 18 min 4 max 8", s)
	}
}

// deleteDuringSave deletes victim the first time any snapshot byte reaches
// the underlying writer — i.e. between Save's key snapshot and the victim's
// saveSeries.
type deleteDuringSave struct {
	buf    bytes.Buffer
	db     *DB
	victim SeriesKey
	done   bool
}

func (w *deleteDuringSave) Write(p []byte) (int, error) {
	if !w.done {
		w.done = true
		w.db.DeleteSeries(w.victim)
	}
	return w.buf.Write(p)
}

// Regression: a series deleted mid-Save was persisted as an empty series
// and Load materialized it as a live zero-chunk key — flipping HasSeries,
// which crash recovery uses to decide whether a prepared ingest reached the
// TS side. Load must skip zero-chunk keys.
func TestDeleteDuringSaveDoesNotResurrect(t *testing.T) {
	db := New(0)
	// A metric longer than bufio's 4096-byte buffer forces a flush to the
	// underlying writer while the first key is being written, which is when
	// the hook deletes the second key — deterministically mid-Save.
	first := SeriesKey{Entity: 1, Metric: strings.Repeat("a", 8192)}
	victim := SeriesKey{Entity: 2, Metric: "doomed"}
	db.Insert(first, 1, 1)
	db.Insert(victim, 1, 1)

	w := &deleteDuringSave{db: db, victim: victim}
	if err := db.Save(w); err != nil {
		t.Fatal(err)
	}
	if db.HasSeries(victim) {
		t.Fatal("hook did not run: victim still present in source store")
	}
	got, err := Load(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasSeries(victim) {
		t.Fatal("Load resurrected a series deleted mid-Save")
	}
	if !got.HasSeries(first) || got.NumSeries() != 1 {
		t.Fatalf("surviving series wrong: has=%v num=%d", got.HasSeries(first), got.NumSeries())
	}
}

// Pin the wire-level rule with crafted bytes: a v2 snapshot containing a
// zero-chunk key loads without materializing it.
func TestLoadSkipsZeroChunkKeys(t *testing.T) {
	var raw bytes.Buffer
	raw.WriteString(snapshotMagic)
	putUvarint(&raw, snapshotVersion)
	putUvarint(&raw, 10)      // chunk width
	putUvarint(&raw, 1)       // one key
	putUvarint(&raw, 7)       // entity
	putUvarint(&raw, 5)       // metric length
	raw.WriteString("ghost")  //
	putUvarint(&raw, 0)       // zero chunks: deleted mid-Save
	db, err := Load(&raw)
	if err != nil {
		t.Fatal(err)
	}
	if db.HasSeries(SeriesKey{Entity: 7, Metric: "ghost"}) || db.NumSeries() != 0 {
		t.Fatalf("zero-chunk key materialized: num=%d", db.NumSeries())
	}
	if len(db.Keys()) != 0 {
		t.Fatalf("Keys() = %v, want empty", db.Keys())
	}
}

// Version-1 snapshots (raw chunks, no form byte) must keep loading.
func TestLoadVersion1Snapshot(t *testing.T) {
	var raw bytes.Buffer
	raw.WriteString(snapshotMagic)
	putUvarint(&raw, 1)  // version 1
	putUvarint(&raw, 10) // chunk width
	putUvarint(&raw, 1)  // one key
	putUvarint(&raw, 3)  // entity
	putUvarint(&raw, 1)  // metric length
	raw.WriteString("m")
	putUvarint(&raw, 1) // one chunk
	putVarint(&raw, 0)  // slot
	putUvarint(&raw, 2) // two points
	putVarint(&raw, 4)  // t0
	putVarint(&raw, 3)  // delta
	putFloat(&raw, 1.5)
	putFloat(&raw, 2.5)
	db, err := Load(&raw)
	if err != nil {
		t.Fatal(err)
	}
	key := SeriesKey{Entity: 3, Metric: "m"}
	pts := db.Range(key, 0, 10)
	if len(pts) != 2 || pts[0].T != 4 || pts[0].V != 1.5 || pts[1].T != 7 || pts[1].V != 2.5 {
		t.Fatalf("v1 load: %+v", pts)
	}
	if s := db.Aggregate(key, 0, 10); s.Count != 2 || s.Sum != 4 || s.Min != 1.5 || s.Max != 2.5 {
		t.Fatalf("v1 summary: %+v", s)
	}
}

// Regression: DeleteSeries incremented the obs write counter before the
// existence check, so idempotent rollback deletes of absent keys skewed the
// write counters the mixed bench reports. Only effective deletes count.
func TestDeleteSeriesCountsOnlyEffectiveWrites(t *testing.T) {
	r := obs.New()
	db := New(0)
	db.Instrument(r)
	writes := r.Counter("tsstore.writes")

	key := SeriesKey{Entity: 1, Metric: "m"}
	if db.DeleteSeries(key) {
		t.Fatal("delete of absent key reported true")
	}
	if got := writes.Value(); got != 0 {
		t.Fatalf("absent-key delete counted as write: %d", got)
	}
	db.Insert(key, 1, 1)
	after := writes.Value()
	if !db.DeleteSeries(key) {
		t.Fatal("delete of present key reported false")
	}
	if got := writes.Value(); got != after+1 {
		t.Fatalf("effective delete: writes %d, want %d", got, after+1)
	}
	if db.DeleteSeries(key) {
		t.Fatal("second delete reported true")
	}
	if got := writes.Value(); got != after+1 {
		t.Fatalf("repeated delete counted again: %d", got)
	}
}

func putUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w io.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func putFloat(w io.Writer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.Write(buf[:])
}

var _ = ts.Time(0)

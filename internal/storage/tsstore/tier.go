package tsstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The cold tier: Spill moves sealed compressed blocks out of memory into
// per-shard append-only spill files, leaving only the hot summary and a file
// offset behind. Scans read evicted blocks back on demand through the
// decoded-block cache. Spill files are a rebuildable cache of state that is
// already durable in snapshots and WALs — recovery never reads them, and
// deleting them between runs merely costs a re-Spill (docs/STORAGE.md,
// docs/DURABILITY.md).

// spillRef locates one block in its shard's spill file.
type spillRef struct {
	off int64
	n   uint32
}

// tier owns the spill files, one per shard so spilling and read-back never
// contend across stripes. size is only touched by Spill, which runs under
// the owning shard's write lock; reads use ReadAt and are lock-free.
type tier struct {
	dir   string
	files []*os.File
	size  []int64
}

// EnableColdTier attaches a cold tier rooted at dir (created if needed),
// opening one spill file per shard ("ts.spill.N"). Call before the store is
// shared, like Instrument; pre-existing spill files are truncated — their
// contents are a cache of blocks that are still (or will again be) in
// memory, never the only copy.
func (db *DB) EnableColdTier(dir string) error {
	if db.tier != nil {
		return fmt.Errorf("tsstore: cold tier already enabled at %s", db.tier.dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tsstore: cold tier: %w", err)
	}
	t := &tier{dir: dir, files: make([]*os.File, len(db.shards)), size: make([]int64, len(db.shards))}
	for i := range db.shards {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("ts.spill.%d", i)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			t.close()
			return fmt.Errorf("tsstore: cold tier: %w", err)
		}
		t.files[i] = f
	}
	db.tier = t
	return nil
}

// CloseColdTier closes the spill files. The store must not be read after
// this while spilled chunks remain (their payloads become unreachable).
func (db *DB) CloseColdTier() error {
	if db.tier == nil {
		return nil
	}
	err := db.tier.close()
	db.tier = nil
	return err
}

func (t *tier) close() error {
	var first error
	for _, f := range t.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// read fetches one spilled block. ReadAt is safe for concurrent readers.
func (t *tier) read(shard int, ref *spillRef) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("tsstore: spilled chunk but no cold tier attached")
	}
	buf := make([]byte, ref.n)
	if _, err := t.files[shard].ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("tsstore: spill read shard %d off %d: %w", shard, ref.off, err)
	}
	return buf, nil
}

// TierStats reports one Spill pass.
type TierStats struct {
	Blocks int   // blocks written this pass
	Bytes  int64 // payload bytes moved to disk
}

// Spill is the compaction pass: every compressed in-memory block moves to
// its shard's spill file, leaving summary + offset behind. Open chunks and
// already-spilled chunks are untouched. Safe to call while the store is
// live — each shard is swept under its write lock.
func (db *DB) Spill() (TierStats, error) {
	if db.tier == nil {
		return TierStats{}, fmt.Errorf("tsstore: Spill without EnableColdTier")
	}
	var st TierStats
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		n, bytes, err := sh.spillLocked(db)
		sh.mu.Unlock()
		st.Blocks += n
		st.Bytes += bytes
		if err != nil {
			db.deg.set(err)
			return st, err
		}
	}
	db.obs.spills.Add(int64(st.Blocks))
	return st, nil
}

// spillLocked appends every compressed in-memory block of one shard to its
// spill file as a single write, then drops the in-memory payloads. Callers
// hold the write lock.
func (sh *tsShard) spillLocked(db *DB) (int, int64, error) {
	t := db.tier
	var batch []byte
	var moved []*chunk
	off := t.size[sh.idx]
	for _, s := range sh.data {
		for _, c := range s.chunks {
			if c.enc == nil {
				continue
			}
			c.spill = &spillRef{off: off + int64(len(batch)), n: uint32(len(c.enc))}
			batch = append(batch, c.enc...)
			moved = append(moved, c)
		}
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	if _, err := t.files[sh.idx].WriteAt(batch, off); err != nil {
		// Abort the whole shard: no chunk loses its in-memory payload and
		// the half-written tail is dead space the next pass overwrites.
		for _, c := range moved {
			c.spill = nil
		}
		return 0, 0, fmt.Errorf("tsstore: spill shard %d: %w", sh.idx, err)
	}
	t.size[sh.idx] = off + int64(len(batch))
	for _, c := range moved {
		c.enc = nil
	}
	return len(moved), int64(len(batch)), nil
}

// ---------------------------------------------------------------------------
// Decoded-block cache

// maxBlockCache bounds decoded blocks held across all shards; each shard
// caps its slice at maxBlockCache / shard count, with random eviction —
// the same striped design as the resample memo cache.
const maxBlockCache = 1024

// blockKey identifies one sealed chunk's decode.
type blockKey struct {
	key  SeriesKey
	slot int64
}

// blockEntry tracks one chunk holding a decode hint, plus its position in
// the eviction list. The decoded slices themselves live on the chunk
// (chunk.dec), published atomically so the warm read path never takes
// bc.mu; the cache's job is bounding how many hints exist and clearing
// them on eviction and invalidation.
type blockEntry struct {
	c   *chunk
	idx int
}

// blockCache bounds decode hints of sealed chunks. It has its own
// mutex — distinct from the shard's RWMutex — because scans fill it while
// holding only the shard's read side. Hints are shared read-only slices;
// writers invalidate before mutating a chunk. Lock order: a blockCache
// method is only ever called while its shard's lock is held, and never
// acquires any other lock.
type blockCache struct {
	mu   sync.Mutex
	cap  int
	m    map[blockKey]*blockEntry
	keys []blockKey
	rng  uint64
}

func (bc *blockCache) init(capacity int, seed uint64) {
	bc.cap = capacity
	bc.m = map[blockKey]*blockEntry{}
	bc.rng = seed
}

// put publishes a chunk's decode hint, evicting one random entry at
// capacity; it reports whether an eviction happened. Concurrent readers may
// race to fill the same key — the second fill overwrites the first with
// identical data.
func (bc *blockCache) put(k blockKey, c *chunk, dec *blockDec) bool {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if e, ok := bc.m[k]; ok {
		e.c.dec.Store(dec)
		return false
	}
	evicted := false
	if len(bc.keys) >= bc.cap {
		x := bc.rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		bc.rng = x
		bc.removeAt(int(x % uint64(len(bc.keys))))
		evicted = true
	}
	bc.m[k] = &blockEntry{c: c, idx: len(bc.keys)}
	bc.keys = append(bc.keys, k)
	c.dec.Store(dec)
	return evicted
}

// removeAt drops the entry at position i in the eviction list, clearing its
// chunk's hint and swap-removing with the moved entry's back-index fixed.
// A reader that loaded the hint just before it was cleared keeps scanning
// the (immutable) decoded slices — harmless. Callers hold bc.mu.
func (bc *blockCache) removeAt(i int) {
	k := bc.keys[i]
	bc.m[k].c.dec.Store(nil)
	last := len(bc.keys) - 1
	moved := bc.keys[last]
	bc.keys[i] = moved
	bc.m[moved].idx = i
	bc.keys = bc.keys[:last]
	delete(bc.m, k)
}

// invalidate drops one chunk's decode (its block is about to be rewritten).
func (bc *blockCache) invalidate(k blockKey) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if e, ok := bc.m[k]; ok {
		bc.removeAt(e.idx)
	}
}

// invalidateKey drops every decode belonging to a series (DeleteSeries: a
// later re-insert under the same key must not see stale blocks).
func (bc *blockCache) invalidateKey(key SeriesKey) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for i := 0; i < len(bc.keys); {
		if bc.keys[i].key == key {
			bc.removeAt(i)
			continue // swap-remove moved a new entry into position i
		}
		i++
	}
}

// drop empties the cache, clearing every chunk's hint.
func (bc *blockCache) drop() {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for _, e := range bc.m {
		e.c.dec.Store(nil)
	}
	bc.m = map[blockKey]*blockEntry{}
	bc.keys = nil
}

// blockCacheLen counts live decoded blocks across shards (test hook).
func (db *DB) blockCacheLen() int {
	n := 0
	for i := range db.shards {
		bc := &db.shards[i].bc
		bc.mu.Lock()
		n += len(bc.m)
		bc.mu.Unlock()
	}
	return n
}

package tsstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"hygraph/internal/ts"
)

// Sealed-chunk compression: the TimescaleDB-style columnar codec the survey
// in PAPERS.md credits for TS-native scale. A sealed chunk's points are
// encoded into one immutable block:
//
//	uvarint(n)                      point count
//	varint(t0)                      first timestamp
//	varint(d1)                      first delta (n >= 2)
//	varint(dod_i) for i in 2..n-1   delta-of-delta per remaining point
//	uvarint(len(values))            value stream length in bytes
//	values                          Gorilla XOR bit stream (see below)
//
// Timestamps use byte-aligned varint delta-of-delta: a regular sampling grid
// (the overwhelmingly common shape — hourly availability, minutely sensors)
// has dod == 0 everywhere and costs one byte per point. Values use the
// Gorilla XOR scheme: each float64 is XORed with its predecessor; a zero XOR
// is a single '0' bit, otherwise the meaningful (non-zero) bit window is
// emitted, reusing the previous window's bounds when it still fits:
//
//	'0'                          value identical to predecessor
//	'1' '0' <meaningful bits>    window of the previous value reused
//	'1' '1' <5b leading> <6b sig-1> <meaningful bits>   new window
//
// The codec is exact: decodeChunk(encodeChunk(ts, vs)) reproduces the input
// bit-for-bit (NaN payloads included), which is what lets the differential
// battery demand byte-identical query results from compressed stores.

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	b    []byte
	free uint // unused low bits in the last byte (0 when b is "full")
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	w.free--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.free
	}
}

// writeBits emits the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		n--
		w.writeBit((v >> n) & 1)
	}
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b   []byte
	pos uint // bits consumed so far
}

func (r *bitReader) readBit() (uint64, error) {
	i := r.pos >> 3
	if i >= uint(len(r.b)) {
		return 0, fmt.Errorf("tsstore: value stream truncated")
	}
	bit := uint64(r.b[i]>>(7-(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for ; n > 0; n-- {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}

// encodeChunk compresses one chunk's points (times strictly increasing,
// len(times) == len(vals) > 0) into an immutable block.
func encodeChunk(times []ts.Time, vals []float64) []byte {
	n := len(times)
	buf := make([]byte, 0, 2*n) // regular grids land well under this
	buf = binary.AppendUvarint(buf, uint64(n))
	if n == 0 {
		return buf
	}
	buf = binary.AppendVarint(buf, int64(times[0]))
	if n >= 2 {
		prevDelta := int64(times[1] - times[0])
		buf = binary.AppendVarint(buf, prevDelta)
		for i := 2; i < n; i++ {
			d := int64(times[i] - times[i-1])
			buf = binary.AppendVarint(buf, d-prevDelta)
			prevDelta = d
		}
	}

	var bw bitWriter
	bw.writeBits(math.Float64bits(vals[0]), 64)
	prev := math.Float64bits(vals[0])
	lead, sig := uint(0), uint(0) // current window; sig == 0 means none yet
	for i := 1; i < n; i++ {
		cur := math.Float64bits(vals[i])
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			bw.writeBit(0)
			continue
		}
		bw.writeBit(1)
		l := uint(bits.LeadingZeros64(xor))
		if l > 31 {
			l = 31 // 5-bit field; deeper windows gain little
		}
		t := uint(bits.TrailingZeros64(xor))
		s := 64 - l - t
		// Reuse the previous window when the xor's meaningful bits fit
		// inside it: at least `lead` leading and `64-lead-sig` trailing zeros.
		if sig != 0 && l >= lead && t >= 64-lead-sig {
			bw.writeBit(0)
			bw.writeBits(xor>>(64-lead-sig), sig)
			continue
		}
		lead, sig = l, s
		bw.writeBit(1)
		bw.writeBits(uint64(lead), 5)
		bw.writeBits(uint64(sig-1), 6)
		bw.writeBits(xor>>t, sig)
	}
	buf = binary.AppendUvarint(buf, uint64(len(bw.b)))
	return append(buf, bw.b...)
}

// decodeChunk inflates a block produced by encodeChunk into freshly
// allocated slices. Corrupt input returns an error, never a panic — blocks
// also arrive from snapshots and spill files.
func decodeChunk(block []byte) ([]ts.Time, []float64, error) {
	rd := block
	n, w := binary.Uvarint(rd)
	if w <= 0 {
		return nil, nil, fmt.Errorf("tsstore: corrupt block count")
	}
	rd = rd[w:]
	// Every point past the second costs >= 1 timestamp byte and >= 1 value
	// bit; cap n before allocating so corrupt headers can't OOM the loader.
	if n > uint64(len(block))*8+2 {
		return nil, nil, fmt.Errorf("tsstore: block count %d exceeds payload", n)
	}
	times := make([]ts.Time, n)
	vals := make([]float64, n)
	if n == 0 {
		return times, vals, nil
	}
	t0, w := binary.Varint(rd)
	if w <= 0 {
		return nil, nil, fmt.Errorf("tsstore: corrupt block t0")
	}
	rd = rd[w:]
	times[0] = ts.Time(t0)
	if n >= 2 {
		delta, w := binary.Varint(rd)
		if w <= 0 {
			return nil, nil, fmt.Errorf("tsstore: corrupt block delta")
		}
		rd = rd[w:]
		times[1] = times[0] + ts.Time(delta)
		for i := uint64(2); i < n; i++ {
			dod, w := binary.Varint(rd)
			if w <= 0 {
				return nil, nil, fmt.Errorf("tsstore: corrupt block dod at %d", i)
			}
			rd = rd[w:]
			delta += dod
			times[i] = times[i-1] + ts.Time(delta)
		}
	}
	vlen, w := binary.Uvarint(rd)
	if w <= 0 || vlen > uint64(len(rd[w:])) {
		return nil, nil, fmt.Errorf("tsstore: corrupt block value length")
	}
	br := bitReader{b: rd[w : w+int(vlen)]}
	first, err := br.readBits(64)
	if err != nil {
		return nil, nil, err
	}
	prev := first
	vals[0] = math.Float64frombits(first)
	lead, sig := uint(0), uint(0)
	for i := uint64(1); i < n; i++ {
		ctrl, err := br.readBit()
		if err != nil {
			return nil, nil, err
		}
		if ctrl == 0 {
			vals[i] = math.Float64frombits(prev)
			continue
		}
		reuse, err := br.readBit()
		if err != nil {
			return nil, nil, err
		}
		if reuse == 1 { // '1''1': new window
			l, err := br.readBits(5)
			if err != nil {
				return nil, nil, err
			}
			s, err := br.readBits(6)
			if err != nil {
				return nil, nil, err
			}
			lead, sig = uint(l), uint(s)+1
		} else if sig == 0 {
			return nil, nil, fmt.Errorf("tsstore: block reuses window before defining one")
		}
		mbits, err := br.readBits(sig)
		if err != nil {
			return nil, nil, err
		}
		prev ^= mbits << (64 - lead - sig)
		vals[i] = math.Float64frombits(prev)
	}
	for i := uint64(1); i < n; i++ {
		if times[i] <= times[i-1] {
			return nil, nil, fmt.Errorf("tsstore: block timestamps not increasing at %d", i)
		}
	}
	return times, vals, nil
}

package tsstore

import (
	"fmt"
	"sync"
	"testing"

	"hygraph/internal/ts"
)

// Race-detector hammer: writers spread over every stripe while aggregate
// scans, point reads, and cached downsamples run against the same store.
// Correctness of the concurrent phase is checked after quiescence by
// replaying the identical inserts into a single-stripe reference store and
// comparing the merged insertion-order fold element by element.
func TestShardedIngestQueryHammer(t *testing.T) {
	const (
		writers  = 4
		readers  = 4
		perWrite = 300
	)
	db := NewSharded(ts.Hour, 8)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWrite; i++ {
				key := SeriesKey{Entity: uint32((w*perWrite + i) % 64), Metric: "m"}
				db.Insert(key, ts.Time(i)*ts.Minute, float64(w*i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := SeriesKey{Entity: uint32(i % 64), Metric: "m"}
				db.Aggregate(key, 0, ts.Time(perWrite)*ts.Minute)
				db.AggregateEach("m", 0, ts.Time(perWrite)*ts.Minute, func(uint32, Summary) {})
				db.Downsample(key, 0, ts.Time(perWrite)*ts.Minute, 10*ts.Minute, ts.AggMean)
				parts := make([][]EntitySummary, db.NumShards())
				for s := range parts {
					parts[s] = db.AggregateShard(s, "m", 0, ts.Time(perWrite)*ts.Minute)
				}
				MergeBySeq(parts)
			}
		}(r)
	}
	wg.Wait()

	// Quiesced: replay into a single stripe and compare the full fold.
	ref := New(ts.Hour)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWrite; i++ {
			key := SeriesKey{Entity: uint32((w*perWrite + i) % 64), Metric: "m"}
			ref.Insert(key, ts.Time(i)*ts.Minute, float64(w*i))
		}
	}
	got := db.AggregateAll("m", 0, ts.Time(perWrite)*ts.Minute)
	want := ref.AggregateAll("m", 0, ts.Time(perWrite)*ts.Minute)
	if len(got) != len(want) {
		t.Fatalf("entity count: got %d want %d", len(got), len(want))
	}
	for e, ws := range want {
		gs, ok := got[e]
		if !ok {
			t.Fatalf("entity %d missing from sharded store", e)
		}
		if gs.Count != ws.Count || gs.Min != ws.Min || gs.Max != ws.Max {
			t.Fatalf("entity %d: got %+v want %+v", e, gs, ws)
		}
	}
}

// The merged insertion-order iteration must be identical no matter how many
// stripes the keys are spread over, and must equal the MergeBySeq of the
// per-stripe partitions — that equivalence is what lets the parallel
// executor partition by shard without changing any fold's result.
func TestShardedIterationOrderMatchesMerge(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := NewSharded(ts.Hour, shards)
			for i := 0; i < 200; i++ {
				key := SeriesKey{Entity: uint32(i), Metric: "m"}
				db.Insert(key, ts.Time(i)*ts.Minute, float64(i))
			}
			var each []uint32
			db.AggregateEach("m", 0, 200*ts.Minute, func(e uint32, _ Summary) {
				each = append(each, e)
			})
			parts := make([][]EntitySummary, db.NumShards())
			for s := range parts {
				parts[s] = db.AggregateShard(s, "m", 0, 200*ts.Minute)
			}
			merged := MergeBySeq(parts)
			if len(each) != 200 || len(merged) != 200 {
				t.Fatalf("lengths: each=%d merged=%d", len(each), len(merged))
			}
			for i := range merged {
				if merged[i].Entity != each[i] {
					t.Fatalf("order diverges at %d: merge=%d each=%d", i, merged[i].Entity, each[i])
				}
				// Insertion order here is entity order, so both must count up.
				if merged[i].Entity != uint32(i) {
					t.Fatalf("insertion order broken at %d: %d", i, merged[i].Entity)
				}
			}
		})
	}
}

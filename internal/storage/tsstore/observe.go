package tsstore

import (
	"sort"

	"hygraph/internal/ts"
)

// This file is the store's subscription layer: the engine-side half of the
// streaming feature (internal/stream holds the consumer half). Observers
// receive every applied mutation synchronously, under the owning shard's
// write lock, immediately after the point is in the store and its
// continuous-aggregate entries are patched. Combined with a seeded
// Subscribe, that gives exactly-once coverage: every point is either in
// the seed snapshot or delivered as a mutation, never both, never neither.
//
// Lock discipline: the only edge added is shard.mu -> observer-internal
// state. Observers must therefore never call back into the DB from
// OnMutation — the shard lock is not reentrant — and must use the
// Mutation's Scan closure (bound to the already-held lock) for any
// bucket-local rescans they need. Subscribe acquires every shard write
// lock in index order (the *Ordered discipline), so it cannot deadlock
// against writers taking single shard locks.

// MutKind classifies a mutation delivered to observers.
type MutKind int

const (
	// MutPoint is one inserted or upserted point.
	MutPoint MutKind = iota
	// MutDeleteSeries reports that the whole series was removed; T and V
	// are meaningless.
	MutDeleteSeries
)

// Mutation describes one applied write. It is delivered after the store
// reflects the write, so Scan already sees the new point.
type Mutation struct {
	Kind MutKind
	Key  SeriesKey
	T    ts.Time
	V    float64
	// Scan visits the mutated series' points in [start, end) in time
	// order under the shard write lock the delivery already holds.
	// Observers must use it — not DB methods — while inside OnMutation,
	// and must not retain it past the call.
	Scan func(start, end ts.Time, fn func(ts.Time, float64))
}

// Observer consumes applied mutations. OnMutation runs on the writer's
// goroutine under the owning shard's write lock: implementations must be
// fast, must not block, and must not call back into the DB.
type Observer interface {
	OnMutation(m Mutation)
}

// SeedView is the snapshot handed to Subscribe's seed callback while every
// shard is write-locked. It must not escape the callback.
type SeedView struct {
	db *DB
}

// Keys lists every series key in global first-insertion order.
func (v SeedView) Keys() []SeriesKey {
	var all []seqKey
	for i := range v.db.shards {
		sh := &v.db.shards[i]
		for j, k := range sh.keys {
			all = append(all, seqKey{seq: sh.seqs[j], key: k})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	keys := make([]SeriesKey, len(all))
	for i, sk := range all {
		keys[i] = sk.key
	}
	return keys
}

// Scan visits a series' points in [start, end) in time order.
func (v SeedView) Scan(key SeriesKey, start, end ts.Time, fn func(ts.Time, float64)) {
	sh := v.db.shard(key)
	// SeedView only exists inside Subscribe's all-shard write-lock barrier
	// (lockAllShardsOrdered), so every shard's lock is held here.
	sh.scanRangeLocked(v.db, key, start, end, fn) //hyvet:allow lockdiscipline SeedView is confined to Subscribe's seed callback, which runs with every shard write-locked via lockAllShardsOrdered
}

// lockAllShardsOrdered write-locks every shard in ascending index order —
// the one sanctioned way to hold more than one stripe at a time.
func (db *DB) lockAllShardsOrdered() {
	for i := range db.shards {
		db.shards[i].mu.Lock()
	}
}

func (db *DB) unlockAllShards() {
	for i := range db.shards {
		db.shards[i].mu.Unlock()
	}
}

// Subscribe registers an observer. If seed is non-nil it runs first, with
// every shard write-locked, so the observer's initial state and the
// mutation stream that follows cover every point exactly once — this is
// also the rebuild contract after crash recovery: recover the store, then
// re-subscribe and seed from the recovered state. Registration is
// idempotent in effect but not identity: subscribing the same observer
// twice delivers twice.
func (db *DB) Subscribe(o Observer, seed func(SeedView)) {
	db.subMu.Lock()
	defer db.subMu.Unlock()
	db.lockAllShardsOrdered()
	defer db.unlockAllShards()
	if seed != nil {
		seed(SeedView{db: db})
	}
	var next []Observer
	if cur := db.observers.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, o)
	db.observers.Store(&next)
}

// Unsubscribe removes an observer by identity. Deliveries already in
// flight on other shards may still arrive; after Unsubscribe returns, no
// new delivery starts.
func (db *DB) Unsubscribe(o Observer) {
	db.subMu.Lock()
	defer db.subMu.Unlock()
	cur := db.observers.Load()
	if cur == nil {
		return
	}
	next := make([]Observer, 0, len(*cur))
	for _, x := range *cur {
		if x != o {
			next = append(next, x)
		}
	}
	db.observers.Store(&next)
}

// NumObservers reports the live subscriber count (test hook).
func (db *DB) NumObservers() int {
	if cur := db.observers.Load(); cur != nil {
		return len(*cur)
	}
	return 0
}

// notifyLocked fans one applied mutation out to the subscriber list. The
// caller holds sh's write lock; with no subscribers this is a single
// atomic load.
func (sh *tsShard) notifyLocked(db *DB, kind MutKind, key SeriesKey, t ts.Time, v float64) {
	cur := db.observers.Load()
	if cur == nil || len(*cur) == 0 {
		return
	}
	m := Mutation{
		Kind: kind,
		Key:  key,
		T:    t,
		V:    v,
		Scan: func(start, end ts.Time, fn func(ts.Time, float64)) {
			// The closure runs inside OnMutation, on the delivering writer's
			// goroutine, which still holds sh.mu (see the Mutation doc).
			sh.scanRangeLocked(db, key, start, end, fn) //hyvet:allow lockdiscipline Scan is only callable from inside OnMutation, which runs under the shard write lock the delivery already holds
		},
	}
	for _, o := range *cur {
		o.OnMutation(m)
	}
}

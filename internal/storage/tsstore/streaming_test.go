package tsstore

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/ts"
)

// sameResample is element-wise equality with NaN == NaN (times and values).
func sameResample(a, b *ts.Series) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.TimeAt(i) != b.TimeAt(i) {
			return false
		}
		av, bv := a.ValueAt(i), b.ValueAt(i)
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
	}
	return true
}

// The satellite bugfix, as a failing-before regression test: before
// write-through maintenance, one appended point evicted every cached
// window of its series, so an entry over an unrelated range was a miss on
// the next read. Now an append outside a cached window leaves the entry
// untouched (a hit with the identical answer), and an append inside a
// window patches it in place (still a hit, already reflecting the point).
func TestUnrelatedWindowsSurviveTailAppend(t *testing.T) {
	db := New(ts.Day)
	key := SeriesKey{Entity: 9, Metric: "availability"}
	for h := 0; h < 24*14; h++ {
		db.Insert(key, ts.Time(h)*ts.Hour, float64(h%24))
	}
	wk1End := ts.Time(24*7) * ts.Hour
	tail := ts.Time(24*14) * ts.Hour

	// Two windows: week 1 (never touched by tail appends) and the full
	// span so far (the tail append lands past its end too).
	week1 := db.Downsample(key, 0, wk1End, ts.Day, ts.AggMean)
	full := db.Downsample(key, 0, tail, ts.Day, ts.AggMean)
	base := db.ResampleCacheStats()

	db.Insert(key, tail+ts.Hour, 42) // tail append beyond both windows

	gotWeek1 := db.Downsample(key, 0, wk1End, ts.Day, ts.AggMean)
	gotFull := db.Downsample(key, 0, tail, ts.Day, ts.AggMean)
	st := db.ResampleCacheStats()
	if st.Hits-base.Hits != 2 || st.Misses != base.Misses {
		t.Fatalf("unrelated-range entries did not survive the tail append: %+v vs %+v", st, base)
	}
	if !sameResample(gotWeek1, week1) || !sameResample(gotFull, full) {
		t.Fatal("surviving entries changed value")
	}

	// A tail append inside the full window patches that entry only.
	db.Insert(key, tail-ts.Hour/2, 42)
	st2 := db.ResampleCacheStats()
	if st2.Patches-st.Patches != 1 {
		t.Fatalf("in-window tail append should patch exactly the covering entry: %+v vs %+v", st2, st)
	}
	gotFull = db.Downsample(key, 0, tail, ts.Day, ts.AggMean)
	want := db.RangeSeries(key, 0, tail).Resample(ts.Day, ts.AggMean)
	if !sameResample(gotFull, want) {
		t.Fatalf("patched entry diverged:\n got %v\nwant %v", gotFull, want)
	}
	if st3 := db.ResampleCacheStats(); st3.Misses != st2.Misses {
		t.Fatalf("patched entry recomputed instead of serving a hit: %+v", st3)
	}
}

// streamChecker drives one store through random interleavings of
// append/upsert/out-of-order/delete/seal/spill and asserts, at every
// checkpoint, that each warm Downsample answer equals a from-scratch
// resample of the same window — element-wise, with the 1e-9 tolerance the
// battery promises (the implementation is in fact bit-exact).
type streamWindow struct {
	start, end, bucket ts.Time
	agg                ts.AggFunc
}

func checkWindows(t *testing.T, db *DB, keys []SeriesKey, windows []streamWindow, where string) {
	t.Helper()
	for _, k := range keys {
		for _, w := range windows {
			got := db.Downsample(k, w.start, w.end, w.bucket, w.agg)
			want := db.RangeSeries(k, w.start, w.end).Resample(w.bucket, w.agg)
			if got.Len() != want.Len() {
				t.Fatalf("%s: key %v window %+v: %d buckets vs %d", where, k, w, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				if got.TimeAt(i) != want.TimeAt(i) {
					t.Fatalf("%s: key %v window %+v bucket %d: time %d vs %d",
						where, k, w, i, got.TimeAt(i), want.TimeAt(i))
				}
				gv, wv := got.ValueAt(i), want.ValueAt(i)
				if math.IsNaN(gv) && math.IsNaN(wv) {
					continue
				}
				if math.Abs(gv-wv) > 1e-9 {
					t.Fatalf("%s: key %v window %+v bucket %d: %v vs %v",
						where, k, w, i, gv, wv)
				}
			}
		}
	}
}

// TestStreamingDifferentialInterleavings is the tentpole differential
// battery at the store level: incremental maintenance must equal
// from-scratch recomputation under random interleavings of tail appends,
// upserts, out-of-order writes, series deletes, chunk seals (implicit in
// cursor movement), cold-tier spills, and Save/Load round-trips.
func TestStreamingDifferentialInterleavings(t *testing.T) {
	keys := []SeriesKey{
		{Entity: 1, Metric: "avail"},
		{Entity: 2, Metric: "avail"},
		{Entity: 3, Metric: "temp"},
	}
	windows := []streamWindow{
		{0, 400 * ts.Minute, 10 * ts.Minute, ts.AggMean},
		{0, 400 * ts.Minute, 10 * ts.Minute, ts.AggSum},
		{30 * ts.Minute, 310 * ts.Minute, 7 * ts.Minute, ts.AggMin},
		{30 * ts.Minute, 310 * ts.Minute, 7 * ts.Minute, ts.AggMax},
		{0, 600 * ts.Minute, ts.Hour, ts.AggCount},
		{0, 600 * ts.Minute, ts.Hour, ts.AggStd},
		{10 * ts.Minute, 500 * ts.Minute, 13 * ts.Minute, ts.AggMedian},
	}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		db := New(ts.Hour) // 1h chunks: cursor moves seal constantly
		if err := db.EnableColdTier(t.TempDir()); err != nil {
			t.Fatal(err)
		}
		heads := map[SeriesKey]ts.Time{}
		for op := 0; op < 250; op++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(10) {
			case 0: // upsert / out-of-order into the seen range
				pt := ts.Time(rng.Intn(int(heads[k] + 2)))
				db.Insert(k, pt, rng.Float64()*100)
			case 1: // delete, then let later ops rebuild
				db.DeleteSeries(k)
				heads[k] = 0
			case 2: // spill sealed blocks to the cold tier
				if _, err := db.Spill(); err != nil {
					t.Fatal(err)
				}
			case 3: // batch load
				batch := ts.New("b")
				for i := 0; i < 8; i++ {
					heads[k] += ts.Time(1 + rng.Intn(10*int(ts.Minute)))
					batch.MustAppend(heads[k], rng.Float64()*100)
				}
				db.InsertSeries(k, batch)
			default: // tail append (the hot path)
				heads[k] += ts.Time(1 + rng.Intn(12*int(ts.Minute)))
				db.Insert(k, heads[k], rng.Float64()*100)
			}
			if op%5 == 0 { // keep entries warm so patching is exercised
				w := windows[rng.Intn(len(windows))]
				db.Downsample(k, w.start, w.end, w.bucket, w.agg)
			}
			if op%50 == 49 {
				checkWindows(t, db, keys, windows, "mid-run")
			}
		}
		checkWindows(t, db, keys, windows, "final")
		st := db.ResampleCacheStats()
		if st.Patches == 0 {
			t.Fatalf("trial %d: interleaving never patched (degenerate)", trial)
		}

		// Save/Load round-trip: the reloaded store rebuilds entries on
		// demand and keeps them maintained through further writes.
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		db2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		checkWindows(t, db2, keys, windows, "post-load")
		for op := 0; op < 40; op++ {
			k := keys[rng.Intn(len(keys))]
			heads[k] += ts.Time(1 + rng.Intn(5*int(ts.Minute)))
			db2.Insert(k, heads[k], rng.Float64()*100)
			w := windows[rng.Intn(len(windows))]
			db2.Downsample(k, w.start, w.end, w.bucket, w.agg)
		}
		checkWindows(t, db2, keys, windows, "post-load continued")
	}
}

// countingObserver tallies deliveries and verifies Scan sees the mutation.
type countingObserver struct {
	points, deletes int
	lastSeen        float64
}

func (o *countingObserver) OnMutation(m Mutation) {
	switch m.Kind {
	case MutPoint:
		o.points++
		m.Scan(m.T, m.T+1, func(_ ts.Time, v float64) { o.lastSeen = v })
	case MutDeleteSeries:
		o.deletes++
	}
}

// Observers see every applied point exactly once — either via the seed or
// via a mutation — in apply order, with the store already reflecting it.
func TestObserverSeedAndDelivery(t *testing.T) {
	db := New(ts.Day)
	key := SeriesKey{Entity: 1, Metric: "m"}
	for i := 0; i < 50; i++ {
		db.Insert(key, ts.Time(i), float64(i))
	}

	seeded := 0
	o := &countingObserver{}
	db.Subscribe(o, func(v SeedView) {
		for _, k := range v.Keys() {
			v.Scan(k, 0, ts.MaxTime, func(ts.Time, float64) { seeded++ })
		}
	})
	if seeded != 50 {
		t.Fatalf("seed saw %d points, want 50", seeded)
	}
	if db.NumObservers() != 1 {
		t.Fatalf("NumObservers = %d", db.NumObservers())
	}

	for i := 50; i < 70; i++ {
		db.Insert(key, ts.Time(i), float64(i))
	}
	if o.points != 20 {
		t.Fatalf("delivered %d mutations, want 20", o.points)
	}
	if o.lastSeen != 69 {
		t.Fatalf("Scan inside OnMutation saw %v, want 69 (store must reflect the write)", o.lastSeen)
	}
	db.DeleteSeries(key)
	if o.deletes != 1 {
		t.Fatalf("deletes = %d", o.deletes)
	}
	db.Unsubscribe(o)
	db.Insert(key, 1000, 1)
	if o.points != 20 {
		t.Fatal("unsubscribed observer still receives deliveries")
	}
}

// Crash recovery: replaying the WAL into a fresh store and re-subscribing
// (the rebuild contract) yields observer state identical to a subscriber
// that lived through the original writes.
func TestRecoveryRebuildsSubscriptions(t *testing.T) {
	var log bytes.Buffer
	db := New(ts.Hour)
	wal := NewWAL(db, &log)
	key := SeriesKey{Entity: 7, Metric: "avail"}

	live := &sumObserver{}
	db.Subscribe(live, nil)
	rng := rand.New(rand.NewSource(99))
	cur := ts.Time(0)
	for i := 0; i < 200; i++ {
		if rng.Intn(5) == 0 { // out-of-order
			if err := wal.Insert(key, ts.Time(rng.Intn(int(cur+2))), rng.Float64()*10); err != nil {
				t.Fatal(err)
			}
		} else {
			cur += ts.Time(1 + rng.Intn(900000))
			if err := wal.Insert(key, cur, rng.Float64()*10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}

	// "Crash": rebuild from the log alone, then re-subscribe and seed.
	db2 := New(ts.Hour)
	if _, err := Replay(db2, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	rebuilt := &sumObserver{}
	db2.Subscribe(rebuilt, func(v SeedView) {
		for _, k := range v.Keys() {
			v.Scan(k, 0, ts.MaxTime, func(pt ts.Time, val float64) { rebuilt.add(pt, val) })
		}
	})
	if live.n != rebuilt.n || math.Abs(live.sum-rebuilt.sum) > 1e-9 {
		t.Fatalf("rebuilt observer state diverged: live (n=%d sum=%v) vs rebuilt (n=%d sum=%v)",
			live.n, live.sum, rebuilt.n, rebuilt.sum)
	}
	// Both stores agree on the maintained aggregates too.
	end := cur + ts.Hour
	a := db.Downsample(key, 0, end, ts.Hour, ts.AggMean)
	b := db2.Downsample(key, 0, end, ts.Hour, ts.AggMean)
	if !sameResample(a, b) {
		t.Fatal("recovered downsample diverged from original")
	}
}

// sumObserver folds delivered points into (count, sum) — enough state to
// detect any lost, duplicated, or reordered delivery in expectation.
type sumObserver struct {
	n   int
	sum float64
}

func (o *sumObserver) add(_ ts.Time, v float64) { o.n++; o.sum += v }

func (o *sumObserver) OnMutation(m Mutation) {
	if m.Kind == MutPoint {
		o.add(m.T, m.V)
	}
}

package tsstore

import (
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/ts"
)

func roundTrip(t *testing.T, times []ts.Time, vals []float64) {
	t.Helper()
	block := encodeChunk(times, vals)
	gotT, gotV, err := decodeChunk(block)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(gotT) != len(times) || len(gotV) != len(vals) {
		t.Fatalf("length mismatch: %d/%d vs %d/%d", len(gotT), len(gotV), len(times), len(vals))
	}
	for i := range times {
		if gotT[i] != times[i] {
			t.Fatalf("time[%d] = %d, want %d", i, gotT[i], times[i])
		}
		if math.Float64bits(gotV[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("val[%d] = %x, want %x (bit-exact)", i, math.Float64bits(gotV[i]), math.Float64bits(vals[i]))
		}
	}
}

func TestCodecRoundTripShapes(t *testing.T) {
	cases := []struct {
		name  string
		times []ts.Time
		vals  []float64
	}{
		{"single", []ts.Time{42}, []float64{3.14}},
		{"pair", []ts.Time{-5, 7}, []float64{1, 1}},
		{"regular grid", []ts.Time{0, 3600000, 7200000, 10800000}, []float64{10, 10, 12, 9}},
		{"irregular", []ts.Time{-1000, 3, 4, 5000, 123456789}, []float64{0.1, -0.1, 1e300, -1e-300, 0}},
		{"constant", []ts.Time{1, 2, 3, 4, 5}, []float64{7, 7, 7, 7, 7}},
		{"specials", []ts.Time{1, 2, 3, 4, 5}, []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), math.MaxFloat64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { roundTrip(t, tc.times, tc.vals) })
	}
}

func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		times := make([]ts.Time, n)
		vals := make([]float64, n)
		cur := ts.Time(rng.Int63n(1 << 40))
		for i := 0; i < n; i++ {
			cur += ts.Time(1 + rng.Int63n(100000))
			times[i] = cur
			switch rng.Intn(4) {
			case 0:
				vals[i] = float64(rng.Intn(100)) // integer-ish, XOR-friendly
			case 1:
				vals[i] = rng.NormFloat64() * 1e6
			case 2:
				if i > 0 {
					vals[i] = vals[i-1] // repeated value, '0' control bit
				}
			default:
				vals[i] = math.Float64frombits(rng.Uint64()) // arbitrary bits
			}
		}
		roundTrip(t, times, vals)
	}
}

// Regular integer-valued grids are the bench workload; pin the size win the
// points-per-MB column depends on (raw layout: 16 bytes/point).
func TestCodecCompressesRegularGrid(t *testing.T) {
	n := 1000
	times := make([]ts.Time, n)
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range times {
		times[i] = ts.Time(i) * ts.Hour
		vals[i] = float64(rng.Intn(60))
	}
	block := encodeChunk(times, vals)
	if got, limit := len(block), 16*n/4; got > limit {
		t.Fatalf("block = %d bytes for %d points; want <= %d (4x under raw)", got, n, limit)
	}
}

// Corrupt blocks must come back as errors, never panics or giant
// allocations — blocks arrive from snapshots and spill files.
func TestDecodeCorruptBlocks(t *testing.T) {
	good := encodeChunk([]ts.Time{1, 2, 3}, []float64{1, 2, 3})
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := decodeChunk(good[:cut]); err == nil && cut < len(good) {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xFF
		// Any outcome but a panic/OOM is fine; decode under recover-free test.
		decodeChunk(mut)
	}
	if _, _, err := decodeChunk([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Fatal("absurd count accepted")
	}
}

func TestDecodeRejectsNonIncreasingTimes(t *testing.T) {
	// Encode a legal pair, then flip the delta sign byte by re-encoding with
	// crafted deltas: emit via the real encoder on decreasing input is not
	// possible (chunks are sorted), so build the frame by hand.
	block := encodeChunk([]ts.Time{10, 20}, []float64{1, 2})
	// varint(d1) sits right after uvarint(n)=1 byte and varint(t0)=1 byte;
	// overwrite delta 10 (varint 0x14) with -10 (varint 0x13).
	block[2] = 0x13
	if _, _, err := decodeChunk(block); err == nil {
		t.Fatal("non-increasing timestamps accepted")
	}
}

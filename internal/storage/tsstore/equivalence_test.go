package tsstore

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"hygraph/internal/ts"
)

// Property: a compressed store and a compressed+tiered store are
// observationally identical to a raw store under any interleaving of
// inserts, upserts, NaN writes, deletes and out-of-order writes — for
// Range, Aggregate (pushdown and edge paths), Downsample, and across a
// Save/Load round trip. This is the invariant the Q1-Q8 differential
// battery then re-proves end-to-end through ttdb.
func TestCompressedTieredObservationalEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))

			raw := NewSharded(100, 3)
			raw.SetCompress(false)
			comp := NewSharded(100, 3)
			tiered := NewSharded(100, 3)
			if err := tiered.EnableColdTier(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			stores := []*DB{raw, comp, tiered}

			metrics := []string{"a", "b"}
			keyOf := func() SeriesKey {
				return SeriesKey{Entity: uint32(1 + rng.Intn(3)), Metric: metrics[rng.Intn(len(metrics))]}
			}
			var clock ts.Time
			for op := 0; op < 400; op++ {
				switch r := rng.Float64(); {
				case r < 0.70: // in-order insert (advancing clock)
					clock += ts.Time(1 + rng.Intn(40))
					key, v := keyOf(), float64(rng.Intn(100))
					if rng.Intn(50) == 0 {
						v = math.NaN()
					}
					for _, db := range stores {
						db.Insert(key, clock, v)
					}
				case r < 0.85: // out-of-order or upsert into the past
					back := ts.Time(rng.Int63n(int64(clock + 1)))
					key, v := keyOf(), float64(rng.Intn(100))
					for _, db := range stores {
						db.Insert(key, back, v)
					}
				case r < 0.92: // delete
					key := keyOf()
					var got []bool
					for _, db := range stores {
						got = append(got, db.DeleteSeries(key))
					}
					if got[0] != got[1] || got[1] != got[2] {
						t.Fatalf("op %d: DeleteSeries(%v) disagreement %v", op, key, got)
					}
				default: // compaction pass on the tiered store only
					if _, err := tiered.Spill(); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(2) == 0 {
						tiered.DropBlockCache()
					}
				}
			}
			if _, err := tiered.Spill(); err != nil {
				t.Fatal(err)
			}

			assertEquivalent(t, "live", stores, metrics, clock)

			// Save/Load round trip: each store's snapshot must load into an
			// observationally identical store (tiered snapshots are
			// self-contained — no cold tier attached to the loaded copy).
			reloaded := make([]*DB, len(stores))
			for i, db := range stores {
				var buf bytes.Buffer
				if err := db.Save(&buf); err != nil {
					t.Fatalf("store %d save: %v", i, err)
				}
				got, err := Load(&buf)
				if err != nil {
					t.Fatalf("store %d load: %v", i, err)
				}
				reloaded[i] = got
			}
			assertEquivalent(t, "reloaded", reloaded, metrics, clock)

			for i, db := range stores {
				if err := db.Err(); err != nil {
					t.Fatalf("store %d degraded: %v", i, err)
				}
			}
		})
	}
}

// assertEquivalent compares every observable query across the stores,
// treating store 0 as reference. NaN == NaN for this comparison (bitwise
// result equality is the contract the differential battery enforces).
func assertEquivalent(t *testing.T, phase string, stores []*DB, metrics []string, horizon ts.Time) {
	t.Helper()
	ref := observe(stores[0], metrics, horizon)
	for i := 1; i < len(stores); i++ {
		got := observe(stores[i], metrics, horizon)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s: store %d diverges from raw reference\nraw: %v\ngot: %v", phase, i, ref, got)
		}
	}
}

// observe runs the full query surface and flattens results into a
// comparable value. NaNs are canonicalized via Float64bits formatting.
func observe(db *DB, metrics []string, horizon ts.Time) []string {
	var out []string
	f := func(v float64) string { return fmt.Sprintf("%x", math.Float64bits(v)) }
	out = append(out, fmt.Sprintf("series=%d", db.NumSeries()))
	for _, m := range metrics {
		for _, e := range db.EntitiesOf(m) {
			key := SeriesKey{Entity: e, Metric: m}
			out = append(out, fmt.Sprintf("key=%v", key))
			for _, p := range db.Range(key, 0, horizon+1) {
				out = append(out, fmt.Sprintf("p %d %s", p.T, f(p.V)))
			}
			for _, win := range [][2]ts.Time{{0, horizon + 1}, {horizon / 3, 2 * horizon / 3}, {100, 101}} {
				s := db.Aggregate(key, win[0], win[1])
				out = append(out, fmt.Sprintf("agg %d %s %s %s", s.Count, f(s.Sum), f(s.Min), f(s.Max)))
			}
			ds := db.Downsample(key, 0, horizon+1, 250, ts.AggMean)
			for i := 0; i < ds.Len(); i++ {
				out = append(out, fmt.Sprintf("ds %d %s", ds.TimeAt(i), f(ds.ValueAt(i))))
			}
		}
		all := db.AggregateAll(m, 0, horizon+1)
		ents := make([]uint32, 0, len(all))
		for e := range all {
			ents = append(ents, e)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })
		for _, e := range ents {
			s := all[e]
			out = append(out, fmt.Sprintf("all %s %d %d %s %s %s", m, e, s.Count, f(s.Sum), f(s.Min), f(s.Max)))
		}
	}
	return out
}

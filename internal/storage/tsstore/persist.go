package tsstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hygraph/internal/ts"
)

// Binary snapshot format mirroring graphstore's: magic, version, chunk
// width, then per-series key and chunk payloads. Version 2 adds a form byte
// per chunk so sealed chunks are persisted as their compressed blocks
// (summary included — Load must not pay a decode per chunk); open chunks
// keep the v1 raw layout (delta-encoded timestamps, raw float64 bits).
// Version 1 snapshots still load (docs/STORAGE.md).

const (
	snapshotMagic   = "HYTS"
	snapshotVersion = 2

	chunkFormRaw        = 0 // uvarint nPts, delta times, raw float64 bits
	chunkFormCompressed = 1 // uvarint n, sum/min/max bits, uvarint len, block
)

// Sanity caps for decoded length fields: a snapshot claiming more is
// corrupt, not big. They bound single allocations so a flipped length byte
// cannot turn one ReadUvarint into an exabyte-sized make before any record
// data is read.
const (
	maxSnapMetricLen = 1 << 16 // bytes in one metric name
	maxSnapChunkPts  = 1 << 24 // points in one raw chunk
	maxSnapBlockLen  = 1 << 26 // bytes in one compressed block
)

// Save writes a binary snapshot of the store. Keys are emitted in merged
// first-insertion order (one short read lock per shard while walking each
// key's series), so the on-disk layout is byte-identical regardless of the
// shard count and Load reproduces the same iteration order. Spilled chunks
// are read back from the spill file so the snapshot is self-contained —
// recovery never needs the cold tier.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeUvarint(bw, snapshotVersion)
	writeUvarint(bw, uint64(db.chunkWidth))
	ordered := db.orderedKeys()
	writeUvarint(bw, uint64(len(ordered)))
	for _, sk := range ordered {
		key := sk.key
		writeUvarint(bw, uint64(key.Entity))
		writeUvarint(bw, uint64(len(key.Metric)))
		bw.WriteString(key.Metric) //hyvet:allow walerrlatch bufio.Writer latches its first error; the checked Flush at the end reports it
		if err := db.saveSeries(bw, key); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// saveSeries writes one series' chunk payloads under its shard's read lock.
// The only error it can surface itself is a failed spill read-back; bufio
// write errors latch and come out of Save's Flush.
func (db *DB) saveSeries(bw *bufio.Writer, key SeriesKey) error {
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.data[key]
	if s == nil {
		// Deleted since the key snapshot: persist as an empty series. Load
		// skips zero-chunk keys, so the delete survives the round trip.
		writeUvarint(bw, 0)
		return nil
	}
	writeUvarint(bw, uint64(len(s.chunks)))
	for _, c := range s.chunks {
		writeVarint(bw, c.slot)
		if c.sealed() {
			block, err := sh.blockBytes(db, c)
			if err != nil {
				db.deg.set(err)
				return fmt.Errorf("tsstore: save %v slot %d: %w", key, c.slot, err)
			}
			bw.WriteByte(chunkFormCompressed) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
			writeUvarint(bw, uint64(c.n))
			writeFloatBits(bw, c.sum)
			writeFloatBits(bw, c.minV)
			writeFloatBits(bw, c.maxV)
			writeUvarint(bw, uint64(len(block)))
			bw.Write(block) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
			continue
		}
		bw.WriteByte(chunkFormRaw) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
		writeUvarint(bw, uint64(len(c.times)))
		prev := ts.Time(0)
		for i, t := range c.times {
			if i == 0 {
				writeVarint(bw, int64(t))
			} else {
				writeVarint(bw, int64(t-prev))
			}
			prev = t
		}
		for _, v := range c.vals {
			writeFloatBits(bw, v)
		}
	}
	return nil
}

// Load reads a snapshot written by Save (version 1 or 2). Raw-chunk
// summaries are recomputed on load; compressed chunks carry theirs in the
// file. Keys persisted with zero chunks are series deleted mid-Save — they
// are skipped, not materialized, so HasSeries agrees with the pre-crash
// store (crash recovery keys its roll-forward decision on it).
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tsstore: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("tsstore: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != 1 && version != snapshotVersion {
		return nil, fmt.Errorf("tsstore: unsupported snapshot version %d", version)
	}
	width, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db := New(ts.Time(width))
	nKeys, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < nKeys; k++ {
		entity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		mlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if mlen > maxSnapMetricLen {
			return nil, fmt.Errorf("tsstore: corrupt snapshot: metric name of %d bytes exceeds cap %d", mlen, maxSnapMetricLen)
		}
		mbuf := make([]byte, mlen)
		if _, err := io.ReadFull(br, mbuf); err != nil {
			return nil, err
		}
		key := SeriesKey{Entity: uint32(entity), Metric: string(mbuf)}
		nChunks, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nChunks == 0 {
			continue // deleted mid-Save; do not resurrect
		}
		s := &series{}
		for ci := uint64(0); ci < nChunks; ci++ {
			c, err := loadChunk(br, version)
			if err != nil {
				return nil, err
			}
			s.chunks = append(s.chunks, c)
		}
		// Load runs before the store is shared; keys get ascending sequence
		// numbers in file order, reproducing the saved iteration order.
		sh := db.shard(key)
		sh.data[key] = s
		sh.keys = append(sh.keys, key)
		sh.seqs = append(sh.seqs, db.seq.Add(1))
	}
	return db, nil
}

// loadChunk reads one chunk payload. Version 1 has no form byte — every
// chunk is raw.
func loadChunk(br *bufio.Reader, version uint64) (*chunk, error) {
	slot, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	form := byte(chunkFormRaw)
	if version >= 2 {
		form, err = br.ReadByte()
		if err != nil {
			return nil, err
		}
	}
	switch form {
	case chunkFormRaw:
		nPts, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nPts > maxSnapChunkPts {
			return nil, fmt.Errorf("tsstore: corrupt snapshot: %d points in one chunk exceeds cap %d", nPts, maxSnapChunkPts)
		}
		c := &chunk{slot: slot, times: make([]ts.Time, nPts), vals: make([]float64, nPts)}
		prev := int64(0)
		for i := uint64(0); i < nPts; i++ {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				prev = d
			} else {
				prev += d
			}
			c.times[i] = ts.Time(prev)
		}
		for i := uint64(0); i < nPts; i++ {
			v, err := readFloatBits(br)
			if err != nil {
				return nil, err
			}
			c.vals[i] = v
		}
		c.recomputeSummary()
		return c, nil
	case chunkFormCompressed:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		c := &chunk{slot: slot, n: int(n)}
		if c.sum, err = readFloatBits(br); err != nil {
			return nil, err
		}
		if c.minV, err = readFloatBits(br); err != nil {
			return nil, err
		}
		if c.maxV, err = readFloatBits(br); err != nil {
			return nil, err
		}
		blen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if blen > maxSnapBlockLen {
			return nil, fmt.Errorf("tsstore: corrupt snapshot: compressed block of %d bytes exceeds cap %d", blen, maxSnapBlockLen)
		}
		c.enc = make([]byte, blen)
		if _, err := io.ReadFull(br, c.enc); err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("tsstore: unknown chunk form %d", form)
	}
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

func writeFloatBits(w *bufio.Writer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.Write(buf[:]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

func readFloatBits(br *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

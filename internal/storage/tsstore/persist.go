package tsstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hygraph/internal/ts"
)

// Binary snapshot format mirroring graphstore's: magic, version, chunk
// width, then per-series key and chunk payloads. Timestamps are
// delta-encoded within a chunk; values are raw float64 bits.

const (
	snapshotMagic   = "HYTS"
	snapshotVersion = 1
)

// Save writes a binary snapshot of the store. Keys are emitted in merged
// first-insertion order (one short read lock per shard while walking each
// key's series), so the on-disk layout is byte-identical regardless of the
// shard count and Load reproduces the same iteration order.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeUvarint(bw, snapshotVersion)
	writeUvarint(bw, uint64(db.chunkWidth))
	ordered := db.orderedKeys()
	writeUvarint(bw, uint64(len(ordered)))
	for _, sk := range ordered {
		key := sk.key
		writeUvarint(bw, uint64(key.Entity))
		writeUvarint(bw, uint64(len(key.Metric)))
		bw.WriteString(key.Metric) //hyvet:allow walerrlatch bufio.Writer latches its first error; the checked Flush at the end reports it
		db.saveSeries(bw, key)
	}
	return bw.Flush()
}

// saveSeries writes one series' chunk payloads under its shard's read lock.
func (db *DB) saveSeries(bw *bufio.Writer, key SeriesKey) {
	sh := db.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.data[key]
	if s == nil { // deleted since the key snapshot: persist as empty
		writeUvarint(bw, 0)
		return
	}
	writeUvarint(bw, uint64(len(s.chunks)))
	for _, c := range s.chunks {
		writeVarint(bw, c.slot)
		writeUvarint(bw, uint64(len(c.times)))
		prev := ts.Time(0)
		for i, t := range c.times {
			if i == 0 {
				writeVarint(bw, int64(t))
			} else {
				writeVarint(bw, int64(t-prev))
			}
			prev = t
		}
		for _, v := range c.vals {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			bw.Write(buf[:]) //hyvet:allow walerrlatch bufio.Writer latches its first error; the checked Flush at the end reports it
		}
	}
}

// Load reads a snapshot written by Save. Chunk summaries are recomputed on
// load so the on-disk format stays minimal.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tsstore: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("tsstore: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("tsstore: unsupported snapshot version %d", version)
	}
	width, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	db := New(ts.Time(width))
	nKeys, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < nKeys; k++ {
		entity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		mlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		mbuf := make([]byte, mlen)
		if _, err := io.ReadFull(br, mbuf); err != nil {
			return nil, err
		}
		key := SeriesKey{Entity: uint32(entity), Metric: string(mbuf)}
		s := &series{}
		// Load runs before the store is shared; keys get ascending sequence
		// numbers in file order, reproducing the saved iteration order.
		sh := db.shard(key)
		sh.data[key] = s
		sh.keys = append(sh.keys, key)
		sh.seqs = append(sh.seqs, db.seq.Add(1))
		nChunks, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for ci := uint64(0); ci < nChunks; ci++ {
			slot, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			nPts, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			c := &chunk{slot: slot, times: make([]ts.Time, nPts), vals: make([]float64, nPts)}
			prev := int64(0)
			for i := uint64(0); i < nPts; i++ {
				d, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					prev = d
				} else {
					prev += d
				}
				c.times[i] = ts.Time(prev)
			}
			var buf [8]byte
			for i := uint64(0); i < nPts; i++ {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return nil, err
				}
				c.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
			// Recompute the summary.
			c.minV, c.maxV = math.Inf(1), math.Inf(-1)
			for _, v := range c.vals {
				c.sum += v
				if v < c.minV {
					c.minV = v
				}
				if v > c.maxV {
					c.maxV = v
				}
			}
			s.chunks = append(s.chunks, c)
		}
	}
	return db, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //hyvet:allow walerrlatch bufio.Writer latches its first error; Save's checked Flush reports it
}

package tsstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hygraph/internal/faults"
	"hygraph/internal/storage/walrec"
	"hygraph/internal/ts"
)

// Fault points consulted by the time-series WAL (see internal/faults).
const (
	// FaultWALAppend fires before a record is applied or buffered, so
	// transient injections leave both store and log untouched and are
	// safely retryable.
	FaultWALAppend = "tsstore.wal.append"
	// FaultWALFlush fires before buffered records reach the underlying
	// writer.
	FaultWALFlush = "tsstore.wal.flush"
)

// WAL is a write-ahead-logged view of the time-series store. The paper's
// polyglot architecture delegates series storage to a TimescaleDB-style
// store, which in production is durable; the reproduction previously had no
// log at all, so any crash silently lost every point. Records are framed
// with length + CRC32C (internal/storage/walrec): replay truncates torn
// tails and detects corruption, mirroring the graph-store WAL.
//
// Appends run through a group-commit writer: each mutation enqueues its
// framed record (no I/O, safe from many goroutines) and Flush coalesces
// everything pending into one buffered write + flush. A single writer sees
// exactly the old per-commit behaviour; concurrent writers share flushes.
type WAL struct {
	db *DB
	gw *walrec.GroupWriter

	obs walObs // metric handles; zero value = instrumentation off
}

// Log record opcodes.
const (
	opInsert byte = iota + 1
	opInsertBatch
	opDeleteSeries
)

// NewWAL wraps a store with a log appended to w. The store should be empty
// or match the snapshot the log continues from.
func NewWAL(db *DB, w io.Writer) *WAL {
	l := &WAL{db: db, gw: walrec.NewGroup(walrec.NewWriter(w))}
	// The flush fault point and flush counter move into the group writer's
	// hooks so they fire once per physical flush — exactly once per Flush
	// call for a single writer, once per coalesced batch under load.
	l.gw.SetHooks(
		func() error { return faults.Check(FaultWALFlush) },
		func(int) { l.obs.flushes.Inc() },
	)
	return l
}

// SetMaxBatch bounds group-commit batches; 1 restores per-record flushing
// (the single-lock baseline of the mixed-throughput benchmark). Call before
// the WAL is shared.
func (l *WAL) SetMaxBatch(n int) { l.gw.SetMaxBatch(n) }

// DB exposes the underlying store for reads.
func (l *WAL) DB() *DB { return l.db }

// Err returns the WAL's latched write error, if any.
func (l *WAL) Err() error { return l.gw.Err() }

// Flush makes every record enqueued so far durable: the caller either leads
// one coalesced write+flush of the batch window or rides a flush already in
// flight.
func (l *WAL) Flush() error { return l.gw.Sync() }

// Commit makes every record enqueued so far durable without forcing a
// physical flush of its own: a committer whose records another leader
// already covered returns immediately. The streaming-ingest path uses this
// instead of Flush so concurrent writers coalesce into shared flushes.
func (l *WAL) Commit() error { return l.gw.Commit(l.gw.Enqueued()) }

func appendKey(buf []byte, op byte, key SeriesKey) []byte {
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(key.Entity))
	buf = binary.AppendUvarint(buf, uint64(len(key.Metric)))
	buf = append(buf, key.Metric...)
	return buf
}

func (l *WAL) commit(payload []byte) error {
	if err := faults.Check(FaultWALAppend); err != nil {
		return err
	}
	if _, err := l.gw.Append(payload); err != nil {
		return err
	}
	l.obs.appends.Inc()
	l.obs.bytes.Add(int64(len(payload)))
	return nil
}

// Insert logs and applies one point. Upserts on duplicate timestamps, so
// replaying or retrying the same insert is idempotent.
func (l *WAL) Insert(key SeriesKey, t ts.Time, v float64) error {
	buf := appendKey(nil, opInsert, key)
	buf = binary.AppendVarint(buf, int64(t))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	if err := l.commit(buf); err != nil {
		return err
	}
	l.db.Insert(key, t, v)
	return nil
}

// InsertSeries logs and applies a whole series as one batch record:
// delta-encoded timestamps followed by raw float64 bits. One record per
// series keeps the ingest atomic at the record level — a torn tail drops
// the whole batch, never half of it.
func (l *WAL) InsertSeries(key SeriesKey, src *ts.Series) error {
	buf := appendKey(nil, opInsertBatch, key)
	n := src.Len()
	buf = binary.AppendUvarint(buf, uint64(n))
	prev := ts.Time(0)
	for i := 0; i < n; i++ {
		t := src.TimeAt(i)
		buf = binary.AppendVarint(buf, int64(t-prev))
		prev = t
	}
	for i := 0; i < n; i++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(src.ValueAt(i)))
	}
	if err := l.commit(buf); err != nil {
		return err
	}
	l.db.InsertSeries(key, src)
	return nil
}

// DeleteSeries logs and applies removal of a whole series (the rollback
// primitive of the cross-store ingest protocol).
func (l *WAL) DeleteSeries(key SeriesKey) error {
	if err := l.commit(appendKey(nil, opDeleteSeries, key)); err != nil {
		return err
	}
	l.db.DeleteSeries(key)
	return nil
}

// RecoverySummary reports what a replay recovered.
type RecoverySummary struct {
	walrec.Summary
	Applied int // operations applied
	Points  int // points inserted
}

// Replay applies a log produced by WAL onto db. It truncates a torn or
// checksum-corrupt tail (losing at most the final record) and errors on
// mid-log corruption. It returns the number of operations applied.
func Replay(db *DB, r io.Reader) (int, error) {
	sum, err := ReplayWithSummary(db, r)
	return sum.Applied, err
}

// ReplayWithSummary is Replay with the full recovery report.
func ReplayWithSummary(db *DB, r io.Reader) (RecoverySummary, error) {
	sc := walrec.NewScanner(r)
	var sum RecoverySummary
	for {
		payload, err := sc.Next()
		if err == io.EOF {
			sum.Summary = sc.Summary()
			return sum, nil
		}
		if err != nil {
			sum.Summary = sc.Summary()
			return sum, err
		}
		pts, err := applyTSRecord(db, payload)
		if err != nil {
			sum.Summary = sc.Summary()
			return sum, err
		}
		sum.Applied++
		sum.Points += pts
	}
}

func applyTSRecord(db *DB, payload []byte) (int, error) {
	br := bytes.NewReader(payload)
	op, err := br.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("tsstore: empty WAL record")
	}
	entity, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	mlen, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if mlen > uint64(br.Len()) {
		return 0, fmt.Errorf("tsstore: corrupt WAL metric length %d", mlen)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(br, mbuf); err != nil {
		return 0, err
	}
	key := SeriesKey{Entity: uint32(entity), Metric: string(mbuf)}
	switch op {
	case opInsert:
		t, err := binary.ReadVarint(br)
		if err != nil {
			return 0, err
		}
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		db.Insert(key, ts.Time(t), math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		return 1, nil
	case opInsertBatch:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		// Each point needs >= 9 payload bytes (1+ delta byte, 8 value).
		if n > uint64(br.Len()) {
			return 0, fmt.Errorf("tsstore: corrupt WAL batch count %d", n)
		}
		times := make([]ts.Time, n)
		prev := int64(0)
		for i := range times {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return 0, err
			}
			prev += d
			times[i] = ts.Time(prev)
		}
		var buf [8]byte
		for i := range times {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return 0, err
			}
			db.Insert(key, times[i], math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		}
		return int(n), nil
	case opDeleteSeries:
		db.DeleteSeries(key)
		return 0, nil
	}
	return 0, fmt.Errorf("tsstore: corrupt WAL opcode %d", op)
}

// Recover rebuilds a store from an optional snapshot plus an optional WAL.
// Either reader may be nil. chunkWidth is used only when there is no
// snapshot (a snapshot carries its own width).
func Recover(snapshot, log io.Reader, chunkWidth ts.Time) (*DB, RecoverySummary, error) {
	db := New(chunkWidth)
	if snapshot != nil {
		var err error
		if db, err = Load(snapshot); err != nil {
			return nil, RecoverySummary{}, fmt.Errorf("tsstore: snapshot: %w", err)
		}
	}
	var sum RecoverySummary
	if log != nil {
		var err error
		if sum, err = ReplayWithSummary(db, log); err != nil {
			return db, sum, fmt.Errorf("tsstore: log: %w", err)
		}
	}
	return db, sum, nil
}

package tsstore

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"hygraph/internal/faults"
	"hygraph/internal/ts"
)

func sampleSeries(n int, base float64) *ts.Series {
	s := ts.New("availability")
	for i := 0; i < n; i++ {
		s.MustAppend(ts.Time(i)*ts.Hour, base+math.Sin(float64(i)/5))
	}
	return s
}

func TestTSWALReplayReconstructs(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(ts.Day), &log)
	k1 := SeriesKey{Entity: 1, Metric: "availability"}
	k2 := SeriesKey{Entity: 2, Metric: "availability"}
	if err := wal.InsertSeries(k1, sampleSeries(24*10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := wal.InsertSeries(k2, sampleSeries(24*10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := wal.Insert(k1, 5*ts.Hour, 99); err != nil { // upsert one point
		t.Fatal(err)
	}
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}

	rebuilt := New(ts.Day)
	sum, err := ReplayWithSummary(rebuilt, bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Applied != 3 || sum.Points != 2*24*10+1 {
		t.Fatalf("sum=%+v", sum)
	}
	orig := wal.DB()
	for _, k := range []SeriesKey{k1, k2} {
		a := orig.Range(k, 0, 1000*ts.Hour)
		b := rebuilt.Range(k, 0, 1000*ts.Hour)
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("series %v: %d vs %d points", k, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("series %v point %d: %v vs %v", k, i, a[i], b[i])
			}
		}
	}
	if pts := rebuilt.Range(k1, 5*ts.Hour, 6*ts.Hour); len(pts) != 1 || pts[0].V != 99 {
		t.Fatalf("upsert lost: %v", pts)
	}
}

func TestTSWALDeleteSeries(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(0), &log)
	k := SeriesKey{Entity: 7, Metric: "availability"}
	wal.InsertSeries(k, sampleSeries(48, 5))
	if err := wal.DeleteSeries(k); err != nil {
		t.Fatal(err)
	}
	wal.Flush()
	if wal.DB().NumSeries() != 0 {
		t.Fatal("live delete did not apply")
	}
	rebuilt := New(0)
	if _, err := Replay(rebuilt, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumSeries() != 0 || len(rebuilt.Keys()) != 0 {
		t.Fatalf("replayed delete left %d series", rebuilt.NumSeries())
	}
	// Idempotent on absent keys.
	if rebuilt.DeleteSeries(k) {
		t.Fatal("deleting absent series reported true")
	}
}

// Torn tails lose at most the final record: truncate the log at every byte
// offset of the last batch record and recover.
func TestTSWALTornTailAtEveryOffset(t *testing.T) {
	k1 := SeriesKey{Entity: 1, Metric: "m"}
	k2 := SeriesKey{Entity: 2, Metric: "m"}
	writeLog := func(withLast bool) []byte {
		var log bytes.Buffer
		wal := NewWAL(New(ts.Day), &log)
		wal.InsertSeries(k1, sampleSeries(24, 1))
		if withLast {
			wal.InsertSeries(k2, sampleSeries(24, 2))
		}
		wal.Flush()
		return log.Bytes()
	}
	full := writeLog(true)
	prefix := writeLog(false)
	for cut := len(prefix); cut < len(full); cut += 7 { // stride keeps runtime sane
		rebuilt := New(ts.Day)
		sum, err := ReplayWithSummary(rebuilt, bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if sum.Applied != 1 || rebuilt.NumSeries() != 1 {
			t.Fatalf("cut %d: applied=%d series=%d", cut, sum.Applied, rebuilt.NumSeries())
		}
	}
}

func TestTSWALMidLogCorruption(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(0), &log)
	wal.InsertSeries(SeriesKey{Entity: 1, Metric: "m"}, sampleSeries(24, 1))
	wal.InsertSeries(SeriesKey{Entity: 2, Metric: "m"}, sampleSeries(24, 2))
	wal.Flush()
	raw := append([]byte(nil), log.Bytes()...)
	raw[8] ^= 0x20
	if _, err := Replay(New(0), bytes.NewReader(raw)); err == nil {
		t.Fatal("mid-log corruption replayed cleanly")
	}
}

func TestTSRecoverSnapshotPlusLog(t *testing.T) {
	base := New(ts.Day)
	k1 := SeriesKey{Entity: 1, Metric: "m"}
	k2 := SeriesKey{Entity: 2, Metric: "m"}
	base.InsertSeries(k1, sampleSeries(48, 3))
	var snap bytes.Buffer
	if err := base.Save(&snap); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	wal := NewWAL(base, &log)
	wal.InsertSeries(k2, sampleSeries(48, 4))
	wal.Flush()

	rec, sum, err := Recover(bytes.NewReader(snap.Bytes()), bytes.NewReader(log.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumSeries() != 2 || sum.Points != 48 {
		t.Fatalf("series=%d sum=%+v", rec.NumSeries(), sum)
	}
	a := base.Aggregate(k2, 0, 100*ts.Hour)
	b := rec.Aggregate(k2, 0, 100*ts.Hour)
	if a != b {
		t.Fatalf("aggregate mismatch: %+v vs %+v", a, b)
	}
}

func TestTSWALFuzzNeverPanics(t *testing.T) {
	inputs := [][]byte{
		{}, {1}, {0x05, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		bytes.Repeat([]byte{0xff}, 32), {0x02, 0, 0, 0, 0, 0x01, 0x01},
	}
	for _, in := range inputs {
		_, _ = Replay(New(0), bytes.NewReader(in))
	}
}

// errWriter fails after n bytes — the same harness graphstore uses to prove
// its WAL latches write errors.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

// The TS WAL must latch write errors exactly like the graph WAL: once the
// underlying writer fails, every later mutation is refused rather than
// silently diverging the store from the log.
func TestTSWALWriteErrorFailsFast(t *testing.T) {
	wal := NewWAL(New(0), &errWriter{n: 4})
	k := SeriesKey{Entity: 1, Metric: "availability"}
	// Appends buffer 4096 bytes, so force the failure through Flush.
	for i := 0; i < 600; i++ {
		wal.Insert(k, ts.Time(i)*ts.Hour, float64(i))
	}
	if err := wal.Flush(); err == nil {
		t.Fatal("flush on failing writer succeeded")
	}
	if wal.Err() == nil {
		t.Fatal("write error not latched")
	}
	if err := wal.Insert(k, 0, 1); err == nil {
		t.Fatal("insert after write error accepted")
	}
	if err := wal.InsertSeries(k, sampleSeries(4, 1)); err == nil {
		t.Fatal("batch insert after write error accepted")
	}
	if err := wal.DeleteSeries(k); err == nil {
		t.Fatal("delete after write error accepted")
	}
	if err := wal.Flush(); err == nil {
		t.Fatal("second flush did not report the latched error")
	}
}

// Bit rot on the final record truncates it, keeping everything before — the
// same contract TestWALCorruptTailDropped pins on the graph side.
func TestTSWALCorruptTailDropped(t *testing.T) {
	var log bytes.Buffer
	wal := NewWAL(New(0), &log)
	k := SeriesKey{Entity: 3, Metric: "availability"}
	wal.InsertSeries(k, sampleSeries(24, 7))
	wal.Insert(k, 999*ts.Hour, 42)
	wal.Flush()
	raw := append([]byte(nil), log.Bytes()...)
	raw[len(raw)-1] ^= 0x10 // bit rot on the final record
	rebuilt := New(0)
	sum, err := ReplayWithSummary(rebuilt, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("corrupt tail should truncate: %v", err)
	}
	if sum.Applied != 1 || !sum.CorruptTail || sum.Points != 24 {
		t.Fatalf("sum=%+v", sum)
	}
	if pts := rebuilt.Range(k, 999*ts.Hour, 1000*ts.Hour); len(pts) != 0 {
		t.Fatalf("corrupt final record partially applied: %v", pts)
	}
}

// Crash-matrix over the TS WAL fault points: an injected failure at append
// or flush must leave store and log consistent (the record is in neither),
// and clearing the fault must leave the WAL fully usable — injections are
// rejections, not latched errors.
func TestTSWALFaultMatrix(t *testing.T) {
	defer faults.Reset()
	k := SeriesKey{Entity: 9, Metric: "availability"}
	for _, pt := range []string{FaultWALAppend, FaultWALFlush} {
		faults.Reset()
		var log bytes.Buffer
		wal := NewWAL(New(0), &log)
		if err := wal.InsertSeries(k, sampleSeries(24, 1)); err != nil {
			t.Fatalf("%s: pre-fault insert: %v", pt, err)
		}
		if err := wal.Flush(); err != nil {
			t.Fatalf("%s: pre-fault flush: %v", pt, err)
		}
		preLog := log.Len()
		prePts := len(wal.DB().Range(k, 0, 1000*ts.Hour))

		faults.Enable(pt, faults.Spec{Err: errors.New("injected")})
		insErr := wal.Insert(k, 2000*ts.Hour, 5)
		flushErr := wal.Flush()
		if insErr == nil && flushErr == nil {
			t.Fatalf("%s: fault did not surface", pt)
		}
		if faults.Hits(pt) == 0 {
			t.Fatalf("%s: fault point never fired", pt)
		}
		faults.Reset() // the "reboot"

		if pt == FaultWALAppend {
			// The record must have reached neither the store nor the log.
			if got := len(wal.DB().Range(k, 0, 10000*ts.Hour)); got != prePts {
				t.Fatalf("%s: store advanced across failed append: %d vs %d", pt, got, prePts)
			}
			if err := wal.Flush(); err != nil {
				t.Fatalf("%s: flush after cleared fault: %v", pt, err)
			}
			if log.Len() != preLog {
				t.Fatalf("%s: failed append still reached the log", pt)
			}
		}
		// The WAL stays usable after the injection clears.
		if err := wal.Insert(k, 3000*ts.Hour, 6); err != nil {
			t.Fatalf("%s: insert after cleared fault: %v", pt, err)
		}
		if err := wal.Flush(); err != nil {
			t.Fatalf("%s: final flush: %v", pt, err)
		}
		rebuilt := New(0)
		if _, err := Replay(rebuilt, bytes.NewReader(log.Bytes())); err != nil {
			t.Fatalf("%s: replay after faults: %v", pt, err)
		}
		livePts := wal.DB().Range(k, 0, 10000*ts.Hour)
		recPts := rebuilt.Range(k, 0, 10000*ts.Hour)
		if len(livePts) != len(recPts) {
			t.Fatalf("%s: store/log diverged: %d live vs %d replayed", pt, len(livePts), len(recPts))
		}
	}
}

package tsstore

import (
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/obs"
	"hygraph/internal/ts"
)

// TestResampleCachePropertyRandomInterleavings drives the memoized
// correlation path with random interleavings of appends and
// CorrelateResampled calls, checking two properties after every query:
//
//  1. Correctness under invalidation: the (possibly cached) answer equals
//     the answer from a fresh store built from the same points — a cache
//     that survives a write it should have invalidated fails here.
//  2. Accounting: the obs cache hit/miss counters mirror the store's own
//     atomics exactly, and their sum equals total lookups (two per
//     correlation, one per side).
func TestResampleCachePropertyRandomInterleavings(t *testing.T) {
	keys := []SeriesKey{
		{Entity: 1, Metric: "avail"},
		{Entity: 2, Metric: "avail"},
	}
	windows := []struct{ start, end, bucket ts.Time }{
		{0, 200 * ts.Minute, 10 * ts.Minute},
		{50 * ts.Minute, 150 * ts.Minute, 5 * ts.Minute},
		{0, 400 * ts.Minute, ts.Hour},
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		db := New(ts.Hour)
		reg := obs.New()
		db.Instrument(reg)
		// model holds the authoritative points per key (upsert semantics,
		// matching Insert).
		model := map[SeriesKey]map[ts.Time]float64{keys[0]: {}, keys[1]: {}}
		lookups := int64(0)

		oracle := func(w struct{ start, end, bucket ts.Time }) float64 {
			fresh := New(ts.Hour)
			for k, pts := range model {
				for pt, v := range pts {
					fresh.Insert(k, pt, v)
				}
			}
			return fresh.CorrelateResampled(keys[0], keys[1], w.start, w.end, w.bucket)
		}

		// Seed both series so early correlations have shared buckets.
		for i := 0; i < 40; i++ {
			for _, k := range keys {
				pt := ts.Time(rng.Intn(400)) * ts.Minute
				v := rng.Float64() * 100
				db.Insert(k, pt, v)
				model[k][pt] = v
			}
		}
		for op := 0; op < 120; op++ {
			switch rng.Intn(4) {
			case 0: // single append
				k := keys[rng.Intn(2)]
				pt := ts.Time(rng.Intn(400)) * ts.Minute
				v := rng.Float64() * 100
				db.Insert(k, pt, v)
				model[k][pt] = v
			case 1: // batch append
				k := keys[rng.Intn(2)]
				batch := ts.New("avail")
				base := ts.Time(rng.Intn(300)) * ts.Minute
				for i := 0; i < 5; i++ {
					pt := base + ts.Time(i)*ts.Minute
					v := rng.Float64() * 100
					batch.MustAppend(pt, v)
					model[k][pt] = v
				}
				db.InsertSeries(k, batch)
			default: // correlate, twice as likely as either write
				w := windows[rng.Intn(len(windows))]
				got := db.CorrelateResampled(keys[0], keys[1], w.start, w.end, w.bucket)
				want := oracle(w)
				lookups += 2
				if !(math.IsNaN(got) && math.IsNaN(want)) && got != want {
					t.Fatalf("trial %d op %d: cached corr %v, oracle %v (window %+v)",
						trial, op, got, want, w)
				}
			}
		}

		stats := db.ResampleCacheStats()
		if stats.Hits+stats.Misses != lookups {
			t.Fatalf("trial %d: hits %d + misses %d != lookups %d",
				trial, stats.Hits, stats.Misses, lookups)
		}
		if stats.Hits == 0 || stats.Misses == 0 {
			t.Fatalf("trial %d: degenerate interleaving (hits %d, misses %d)",
				trial, stats.Hits, stats.Misses)
		}
		snap := reg.Snapshot()
		if snap.Counters["tsstore.cache.hits"] != stats.Hits ||
			snap.Counters["tsstore.cache.misses"] != stats.Misses {
			t.Fatalf("trial %d: obs counters (%d/%d) diverge from store atomics (%d/%d)",
				trial, snap.Counters["tsstore.cache.hits"], snap.Counters["tsstore.cache.misses"],
				stats.Hits, stats.Misses)
		}
		if snap.Counters["tsstore.cache.invalidations"] != stats.Invalidations {
			t.Fatalf("trial %d: obs invalidations %d != store %d",
				trial, snap.Counters["tsstore.cache.invalidations"], stats.Invalidations)
		}
	}
}

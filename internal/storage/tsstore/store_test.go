package tsstore

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/ts"
)

func k(e uint32) SeriesKey { return SeriesKey{Entity: e, Metric: "m"} }

func TestInsertAndRange(t *testing.T) {
	db := New(100)
	for i := 0; i < 1000; i++ {
		db.Insert(k(1), ts.Time(i), float64(i))
	}
	pts := db.Range(k(1), 250, 260)
	if len(pts) != 10 {
		t.Fatalf("range len=%d", len(pts))
	}
	for i, p := range pts {
		if p.T != ts.Time(250+i) || p.V != float64(250+i) {
			t.Fatalf("pts[%d]=%v", i, p)
		}
	}
	// Cross-chunk range.
	pts = db.Range(k(1), 95, 205)
	if len(pts) != 110 {
		t.Fatalf("cross-chunk len=%d", len(pts))
	}
	// Empty cases.
	if got := db.Range(k(2), 0, 10); got != nil {
		t.Fatal("missing series")
	}
	if got := db.Range(k(1), 10, 10); got != nil {
		t.Fatal("empty range")
	}
	if got := db.Range(k(1), 5000, 6000); got != nil {
		t.Fatal("beyond data")
	}
}

func TestUpsert(t *testing.T) {
	db := New(100)
	db.Insert(k(1), 50, 1)
	db.Insert(k(1), 50, 9) // replace
	pts := db.Range(k(1), 0, 100)
	if len(pts) != 1 || pts[0].V != 9 {
		t.Fatalf("after upsert: %v", pts)
	}
	s := db.Aggregate(k(1), 0, 100)
	if s.Count != 1 || s.Sum != 9 || s.Min != 9 || s.Max != 9 {
		t.Fatalf("summary after upsert: %+v", s)
	}
}

func TestOutOfOrderInsertWithinChunk(t *testing.T) {
	db := New(1000)
	for _, tt := range []ts.Time{50, 10, 30, 20, 40} {
		db.Insert(k(1), tt, float64(tt))
	}
	pts := db.Range(k(1), 0, 100)
	if len(pts) != 5 {
		t.Fatalf("len=%d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("not sorted: %v", pts)
		}
	}
}

func TestAggregatePushdownMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := New(ts.Day)
	ref := ts.New("ref")
	tt := ts.Time(0)
	for i := 0; i < 5000; i++ {
		tt += ts.Time(1+rng.Intn(60)) * ts.Minute
		v := rng.NormFloat64() * 10
		db.Insert(k(7), tt, v)
		ref.MustAppend(tt, v)
	}
	for trial := 0; trial < 50; trial++ {
		a := ts.Time(rng.Intn(int(tt)))
		b := a + ts.Time(rng.Intn(int(tt)))
		s := db.Aggregate(k(7), a, b)
		slice := ref.SliceView(a, b)
		if s.Count != slice.Len() {
			t.Fatalf("count %d vs %d for [%d,%d)", s.Count, slice.Len(), a, b)
		}
		if s.Count == 0 {
			if !math.IsNaN(s.Min) || !math.IsNaN(s.Max) {
				t.Fatalf("empty summary min/max: %+v", s)
			}
			continue
		}
		if math.Abs(s.Sum-slice.Sum()) > 1e-6 {
			t.Fatalf("sum %v vs %v", s.Sum, slice.Sum())
		}
		if s.Min != slice.Min() || s.Max != slice.Max() {
			t.Fatalf("minmax %v/%v vs %v/%v", s.Min, s.Max, slice.Min(), slice.Max())
		}
		if math.Abs(s.Mean()-slice.Mean()) > 1e-9 {
			t.Fatalf("mean %v vs %v", s.Mean(), slice.Mean())
		}
	}
}

func TestAggregateAllAndTopK(t *testing.T) {
	db := New(100)
	// Entity e has constant value e*10 over 100 points.
	for e := uint32(1); e <= 5; e++ {
		for i := 0; i < 100; i++ {
			db.Insert(SeriesKey{Entity: e, Metric: "m"}, ts.Time(i), float64(e*10))
		}
	}
	// Another metric must not leak in.
	db.Insert(SeriesKey{Entity: 9, Metric: "other"}, 0, 1e9)
	all := db.AggregateAll("m", 0, 100)
	if len(all) != 5 {
		t.Fatalf("aggregateAll=%d", len(all))
	}
	if all[3].Mean() != 30 {
		t.Fatalf("entity 3 mean=%v", all[3].Mean())
	}
	top := db.TopKByMean("m", 0, 100, 2)
	if len(top) != 2 || top[0] != 5 || top[1] != 4 {
		t.Fatalf("topk=%v", top)
	}
	if got := db.TopKByMean("m", 0, 100, 99); len(got) != 5 {
		t.Fatalf("topk clamp=%v", got)
	}
}

func TestRangeSeriesAndDownsample(t *testing.T) {
	db := New(ts.Day)
	src := ts.New("src")
	for i := 0; i < 48; i++ {
		src.MustAppend(ts.Time(i)*ts.Hour, float64(i))
	}
	db.InsertSeries(k(1), src)
	rs := db.RangeSeries(k(1), 0, 48*ts.Hour)
	if rs.Len() != 48 {
		t.Fatalf("rangeSeries len=%d", rs.Len())
	}
	ds := db.Downsample(k(1), 0, 48*ts.Hour, ts.Day, ts.AggMean)
	if ds.Len() != 2 {
		t.Fatalf("downsample len=%d", ds.Len())
	}
	if ds.ValueAt(0) != 11.5 || ds.ValueAt(1) != 35.5 {
		t.Fatalf("downsample=%v", ds.Points())
	}
}

func TestNegativeTimes(t *testing.T) {
	db := New(100)
	db.Insert(k(1), -150, 1)
	db.Insert(k(1), -50, 2)
	db.Insert(k(1), 50, 3)
	pts := db.Range(k(1), -200, 100)
	if len(pts) != 3 {
		t.Fatalf("negative range: %v", pts)
	}
	s := db.Aggregate(k(1), -200, 0)
	if s.Count != 2 || s.Sum != 3 {
		t.Fatalf("negative agg: %+v", s)
	}
}

func TestStatsAndKeys(t *testing.T) {
	db := New(10)
	for i := 0; i < 25; i++ {
		db.Insert(k(1), ts.Time(i), 0)
	}
	db.Insert(k(2), 0, 0)
	st := db.Stats()
	if st.Series != 2 || st.Points != 26 || st.Chunks != 4 {
		t.Fatalf("stats=%+v", st)
	}
	keys := db.Keys()
	if len(keys) != 2 || keys[0] != k(1) {
		t.Fatalf("keys=%v", keys)
	}
	if db.NumSeries() != 2 {
		t.Fatal("numSeries")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := New(ts.Day)
	tt := ts.Time(0)
	for e := uint32(0); e < 5; e++ {
		tt = ts.Time(int64(e)) * 1000
		for i := 0; i < 500; i++ {
			tt += ts.Time(1+rng.Intn(120)) * ts.Minute
			db.Insert(SeriesKey{Entity: e, Metric: "m"}, tt, rng.NormFloat64()*100)
		}
	}
	db.Insert(SeriesKey{Entity: 9, Metric: "other"}, -5000, 3.25)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSeries() != db.NumSeries() {
		t.Fatalf("series %d vs %d", back.NumSeries(), db.NumSeries())
	}
	if got, want := back.Stats(), db.Stats(); got != want {
		t.Fatalf("stats %+v vs %+v", got, want)
	}
	for _, key := range db.Keys() {
		a := db.Range(key, -1<<40, 1<<40)
		b := back.Range(key, -1<<40, 1<<40)
		if len(a) != len(b) {
			t.Fatalf("%v: %d vs %d points", key, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v point %d: %v vs %v", key, i, a[i], b[i])
			}
		}
		// Summaries recomputed correctly: aggregation answers agree.
		sa := db.Aggregate(key, -1<<40, 1<<40)
		sb := back.Aggregate(key, -1<<40, 1<<40)
		if sa.Count != sb.Count || math.Abs(sa.Sum-sb.Sum) > 1e-9 ||
			sa.Min != sb.Min || sa.Max != sb.Max {
			t.Fatalf("%v summaries: %+v vs %+v", key, sa, sb)
		}
	}
	// Key order preserved (affects deterministic scans).
	ka, kb := db.Keys(), back.Keys()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key order: %v vs %v", ka, kb)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestAggregateAllParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := New(ts.Day)
	for e := uint32(0); e < 40; e++ {
		tt := ts.Time(0)
		for i := 0; i < 300; i++ {
			tt += ts.Time(1+rng.Intn(60)) * ts.Minute
			db.Insert(SeriesKey{Entity: e, Metric: "m"}, tt, rng.NormFloat64())
		}
	}
	serial := db.AggregateAll("m", 0, 1<<40)
	for _, workers := range []int{1, 2, 8} {
		par := db.AggregateAllParallel("m", 0, 1<<40, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d vs %d entities", workers, len(par), len(serial))
		}
		for e, want := range serial {
			got := par[e]
			if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-9 ||
				got.Min != want.Min || got.Max != want.Max {
				t.Fatalf("workers=%d entity %d: %+v vs %+v", workers, e, got, want)
			}
		}
	}
}

package walrec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func scanAll(t *testing.T, buf *bytes.Buffer) [][]byte {
	t.Helper()
	sc := NewScanner(bytes.NewReader(buf.Bytes()))
	var out [][]byte
	for {
		p, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		cp := make([]byte, len(p))
		copy(cp, p)
		out = append(out, cp)
	}
}

// A single committer must see exactly the plain Writer's behaviour: every
// Sync is one physical flush covering everything appended since the last.
func TestGroupSingleWriter(t *testing.T) {
	var buf bytes.Buffer
	g := NewGroup(NewWriter(&buf))
	flushes, covered := 0, 0
	g.SetHooks(nil, func(n int) { flushes++; covered += n })

	for i := 0; i < 5; i++ {
		if _, err := g.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if flushes != 1 || covered != 5 {
		t.Fatalf("flushes=%d covered=%d, want 1/5", flushes, covered)
	}
	if _, err := g.Append([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if flushes != 2 || covered != 6 {
		t.Fatalf("flushes=%d covered=%d, want 2/6", flushes, covered)
	}
	recs := scanAll(t, &buf)
	if len(recs) != 6 {
		t.Fatalf("scanned %d records, want 6", len(recs))
	}
	for i, r := range recs {
		want := byte(i)
		if i == 5 {
			want = 9
		}
		if len(r) != 1 || r[0] != want {
			t.Fatalf("record %d = %v", i, r)
		}
	}
}

// An explicit Sync with nothing pending still performs a physical flush —
// the pre-group-commit Flush contract that fault injection relies on.
func TestGroupSyncAlwaysFlushesWhenLeading(t *testing.T) {
	var buf bytes.Buffer
	g := NewGroup(NewWriter(&buf))
	flushes := 0
	g.SetHooks(nil, func(int) { flushes++ })
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if flushes != 2 {
		t.Fatalf("empty Syncs flushed %d times, want 2", flushes)
	}
}

// MaxBatch(1) degrades to per-record flushing: the baseline mode of the
// mixed-throughput benchmark.
func TestGroupMaxBatchOne(t *testing.T) {
	var buf bytes.Buffer
	g := NewGroup(NewWriter(&buf))
	g.SetMaxBatch(1)
	flushes := 0
	g.SetHooks(nil, func(n int) {
		if n > 1 {
			t.Errorf("batch of %d under MaxBatch(1)", n)
		}
		flushes++
	})
	for i := 0; i < 4; i++ {
		if _, err := g.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	// 4 single-record batches plus the forced final flush of the Sync.
	if flushes < 4 {
		t.Fatalf("flushes=%d, want >=4", flushes)
	}
	if got := len(scanAll(t, &buf)); got != 4 {
		t.Fatalf("scanned %d records, want 4", got)
	}
}

// A transient flush failure (the fault-injection shape: beforeFlush errors,
// the Writer itself stays healthy) must surface to the committer, keep the
// records buffered, and let a retried Sync deliver each record exactly once.
func TestGroupTransientFlushFailureRetries(t *testing.T) {
	var buf bytes.Buffer
	g := NewGroup(NewWriter(&buf))
	injected := errors.New("injected flush fault")
	arm := true
	g.SetHooks(func() error {
		if arm {
			arm = false
			return injected
		}
		return nil
	}, nil)

	if _, err := g.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); !errors.Is(err, injected) {
		t.Fatalf("Sync error = %v, want injected fault", err)
	}
	if err := g.Err(); err != nil {
		t.Fatalf("transient fault latched the writer: %v", err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf("retried Sync: %v", err)
	}
	recs := scanAll(t, &buf)
	if len(recs) != 2 || string(recs[0]) != "a" || string(recs[1]) != "b" {
		t.Fatalf("after retry: %q", recs)
	}
}

// A fatal Writer error latches the group: later Appends and Commits fail.
func TestGroupLatchesFatalError(t *testing.T) {
	g := NewGroup(NewWriter(&failAfter{n: 8}))
	payload := bytes.Repeat([]byte{7}, 3000)
	var firstErr error
	for i := 0; i < 10 && firstErr == nil; i++ {
		if _, err := g.Append(payload); err != nil {
			firstErr = err
			break
		}
		firstErr = g.Sync()
	}
	if firstErr == nil {
		t.Fatal("failing writer accepted everything")
	}
	if _, err := g.Append([]byte("more")); err == nil {
		t.Fatal("append after latched error succeeded")
	}
	if err := g.Sync(); err == nil {
		t.Fatal("sync after latched error succeeded")
	}
	if g.Err() == nil {
		t.Fatal("error not latched")
	}
}

// Many concurrent committers: every record lands exactly once, in a valid
// log, and the flush count shows coalescing (fewer flushes than commits).
func TestGroupConcurrentCommitters(t *testing.T) {
	var buf bytes.Buffer
	g := NewGroup(NewWriter(&buf))
	var mu sync.Mutex
	flushes := 0
	g.SetHooks(nil, func(int) { mu.Lock(); flushes++; mu.Unlock() })

	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := g.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := g.Commit(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}

	recs := scanAll(t, &buf)
	if len(recs) != writers*per {
		t.Fatalf("scanned %d records, want %d", len(recs), writers*per)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[string(r)] {
			t.Fatalf("duplicate record %q", r)
		}
		seen[string(r)] = true
	}
	// At most one physical flush per commit, plus the final forced Sync.
	if flushes > writers*per+1 {
		t.Fatalf("flushes=%d exceeds commits=%d", flushes, writers*per)
	}
	t.Logf("commits=%d physical flushes=%d", writers*per, flushes)
}

// gate blocks the leader inside its flush attempt so the test can park
// riders on the group's latch deterministically before the attempt resolves.
type gate struct {
	entered chan struct{} // closed when the leader reaches the gate
	release chan struct{} // the leader waits here
	once    sync.Once
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (ga *gate) hold() {
	ga.once.Do(func() { close(ga.entered) })
	<-ga.release
}

// Sync callers that ride a failing leader flush — records in the failing
// batch or enqueued while it was in flight — must all observe the flush
// error, not just the leader that performed the I/O. A rider returning nil
// would acknowledge a write the log never accepted.
func TestGroupSyncRidersObserveLeaderFlushError(t *testing.T) {
	var buf bytes.Buffer
	g := NewGroup(NewWriter(&buf))
	injected := errors.New("injected leader flush failure")
	ga := newGate()
	var arm bool
	g.SetHooks(func() error {
		if arm {
			arm = false
			ga.hold()
			return injected
		}
		return nil
	}, nil)

	// Records "r0".."r2" are enqueued before the leader flushes, so the
	// failing attempt covers them.
	preSeqs := make([]uint64, 3)
	for i := range preSeqs {
		seq, err := g.Append([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		preSeqs[i] = seq
	}

	arm = true
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- g.Sync() }()
	<-ga.entered // leader is inside the failing flush attempt

	// Riders: two commit records from the failing batch, one enqueues a new
	// record during the flight, one is a bare Sync with nothing of its own.
	riderErrs := make(chan error, 4)
	for _, seq := range preSeqs[1:] {
		go func(seq uint64) { riderErrs <- g.Commit(seq) }(seq)
	}
	go func() {
		seq, err := g.Append([]byte("late"))
		if err != nil {
			riderErrs <- err
			return
		}
		riderErrs <- g.Commit(seq)
	}()
	go func() { riderErrs <- g.Sync() }()
	time.Sleep(20 * time.Millisecond) // let the riders park on the latch
	close(ga.release)

	if err := <-leaderErr; !errors.Is(err, injected) {
		t.Fatalf("leader error = %v, want injected", err)
	}
	for i := 0; i < 4; i++ {
		if err := <-riderErrs; !errors.Is(err, injected) {
			t.Fatalf("rider %d error = %v, want injected", i, err)
		}
	}

	// The hook failure is transient: nothing latched, a retried Sync lands
	// every record exactly once.
	if err := g.Err(); err != nil {
		t.Fatalf("transient flush failure latched the group: %v", err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf("retried Sync: %v", err)
	}
	recs := scanAll(t, &buf)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
}

// blockThenFail blocks the first Write at the gate, then fails it — the
// underlying-device version of the race above. Unlike a hook error this
// latches the Writer, so riders must see the latched error and every later
// Append and Sync must keep failing.
type blockThenFail struct {
	ga *gate
}

func (w *blockThenFail) Write(p []byte) (int, error) {
	w.ga.hold()
	return 0, errors.New("device failed mid-flush")
}

func TestGroupSyncRacingLatchingLeaderFlush(t *testing.T) {
	ga := newGate()
	g := NewGroup(NewWriter(&blockThenFail{ga: ga}))

	seq, err := g.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- g.Commit(seq) }()
	<-ga.entered // leader is blocked inside the device write

	riderErrs := make(chan error, 2)
	go func() { riderErrs <- g.Sync() }()
	go func() { riderErrs <- g.Commit(seq) }()
	time.Sleep(20 * time.Millisecond)
	close(ga.release)

	if err := <-leaderErr; err == nil {
		t.Fatal("leader Commit succeeded past a failing device")
	}
	for i := 0; i < 2; i++ {
		if err := <-riderErrs; err == nil {
			t.Fatalf("rider %d observed nil from a latching flush failure", i)
		}
	}
	if g.Err() == nil {
		t.Fatal("device failure did not latch the group")
	}
	if _, err := g.Append([]byte("more")); err == nil {
		t.Fatal("Append after latched failure succeeded")
	}
	if err := g.Sync(); err == nil {
		t.Fatal("Sync after latched failure succeeded")
	}
}
